file(REMOVE_RECURSE
  "CMakeFiles/pico_portal.dir/portal.cpp.o"
  "CMakeFiles/pico_portal.dir/portal.cpp.o.d"
  "libpico_portal.a"
  "libpico_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

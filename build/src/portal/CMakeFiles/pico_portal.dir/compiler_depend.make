# Empty compiler generated dependencies file for pico_portal.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpico_portal.a"
)

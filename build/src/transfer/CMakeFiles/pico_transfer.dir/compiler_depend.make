# Empty compiler generated dependencies file for pico_transfer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpico_transfer.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/service.cpp" "src/transfer/CMakeFiles/pico_transfer.dir/service.cpp.o" "gcc" "src/transfer/CMakeFiles/pico_transfer.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pico_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pico_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pico_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/pico_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pico_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

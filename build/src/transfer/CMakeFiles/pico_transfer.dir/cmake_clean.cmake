file(REMOVE_RECURSE
  "CMakeFiles/pico_transfer.dir/service.cpp.o"
  "CMakeFiles/pico_transfer.dir/service.cpp.o.d"
  "libpico_transfer.a"
  "libpico_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

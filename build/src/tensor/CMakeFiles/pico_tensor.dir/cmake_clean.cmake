file(REMOVE_RECURSE
  "CMakeFiles/pico_tensor.dir/dtype.cpp.o"
  "CMakeFiles/pico_tensor.dir/dtype.cpp.o.d"
  "CMakeFiles/pico_tensor.dir/ops.cpp.o"
  "CMakeFiles/pico_tensor.dir/ops.cpp.o.d"
  "libpico_tensor.a"
  "libpico_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpico_tensor.a"
)

# Empty dependencies file for pico_tensor.
# This may be replaced when dependencies are built.

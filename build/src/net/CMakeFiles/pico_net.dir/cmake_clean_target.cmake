file(REMOVE_RECURSE
  "libpico_net.a"
)

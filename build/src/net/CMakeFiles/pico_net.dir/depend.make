# Empty dependencies file for pico_net.
# This may be replaced when dependencies are built.

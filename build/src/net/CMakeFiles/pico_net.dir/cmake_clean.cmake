file(REMOVE_RECURSE
  "CMakeFiles/pico_net.dir/network.cpp.o"
  "CMakeFiles/pico_net.dir/network.cpp.o.d"
  "CMakeFiles/pico_net.dir/topology.cpp.o"
  "CMakeFiles/pico_net.dir/topology.cpp.o.d"
  "libpico_net.a"
  "libpico_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

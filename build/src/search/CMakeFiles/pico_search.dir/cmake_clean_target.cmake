file(REMOVE_RECURSE
  "libpico_search.a"
)

# Empty compiler generated dependencies file for pico_search.
# This may be replaced when dependencies are built.

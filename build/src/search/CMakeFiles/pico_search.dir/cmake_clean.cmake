file(REMOVE_RECURSE
  "CMakeFiles/pico_search.dir/index.cpp.o"
  "CMakeFiles/pico_search.dir/index.cpp.o.d"
  "CMakeFiles/pico_search.dir/persist.cpp.o"
  "CMakeFiles/pico_search.dir/persist.cpp.o.d"
  "CMakeFiles/pico_search.dir/schema.cpp.o"
  "CMakeFiles/pico_search.dir/schema.cpp.o.d"
  "libpico_search.a"
  "libpico_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

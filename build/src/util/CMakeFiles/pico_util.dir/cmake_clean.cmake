file(REMOVE_RECURSE
  "CMakeFiles/pico_util.dir/bytes.cpp.o"
  "CMakeFiles/pico_util.dir/bytes.cpp.o.d"
  "CMakeFiles/pico_util.dir/crc64.cpp.o"
  "CMakeFiles/pico_util.dir/crc64.cpp.o.d"
  "CMakeFiles/pico_util.dir/id.cpp.o"
  "CMakeFiles/pico_util.dir/id.cpp.o.d"
  "CMakeFiles/pico_util.dir/json.cpp.o"
  "CMakeFiles/pico_util.dir/json.cpp.o.d"
  "CMakeFiles/pico_util.dir/log.cpp.o"
  "CMakeFiles/pico_util.dir/log.cpp.o.d"
  "CMakeFiles/pico_util.dir/rng.cpp.o"
  "CMakeFiles/pico_util.dir/rng.cpp.o.d"
  "CMakeFiles/pico_util.dir/stats.cpp.o"
  "CMakeFiles/pico_util.dir/stats.cpp.o.d"
  "CMakeFiles/pico_util.dir/strings.cpp.o"
  "CMakeFiles/pico_util.dir/strings.cpp.o.d"
  "CMakeFiles/pico_util.dir/threadpool.cpp.o"
  "CMakeFiles/pico_util.dir/threadpool.cpp.o.d"
  "CMakeFiles/pico_util.dir/timefmt.cpp.o"
  "CMakeFiles/pico_util.dir/timefmt.cpp.o.d"
  "CMakeFiles/pico_util.dir/units.cpp.o"
  "CMakeFiles/pico_util.dir/units.cpp.o.d"
  "CMakeFiles/pico_util.dir/xml.cpp.o"
  "CMakeFiles/pico_util.dir/xml.cpp.o.d"
  "libpico_util.a"
  "libpico_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bytes.cpp" "src/util/CMakeFiles/pico_util.dir/bytes.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/bytes.cpp.o.d"
  "/root/repo/src/util/crc64.cpp" "src/util/CMakeFiles/pico_util.dir/crc64.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/crc64.cpp.o.d"
  "/root/repo/src/util/id.cpp" "src/util/CMakeFiles/pico_util.dir/id.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/id.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/util/CMakeFiles/pico_util.dir/json.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/json.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/pico_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/pico_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/pico_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/pico_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/threadpool.cpp" "src/util/CMakeFiles/pico_util.dir/threadpool.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/threadpool.cpp.o.d"
  "/root/repo/src/util/timefmt.cpp" "src/util/CMakeFiles/pico_util.dir/timefmt.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/timefmt.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/util/CMakeFiles/pico_util.dir/units.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/units.cpp.o.d"
  "/root/repo/src/util/xml.cpp" "src/util/CMakeFiles/pico_util.dir/xml.cpp.o" "gcc" "src/util/CMakeFiles/pico_util.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for pico_util.
# This may be replaced when dependencies are built.

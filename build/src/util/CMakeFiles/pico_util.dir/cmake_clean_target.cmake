file(REMOVE_RECURSE
  "libpico_util.a"
)

# Empty dependencies file for pico_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pico_core.dir/campaign.cpp.o"
  "CMakeFiles/pico_core.dir/campaign.cpp.o.d"
  "CMakeFiles/pico_core.dir/client.cpp.o"
  "CMakeFiles/pico_core.dir/client.cpp.o.d"
  "CMakeFiles/pico_core.dir/cost_model.cpp.o"
  "CMakeFiles/pico_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/pico_core.dir/facility.cpp.o"
  "CMakeFiles/pico_core.dir/facility.cpp.o.d"
  "CMakeFiles/pico_core.dir/flows.cpp.o"
  "CMakeFiles/pico_core.dir/flows.cpp.o.d"
  "CMakeFiles/pico_core.dir/providers.cpp.o"
  "CMakeFiles/pico_core.dir/providers.cpp.o.d"
  "CMakeFiles/pico_core.dir/report.cpp.o"
  "CMakeFiles/pico_core.dir/report.cpp.o.d"
  "libpico_core.a"
  "libpico_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

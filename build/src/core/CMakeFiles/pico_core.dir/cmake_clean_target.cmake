file(REMOVE_RECURSE
  "libpico_core.a"
)

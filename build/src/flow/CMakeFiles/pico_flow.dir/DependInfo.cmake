
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/backoff.cpp" "src/flow/CMakeFiles/pico_flow.dir/backoff.cpp.o" "gcc" "src/flow/CMakeFiles/pico_flow.dir/backoff.cpp.o.d"
  "/root/repo/src/flow/definition_io.cpp" "src/flow/CMakeFiles/pico_flow.dir/definition_io.cpp.o" "gcc" "src/flow/CMakeFiles/pico_flow.dir/definition_io.cpp.o.d"
  "/root/repo/src/flow/service.cpp" "src/flow/CMakeFiles/pico_flow.dir/service.cpp.o" "gcc" "src/flow/CMakeFiles/pico_flow.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pico_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/pico_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/pico_flow.dir/backoff.cpp.o"
  "CMakeFiles/pico_flow.dir/backoff.cpp.o.d"
  "CMakeFiles/pico_flow.dir/definition_io.cpp.o"
  "CMakeFiles/pico_flow.dir/definition_io.cpp.o.d"
  "CMakeFiles/pico_flow.dir/service.cpp.o"
  "CMakeFiles/pico_flow.dir/service.cpp.o.d"
  "libpico_flow.a"
  "libpico_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpico_flow.a"
)

# Empty compiler generated dependencies file for pico_flow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpico_hpcsim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pico_hpcsim.dir/pbs.cpp.o"
  "CMakeFiles/pico_hpcsim.dir/pbs.cpp.o.d"
  "libpico_hpcsim.a"
  "libpico_hpcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_hpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pico_hpcsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpico_auth.a"
)

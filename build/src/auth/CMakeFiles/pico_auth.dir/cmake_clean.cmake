file(REMOVE_RECURSE
  "CMakeFiles/pico_auth.dir/auth.cpp.o"
  "CMakeFiles/pico_auth.dir/auth.cpp.o.d"
  "libpico_auth.a"
  "libpico_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

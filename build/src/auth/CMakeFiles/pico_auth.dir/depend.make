# Empty dependencies file for pico_auth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pico_watcher.dir/watcher.cpp.o"
  "CMakeFiles/pico_watcher.dir/watcher.cpp.o.d"
  "libpico_watcher.a"
  "libpico_watcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_watcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

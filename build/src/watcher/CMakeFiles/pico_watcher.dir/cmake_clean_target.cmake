file(REMOVE_RECURSE
  "libpico_watcher.a"
)

# Empty dependencies file for pico_watcher.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/convert.cpp" "src/video/CMakeFiles/pico_video.dir/convert.cpp.o" "gcc" "src/video/CMakeFiles/pico_video.dir/convert.cpp.o.d"
  "/root/repo/src/video/mpk.cpp" "src/video/CMakeFiles/pico_video.dir/mpk.cpp.o" "gcc" "src/video/CMakeFiles/pico_video.dir/mpk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pico_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pico_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/pico_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/pico_video.dir/convert.cpp.o"
  "CMakeFiles/pico_video.dir/convert.cpp.o.d"
  "CMakeFiles/pico_video.dir/mpk.cpp.o"
  "CMakeFiles/pico_video.dir/mpk.cpp.o.d"
  "libpico_video.a"
  "libpico_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpico_video.a"
)

# Empty compiler generated dependencies file for pico_video.
# This may be replaced when dependencies are built.

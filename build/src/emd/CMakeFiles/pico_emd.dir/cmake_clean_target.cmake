file(REMOVE_RECURSE
  "libpico_emd.a"
)

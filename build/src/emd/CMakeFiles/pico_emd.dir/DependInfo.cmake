
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emd/file.cpp" "src/emd/CMakeFiles/pico_emd.dir/file.cpp.o" "gcc" "src/emd/CMakeFiles/pico_emd.dir/file.cpp.o.d"
  "/root/repo/src/emd/hmsa.cpp" "src/emd/CMakeFiles/pico_emd.dir/hmsa.cpp.o" "gcc" "src/emd/CMakeFiles/pico_emd.dir/hmsa.cpp.o.d"
  "/root/repo/src/emd/schema.cpp" "src/emd/CMakeFiles/pico_emd.dir/schema.cpp.o" "gcc" "src/emd/CMakeFiles/pico_emd.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pico_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

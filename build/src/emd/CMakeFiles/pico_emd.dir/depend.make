# Empty dependencies file for pico_emd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pico_emd.dir/file.cpp.o"
  "CMakeFiles/pico_emd.dir/file.cpp.o.d"
  "CMakeFiles/pico_emd.dir/hmsa.cpp.o"
  "CMakeFiles/pico_emd.dir/hmsa.cpp.o.d"
  "CMakeFiles/pico_emd.dir/schema.cpp.o"
  "CMakeFiles/pico_emd.dir/schema.cpp.o.d"
  "libpico_emd.a"
  "libpico_emd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_emd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("net")
subdirs("emd")
subdirs("tensor")
subdirs("compress")
subdirs("storage")
subdirs("instrument")
subdirs("transfer")
subdirs("hpcsim")
subdirs("compute")
subdirs("auth")
subdirs("search")
subdirs("portal")
subdirs("flow")
subdirs("watcher")
subdirs("analysis")
subdirs("vision")
subdirs("video")
subdirs("core")

# Empty compiler generated dependencies file for pico_vision.
# This may be replaced when dependencies are built.

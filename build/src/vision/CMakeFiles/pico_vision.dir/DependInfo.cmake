
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/detect.cpp" "src/vision/CMakeFiles/pico_vision.dir/detect.cpp.o" "gcc" "src/vision/CMakeFiles/pico_vision.dir/detect.cpp.o.d"
  "/root/repo/src/vision/eval.cpp" "src/vision/CMakeFiles/pico_vision.dir/eval.cpp.o" "gcc" "src/vision/CMakeFiles/pico_vision.dir/eval.cpp.o.d"
  "/root/repo/src/vision/image.cpp" "src/vision/CMakeFiles/pico_vision.dir/image.cpp.o" "gcc" "src/vision/CMakeFiles/pico_vision.dir/image.cpp.o.d"
  "/root/repo/src/vision/track.cpp" "src/vision/CMakeFiles/pico_vision.dir/track.cpp.o" "gcc" "src/vision/CMakeFiles/pico_vision.dir/track.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pico_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpico_vision.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pico_vision.dir/detect.cpp.o"
  "CMakeFiles/pico_vision.dir/detect.cpp.o.d"
  "CMakeFiles/pico_vision.dir/eval.cpp.o"
  "CMakeFiles/pico_vision.dir/eval.cpp.o.d"
  "CMakeFiles/pico_vision.dir/image.cpp.o"
  "CMakeFiles/pico_vision.dir/image.cpp.o.d"
  "CMakeFiles/pico_vision.dir/track.cpp.o"
  "CMakeFiles/pico_vision.dir/track.cpp.o.d"
  "libpico_vision.a"
  "libpico_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

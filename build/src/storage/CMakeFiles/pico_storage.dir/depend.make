# Empty dependencies file for pico_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpico_storage.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pico_storage.dir/store.cpp.o"
  "CMakeFiles/pico_storage.dir/store.cpp.o.d"
  "libpico_storage.a"
  "libpico_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pico_sim.dir/engine.cpp.o"
  "CMakeFiles/pico_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pico_sim.dir/trace.cpp.o"
  "CMakeFiles/pico_sim.dir/trace.cpp.o.d"
  "libpico_sim.a"
  "libpico_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

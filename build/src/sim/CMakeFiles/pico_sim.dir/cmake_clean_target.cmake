file(REMOVE_RECURSE
  "libpico_sim.a"
)

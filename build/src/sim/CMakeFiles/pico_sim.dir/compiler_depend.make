# Empty compiler generated dependencies file for pico_sim.
# This may be replaced when dependencies are built.

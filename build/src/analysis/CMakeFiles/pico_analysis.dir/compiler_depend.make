# Empty compiler generated dependencies file for pico_analysis.
# This may be replaced when dependencies are built.

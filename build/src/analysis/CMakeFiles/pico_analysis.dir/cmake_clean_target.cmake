file(REMOVE_RECURSE
  "libpico_analysis.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pico_analysis.dir/calibration.cpp.o"
  "CMakeFiles/pico_analysis.dir/calibration.cpp.o.d"
  "CMakeFiles/pico_analysis.dir/hyperspectral.cpp.o"
  "CMakeFiles/pico_analysis.dir/hyperspectral.cpp.o.d"
  "CMakeFiles/pico_analysis.dir/metadata.cpp.o"
  "CMakeFiles/pico_analysis.dir/metadata.cpp.o.d"
  "CMakeFiles/pico_analysis.dir/plot.cpp.o"
  "CMakeFiles/pico_analysis.dir/plot.cpp.o.d"
  "libpico_analysis.a"
  "libpico_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/calibration.cpp" "src/analysis/CMakeFiles/pico_analysis.dir/calibration.cpp.o" "gcc" "src/analysis/CMakeFiles/pico_analysis.dir/calibration.cpp.o.d"
  "/root/repo/src/analysis/hyperspectral.cpp" "src/analysis/CMakeFiles/pico_analysis.dir/hyperspectral.cpp.o" "gcc" "src/analysis/CMakeFiles/pico_analysis.dir/hyperspectral.cpp.o.d"
  "/root/repo/src/analysis/metadata.cpp" "src/analysis/CMakeFiles/pico_analysis.dir/metadata.cpp.o" "gcc" "src/analysis/CMakeFiles/pico_analysis.dir/metadata.cpp.o.d"
  "/root/repo/src/analysis/plot.cpp" "src/analysis/CMakeFiles/pico_analysis.dir/plot.cpp.o" "gcc" "src/analysis/CMakeFiles/pico_analysis.dir/plot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/emd/CMakeFiles/pico_emd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pico_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/pico_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

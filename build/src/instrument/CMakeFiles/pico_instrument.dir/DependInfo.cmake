
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instrument/hyperspectral_gen.cpp" "src/instrument/CMakeFiles/pico_instrument.dir/hyperspectral_gen.cpp.o" "gcc" "src/instrument/CMakeFiles/pico_instrument.dir/hyperspectral_gen.cpp.o.d"
  "/root/repo/src/instrument/spatiotemporal_gen.cpp" "src/instrument/CMakeFiles/pico_instrument.dir/spatiotemporal_gen.cpp.o" "gcc" "src/instrument/CMakeFiles/pico_instrument.dir/spatiotemporal_gen.cpp.o.d"
  "/root/repo/src/instrument/xray_lines.cpp" "src/instrument/CMakeFiles/pico_instrument.dir/xray_lines.cpp.o" "gcc" "src/instrument/CMakeFiles/pico_instrument.dir/xray_lines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emd/CMakeFiles/pico_emd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pico_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

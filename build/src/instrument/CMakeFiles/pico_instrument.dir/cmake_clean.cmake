file(REMOVE_RECURSE
  "CMakeFiles/pico_instrument.dir/hyperspectral_gen.cpp.o"
  "CMakeFiles/pico_instrument.dir/hyperspectral_gen.cpp.o.d"
  "CMakeFiles/pico_instrument.dir/spatiotemporal_gen.cpp.o"
  "CMakeFiles/pico_instrument.dir/spatiotemporal_gen.cpp.o.d"
  "CMakeFiles/pico_instrument.dir/xray_lines.cpp.o"
  "CMakeFiles/pico_instrument.dir/xray_lines.cpp.o.d"
  "libpico_instrument.a"
  "libpico_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pico_instrument.
# This may be replaced when dependencies are built.

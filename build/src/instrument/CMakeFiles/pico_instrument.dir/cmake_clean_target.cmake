file(REMOVE_RECURSE
  "libpico_instrument.a"
)

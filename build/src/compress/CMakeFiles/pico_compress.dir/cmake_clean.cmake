file(REMOVE_RECURSE
  "CMakeFiles/pico_compress.dir/codec.cpp.o"
  "CMakeFiles/pico_compress.dir/codec.cpp.o.d"
  "CMakeFiles/pico_compress.dir/delta.cpp.o"
  "CMakeFiles/pico_compress.dir/delta.cpp.o.d"
  "CMakeFiles/pico_compress.dir/lz.cpp.o"
  "CMakeFiles/pico_compress.dir/lz.cpp.o.d"
  "CMakeFiles/pico_compress.dir/rle.cpp.o"
  "CMakeFiles/pico_compress.dir/rle.cpp.o.d"
  "CMakeFiles/pico_compress.dir/shuffle.cpp.o"
  "CMakeFiles/pico_compress.dir/shuffle.cpp.o.d"
  "libpico_compress.a"
  "libpico_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pico_compress.
# This may be replaced when dependencies are built.

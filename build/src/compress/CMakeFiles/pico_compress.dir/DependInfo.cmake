
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/codec.cpp" "src/compress/CMakeFiles/pico_compress.dir/codec.cpp.o" "gcc" "src/compress/CMakeFiles/pico_compress.dir/codec.cpp.o.d"
  "/root/repo/src/compress/delta.cpp" "src/compress/CMakeFiles/pico_compress.dir/delta.cpp.o" "gcc" "src/compress/CMakeFiles/pico_compress.dir/delta.cpp.o.d"
  "/root/repo/src/compress/lz.cpp" "src/compress/CMakeFiles/pico_compress.dir/lz.cpp.o" "gcc" "src/compress/CMakeFiles/pico_compress.dir/lz.cpp.o.d"
  "/root/repo/src/compress/rle.cpp" "src/compress/CMakeFiles/pico_compress.dir/rle.cpp.o" "gcc" "src/compress/CMakeFiles/pico_compress.dir/rle.cpp.o.d"
  "/root/repo/src/compress/shuffle.cpp" "src/compress/CMakeFiles/pico_compress.dir/shuffle.cpp.o" "gcc" "src/compress/CMakeFiles/pico_compress.dir/shuffle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

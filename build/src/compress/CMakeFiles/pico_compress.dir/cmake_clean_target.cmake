file(REMOVE_RECURSE
  "libpico_compress.a"
)

# Empty compiler generated dependencies file for pico_compute.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpico_compute.a"
)

# Empty dependencies file for pico_compute.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pico_compute.dir/service.cpp.o"
  "CMakeFiles/pico_compute.dir/service.cpp.o.d"
  "libpico_compute.a"
  "libpico_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_backoff"
  "../bench/bench_backoff.pdb"
  "CMakeFiles/bench_backoff.dir/bench_backoff.cpp.o"
  "CMakeFiles/bench_backoff.dir/bench_backoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_compression"
  "../bench/bench_compression.pdb"
  "CMakeFiles/bench_compression.dir/bench_compression.cpp.o"
  "CMakeFiles/bench_compression.dir/bench_compression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

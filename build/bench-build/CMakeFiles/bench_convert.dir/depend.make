# Empty dependencies file for bench_convert.
# This may be replaced when dependencies are built.

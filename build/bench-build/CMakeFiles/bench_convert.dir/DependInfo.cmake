
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_convert.cpp" "bench-build/CMakeFiles/bench_convert.dir/bench_convert.cpp.o" "gcc" "bench-build/CMakeFiles/bench_convert.dir/bench_convert.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pico_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/pico_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/pico_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pico_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pico_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/pico_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcsim/CMakeFiles/pico_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pico_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/portal/CMakeFiles/pico_portal.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/pico_search.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/pico_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pico_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/pico_video.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/pico_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pico_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/pico_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/emd/CMakeFiles/pico_emd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pico_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/watcher/CMakeFiles/pico_watcher.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "../bench/bench_convert"
  "../bench/bench_convert.pdb"
  "CMakeFiles/bench_convert.dir/bench_convert.cpp.o"
  "CMakeFiles/bench_convert.dir/bench_convert.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_emd_gen]=] "/root/repo/build/tools/picoflow" "emd-gen" "hyper" "cli-test.emd" "7")
set_tests_properties([=[cli_emd_gen]=] PROPERTIES  FIXTURES_SETUP "cli_emd" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_emd_info]=] "/root/repo/build/tools/picoflow" "emd-info" "cli-test.emd")
set_tests_properties([=[cli_emd_info]=] PROPERTIES  FIXTURES_REQUIRED "cli_emd" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_convert_hmsa]=] "/root/repo/build/tools/picoflow" "convert-hmsa" "cli-test.emd" "cli-test-pair")
set_tests_properties([=[cli_convert_hmsa]=] PROPERTIES  FIXTURES_REQUIRED "cli_emd" FIXTURES_SETUP "cli_hmsa" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_convert_emd]=] "/root/repo/build/tools/picoflow" "convert-emd" "cli-test-pair" "cli-test-back.emd")
set_tests_properties([=[cli_convert_emd]=] PROPERTIES  FIXTURES_REQUIRED "cli_emd;cli_hmsa" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_compress]=] "/root/repo/build/tools/picoflow" "compress" "cli-test.emd" "rle")
set_tests_properties([=[cli_compress]=] PROPERTIES  FIXTURES_REQUIRED "cli_emd" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_flow_def]=] "/root/repo/build/tools/picoflow" "flow-def" "spatio")
set_tests_properties([=[cli_flow_def]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_usage]=] "/root/repo/build/tools/picoflow")
set_tests_properties([=[cli_usage]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")

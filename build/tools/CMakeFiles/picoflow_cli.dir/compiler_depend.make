# Empty compiler generated dependencies file for picoflow_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/picoflow_cli.dir/picoflow.cpp.o"
  "CMakeFiles/picoflow_cli.dir/picoflow.cpp.o.d"
  "picoflow"
  "picoflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picoflow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hyperspectral_campaign.
# This may be replaced when dependencies are built.

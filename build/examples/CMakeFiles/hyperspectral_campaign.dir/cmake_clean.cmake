file(REMOVE_RECURSE
  "CMakeFiles/hyperspectral_campaign.dir/hyperspectral_campaign.cpp.o"
  "CMakeFiles/hyperspectral_campaign.dir/hyperspectral_campaign.cpp.o.d"
  "hyperspectral_campaign"
  "hyperspectral_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperspectral_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

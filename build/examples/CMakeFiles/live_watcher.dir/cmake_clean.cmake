file(REMOVE_RECURSE
  "CMakeFiles/live_watcher.dir/live_watcher.cpp.o"
  "CMakeFiles/live_watcher.dir/live_watcher.cpp.o.d"
  "live_watcher"
  "live_watcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_watcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for live_watcher.
# This may be replaced when dependencies are built.

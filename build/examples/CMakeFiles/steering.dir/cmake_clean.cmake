file(REMOVE_RECURSE
  "CMakeFiles/steering.dir/steering.cpp.o"
  "CMakeFiles/steering.dir/steering.cpp.o.d"
  "steering"
  "steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

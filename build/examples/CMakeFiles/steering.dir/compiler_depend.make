# Empty compiler generated dependencies file for steering.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for nanoparticle_tracking.
# This may be replaced when dependencies are built.

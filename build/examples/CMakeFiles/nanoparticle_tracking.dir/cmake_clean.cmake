file(REMOVE_RECURSE
  "CMakeFiles/nanoparticle_tracking.dir/nanoparticle_tracking.cpp.o"
  "CMakeFiles/nanoparticle_tracking.dir/nanoparticle_tracking.cpp.o.d"
  "nanoparticle_tracking"
  "nanoparticle_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanoparticle_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/reinterrogate.dir/reinterrogate.cpp.o"
  "CMakeFiles/reinterrogate.dir/reinterrogate.cpp.o.d"
  "reinterrogate"
  "reinterrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reinterrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

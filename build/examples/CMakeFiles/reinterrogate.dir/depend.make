# Empty dependencies file for reinterrogate.
# This may be replaced when dependencies are built.

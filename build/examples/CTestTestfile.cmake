# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_tracking]=] "/root/repo/build/examples/nanoparticle_tracking" "100")
set_tests_properties([=[example_tracking]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_campaign]=] "/root/repo/build/examples/hyperspectral_campaign" "2")
set_tests_properties([=[example_campaign]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_live_watcher]=] "/root/repo/build/examples/live_watcher" "live-watch-test" "--wait" "4")
set_tests_properties([=[example_live_watcher]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_steering]=] "/root/repo/build/examples/steering")
set_tests_properties([=[example_steering]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_reinterrogate]=] "/root/repo/build/examples/reinterrogate")
set_tests_properties([=[example_reinterrogate]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/emd_test.dir/emd_test.cpp.o"
  "CMakeFiles/emd_test.dir/emd_test.cpp.o.d"
  "emd_test"
  "emd_test.pdb"
  "emd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

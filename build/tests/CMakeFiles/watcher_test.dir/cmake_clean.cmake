file(REMOVE_RECURSE
  "CMakeFiles/watcher_test.dir/watcher_test.cpp.o"
  "CMakeFiles/watcher_test.dir/watcher_test.cpp.o.d"
  "watcher_test"
  "watcher_test.pdb"
  "watcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for watcher_test.
# This may be replaced when dependencies are built.

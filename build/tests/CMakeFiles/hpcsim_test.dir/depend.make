# Empty dependencies file for hpcsim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hpcsim_test.dir/hpcsim_test.cpp.o"
  "CMakeFiles/hpcsim_test.dir/hpcsim_test.cpp.o.d"
  "hpcsim_test"
  "hpcsim_test.pdb"
  "hpcsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/emd_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/transfer_test[1]_include.cmake")
include("/root/repo/build/tests/hpcsim_test[1]_include.cmake")
include("/root/repo/build/tests/compute_test[1]_include.cmake")
include("/root/repo/build/tests/auth_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/portal_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/watcher_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/vision_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

// Tests for the discrete-event engine: ordering, cancellation, run_until
// semantics, trace recording.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace pico::sim {
namespace {

TEST(SimTime, Arithmetic) {
  SimTime t = SimTime::from_seconds(1.5);
  Duration d = Duration::from_seconds(0.5);
  EXPECT_DOUBLE_EQ((t + d).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(time_between(t, t + d).seconds(), 0.5);
  EXPECT_LT(SimTime::from_seconds(1), SimTime::from_seconds(2));
  EXPECT_EQ(SimTime::from_millis(1000).ns, SimTime::from_seconds(1).ns);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  engine.schedule_at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  engine.schedule_at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now().seconds(), 3.0);
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(SimTime::from_seconds(1), [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  double fired_at = -1;
  engine.schedule_at(SimTime::from_seconds(5), [&] {
    engine.schedule_after(Duration::from_seconds(2),
                          [&] { fired_at = engine.now().seconds(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  auto handle = engine.schedule_at(SimTime::from_seconds(1), [&] { fired = true; });
  handle.cancel();
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterRun) {
  Engine engine;
  auto handle = engine.schedule_at(SimTime::from_seconds(1), [] {});
  engine.run();
  handle.cancel();  // no crash
  handle.cancel();
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(SimTime::from_seconds(1), [&] { ++fired; });
  engine.schedule_at(SimTime::from_seconds(10), [&] { ++fired; });
  engine.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now().seconds(), 5.0);
  EXPECT_FALSE(engine.idle());
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventAtBoundaryIncluded) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(SimTime::from_seconds(5), [&] { ++fired; });
  engine.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(Engine, ReentrantScheduling) {
  // A chain of events, each scheduling the next: simulates actor loops.
  Engine engine;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) {
      engine.schedule_after(Duration::from_seconds(1), hop);
    }
  };
  engine.schedule_at(SimTime::zero(), hop);
  engine.run();
  EXPECT_EQ(hops, 100);
  EXPECT_DOUBLE_EQ(engine.now().seconds(), 99.0);
}

TEST(Engine, ZeroDelayFiresImmediatelyInOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_after(Duration::zero(), [&] {
    order.push_back(1);
    engine.schedule_after(Duration::zero(), [&] { order.push_back(2); });
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Trace, SelectFilters) {
  Trace trace;
  trace.add(Span{"transfer", "active", "t1", SimTime::zero(),
                 SimTime::from_seconds(2), {}});
  trace.add(Span{"compute", "active", "c1", SimTime::zero(),
                 SimTime::from_seconds(1), {}});
  trace.add(Span{"transfer", "failed", "t2", SimTime::zero(),
                 SimTime::from_seconds(3), {}});
  EXPECT_EQ(trace.select("transfer").size(), 2u);
  EXPECT_EQ(trace.select("transfer", "active").size(), 1u);
  EXPECT_EQ(trace.select("", "active").size(), 2u);
  EXPECT_EQ(trace.select("", "").size(), 3u);
  EXPECT_DOUBLE_EQ(trace.select("compute")[0]->duration_seconds(), 1.0);
}

TEST(Trace, JsonlSerialization) {
  Trace trace;
  trace.add(Span{"flow", "run", "r1", SimTime::zero(), SimTime::from_seconds(1),
                 util::Json::object({{"k", 1}})});
  std::string jsonl = trace.to_jsonl();
  EXPECT_NE(jsonl.find("\"component\":\"flow\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"k\":1"), std::string::npos);
  EXPECT_EQ(jsonl.back(), '\n');
}

}  // namespace
}  // namespace pico::sim

// Property: events always fire in non-decreasing time order, regardless of
// the (randomized) schedule shape, including re-entrant scheduling.
#include "util/rng.hpp"

namespace pico::sim {
namespace {

class EngineOrdering : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineOrdering, MonotonicFiringOrder) {
  util::Rng rng(GetParam());
  Engine engine;
  std::vector<double> fire_times;
  std::function<void(int)> maybe_chain = [&](int depth) {
    fire_times.push_back(engine.now().seconds());
    if (depth > 0 && rng.chance(0.6)) {
      engine.schedule_after(Duration::from_seconds(rng.uniform(0, 5)),
                            [&, depth] { maybe_chain(depth - 1); });
    }
  };
  for (int i = 0; i < 50; ++i) {
    engine.schedule_at(SimTime::from_seconds(rng.uniform(0, 100)),
                       [&] { maybe_chain(3); });
  }
  engine.run();
  ASSERT_GE(fire_times.size(), 50u);
  for (size_t i = 1; i < fire_times.size(); ++i) {
    ASSERT_LE(fire_times[i - 1], fire_times[i] + 1e-12) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOrdering,
                         ::testing::Values(3, 17, 404, 9001));

}  // namespace
}  // namespace pico::sim

// Codec tests: exact round-trips on structured and adversarial inputs, frame
// integrity, fuzz safety of decoders.
#include <gtest/gtest.h>

#include <cstring>

#include "compress/codec.hpp"
#include "util/crc64.hpp"
#include "util/rng.hpp"

namespace pico::compress {
namespace {

std::vector<const Codec*> all_codecs() {
  static NullCodec null_codec;
  static RleCodec rle;
  static DeltaCodec delta;
  static LzCodec lz;
  static ShuffleLzCodec shuffle;
  return {&null_codec, &rle, &delta, &lz, &shuffle};
}

Bytes make_case(int which, util::Rng& rng) {
  switch (which % 7) {
    case 0: return {};
    case 1: return Bytes(1, 0x42);
    case 2: return Bytes(10'000, 0);  // long run
    case 3: {  // random noise (incompressible)
      Bytes b(4096);
      for (auto& v : b) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
      return b;
    }
    case 4: {  // smooth ramp (delta-friendly)
      Bytes b(4096);
      for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<uint8_t>(i / 16);
      return b;
    }
    case 5: {  // repeated text (LZ-friendly)
      std::string s;
      for (int i = 0; i < 200; ++i) s += "the dynamic picoprobe at argonne ";
      return Bytes(s.begin(), s.end());
    }
    default: {  // alternating short runs
      Bytes b;
      for (int i = 0; i < 1000; ++i) {
        b.push_back(static_cast<uint8_t>(i & 1 ? 0xAA : 0x55));
        if (i % 3 == 0) b.push_back(0x55);
      }
      return b;
    }
  }
}

class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodecRoundTrip, DecodeEncodeIsIdentity) {
  auto [codec_idx, case_idx] = GetParam();
  const Codec* codec = all_codecs()[static_cast<size_t>(codec_idx)];
  util::Rng rng(static_cast<uint64_t>(case_idx) * 7919 + 17);
  Bytes input = make_case(case_idx, rng);
  Bytes packed = codec->compress(input);
  auto unpacked = codec->decompress(packed);
  ASSERT_TRUE(unpacked) << codec->name();
  EXPECT_EQ(unpacked.value(), input) << codec->name() << " case " << case_idx;
}

INSTANTIATE_TEST_SUITE_P(AllCodecsAllCases, CodecRoundTrip,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 14)));

TEST(Codec, RleCompressesRuns) {
  RleCodec rle;
  Bytes runs(100'000, 7);
  Bytes packed = rle.compress(runs);
  EXPECT_LT(packed.size(), runs.size() / 20);
}

TEST(Codec, DeltaBeatsRleOnRamps) {
  // Strictly increasing intensities: no byte-level runs at all, so RLE can
  // only expand, while the delta transform turns the ramp into all-ones.
  Bytes ramp(65536);
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<uint8_t>(i);
  size_t rle_size = RleCodec{}.compress(ramp).size();
  size_t delta_size = DeltaCodec{}.compress(ramp).size();
  EXPECT_LT(delta_size, rle_size / 10);
}

TEST(Codec, LzCompressesRepeatedText) {
  std::string s;
  for (int i = 0; i < 500; ++i) s += "hyperspectral imaging data flow ";
  Bytes input(s.begin(), s.end());
  Bytes packed = LzCodec{}.compress(input);
  EXPECT_LT(packed.size(), input.size() / 5);
}

TEST(Codec, RandomDataRoundTripsEvenWhenIncompressible) {
  util::Rng rng(0xBAD);
  Bytes noise(100'000);
  for (auto& v : noise) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
  for (const Codec* codec : all_codecs()) {
    auto out = codec->decompress(codec->compress(noise));
    ASSERT_TRUE(out) << codec->name();
    EXPECT_EQ(out.value(), noise) << codec->name();
  }
}

TEST(Codec, DecodersSurviveFuzzedStreams) {
  util::Rng rng(0xF22);
  for (const Codec* codec : all_codecs()) {
    if (codec->name() == "null") continue;
    for (int trial = 0; trial < 300; ++trial) {
      Bytes garbage(static_cast<size_t>(rng.uniform_int(0, 200)));
      for (auto& v : garbage) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
      auto out = codec->decompress(garbage);  // must not crash or hang
      (void)out;
    }
  }
}

TEST(Codec, MutatedValidStreamsDetectedOrDecodedSafely) {
  util::Rng rng(0x5EED);
  std::string s;
  for (int i = 0; i < 50; ++i) s += "pattern pattern pattern ";
  Bytes input(s.begin(), s.end());
  for (const Codec* codec : all_codecs()) {
    Bytes packed = codec->compress(input);
    if (packed.empty()) continue;
    for (int trial = 0; trial < 100; ++trial) {
      Bytes mutated = packed;
      size_t pos = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(mutated.size() - 1)));
      mutated[pos] ^= static_cast<uint8_t>(rng.uniform_int(1, 255));
      auto out = codec->decompress(mutated);  // either error or some bytes
      (void)out;
    }
  }
}

TEST(Frame, RoundTripWithIntegrity) {
  const auto& registry = CodecRegistry::standard();
  Bytes input;
  for (int i = 0; i < 3000; ++i) input.push_back(static_cast<uint8_t>(i % 97));
  for (const auto& name : registry.names()) {
    const Codec* codec = registry.find(name);
    Bytes frame = encode_frame(*codec, input);
    auto out = decode_frame(registry, frame);
    ASSERT_TRUE(out) << name;
    EXPECT_EQ(out.value(), input) << name;
  }
}

TEST(Frame, DetectsBodyCorruption) {
  const auto& registry = CodecRegistry::standard();
  Bytes input(5000, 3);
  Bytes frame = encode_frame(*registry.find("rle"), input);
  frame[frame.size() - 1] ^= 0x01;
  auto out = decode_frame(registry, frame);
  EXPECT_FALSE(out);
}

TEST(Frame, DetectsUnknownCodecAndBadMagic) {
  const auto& registry = CodecRegistry::standard();
  Bytes input(100, 1);
  Bytes frame = encode_frame(*registry.find("lz"), input);
  {
    auto bad = frame;
    bad[0] = 'x';
    EXPECT_FALSE(decode_frame(registry, bad));
  }
  {
    CodecRegistry empty;
    EXPECT_FALSE(decode_frame(empty, frame));
  }
}

TEST(Registry, StandardHasAllCodecs) {
  const auto& r = CodecRegistry::standard();
  for (const char* name :
       {"null", "rle", "delta", "lz", "shuffle-lz", "lz-par"}) {
    EXPECT_NE(r.find(name), nullptr) << name;
  }
  EXPECT_EQ(r.find("zstd"), nullptr);
  EXPECT_EQ(r.names().size(), 6u);
}

TEST(Codec, ShuffleLzExcelsOnFloatData) {
  // f64 Poisson counts: exponents repeat across words; the shuffle filter
  // exposes that to LZ far better than LZ alone.
  util::Rng rng(0x5457);
  std::vector<double> values(16384);
  for (auto& v : values) v = static_cast<double>(rng.poisson(12.0));
  Bytes raw(values.size() * sizeof(double));
  std::memcpy(raw.data(), values.data(), raw.size());

  ShuffleLzCodec shuffle;
  Bytes packed = shuffle.compress(raw);
  auto unpacked = shuffle.decompress(packed);
  ASSERT_TRUE(unpacked);
  EXPECT_EQ(unpacked.value(), raw);
  size_t plain_lz = LzCodec{}.compress(raw).size();
  EXPECT_LT(packed.size(), plain_lz);          // shuffle helps
  EXPECT_LT(packed.size(), raw.size() / 4);    // and compresses well overall
}

TEST(Codec, ShuffleHandlesNonMultipleOfStride) {
  ShuffleLzCodec shuffle;
  for (size_t n : {0UL, 1UL, 7UL, 9UL, 17UL, 1001UL}) {
    Bytes input(n);
    for (size_t i = 0; i < n; ++i) input[i] = static_cast<uint8_t>(i * 37);
    auto out = shuffle.decompress(shuffle.compress(input));
    ASSERT_TRUE(out) << n;
    EXPECT_EQ(out.value(), input) << n;
  }
}

TEST(Stats, RatioComputation) {
  CompressionStats s{"rle", 1000, 250};
  EXPECT_DOUBLE_EQ(s.ratio(), 4.0);
  CompressionStats zero{"x", 10, 0};
  EXPECT_DOUBLE_EQ(zero.ratio(), 0.0);
}

TEST(Frame, DecodeReportsVerifiedPayloadCrc) {
  util::Rng rng(0xF00D);
  Bytes payload(5'000);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.next_u64() & 0x0F);
  Bytes frame = encode_frame(LzCodec{}, payload);
  uint64_t crc = 0;
  auto out = decode_frame(CodecRegistry::standard(), frame, &crc);
  ASSERT_TRUE(out);
  EXPECT_EQ(out.value(), payload);
  EXPECT_EQ(crc, util::crc64(payload));
  // crc_out is optional; the plain call still works.
  EXPECT_TRUE(decode_frame(CodecRegistry::standard(), frame));
}

TEST(Frame, DecodeFrameViewOnSubspan) {
  Bytes payload{1, 2, 3, 4, 5, 6, 7, 8};
  Bytes frame = encode_frame(NullCodec{}, payload);
  // Embed the frame mid-buffer; decode from the non-owning slice.
  Bytes stream;
  stream.insert(stream.end(), {0xAA, 0xBB});
  stream.insert(stream.end(), frame.begin(), frame.end());
  uint64_t crc = 0;
  auto out = decode_frame_view(CodecRegistry::standard(),
                               ByteView(stream.data() + 2, frame.size()),
                               &crc);
  ASSERT_TRUE(out);
  EXPECT_EQ(out.value(), payload);
  EXPECT_EQ(crc, util::crc64(payload));
}

TEST(Frame, CompressAcceptsViews) {
  // compress(ByteView) must behave identically on an owned vector and on a
  // slice of a larger mapped-style buffer.
  Bytes big(3'000, 0x42);
  big.push_back(0x43);
  for (const Codec* codec : {CodecRegistry::standard().find("rle"),
                             CodecRegistry::standard().find("delta"),
                             CodecRegistry::standard().find("lz")}) {
    ASSERT_NE(codec, nullptr);
    Bytes from_vec = codec->compress(big);
    Bytes from_view = codec->compress(ByteView(big.data(), big.size()));
    EXPECT_EQ(from_vec, from_view) << codec->name();
  }
}

}  // namespace
}  // namespace pico::compress

// Watcher + checkpoint tests on the real filesystem: stability debounce,
// extension filtering, checkpoint persistence across "reboots".
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "watcher/watcher.hpp"

namespace pico::watcher {
namespace {

namespace fs = std::filesystem;

struct WatcherFixture : ::testing::Test {
  std::string dir;
  std::string journal;

  void SetUp() override {
    dir = testing::TempDir() + "/watch_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir);
    fs::create_directories(dir);
    journal = dir + "/.checkpoint";
  }

  void write(const std::string& name, size_t bytes) {
    std::ofstream out(dir + "/" + name, std::ios::binary);
    std::string data(bytes, 'x');
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  WatcherConfig config(int stable_scans = 2) {
    WatcherConfig cfg;
    cfg.directory = dir;
    cfg.stable_scans = stable_scans;
    return cfg;
  }
};

TEST_F(WatcherFixture, DetectsStableFileAfterDebounce) {
  Checkpoint cp(journal);
  ASSERT_TRUE(cp.load());
  DirectoryWatcher watcher(config(2), &cp);

  write("a.emd", 100);
  EXPECT_TRUE(watcher.scan_once().empty());  // first sighting
  auto events = watcher.scan_once();          // second: stable
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].size, 100);
  EXPECT_TRUE(events[0].path.find("a.emd") != std::string::npos);
  // Already processed: no re-trigger.
  EXPECT_TRUE(watcher.scan_once().empty());
}

TEST_F(WatcherFixture, GrowingFileWaitsUntilStable) {
  Checkpoint cp(journal);
  DirectoryWatcher watcher(config(2), &cp);
  write("grow.emd", 10);
  EXPECT_TRUE(watcher.scan_once().empty());  // first sighting at size 10
  write("grow.emd", 20);  // still being written
  EXPECT_TRUE(watcher.scan_once().empty());  // size changed: restart count
  auto events = watcher.scan_once();          // second sighting at 20: stable
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].size, 20);
}

TEST_F(WatcherFixture, ExtensionFilter) {
  Checkpoint cp(journal);
  DirectoryWatcher watcher(config(1), &cp);  // clamped to 2: two scans needed
  write("data.emd", 10);
  write("notes.txt", 10);
  EXPECT_TRUE(watcher.scan_once().empty());  // sighting
  auto events = watcher.scan_once();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].path.find("data.emd"), std::string::npos);
}

TEST_F(WatcherFixture, EmptyExtensionsMatchesEverything) {
  Checkpoint cp(journal);
  auto cfg = config(1);
  cfg.extensions.clear();
  DirectoryWatcher watcher(cfg, &cp);
  write("a.emd", 1);
  write("b.txt", 1);
  EXPECT_TRUE(watcher.scan_once().empty());  // sighting
  EXPECT_EQ(watcher.scan_once().size(), 2u);
}

TEST_F(WatcherFixture, CheckpointSurvivesRestart) {
  {
    Checkpoint cp(journal);
    ASSERT_TRUE(cp.load());
    DirectoryWatcher watcher(config(1), &cp);
    write("done.emd", 50);
    EXPECT_TRUE(watcher.scan_once().empty());  // sighting
    ASSERT_EQ(watcher.scan_once().size(), 1u);
  }
  // "Reboot": fresh watcher + checkpoint reloaded from the journal file.
  {
    Checkpoint cp(journal);
    ASSERT_TRUE(cp.load());
    EXPECT_EQ(cp.size(), 1u);
    DirectoryWatcher watcher(config(1), &cp);
    EXPECT_TRUE(watcher.scan_once().empty());  // no duplicate flow trigger
    EXPECT_TRUE(watcher.scan_once().empty());
  }
}

TEST_F(WatcherFixture, RewrittenFileWithNewSizeTriggersAgain) {
  Checkpoint cp(journal);
  DirectoryWatcher watcher(config(1), &cp);
  write("f.emd", 10);
  EXPECT_TRUE(watcher.scan_once().empty());  // sighting
  ASSERT_EQ(watcher.scan_once().size(), 1u);
  // Same path, different size: new data product.
  write("f.emd", 99);
  EXPECT_TRUE(watcher.scan_once().empty());  // sighting of the rewrite
  auto events = watcher.scan_once();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].size, 99);
  // Same path, same size AND same mtime as the processed version: ignored.
  // (Pin the mtime explicitly so filesystem timestamp granularity cannot
  // make this flaky.)
  auto processed_mtime = fs::last_write_time(dir + "/f.emd");
  write("f.emd", 99);
  fs::last_write_time(dir + "/f.emd", processed_mtime);
  EXPECT_TRUE(watcher.scan_once().empty());
  EXPECT_TRUE(watcher.scan_once().empty());
}

// Regression: the checkpoint used to key by path + size only, so an
// instrument rewriting an acquisition in place at the same byte count was
// silently ignored. The mtime now participates in the key.
TEST_F(WatcherFixture, SameSizeRewriteWithNewMtimeTriggersAgain) {
  Checkpoint cp(journal);
  ASSERT_TRUE(cp.load());
  DirectoryWatcher watcher(config(1), &cp);
  write("r.emd", 42);
  EXPECT_TRUE(watcher.scan_once().empty());  // sighting
  ASSERT_EQ(watcher.scan_once().size(), 1u);
  // In-place rewrite at the same size, stamped one second later.
  write("r.emd", 42);
  fs::last_write_time(
      dir + "/r.emd",
      fs::last_write_time(dir + "/r.emd") + std::chrono::seconds(1));
  EXPECT_TRUE(watcher.scan_once().empty());  // sighting of the rewrite
  auto events = watcher.scan_once();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].size, 42);
  EXPECT_NE(events[0].mtime_ns, 0);
  // Nothing new afterwards: stays quiet.
  EXPECT_TRUE(watcher.scan_once().empty());
}

// Regression (partial-write race): stable_scans <= 1 used to emit a file on
// its very first sighting, dispatching acquisitions still streaming out of
// the instrument. The config is now clamped so emission always requires the
// size + mtime to hold across two polls.
TEST_F(WatcherFixture, PartialWriteNeverEmittedOnFirstSighting) {
  Checkpoint cp(journal);
  DirectoryWatcher watcher(config(1), &cp);
  EXPECT_EQ(watcher.config().stable_scans, 2);  // clamp visible to callers

  // Simulate an instrument writing incrementally: the file grows between
  // every poll. A single-scan watcher would have emitted the 100-byte
  // prefix immediately.
  write("partial.emd", 100);
  EXPECT_TRUE(watcher.scan_once().empty());
  write("partial.emd", 5000);
  EXPECT_TRUE(watcher.scan_once().empty());  // grew: restart count
  write("partial.emd", 9000);
  // Writer finished. The poll that first sees the final size is stable
  // observation #1; only the poll after it (size unchanged across two
  // polls) may emit.
  EXPECT_TRUE(watcher.scan_once().empty());
  auto events = watcher.scan_once();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].size, 9000);
}

TEST_F(WatcherFixture, LegacyJournalEntriesStillHonoured) {
  {
    std::ofstream out(journal);
    out << dir + "/old.emd" << "\t" << 10 << "\n";  // pre-mtime format
  }
  Checkpoint cp(journal);
  ASSERT_TRUE(cp.load());
  EXPECT_TRUE(cp.processed(dir + "/old.emd", 10, 123456789));
  EXPECT_FALSE(cp.processed(dir + "/old.emd", 11, 123456789));
}

TEST_F(WatcherFixture, VanishedPendingFileForgotten) {
  Checkpoint cp(journal);
  DirectoryWatcher watcher(config(3), &cp);
  write("tmp.emd", 10);
  EXPECT_TRUE(watcher.scan_once().empty());
  fs::remove(dir + "/tmp.emd");
  EXPECT_TRUE(watcher.scan_once().empty());
  // Re-created file starts the stability count over.
  write("tmp.emd", 10);
  EXPECT_TRUE(watcher.scan_once().empty());
  EXPECT_TRUE(watcher.scan_once().empty());
  EXPECT_EQ(watcher.scan_once().size(), 1u);
}

TEST_F(WatcherFixture, MissingDirectoryYieldsNoEvents) {
  Checkpoint cp(journal);
  WatcherConfig cfg;
  cfg.directory = dir + "/does-not-exist";
  DirectoryWatcher watcher(cfg, &cp);
  EXPECT_TRUE(watcher.scan_once().empty());
}

TEST_F(WatcherFixture, CheckpointMarkIdempotent) {
  Checkpoint cp(journal);
  ASSERT_TRUE(cp.load());
  ASSERT_TRUE(cp.mark("/p/a.emd", 10));
  ASSERT_TRUE(cp.mark("/p/a.emd", 10));
  EXPECT_EQ(cp.size(), 1u);
  EXPECT_TRUE(cp.processed("/p/a.emd", 10));
  EXPECT_FALSE(cp.processed("/p/a.emd", 11));
  // Journal contains exactly one line.
  std::ifstream in(journal);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_EQ(lines, 1);
}

TEST_F(WatcherFixture, WatcherWithoutCheckpointStillWorks) {
  DirectoryWatcher watcher(config(1), nullptr);
  write("x.emd", 5);
  EXPECT_TRUE(watcher.scan_once().empty());  // sighting
  EXPECT_EQ(watcher.scan_once().size(), 1u);
  // Without a checkpoint the file vanished from pending after the event, so
  // further scans re-detect it (sighting + stable again).
  EXPECT_TRUE(watcher.scan_once().empty());
  EXPECT_EQ(watcher.scan_once().size(), 1u);
}

}  // namespace
}  // namespace pico::watcher

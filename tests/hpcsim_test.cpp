// PBS scheduler tests: FIFO queueing, provisioning delay, release, walltime
// reclamation, cancellation.
#include <gtest/gtest.h>

#include "hpcsim/pbs.hpp"

namespace pico::hpcsim {
namespace {

ClusterConfig quick_cluster(int nodes) {
  ClusterConfig cfg;
  cfg.name = "test";
  cfg.node_count = nodes;
  cfg.provision_delay_s = 10.0;
  cfg.provision_jitter_s = 0.0;
  cfg.default_walltime_s = 1000.0;
  return cfg;
}

TEST(Pbs, JobStartsAfterProvisioningDelay) {
  sim::Engine engine;
  PbsScheduler pbs(&engine, quick_cluster(4));
  double started_at = -1;
  JobRequest req;
  req.nodes = 2;
  req.on_start = [&](const JobId&, const std::vector<NodeId>& nodes) {
    started_at = engine.now().seconds();
    EXPECT_EQ(nodes.size(), 2u);
  };
  JobId id = pbs.submit(std::move(req));
  EXPECT_EQ(pbs.state(id), JobState::Provisioning);
  EXPECT_EQ(pbs.free_nodes(), 2);
  // Stop before the default walltime reclaims the job.
  engine.run_until(sim::SimTime::from_seconds(50));
  EXPECT_NEAR(started_at, 10.0, 0.5);
  EXPECT_EQ(pbs.state(id), JobState::Running);
  EXPECT_EQ(pbs.jobs_started(), 1u);
}

TEST(Pbs, FifoQueueBlocksUntilNodesFree) {
  sim::Engine engine;
  PbsScheduler pbs(&engine, quick_cluster(2));
  std::vector<std::pair<int, double>> starts;
  JobId first_id;
  for (int i = 0; i < 3; ++i) {
    JobRequest req;
    req.nodes = 2;
    req.on_start = [&starts, i, &engine](const JobId&, const std::vector<NodeId>&) {
      starts.emplace_back(i, engine.now().seconds());
    };
    JobId id = pbs.submit(std::move(req));
    if (i == 0) first_id = id;
  }
  EXPECT_EQ(pbs.queue_depth(), 2u);
  engine.run_until(sim::SimTime::from_seconds(11));
  ASSERT_EQ(starts.size(), 1u);  // only the first job fits
  ASSERT_TRUE(pbs.release(first_id));
  engine.run_until(sim::SimTime::from_seconds(22));
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1].first, 1);  // FIFO order
}

TEST(Pbs, ReleaseReturnsNodes) {
  sim::Engine engine;
  PbsScheduler pbs(&engine, quick_cluster(4));
  JobRequest req;
  req.nodes = 3;
  JobId id = pbs.submit(std::move(req));
  engine.run_until(sim::SimTime::from_seconds(50));
  EXPECT_EQ(pbs.free_nodes(), 1);
  ASSERT_TRUE(pbs.release(id));
  EXPECT_EQ(pbs.free_nodes(), 4);
  EXPECT_EQ(pbs.state(id), JobState::Completed);
  EXPECT_FALSE(pbs.release(id));  // double release is an error
}

TEST(Pbs, WalltimeExpiryReclaimsNodes) {
  sim::Engine engine;
  auto cfg = quick_cluster(2);
  PbsScheduler pbs(&engine, cfg);
  bool expired = false;
  JobRequest req;
  req.nodes = 2;
  req.walltime_s = 50.0;
  req.on_expire = [&](const JobId&) { expired = true; };
  JobId id = pbs.submit(std::move(req));
  engine.run();
  EXPECT_TRUE(expired);
  EXPECT_EQ(pbs.state(id), JobState::Completed);
  EXPECT_EQ(pbs.free_nodes(), 2);
  // Expiry fires at provision (10) + walltime (50).
  EXPECT_NEAR(engine.now().seconds(), 60.0, 0.5);
}

TEST(Pbs, ReleaseBeforeWalltimeCancelsExpiry) {
  sim::Engine engine;
  PbsScheduler pbs(&engine, quick_cluster(1));
  bool expired = false;
  JobRequest req;
  req.walltime_s = 100.0;
  req.on_expire = [&](const JobId&) { expired = true; };
  JobId id = pbs.submit(std::move(req));
  engine.run_until(sim::SimTime::from_seconds(20));
  ASSERT_TRUE(pbs.release(id));
  engine.run();
  EXPECT_FALSE(expired);
}

TEST(Pbs, CancelQueuedJob) {
  sim::Engine engine;
  PbsScheduler pbs(&engine, quick_cluster(1));
  JobRequest hog;
  hog.nodes = 1;
  JobId hog_id = pbs.submit(std::move(hog));
  JobRequest queued;
  queued.nodes = 1;
  bool started = false;
  queued.on_start = [&](const JobId&, const std::vector<NodeId>&) {
    started = true;
  };
  JobId queued_id = pbs.submit(std::move(queued));
  EXPECT_EQ(pbs.state(queued_id), JobState::Queued);
  ASSERT_TRUE(pbs.cancel(queued_id));
  engine.run();
  EXPECT_FALSE(started);
  EXPECT_EQ(pbs.state(queued_id), JobState::Cancelled);
  // Cannot cancel a job that already started provisioning.
  EXPECT_FALSE(pbs.cancel(hog_id));
}

TEST(Pbs, WalltimeExpiryUnblocksQueue) {
  sim::Engine engine;
  PbsScheduler pbs(&engine, quick_cluster(1));
  JobRequest first;
  first.walltime_s = 30.0;
  pbs.submit(std::move(first));
  double second_started = -1;
  JobRequest second;
  second.on_start = [&](const JobId&, const std::vector<NodeId>&) {
    second_started = engine.now().seconds();
  };
  pbs.submit(std::move(second));
  engine.run();
  // First: provision 10 + walltime 30 = 40; second provisions 10 more.
  EXPECT_NEAR(second_started, 50.0, 1.0);
}

TEST(Pbs, UnknownJobOperationsFail) {
  sim::Engine engine;
  PbsScheduler pbs(&engine, quick_cluster(1));
  EXPECT_FALSE(pbs.release("nope"));
  EXPECT_FALSE(pbs.cancel("nope"));
  EXPECT_EQ(pbs.state("nope"), JobState::Cancelled);
}

TEST(Pbs, OversizedJobWaitsForever) {
  sim::Engine engine;
  PbsScheduler pbs(&engine, quick_cluster(2));
  bool started = false;
  JobRequest req;
  req.nodes = 5;  // larger than the cluster
  req.on_start = [&](const JobId&, const std::vector<NodeId>&) { started = true; };
  JobId id = pbs.submit(std::move(req));
  engine.run();
  EXPECT_FALSE(started);
  EXPECT_EQ(pbs.state(id), JobState::Queued);
}

}  // namespace
}  // namespace pico::hpcsim

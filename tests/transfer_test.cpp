// Transfer service tests: auth, task lifecycle, data delivery + integrity,
// compression, fault injection + retry, live progress, settling.
#include <gtest/gtest.h>

#include "auth/auth.hpp"
#include "net/network.hpp"
#include "storage/store.hpp"
#include "telemetry/telemetry.hpp"
#include "transfer/service.hpp"
#include "util/crc64.hpp"

namespace pico::transfer {
namespace {

struct TransferFixture : ::testing::Test {
  sim::Engine engine;
  net::Topology topo;
  std::unique_ptr<net::Network> network;
  auth::AuthService auth;
  storage::Store src_store{"src", static_cast<int64_t>(1e12)};
  storage::Store dst_store{"dst", static_cast<int64_t>(1e12)};
  std::unique_ptr<TransferService> service;
  auth::Token token;
  net::LinkId link = 0;

  void setup_service(TransferConfig cfg) {
    net::NodeId a = topo.add_node("src");
    net::NodeId b = topo.add_node("dst");
    link = topo.add_link(a, b, 80e6);  // 10 MB/s
    network = std::make_unique<net::Network>(&engine, &topo);
    service = std::make_unique<TransferService>(&engine, network.get(), &auth,
                                                cfg, 42);
    service->register_endpoint("ep-src", a, &src_store);
    service->register_endpoint("ep-dst", b, &dst_store);
    token = auth.issue("user@anl.gov", {"transfer"});
  }

  TransferConfig quick_config() {
    TransferConfig cfg;
    cfg.setup_mean_s = 1.0;
    cfg.setup_jitter_s = 0.0;
    cfg.per_file_overhead_s = 0.1;
    cfg.settle_base_s = 0.2;
    cfg.settle_per_gb_s = 0.0;
    cfg.cap_jitter_frac = 0.0;
    return cfg;
  }

  TransferRequest single_file(const std::string& src, const std::string& dst) {
    TransferRequest req;
    req.src_endpoint = "ep-src";
    req.dst_endpoint = "ep-dst";
    req.files = {{src, dst}};
    return req;
  }
};

TEST_F(TransferFixture, RequiresValidTokenAndScope) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put("f", std::vector<uint8_t>(10), engine.now()));
  EXPECT_FALSE(service->submit(single_file("f", "g"), "bogus-token"));
  auth::Token wrong_scope = auth.issue("user@anl.gov", {"compute"});
  auto denied = service->submit(single_file("f", "g"), wrong_scope);
  ASSERT_FALSE(denied);
  EXPECT_EQ(denied.error().code, "denied");
  EXPECT_TRUE(service->submit(single_file("f", "g"), token));
}

TEST_F(TransferFixture, ValidatesEndpointsAndFiles) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put("f", std::vector<uint8_t>(10), engine.now()));
  {
    auto req = single_file("f", "g");
    req.src_endpoint = "nope";
    EXPECT_FALSE(service->submit(req, token));
  }
  {
    auto req = single_file("f", "g");
    req.dst_endpoint = "nope";
    EXPECT_FALSE(service->submit(req, token));
  }
  {
    auto req = single_file("missing.emd", "g");
    EXPECT_FALSE(service->submit(req, token));
  }
  {
    TransferRequest req;
    req.src_endpoint = "ep-src";
    req.dst_endpoint = "ep-dst";
    EXPECT_FALSE(service->submit(req, token));  // empty file list
  }
  {
    auto req = single_file("f", "g");
    req.codec = "zstd";  // unknown codec
    EXPECT_FALSE(service->submit(req, token));
  }
}

TEST_F(TransferFixture, DeliversRealContentWithChecksum) {
  setup_service(quick_config());
  sim::Trace trace;
  telemetry::Telemetry tel(&trace);
  service->set_telemetry(&tel);
  std::vector<uint8_t> payload(1'000'000);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(src_store.put("data.emd", payload, engine.now()));

  auto task = service->submit(single_file("data.emd", "exp/data.emd"), token);
  ASSERT_TRUE(task);
  EXPECT_EQ(service->status(task.value()).state, TaskState::Pending);
  engine.run();

  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_EQ(info.bytes_done, 1'000'000);
  EXPECT_EQ(info.files_done, 1);
  auto delivered = dst_store.get("exp/data.emd");
  ASSERT_TRUE(delivered);
  EXPECT_EQ(*delivered.value()->content, payload);
  // The landing checksum was fused into the copy (no re-scan pass), and the
  // delivered object carries the correct manifest checksum anyway.
  EXPECT_EQ(delivered.value()->crc64, util::crc64(payload));
  EXPECT_TRUE(delivered.value()->intact());
  EXPECT_NE(tel.metrics.to_prometheus().find("transfer_crc_fused_total 1"),
            std::string::npos);
}

TEST_F(TransferFixture, VirtualObjectsDeliverSizeOnly) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put_virtual("big.emd", 50'000'000, 0x1234, engine.now()));
  auto task = service->submit(single_file("big.emd", "big.emd"), token);
  ASSERT_TRUE(task);
  engine.run();
  EXPECT_EQ(service->status(task.value()).state, TaskState::Succeeded);
  auto obj = dst_store.get("big.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj.value()->size, 50'000'000);
  EXPECT_EQ(obj.value()->crc64, 0x1234u);
  EXPECT_FALSE(obj.value()->has_content());
}

TEST_F(TransferFixture, MultiFileBatchTransfersSequentially) {
  setup_service(quick_config());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(src_store.put("f" + std::to_string(i),
                              std::vector<uint8_t>(1000), engine.now()));
  }
  TransferRequest req;
  req.src_endpoint = "ep-src";
  req.dst_endpoint = "ep-dst";
  req.files = {{"f0", "o0"}, {"f1", "o1"}, {"f2", "o2"}};
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_EQ(info.files_done, 3);
  EXPECT_EQ(info.bytes_done, 3000);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(dst_store.exists("o" + std::to_string(i)));
  }
}

TEST_F(TransferFixture, CompressionReducesWireBytesAndRoundTrips) {
  setup_service(quick_config());
  std::vector<uint8_t> compressible(500'000, 42);
  ASSERT_TRUE(src_store.put("c.emd", compressible, engine.now()));
  auto req = single_file("c.emd", "c.emd");
  req.codec = "rle";
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_LT(info.wire_bytes, info.bytes_total / 10);
  auto obj = dst_store.get("c.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(*obj.value()->content, compressible);  // decompressed at dst
}

TEST_F(TransferFixture, VirtualCompressionUsesAssumedRatio) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put_virtual("v.emd", 10'000'000, 1, engine.now()));
  auto req = single_file("v.emd", "v.emd");
  req.codec = "lz";
  req.assumed_virtual_ratio = 4.0;
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_EQ(info.wire_bytes, 2'500'000);
}

TEST_F(TransferFixture, FaultsRetryUntilSuccess) {
  auto cfg = quick_config();
  cfg.fault_prob = 0.5;
  cfg.max_retries = 50;
  cfg.retry_backoff_s = 0.1;
  setup_service(cfg);
  // Many tasks: with p=0.5 per file, some faults occur with overwhelming
  // probability, and every one must be absorbed by a retry.
  std::vector<TaskId> tasks;
  for (int i = 0; i < 20; ++i) {
    std::string name = "f" + std::to_string(i) + ".emd";
    ASSERT_TRUE(src_store.put(name, std::vector<uint8_t>(10'000), engine.now()));
    auto task = service->submit(single_file(name, name), token);
    ASSERT_TRUE(task);
    tasks.push_back(task.value());
  }
  engine.run();
  int total_faults = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    TaskInfo info = service->status(tasks[i]);
    EXPECT_EQ(info.state, TaskState::Succeeded) << i;
    total_faults += info.faults;
    EXPECT_TRUE(dst_store.exists("f" + std::to_string(i) + ".emd"));
  }
  EXPECT_GT(total_faults, 0);
}

TEST_F(TransferFixture, RetryLimitFailsTask) {
  auto cfg = quick_config();
  cfg.fault_prob = 1.0;  // always faults
  cfg.max_retries = 2;
  cfg.retry_backoff_s = 0.1;
  setup_service(cfg);
  ASSERT_TRUE(src_store.put("f.emd", std::vector<uint8_t>(100), engine.now()));
  auto task = service->submit(single_file("f.emd", "f.emd"), token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Failed);
  EXPECT_NE(info.error.find("retry limit"), std::string::npos);
}

TEST_F(TransferFixture, DestinationCapacityFailureReported) {
  setup_service(quick_config());
  storage::Store tiny("tiny", 10);
  net::NodeId c = topo.add_node("tiny-node");
  topo.add_link(topo.node("src").value(), c, 80e6);
  service->register_endpoint("ep-tiny", c, &tiny);
  ASSERT_TRUE(src_store.put("f", std::vector<uint8_t>(1000), engine.now()));
  TransferRequest req;
  req.src_endpoint = "ep-src";
  req.dst_endpoint = "ep-tiny";
  req.files = {{"f", "f"}};
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  engine.run();
  EXPECT_EQ(service->status(task.value()).state, TaskState::Failed);
}

TEST_F(TransferFixture, LiveProgressVisibleMidTransfer) {
  auto cfg = quick_config();
  setup_service(cfg);
  // 10 MB at 10 MB/s -> ~1 s of wire time after ~1.1 s of setup.
  ASSERT_TRUE(src_store.put_virtual("p.emd", 10'000'000, 7, engine.now()));
  auto task = service->submit(single_file("p.emd", "p.emd"), token);
  ASSERT_TRUE(task);
  engine.run_until(sim::SimTime::from_seconds(1.6));  // mid-wire
  TaskInfo mid = service->status(task.value());
  EXPECT_EQ(mid.state, TaskState::Active);
  EXPECT_GT(mid.bytes_done, 0);
  EXPECT_LT(mid.bytes_done, 10'000'000);
  engine.run();
  EXPECT_EQ(service->status(task.value()).bytes_done, 10'000'000);
}

TEST_F(TransferFixture, SettlingDelaysVisibilityNotActivity) {
  auto cfg = quick_config();
  cfg.settle_base_s = 5.0;
  setup_service(cfg);
  ASSERT_TRUE(src_store.put("f", std::vector<uint8_t>(1000), engine.now()));
  auto task = service->submit(single_file("f", "f"), token);
  ASSERT_TRUE(task);
  bool settled = false;
  sim::SimTime settle_time;
  service->on_settled(task.value(), [&](const TaskInfo& info) {
    settled = true;
    settle_time = engine.now();
    // Activity interval excludes the settle window.
    EXPECT_LT(info.completed.seconds() + 4.0, engine.now().seconds() + 0.01);
  });
  engine.run();
  EXPECT_TRUE(settled);
}

TEST_F(TransferFixture, UnknownTaskStatusIsFailed) {
  setup_service(quick_config());
  EXPECT_EQ(service->status("xfer-999999").state, TaskState::Failed);
}

TEST_F(TransferFixture, ChunkedTransferStreamsCumulativeProgress) {
  setup_service(quick_config());
  // 10 MB in 2 MB chunks over a 10 MB/s link: five chunk landings.
  ASSERT_TRUE(src_store.put_virtual("c.emd", 10'000'000, 11, engine.now()));
  auto req = single_file("c.emd", "c.emd");
  req.streaming_chunk_bytes = 2'000'000;
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  std::vector<int64_t> seen;
  EXPECT_TRUE(service->on_progress(task.value(),
                                   [&](int64_t bytes) { seen.push_back(bytes); }));
  engine.run();
  ASSERT_GE(seen.size(), 2u);  // genuinely incremental, not one final burst
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_GT(seen[i], seen[i - 1]);
  EXPECT_EQ(seen.back(), 10'000'000);
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_EQ(info.bytes_done, info.bytes_total);
  EXPECT_EQ(info.files_done, 1);
  EXPECT_TRUE(dst_store.exists("c.emd"));
}

TEST_F(TransferFixture, ChunkedAndClassicTransfersMatchFinalState) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put_virtual("a.emd", 6'000'000, 3, engine.now()));
  ASSERT_TRUE(src_store.put_virtual("b.emd", 6'000'000, 3, engine.now()));
  auto classic = service->submit(single_file("a.emd", "a.emd"), token);
  ASSERT_TRUE(classic);
  engine.run();
  auto req = single_file("b.emd", "b.emd");
  req.streaming_chunk_bytes = 1'000'000;
  auto chunked = service->submit(req, token);
  ASSERT_TRUE(chunked);
  engine.run();
  TaskInfo c = service->status(classic.value());
  TaskInfo s = service->status(chunked.value());
  EXPECT_EQ(c.state, TaskState::Succeeded);
  EXPECT_EQ(s.state, TaskState::Succeeded);
  EXPECT_EQ(s.bytes_total, c.bytes_total);
  EXPECT_EQ(s.bytes_done, c.bytes_done);
  EXPECT_EQ(s.wire_bytes, c.wire_bytes);
  EXPECT_EQ(s.files_done, c.files_done);
  EXPECT_TRUE(dst_store.exists("b.emd"));
}

// --- chunk-size clamping (request validation boundaries) ---

TEST_F(TransferFixture, ChunkBytesClampedUpToOne) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put("tiny.emd", std::vector<uint8_t>(10), engine.now()));
  auto req = single_file("tiny.emd", "tiny.emd");
  req.streaming_chunk_bytes = -5;  // nonsense: clamped to 1 byte
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  std::vector<int64_t> seen;
  ASSERT_TRUE(service->on_progress(task.value(),
                                   [&](int64_t b) { seen.push_back(b); }));
  engine.run();
  EXPECT_EQ(service->status(task.value()).state, TaskState::Succeeded);
  // 1-byte chunks over a 10-byte file: ten incremental landings.
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.back(), 10);
}

TEST_F(TransferFixture, ChunkBytesClampedDownToFileSize) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put_virtual("big.emd", 10'000'000, 5, engine.now()));
  auto req = single_file("big.emd", "big.emd");
  req.streaming_chunk_bytes = static_cast<int64_t>(1e15);  // way over the file
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  std::vector<int64_t> seen;
  ASSERT_TRUE(service->on_progress(task.value(),
                                   [&](int64_t b) { seen.push_back(b); }));
  engine.run();
  EXPECT_EQ(service->status(task.value()).state, TaskState::Succeeded);
  // Clamped to one whole-file chunk: exactly one landing, not zero and not a
  // degenerate overshoot.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 10'000'000);
}

TEST_F(TransferFixture, ZeroChunkBytesStaysClassic) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put("f.emd", std::vector<uint8_t>(100), engine.now()));
  auto req = single_file("f.emd", "f.emd");
  req.streaming_chunk_bytes = 0;  // explicit classic mode, no clamping
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  EXPECT_FALSE(service->on_progress(task.value(), [](int64_t) {}));
  engine.run();
  EXPECT_EQ(service->status(task.value()).state, TaskState::Succeeded);
}

// --- verified resumable transfers ---

// A retry of a transfer whose earlier attempt verified some chunks resumes
// from the manifest instead of re-sending the whole file. The retried task's
// own wire traffic must stay under 60% of the file (the earlier attempt had
// landed half of it).
TEST_F(TransferFixture, RetriedTransferResumesFromVerifiedChunks) {
  auto cfg = quick_config();
  cfg.max_retries = 10;
  cfg.retry_backoff_s = 0.2;
  setup_service(cfg);
  ASSERT_TRUE(src_store.put_virtual("r.emd", 10'000'000, 9, engine.now()));
  auto req = single_file("r.emd", "r.emd");
  req.streaming_chunk_bytes = 2'000'000;  // 5 chunks, one every 0.2 s of wire
  auto first = service->submit(req, token);
  ASSERT_TRUE(first);

  // Chunk landings: ~1.3, 1.5, 1.7, ... Partition mid-file with three chunks
  // verified and the fourth stalled in flight.
  engine.schedule_at(sim::SimTime::from_seconds(1.75), [&] {
    topo.set_link_up(link, false);
    network->rates_changed();
  });
  // The orchestrator gives up on the stalled attempt and retries while the
  // link is still down; the retry's chunk sends fail fast (no route) and back
  // off until the link heals.
  util::Result<TaskId> second = util::Result<TaskId>::err("not submitted");
  engine.schedule_at(sim::SimTime::from_seconds(2.5),
                     [&] { second = service->submit(req, token); });
  engine.schedule_at(sim::SimTime::from_seconds(8.0), [&] {
    topo.set_link_up(link, true);
    network->rates_changed();
  });
  engine.run();

  ASSERT_TRUE(second);
  TaskInfo retry = service->status(second.value());
  EXPECT_EQ(retry.state, TaskState::Succeeded) << retry.error;
  EXPECT_GE(retry.chunks_resumed, 3);  // picked up the verified prefix
  // The acceptance bound: the retried transfer moved < 60% of file bytes.
  EXPECT_LT(retry.wire_bytes, static_cast<int64_t>(0.6 * 10'000'000));
  EXPECT_TRUE(dst_store.exists("r.emd"));
}

// The pre-PR behaviour, selectable via config: with verified resume off the
// retried transfer re-sends everything, so the two attempts together push at
// least 150% of the file over the wire.
TEST_F(TransferFixture, RestartModeResendsWholeFile) {
  auto cfg = quick_config();
  cfg.verified_resume = false;
  cfg.max_retries = 10;
  cfg.retry_backoff_s = 0.2;
  setup_service(cfg);
  ASSERT_TRUE(src_store.put_virtual("r.emd", 10'000'000, 9, engine.now()));
  auto req = single_file("r.emd", "r.emd");
  req.streaming_chunk_bytes = 2'000'000;
  auto first = service->submit(req, token);
  ASSERT_TRUE(first);
  engine.schedule_at(sim::SimTime::from_seconds(1.75), [&] {
    topo.set_link_up(link, false);
    network->rates_changed();
  });
  util::Result<TaskId> second = util::Result<TaskId>::err("not submitted");
  engine.schedule_at(sim::SimTime::from_seconds(2.5),
                     [&] { second = service->submit(req, token); });
  engine.schedule_at(sim::SimTime::from_seconds(8.0), [&] {
    topo.set_link_up(link, true);
    network->rates_changed();
  });
  engine.run();

  ASSERT_TRUE(second);
  TaskInfo a = service->status(first.value());
  TaskInfo b = service->status(second.value());
  EXPECT_EQ(a.state, TaskState::Succeeded) << a.error;
  EXPECT_EQ(b.state, TaskState::Succeeded) << b.error;
  EXPECT_EQ(b.chunks_resumed, 0);
  // Both attempts moved the whole file: >= 150% of the bytes crossed the wire.
  EXPECT_GE(a.wire_bytes + b.wire_bytes,
            static_cast<int64_t>(1.5 * 10'000'000));
}

// Re-transferring an already-delivered file with an intact manifest moves
// (nearly) nothing: rsync-like semantics from the chunk manifest.
TEST_F(TransferFixture, CompletedManifestMakesRepeatTransferFree) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put_virtual("dup.emd", 10'000'000, 4, engine.now()));
  auto req = single_file("dup.emd", "dup.emd");
  req.streaming_chunk_bytes = 2'000'000;
  auto first = service->submit(req, token);
  ASSERT_TRUE(first);
  engine.run();
  ASSERT_EQ(service->status(first.value()).state, TaskState::Succeeded);

  auto second = service->submit(req, token);
  ASSERT_TRUE(second);
  engine.run();
  TaskInfo info = service->status(second.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_EQ(info.wire_bytes, 0);  // every chunk already verified
  EXPECT_EQ(info.chunks_resumed, 5);
  EXPECT_EQ(info.bytes_done, 10'000'000);  // still reports full delivery
}

// A mid-campaign re-acquisition rewrites the source path with the same size
// and declared CRC, producing the same transfer identity. The fresh source
// stamp must invalidate the old manifest: a resend moves every byte again
// instead of "resuming" data that was never transferred.
TEST_F(TransferFixture, ReacquiredSourceInvalidatesManifest) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put_virtual("re.emd", 10'000'000, 7, engine.now()));
  auto req = single_file("re.emd", "re.emd");
  req.streaming_chunk_bytes = 2'000'000;
  auto first = service->submit(req, token);
  ASSERT_TRUE(first);
  engine.run();
  ASSERT_EQ(service->status(first.value()).state, TaskState::Succeeded);

  // Re-acquire: same path, same size, same declared CRC — new object.
  ASSERT_TRUE(src_store.put_virtual("re.emd", 10'000'000, 7, engine.now()));
  auto second = service->submit(req, token);
  ASSERT_TRUE(second);
  engine.run();
  TaskInfo info = service->status(second.value());
  EXPECT_EQ(info.state, TaskState::Succeeded) << info.error;
  EXPECT_EQ(info.chunks_resumed, 0);         // nothing carried over
  EXPECT_GE(info.wire_bytes, 10'000'000);    // full resend

  // A third pass without re-acquisition resumes from the rebuilt manifest.
  auto third = service->submit(req, token);
  ASSERT_TRUE(third);
  engine.run();
  EXPECT_EQ(service->status(third.value()).chunks_resumed, 5);
}

// Wire bit-flips are detected by the per-chunk CRC and absorbed by re-sending
// only the corrupted chunk.
TEST_F(TransferFixture, WireCorruptionDetectedAndHealedPerChunk) {
  auto cfg = quick_config();
  cfg.max_retries = 8;
  cfg.retry_backoff_s = 0.1;
  setup_service(cfg);
  service->set_wire_corruption_prob(0.3);
  ASSERT_TRUE(src_store.put_virtual("w.emd", 20'000'000, 2, engine.now()));
  auto req = single_file("w.emd", "w.emd");
  req.streaming_chunk_bytes = 1'000'000;  // 20 chunks: corruption near-certain
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded) << info.error;
  EXPECT_GT(info.corruption_detected, 0);
  // Damaged chunks crossed the wire twice, but the whole file never did.
  EXPECT_GT(info.wire_bytes, 20'000'000);
  EXPECT_LT(info.wire_bytes, 40'000'000);
  EXPECT_TRUE(dst_store.exists("w.emd"));
}

TEST_F(TransferFixture, PersistentWireCorruptionFailsTask) {
  auto cfg = quick_config();
  cfg.max_retries = 3;
  cfg.retry_backoff_s = 0.1;
  setup_service(cfg);
  service->set_wire_corruption_prob(1.0);  // every chunk lands damaged
  ASSERT_TRUE(src_store.put_virtual("bad.emd", 4'000'000, 6, engine.now()));
  auto req = single_file("bad.emd", "bad.emd");
  req.streaming_chunk_bytes = 2'000'000;
  auto task = service->submit(req, token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Failed);
  EXPECT_NE(info.error.find("CRC"), std::string::npos) << info.error;
}

// Truncated landings (the destination object is shorter than declared) are
// caught by post-delivery verification and the file is re-sent.
TEST_F(TransferFixture, TruncatedLandingRetriedUntilIntact) {
  auto cfg = quick_config();
  cfg.max_retries = 30;
  cfg.retry_backoff_s = 0.05;
  setup_service(cfg);
  service->set_truncation_prob(0.5);
  std::vector<TaskId> tasks;
  for (int i = 0; i < 8; ++i) {
    std::string name = "t" + std::to_string(i) + ".emd";
    ASSERT_TRUE(src_store.put(name, std::vector<uint8_t>(50'000), engine.now()));
    auto task = service->submit(single_file(name, name), token);
    ASSERT_TRUE(task);
    tasks.push_back(task.value());
  }
  engine.run();
  int detected = 0;
  for (const auto& id : tasks) {
    TaskInfo info = service->status(id);
    EXPECT_EQ(info.state, TaskState::Succeeded) << info.error;
    detected += info.corruption_detected;
  }
  EXPECT_GT(detected, 0);
  // Every delivered object is intact despite the injected truncations.
  for (int i = 0; i < 8; ++i) {
    auto obj = dst_store.get("t" + std::to_string(i) + ".emd");
    ASSERT_TRUE(obj);
    EXPECT_TRUE(obj.value()->intact());
  }
}

TEST_F(TransferFixture, ProgressHookRejectsClassicAndUnknownTasks) {
  setup_service(quick_config());
  ASSERT_TRUE(src_store.put("f", std::vector<uint8_t>(100), engine.now()));
  auto task = service->submit(single_file("f", "f"), token);
  ASSERT_TRUE(task);
  EXPECT_FALSE(service->on_progress(task.value(), [](int64_t) {}));
  EXPECT_FALSE(service->on_progress("xfer-999999", [](int64_t) {}));
  engine.run();
  EXPECT_EQ(service->status(task.value()).state, TaskState::Succeeded);
}

}  // namespace
}  // namespace pico::transfer

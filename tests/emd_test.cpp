// EMD-lite format tests: round-trips, metadata-only reads, corruption
// detection, schema conventions, fuzz robustness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "emd/file.hpp"
#include "emd/schema.hpp"
#include "tensor/tensor.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace pico::emd {
namespace {

File sample_file() {
  File f;
  f.root.attrs["format"] = "EMD-lite";
  Group& g = f.root.ensure_group("data/signal0");
  g.attrs["signal_kind"] = "hyperspectral";

  tensor::Tensor<double> cube(tensor::Shape{2, 3, 4});
  for (size_t i = 0; i < cube.size(); ++i) cube[i] = static_cast<double>(i) * 0.5;
  g.datasets.emplace("data", Dataset::from_tensor(cube));

  tensor::Tensor<uint16_t> aux(tensor::Shape{5});
  for (size_t i = 0; i < 5; ++i) aux[i] = static_cast<uint16_t>(i * 100);
  f.root.ensure_group("calibration").datasets.emplace("gains",
                                                      Dataset::from_tensor(aux));
  return f;
}

TEST(EmdFile, RoundTripPreservesTree) {
  File f = sample_file();
  auto bytes = f.to_bytes();
  auto re = File::from_bytes(bytes);
  ASSERT_TRUE(re);
  const File& g = re.value();

  EXPECT_EQ(g.root.attrs.at("format").as_string(), "EMD-lite");
  const Dataset* ds = g.root.find_dataset("data/signal0/data");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->dtype(), tensor::DType::F64);
  EXPECT_EQ(ds->shape(), (tensor::Shape{2, 3, 4}));
  auto cube = ds->as<double>();
  ASSERT_TRUE(cube);
  EXPECT_DOUBLE_EQ(cube.value()(1, 2, 3), 23 * 0.5);

  const Dataset* aux = g.root.find_dataset("calibration/gains");
  ASSERT_NE(aux, nullptr);
  auto gains = aux->as<uint16_t>();
  ASSERT_TRUE(gains);
  EXPECT_EQ(gains.value()(4), 400);
}

TEST(EmdFile, MetadataOnlyReadSkipsPayloads) {
  File f = sample_file();
  auto bytes = f.to_bytes();
  auto re = File::from_bytes(bytes, /*with_payload=*/false);
  ASSERT_TRUE(re);
  const Dataset* ds = re.value().root.find_dataset("data/signal0/data");
  ASSERT_NE(ds, nullptr);
  EXPECT_FALSE(ds->payload_loaded());
  EXPECT_EQ(ds->shape(), (tensor::Shape{2, 3, 4}));
  EXPECT_EQ(ds->nbytes(), 2u * 3 * 4 * 8);
  EXPECT_FALSE(ds->as<double>());  // payload absent
  // Total payload accounting still works from metadata.
  EXPECT_EQ(re.value().payload_bytes(), f.payload_bytes());
}

TEST(EmdFile, DetectsPayloadCorruption) {
  File f = sample_file();
  auto bytes = f.to_bytes();
  bytes[bytes.size() - 3] ^= 0xFF;  // flip payload byte
  auto re = File::from_bytes(bytes);
  ASSERT_FALSE(re);
  EXPECT_EQ(re.error().code, "corrupt");
}

TEST(EmdFile, RejectsBadMagicAndTruncation) {
  File f = sample_file();
  auto bytes = f.to_bytes();
  {
    auto bad = bytes;
    bad[0] = 'X';
    EXPECT_FALSE(File::from_bytes(bad));
  }
  for (size_t cut : {0UL, 3UL, 10UL, bytes.size() / 2}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(File::from_bytes(truncated)) << "cut=" << cut;
  }
}

TEST(EmdFile, FuzzedInputNeverCrashes) {
  util::Rng rng(0xF022);
  File f = sample_file();
  auto bytes = f.to_bytes();
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = bytes;
    int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < flips; ++i) {
      size_t pos = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(mutated.size() - 1)));
      mutated[pos] ^= static_cast<uint8_t>(rng.uniform_int(1, 255));
    }
    auto re = File::from_bytes(mutated);  // must not crash; may fail or pass
    (void)re;
  }
}

TEST(EmdFile, SaveAndLoad) {
  std::string path = testing::TempDir() + "/emd_test_roundtrip.emd";
  File f = sample_file();
  ASSERT_TRUE(f.save(path));
  auto re = File::load(path);
  ASSERT_TRUE(re);
  EXPECT_EQ(re.value().payload_bytes(), f.payload_bytes());
  EXPECT_FALSE(File::load(path + ".missing"));
}

TEST(EmdFile, DatasetTypeMismatchIsError) {
  File f = sample_file();
  const Dataset* ds = f.root.find_dataset("data/signal0/data");
  ASSERT_NE(ds, nullptr);
  EXPECT_FALSE(ds->as<float>());
  EXPECT_TRUE(ds->as<double>());
}

TEST(EmdFile, EmptyFileRoundTrips) {
  File f;
  auto re = File::from_bytes(f.to_bytes());
  ASSERT_TRUE(re);
  EXPECT_TRUE(re.value().root.groups.empty());
  EXPECT_EQ(re.value().payload_bytes(), 0u);
}

TEST(EmdFile, GroupPathHelpers) {
  File f;
  Group& g = f.root.ensure_group("a/b/c");
  g.attrs["x"] = 1;
  EXPECT_NE(f.root.find_group("a/b/c"), nullptr);
  EXPECT_EQ(f.root.find_group("a/b/c")->attrs.at("x").as_int(), 1);
  EXPECT_EQ(f.root.find_group("a/missing"), nullptr);
  EXPECT_EQ(f.root.find_dataset("a/b/c/nothing"), nullptr);
  // ensure_group is idempotent.
  EXPECT_EQ(&f.root.ensure_group("a/b/c"), &g);
}

TEST(EmdFile, ZeroElementDatasetSupported) {
  File f;
  tensor::Tensor<double> empty(tensor::Shape{0, 4});
  f.root.ensure_group("data/empty").datasets.emplace(
      "data", Dataset::from_tensor(empty));
  auto re = File::from_bytes(f.to_bytes());
  ASSERT_TRUE(re);
  const Dataset* ds = re.value().root.find_dataset("data/empty/data");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->element_count(), 0u);
}

// ---- schema conventions ----

TEST(EmdSchema, MicroscopeSettingsRoundTrip) {
  MicroscopeSettings s;
  s.beam_energy_kv = 120;
  s.stage_x_um = 1.5;
  s.environment = "cryogenic";
  MicroscopeSettings t = MicroscopeSettings::from_json(s.to_json());
  EXPECT_DOUBLE_EQ(t.beam_energy_kv, 120);
  EXPECT_DOUBLE_EQ(t.stage_x_um, 1.5);
  EXPECT_EQ(t.environment, "cryogenic");
  EXPECT_EQ(t.detector, s.detector);
}

TEST(EmdSchema, StandardMetadataAndSignals) {
  File f;
  MicroscopeSettings scope;
  write_standard_metadata(f, scope, "2023-04-07T10:00:00Z", "gold on carbon",
                          "operator@anl.gov");

  tensor::Tensor<double> stack(tensor::Shape{3, 4, 4});
  add_signal(f, "movie", SignalKind::Spatiotemporal,
             Dataset::from_tensor(stack), {"time", "height", "width"});

  auto name = first_signal_name(f);
  ASSERT_TRUE(name);
  EXPECT_EQ(name.value(), "movie");
  auto kind = signal_kind(f, "movie");
  ASSERT_TRUE(kind);
  EXPECT_EQ(kind.value(), SignalKind::Spatiotemporal);
  EXPECT_FALSE(signal_kind(f, "nope"));

  // Round trip keeps the conventions intact.
  auto re = File::from_bytes(f.to_bytes());
  ASSERT_TRUE(re);
  EXPECT_EQ(re.value().root.attrs.at("acquired").as_string(),
            "2023-04-07T10:00:00Z");
  auto kind2 = signal_kind(re.value(), "movie");
  ASSERT_TRUE(kind2);
  EXPECT_EQ(kind2.value(), SignalKind::Spatiotemporal);
}

TEST(EmdSchema, FirstSignalOnEmptyFileIsError) {
  File f;
  EXPECT_FALSE(first_signal_name(f));
}

}  // namespace
}  // namespace pico::emd

// ----------------------------------------------------------------- HMSA ----
#include "emd/hmsa.hpp"

namespace pico::emd {
namespace {

File hmsa_sample() {
  File f;
  MicroscopeSettings scope;
  scope.beam_energy_kv = 200;
  write_standard_metadata(f, scope, "2023-04-07T08:00:00Z",
                          "hmsa round trip sample", "operator@anl.gov");
  tensor::Tensor<double> cube(tensor::Shape{4, 5, 6});
  for (size_t i = 0; i < cube.size(); ++i) cube[i] = std::sqrt(static_cast<double>(i));
  add_signal(f, "hyperspectral", SignalKind::Hyperspectral,
             Dataset::from_tensor(cube), {"height", "width", "energy"},
             util::Json::object({{"energy_min_kev", 0.0},
                                 {"energy_max_kev", 20.0}}));
  tensor::Tensor<uint8_t> frames(tensor::Shape{2, 3, 3});
  frames(1, 2, 2) = 99;
  add_signal(f, "movie", SignalKind::Spatiotemporal,
             Dataset::from_tensor(frames), {"time", "height", "width"});
  return f;
}

TEST(Hmsa, RoundTripPreservesSignalsAndMetadata) {
  File original = hmsa_sample();
  auto pair = to_hmsa(original);
  ASSERT_TRUE(pair);
  EXPECT_NE(pair.value().xml.find("MSAHyperDimensionalDataFile"),
            std::string::npos);
  EXPECT_EQ(pair.value().binary.size(), original.payload_bytes());

  auto back = from_hmsa(pair.value());
  ASSERT_TRUE(back);
  const File& f = back.value();
  // Header attributes survive.
  EXPECT_EQ(f.root.attrs.at("acquired").as_string(), "2023-04-07T08:00:00Z");
  // Microscope settings survive with numeric types intact.
  const Group* mic = f.root.find_group(Paths::kMicroscope);
  ASSERT_NE(mic, nullptr);
  EXPECT_DOUBLE_EQ(
      mic->attrs.at("settings").at("beam_energy_kv").as_double(), 200.0);
  // Datasets bit-exact.
  const Dataset* cube = f.root.find_dataset("data/hyperspectral/data");
  ASSERT_NE(cube, nullptr);
  EXPECT_EQ(cube->shape(), (tensor::Shape{4, 5, 6}));
  auto t = cube->as<double>();
  ASSERT_TRUE(t);
  EXPECT_DOUBLE_EQ(t.value()(3, 4, 5), std::sqrt(119.0));
  const Dataset* movie = f.root.find_dataset("data/movie/data");
  ASSERT_NE(movie, nullptr);
  EXPECT_EQ(movie->as<uint8_t>().value()(1, 2, 2), 99);
  // Signal kind attributes survive -> EMD helpers keep working.
  auto kind = signal_kind(f, "movie");
  ASSERT_TRUE(kind);
  EXPECT_EQ(kind.value(), SignalKind::Spatiotemporal);
}

TEST(Hmsa, DetectsBinaryCorruption) {
  auto pair = to_hmsa(hmsa_sample());
  ASSERT_TRUE(pair);
  pair.value().binary[10] ^= 0xFF;
  auto back = from_hmsa(pair.value());
  ASSERT_FALSE(back);
  EXPECT_EQ(back.error().code, "corrupt");
}

TEST(Hmsa, DetectsTruncatedBinary) {
  auto pair = to_hmsa(hmsa_sample());
  ASSERT_TRUE(pair);
  pair.value().binary.resize(pair.value().binary.size() / 2);
  EXPECT_FALSE(from_hmsa(pair.value()));
}

TEST(Hmsa, RejectsWrongRootElement) {
  HmsaPair pair;
  pair.xml = "<NotHmsa/>";
  EXPECT_FALSE(from_hmsa(pair));
  pair.xml = "definitely not xml";
  EXPECT_FALSE(from_hmsa(pair));
}

TEST(Hmsa, SaveLoadFilePair) {
  std::string base = testing::TempDir() + "/hmsa_pair_test";
  File original = hmsa_sample();
  ASSERT_TRUE(save_hmsa(original, base));
  auto back = load_hmsa(base);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().payload_bytes(), original.payload_bytes());
  EXPECT_FALSE(load_hmsa(base + "-missing"));
}

TEST(Hmsa, MetadataOnlyFileHasEmptyBlob) {
  File f;
  f.root.attrs["format"] = "EMD-lite";
  auto pair = to_hmsa(f);
  ASSERT_TRUE(pair);
  EXPECT_TRUE(pair.value().binary.empty());
  auto back = from_hmsa(pair.value());
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value().root.attrs.at("format").as_string(), "EMD-lite");
}

// ------------------------------------------------------- zero-copy loads ----

TEST(EmdMapped, LoadMappedEqualsHeapLoad) {
  File f = sample_file();
  std::string path = testing::TempDir() + "/pico_emd_mapped.emd";
  ASSERT_TRUE(f.save(path));

  auto heap = File::load(path);
  auto mapped = File::load_mapped(path);
  ASSERT_TRUE(heap);
  ASSERT_TRUE(mapped);

  const Dataset* hd = heap.value().root.find_dataset("data/signal0/data");
  const Dataset* md = mapped.value().root.find_dataset("data/signal0/data");
  ASSERT_NE(hd, nullptr);
  ASSERT_NE(md, nullptr);
  // Heap load owns its payload bytes; the mapped load aliases the mapping.
  EXPECT_TRUE(hd->payload_owned());
  EXPECT_FALSE(md->payload_owned());
  auto hraw = hd->raw();
  auto mraw = md->raw();
  ASSERT_EQ(hraw.size(), mraw.size());
  EXPECT_TRUE(std::equal(hraw.begin(), hraw.end(), mraw.begin()));
  // Typed reads copy out of the view transparently.
  auto cube = md->as<double>();
  ASSERT_TRUE(cube);
  EXPECT_DOUBLE_EQ(cube.value()[3], 1.5);
  // Round-trip serialization from views matches the original bytes.
  EXPECT_EQ(mapped.value().to_bytes(), f.to_bytes());
}

TEST(EmdMapped, ViewsOutliveTheFileObject) {
  File f = sample_file();
  std::string path = testing::TempDir() + "/pico_emd_mapped_life.emd";
  ASSERT_TRUE(f.save(path));

  Dataset stolen;
  {
    auto mapped = File::load_mapped(path);
    ASSERT_TRUE(mapped);
    auto it = mapped.value().root.find_group("calibration");
    ASSERT_NE(it, nullptr);
    stolen = it->datasets.at("gains");  // copies the view + co-owns mapping
  }  // File (and its other datasets) destroyed; mapping must stay alive
  auto raw = stolen.raw();
  ASSERT_EQ(raw.size(), 5 * sizeof(uint16_t));
  auto gains = stolen.as<uint16_t>();
  ASSERT_TRUE(gains);
  EXPECT_EQ(gains.value()[4], 400);
}

TEST(EmdMapped, HeaderOnlyMappedRead) {
  File f = sample_file();
  std::string path = testing::TempDir() + "/pico_emd_mapped_hdr.emd";
  ASSERT_TRUE(f.save(path));
  auto mapped = File::load_mapped(path, /*with_payload=*/false);
  ASSERT_TRUE(mapped);
  const Dataset* ds = mapped.value().root.find_dataset("data/signal0/data");
  ASSERT_NE(ds, nullptr);
  EXPECT_FALSE(ds->payload_loaded());
  EXPECT_EQ(ds->shape(), (tensor::Shape{2, 3, 4}));
  EXPECT_NE(ds->crc(), 0u);
}

TEST(EmdMapped, DetectsCorruptionThroughTheView) {
  File f = sample_file();
  auto bytes = f.to_bytes();
  bytes.back() ^= 0xFF;  // flip a payload byte
  std::string path = testing::TempDir() + "/pico_emd_mapped_bad.emd";
  ASSERT_TRUE(util::write_file(path, bytes));
  auto mapped = File::load_mapped(path);
  ASSERT_FALSE(mapped);
  EXPECT_EQ(mapped.error().code, "corrupt");
}

TEST(EmdMapped, MissingFileIsError) {
  EXPECT_FALSE(File::load_mapped(testing::TempDir() + "/pico_no_such.emd"));
}

}  // namespace
}  // namespace pico::emd

// Core tests: facility wiring, providers, flow definitions with real
// data-plane payloads, cost model, campaign mechanics, report rendering.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <tuple>

#include "core/campaign.hpp"
#include "core/cost_model.hpp"
#include "core/facility.hpp"
#include "core/flows.hpp"
#include "core/report.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"
#include "video/mpk.hpp"

namespace pico::core {
namespace {

using util::Json;

FacilityConfig test_config(const std::string& tag) {
  FacilityConfig fc;
  fc.artifact_dir = testing::TempDir() + "/core_test_artifacts_" + tag;
  fc.seed = 99;
  // Fast knobs for tests.
  fc.cost.provision_delay_s = 5.0;
  fc.cost.provision_jitter_s = 0.0;
  fc.cost.env_warmup_s = 1.0;
  fc.cost.env_warmup_jitter_s = 0.0;
  return fc;
}

TEST(CostModel, Formulas) {
  CostModel cm;
  EXPECT_NEAR(cm.hyper_analysis_cost(91'000'000),
              cm.hyper_analysis_base_s + 91 * cm.hyper_analysis_s_per_mb, 1e-9);
  double fast = cm.convert_cost(1'200'000'000, false);
  double naive = cm.convert_cost(1'200'000'000, true);
  EXPECT_NEAR(naive / fast, cm.convert_naive_multiplier, 1e-9);
  double total = cm.spatiotemporal_analysis_cost(1'200'000'000, 600, false);
  EXPECT_NEAR(total,
              fast + 600 * cm.inference_s_per_frame + cm.annotate_base_s, 1e-9);
  // The conversion dominates the spatiotemporal compute phase (paper claim).
  EXPECT_GT(fast, 600 * cm.inference_s_per_frame);
  EXPECT_FALSE(cm.to_json().as_object().empty());
}

TEST(Facility, WiringAndTokens) {
  Facility facility(test_config("wiring"));
  EXPECT_EQ(facility.transfer().endpoint_count(), 2u);
  EXPECT_EQ(facility.pbs().total_nodes(), 16);
  // Operator token has every scope.
  for (const char* scope : {"transfer", "compute", "search.ingest", "flows"}) {
    EXPECT_TRUE(facility.auth().validate(facility.user_token(), scope)) << scope;
  }
  // Topology routes user -> eagle.
  auto user = facility.topology().node("userpc");
  auto eagle = facility.topology().node("eagle");
  ASSERT_TRUE(user);
  ASSERT_TRUE(eagle);
  EXPECT_TRUE(facility.topology().route(user.value(), eagle.value()));
}

TEST(Facility, StageFiles) {
  Facility facility(test_config("stage"));
  ASSERT_TRUE(facility.stage_virtual_file("staging/a.emd", 1000));
  EXPECT_TRUE(facility.user_store().exists("staging/a.emd"));
  ASSERT_TRUE(facility.stage_real_file("staging/b.emd", {1, 2, 3}));
  auto obj = facility.user_store().get("staging/b.emd");
  ASSERT_TRUE(obj);
  EXPECT_TRUE(obj.value()->has_content());
}

TEST(Flows, HyperspectralEndToEndWithRealPayload) {
  FacilityConfig fc = test_config("hyper_e2e");
  Facility facility(fc);

  // Build a small real hyperspectral EMD file with gold inclusions.
  instrument::HyperspectralConfig gen;
  gen.height = 32;
  gen.width = 32;
  gen.channels = 256;
  gen.dose = 120;
  gen.background = {{"C", 0.8}, {"O", 0.2}};
  gen.particles = {{16, 16, 7, {{"Au", 0.9}, {"C", 0.1}}}};
  auto sample = instrument::generate_hyperspectral(gen);
  emd::MicroscopeSettings scope;
  auto file = instrument::to_emd(sample, gen, scope, "2023-04-07T15:00:00Z",
                                 "gold on carbon film", "operator@anl.gov");
  ASSERT_TRUE(facility.stage_real_file("staging/real.emd", file.to_bytes()));

  FlowInput input;
  input.file = "staging/real.emd";
  input.dest = "eagle/real.emd";
  input.artifact_prefix = "real";
  input.title = "Real hyperspectral run";
  input.subject = "exp-real-1";
  input.owner = facility.user_identity();
  auto run = facility.flows().start(hyperspectral_flow(facility),
                                    input.to_json(), facility.user_token(),
                                    "e2e");
  ASSERT_TRUE(run);
  facility.engine().run();

  const flow::RunInfo& info = facility.flows().info(run.value());
  ASSERT_EQ(info.state, flow::RunState::Succeeded) << info.error;

  // Data plane: file landed on Eagle bit-exact.
  auto delivered = facility.eagle().get("eagle/real.emd");
  ASSERT_TRUE(delivered);
  EXPECT_EQ(delivered.value()->crc64,
            facility.user_store().get("staging/real.emd").value()->crc64);

  // Search: record ingested, gold identified, visible to owner only.
  auto doc = facility.index().get("exp-real-1", facility.user_identity());
  ASSERT_TRUE(doc);
  bool has_au = false;
  for (const auto& s : doc.value()->content.at("subjects").as_array()) {
    if (s.as_string() == "Au") has_au = true;
  }
  EXPECT_TRUE(has_au) << doc.value()->content.dump(2);
  EXPECT_FALSE(facility.index().get("exp-real-1"));  // anonymous denied

  // Artifacts written to the real filesystem.
  const auto& artifacts = doc.value()->content.at("artifacts").as_array();
  ASSERT_GE(artifacts.size(), 2u);
  for (const auto& a : artifacts) {
    EXPECT_TRUE(std::filesystem::exists(a.as_string())) << a.as_string();
  }

  // Timing decomposition present for all three steps.
  const flow::RunTiming& timing = facility.flows().timing(run.value());
  ASSERT_EQ(timing.steps.size(), 3u);
  EXPECT_GT(timing.active_s(), 0);
  EXPECT_GT(timing.overhead_s(), 0);
}

TEST(Flows, SpatiotemporalEndToEndWithRealPayload) {
  FacilityConfig fc = test_config("spatio_e2e");
  Facility facility(fc);

  instrument::SpatiotemporalConfig gen;
  gen.frames = 16;
  gen.height = 48;
  gen.width = 48;
  gen.particle_count = 4;
  auto sample = instrument::generate_spatiotemporal(gen);
  emd::MicroscopeSettings scope;
  auto file = instrument::to_emd(sample, gen, scope, "2023-04-08T09:00:00Z",
                                 "gold nanoparticles", "operator@anl.gov");
  ASSERT_TRUE(facility.stage_real_file("staging/movie.emd", file.to_bytes()));

  FlowInput input;
  input.file = "staging/movie.emd";
  input.dest = "eagle/movie.emd";
  input.artifact_prefix = "movie";
  input.title = "Nanoparticle movie";
  input.subject = "exp-movie-1";
  input.frames = 16;
  auto run = facility.flows().start(spatiotemporal_flow(facility),
                                    input.to_json(), facility.user_token());
  ASSERT_TRUE(run);
  facility.engine().run();

  const flow::RunInfo& info = facility.flows().info(run.value());
  ASSERT_EQ(info.state, flow::RunState::Succeeded) << info.error;

  auto doc = facility.index().get("exp-movie-1");  // public (no owner set)
  ASSERT_TRUE(doc);
  const Json& analysis = doc.value()->content.at("analysis");
  EXPECT_EQ(analysis.at("frames").as_int(), 16);
  EXPECT_GT(analysis.at("total_detections").as_int(), 0);
  EXPECT_GT(analysis.at("tracks").as_int(), 0);

  // The annotated MPK artifact exists and parses.
  bool found_mpk = false;
  for (const auto& a : doc.value()->content.at("artifacts").as_array()) {
    if (util::ends_with(a.as_string(), ".mpk")) {
      found_mpk = true;
      auto mpk = video::MpkVideo::load(a.as_string());
      ASSERT_TRUE(mpk);
      EXPECT_EQ(mpk.value().frame_count(), 16u);
    }
  }
  EXPECT_TRUE(found_mpk);
}

TEST(Flows, ParallelDataPlaneKnobChangesNothing) {
  // The parallel_data_plane knob must change wall clock only: running the
  // same real-payload flows with the knob on vs off publishes byte-identical
  // records and byte-identical artifact files (the end-to-end form of the
  // determinism contract in threadpool.hpp).
  auto run_once = [](bool parallel) {
    // Same tag on purpose: artifact paths inside the records match exactly.
    FacilityConfig fc = test_config("pdp_knob");
    fc.parallel_data_plane = parallel;
    Facility facility(fc);

    instrument::HyperspectralConfig hgen;
    hgen.height = 24;
    hgen.width = 24;
    hgen.channels = 192;
    hgen.dose = 100;
    hgen.background = {{"C", 0.8}, {"O", 0.2}};
    hgen.particles = {{12, 12, 5, {{"Au", 0.9}, {"C", 0.1}}}};
    auto hyper = instrument::generate_hyperspectral(hgen);
    emd::MicroscopeSettings scope;
    auto hfile = instrument::to_emd(hyper, hgen, scope, "2023-04-07T15:00:00Z",
                                    "gold on carbon film", "op@anl.gov");
    EXPECT_TRUE(facility.stage_real_file("staging/h.emd", hfile.to_bytes()));

    instrument::SpatiotemporalConfig sgen;
    sgen.frames = 8;
    sgen.height = 32;
    sgen.width = 32;
    sgen.particle_count = 3;
    auto spatio = instrument::generate_spatiotemporal(sgen);
    auto sfile = instrument::to_emd(spatio, sgen, scope, "2023-04-08T09:00:00Z",
                                    "gold nanoparticles", "op@anl.gov");
    EXPECT_TRUE(facility.stage_real_file("staging/s.emd", sfile.to_bytes()));

    for (auto [flow, file, dest, prefix, subject] :
         {std::tuple{hyperspectral_flow(facility), "staging/h.emd",
                     "eagle/h.emd", "h", "exp-pdp-h"},
          std::tuple{spatiotemporal_flow(facility), "staging/s.emd",
                     "eagle/s.emd", "s", "exp-pdp-s"}}) {
      FlowInput input;
      input.file = file;
      input.dest = dest;
      input.artifact_prefix = prefix;
      input.subject = subject;
      if (prefix == std::string("s")) input.frames = 8;
      auto run = facility.flows().start(flow, input.to_json(),
                                        facility.user_token());
      EXPECT_TRUE(run);
      facility.engine().run();
      EXPECT_EQ(facility.flows().info(run.value()).state,
                flow::RunState::Succeeded);
    }

    // Snapshot records + artifact bytes before the next run overwrites them.
    std::string records;
    std::map<std::string, std::vector<uint8_t>> artifacts;
    for (const char* subject : {"exp-pdp-h", "exp-pdp-s"}) {
      auto doc = facility.index().get(subject);
      EXPECT_TRUE(doc);
      if (!doc) continue;
      records += doc.value()->content.dump(2);
      for (const auto& a : doc.value()->content.at("artifacts").as_array()) {
        auto bytes = util::read_file(a.as_string());
        EXPECT_TRUE(bytes) << a.as_string();
        if (bytes) artifacts[a.as_string()] = std::move(bytes).value();
      }
    }
    return std::pair{std::move(records), std::move(artifacts)};
  };

  auto on = run_once(true);
  auto off = run_once(false);
  EXPECT_EQ(on.first, off.first);
  ASSERT_EQ(on.second.size(), off.second.size());
  ASSERT_GE(on.second.size(), 4u);  // intensity + spectrum + counts + mpk
  for (const auto& [path, bytes] : on.second) {
    auto it = off.second.find(path);
    ASSERT_NE(it, off.second.end()) << path;
    EXPECT_EQ(bytes, it->second) << path << " differs with the knob off";
  }
}

TEST(Flows, MissingSourceFileFailsFlow) {
  Facility facility(test_config("missing"));
  FlowInput input;
  input.file = "staging/nope.emd";
  input.dest = "eagle/nope.emd";
  input.subject = "exp-missing";
  auto run = facility.flows().start(hyperspectral_flow(facility),
                                    input.to_json(), facility.user_token());
  ASSERT_TRUE(run);
  facility.engine().run();
  EXPECT_EQ(facility.flows().info(run.value()).state, flow::RunState::Failed);
  EXPECT_EQ(facility.index().size(), 0u);
}

TEST(Flows, VirtualFileProducesSchemaValidRecord) {
  Facility facility(test_config("virtual"));
  ASSERT_TRUE(facility.stage_virtual_file("staging/v.emd", 91'000'000));
  FlowInput input;
  input.file = "staging/v.emd";
  input.dest = "eagle/v.emd";
  input.subject = "exp-virtual";
  input.title = "Virtual campaign file";
  auto run = facility.flows().start(hyperspectral_flow(facility),
                                    input.to_json(), facility.user_token());
  ASSERT_TRUE(run);
  facility.engine().run();
  ASSERT_EQ(facility.flows().info(run.value()).state, flow::RunState::Succeeded)
      << facility.flows().info(run.value()).error;
  auto doc = facility.index().get("exp-virtual", facility.user_identity());
  ASSERT_TRUE(doc);
  EXPECT_TRUE(doc.value()->content.at_path("instrument.virtual").as_bool());
}

TEST(Campaign, SmallCampaignProducesConsistentStats) {
  FacilityConfig fc = test_config("campaign");
  Facility facility(fc);
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 600;  // 10 virtual minutes
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "t1";
  CampaignResult result = run_campaign(facility, cfg);

  EXPECT_GT(result.in_window.size(), 5u);
  EXPECT_EQ(result.failed, 0u);
  for (const auto& f : result.in_window) {
    EXPECT_TRUE(f.success);
    EXPECT_GT(f.timing.total_s(), 0);
    EXPECT_NEAR(f.timing.total_s(),
                f.timing.active_s() + f.timing.overhead_s(), 1e-9);
    EXPECT_LE(f.timing.finished.seconds(), cfg.duration_s);
  }
  // Search index holds one record per completed flow (late ones may add more).
  EXPECT_GE(facility.index().size(), result.in_window.size());
  // Stats helpers agree with the flow list.
  EXPECT_EQ(result.runtime_stats().count(), result.in_window.size());
  EXPECT_GT(result.overhead_stats().median(), 0);
  EXPECT_GT(result.step_active_stats("Transfer").median(), 0);
  EXPECT_GT(result.step_active_stats("Analyze").median(), 0);
  EXPECT_GT(result.step_active_stats("Publish").median(), 0);
  EXPECT_NEAR(result.total_data_gb(),
              0.091 * static_cast<double>(result.in_window.size()), 1e-6);
}

TEST(Campaign, DeterministicForSameSeed) {
  auto run_once = [] {
    FacilityConfig fc = test_config("det");
    fc.seed = 777;
    Facility facility(fc);
    CampaignConfig cfg;
    cfg.use_case = UseCase::Hyperspectral;
    cfg.start_period_s = 30;
    cfg.duration_s = 400;
    cfg.file_bytes = 91'000'000;
    return run_campaign(facility, cfg);
  };
  CampaignResult a = run_once();
  CampaignResult b = run_once();
  ASSERT_EQ(a.in_window.size(), b.in_window.size());
  for (size_t i = 0; i < a.in_window.size(); ++i) {
    EXPECT_EQ(a.in_window[i].timing.total_s(), b.in_window[i].timing.total_s());
    EXPECT_EQ(a.in_window[i].timing.overhead_s(),
              b.in_window[i].timing.overhead_s());
  }
}

TEST(Campaign, DifferentSeedsDiffer) {
  auto run_with_seed = [](uint64_t seed) {
    FacilityConfig fc = test_config("seed" + std::to_string(seed));
    fc.seed = seed;
    Facility facility(fc);
    CampaignConfig cfg;
    cfg.use_case = UseCase::Hyperspectral;
    cfg.duration_s = 300;
    cfg.file_bytes = 91'000'000;
    return run_campaign(facility, cfg);
  };
  CampaignResult a = run_with_seed(1);
  CampaignResult b = run_with_seed(2);
  ASSERT_FALSE(a.in_window.empty());
  ASSERT_FALSE(b.in_window.empty());
  EXPECT_NE(a.in_window[0].timing.total_s(), b.in_window[0].timing.total_s());
}

TEST(Report, Table1AndFig4Render) {
  FacilityConfig fc = test_config("report");
  Facility f1(fc);
  CampaignConfig hyper_cfg;
  hyper_cfg.use_case = UseCase::Hyperspectral;
  hyper_cfg.duration_s = 300;
  hyper_cfg.file_bytes = 91'000'000;
  CampaignResult hyper = run_campaign(f1, hyper_cfg);

  FacilityConfig fc2 = test_config("report2");
  Facility f2(fc2);
  CampaignConfig spatio_cfg;
  spatio_cfg.use_case = UseCase::Spatiotemporal;
  spatio_cfg.start_period_s = 120;
  spatio_cfg.duration_s = 900;
  spatio_cfg.file_bytes = 1'200'000'000;
  CampaignResult spatio = run_campaign(f2, spatio_cfg);

  std::string table = render_table1(hyper, spatio);
  EXPECT_NE(table.find("Total flow runs"), std::string::npos);
  EXPECT_NE(table.find("Median overhead (%)"), std::string::npos);
  EXPECT_NE(table.find("49.2"), std::string::npos);  // paper reference column

  std::string fig4 = render_fig4(hyper);
  EXPECT_NE(fig4.find("Transfer"), std::string::npos);
  EXPECT_NE(fig4.find("Overhead"), std::string::npos);

  std::string csv = flows_csv(hyper);
  EXPECT_NE(csv.find("transfer_lag_s"), std::string::npos);
  // Header + one line per flow.
  size_t lines = static_cast<size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, hyper.in_window.size() + 1);
}

TEST(Report, PaperReferenceValues) {
  auto h = PaperTable1::hyperspectral();
  EXPECT_EQ(h.total_runs, 72);
  EXPECT_DOUBLE_EQ(h.median_overhead_pct, 49.2);
  auto s = PaperTable1::spatiotemporal();
  EXPECT_EQ(s.total_runs, 18);
  EXPECT_DOUBLE_EQ(s.transfer_mb, 1200);
}

}  // namespace
}  // namespace pico::core

// ---------------------------------------------------------------- client ----
#include <fstream>

#include "core/client.hpp"
#include "util/bytes.hpp"
#include "instrument/spatiotemporal_gen.hpp"

namespace pico::core {
namespace {

struct ClientFixture : ::testing::Test {
  std::string dir;

  void SetUp() override {
    dir = testing::TempDir() + "/client_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }

  void drop_hyper(const std::string& name) {
    instrument::HyperspectralConfig gen;
    gen.height = 16;
    gen.width = 16;
    gen.channels = 32;
    gen.background = {{"C", 1.0}};
    auto sample = instrument::generate_hyperspectral(gen);
    emd::MicroscopeSettings scope;
    auto file = instrument::to_emd(sample, gen, scope, "2023-04-07T10:00:00Z",
                                   "client test", "op@anl.gov");
    ASSERT_TRUE(util::write_file(dir + "/" + name, file.to_bytes()));
  }

  void drop_spatio(const std::string& name) {
    instrument::SpatiotemporalConfig gen;
    gen.frames = 4;
    gen.height = 24;
    gen.width = 24;
    gen.particle_count = 2;
    auto sample = instrument::generate_spatiotemporal(gen);
    emd::MicroscopeSettings scope;
    auto file = instrument::to_emd(sample, gen, scope, "2023-04-07T11:00:00Z",
                                   "client test", "op@anl.gov");
    ASSERT_TRUE(util::write_file(dir + "/" + name, file.to_bytes()));
  }

  ClientConfig client_config() {
    ClientConfig cfg;
    cfg.watch_dir = dir;
    cfg.stable_scans = 1;
    return cfg;
  }
};

TEST_F(ClientFixture, ClassifiesAndLaunchesBothFlowKinds) {
  Facility facility(test_config("client_both"));
  TransferClient client(&facility, client_config());
  ASSERT_TRUE(client.init());

  drop_hyper("a.emd");
  drop_spatio("b.emd");
  EXPECT_TRUE(client.poll_once().empty());  // sighting (stable_scans clamp)
  auto launched = client.poll_once();
  ASSERT_EQ(launched.size(), 2u);
  client.drain();

  int hyper = 0, spatio = 0;
  for (const auto& l : launched) {
    EXPECT_EQ(facility.flows().info(l.run).state, flow::RunState::Succeeded)
        << facility.flows().info(l.run).error;
    if (l.kind == emd::SignalKind::Hyperspectral) ++hyper;
    else ++spatio;
    EXPECT_TRUE(facility.index().get(l.subject));
  }
  EXPECT_EQ(hyper, 1);
  EXPECT_EQ(spatio, 1);
  EXPECT_TRUE(client.errors().empty());
}

TEST_F(ClientFixture, CheckpointPreventsDuplicateFlowsAcrossRestart) {
  Facility facility(test_config("client_ckpt"));
  {
    TransferClient client(&facility, client_config());
    ASSERT_TRUE(client.init());
    drop_hyper("once.emd");
    EXPECT_TRUE(client.poll_once().empty());  // sighting (stable_scans clamp)
    ASSERT_EQ(client.poll_once().size(), 1u);
    client.drain();
  }
  // "Reboot" the client app against the same directory.
  {
    TransferClient client(&facility, client_config());
    ASSERT_TRUE(client.init());
    EXPECT_EQ(client.processed_count(), 1u);
    EXPECT_TRUE(client.poll_once().empty());
  }
}

TEST_F(ClientFixture, PoisonedFileSkippedWithoutWedging) {
  Facility facility(test_config("client_poison"));
  TransferClient client(&facility, client_config());
  ASSERT_TRUE(client.init());

  ASSERT_TRUE(util::write_file(dir + "/garbage.emd",
                               std::string("this is not an EMD file")));
  drop_hyper("good.emd");
  EXPECT_TRUE(client.poll_once().empty());  // sighting (stable_scans clamp)
  auto launched = client.poll_once();
  ASSERT_EQ(launched.size(), 1u);  // the good file still flows
  client.drain();
  EXPECT_EQ(facility.flows().info(launched[0].run).state,
            flow::RunState::Succeeded);
  ASSERT_EQ(client.errors().size(), 1u);
  EXPECT_NE(client.errors()[0].find("garbage.emd"), std::string::npos);
  // The poisoned file stays checkpointed: no retry loop.
  EXPECT_TRUE(client.poll_once().empty());
}

TEST_F(ClientFixture, OwnerControlsRecordVisibility) {
  Facility facility(test_config("client_owner"));
  auto cfg = client_config();
  cfg.owner = facility.user_identity();
  TransferClient client(&facility, cfg);
  ASSERT_TRUE(client.init());
  drop_hyper("private.emd");
  EXPECT_TRUE(client.poll_once().empty());  // sighting (stable_scans clamp)
  auto launched = client.poll_once();
  ASSERT_EQ(launched.size(), 1u);
  client.drain();
  EXPECT_FALSE(facility.index().get(launched[0].subject));  // anonymous
  EXPECT_TRUE(
      facility.index().get(launched[0].subject, facility.user_identity()));
}

}  // namespace
}  // namespace pico::core

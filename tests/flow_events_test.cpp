// Event-driven completion + cut-through streaming tests: adaptive backoff
// (reset-on-status-change, 10-minute cap boundary), provider completion
// subscriptions, polling fallback when the event channel is missing or
// notifications are lost, held pre-dispatch overlap accounting, and the
// `streaming` flag in definition documents.
#include <gtest/gtest.h>

#include <map>

#include "flow/backoff.hpp"
#include "flow/definition_io.hpp"
#include "flow/service.hpp"

namespace pico::flow {
namespace {

using util::Json;

/// Scriptable provider with optional push channels: every action succeeds
/// after params "duration_s". When enabled, completion notifications fire at
/// the action's settle time, byte-progress callbacks fire at the quartiles,
/// and start_held() accepts held starts (the work proceeds while held —
/// release only acknowledges adoption, like a warmed compute environment).
class EventfulProvider final : public ActionProvider {
 public:
  EventfulProvider(sim::Engine* engine, bool events, bool progress, bool held)
      : engine_(engine), events_(events), progress_(progress), held_(held) {}

  std::string name() const override { return "eventful"; }

  util::Result<ActionHandle> start(const Json& params,
                                   const auth::Token&) override {
    return begin(params);
  }

  ActionPollResult poll(const ActionHandle& handle) override {
    ++polls_;
    ActionPollResult out;
    const Action& a = actions_.at(handle);
    double elapsed = (engine_->now() - a.started).seconds();
    if (elapsed < a.duration) {
      out.status = ActionStatus::Active;
      if (a.emit_progress) {
        out.progress_token =
            "p" + std::to_string(static_cast<int>(10 * elapsed / a.duration));
      }
      return out;
    }
    out.status = ActionStatus::Succeeded;
    out.service_started = a.started;
    out.service_completed = a.started + sim::Duration::from_seconds(a.duration);
    out.output = Json::object({{"echo", a.tag}});
    return out;
  }

  bool subscribe(const ActionHandle& handle,
                 std::function<void()> callback) override {
    if (!events_) return false;
    ++subscriptions_;
    const Action& a = actions_.at(handle);
    sim::SimTime done = a.started + sim::Duration::from_seconds(a.duration);
    if (done <= engine_->now()) {
      engine_->schedule_after(sim::Duration::zero(), std::move(callback));
    } else {
      engine_->schedule_at(done, std::move(callback));
    }
    return true;
  }

  bool subscribe_progress(const ActionHandle& handle,
                          std::function<void(int64_t)> callback) override {
    if (!progress_) return false;
    const Action& a = actions_.at(handle);
    for (int q = 1; q <= 3; ++q) {
      sim::SimTime at =
          a.started + sim::Duration::from_seconds(a.duration * q / 4.0);
      if (at <= engine_->now()) continue;
      int64_t bytes = 250 * q;
      engine_->schedule_at(at, [callback, bytes] { callback(bytes); });
    }
    return true;
  }

  bool supports_held_start() const override { return held_; }

  util::Result<ActionHandle> start_held(const Json& params,
                                        const auth::Token&) override {
    if (refuse_held_) {
      return util::Result<ActionHandle>::err("no warm node", "busy");
    }
    ++held_starts_;
    return begin(params);
  }

  void release(const ActionHandle&) override { ++releases_; }

  void set_refuse_held(bool refuse) { refuse_held_ = refuse; }
  int polls() const { return polls_; }
  int subscriptions() const { return subscriptions_; }
  int held_starts() const { return held_starts_; }
  int releases() const { return releases_; }

 private:
  struct Action {
    sim::SimTime started;
    double duration = 0;
    bool emit_progress = false;
    std::string tag;
  };

  util::Result<ActionHandle> begin(const Json& params) {
    std::string handle = "evt-" + std::to_string(next_++);
    Action a;
    a.started = engine_->now();
    a.duration = params.at("duration_s").as_double(1.0);
    a.emit_progress = params.at("emit_progress").as_bool(false);
    a.tag = params.at("tag").as_string("");
    actions_[handle] = a;
    return util::Result<ActionHandle>::ok(handle);
  }

  sim::Engine* engine_;
  bool events_, progress_, held_;
  bool refuse_held_ = false;
  std::map<ActionHandle, Action> actions_;
  uint64_t next_ = 1;
  int polls_ = 0;
  int subscriptions_ = 0;
  int held_starts_ = 0;
  int releases_ = 0;
};

struct EventsFixture : ::testing::Test {
  sim::Engine engine;
  auth::AuthService auth;
  std::unique_ptr<EventfulProvider> provider;
  std::unique_ptr<FlowService> service;
  auth::Token token;

  void setup(FlowServiceConfig cfg, bool events = true, bool progress = true,
             bool held = true) {
    cfg.latency_jitter_frac = 0.0;  // deterministic latencies
    service = std::make_unique<FlowService>(&engine, &auth, cfg, 3);
    provider = std::make_unique<EventfulProvider>(&engine, events, progress,
                                                  held);
    service->register_provider(provider.get());
    token = auth.issue("user@anl.gov", {"flows"});
  }

  static ActionState step(const std::string& name, double duration,
                          bool streaming = false, bool emit_progress = false) {
    ActionState s;
    s.name = name;
    s.provider = "eventful";
    s.streaming = streaming;
    s.params = Json::object({
        {"duration_s", duration},
        {"tag", name},
        {"emit_progress", emit_progress},
    });
    return s;
  }

  RunId run_flow(const FlowDefinition& def) {
    auto run = service->start(def, Json(), token);
    EXPECT_TRUE(run);
    engine.run();
    return run.value();
  }
};

// ------------------------------------------------------------ backoff unit --

TEST(Backoff, PaperPolicyCapsExactlyAtTenMinutes) {
  util::Rng rng(7);
  auto paper = BackoffPolicy::paper_default();
  // 1 s * 2^9 = 512 s is the last uncapped rung; 2^10 = 1024 s hits the cap.
  EXPECT_DOUBLE_EQ(paper.interval_s(9, rng), 512.0);
  EXPECT_DOUBLE_EQ(paper.interval_s(10, rng), 600.0);
  EXPECT_DOUBLE_EQ(paper.interval_s(11, rng), 600.0);
}

TEST(Backoff, AdaptivePolicyIsJitteredAndTightlyCapped) {
  util::Rng rng(7);
  auto adaptive = BackoffPolicy::adaptive();
  for (int attempt = 0; attempt < 40; ++attempt) {
    double v = adaptive.interval_s(attempt, rng);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 30.0 * 1.25 + 1e-9) << "attempt " << attempt;
  }
  // Custom cap honoured.
  auto tight = BackoffPolicy::adaptive(5.0);
  for (int i = 0; i < 40; ++i) {
    EXPECT_LE(tight.interval_s(20, rng), 5.0 * 1.25 + 1e-9);
  }
  // The jitter actually spreads: not every draw at the same rung is equal.
  double a = adaptive.interval_s(10, rng);
  double b = adaptive.interval_s(10, rng);
  double c = adaptive.interval_s(10, rng);
  EXPECT_TRUE(a != b || b != c);
}

TEST(Backoff, DeterministicJitterIsPureFunctionOfSaltAndAttempt) {
  auto adaptive = BackoffPolicy::adaptive();
  // Same (salt, attempt) -> identical interval, regardless of how many other
  // calls happened in between (no shared RNG stream to perturb).
  double first = adaptive.interval_s(3, uint64_t{0xABCD});
  for (int noise = 0; noise < 17; ++noise) {
    adaptive.interval_s(noise, uint64_t{noise * 31u});
  }
  EXPECT_DOUBLE_EQ(adaptive.interval_s(3, uint64_t{0xABCD}), first);

  // Distinct salts (different flows) spread across the jitter band instead
  // of thundering in lockstep.
  double lo = 1e18, hi = 0;
  for (uint64_t salt = 0; salt < 32; ++salt) {
    double v = adaptive.interval_s(3, salt);
    EXPECT_GE(v, 8.0 * 0.75 - 1e-9);  // rung 2^3 = 8 s, +/-25%
    EXPECT_LE(v, 8.0 * 1.25 + 1e-9);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.5);

  // Non-jittered kinds ignore the salt entirely.
  auto paper = BackoffPolicy::paper_default();
  EXPECT_DOUBLE_EQ(paper.interval_s(10, uint64_t{1}),
                   paper.interval_s(10, uint64_t{2}));
}

// The reset-on-status-change behaviour at the cap boundary, end to end: a
// quiet 1030 s action rides the full exponential ladder — the poll after
// t+1023 waits the *capped* 600 s, not 1024 s — while a chatty action's
// token transitions keep restarting the ladder, bounding discovery lag.
TEST_F(EventsFixture, StatusChangeResetsLadderThatOtherwiseCapsAtTenMinutes) {
  FlowServiceConfig cfg;
  cfg.backoff = BackoffPolicy::paper_default();
  setup(cfg, /*events=*/false, /*progress=*/false, /*held=*/false);
  RunId quiet = run_flow({"quiet", {step("A", 1030)}});
  double quiet_lag = service->timing(quiet).steps[0].discovery_lag_s();
  int quiet_polls = service->timing(quiet).steps[0].polls;
  // Ladder polls at +1,3,7,...,1023 (attempt 9: 512 s), then the capped
  // 600 s rung discovers at +1623: lag ~593 s. Without the cap the next
  // rung would be 1024 s and the lag ~1017 s.
  EXPECT_GT(quiet_lag, 500.0);
  EXPECT_LT(quiet_lag, 700.0);
  EXPECT_EQ(quiet_polls, 11);

  setup(cfg, false, false, false);
  FlowDefinition chatty{"chatty",
                        {step("A", 1030, false, /*emit_progress=*/true)}};
  RunId id = run_flow(chatty);
  const StepTiming& t = service->timing(id).steps[0];
  // Every observed token transition restarts the ladder at 1 s, so the lag
  // never approaches the capped rung.
  EXPECT_LT(t.discovery_lag_s(), 300.0);
  EXPECT_GT(t.polls, quiet_polls);
}

// -------------------------------------------------------------- event mode --

TEST_F(EventsFixture, NotificationsReplacePollingDiscovery) {
  FlowServiceConfig cfg;
  cfg.completion_mode = CompletionMode::Events;
  setup(cfg);
  RunId id = run_flow({"evt", {step("A", 100)}});
  EXPECT_EQ(service->info(id).state, RunState::Succeeded);
  const StepTiming& t = service->timing(id).steps[0];
  EXPECT_EQ(t.notifications, 1);
  EXPECT_EQ(provider->subscriptions(), 1);
  // Discovered via the pushed completion (+0.1 s delivery + verdict poll),
  // not a backoff rung.
  EXPECT_LT(t.discovery_lag_s(), 1.0);
  EXPECT_GE(t.polls, 1);  // the verdict poll at minimum
}

TEST_F(EventsFixture, EventModeFallsBackToPollingWithoutEventChannel) {
  FlowServiceConfig cfg;
  cfg.completion_mode = CompletionMode::Events;
  setup(cfg, /*events=*/false, /*progress=*/false, /*held=*/false);
  RunId id = run_flow({"noevt", {step("A", 100)}});
  EXPECT_EQ(service->info(id).state, RunState::Succeeded);
  const StepTiming& t = service->timing(id).steps[0];
  EXPECT_EQ(t.notifications, 0);
  EXPECT_EQ(provider->subscriptions(), 0);
  EXPECT_GT(t.polls, 2);
  // The adaptive reconcile net (30 s cap, +/-25% jitter) bounds discovery.
  EXPECT_LT(t.discovery_lag_s(), 45.0);
}

TEST_F(EventsFixture, LostNotificationsSettleViaReconcilePoller) {
  FlowServiceConfig cfg;
  cfg.completion_mode = CompletionMode::Events;
  setup(cfg);
  service->set_notification_loss_prob(1.0);
  RunId id = run_flow({"lost", {step("A", 100), step("B", 50)}});
  EXPECT_EQ(service->info(id).state, RunState::Succeeded);
  for (const StepTiming& t : service->timing(id).steps) {
    EXPECT_EQ(t.notifications, 0);  // every delivery was dropped
    EXPECT_LT(t.discovery_lag_s(), 60.0);
    EXPECT_GT(t.polls, 0);
  }
  EXPECT_EQ(provider->subscriptions(), 2);  // the channel was live, not absent
}

// --------------------------------------------------------------- streaming --

TEST_F(EventsFixture, StreamingPreDispatchOverlapsAdjacentSteps) {
  FlowServiceConfig cfg;
  cfg.completion_mode = CompletionMode::Events;
  setup(cfg);
  FlowDefinition def{"stream",
                     {step("A", 20, false, /*emit_progress=*/true),
                      step("B", 10, /*streaming=*/true)}};
  RunId id = run_flow(def);
  EXPECT_EQ(service->info(id).state, RunState::Succeeded);
  const RunTiming& timing = service->timing(id);
  ASSERT_EQ(timing.steps.size(), 2u);
  EXPECT_FALSE(timing.steps[0].streamed);
  EXPECT_TRUE(timing.steps[1].streamed);
  EXPECT_EQ(provider->held_starts(), 1);
  EXPECT_EQ(provider->releases(), 1);
  // B was dispatched at A's first progress quartile (t+5 of a 20 s step),
  // well before A's service interval closed.
  EXPECT_LT(timing.steps[1].dispatched.ns, timing.steps[0].service_completed.ns);
  // B's whole 10 s active interval sat inside A's: the union is 10 s smaller
  // than the sum, and overlap says exactly that.
  EXPECT_NEAR(timing.overlap_s(), 10.0, 1e-9);
  EXPECT_LT(timing.active_union_s(), timing.active_s());
  EXPECT_GE(timing.total_s(), timing.active_union_s());
}

TEST_F(EventsFixture, StreamingFallsBackSerializedWithoutHeldSupport) {
  FlowServiceConfig cfg;
  cfg.completion_mode = CompletionMode::Events;
  setup(cfg, /*events=*/true, /*progress=*/true, /*held=*/false);
  FlowDefinition def{"nostream",
                     {step("A", 20, false, true), step("B", 10, true)}};
  RunId id = run_flow(def);
  EXPECT_EQ(service->info(id).state, RunState::Succeeded);
  const RunTiming& timing = service->timing(id);
  EXPECT_FALSE(timing.steps[1].streamed);
  EXPECT_EQ(provider->held_starts(), 0);
  EXPECT_DOUBLE_EQ(timing.overlap_s(), 0.0);
  EXPECT_DOUBLE_EQ(timing.active_union_s(), timing.active_s());
  // Serialized: B dispatched only after A's completion was discovered.
  EXPECT_GE(timing.steps[1].dispatched.ns, timing.steps[0].discovered.ns);
}

TEST_F(EventsFixture, RefusedHeldStartFallsBackSerialized) {
  FlowServiceConfig cfg;
  cfg.completion_mode = CompletionMode::Events;
  setup(cfg);
  provider->set_refuse_held(true);
  FlowDefinition def{"refused",
                     {step("A", 20, false, true), step("B", 10, true)}};
  RunId id = run_flow(def);
  EXPECT_EQ(service->info(id).state, RunState::Succeeded);
  const RunTiming& timing = service->timing(id);
  EXPECT_FALSE(timing.steps[1].streamed);
  EXPECT_DOUBLE_EQ(timing.overlap_s(), 0.0);
  EXPECT_EQ(provider->held_starts(), 0);
  EXPECT_EQ(provider->releases(), 0);  // nothing was ever held
}

// ------------------------------------------------------------ definition io --

TEST(DefinitionIoStreaming, StreamingFlagRoundTrips) {
  FlowDefinition def;
  def.name = "stream-def";
  ActionState a;
  a.name = "Transfer";
  a.provider = "transfer";
  a.params = Json::object({{"x", 1.0}});
  ActionState b = a;
  b.name = "Analyze";
  b.provider = "compute";
  b.streaming = true;
  def.steps = {a, b};

  Json doc = definition_to_json(def);
  auto parsed = definition_from_json(doc);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed.value().steps.size(), 2u);
  EXPECT_FALSE(parsed.value().steps[0].streaming);
  EXPECT_TRUE(parsed.value().steps[1].streaming);
  // Serialized form only carries the flag where it is set.
  EXPECT_FALSE(doc.at("steps")[0].contains("streaming"));
  EXPECT_TRUE(doc.at("steps")[1].contains("streaming"));
}

TEST(DefinitionIoStreaming, FirstStepCannotStream) {
  FlowDefinition def;
  def.name = "bad";
  ActionState a;
  a.name = "Transfer";
  a.provider = "transfer";
  a.params = Json::object();
  a.streaming = true;
  def.steps = {a};
  auto parsed = definition_from_json(definition_to_json(def));
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error().message.find("cannot stream"), std::string::npos);
}

}  // namespace
}  // namespace pico::flow

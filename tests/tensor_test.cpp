// Tensor tests: shapes, indexing, reductions (the Fig. 2 math), casts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/ops.hpp"
#include "tensor/simd/simd.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace pico::tensor {
namespace {

TEST(DType, SizesAndNames) {
  EXPECT_EQ(dtype_size(DType::U8), 1u);
  EXPECT_EQ(dtype_size(DType::F64), 8u);
  EXPECT_EQ(dtype_name(DType::F32), "f32");
  EXPECT_EQ(dtype_from_name("u16").value(), DType::U16);
  EXPECT_FALSE(dtype_from_name("complex128"));
  // Round trip all dtypes.
  for (auto t : {DType::U8, DType::I8, DType::U16, DType::I16, DType::U32,
                 DType::I32, DType::U64, DType::I64, DType::F32, DType::F64}) {
    EXPECT_EQ(dtype_from_name(std::string(dtype_name(t))).value(), t);
  }
}

TEST(Tensor, ShapeAndIndexing) {
  Tensor<double> t(Shape{2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  t(1, 2, 3) = 7.5;
  EXPECT_DOUBLE_EQ(t[23], 7.5);  // row-major last element
  t(0, 0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(t[0], 1.0);
}

TEST(Tensor, FullAndZeros) {
  auto z = Tensor<int32_t>::zeros(Shape{3, 3});
  for (auto v : z.data()) EXPECT_EQ(v, 0);
  auto f = Tensor<int32_t>::full(Shape{2, 2}, -5);
  for (auto v : f.data()) EXPECT_EQ(v, -5);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor<double> t(Shape{2, 6});
  for (size_t i = 0; i < 12; ++i) t[i] = static_cast<double>(i);
  auto r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_DOUBLE_EQ(r(2, 3), 11.0);
}

TEST(Tensor, Slice0ExtractsFrame) {
  Tensor<double> stack(Shape{3, 2, 2});
  for (size_t i = 0; i < stack.size(); ++i) stack[i] = static_cast<double>(i);
  auto frame = stack.slice0(1);
  EXPECT_EQ(frame.shape(), (Shape{2, 2}));
  EXPECT_DOUBLE_EQ(frame(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(frame(1, 1), 7.0);
}

TEST(Ops, SumAxis3MatchesManual) {
  Tensor<double> t(Shape{2, 3, 4});
  for (size_t i = 0; i < t.size(); ++i) t[i] = static_cast<double>(i + 1);

  auto s2 = sum_axis3(t, 2);  // intensity-map style reduction
  EXPECT_EQ(s2.shape(), (Shape{2, 3}));
  double manual = 0;
  for (size_t k = 0; k < 4; ++k) manual += t(1, 2, k);
  EXPECT_DOUBLE_EQ(s2(1, 2), manual);

  auto s0 = sum_axis3(t, 0);
  EXPECT_EQ(s0.shape(), (Shape{3, 4}));
  EXPECT_DOUBLE_EQ(s0(0, 0), t(0, 0, 0) + t(1, 0, 0));

  auto s1 = sum_axis3(t, 1);
  EXPECT_EQ(s1.shape(), (Shape{2, 4}));
  EXPECT_DOUBLE_EQ(s1(0, 3), t(0, 0, 3) + t(0, 1, 3) + t(0, 2, 3));
}

TEST(Ops, SumKeepAxisMatchesManual) {
  Tensor<double> t(Shape{2, 3, 4});
  for (size_t i = 0; i < t.size(); ++i) t[i] = static_cast<double>(i);
  auto spec = sum_keep_axis3(t, 2);  // spectrum-style reduction
  EXPECT_EQ(spec.shape(), (Shape{4}));
  double manual = 0;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) manual += t(i, j, 1);
  }
  EXPECT_DOUBLE_EQ(spec(1), manual);

  auto keep0 = sum_keep_axis3(t, 0);
  EXPECT_EQ(keep0.shape(), (Shape{2}));
  auto keep1 = sum_keep_axis3(t, 1);
  EXPECT_EQ(keep1.shape(), (Shape{3}));
}

// Property: total mass is conserved by every reduction path.
class ReductionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionProperty, MassConservation) {
  util::Rng rng(GetParam());
  Shape shape{static_cast<size_t>(rng.uniform_int(1, 6)),
              static_cast<size_t>(rng.uniform_int(1, 6)),
              static_cast<size_t>(rng.uniform_int(1, 6))};
  Tensor<double> t(shape);
  for (size_t i = 0; i < t.size(); ++i) t[i] = rng.uniform(-10, 10);
  double total = sum_value(t);
  for (size_t axis = 0; axis < 3; ++axis) {
    EXPECT_NEAR(sum_value(sum_axis3(t, axis)), total, 1e-9);
    Tensor<double> kept = sum_keep_axis3(t, axis);
    double kept_total = 0;
    for (double v : kept.data()) kept_total += v;
    EXPECT_NEAR(kept_total, total, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionProperty,
                         ::testing::Range<uint64_t>(1, 13));

TEST(Ops, MinMaxMeanSum) {
  Tensor<double> t(Shape{4});
  t(0) = -2;
  t(1) = 8;
  t(2) = 0;
  t(3) = 2;
  EXPECT_DOUBLE_EQ(min_value(t), -2);
  EXPECT_DOUBLE_EQ(max_value(t), 8);
  EXPECT_DOUBLE_EQ(sum_value(t), 8);
  EXPECT_DOUBLE_EQ(mean_value(t), 2);
}

TEST(Ops, ToU8NormalizedRange) {
  Tensor<double> t(Shape{3});
  t(0) = -5;
  t(1) = 0;
  t(2) = 5;
  auto u = to_u8_normalized(t);
  EXPECT_EQ(u(0), 0);
  EXPECT_EQ(u(1), 128);  // midpoint rounds to 128
  EXPECT_EQ(u(2), 255);
}

TEST(Ops, ToU8NormalizedIntoMatchesAllocating) {
  util::Rng rng(0x1A70);
  Tensor<double> t(Shape{4, 9, 7});
  for (size_t i = 0; i < t.size(); ++i) t[i] = rng.uniform(-50.0, 950.0);
  auto seq = to_u8_normalized(t);

  Tensor<uint8_t> into(t.shape());
  for (size_t i = 0; i < into.size(); ++i) into[i] = 0xCC;
  to_u8_normalized_into(t, into);
  EXPECT_EQ(into.storage(), seq.storage());

  util::ThreadPool pool(3);
  Tensor<uint8_t> par(t.shape());
  for (size_t i = 0; i < par.size(); ++i) par[i] = 0x33;
  to_u8_normalized_into(t, par, pool);
  EXPECT_EQ(par.storage(), seq.storage());
}

TEST(Ops, ToU8ConstantInputIsZero) {
  auto u = to_u8_normalized(Tensor<double>::full(Shape{5}, 3.14));
  for (auto v : u.data()) EXPECT_EQ(v, 0);
}

TEST(Ops, Conversions) {
  Tensor<uint16_t> a(Shape{3});
  a(0) = 0;
  a(1) = 1000;
  a(2) = 65535;
  auto d = to_f64(a);
  EXPECT_DOUBLE_EQ(d(2), 65535.0);
  auto f = to_f32(d);
  EXPECT_FLOAT_EQ(f(1), 1000.0f);
  auto back = from_f32(f);
  EXPECT_DOUBLE_EQ(back(0), 0.0);
}

TEST(Ops, AddAndScaleInplace) {
  auto a = Tensor<double>::full(Shape{2, 2}, 1.0);
  auto b = Tensor<double>::full(Shape{2, 2}, 2.0);
  add_inplace(a, b);
  EXPECT_DOUBLE_EQ(a(1, 1), 3.0);
  scale_inplace(a, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.5);
}

// ------------------------------------------------------------ SIMD parity ----
// Contract (simd.hpp): every dispatched kernel is BIT-IDENTICAL to its
// always-compiled scalar twin — the scalar backend emulates the same 4-lane
// association the vector units use. These tests run whatever backend
// dispatch picked (CI also forces PICO_SIMD=scalar for the trivial case) and
// hammer the hazards vectorization introduces: unaligned base pointers,
// non-multiple-of-width tails, NaN/inf payloads, and empty inputs.

double fuzz_value(util::Rng& rng) {
  double r = rng.uniform(0.0, 1.0);
  if (r < 0.02) return std::numeric_limits<double>::quiet_NaN();
  if (r < 0.04) return std::numeric_limits<double>::infinity();
  if (r < 0.06) return -std::numeric_limits<double>::infinity();
  if (r < 0.08) return 0.0;
  return rng.uniform(-1e6, 1e6);
}

TEST(SimdParity, MinMaxSumMatchScalarOnUnalignedTails) {
  util::Rng rng(0x51D);
  // Over-allocate so every offset 0..3 and length keeps us in bounds.
  std::vector<double> buf(1024 + 8);
  for (size_t len : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 64u, 1000u}) {
    for (size_t off = 0; off < 4; ++off) {
      const double* p = buf.data() + off;
      for (auto& v : buf) v = rng.uniform(-4096.0, 4096.0);
      if (len > 0) {
        simd::MinMax64 vec = simd::minmax_f64(p, len);
        simd::MinMax64 ref = simd::scalar::minmax_f64(p, len);
        EXPECT_EQ(vec.min, ref.min) << "len=" << len << " off=" << off;
        EXPECT_EQ(vec.max, ref.max) << "len=" << len << " off=" << off;
      }
      // Bit-exact: memcmp via bit_cast-style comparison of doubles.
      double vs = simd::sum_f64(p, len);
      double rs = simd::scalar::sum_f64(p, len);
      EXPECT_EQ(std::memcmp(&vs, &rs, sizeof vs), 0)
          << "len=" << len << " off=" << off << " vec=" << vs
          << " ref=" << rs;
    }
  }
}

TEST(SimdParity, NanAndInfPropagateIdentically) {
  util::Rng rng(0xF1F);
  std::vector<double> buf(513);
  for (auto& v : buf) v = fuzz_value(rng);
  // The contract's NaN carve-out for sums: with NaN (or inf - inf) in the
  // inputs the result must be NaN on every backend, but its sign/payload
  // bits are unspecified — the compiler may swap operands of a commutative
  // `+` in the scalar reference while ADDPD propagates its first operand.
  double vs = simd::sum_f64(buf.data(), buf.size());
  double rs = simd::scalar::sum_f64(buf.data(), buf.size());
  if (std::isnan(rs)) {
    EXPECT_TRUE(std::isnan(vs));
  } else {
    EXPECT_EQ(std::memcmp(&vs, &rs, sizeof vs), 0);
  }
  // minmax ignores NaN by construction ((v < m) ? v : m); both backends must
  // agree even when the buffer is NaN-ridden.
  simd::MinMax64 vec = simd::minmax_f64(buf.data(), buf.size());
  simd::MinMax64 ref = simd::scalar::minmax_f64(buf.data(), buf.size());
  EXPECT_EQ(std::memcmp(&vec, &ref, sizeof vec), 0);

  std::vector<double> all_nan(37, std::numeric_limits<double>::quiet_NaN());
  simd::MinMax64 vn = simd::minmax_f64(all_nan.data(), all_nan.size());
  simd::MinMax64 rn = simd::scalar::minmax_f64(all_nan.data(), all_nan.size());
  EXPECT_EQ(std::memcmp(&vn, &rn, sizeof vn), 0);
}

TEST(SimdParity, AddF64MatchesScalar) {
  util::Rng rng(0xADD);
  for (size_t len : {0u, 1u, 3u, 4u, 6u, 129u}) {
    std::vector<double> src(len), acc_vec(len), acc_ref(len);
    for (size_t i = 0; i < len; ++i) {
      src[i] = rng.uniform(-10.0, 10.0);
      acc_vec[i] = acc_ref[i] = rng.uniform(-10.0, 10.0);
    }
    simd::add_f64(acc_vec.data(), src.data(), len);
    simd::scalar::add_f64(acc_ref.data(), src.data(), len);
    EXPECT_EQ(std::memcmp(acc_vec.data(), acc_ref.data(), len * 8), 0)
        << "len=" << len;
  }
}

TEST(SimdParity, ScaleToU8MatchesScalarIncludingNonFinite) {
  util::Rng rng(0x5CA1E);
  std::vector<double> src(777);
  for (auto& v : src) v = fuzz_value(rng);
  // NaN maps to 0, +inf clamps to 255, -inf clamps to 0 — defined on every
  // backend (the scalar formula clamps before the int cast).
  std::vector<uint8_t> out_vec(src.size(), 0xAA), out_ref(src.size(), 0xBB);
  for (size_t off = 0; off < 4; ++off) {
    const size_t n = src.size() - off;
    simd::scale_to_u8(src.data() + off, out_vec.data(), n, -100.0, 0.01);
    simd::scalar::scale_to_u8(src.data() + off, out_ref.data(), n, -100.0,
                              0.01);
    EXPECT_EQ(std::memcmp(out_vec.data(), out_ref.data(), n), 0)
        << "off=" << off;
  }
  // Empty input: no writes at all.
  uint8_t canary = 0x7F;
  simd::scale_to_u8(src.data(), &canary, 0, 0.0, 1.0);
  EXPECT_EQ(canary, 0x7F);
}

TEST(SimdParity, ActiveLevelIsReportable) {
  const char* name = simd::active_level_name();
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "avx2" ||
              std::string(name) == "avx512" || std::string(name) == "neon");
}

}  // namespace
}  // namespace pico::tensor

// Store tests: capacity accounting, real vs virtual objects, listing.
#include <gtest/gtest.h>

#include "storage/store.hpp"
#include "util/crc64.hpp"

namespace pico::storage {
namespace {

sim::SimTime at(double s) { return sim::SimTime::from_seconds(s); }

TEST(Store, PutGetRealContent) {
  Store store("test", 1000);
  std::vector<uint8_t> data = {1, 2, 3, 4};
  ASSERT_TRUE(store.put("a/b.emd", data, at(1)));
  auto obj = store.get("a/b.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj.value()->size, 4);
  EXPECT_TRUE(obj.value()->has_content());
  EXPECT_EQ(*obj.value()->content, data);
  EXPECT_EQ(obj.value()->crc64, util::crc64(data));
  EXPECT_DOUBLE_EQ(obj.value()->created.seconds(), 1.0);
}

TEST(Store, PutWithCrcTrustsTheFusedChecksum) {
  Store store("test", 1000);
  std::vector<uint8_t> data = {9, 8, 7, 6, 5};
  const uint64_t crc = util::crc64(data);
  ASSERT_TRUE(store.put_with_crc("fused.emd", data, crc, at(2)));
  auto obj = store.get("fused.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj.value()->crc64, crc);
  EXPECT_EQ(obj.value()->stored_crc64, crc);
  EXPECT_TRUE(obj.value()->intact());
  EXPECT_TRUE(store.verify("fused.emd").value());

  // A wrong declared checksum is NOT caught at write time (the whole point
  // is skipping the scan): the store trusts it as both manifest and media
  // checksum. The fused callers compute the CRC from the landed bytes
  // themselves (crc64_copy / decode_frame), so they cannot declare wrong —
  // only a content rescan would expose a lie.
  ASSERT_TRUE(store.put_with_crc("lied.emd", data, crc ^ 1, at(3)));
  auto lied = store.get("lied.emd");
  ASSERT_TRUE(lied);
  EXPECT_TRUE(lied.value()->intact());  // trusted, not verified
  EXPECT_NE(util::crc64(*lied.value()->content), lied.value()->crc64);
}

TEST(Store, VirtualObjectCarriesSizeAndCrc) {
  Store store("eagle", static_cast<int64_t>(100e15));
  ASSERT_TRUE(store.put_virtual("x.emd", 1'200'000'000, 0xABCD, at(0)));
  auto obj = store.get("x.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj.value()->size, 1'200'000'000);
  EXPECT_FALSE(obj.value()->has_content());
  EXPECT_EQ(obj.value()->crc64, 0xABCDu);
  EXPECT_EQ(store.used_bytes(), 1'200'000'000);
}

TEST(Store, CapacityEnforced) {
  Store store("tiny", 10);
  EXPECT_TRUE(store.put("a", std::vector<uint8_t>(6), at(0)));
  auto st = store.put("b", std::vector<uint8_t>(5), at(0));
  EXPECT_FALSE(st);
  EXPECT_EQ(st.error().code, "capacity");
  EXPECT_EQ(store.used_bytes(), 6);
  // Exactly filling is fine.
  EXPECT_TRUE(store.put("c", std::vector<uint8_t>(4), at(0)));
}

TEST(Store, OverwriteAdjustsUsage) {
  Store store("s", 100);
  ASSERT_TRUE(store.put("f", std::vector<uint8_t>(60), at(0)));
  // Replacing with a smaller object frees space.
  ASSERT_TRUE(store.put("f", std::vector<uint8_t>(10), at(1)));
  EXPECT_EQ(store.used_bytes(), 10);
  ASSERT_TRUE(store.put("g", std::vector<uint8_t>(80), at(2)));
  EXPECT_FALSE(store.put("f", std::vector<uint8_t>(30), at(3)));
  EXPECT_EQ(store.used_bytes(), 90);
}

TEST(Store, RemoveFreesSpace) {
  Store store("s", 100);
  ASSERT_TRUE(store.put("f", std::vector<uint8_t>(50), at(0)));
  ASSERT_TRUE(store.remove("f"));
  EXPECT_EQ(store.used_bytes(), 0);
  EXPECT_FALSE(store.exists("f"));
  EXPECT_FALSE(store.remove("f"));
  EXPECT_FALSE(store.get("f"));
}

TEST(Store, ListByPrefix) {
  Store store("s", 1000);
  ASSERT_TRUE(store.put("exp/a.emd", std::vector<uint8_t>(1), at(0)));
  ASSERT_TRUE(store.put("exp/b.emd", std::vector<uint8_t>(1), at(0)));
  ASSERT_TRUE(store.put("other/c.emd", std::vector<uint8_t>(1), at(0)));
  auto listed = store.list("exp/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "exp/a.emd");
  EXPECT_EQ(store.list().size(), 3u);
  EXPECT_TRUE(store.list("zzz").empty());
  EXPECT_EQ(store.object_count(), 3u);
}

// ---- integrity surface: corruption, truncation, verify, quarantine ----

TEST(StoreIntegrity, WriteThenCorruptThenReadDetectsDamage) {
  Store store("s", 1000);
  std::vector<uint8_t> data = {10, 20, 30, 40, 50};
  ASSERT_TRUE(store.put("f.emd", data, at(0)));
  ASSERT_TRUE(store.verify("f.emd"));
  EXPECT_TRUE(store.verify("f.emd").value());

  ASSERT_TRUE(store.corrupt("f.emd"));
  auto obj = store.get("f.emd");
  ASSERT_TRUE(obj);
  // Declared checksum still describes the original bytes; the media copy no
  // longer matches it.
  EXPECT_EQ(obj.value()->crc64, util::crc64(data));
  EXPECT_FALSE(obj.value()->intact());
  auto ok = store.verify("f.emd");
  ASSERT_TRUE(ok);
  EXPECT_FALSE(ok.value());
}

TEST(StoreIntegrity, CorruptVirtualObjectDetected) {
  Store store("eagle", static_cast<int64_t>(1e12));
  ASSERT_TRUE(store.put_virtual("v.emd", 1'000'000, 0xBEEF, at(0)));
  ASSERT_TRUE(store.corrupt("v.emd", 7));
  auto ok = store.verify("v.emd");
  ASSERT_TRUE(ok);
  EXPECT_FALSE(ok.value());
  EXPECT_FALSE(store.get("v.emd").value()->intact());
  EXPECT_FALSE(store.corrupt("missing"));
  EXPECT_FALSE(store.verify("missing"));
}

TEST(StoreIntegrity, TruncateShrinksMediaCopyNotDeclaration) {
  Store store("s", 1000);
  std::vector<uint8_t> data(100, 7);
  ASSERT_TRUE(store.put("t.emd", data, at(0)));
  ASSERT_TRUE(store.truncate("t.emd", 40));
  auto obj = store.get("t.emd");
  ASSERT_TRUE(obj);
  // Manifest-declared size/crc keep the full-file values so verification can
  // notice the loss.
  EXPECT_EQ(obj.value()->size, 100);
  EXPECT_EQ(obj.value()->crc64, util::crc64(data));
  EXPECT_FALSE(obj.value()->intact());
  EXPECT_FALSE(store.truncate("t.emd", 100));  // must actually shrink
  EXPECT_FALSE(store.truncate("t.emd", -1));
  EXPECT_FALSE(store.truncate("missing", 1));
}

TEST(StoreIntegrity, QuarantineRemovesFromNamespaceAndFreesSpace) {
  Store store("s", 100);
  ASSERT_TRUE(store.put("bad.emd", std::vector<uint8_t>(60), at(0)));
  ASSERT_TRUE(store.corrupt("bad.emd"));
  ASSERT_TRUE(store.quarantine("bad.emd"));
  EXPECT_FALSE(store.exists("bad.emd"));
  EXPECT_EQ(store.used_bytes(), 0);  // capacity released for the repair copy
  EXPECT_EQ(store.quarantine_count(), 1u);
  ASSERT_EQ(store.quarantined().size(), 1u);
  EXPECT_EQ(store.quarantined()[0], "bad.emd");
  EXPECT_FALSE(store.quarantine("bad.emd"));  // already gone
  // A clean replacement can land under the original path.
  ASSERT_TRUE(store.put("bad.emd", std::vector<uint8_t>(60), at(1)));
  EXPECT_TRUE(store.verify("bad.emd").value());
}

TEST(StoreIntegrity, CorruptRandomIsSeededAndScoped) {
  Store a("a", static_cast<int64_t>(1e9));
  Store b("b", static_cast<int64_t>(1e9));
  for (int i = 0; i < 50; ++i) {
    std::string path = "exp/f" + std::to_string(i) + ".emd";
    ASSERT_TRUE(a.put(path, std::vector<uint8_t>(100, 1), at(0)));
    ASSERT_TRUE(b.put(path, std::vector<uint8_t>(100, 1), at(0)));
  }
  auto hit_a = a.corrupt_random(0.3, 1234);
  auto hit_b = b.corrupt_random(0.3, 1234);
  EXPECT_FALSE(hit_a.empty());
  EXPECT_LT(hit_a.size(), 50u);
  EXPECT_EQ(hit_a, hit_b);  // same seed, same victims: reproducible chaos
  for (const auto& path : hit_a) {
    EXPECT_FALSE(a.verify(path).value()) << path;
  }
  // Prefix scoping: nothing outside the prefix is touched.
  Store c("c", static_cast<int64_t>(1e9));
  ASSERT_TRUE(c.put("keep/safe.emd", std::vector<uint8_t>(10), at(0)));
  ASSERT_TRUE(c.put("exp/x.emd", std::vector<uint8_t>(10), at(0)));
  c.corrupt_random(1.0, 99, "exp/");
  EXPECT_TRUE(c.verify("keep/safe.emd").value());
  EXPECT_FALSE(c.verify("exp/x.emd").value());
}

}  // namespace
}  // namespace pico::storage

// ---- scrubber: periodic at-rest verification + quarantine + repair ----
#include "storage/scrubber.hpp"

namespace pico::storage {
namespace {

TEST(Scrubber, ScanQuarantinesCorruptObjectsAndRequestsRepair) {
  sim::Engine engine;
  Store store("eagle", static_cast<int64_t>(1e9));
  ASSERT_TRUE(store.put("exp/good.emd", std::vector<uint8_t>(10), at(0)));
  ASSERT_TRUE(store.put("exp/bad.emd", std::vector<uint8_t>(10), at(0)));
  ASSERT_TRUE(store.corrupt("exp/bad.emd"));

  ScrubberConfig cfg;
  cfg.prefix = "exp/";
  Scrubber scrubber(&engine, &store, cfg);
  std::vector<std::string> repairs;
  scrubber.set_repair([&](const std::string& path) { repairs.push_back(path); });

  EXPECT_EQ(scrubber.scan_once(), 1);
  EXPECT_EQ(store.quarantine_count(), 1u);
  EXPECT_TRUE(store.exists("exp/good.emd"));
  EXPECT_FALSE(store.exists("exp/bad.emd"));
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0], "exp/bad.emd");
  EXPECT_EQ(scrubber.stats().corrupt_found, 1u);
  EXPECT_EQ(scrubber.stats().repairs_requested, 1u);
}

TEST(Scrubber, PeriodicPassesStopAtHorizon) {
  sim::Engine engine;
  Store store("eagle", static_cast<int64_t>(1e9));
  ASSERT_TRUE(store.put("a.emd", std::vector<uint8_t>(10), at(0)));

  ScrubberConfig cfg;
  cfg.interval_s = 100;
  cfg.horizon_s = 350;  // passes at 100, 200, 300 — then the queue drains
  Scrubber scrubber(&engine, &store, cfg);
  scrubber.start();
  engine.run();
  EXPECT_EQ(scrubber.stats().scans, 3u);
  EXPECT_EQ(scrubber.stats().objects_checked, 3u);
  EXPECT_EQ(scrubber.stats().corrupt_found, 0u);
  EXPECT_DOUBLE_EQ(engine.now().seconds(), 300.0);
}

TEST(Scrubber, NonPositiveIntervalDisablesScrubbing) {
  // A zero (or negative) cadence means "no scrubbing" — not a pass every
  // virtual instant. The old behaviour re-scheduled at the same timestamp
  // forever, so engine.run() never returned.
  for (double interval : {0.0, -5.0}) {
    sim::Engine engine;
    Store store("eagle", static_cast<int64_t>(1e9));
    ASSERT_TRUE(store.put("a.emd", std::vector<uint8_t>(10), at(0)));
    ASSERT_TRUE(store.corrupt("a.emd"));

    ScrubberConfig cfg;
    cfg.interval_s = interval;
    Scrubber scrubber(&engine, &store, cfg);
    scrubber.start();
    engine.run();  // queue must drain immediately
    EXPECT_EQ(scrubber.stats().scans, 0u) << "interval=" << interval;
    EXPECT_EQ(store.quarantine_count(), 0u);
    EXPECT_DOUBLE_EQ(engine.now().seconds(), 0.0);
  }
}

TEST(Scrubber, MidCampaignCorruptionCaughtOnNextPass) {
  sim::Engine engine;
  Store store("eagle", static_cast<int64_t>(1e9));
  ASSERT_TRUE(store.put("f.emd", std::vector<uint8_t>(64), at(0)));

  ScrubberConfig cfg;
  cfg.interval_s = 60;
  cfg.horizon_s = 200;
  Scrubber scrubber(&engine, &store, cfg);
  std::vector<double> repair_times;
  scrubber.set_repair(
      [&](const std::string&) { repair_times.push_back(engine.now().seconds()); });
  scrubber.start();
  // Bit rot strikes between the first (t=60) and second (t=120) passes.
  engine.schedule_at(at(90), [&] { ASSERT_TRUE(store.corrupt("f.emd")); });
  engine.run();
  ASSERT_EQ(repair_times.size(), 1u);
  EXPECT_DOUBLE_EQ(repair_times[0], 120.0);
  EXPECT_EQ(store.quarantine_count(), 1u);
}

}  // namespace
}  // namespace pico::storage

// Store tests: capacity accounting, real vs virtual objects, listing.
#include <gtest/gtest.h>

#include "storage/store.hpp"
#include "util/crc64.hpp"

namespace pico::storage {
namespace {

sim::SimTime at(double s) { return sim::SimTime::from_seconds(s); }

TEST(Store, PutGetRealContent) {
  Store store("test", 1000);
  std::vector<uint8_t> data = {1, 2, 3, 4};
  ASSERT_TRUE(store.put("a/b.emd", data, at(1)));
  auto obj = store.get("a/b.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj.value()->size, 4);
  EXPECT_TRUE(obj.value()->has_content());
  EXPECT_EQ(*obj.value()->content, data);
  EXPECT_EQ(obj.value()->crc64, util::crc64(data));
  EXPECT_DOUBLE_EQ(obj.value()->created.seconds(), 1.0);
}

TEST(Store, VirtualObjectCarriesSizeAndCrc) {
  Store store("eagle", static_cast<int64_t>(100e15));
  ASSERT_TRUE(store.put_virtual("x.emd", 1'200'000'000, 0xABCD, at(0)));
  auto obj = store.get("x.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj.value()->size, 1'200'000'000);
  EXPECT_FALSE(obj.value()->has_content());
  EXPECT_EQ(obj.value()->crc64, 0xABCDu);
  EXPECT_EQ(store.used_bytes(), 1'200'000'000);
}

TEST(Store, CapacityEnforced) {
  Store store("tiny", 10);
  EXPECT_TRUE(store.put("a", std::vector<uint8_t>(6), at(0)));
  auto st = store.put("b", std::vector<uint8_t>(5), at(0));
  EXPECT_FALSE(st);
  EXPECT_EQ(st.error().code, "capacity");
  EXPECT_EQ(store.used_bytes(), 6);
  // Exactly filling is fine.
  EXPECT_TRUE(store.put("c", std::vector<uint8_t>(4), at(0)));
}

TEST(Store, OverwriteAdjustsUsage) {
  Store store("s", 100);
  ASSERT_TRUE(store.put("f", std::vector<uint8_t>(60), at(0)));
  // Replacing with a smaller object frees space.
  ASSERT_TRUE(store.put("f", std::vector<uint8_t>(10), at(1)));
  EXPECT_EQ(store.used_bytes(), 10);
  ASSERT_TRUE(store.put("g", std::vector<uint8_t>(80), at(2)));
  EXPECT_FALSE(store.put("f", std::vector<uint8_t>(30), at(3)));
  EXPECT_EQ(store.used_bytes(), 90);
}

TEST(Store, RemoveFreesSpace) {
  Store store("s", 100);
  ASSERT_TRUE(store.put("f", std::vector<uint8_t>(50), at(0)));
  ASSERT_TRUE(store.remove("f"));
  EXPECT_EQ(store.used_bytes(), 0);
  EXPECT_FALSE(store.exists("f"));
  EXPECT_FALSE(store.remove("f"));
  EXPECT_FALSE(store.get("f"));
}

TEST(Store, ListByPrefix) {
  Store store("s", 1000);
  ASSERT_TRUE(store.put("exp/a.emd", std::vector<uint8_t>(1), at(0)));
  ASSERT_TRUE(store.put("exp/b.emd", std::vector<uint8_t>(1), at(0)));
  ASSERT_TRUE(store.put("other/c.emd", std::vector<uint8_t>(1), at(0)));
  auto listed = store.list("exp/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "exp/a.emd");
  EXPECT_EQ(store.list().size(), 3u);
  EXPECT_TRUE(store.list("zzz").empty());
  EXPECT_EQ(store.object_count(), 3u);
}

}  // namespace
}  // namespace pico::storage

// Instrument simulator tests: X-ray line library, hyperspectral cubes carry
// the configured elements' peaks, spatiotemporal truth boxes track particles.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "instrument/hyperspectral_gen.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "instrument/xray_lines.hpp"
#include "tensor/ops.hpp"

namespace pico::instrument {
namespace {

TEST(XRayLines, LibraryLookups) {
  const auto& lib = XRayLineLibrary::standard();
  auto au = lib.element("Au");
  ASSERT_TRUE(au);
  EXPECT_EQ(au.value()->atomic_number, 79);
  EXPECT_GE(au.value()->lines.size(), 2u);
  EXPECT_FALSE(lib.element("Xx"));
}

TEST(XRayLines, LinesInRange) {
  const auto& lib = XRayLineLibrary::standard();
  auto low = lib.lines_in_range(0.0, 1.0);  // C, N, O Ka
  bool has_c = false;
  for (const auto& [el, line] : low) {
    EXPECT_GE(line->energy_kev, 0.0);
    EXPECT_LE(line->energy_kev, 1.0);
    if (el->symbol == "C") has_c = true;
  }
  EXPECT_TRUE(has_c);
  EXPECT_TRUE(lib.lines_in_range(50, 60).empty());
}

TEST(XRayLines, EnergiesPhysical) {
  for (const auto& el : XRayLineLibrary::standard().elements()) {
    for (const auto& line : el.lines) {
      EXPECT_GT(line.energy_kev, 0.0) << el.symbol;
      EXPECT_LT(line.energy_kev, 25.0) << el.symbol;
      EXPECT_GT(line.relative_weight, 0.0) << el.symbol;
      EXPECT_LE(line.relative_weight, 1.0) << el.symbol;
    }
  }
}

TEST(HyperspectralGen, CubeShapeAndPositivity) {
  HyperspectralConfig cfg;
  cfg.height = 16;
  cfg.width = 20;
  cfg.channels = 64;
  cfg.background = {{"C", 1.0}};
  HyperspectralSample sample = generate_hyperspectral(cfg);
  EXPECT_EQ(sample.cube.shape(), (tensor::Shape{16, 20, 64}));
  EXPECT_EQ(sample.energy_axis.size(), 64u);
  for (double v : sample.cube.data()) EXPECT_GE(v, 0.0);
  EXPECT_GT(tensor::sum_value(sample.cube), 0.0);
  EXPECT_EQ(sample.true_elements, (std::vector<std::string>{"C"}));
}

TEST(HyperspectralGen, DeterministicPerSeed) {
  HyperspectralConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.channels = 32;
  cfg.background = {{"C", 1.0}};
  cfg.seed = 77;
  auto a = generate_hyperspectral(cfg);
  auto b = generate_hyperspectral(cfg);
  ASSERT_EQ(a.cube.size(), b.cube.size());
  for (size_t i = 0; i < a.cube.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.cube[i], b.cube[i]);
  }
  cfg.seed = 78;
  auto c = generate_hyperspectral(cfg);
  bool differs = false;
  for (size_t i = 0; i < a.cube.size() && !differs; ++i) {
    if (a.cube[i] != c.cube[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(HyperspectralGen, ElementPeaksAppearInSpectrum) {
  // Pure iron sample: the spectrum should peak near the Fe Ka line (6.4 keV).
  HyperspectralConfig cfg;
  cfg.height = 24;
  cfg.width = 24;
  cfg.channels = 400;
  cfg.dose = 200;
  cfg.continuum_fraction = 0.05;
  cfg.background = {{"Fe", 1.0}};
  auto sample = generate_hyperspectral(cfg);
  auto spectrum = tensor::sum_keep_axis3(sample.cube, 2);
  size_t best = 0;
  for (size_t k = 0; k < spectrum.size(); ++k) {
    if (spectrum(k) > spectrum(best)) best = k;
  }
  EXPECT_NEAR(sample.energy_axis[best], 6.398, 0.2);
}

TEST(HyperspectralGen, ParticleRegionsBoostDose) {
  HyperspectralConfig cfg;
  cfg.height = 32;
  cfg.width = 32;
  cfg.channels = 64;
  cfg.dose = 100;
  cfg.background = {{"C", 1.0}};
  cfg.particles = {{16, 16, 6, {{"Au", 1.0}}}};
  auto sample = generate_hyperspectral(cfg);
  auto intensity = tensor::sum_axis3(sample.cube, 2);
  EXPECT_GT(intensity(16, 16), intensity(2, 2) * 1.2);
  EXPECT_EQ(sample.true_elements, (std::vector<std::string>{"Au", "C"}));
}

TEST(HyperspectralGen, Fig2SampleHasHeavyMetals) {
  auto cfg = HyperspectralConfig::fig2_sample();
  bool has_au = false, has_pb = false;
  for (const auto& p : cfg.particles) {
    if (p.composition.count("Au")) has_au = true;
    if (p.composition.count("Pb")) has_pb = true;
  }
  EXPECT_TRUE(has_au);
  EXPECT_TRUE(has_pb);
}

TEST(HyperspectralGen, ToEmdRoundTrip) {
  HyperspectralConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.channels = 16;
  cfg.background = {{"C", 1.0}};
  auto sample = generate_hyperspectral(cfg);
  emd::MicroscopeSettings scope;
  emd::File file = to_emd(sample, cfg, scope, "2023-04-07T10:00:00Z",
                          "test sample", "op@anl.gov");
  auto re = emd::File::from_bytes(file.to_bytes());
  ASSERT_TRUE(re);
  auto kind = emd::signal_kind(re.value(), "hyperspectral");
  ASSERT_TRUE(kind);
  EXPECT_EQ(kind.value(), emd::SignalKind::Hyperspectral);
  const emd::Dataset* ds =
      re.value().root.find_dataset("data/hyperspectral/data");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->shape(), (tensor::Shape{8, 8, 16}));
}

TEST(SpatiotemporalGen, ShapesAndTruth) {
  SpatiotemporalConfig cfg;
  cfg.frames = 12;
  cfg.height = 64;
  cfg.width = 48;
  cfg.particle_count = 5;
  auto sample = generate_spatiotemporal(cfg);
  EXPECT_EQ(sample.stack.shape(), (tensor::Shape{12, 64, 48}));
  ASSERT_EQ(sample.boxes.size(), 12u);
  ASSERT_EQ(sample.ids.size(), 12u);
  for (size_t t = 0; t < 12; ++t) {
    EXPECT_LE(sample.boxes[t].size(), 5u);
    EXPECT_EQ(sample.boxes[t].size(), sample.ids[t].size());
    for (const auto& box : sample.boxes[t]) {
      EXPECT_GE(box.x, 0);
      EXPECT_GE(box.y, 0);
      EXPECT_LE(box.x2(), 48);
      EXPECT_LE(box.y2(), 64);
      EXPECT_GT(box.area(), 0);
    }
  }
}

TEST(SpatiotemporalGen, ParticlesBrighterThanBackground) {
  SpatiotemporalConfig cfg;
  cfg.frames = 3;
  cfg.height = 64;
  cfg.width = 64;
  cfg.particle_count = 3;
  cfg.noise_sigma = 0.05;
  auto sample = generate_spatiotemporal(cfg);
  for (size_t t = 0; t < cfg.frames; ++t) {
    for (size_t b = 0; b < sample.boxes[t].size(); ++b) {
      const auto& box = sample.boxes[t][b];
      size_t cy = static_cast<size_t>(box.cy());
      size_t cx = static_cast<size_t>(box.cx());
      double center = sample.stack(t, cy, cx);
      EXPECT_GT(center, cfg.background_level + cfg.particle_intensity * 0.5);
    }
  }
}

TEST(SpatiotemporalGen, IdsStableAcrossFrames) {
  SpatiotemporalConfig cfg;
  cfg.frames = 30;
  cfg.particle_count = 4;
  cfg.step_sigma = 0.5;
  auto sample = generate_spatiotemporal(cfg);
  for (const auto& frame_ids : sample.ids) {
    std::set<int> seen;
    for (int id : frame_ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, 4);
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
}

TEST(SpatiotemporalGen, TruthFollowsMotion) {
  SpatiotemporalConfig cfg;
  cfg.frames = 50;
  cfg.particle_count = 1;
  cfg.step_sigma = 2.0;
  auto sample = generate_spatiotemporal(cfg);
  double max_step = 0;
  bool moved = false;
  for (size_t t = 1; t < cfg.frames; ++t) {
    if (sample.boxes[t].empty() || sample.boxes[t - 1].empty()) continue;
    double dx = sample.boxes[t][0].cx() - sample.boxes[t - 1][0].cx();
    double dy = sample.boxes[t][0].cy() - sample.boxes[t - 1][0].cy();
    double step = std::sqrt(dx * dx + dy * dy);
    max_step = std::max(max_step, step);
    if (step > 0) moved = true;
  }
  EXPECT_TRUE(moved);
  EXPECT_LT(max_step, 20.0);  // no teleporting
}

TEST(SpatiotemporalGen, ToEmdCarriesFrameCount) {
  SpatiotemporalConfig cfg;
  cfg.frames = 6;
  cfg.height = 16;
  cfg.width = 16;
  auto sample = generate_spatiotemporal(cfg);
  emd::MicroscopeSettings scope;
  auto file = to_emd(sample, cfg, scope, "2023-04-08T10:00:00Z",
                     "gold nanoparticles on carbon", "op@anl.gov");
  const emd::Group* sig = file.root.find_group("data/spatiotemporal");
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->attrs.at("frame_count").as_int(), 6);
  EXPECT_EQ(sig->attrs.at("substrate").as_string(), "carbon");
}

}  // namespace
}  // namespace pico::instrument

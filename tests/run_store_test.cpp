// Tests for the sharded, slab-backed run store and the seqlock status cell:
// pointer stability across slab chunk boundaries, insertion-order iteration,
// destructor accounting, and cross-thread coherence of the lock-free status
// reads that portal pollers rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "flow/run_store.hpp"

namespace pico::flow {
namespace {

struct Rec {
  static std::atomic<int> live;
  Rec() { live.fetch_add(1, std::memory_order_relaxed); }
  ~Rec() { live.fetch_sub(1, std::memory_order_relaxed); }
  std::string id;
  RunStatusCell cell;
  uint64_t payload[4] = {};
};
std::atomic<int> Rec::live{0};

TEST(ShardedRunStore, EmplaceFindAndInsertionOrder) {
  ShardedRunStore<Rec> store;
  for (int i = 0; i < 100; ++i) {
    std::string id = "run-" + std::to_string(i);
    Rec* r = store.emplace(id);
    ASSERT_NE(r, nullptr);
    r->id = id;
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.find("run-42")->id, "run-42");
  EXPECT_EQ(store.find("run-nope"), nullptr);
  std::vector<std::string> ids = store.ids_in_order();
  ASSERT_EQ(ids.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ids[i], "run-" + std::to_string(i));
}

TEST(ShardedRunStore, DuplicateEmplaceReturnsExistingRecord) {
  ShardedRunStore<Rec> store;
  Rec* first = store.emplace("run-0");
  first->payload[0] = 99;
  Rec* again = store.emplace("run-0");
  EXPECT_EQ(first, again);
  EXPECT_EQ(again->payload[0], 99u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ShardedRunStore, PointersStableAcrossSlabChunks) {
  // Enough records to span several 2 MiB slab chunks; every pointer taken
  // at emplace time must stay valid (the contract that lets scheduled
  // events capture raw Run*).
  constexpr size_t kN = (size_t{2} << 20) / sizeof(Rec) * 3 + 17;
  ShardedRunStore<Rec> store;
  std::vector<Rec*> ptrs;
  ptrs.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    Rec* r = store.emplace(std::to_string(i));
    r->id = std::to_string(i);
    r->payload[0] = i;
    ptrs.push_back(r);
  }
  EXPECT_EQ(store.size(), kN);
  for (size_t i = 0; i < kN; i += 997) {
    EXPECT_EQ(ptrs[i], store.find(std::to_string(i)));
    EXPECT_EQ(ptrs[i]->payload[0], i);
  }
  EXPECT_EQ(ptrs.front()->payload[0], 0u);
  EXPECT_EQ(ptrs.back()->payload[0], kN - 1);
}

TEST(ShardedRunStore, DestructorDestroysEveryRecord) {
  int before = Rec::live.load();
  {
    ShardedRunStore<Rec> store;
    for (int i = 0; i < 5000; ++i) store.emplace(std::to_string(i));
    EXPECT_EQ(Rec::live.load(), before + 5000);
  }
  EXPECT_EQ(Rec::live.load(), before);
}

TEST(ShardedRunStore, ConcurrentReadersDuringEmplace) {
  // Writer thread emplaces (the engine-thread role) while reader threads
  // hammer find()/ids_in_order()/size() — the documented cross-thread API.
  ShardedRunStore<Rec> store;
  constexpr int kN = 20000;
  std::atomic<int> published{0};
  std::atomic<bool> fail{false};
  std::thread writer([&] {
    for (int i = 0; i < kN; ++i) {
      std::string id = std::to_string(i);
      Rec* r = store.emplace(id);
      r->id = id;
      r->payload[0] = static_cast<uint64_t>(i);
      published.store(i + 1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (published.load(std::memory_order_acquire) < kN) {
        int upto = published.load(std::memory_order_acquire);
        if (upto == 0) continue;
        int probe = upto - 1;
        Rec* r = store.find(std::to_string(probe));
        if (!r || r->payload[0] != static_cast<uint64_t>(probe)) {
          fail.store(true);
          return;
        }
        if (store.size() < static_cast<size_t>(upto)) {
          fail.store(true);
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_FALSE(fail.load());
  EXPECT_EQ(store.size(), static_cast<size_t>(kN));
  EXPECT_EQ(store.ids_in_order().size(), static_cast<size_t>(kN));
}

TEST(RunStatusCell, PackAndFastPathWord) {
  RunStatusCell cell;
  cell.publish(/*state=*/3, /*current_step=*/7, /*submitted_ns=*/100,
               /*finished_ns=*/0);
  uint64_t w = cell.word();
  EXPECT_EQ(RunStatusCell::state_of(w), 3);
  EXPECT_EQ(RunStatusCell::step_of(w), 7u);
  RunStatusCell::Snapshot snap = cell.read();
  EXPECT_EQ(snap.state, 3);
  EXPECT_EQ(snap.current_step, 7u);
  EXPECT_EQ(snap.submitted_ns, 100);
  EXPECT_EQ(snap.finished_ns, 0);
}

TEST(RunStatusCell, SeqlockSnapshotsAreAlwaysConsistent) {
  // Writer publishes tuples with an invariant (finished == submitted + step);
  // concurrent readers must never observe a snapshot that breaks it.
  RunStatusCell cell;
  cell.publish(0, 0, 0, 0);
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        RunStatusCell::Snapshot s = cell.read();
        if (s.finished_ns != s.submitted_ns + s.current_step) {
          torn.store(true);
          return;
        }
      }
    });
  }
  for (uint32_t i = 1; i <= 200000; ++i) {
    int64_t submitted = static_cast<int64_t>(i) * 1000;
    cell.publish(static_cast<uint8_t>(i & 0x7), i, submitted,
                 submitted + i);
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(torn.load());
  RunStatusCell::Snapshot last = cell.read();
  EXPECT_EQ(last.current_step, 200000u);
}

}  // namespace
}  // namespace pico::flow

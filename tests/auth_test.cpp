// Auth service tests: issuance, scope checks, revocation.
#include <gtest/gtest.h>

#include "auth/auth.hpp"

namespace pico::auth {
namespace {

TEST(Auth, IssueAndValidate) {
  AuthService auth;
  Token t = auth.issue("alice@anl.gov", {"transfer", "compute"});
  auto info = auth.validate(t, "transfer");
  ASSERT_TRUE(info);
  EXPECT_EQ(info.value().identity, "alice@anl.gov");
  EXPECT_TRUE(info.value().scopes.count("compute"));
}

TEST(Auth, ScopeEnforced) {
  AuthService auth;
  Token t = auth.issue("bob@anl.gov", {"search.ingest"});
  EXPECT_TRUE(auth.validate(t, "search.ingest"));
  auto denied = auth.validate(t, "transfer");
  ASSERT_FALSE(denied);
  EXPECT_EQ(denied.error().code, "denied");
  // Empty required scope just validates the token.
  EXPECT_TRUE(auth.validate(t, ""));
}

TEST(Auth, InvalidTokenRejected) {
  AuthService auth;
  EXPECT_FALSE(auth.validate("tok-0000000000000000", "transfer"));
  EXPECT_FALSE(auth.validate("", "transfer"));
  EXPECT_FALSE(auth.validate("garbage", ""));
}

TEST(Auth, RevocationTakesEffect) {
  AuthService auth;
  Token t = auth.issue("carol@anl.gov", {"flows"});
  ASSERT_TRUE(auth.validate(t, "flows"));
  auth.revoke(t);
  EXPECT_FALSE(auth.validate(t, "flows"));
  EXPECT_EQ(auth.active_tokens(), 0u);
}

TEST(Auth, TokensAreDistinct) {
  AuthService auth;
  Token a = auth.issue("x", {"s"});
  Token b = auth.issue("x", {"s"});
  EXPECT_NE(a, b);
  EXPECT_EQ(auth.active_tokens(), 2u);
}

TEST(Auth, TokensOpaqueButDeterministicPerSeed) {
  AuthService a(5), b(5), c(6);
  EXPECT_EQ(a.issue("u", {}), b.issue("u", {}));
  EXPECT_NE(a.issue("u", {}), c.issue("u", {}));
}

}  // namespace
}  // namespace pico::auth

// Tests for topology routing and the max-min fair-share network model,
// including capacity conservation properties and per-flow rate caps.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace pico::net {
namespace {

struct NetFixture : ::testing::Test {
  sim::Engine engine;
  Topology topo;

  NodeId a, b, c, d;
  LinkId ab, bc, cd;

  void SetUp() override {
    a = topo.add_node("a");
    b = topo.add_node("b");
    c = topo.add_node("c");
    d = topo.add_node("d");
    ab = topo.add_link(a, b, 8e6);  // 1 MB/s
    bc = topo.add_link(b, c, 8e6);
    cd = topo.add_link(c, d, 80e6);  // 10 MB/s
  }
};

TEST_F(NetFixture, RouteShortestPath) {
  auto route = topo.route(a, d);
  ASSERT_TRUE(route);
  EXPECT_EQ(route.value(), (std::vector<LinkId>{ab, bc, cd}));
  auto self_route = topo.route(a, a);
  ASSERT_TRUE(self_route);
  EXPECT_TRUE(self_route.value().empty());
}

TEST_F(NetFixture, UnreachableNodeIsError) {
  NodeId isolated = topo.add_node("island");
  EXPECT_FALSE(topo.route(a, isolated));
}

TEST_F(NetFixture, UnknownNodeNameIsError) {
  EXPECT_FALSE(topo.node("nope"));
  EXPECT_TRUE(topo.node("a"));
}

TEST_F(NetFixture, SingleFlowRunsAtBottleneckRate) {
  Network network(&engine, &topo);
  double completed_at = -1;
  // 10 MB over a 1 MB/s bottleneck -> 10 s (+ negligible latency).
  auto flow = network.start_flow(a, d, 10'000'000, [&](FlowId) {
    completed_at = engine.now().seconds();
  });
  ASSERT_TRUE(flow);
  engine.run();
  EXPECT_NEAR(completed_at, 10.0, 0.01);
}

TEST_F(NetFixture, TwoFlowsShareBottleneckFairly) {
  Network network(&engine, &topo);
  double t1 = -1, t2 = -1;
  // Both flows cross a-b (1 MB/s): each gets 0.5 MB/s.
  network.start_flow(a, d, 5'000'000, [&](FlowId) { t1 = engine.now().seconds(); });
  network.start_flow(a, c, 5'000'000, [&](FlowId) { t2 = engine.now().seconds(); });
  engine.run();
  // Both finish ~10s (equal shares, equal sizes).
  EXPECT_NEAR(t1, 10.0, 0.05);
  EXPECT_NEAR(t2, 10.0, 0.05);
}

TEST_F(NetFixture, ShortFlowFinishingFreesBandwidth) {
  Network network(&engine, &topo);
  double t_small = -1, t_big = -1;
  network.start_flow(a, c, 1'000'000, [&](FlowId) { t_small = engine.now().seconds(); });
  network.start_flow(a, c, 9'000'000, [&](FlowId) { t_big = engine.now().seconds(); });
  engine.run();
  // Small: shares 0.5 MB/s -> done at ~2 s. Big: 1 MB transferred by 2 s,
  // then full 1 MB/s for remaining 8 MB -> ~10 s total.
  EXPECT_NEAR(t_small, 2.0, 0.05);
  EXPECT_NEAR(t_big, 10.0, 0.05);
}

TEST_F(NetFixture, RateCapLimitsThroughput) {
  Network network(&engine, &topo);
  double done = -1;
  // Cap at 0.4 MB/s even though the path allows 1 MB/s.
  network.start_flow(a, c, 4'000'000,
                     [&](FlowId) { done = engine.now().seconds(); },
                     3.2e6);
  engine.run();
  EXPECT_NEAR(done, 10.0, 0.05);
}

TEST_F(NetFixture, CappedFlowLeavesBandwidthForOthers) {
  Network network(&engine, &topo);
  double t_capped = -1, t_free = -1;
  // Capped flow takes 0.25 MB/s; the other gets the remaining 0.75 MB/s.
  network.start_flow(a, c, 2'500'000,
                     [&](FlowId) { t_capped = engine.now().seconds(); }, 2e6);
  network.start_flow(a, c, 7'500'000,
                     [&](FlowId) { t_free = engine.now().seconds(); });
  engine.run();
  EXPECT_NEAR(t_capped, 10.0, 0.1);
  EXPECT_NEAR(t_free, 10.0, 0.1);
}

TEST_F(NetFixture, CancelStopsFlow) {
  Network network(&engine, &topo);
  bool fired = false;
  auto flow = network.start_flow(a, d, 1'000'000, [&](FlowId) { fired = true; });
  ASSERT_TRUE(flow);
  engine.run_until(sim::SimTime::from_seconds(0.5));
  network.cancel_flow(flow.value());
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(network.active_flow_count(), 0u);
}

TEST_F(NetFixture, StatusReportsProgress) {
  Network network(&engine, &topo);
  auto flow = network.start_flow(a, c, 10'000'000, [](FlowId) {});
  ASSERT_TRUE(flow);
  engine.run_until(sim::SimTime::from_seconds(5.0));
  FlowStatus status = network.status(flow.value());
  EXPECT_TRUE(status.active);
  EXPECT_NEAR(static_cast<double>(status.transferred_bytes), 5e6, 1e5);
  engine.run();
  EXPECT_FALSE(network.status(flow.value()).active);
}

TEST_F(NetFixture, ZeroByteFlowCompletesAfterLatency) {
  Network network(&engine, &topo);
  bool fired = false;
  network.start_flow(a, c, 0, [&](FlowId) { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
}

TEST_F(NetFixture, LatencyDelaysStart) {
  Topology lt;
  NodeId x = lt.add_node("x");
  NodeId y = lt.add_node("y");
  lt.add_link(x, y, 8e6, sim::Duration::from_seconds(2.0));
  Network network(&engine, &lt);
  double done = -1;
  network.start_flow(x, y, 1'000'000, [&](FlowId) { done = engine.now().seconds(); });
  engine.run();
  EXPECT_NEAR(done, 3.0, 0.01);  // 2 s latency + 1 s at 1 MB/s
}

TEST_F(NetFixture, MutableLinkCapacityAffectsNewRates) {
  Network network(&engine, &topo);
  double done = -1;
  network.start_flow(a, b, 10'000'000, [&](FlowId) { done = engine.now().seconds(); });
  engine.run_until(sim::SimTime::from_seconds(5.0));  // 5 MB moved
  topo.mutable_link(ab).capacity_bps = 16e6;          // double to 2 MB/s
  network.rates_changed();
  engine.run();
  EXPECT_NEAR(done, 7.5, 0.05);  // remaining 5 MB at 2 MB/s
}

// Property: max-min allocation never oversubscribes any link.
class FairShareProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FairShareProperty, CapacityConservation) {
  sim::Engine engine;
  Topology topo;
  util::Rng rng(GetParam());

  const int n_nodes = 6;
  std::vector<NodeId> nodes;
  for (int i = 0; i < n_nodes; ++i) {
    nodes.push_back(topo.add_node("n" + std::to_string(i)));
  }
  // Ring + chords for route diversity.
  for (int i = 0; i < n_nodes; ++i) {
    topo.add_link(nodes[static_cast<size_t>(i)],
                  nodes[static_cast<size_t>((i + 1) % n_nodes)],
                  rng.uniform(1e6, 1e8));
  }
  topo.add_link(nodes[0], nodes[3], rng.uniform(1e6, 1e8));

  Network network(&engine, &topo);
  int completions = 0;
  int started = 0;
  for (int i = 0; i < 12; ++i) {
    NodeId src = nodes[static_cast<size_t>(rng.uniform_int(0, n_nodes - 1))];
    NodeId dst = nodes[static_cast<size_t>(rng.uniform_int(0, n_nodes - 1))];
    auto f = network.start_flow(src, dst,
                                rng.uniform_int(1000, 50'000'000),
                                [&](FlowId) { ++completions; });
    if (f) ++started;
  }
  // Every flow eventually completes (no starvation under max-min fairness).
  engine.run();
  EXPECT_EQ(completions, started);
  EXPECT_EQ(network.active_flow_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareProperty,
                         ::testing::Values(1, 7, 42, 99, 1234, 31337));

}  // namespace
}  // namespace pico::net

// ------------------------------------------------------- link utilization ----
namespace pico::net {
namespace {

TEST_F(NetFixture, LinkUtilizationAccounting) {
  Network network(&engine, &topo);
  // 10 MB across a-b (1 MB/s): the link is 100% busy for 10 s.
  network.start_flow(a, b, 10'000'000, [](FlowId) {});
  engine.run();
  EXPECT_NEAR(network.bytes_carried(ab), 10e6, 1e4);
  EXPECT_NEAR(network.average_utilization(ab), 1.0, 0.01);
  EXPECT_DOUBLE_EQ(network.bytes_carried(cd), 0.0);
  EXPECT_DOUBLE_EQ(network.average_utilization(cd), 0.0);
}

TEST_F(NetFixture, UtilizationHalvesWithIdleTime) {
  Network network(&engine, &topo);
  network.start_flow(a, b, 5'000'000, [](FlowId) {});  // busy 5 s
  engine.run();
  engine.run_until(sim::SimTime::from_seconds(10));     // idle 5 more
  EXPECT_NEAR(network.average_utilization(ab), 0.5, 0.01);
}

TEST_F(NetFixture, MultiHopFlowCountsOnEveryLink) {
  Network network(&engine, &topo);
  network.start_flow(a, d, 2'000'000, [](FlowId) {});
  engine.run();
  EXPECT_NEAR(network.bytes_carried(ab), 2e6, 1e4);
  EXPECT_NEAR(network.bytes_carried(bc), 2e6, 1e4);
  EXPECT_NEAR(network.bytes_carried(cd), 2e6, 1e4);
  // The 10 MB/s link carried the same bytes at lower relative utilization.
  EXPECT_LT(network.average_utilization(cd),
            network.average_utilization(ab));
}

}  // namespace
}  // namespace pico::net

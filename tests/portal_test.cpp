// Portal tests: record rendering, listing facets, visibility, site output.
#include <gtest/gtest.h>

#include <filesystem>

#include "portal/portal.hpp"
#include "search/schema.hpp"
#include "util/bytes.hpp"

namespace pico::portal {
namespace {

using util::Json;

search::Document record_doc(const std::string& id, const std::string& title,
                            const std::string& created,
                            std::vector<std::string> artifacts = {}) {
  search::RecordInputs in;
  in.title = title;
  in.creators = {"Dynamic PicoProbe"};
  in.created_iso8601 = created;
  in.resource_type = "hyperspectral";
  in.subjects = {"Au"};
  in.instrument_metadata = Json::object({{"beam_energy_kv", 300.0}});
  in.analysis = Json::object({{"total_counts", 12345}});
  in.artifact_paths = artifacts;
  search::Document d;
  d.id = id;
  d.content = search::build_record(in);
  return d;
}

TEST(Portal, RecordHtmlContainsMetadata) {
  Portal portal(PortalConfig{"Test Portal", ""});
  auto doc = record_doc("r1", "Gold film <scan>", "2023-04-07T10:00:00Z");
  std::string html = portal.render_record_html(doc);
  // Title is escaped.
  EXPECT_NE(html.find("Gold film &lt;scan&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<scan>"), std::string::npos);
  EXPECT_NE(html.find("2023-04-07T10:00:00Z"), std::string::npos);
  EXPECT_NE(html.find("beam_energy_kv"), std::string::npos);
  EXPECT_NE(html.find("total_counts"), std::string::npos);
  EXPECT_NE(html.find("Au"), std::string::npos);
}

TEST(Portal, RecordInlinesSvgArtifacts) {
  std::string dir = testing::TempDir() + "/portal_svg_test";
  std::filesystem::create_directories(dir);
  std::string svg_path = dir + "/plot.svg";
  ASSERT_TRUE(util::write_file(svg_path,
                               std::string("<svg><text>SPECTRUM-MARK</text></svg>")));
  Portal portal(PortalConfig{"P", dir});
  auto doc = record_doc("r1", "t", "2023-04-07T10:00:00Z", {svg_path});
  std::string html = portal.render_record_html(doc);
  EXPECT_NE(html.find("SPECTRUM-MARK"), std::string::npos);
}

TEST(Portal, RecordLinksNonSvgArtifacts) {
  Portal portal(PortalConfig{"P", ""});
  auto doc = record_doc("r1", "t", "2023-04-07T10:00:00Z", {"video.mpk"});
  std::string html = portal.render_record_html(doc);
  EXPECT_NE(html.find("href='video.mpk'"), std::string::npos);
}

TEST(Portal, MissingSvgArtifactDegrades) {
  Portal portal(PortalConfig{"P", ""});
  auto doc = record_doc("r1", "t", "2023-04-07T10:00:00Z", {"/nope/x.svg"});
  std::string html = portal.render_record_html(doc);
  EXPECT_NE(html.find("missing artifact"), std::string::npos);
}

TEST(Portal, IndexHtmlListsRecordsAndFacets) {
  search::Index index("exp");
  index.ingest(record_doc("r1", "First scan", "2023-04-07T10:00:00Z"));
  index.ingest(record_doc("r2", "Second scan", "2023-04-08T09:00:00Z"));
  Portal portal(PortalConfig{"PicoProbe Portal", ""});
  std::string html = portal.render_index_html(index, "");
  EXPECT_NE(html.find("PicoProbe Portal"), std::string::npos);
  EXPECT_NE(html.find("First scan"), std::string::npos);
  EXPECT_NE(html.find("Second scan"), std::string::npos);
  // Date facets aggregated per day.
  EXPECT_NE(html.find("2023-04-07 (1)"), std::string::npos);
  EXPECT_NE(html.find("2023-04-08 (1)"), std::string::npos);
  EXPECT_NE(html.find("hyperspectral (2)"), std::string::npos);
  EXPECT_NE(html.find("Experiments (2)"), std::string::npos);
}

TEST(Portal, VisibilityRespectedInListing) {
  search::Index index("exp");
  auto restricted = record_doc("priv", "Hidden scan", "2023-04-07T10:00:00Z");
  restricted.visible_to = {"alice@anl.gov"};
  index.ingest(std::move(restricted));
  Portal portal(PortalConfig{"P", ""});
  EXPECT_EQ(portal.render_index_html(index, "").find("Hidden scan"),
            std::string::npos);
  EXPECT_NE(portal.render_index_html(index, "alice@anl.gov").find("Hidden scan"),
            std::string::npos);
}

TEST(Portal, GenerateWritesSite) {
  std::string dir = testing::TempDir() + "/portal_site_test";
  std::filesystem::remove_all(dir);
  search::Index index("exp");
  index.ingest(record_doc("r1", "Scan one", "2023-04-07T10:00:00Z"));
  index.ingest(record_doc("r2", "Scan two", "2023-04-07T11:00:00Z"));
  Portal portal(PortalConfig{"P", dir});
  auto site = portal.generate(index);
  ASSERT_TRUE(site);
  EXPECT_TRUE(std::filesystem::exists(site.value().index_path));
  ASSERT_EQ(site.value().record_paths.size(), 2u);
  for (const auto& p : site.value().record_paths) {
    EXPECT_TRUE(std::filesystem::exists(p));
  }
  auto index_html = util::read_file(site.value().index_path);
  ASSERT_TRUE(index_html);
  std::string text(index_html.value().begin(), index_html.value().end());
  EXPECT_NE(text.find("record_r1.html"), std::string::npos);
}

}  // namespace
}  // namespace pico::portal

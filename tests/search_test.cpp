// Search index tests: tokenization, TF-IDF ranking, AND semantics, field and
// date filters, ACL visibility, facets, re-ingest; DataCite schema checks.
#include <gtest/gtest.h>

#include "search/index.hpp"
#include "search/schema.hpp"
#include "util/timefmt.hpp"

namespace pico::search {
namespace {

using util::Json;

Document make_doc(const std::string& id, const std::string& title,
                  const std::string& created,
                  const std::string& type = "hyperspectral") {
  Document d;
  d.id = id;
  d.content = Json::object({
      {"title", title},
      {"dates", Json::object({{"created", created}})},
      {"resource_type", type},
      {"subjects", Json::array({"Au", "Pb"})},
  });
  return d;
}

TEST(Tokenize, SplitsOnNonAlnumAndLowercases) {
  auto toks = tokenize("Gold-Nanoparticle Tracking, #42!");
  EXPECT_EQ(toks, (std::vector<std::string>{"gold", "nanoparticle", "tracking",
                                            "42"}));
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("---").empty());
}

TEST(TokenizeJson, WalksValuesNotKeys) {
  Json j = Json::object({
      {"keyname", "valuetext"},
      {"nested", Json::array({Json::object({{"inner", 42}})})},
  });
  auto toks = tokenize_json(j);
  EXPECT_NE(std::find(toks.begin(), toks.end(), "valuetext"), toks.end());
  EXPECT_NE(std::find(toks.begin(), toks.end(), "42"), toks.end());
  EXPECT_EQ(std::find(toks.begin(), toks.end(), "keyname"), toks.end());
}

TEST(Index, FreeTextSearchFindsDocuments) {
  Index index("test");
  index.ingest(make_doc("d1", "gold nanoparticle tracking", "2023-04-07T10:00:00Z"));
  index.ingest(make_doc("d2", "polyamide film spectrum", "2023-04-07T11:00:00Z"));

  Query q;
  q.text = "nanoparticle";
  auto hits = index.search(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, "d1");

  q.text = "zeolite";
  EXPECT_TRUE(index.search(q).empty());
}

TEST(Index, AndSemanticsAcrossTerms) {
  Index index("test");
  index.ingest(make_doc("d1", "gold film", "2023-04-07T10:00:00Z"));
  index.ingest(make_doc("d2", "gold nanoparticle", "2023-04-07T10:00:00Z"));
  Query q;
  q.text = "gold nanoparticle";
  auto hits = index.search(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, "d2");
}

TEST(Index, EmptyQueryReturnsEverythingVisible) {
  Index index("test");
  index.ingest(make_doc("d1", "a", "2023-04-07T10:00:00Z"));
  index.ingest(make_doc("d2", "b", "2023-04-07T10:00:00Z"));
  EXPECT_EQ(index.search(Query{}).size(), 2u);
}

TEST(Index, RareTermsRankHigher) {
  Index index("test");
  // "gold" appears everywhere; "uranium" only in d3.
  index.ingest(make_doc("d1", "gold gold gold", "2023-04-07T10:00:00Z"));
  index.ingest(make_doc("d2", "gold sample", "2023-04-07T10:00:00Z"));
  index.ingest(make_doc("d3", "gold uranium", "2023-04-07T10:00:00Z"));
  Query q;
  q.text = "gold uranium";
  auto hits = index.search(q);
  ASSERT_EQ(hits.size(), 1u);  // AND semantics
  EXPECT_EQ(hits[0].id, "d3");
  // Single common term: d1 has tf=3 so it outranks d2.
  Query q2;
  q2.text = "gold";
  auto hits2 = index.search(q2);
  ASSERT_EQ(hits2.size(), 3u);
  EXPECT_EQ(hits2[0].id, "d1");
}

TEST(Index, FieldFiltersExactAndArrayMembership) {
  Index index("test");
  index.ingest(make_doc("d1", "a", "2023-04-07T10:00:00Z", "hyperspectral"));
  index.ingest(make_doc("d2", "b", "2023-04-07T10:00:00Z", "spatiotemporal"));
  Query q;
  q.field_filters = {{"resource_type", "spatiotemporal"}};
  auto hits = index.search(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, "d2");

  // Array field: subjects contains "Au".
  Query q2;
  q2.field_filters = {{"subjects", "Au"}};
  EXPECT_EQ(index.search(q2).size(), 2u);
  Query q3;
  q3.field_filters = {{"subjects", "Fe"}};
  EXPECT_TRUE(index.search(q3).empty());
}

TEST(Index, DateRangeFilter) {
  Index index("test");
  index.ingest(make_doc("old", "x", "2023-04-06T10:00:00Z"));
  index.ingest(make_doc("mid", "x", "2023-04-07T10:00:00Z"));
  index.ingest(make_doc("new", "x", "2023-04-08T10:00:00Z"));
  int64_t from = 0, to = 0;
  ASSERT_TRUE(util::parse_iso8601("2023-04-07T00:00:00Z", &from));
  ASSERT_TRUE(util::parse_iso8601("2023-04-07T23:59:59Z", &to));
  Query q;
  q.date_field = "dates.created";
  q.date_from_unix = from;
  q.date_to_unix = to;
  auto hits = index.search(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, "mid");
}

TEST(Index, VisibilityFiltering) {
  Index index("test");
  Document restricted = make_doc("priv", "secret sample", "2023-04-07T10:00:00Z");
  restricted.visible_to = {"alice@anl.gov"};
  index.ingest(std::move(restricted));
  index.ingest(make_doc("pub", "public sample", "2023-04-07T10:00:00Z"));

  Query q;
  q.text = "sample";
  EXPECT_EQ(index.search(q).size(), 1u);                    // anonymous
  EXPECT_EQ(index.search(q, "alice@anl.gov").size(), 2u);   // owner
  EXPECT_EQ(index.search(q, "bob@anl.gov").size(), 1u);     // other user

  EXPECT_FALSE(index.get("priv"));
  EXPECT_TRUE(index.get("priv", "alice@anl.gov"));
  EXPECT_FALSE(index.get("priv", "bob@anl.gov"));
  EXPECT_EQ(index.all_ids().size(), 1u);
  EXPECT_EQ(index.all_ids("alice@anl.gov").size(), 2u);
}

TEST(Index, ReingestReplacesDocument) {
  Index index("test");
  index.ingest(make_doc("d1", "original title", "2023-04-07T10:00:00Z"));
  index.ingest(make_doc("d1", "replacement words", "2023-04-07T10:00:00Z"));
  EXPECT_EQ(index.size(), 1u);
  Query q;
  q.text = "original";
  EXPECT_TRUE(index.search(q).empty());
  q.text = "replacement";
  EXPECT_EQ(index.search(q).size(), 1u);
}

TEST(Index, RemoveUnindexes) {
  Index index("test");
  index.ingest(make_doc("d1", "findme", "2023-04-07T10:00:00Z"));
  ASSERT_TRUE(index.remove("d1"));
  EXPECT_FALSE(index.remove("d1"));
  Query q;
  q.text = "findme";
  EXPECT_TRUE(index.search(q).empty());
  EXPECT_EQ(index.size(), 0u);
}

TEST(Index, FacetsCountValues) {
  Index index("test");
  index.ingest(make_doc("d1", "a", "2023-04-07T10:00:00Z", "hyperspectral"));
  index.ingest(make_doc("d2", "b", "2023-04-07T11:00:00Z", "hyperspectral"));
  index.ingest(make_doc("d3", "c", "2023-04-08T10:00:00Z", "spatiotemporal"));
  auto facets = index.facet("resource_type");
  EXPECT_EQ(facets["hyperspectral"], 2u);
  EXPECT_EQ(facets["spatiotemporal"], 1u);
  EXPECT_TRUE(index.facet("missing.path").empty());
}

TEST(Index, LimitTruncatesResults) {
  Index index("test");
  for (int i = 0; i < 20; ++i) {
    index.ingest(make_doc("d" + std::to_string(i), "sample data",
                          "2023-04-07T10:00:00Z"));
  }
  Query q;
  q.text = "sample";
  q.limit = 5;
  EXPECT_EQ(index.search(q).size(), 5u);
}

// ---- DataCite schema ----

TEST(Schema, BuildRecordIsValid) {
  RecordInputs in;
  in.title = "Hyperspectral acquisition #1";
  in.creators = {"Dynamic PicoProbe"};
  in.created_iso8601 = "2023-04-07T10:00:00Z";
  in.resource_type = "hyperspectral";
  in.subjects = {"Au", "Pb"};
  in.artifact_paths = {"plot.svg"};
  Json record = build_record(in);
  EXPECT_TRUE(validate_record(record));
  EXPECT_EQ(record.at("creators")[0].at("name").as_string(), "Dynamic PicoProbe");
  EXPECT_EQ(record.at("artifacts")[0].as_string(), "plot.svg");
}

TEST(Schema, ValidationCatchesMissingFields) {
  RecordInputs in;
  in.title = "ok";
  in.creators = {"x"};
  in.created_iso8601 = "2023-04-07T10:00:00Z";
  in.resource_type = "hyperspectral";
  Json good = build_record(in);
  ASSERT_TRUE(validate_record(good));

  Json no_title = good;
  no_title["title"] = "";
  EXPECT_FALSE(validate_record(no_title));

  Json no_creators = good;
  no_creators["creators"] = Json::array();
  EXPECT_FALSE(validate_record(no_creators));

  Json bad_date = good;
  bad_date["dates"]["created"] = "sometime";
  EXPECT_FALSE(validate_record(bad_date));

  Json no_type = good;
  no_type["resource_type"] = "";
  EXPECT_FALSE(validate_record(no_type));

  Json no_subjects = good;
  no_subjects["subjects"] = Json();
  EXPECT_FALSE(validate_record(no_subjects));

  EXPECT_FALSE(validate_record(Json("not an object")));
}

}  // namespace
}  // namespace pico::search

// ------------------------------------------------------------ persistence ----
#include "search/persist.hpp"

namespace pico::search {
namespace {

TEST(Persist, SnapshotRoundTripPreservesEverything) {
  Index index("experiments");
  index.ingest(make_doc("pub1", "public gold scan", "2023-04-07T10:00:00Z"));
  Document restricted =
      make_doc("priv1", "restricted lead scan", "2023-04-08T10:00:00Z");
  restricted.visible_to = {"alice@anl.gov", "bob@anl.gov"};
  restricted.ingested_unix = 1680000000;
  index.ingest(std::move(restricted));

  auto restored = index_from_json(index_to_json(index));
  ASSERT_TRUE(restored);
  Index& r = restored.value();
  EXPECT_EQ(r.name(), "experiments");
  EXPECT_EQ(r.size(), 2u);

  // Content and search behaviour identical.
  Query q;
  q.text = "lead";
  EXPECT_TRUE(r.search(q).empty());                      // ACL holds
  EXPECT_EQ(r.search(q, "alice@anl.gov").size(), 1u);
  auto doc = r.get("priv1", "bob@anl.gov");
  ASSERT_TRUE(doc);
  EXPECT_EQ(doc.value()->ingested_unix, 1680000000);
  // Ingest order preserved (portal listing order).
  auto ids = r.all_ids("alice@anl.gov");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "pub1");
}

TEST(Persist, FileRoundTrip) {
  std::string path = testing::TempDir() + "/search_snapshot_test.json";
  Index index("disk");
  index.ingest(make_doc("d1", "saved record", "2023-04-07T10:00:00Z"));
  ASSERT_TRUE(save_index(index, path));
  auto restored = load_index(path);
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored.value().size(), 1u);
  Query q;
  q.text = "saved";
  EXPECT_EQ(restored.value().search(q).size(), 1u);
  EXPECT_FALSE(load_index(path + ".missing"));
}

TEST(Persist, RejectsForeignDocuments) {
  EXPECT_FALSE(index_from_json("not json"));
  EXPECT_FALSE(index_from_json(R"({"format": "something-else"})"));
  EXPECT_FALSE(index_from_json(
      R"({"format": "picoflow-search-snapshot-1", "index": ""})"));
  EXPECT_FALSE(index_from_json(
      R"({"format": "picoflow-search-snapshot-1", "index": "x",
          "documents": [{"content": {}}]})"));  // missing id
}

TEST(Persist, SnapshotIsAdministrative) {
  Index index("admin");
  Document d = make_doc("secret", "hidden", "2023-04-07T10:00:00Z");
  d.visible_to = {"alice@anl.gov"};
  index.ingest(std::move(d));
  // The snapshot includes restricted documents (unlike all_ids).
  EXPECT_EQ(index.snapshot().size(), 1u);
  EXPECT_TRUE(index.all_ids().empty());
}

}  // namespace
}  // namespace pico::search

// Analysis tests: Fig. 2 reductions, peak finding + element identification on
// synthetic cubes with known composition, metadata extraction, plot writers.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/hyperspectral.hpp"
#include "analysis/metadata.hpp"
#include "analysis/plot.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "tensor/ops.hpp"
#include "util/bytes.hpp"

namespace pico::analysis {
namespace {

TEST(Hyperspectral, IntensityMapSumsSpectralAxis) {
  tensor::Tensor<double> cube(tensor::Shape{2, 2, 3});
  for (size_t i = 0; i < cube.size(); ++i) cube[i] = static_cast<double>(i);
  auto map = intensity_map(cube);
  EXPECT_EQ(map.shape(), (tensor::Shape{2, 2}));
  EXPECT_DOUBLE_EQ(map(0, 0), 0 + 1 + 2);
  EXPECT_DOUBLE_EQ(map(1, 1), 9 + 10 + 11);
}

TEST(Hyperspectral, SumSpectrumAggregatesPixels) {
  tensor::Tensor<double> cube(tensor::Shape{2, 2, 3});
  for (size_t i = 0; i < cube.size(); ++i) cube[i] = 1.0;
  auto spec = sum_spectrum(cube);
  EXPECT_EQ(spec.shape(), (tensor::Shape{3}));
  for (size_t k = 0; k < 3; ++k) EXPECT_DOUBLE_EQ(spec(k), 4.0);
}

TEST(Hyperspectral, FindPeaksLocatesGaussians) {
  const size_t n = 200;
  tensor::Tensor<double> spec(tensor::Shape{n});
  std::vector<double> axis(n);
  for (size_t k = 0; k < n; ++k) {
    axis[k] = static_cast<double>(k) * 0.1;
    spec(k) = 5.0;  // flat continuum
  }
  // Two clear peaks at channels 50 and 140.
  for (int d = -5; d <= 5; ++d) {
    spec(static_cast<size_t>(50 + d)) += 100 * std::exp(-d * d / 4.0);
    spec(static_cast<size_t>(140 + d)) += 60 * std::exp(-d * d / 4.0);
  }
  auto peaks = find_peaks(spec, axis);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].channel, 50u);
  EXPECT_EQ(peaks[1].channel, 140u);
  EXPECT_GT(peaks[0].height, peaks[1].height);
}

TEST(Hyperspectral, FindPeaksIgnoresNoiseFloor) {
  const size_t n = 100;
  tensor::Tensor<double> spec(tensor::Shape{n});
  std::vector<double> axis(n);
  util::Rng rng(5);
  for (size_t k = 0; k < n; ++k) {
    axis[k] = static_cast<double>(k);
    spec(k) = 100.0 + rng.uniform(-1, 1);  // 1% ripple
  }
  EXPECT_TRUE(find_peaks(spec, axis).empty());
}

TEST(Hyperspectral, IdentifyElementsMatchesLines) {
  // Peaks exactly at Fe Ka (6.398) and Fe Kb (7.057): must identify Fe.
  std::vector<Peak> peaks = {
      {0, 6.398, 100, 10},
      {1, 7.057, 15, 3},
  };
  auto matches =
      identify_elements(peaks, instrument::XRayLineLibrary::standard());
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].symbol, "Fe");
  EXPECT_EQ(matches[0].matched_kev.size(), 2u);
}

TEST(Hyperspectral, IdentifyRequiresPrimaryLine) {
  // A peak only at Fe Kb (the weak line) must NOT claim Fe.
  std::vector<Peak> peaks = {{0, 7.057, 15, 3}};
  auto matches =
      identify_elements(peaks, instrument::XRayLineLibrary::standard());
  for (const auto& m : matches) EXPECT_NE(m.symbol, "Fe");
}

TEST(Hyperspectral, EndToEndIdentifiesGeneratedComposition) {
  // Generate a gold-bearing carbon film and verify the analysis recovers the
  // heavy metal — the Fig. 2C metadata claim.
  instrument::HyperspectralConfig cfg;
  cfg.height = 48;
  cfg.width = 48;
  cfg.channels = 600;
  cfg.dose = 150;
  cfg.background = {{"C", 0.8}, {"O", 0.2}};
  cfg.particles = {{24, 24, 10, {{"Au", 0.9}, {"C", 0.1}}}};
  auto sample = instrument::generate_hyperspectral(cfg);
  auto result = analyze_hyperspectral(sample.cube, sample.energy_axis);

  std::vector<std::string> found;
  for (const auto& el : result.elements) found.push_back(el.symbol);
  EXPECT_NE(std::find(found.begin(), found.end(), "Au"), found.end())
      << "gold not identified";
  EXPECT_NE(std::find(found.begin(), found.end(), "C"), found.end());
  // Summary JSON is well-formed.
  util::Json j = result.to_json();
  EXPECT_GT(j.at("total_counts").as_double(), 0);
  EXPECT_GE(j.at("elements").size(), 2u);
}

TEST(Metadata, ExtractsStandardBlocks) {
  instrument::HyperspectralConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.channels = 16;
  cfg.background = {{"C", 1.0}};
  auto sample = instrument::generate_hyperspectral(cfg);
  emd::MicroscopeSettings scope;
  scope.beam_energy_kv = 300;
  scope.magnification = 2e6;
  emd::File file = instrument::to_emd(sample, cfg, scope,
                                      "2023-04-07T14:30:00Z",
                                      "polyamide film", "operator@anl.gov");
  auto meta = extract_metadata(file);
  ASSERT_TRUE(meta);
  const util::Json& m = meta.value();
  EXPECT_EQ(m.at("acquired").as_string(), "2023-04-07T14:30:00Z");
  EXPECT_DOUBLE_EQ(m.at_path("microscope.beam_energy_kv").as_double(), 300);
  EXPECT_DOUBLE_EQ(m.at_path("microscope.magnification").as_double(), 2e6);
  EXPECT_EQ(m.at("sample").as_string(), "polyamide film");
  EXPECT_EQ(m.at("operator").as_string(), "operator@anl.gov");
  EXPECT_EQ(m.at_path("software.name").as_string(), "picoflow");
  ASSERT_EQ(m.at("signals").size(), 1u);
  EXPECT_EQ(m.at("signals")[0].at("kind").as_string(), "hyperspectral");
  EXPECT_EQ(m.at("signals")[0].at("dtype").as_string(), "f64");
  EXPECT_GT(m.at("payload_bytes").as_int(), 0);
}

TEST(Metadata, WorksOnHeaderOnlyRead) {
  instrument::HyperspectralConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.channels = 16;
  cfg.background = {{"C", 1.0}};
  auto sample = instrument::generate_hyperspectral(cfg);
  emd::MicroscopeSettings scope;
  auto file = instrument::to_emd(sample, cfg, scope, "2023-04-07T14:30:00Z",
                                 "s", "o");
  auto reread = emd::File::from_bytes(file.to_bytes(), /*with_payload=*/false);
  ASSERT_TRUE(reread);
  auto meta = extract_metadata(reread.value());
  ASSERT_TRUE(meta);  // cataloging never needs payloads
  EXPECT_GT(meta.value().at("payload_bytes").as_int(), 0);
}

TEST(Metadata, FileWithoutSignalsIsError) {
  emd::File empty;
  EXPECT_FALSE(extract_metadata(empty));
}

TEST(Plot, SvgContainsDataAndAnnotations) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i * 0.1);
    y.push_back(std::sin(i * 0.1) * 10);
  }
  LinePlotConfig cfg;
  cfg.title = "Aggregate spectrum";
  cfg.x_label = "Energy (keV)";
  cfg.y_label = "Counts";
  cfg.annotations = {{5.0, "Fe"}};
  std::string svg = render_line_svg(x, y, cfg);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("Aggregate spectrum"), std::string::npos);
  EXPECT_NE(svg.find("Energy (keV)"), std::string::npos);
  EXPECT_NE(svg.find(">Fe<"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Plot, SvgHandlesEmptyAndConstantData) {
  LinePlotConfig cfg;
  EXPECT_NE(render_line_svg({}, {}, cfg).find("<svg"), std::string::npos);
  std::vector<double> x = {1, 2, 3}, y = {5, 5, 5};
  EXPECT_NE(render_line_svg(x, y, cfg).find("polyline"), std::string::npos);
}

TEST(Plot, PgmWriterProducesValidHeader) {
  std::string path = testing::TempDir() + "/plot_test.pgm";
  tensor::Tensor<double> img(tensor::Shape{4, 6});
  for (size_t i = 0; i < img.size(); ++i) img[i] = static_cast<double>(i);
  ASSERT_TRUE(write_pgm(path, img));
  auto data = util::read_file(path);
  ASSERT_TRUE(data);
  std::string text(data.value().begin(), data.value().end());
  EXPECT_EQ(text.substr(0, 3), "P5\n");
  EXPECT_NE(text.find("6 4"), std::string::npos);
  // header + 24 pixel bytes
  EXPECT_EQ(data.value().size(), text.find("255\n") + 4 + 24);
  // Rank mismatch rejected.
  EXPECT_FALSE(write_pgm(path, tensor::Tensor<double>(tensor::Shape{3})));
}

TEST(Plot, PpmAndBoxBurnIn) {
  tensor::Tensor<uint8_t> gray(tensor::Shape{10, 10});
  auto rgb = gray_to_rgb_with_boxes(gray, {util::Box{2, 2, 4, 4}});
  EXPECT_EQ(rgb.shape(), (tensor::Shape{10, 10, 3}));
  // Box edge pixel is orange (255,140,0); interior pixel untouched.
  EXPECT_EQ(rgb(2, 2, 0), 255);
  EXPECT_EQ(rgb(2, 2, 1), 140);
  EXPECT_EQ(rgb(4, 4, 0), 0);
  std::string path = testing::TempDir() + "/plot_test.ppm";
  ASSERT_TRUE(write_ppm(path, rgb));
  auto data = util::read_file(path);
  ASSERT_TRUE(data);
  EXPECT_EQ(data.value()[0], 'P');
  EXPECT_EQ(data.value()[1], '6');
}

}  // namespace
}  // namespace pico::analysis

// ------------------------------------------------------------ calibration ----
#include "analysis/calibration.hpp"
#include "vision/image.hpp"

namespace pico::analysis {
namespace {

tensor::Tensor<double> pattern_image(double shift_x, double shift_y,
                                     uint64_t seed = 9) {
  // A textured image with several bright features, shiftable sub-structure.
  util::Rng rng(seed);
  tensor::Tensor<double> img(tensor::Shape{64, 64});
  for (size_t i = 0; i < img.size(); ++i) img[i] = rng.normal(1.0, 0.05);
  auto put_blob = [&](double cx, double cy) {
    for (long y = 0; y < 64; ++y) {
      for (long x = 0; x < 64; ++x) {
        double d2 = (x - cx - shift_x) * (x - cx - shift_x) +
                    (y - cy - shift_y) * (y - cy - shift_y);
        img(static_cast<size_t>(y), static_cast<size_t>(x)) +=
            5.0 * std::exp(-d2 / 18.0);
      }
    }
  };
  put_blob(16, 20);
  put_blob(44, 12);
  put_blob(30, 46);
  return img;
}

TEST(Calibration, DriftEstimateRecoversKnownShift) {
  auto ref = pattern_image(0, 0);
  for (auto [sx, sy] : {std::pair{3.0, -2.0}, {0.0, 0.0}, {-5.0, 6.0}}) {
    auto shifted = pattern_image(sx, sy);
    DriftEstimate d = estimate_drift(ref, shifted, 8);
    EXPECT_NEAR(d.dx, sx, 1.01) << sx << "," << sy;
    EXPECT_NEAR(d.dy, sy, 1.01) << sx << "," << sy;
    EXPECT_GT(d.score, 0.6);
  }
}

TEST(Calibration, SharpnessDropsWithBlur) {
  auto img = pattern_image(0, 0);
  double sharp = sharpness(img);
  double blurred = sharpness(vision::gaussian_blur(img, 2.0));
  EXPECT_GT(sharp, 0);
  EXPECT_LT(blurred, 0.5 * sharp);
  // Tiny images degrade gracefully.
  EXPECT_DOUBLE_EQ(sharpness(tensor::Tensor<double>(tensor::Shape{2, 2})), 0);
}

TEST(Calibration, MonitorAlertsOnDrift) {
  CalibrationConfig cfg;
  cfg.drift_threshold_px = 3.0;
  CalibrationMonitor monitor(cfg);
  EXPECT_TRUE(monitor.observe(pattern_image(0, 0)).empty());  // reference
  EXPECT_TRUE(monitor.observe(pattern_image(1, 1)).empty());  // within budget
  auto alerts = monitor.observe(pattern_image(5, 0));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AlertKind::Drift);
  EXPECT_GT(alerts[0].severity, 1.0);
  EXPECT_NE(alerts[0].message.find("drift"), std::string::npos);
}

TEST(Calibration, MonitorAlertsOnDefocusAndIntensity) {
  CalibrationMonitor monitor;
  monitor.observe(pattern_image(0, 0));
  // Blur -> focus alert.
  auto blurred = vision::gaussian_blur(pattern_image(0, 0), 2.5);
  auto alerts = monitor.observe(blurred);
  bool has_focus = false;
  for (const auto& a : alerts) {
    if (a.kind == AlertKind::FocusLoss) has_focus = true;
  }
  EXPECT_TRUE(has_focus);

  // Dim -> intensity alert.
  auto dim = pattern_image(0, 0);
  tensor::scale_inplace(dim, 0.4);
  alerts = monitor.observe(dim);
  bool has_intensity = false;
  for (const auto& a : alerts) {
    if (a.kind == AlertKind::IntensityDrop) has_intensity = true;
  }
  EXPECT_TRUE(has_intensity);
}

TEST(Calibration, RebaselineAdoptsNewReference) {
  CalibrationConfig cfg;
  cfg.drift_threshold_px = 3.0;
  CalibrationMonitor monitor(cfg);
  monitor.observe(pattern_image(0, 0));
  ASSERT_FALSE(monitor.observe(pattern_image(6, 0)).empty());
  monitor.rebaseline();
  EXPECT_TRUE(monitor.observe(pattern_image(6, 0)).empty());  // new reference
  EXPECT_TRUE(monitor.observe(pattern_image(7, 1)).empty());  // near it: fine
  EXPECT_FALSE(monitor.observe(pattern_image(12, 0)).empty());
}

TEST(Calibration, ShapeChangeSilentlyRebaselines) {
  CalibrationMonitor monitor;
  monitor.observe(pattern_image(0, 0));
  tensor::Tensor<double> other_mode(tensor::Shape{32, 48});
  EXPECT_TRUE(monitor.observe(other_mode).empty());
  EXPECT_EQ(monitor.observations(), 2u);
}

}  // namespace
}  // namespace pico::analysis

// --------------------------------------------------- composition fractions ----
namespace pico::analysis {
namespace {

TEST(Hyperspectral, CompositionFractionsSumToOne) {
  std::vector<Peak> peaks = {
      {0, 6.398, 300, 10},  // Fe Ka (strong)
      {1, 8.040, 100, 5},   // Cu Ka
  };
  auto matches =
      identify_elements(peaks, instrument::XRayLineLibrary::standard());
  ASSERT_GE(matches.size(), 2u);
  double total = 0;
  for (const auto& m : matches) {
    EXPECT_GE(m.fraction, 0.0);
    EXPECT_LE(m.fraction, 1.0);
    total += m.fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Fe carries the larger peak mass -> larger fraction.
  EXPECT_EQ(matches[0].symbol, "Fe");
  EXPECT_GT(matches[0].fraction, matches[1].fraction);
}

TEST(Hyperspectral, FractionsSurfaceInRecordJson) {
  instrument::HyperspectralConfig cfg;
  cfg.height = 24;
  cfg.width = 24;
  cfg.channels = 256;
  cfg.dose = 120;
  cfg.background = {{"Fe", 1.0}};
  auto sample = instrument::generate_hyperspectral(cfg);
  auto result = analyze_hyperspectral(sample.cube, sample.energy_axis);
  util::Json j = result.to_json();
  ASSERT_GE(j.at("elements").size(), 1u);
  EXPECT_GT(j.at("elements")[0].at("fraction").as_double(), 0.0);
}

}  // namespace
}  // namespace pico::analysis

// ----------------------------------------------------------- element maps ----
namespace pico::analysis {
namespace {

TEST(Hyperspectral, ElementMapLocalizesParticles) {
  // Gold particle top-left, lead particle bottom-right; each element's map
  // must light up over its own particle and stay dark over the other's.
  instrument::HyperspectralConfig cfg;
  cfg.height = 48;
  cfg.width = 48;
  cfg.channels = 512;
  cfg.dose = 200;
  cfg.continuum_fraction = 0.05;
  cfg.background = {{"C", 1.0}};
  cfg.particles = {
      {12, 12, 6, {{"Au", 1.0}}},
      {36, 36, 6, {{"Pb", 1.0}}},
  };
  auto sample = instrument::generate_hyperspectral(cfg);

  auto au_map = element_map(sample.cube, sample.energy_axis, 9.711);  // Au La
  auto pb_map = element_map(sample.cube, sample.energy_axis, 10.549); // Pb La
  EXPECT_EQ(au_map.shape(), (tensor::Shape{48, 48}));
  // Gold map: bright at the gold particle, dim at the lead particle.
  EXPECT_GT(au_map(12, 12), 3 * au_map(36, 36) + 1);
  EXPECT_GT(pb_map(36, 36), 3 * pb_map(12, 12) + 1);
}

TEST(Hyperspectral, ElementMapOutsideRangeIsZero) {
  tensor::Tensor<double> cube(tensor::Shape{4, 4, 8});
  for (size_t i = 0; i < cube.size(); ++i) cube[i] = 1.0;
  std::vector<double> axis = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  auto map = element_map(cube, axis, 15.0 /* beyond the axis */);
  for (double v : map.data()) EXPECT_DOUBLE_EQ(v, 0.0);
  // In-range window integrates the covered channels.
  auto mid = element_map(cube, axis, 2.0, 0.55);
  EXPECT_DOUBLE_EQ(mid(0, 0), 3.0);  // channels 1.5, 2.0, 2.5
}

}  // namespace
}  // namespace pico::analysis

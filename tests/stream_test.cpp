// Direct detector→compute streaming tests: frame-channel ring/credit/reorder
// boundaries, frame-source cutting, and the StreamService degradation ladder
// (retransmit -> spill-to-store -> whole-flow fallback).
#include <gtest/gtest.h>

#include <algorithm>

#include "auth/auth.hpp"
#include "instrument/frame_source.hpp"
#include "net/frame_channel.hpp"
#include "net/network.hpp"
#include "storage/store.hpp"
#include "transfer/stream.hpp"
#include "util/crc64.hpp"

namespace pico::net {
namespace {

FrameChannelConfig channel_cfg(int ring, int credits, int reorder) {
  FrameChannelConfig cfg;
  cfg.ring_capacity = ring;
  cfg.credit_window = credits;
  cfg.reorder_window = reorder;
  return cfg;
}

TEST(FrameChannel, InOrderDeliveryAdvancesCursorAndRecyclesCredits) {
  FrameChannel ch(channel_cfg(8, 2, 4));
  int sub = ch.subscribe();
  EXPECT_EQ(ch.credits(sub), 2);

  ch.publish(100, 1);
  ch.publish(100, 2);
  ch.publish(100, 3);
  EXPECT_TRUE(ch.take_credit(sub, 0));
  EXPECT_TRUE(ch.take_credit(sub, 1));
  EXPECT_FALSE(ch.take_credit(sub, 2)) << "window of 2 exhausted";
  // Idempotent: the same seq never costs a second credit (retransmits).
  EXPECT_TRUE(ch.take_credit(sub, 0));
  EXPECT_EQ(ch.credits(sub), 0);

  auto r0 = ch.deliver(sub, *ch.frame(0));
  EXPECT_EQ(r0.outcome, FrameChannel::Outcome::Consumed);
  ASSERT_EQ(r0.ready.size(), 1u);
  EXPECT_EQ(ch.cursor(sub), 1);
  EXPECT_EQ(ch.credits(sub), 1) << "credit released as the cursor passed";

  // Redelivery of a consumed frame is discarded.
  EXPECT_EQ(ch.deliver(sub, *ch.frame(0)).outcome,
            FrameChannel::Outcome::Duplicate);
}

// Satellite boundary: a capacity-1 ring. Every publish evicts the previous
// frame; an undelivered one comes back as a spill candidate, and the channel
// still completes once the spill path satisfies the hole.
TEST(FrameChannel, CapacityOneRingReportsNeededEvictions) {
  FrameChannel ch(channel_cfg(1, 8, 8));
  int sub = ch.subscribe();

  EXPECT_TRUE(ch.publish(100, 1).empty());  // ring [0]
  auto evicted = ch.publish(100, 2);        // ring [1], 0 pushed out
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].seq, 0);
  EXPECT_EQ(ch.ring_size(), 1u);
  EXPECT_FALSE(ch.frame(0).has_value()) << "evicted: no longer retransmittable";
  ASSERT_TRUE(ch.frame(1).has_value());

  // Frame 1 arrives ahead of the hole at 0: parked in the reorder buffer.
  EXPECT_EQ(ch.deliver(sub, *ch.frame(1)).outcome,
            FrameChannel::Outcome::Buffered);
  // The spill path satisfies frame 0 out-of-band: cursor jumps the hole and
  // drains the buffered successor.
  auto ready = ch.satisfy_range(sub, 0, 0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].seq, 1);
  EXPECT_EQ(ch.cursor(sub), 2);

  // Evicting an already-consumed frame is nobody's problem; evicting one the
  // cursor still wants is a fresh spill candidate.
  EXPECT_TRUE(ch.publish(100, 3).empty());  // pushes out consumed frame 1
  auto evicted2 = ch.publish(100, 4);       // pushes out needed frame 2
  ASSERT_EQ(evicted2.size(), 1u);
  EXPECT_EQ(evicted2[0].seq, 2);
}

TEST(FrameChannel, ReorderWindowLargerThanRingStillCompletesViaSatisfy) {
  // Satellite boundary: reorder window (8) far wider than the ring (2). The
  // subscriber can park frames the ring has long evicted.
  FrameChannel ch(channel_cfg(2, 16, 8));
  int sub = ch.subscribe();

  std::vector<Frame> spill;
  for (int i = 0; i < 6; ++i) {
    auto ev = ch.publish(100, static_cast<uint64_t>(i));
    spill.insert(spill.end(), ev.begin(), ev.end());
  }
  // Ring keeps [4, 5]; frames 0..3 were evicted while still needed.
  ASSERT_EQ(spill.size(), 4u);
  EXPECT_EQ(ch.base_seq(), 4);

  // The two survivors arrive out of order, both far ahead of cursor 0 but
  // within the reorder window.
  EXPECT_EQ(ch.deliver(sub, *ch.frame(5)).outcome,
            FrameChannel::Outcome::Buffered);
  EXPECT_EQ(ch.deliver(sub, *ch.frame(4)).outcome,
            FrameChannel::Outcome::Buffered);
  EXPECT_EQ(ch.buffered_count(sub), 2u);

  // Spill backfill closes 0..3: the buffered tail drains in order.
  auto ready = ch.satisfy_range(sub, 0, 3);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].seq, 4);
  EXPECT_EQ(ready[1].seq, 5);
  EXPECT_EQ(ch.cursor(sub), 6);
  EXPECT_EQ(ch.buffered_count(sub), 0u);
}

TEST(FrameChannel, DeliveryPastReorderWindowIsRejected) {
  FrameChannel ch(channel_cfg(16, 16, 2));
  int sub = ch.subscribe();
  for (int i = 0; i < 4; ++i) ch.publish(100, static_cast<uint64_t>(i));
  EXPECT_EQ(ch.deliver(sub, *ch.frame(2)).outcome,
            FrameChannel::Outcome::Buffered);  // 2 - 0 == window
  EXPECT_EQ(ch.deliver(sub, *ch.frame(3)).outcome,
            FrameChannel::Outcome::WindowOverflow);  // 3 - 0 > window
  EXPECT_EQ(ch.buffered_count(sub), 1u);
}

// Zero-copy payload publish: the channel lands the bytes into a pooled
// buffer with the CRC stamp fused into the copy, and every copy of the Frame
// (ring slot, delivery, reorder buffer) shares that one lease.
TEST(FrameChannel, PayloadPublishStampsCrcAndSharesOneLease) {
  FrameChannel ch(channel_cfg(8, 4, 4));
  int sub = ch.subscribe();

  std::vector<uint8_t> bytes(10'000);
  for (size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<uint8_t>(i * 7);
  EXPECT_TRUE(ch.publish(std::span<const uint8_t>(bytes)).empty());

  auto f = ch.frame(0);
  ASSERT_TRUE(f);
  EXPECT_EQ(f->bytes, 10'000);
  EXPECT_EQ(f->crc64, util::crc64(bytes));
  ASSERT_TRUE(f->has_payload());
  auto payload = f->payload_bytes();
  ASSERT_GE(payload.size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), payload.begin()));
  // The copy handed to the consumer aliases the same pooled buffer.
  EXPECT_TRUE(ch.take_credit(sub, 0));
  auto r = ch.deliver(sub, *f);
  ASSERT_EQ(r.ready.size(), 1u);
  EXPECT_EQ(r.ready[0].payload_bytes().data(), payload.data());

  // Metadata-only publish still yields payload-free frames.
  ch.publish(64, 0xABC);
  EXPECT_FALSE(ch.frame(1)->has_payload());
  EXPECT_TRUE(ch.frame(1)->payload_bytes().empty());
}

// An evicted payload frame keeps its bytes alive through the shared lease —
// the spill path can still read them after the ring slot is gone.
TEST(FrameChannel, EvictedPayloadFrameKeepsBytesAlive) {
  FrameChannel ch(channel_cfg(1, 8, 8));
  int sub = ch.subscribe();
  (void)sub;

  std::vector<uint8_t> first{1, 2, 3, 4, 5};
  EXPECT_TRUE(ch.publish(std::span<const uint8_t>(first)).empty());
  std::vector<uint8_t> second{9, 8, 7};
  auto spilled = ch.publish(std::span<const uint8_t>(second));
  ASSERT_EQ(spilled.size(), 1u);
  EXPECT_EQ(spilled[0].seq, 0);
  ASSERT_TRUE(spilled[0].has_payload());
  auto payload = spilled[0].payload_bytes();
  EXPECT_TRUE(std::equal(first.begin(), first.end(), payload.begin()));
  EXPECT_EQ(spilled[0].crc64, util::crc64(first));
}

}  // namespace
}  // namespace pico::net

namespace pico::instrument {
namespace {

TEST(FrameSource, CutsShortLastFrameAndClampsRanges) {
  FrameSource src(10'500'000, 4'000'000, 0xABCD);
  EXPECT_EQ(src.frame_count(), 3);
  EXPECT_EQ(src.frame(0).bytes, 4'000'000);
  EXPECT_EQ(src.frame(2).bytes, 2'500'000);
  // Stamps are per-frame and deterministic.
  EXPECT_NE(src.frame(0).crc64, src.frame(1).crc64);
  EXPECT_EQ(src.frame(1).crc64, FrameSource(10'500'000, 4'000'000, 0xABCD)
                                    .frame(1)
                                    .crc64);
  EXPECT_EQ(src.bytes_in_range(0, 2), 10'500'000);
  EXPECT_EQ(src.bytes_in_range(1, 99), 6'500'000);  // clamped to the file
  EXPECT_EQ(src.bytes_in_range(2, 1), 0);
}

}  // namespace
}  // namespace pico::instrument

namespace pico::transfer {
namespace {

struct StreamFixture : ::testing::Test {
  sim::Engine engine;
  net::Topology topo;
  std::unique_ptr<net::Network> network;
  auth::AuthService auth;
  storage::Store src_store{"src", static_cast<int64_t>(1e12)};
  storage::Store land_store{"land", static_cast<int64_t>(1e12)};
  storage::Store node_mem{"nodemem", static_cast<int64_t>(1e12)};
  std::unique_ptr<TransferService> transfer;
  std::unique_ptr<StreamService> stream;
  auth::Token token;

  /// src --(src_bps)-- hub --(fast)-- {store, node}.
  void setup(StreamConfig cfg, double src_bps = 80e6) {
    net::NodeId src = topo.add_node("src");
    net::NodeId hub = topo.add_node("hub");
    net::NodeId store = topo.add_node("store");
    net::NodeId node = topo.add_node("node");
    topo.add_link(src, hub, src_bps);
    topo.add_link(hub, store, 800e6);
    topo.add_link(hub, node, 800e6);
    network = std::make_unique<net::Network>(&engine, &topo);

    TransferConfig tcfg;
    tcfg.setup_mean_s = 1.0;
    tcfg.setup_jitter_s = 0.0;
    tcfg.per_file_overhead_s = 0.1;
    tcfg.settle_base_s = 0.2;
    tcfg.settle_per_gb_s = 0.0;
    tcfg.cap_jitter_frac = 0.0;
    transfer = std::make_unique<TransferService>(&engine, network.get(),
                                                 &auth, tcfg, 42);
    transfer->register_endpoint("ep-src", src, &src_store);
    transfer->register_endpoint("ep-store", store, &land_store);

    StreamService::Wiring wiring;
    wiring.src_node = src;
    wiring.src_store = &src_store;
    wiring.dst_node = node;
    wiring.dst_store = &node_mem;
    wiring.store_node = store;
    wiring.src_endpoint = "ep-src";
    wiring.store_endpoint = "ep-store";
    stream = std::make_unique<StreamService>(&engine, network.get(), &auth,
                                             transfer.get(), cfg, wiring, 7);
    token = auth.issue("user@anl.gov", {"transfer"});
  }

  StreamConfig paced_config(int64_t frame_bytes = 1'000'000) {
    StreamConfig cfg;
    cfg.frame_bytes = frame_bytes;
    cfg.setup_s = 0.5;
    return cfg;
  }

  SessionId run_session(const std::string& src, const std::string& dst) {
    auto session = stream->submit({src, dst}, token);
    EXPECT_TRUE(session);
    engine.run();
    return session ? session.value() : SessionId{};
  }
};

TEST_F(StreamFixture, RequiresTransferScope) {
  setup(paced_config());
  ASSERT_TRUE(src_store.put_virtual("a.emd", 1'000'000, 1, engine.now()));
  EXPECT_FALSE(stream->submit({"a.emd", "a.emd"}, "bogus"));
  auth::Token wrong = auth.issue("user@anl.gov", {"compute"});
  EXPECT_FALSE(stream->submit({"a.emd", "a.emd"}, wrong));
  EXPECT_FALSE(stream->submit({"missing.emd", "x"}, token));
}

TEST_F(StreamFixture, PacedSessionStreamsDirectIntoNodeMemory) {
  setup(paced_config());
  ASSERT_TRUE(
      src_store.put_virtual("acq.emd", 10'000'000, 0xFEED, engine.now()));
  std::vector<int64_t> progress;
  auto session = stream->submit({"acq.emd", "node/acq.emd"}, token);
  ASSERT_TRUE(session);
  stream->on_progress(session.value(), [&](int64_t b) { progress.push_back(b); });
  engine.run();

  SessionInfo info = stream->status(session.value());
  EXPECT_EQ(info.state, SessionState::Succeeded) << info.error;
  EXPECT_EQ(info.mode, "direct");
  EXPECT_EQ(info.frames_total, 10);
  EXPECT_EQ(info.frames_sent, 10);
  EXPECT_EQ(info.retransmits, 0);
  EXPECT_EQ(info.spills, 0);
  EXPECT_FALSE(info.fallback);
  EXPECT_EQ(info.bytes_delivered, 10'000'000);
  // Progress is monotone and reaches the full size.
  ASSERT_FALSE(progress.empty());
  EXPECT_TRUE(std::is_sorted(progress.begin(), progress.end()));
  EXPECT_EQ(progress.back(), 10'000'000);
  // The acquisition materialized in node memory with the source's checksum.
  auto obj = node_mem.get("node/acq.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj.value()->size, 10'000'000);
  EXPECT_EQ(obj.value()->crc64, 0xFEEDull);
}

TEST_F(StreamFixture, FrameDropsHealViaRetransmitFromTheRing) {
  setup(paced_config());
  ASSERT_TRUE(
      src_store.put_virtual("d.emd", 20'000'000, 0xD09, engine.now()));
  stream->set_frame_drop_prob(0.3);
  SessionId id = run_session("d.emd", "node/d.emd");

  SessionInfo info = stream->status(id);
  EXPECT_EQ(info.state, SessionState::Succeeded) << info.error;
  EXPECT_GT(info.retransmits, 0);
  EXPECT_EQ(info.mode, "degraded");
  EXPECT_FALSE(info.fallback);
  EXPECT_TRUE(node_mem.get("node/d.emd"));
}

TEST_F(StreamFixture, ReorderAndDuplicateChaosAreAbsorbed) {
  setup(paced_config());
  ASSERT_TRUE(
      src_store.put_virtual("r.emd", 20'000'000, 0x4E0, engine.now()));
  stream->set_frame_reorder_prob(0.4);
  stream->set_frame_duplicate_prob(0.4);
  SessionId id = run_session("r.emd", "node/r.emd");

  SessionInfo info = stream->status(id);
  EXPECT_EQ(info.state, SessionState::Succeeded) << info.error;
  EXPECT_FALSE(info.fallback);
  EXPECT_EQ(info.bytes_delivered, 20'000'000);
  EXPECT_TRUE(node_mem.get("node/r.emd"));
}

// Satellite boundary: the subscriber is slower than the producer for the
// whole flow. A live detector outruns a 1 MB/s wire by ~100x with only a
// 2-frame ring, so nearly every frame is force-evicted and must reach the
// consumer through the spill-to-store path — and the session still
// assembles the full acquisition.
TEST_F(StreamFixture, LiveDetectorOutrunningConsumerForcesFullSpill) {
  StreamConfig cfg = paced_config();
  cfg.detector_rate_bps = 800e6;  // 100 frames/s of 1 MB frames
  cfg.channel = [] {
    net::FrameChannelConfig ch;
    ch.ring_capacity = 2;
    ch.credit_window = 16;
    ch.reorder_window = 16;
    return ch;
  }();
  cfg.max_spill_segments = 8;
  setup(cfg, /*src_bps=*/8e6);  // 1 MB/s: ~1 s per frame on the wire
  ASSERT_TRUE(
      src_store.put_virtual("live.emd", 10'000'000, 0x11FE, engine.now()));
  SessionId id = run_session("live.emd", "node/live.emd");

  SessionInfo info = stream->status(id);
  EXPECT_EQ(info.state, SessionState::Succeeded) << info.error;
  EXPECT_EQ(info.mode, "degraded");
  EXPECT_FALSE(info.fallback);
  EXPECT_GE(info.spills, 1);
  // The wire kept only a handful of frames; the majority of the acquisition
  // crossed via the store.
  EXPECT_GE(info.spilled_bytes, info.bytes_total / 2);
  EXPECT_EQ(info.bytes_delivered, info.bytes_total);
  auto obj = node_mem.get("node/live.emd");
  ASSERT_TRUE(obj);
  EXPECT_EQ(obj.value()->size, 10'000'000);
}

TEST_F(StreamFixture, StallOutlastingBudgetFallsBackToStorePath) {
  StreamConfig cfg = paced_config();
  cfg.stall_fallback_s = 2.0;
  setup(cfg);
  ASSERT_TRUE(
      src_store.put_virtual("s.emd", 10'000'000, 0x57A, engine.now()));
  stream->set_consumer_stall(true);
  SessionId id = run_session("s.emd", "node/s.emd");

  SessionInfo info = stream->status(id);
  EXPECT_EQ(info.state, SessionState::Succeeded) << info.error;
  EXPECT_TRUE(info.fallback);
  EXPECT_EQ(info.mode, "fallback");
  EXPECT_EQ(info.bytes_delivered, 10'000'000);
  // The science landed on the store, not in node memory.
  EXPECT_TRUE(land_store.get("node/s.emd"));
  EXPECT_FALSE(node_mem.get("node/s.emd"));
}

TEST_F(StreamFixture, StallClearedWithinBudgetResumesDirect) {
  StreamConfig cfg = paced_config();
  cfg.stall_fallback_s = 5.0;
  setup(cfg);
  ASSERT_TRUE(
      src_store.put_virtual("p.emd", 10'000'000, 0x9A5, engine.now()));
  auto session = stream->submit({"p.emd", "node/p.emd"}, token);
  ASSERT_TRUE(session);
  engine.schedule_at(sim::SimTime::from_seconds(0.8),
                     [&] { stream->set_consumer_stall(true); });
  engine.schedule_at(sim::SimTime::from_seconds(2.0),
                     [&] { stream->set_consumer_stall(false); });
  engine.run();

  SessionInfo info = stream->status(session.value());
  EXPECT_EQ(info.state, SessionState::Succeeded) << info.error;
  EXPECT_FALSE(info.fallback);
  EXPECT_EQ(info.bytes_delivered, 10'000'000);
  EXPECT_TRUE(node_mem.get("node/p.emd"));
}

// A source staged with real bytes streams through the zero-copy pooled
// payload path: every published frame carries a lease whose CRC was fused
// into the landing copy, and the session still settles clean.
TEST_F(StreamFixture, RealContentSourceStreamsPooledPayloads) {
  setup(paced_config(/*frame_bytes=*/100'000));
  std::vector<uint8_t> content(350'000);
  for (size_t i = 0; i < content.size(); ++i)
    content[i] = static_cast<uint8_t>((i * 31) ^ (i >> 8));
  ASSERT_TRUE(src_store.put("real.emd", content, engine.now()));

  sim::Trace trace;
  telemetry::Telemetry tel(&trace);
  stream->set_telemetry(&tel);
  SessionId id = run_session("real.emd", "node/real.emd");

  SessionInfo info = stream->status(id);
  EXPECT_EQ(info.state, SessionState::Succeeded) << info.error;
  EXPECT_EQ(info.mode, "direct");
  EXPECT_EQ(info.frames_total, 4);  // 3 full frames + the 50 KB tail
  EXPECT_EQ(info.bytes_delivered, 350'000);
  // All four frames went through the pooled-payload publish.
  auto text = tel.metrics.to_prometheus();
  EXPECT_NE(text.find("stream_payload_frames_total"), std::string::npos);
  EXPECT_NE(text.find("stream_payload_frames_total 4"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace pico::transfer

// Unit + property tests for the util module: JSON, RNG, stats, CRC, byte
// buffers, strings, units, time formatting, thread pool, ids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>

#include "util/arena.hpp"
#include "util/bytes.hpp"
#include "util/crc64.hpp"
#include "util/mmap.hpp"
#include "util/geometry.hpp"
#include "util/id.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"
#include "util/timefmt.hpp"
#include "util/units.hpp"
#include "util/xml.hpp"

namespace pico::util {
namespace {

// ---------------------------------------------------------------- JSON ----

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_EQ(Json::parse("true").value().as_bool(), true);
  EXPECT_EQ(Json::parse("false").value().as_bool(false), false);
  EXPECT_EQ(Json::parse("42").value().as_int(), 42);
  EXPECT_EQ(Json::parse("-17").value().as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").value().as_double(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").value().as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").value().as_string(), "hi");
}

TEST(Json, IntegersPreservedExactly) {
  int64_t big = 9007199254740993;  // not representable as double
  auto parsed = Json::parse(std::to_string(big));
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed.value().is_int());
  EXPECT_EQ(parsed.value().as_int(), big);
}

TEST(Json, ParsesNestedStructures) {
  auto r = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(r);
  const Json& j = r.value();
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_EQ(j.at("a")[2].at("b").as_string(), "c");
  EXPECT_TRUE(j.at_path("d.e").is_null());
  EXPECT_TRUE(j.contains("d"));
  EXPECT_FALSE(j.contains("zzz"));
}

TEST(Json, StringEscapes) {
  auto r = Json::parse(R"("line\nbreak \"quoted\" tab\t u:A")");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value().as_string(), "line\nbreak \"quoted\" tab\t u:A");
}

TEST(Json, UnicodeEscapeEncodesUtf8) {
  auto r = Json::parse(R"("é中")");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value().as_string(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(Json::parse(""));
  EXPECT_FALSE(Json::parse("{"));
  EXPECT_FALSE(Json::parse("[1,]"));
  EXPECT_FALSE(Json::parse("{\"a\":}"));
  EXPECT_FALSE(Json::parse("trueX"));
  EXPECT_FALSE(Json::parse("\"unterminated"));
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing"));
  EXPECT_FALSE(Json::parse("nul"));
  EXPECT_FALSE(Json::parse("\"bad \\q escape\""));
}

TEST(Json, RoundTripCompact) {
  const char* docs[] = {
      R"({"a":1,"b":[true,null,"x"],"c":{"d":2.5}})",
      R"([])",
      R"({})",
      R"([1,[2,[3,[4]]]])",
      R"({"empty":"","zero":0,"neg":-1})",
  };
  for (const char* doc : docs) {
    auto first = Json::parse(doc);
    ASSERT_TRUE(first) << doc;
    auto second = Json::parse(first.value().dump());
    ASSERT_TRUE(second) << doc;
    EXPECT_EQ(first.value(), second.value()) << doc;
  }
}

TEST(Json, PrettyPrintRoundTrips) {
  auto j = Json::object({{"k", Json::array({1, 2, 3})}, {"s", "v"}});
  auto re = Json::parse(j.dump(2));
  ASSERT_TRUE(re);
  EXPECT_EQ(re.value(), j);
}

TEST(Json, DeterministicKeyOrder) {
  Json a = Json::object({{"z", 1}, {"a", 2}});
  Json b = Json::object({{"a", 2}, {"z", 1}});
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(Json, AtPathMissingReturnsNull) {
  Json j = Json::object({{"a", Json::object({{"b", 1}})}});
  EXPECT_TRUE(j.at_path("a.c").is_null());
  EXPECT_TRUE(j.at_path("x.y.z").is_null());
  EXPECT_EQ(j.at_path("a.b").as_int(), 1);
}

TEST(Json, NanSerializesAsNull) {
  Json j(std::nan(""));
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, MutationHelpers) {
  Json j;
  j["a"] = 1;
  j["b"].push_back("x");
  j["b"].push_back("y");
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_EQ(j.at("b").size(), 2u);
  EXPECT_EQ(j.at("b")[1].as_string(), "y");
}

// Property: random JSON trees round-trip through dump/parse.
class JsonRoundTrip : public ::testing::TestWithParam<uint64_t> {};

Json random_json(Rng& rng, int depth) {
  int pick = static_cast<int>(rng.uniform_int(0, depth <= 0 ? 4 : 6));
  switch (pick) {
    case 0: return Json(nullptr);
    case 1: return Json(rng.chance(0.5));
    case 2: return Json(rng.uniform_int(-1'000'000, 1'000'000));
    case 3: return Json(rng.uniform(-1e6, 1e6));
    case 4: {
      std::string s;
      int n = static_cast<int>(rng.uniform_int(0, 12));
      for (int i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
      }
      return Json(s);
    }
    case 5: {
      Json arr = Json::array();
      int n = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) arr.push_back(random_json(rng, depth - 1));
      return arr;
    }
    default: {
      Json obj = Json::object();
      int n = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) {
        obj["k" + std::to_string(i)] = random_json(rng, depth - 1);
      }
      return obj;
    }
  }
}

TEST_P(JsonRoundTrip, DumpParseIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Json doc = random_json(rng, 4);
    auto re = Json::parse(doc.dump());
    ASSERT_TRUE(re);
    // Doubles may lose type distinction vs int on whole values; compare via
    // second serialization (stable fixed point).
    EXPECT_EQ(re.value().dump(), doc.dump());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ----------------------------------------------------------------- RNG ----

TEST(Rng, DeterministicPerSeed) {
  Rng a(99), b(99), c(100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(99);
  for (int i = 0; i < 10; ++i) {
    if (a2.next_u64() != c.next_u64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  for (double lambda : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.06 + 0.05) << lambda;
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) counts[rng.weighted_index(weights)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// --------------------------------------------------------------- stats ----

TEST(Stats, BasicMoments) {
  SampleStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.median(), 4.5);
}

TEST(Stats, PercentileInterpolates) {
  SampleStats s;
  for (int i = 1; i <= 5; ++i) s.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
}

TEST(Stats, EmptyIsSafe) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

TEST(Stats, MedianOrderIndependent) {
  Rng rng(37);
  SampleStats a, b;
  std::vector<double> values;
  for (int i = 0; i < 101; ++i) values.push_back(rng.uniform(0, 100));
  for (double v : values) a.add(v);
  std::reverse(values.begin(), values.end());
  for (double v : values) b.add(v);
  EXPECT_DOUBLE_EQ(a.median(), b.median());
}

TEST(Stats, BoxStats) {
  SampleStats s;
  for (int i = 0; i <= 100; ++i) s.add(i);
  auto b = BoxStats::from(s);
  EXPECT_DOUBLE_EQ(b.min, 0);
  EXPECT_DOUBLE_EQ(b.q1, 25);
  EXPECT_DOUBLE_EQ(b.median, 50);
  EXPECT_DOUBLE_EQ(b.q3, 75);
  EXPECT_DOUBLE_EQ(b.max, 100);
}

TEST(Stats, QuantilesFromSamples) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  auto q = Quantiles::from(s);
  EXPECT_EQ(q.count, 100u);
  EXPECT_DOUBLE_EQ(q.p50, s.percentile(50));
  EXPECT_DOUBLE_EQ(q.p90, s.percentile(90));
  EXPECT_DOUBLE_EQ(q.p99, s.percentile(99));
  EXPECT_LE(q.p50, q.p90);
  EXPECT_LE(q.p90, q.p99);
  EXPECT_EQ(q.to_string(),
            format("p50=%.3f p90=%.3f p99=%.3f (n=%zu)", q.p50, q.p90, q.p99,
                   q.count));
  Quantiles empty = Quantiles::from(SampleStats{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
}

TEST(ThreadPool, StatsCountWorkAndBacklog) {
  ThreadPool pool(2);
  pool.submit([] {}).wait();
  std::atomic<size_t> touched{0};
  pool.parallel_chunks(100, 10, [&](size_t b, size_t e) {
    touched += e - b;
  });
  EXPECT_EQ(touched.load(), 100u);

  PoolStats st = pool.stats();
  EXPECT_EQ(st.tasks_submitted, 1u);
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.chunks_executed, 10u);
  EXPECT_LE(st.caller_chunks, st.chunks_executed);
  // Utilization is bounded by the definition, not timing: chunk time over
  // capacity with a huge wall clock collapses toward zero.
  EXPECT_GE(st.utilization(1e9, 2), 0.0);
  EXPECT_EQ(st.utilization(0.0, 2), 0.0);
}

TEST(Stats, HistogramBinning) {
  Histogram h(0, 10, 5);
  h.add(-1);   // clamps into first bin
  h.add(0.5);
  h.add(9.9);
  h.add(100);  // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

// ----------------------------------------------------------------- CRC ----

TEST(Crc64, KnownValuesStable) {
  // Self-consistency anchors (regression detection).
  uint64_t empty = crc64("", 0);
  uint64_t abc = crc64(std::string_view("abc"));
  EXPECT_EQ(empty, crc64(std::string_view("")));
  EXPECT_NE(abc, empty);
  EXPECT_EQ(abc, crc64(std::string_view("abc")));
  EXPECT_NE(crc64(std::string_view("abd")), abc);
}

TEST(Crc64, Ecma182CheckVector) {
  // CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout ~0): the standard
  // check value pins the implementation to the published parameterization,
  // so checksums baked into existing EMD files stay valid across rewrites.
  EXPECT_EQ(crc64(std::string_view("123456789")), 0x995DC9BBDF1939FAull);
  EXPECT_EQ(crc64_bytewise("123456789", 9), 0x995DC9BBDF1939FAull);
}

TEST(Crc64, IncrementalMatchesOneShot) {
  std::string data = "The Dynamic PicoProbe produces 100s of GB per day";
  Crc64 inc;
  inc.update(data.data(), 10);
  inc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc.value(), crc64(data));
}

TEST(Crc64, SensitiveToSingleBitFlip) {
  std::vector<uint8_t> data(1024, 0xAB);
  uint64_t base = crc64(data);
  data[512] ^= 0x01;
  EXPECT_NE(crc64(data), base);
}

// --------------------------------------------------------------- bytes ----

TEST(Bytes, PrimitivesRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.u8(0xFF);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f32(2.5f);
  w.f64(-3.25);
  w.str("hello");

  ByteReader r(buf);
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  int64_t e;
  float f;
  double g;
  std::string s;
  ASSERT_TRUE(r.u8(&a));
  ASSERT_TRUE(r.u16(&b));
  ASSERT_TRUE(r.u32(&c));
  ASSERT_TRUE(r.u64(&d));
  ASSERT_TRUE(r.i64(&e));
  ASSERT_TRUE(r.f32(&f));
  ASSERT_TRUE(r.f64(&g));
  ASSERT_TRUE(r.str(&s));
  EXPECT_EQ(a, 0xFF);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_EQ(e, -42);
  EXPECT_FLOAT_EQ(f, 2.5f);
  EXPECT_DOUBLE_EQ(g, -3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, VarintRoundTripEdgeValues) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  UINT64_MAX, UINT64_MAX - 1, 1ull << 63};
  for (uint64_t v : values) w.varint(v);
  ByteReader r(buf);
  for (uint64_t v : values) {
    uint64_t out;
    ASSERT_TRUE(r.varint(&out));
    EXPECT_EQ(out, v);
  }
}

TEST(Bytes, SignedVarintRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  std::vector<int64_t> values = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.svarint(v);
  ByteReader r(buf);
  for (int64_t v : values) {
    int64_t out;
    ASSERT_TRUE(r.svarint(&out));
    EXPECT_EQ(out, v);
  }
}

TEST(Bytes, TruncationDetected) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.u64(1);
  ByteReader r(buf.data(), 4);  // half the bytes
  uint64_t v;
  EXPECT_FALSE(r.u64(&v));
}

TEST(Bytes, MalformedVarintDetected) {
  // 11 continuation bytes: exceeds 64-bit range.
  std::vector<uint8_t> buf(11, 0x80);
  ByteReader r(buf);
  uint64_t v;
  EXPECT_FALSE(r.varint(&v));
}

TEST(Bytes, FileRoundTrip) {
  std::string path = testing::TempDir() + "/pico_bytes_test.bin";
  std::vector<uint8_t> data = {1, 2, 3, 250, 251};
  ASSERT_TRUE(write_file(path, data));
  auto read = read_file(path);
  ASSERT_TRUE(read);
  EXPECT_EQ(read.value(), data);
  EXPECT_FALSE(read_file(path + ".does-not-exist"));
}

// -------------------------------------------------------------- strings ----

TEST(Strings, SplitAndJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"x", "y", "z"}, "/"), "x/y/z");
  EXPECT_EQ(split_ws("  a\t b\nc ").size(), 3u);
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_TRUE(starts_with("picoflow", "pico"));
  EXPECT_TRUE(ends_with("file.emd", ".emd"));
  EXPECT_FALSE(ends_with("x", ".emd"));
}

TEST(Strings, FormatAndHex) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(to_hex_u64(0x0102030405060708ull), "0102030405060708");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(91e6), "91.00 MB");
  EXPECT_EQ(human_bytes(1.2e9), "1.20 GB");
}

TEST(Strings, HtmlEscape) {
  EXPECT_EQ(html_escape("<a href=\"x\">&'</a>"),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;&lt;/a&gt;");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

// ---------------------------------------------------------------- units ----

TEST(Units, ParseBytes) {
  EXPECT_EQ(parse_bytes("91MB").value(), 91'000'000);
  EXPECT_EQ(parse_bytes("1.2 GB").value(), 1'200'000'000);
  EXPECT_EQ(parse_bytes("42").value(), 42);
  EXPECT_EQ(parse_bytes("1 kb").value(), 1000);
  EXPECT_FALSE(parse_bytes("twelve"));
  EXPECT_FALSE(parse_bytes("5 parsecs"));
}

TEST(Units, ParseRates) {
  EXPECT_DOUBLE_EQ(parse_rate_bps("1Gbps").value(), 1e9);
  EXPECT_DOUBLE_EQ(parse_rate_bps("200 Gbps").value(), 200e9);
  EXPECT_DOUBLE_EQ(parse_rate_bps("65GB/s").value(), 65 * 8e9);
  EXPECT_FALSE(parse_rate_bps("fast"));
}

// ----------------------------------------------------------------- time ----

TEST(TimeFmt, Iso8601RoundTrip) {
  const char* stamps[] = {"2023-04-07T12:34:56Z", "1970-01-01T00:00:00Z",
                          "2000-02-29T23:59:59Z", "2026-07-08T06:00:00Z"};
  for (const char* s : stamps) {
    int64_t unix_s = 0;
    ASSERT_TRUE(parse_iso8601(s, &unix_s)) << s;
    EXPECT_EQ(format_iso8601(unix_s), s);
  }
}

TEST(TimeFmt, RejectsInvalidDates) {
  int64_t v;
  EXPECT_FALSE(parse_iso8601("2023-13-01T00:00:00Z", &v));
  EXPECT_FALSE(parse_iso8601("2023-02-30T00:00:00Z", &v));
  EXPECT_FALSE(parse_iso8601("not a date", &v));
}

TEST(TimeFmt, LeapYearHandling) {
  int64_t v;
  EXPECT_TRUE(parse_iso8601("2024-02-29", &v));
  EXPECT_FALSE(parse_iso8601("2023-02-29", &v));
  EXPECT_TRUE(parse_iso8601("2000-02-29", &v));
  EXPECT_FALSE(parse_iso8601("1900-02-29", &v));
}

TEST(TimeFmt, DurationFormatting) {
  EXPECT_EQ(format_duration(0.0), "00:00:00.000");
  EXPECT_EQ(format_duration(3661.5), "01:01:01.500");
  EXPECT_EQ(format_duration(-1.0), "-00:00:01.000");
}

TEST(TimeFmt, DatePrefix) {
  EXPECT_EQ(iso_date_prefix("2023-04-07T12:00:00Z"), "2023-04-07");
  EXPECT_EQ(iso_date_prefix("short"), "short");
}

// ------------------------------------------------------------ threadpool ----

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL(); });
}

// ------------------------------------------------------------------ ids ----

TEST(IdGen, UniqueAndDeterministic) {
  IdGen a(5), b(5);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    std::string id = a.next("task");
    EXPECT_EQ(id, b.next("task"));
    EXPECT_TRUE(seen.insert(id).second) << "duplicate " << id;
  }
}

// ------------------------------------------------------------- geometry ----

TEST(Geometry, IouIdentityAndDisjoint) {
  util::Box a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
  util::Box b{20, 20, 5, 5};
  EXPECT_DOUBLE_EQ(iou(a, b), 0.0);
}

TEST(Geometry, IouKnownOverlap) {
  util::Box a{0, 0, 10, 10};
  util::Box b{5, 5, 10, 10};
  // intersection 25, union 175
  EXPECT_NEAR(iou(a, b), 25.0 / 175.0, 1e-12);
}

TEST(Geometry, IouSymmetricProperty) {
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    util::Box a{rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform(1, 20),
                rng.uniform(1, 20)};
    util::Box b{rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform(1, 20),
                rng.uniform(1, 20)};
    double ab = iou(a, b), ba = iou(b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

TEST(Geometry, ClipStaysInViewport) {
  util::Box b{-5, -5, 20, 8};
  util::Box c = clip(b, 10, 10);
  EXPECT_DOUBLE_EQ(c.x, 0);
  EXPECT_DOUBLE_EQ(c.y, 0);
  EXPECT_DOUBLE_EQ(c.w, 10);
  EXPECT_DOUBLE_EQ(c.h, 3);
}

}  // namespace
}  // namespace pico::util

// ------------------------------------------------------------------ xml ----
// (appended with the HMSA support; exercised further in emd_test)
namespace pico::util {
namespace {

TEST(Xml, ParseSimpleDocument) {
  auto r = xml_parse(R"(<?xml version="1.0"?>
<Root Version="1.0">
  <!-- a comment -->
  <Child key="v&amp;al">text &lt;here&gt;</Child>
  <Empty/>
</Root>)");
  ASSERT_TRUE(r);
  const XmlNode& root = r.value();
  EXPECT_EQ(root.name, "Root");
  EXPECT_EQ(root.attr("Version"), "1.0");
  ASSERT_NE(root.child("Child"), nullptr);
  EXPECT_EQ(root.child("Child")->attr("key"), "v&al");
  EXPECT_EQ(root.child("Child")->text, "text <here>");
  ASSERT_NE(root.child("Empty"), nullptr);
  EXPECT_EQ(root.child("Missing"), nullptr);
}

TEST(Xml, SerializeParseRoundTrip) {
  XmlNode root;
  root.name = "Doc";
  root.attrs["a"] = "1 < 2 & \"q\"";
  XmlNode& child = root.add_child("Entry", "payload with <brackets>");
  child.attrs["id"] = "x'y";
  root.add_child("Entry", "second");
  root.ensure_child("Nested").add_child("Leaf", "deep");

  auto re = xml_parse(xml_serialize(root));
  ASSERT_TRUE(re);
  const XmlNode& back = re.value();
  EXPECT_EQ(back.attr("a"), "1 < 2 & \"q\"");
  auto entries = back.children_named("Entry");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->text, "payload with <brackets>");
  EXPECT_EQ(entries[0]->attr("id"), "x'y");
  EXPECT_EQ(back.child("Nested")->child_text("Leaf"), "deep");
}

TEST(Xml, RejectsMalformedDocuments) {
  EXPECT_FALSE(xml_parse(""));
  EXPECT_FALSE(xml_parse("<a>"));
  EXPECT_FALSE(xml_parse("<a></b>"));
  EXPECT_FALSE(xml_parse("<a attr></a>"));
  EXPECT_FALSE(xml_parse("<a x=unquoted></a>"));
  EXPECT_FALSE(xml_parse("<a/><b/>"));
  EXPECT_FALSE(xml_parse("just text"));
}

TEST(Xml, WhitespaceBetweenChildrenIgnored) {
  auto r = xml_parse("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r.value().text.empty());
  EXPECT_EQ(r.value().children.size(), 2u);
}

TEST(Xml, FuzzSafety) {
  Rng rng(0x31415);
  std::string base = "<Root a=\"1\"><Kid>text</Kid><Other/></Root>";
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    size_t pos = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(mutated.size() - 1)));
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    auto r = xml_parse(mutated);  // must not crash
    (void)r;
  }
}

// -------------------------------------------------------- fused CRC copy ----

TEST(Crc64Copy, MatchesScanAndCopiesBytes) {
  Rng rng(0xC0C0);
  // Lengths straddling the 8-byte slicing word: empty, sub-word, word
  // multiples, and odd tails.
  for (size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 64u, 65u, 1000u, 4096u, 4099u}) {
    std::vector<uint8_t> src(n);
    for (auto& b : src) b = static_cast<uint8_t>(rng.next_u64());
    std::vector<uint8_t> dst(n + 1, 0xEE);  // canary past the end
    uint64_t fused = crc64_copy(dst.data(), src.data(), n);
    EXPECT_EQ(fused, crc64(src.data(), n)) << "n=" << n;
    EXPECT_EQ(fused, crc64_bytewise(src.data(), n)) << "n=" << n;
    EXPECT_TRUE(std::equal(src.begin(), src.end(), dst.begin())) << "n=" << n;
    EXPECT_EQ(dst[n], 0xEE) << "n=" << n;  // no overwrite past n
  }
}

TEST(Crc64Copy, UnalignedSourceAndDestination) {
  Rng rng(0xA11);
  std::vector<uint8_t> arena(600);
  for (auto& b : arena) b = static_cast<uint8_t>(rng.next_u64());
  std::vector<uint8_t> out(600);
  for (size_t off = 0; off < 8; ++off) {
    const size_t n = 512 + off;
    uint64_t fused = crc64_copy(out.data() + (7 - off % 8),
                                arena.data() + off, n);
    EXPECT_EQ(fused, crc64(arena.data() + off, n)) << "off=" << off;
  }
}

TEST(Crc64Copy, UpdateCopyStreamsAcrossChunks) {
  Rng rng(0x5EED);
  std::vector<uint8_t> src(10'000);
  for (auto& b : src) b = static_cast<uint8_t>(rng.next_u64());
  std::vector<uint8_t> dst(src.size());
  Crc64 rolling;
  size_t pos = 0;
  for (size_t chunk : {1u, 17u, 63u, 4096u, 5823u}) {
    size_t n = std::min(chunk, src.size() - pos);
    rolling.update_copy(dst.data() + pos, src.data() + pos, n);
    pos += n;
  }
  rolling.update_copy(dst.data() + pos, src.data() + pos, src.size() - pos);
  EXPECT_EQ(rolling.value(), crc64(src));
  EXPECT_EQ(dst, src);
}

// ------------------------------------------------------------------ arena ----

TEST(Arena, AlignmentAndDisjointness) {
  Arena arena(1024);
  std::vector<std::pair<uint8_t*, size_t>> allocs;
  Rng rng(0xAAA);
  for (int i = 0; i < 100; ++i) {
    size_t n = static_cast<size_t>(rng.uniform_int(1, 200));
    uint8_t* p = arena.allocate_bytes(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
    std::memset(p, i & 0xFF, n);  // sanitizers catch overlap/overflow
    allocs.emplace_back(p, n);
  }
  // Every allocation still holds its own fill pattern: no two overlapped.
  for (int i = 0; i < 100; ++i) {
    auto [p, n] = allocs[static_cast<size_t>(i)];
    for (size_t j = 0; j < n; ++j) EXPECT_EQ(p[j], i & 0xFF);
  }
  EXPECT_GE(arena.reserved_bytes(), arena.allocated_bytes());
}

TEST(Arena, ResetRetainsSlabs) {
  Arena arena(4096);
  for (int i = 0; i < 10; ++i) arena.allocate(1000);
  size_t reserved = arena.reserved_bytes();
  size_t blocks = arena.block_count();
  arena.reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  // Steady state: the same allocation pattern fits in the retained slabs.
  for (int i = 0; i < 10; ++i) arena.allocate(1000);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(Arena, OversizedRequestGetsDedicatedSlab) {
  Arena arena(1024);
  uint8_t* small = arena.allocate_bytes(100);
  std::memset(small, 0x11, 100);
  uint8_t* big = arena.allocate_bytes(10'000);  // > slab size
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % 64, 0u);
  std::memset(big, 0xBB, 10'000);
  // The bump block survives the oversized detour.
  uint8_t* next = arena.allocate_bytes(100);
  ASSERT_NE(next, nullptr);
  std::memset(next, 0xCC, 100);
  EXPECT_EQ(small[0], 0x11);
  EXPECT_EQ(small[99], 0x11);
  EXPECT_EQ(big[9999], 0xBB);
}

// ------------------------------------------------------------ buffer pool ----

TEST(BufferPool, SizeClassesArePowersOfTwo) {
  EXPECT_EQ(BufferPool::size_class(0), 4096u);
  EXPECT_EQ(BufferPool::size_class(1), 4096u);
  EXPECT_EQ(BufferPool::size_class(4096), 4096u);
  EXPECT_EQ(BufferPool::size_class(4097), 8192u);
  EXPECT_EQ(BufferPool::size_class(100'000), 131'072u);
}

TEST(BufferPool, LeaseReturnsAndGetsReused) {
  BufferPool pool;
  const uint8_t* first_ptr = nullptr;
  {
    auto lease = pool.acquire(10'000);
    ASSERT_TRUE(lease.valid());
    EXPECT_EQ(lease.size(), 10'000u);
    first_ptr = lease.data();
    std::memset(lease.data(), 0xAB, lease.size());
  }  // returned to the free list
  auto again = pool.acquire(9'000);  // same 16 KiB class
  EXPECT_EQ(again.data(), first_ptr);
  auto stats = pool.stats();
  EXPECT_EQ(stats.acquired, 2u);
  EXPECT_EQ(stats.allocated, 1u);
  EXPECT_EQ(stats.reused, 1u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  BufferPool pool;
  auto a = pool.acquire(100);
  uint8_t* p = a.data();
  BufferPool::Lease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.data(), p);
}

TEST(BufferPool, SharedLeaseBackingFramePayloads) {
  BufferPool pool;
  auto shared = std::make_shared<BufferPool::Lease>(pool.acquire(256));
  std::memset(shared->data(), 0x5A, shared->size());
  auto copy1 = shared;
  auto copy2 = shared;
  shared.reset();
  EXPECT_EQ(copy1->data(), copy2->data());
  EXPECT_EQ(copy1->span()[255], 0x5A);
  copy1.reset();
  EXPECT_EQ(copy2->span()[0], 0x5A);  // last owner keeps the bytes alive
}

TEST(BufferPool, FreeListDepthIsBounded) {
  BufferPool pool(/*max_cached_per_class=*/2);
  std::vector<BufferPool::Lease> leases;
  for (int i = 0; i < 5; ++i) leases.push_back(pool.acquire(100));
  leases.clear();  // 5 returns into a depth-2 free list
  auto stats = pool.stats();
  EXPECT_EQ(stats.dropped, 3u);
  EXPECT_EQ(stats.cached_bytes, 2u * 4096u);
}

// ------------------------------------------------------------ mapped file ----

TEST(MappedFile, MapsBytesIdenticalToHeapRead) {
  std::string path = testing::TempDir() + "/pico_mmap_test.bin";
  Rng rng(0x3333);
  std::vector<uint8_t> data(100'000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
  ASSERT_TRUE(write_file(path, data));

  auto mf = MappedFile::open(path);
  ASSERT_TRUE(mf);
  EXPECT_EQ(mf.value().size(), data.size());
  auto bytes = mf.value().bytes();
  EXPECT_TRUE(std::equal(data.begin(), data.end(), bytes.begin()));
}

TEST(MappedFile, EmptyFileAndMissingFile) {
  std::string path = testing::TempDir() + "/pico_mmap_empty.bin";
  ASSERT_TRUE(write_file(path, std::vector<uint8_t>{}));
  auto mf = MappedFile::open(path);
  ASSERT_TRUE(mf);
  EXPECT_EQ(mf.value().size(), 0u);
  EXPECT_TRUE(mf.value().bytes().empty());

  EXPECT_FALSE(MappedFile::open(testing::TempDir() + "/pico_no_such_file"));
}

TEST(MappedFile, MoveKeepsMappingAlive) {
  std::string path = testing::TempDir() + "/pico_mmap_move.bin";
  std::vector<uint8_t> data{1, 2, 3, 4, 5};
  ASSERT_TRUE(write_file(path, data));
  auto mf = MappedFile::open(path);
  ASSERT_TRUE(mf);
  MappedFile moved = std::move(mf).value();
  auto bytes = moved.bytes();
  ASSERT_EQ(bytes.size(), 5u);
  EXPECT_EQ(bytes[4], 5);
}

}  // namespace
}  // namespace pico::util

// Health-plane tests: flight-recorder ring semantics (bounded eviction, dump
// marking, context-stack attribution, sink delivery), SLO multi-window burn
// math and episode edge-triggering, EWMA/z-score anomaly detection, and the
// HealthMonitor's watchdogs + provider/link scoring driven by a sim engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/health/anomaly.hpp"
#include "telemetry/health/flight_recorder.hpp"
#include "telemetry/health/monitor.hpp"
#include "telemetry/health/slo.hpp"
#include "telemetry/telemetry.hpp"

namespace pico::telemetry::health {
namespace {

using util::Json;
using util::LogLevel;

sim::SimTime t(double s) { return sim::SimTime::from_seconds(s); }

// ------------------------------------------------------ flight recorder ----

TEST(FlightRecord, RingEvictsOldestAndKeepsHonestTotals) {
  FlightRecord ring("run-1", /*capacity=*/4, t(0));
  for (int i = 0; i < 10; ++i) {
    FlightEvent e;
    e.at = t(i);
    e.name = "e" + std::to_string(i);
    ring.record(std::move(e));
  }
  EXPECT_EQ(ring.events().size(), 4u);
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest surviving event is #6 and seq numbers survive eviction.
  EXPECT_EQ(ring.events().front().name, "e6");
  EXPECT_EQ(ring.events().front().seq, 6u);
  EXPECT_EQ(ring.events().back().seq, 9u);
  EXPECT_EQ(ring.last_event(), t(9));

  Json doc = ring.to_json();
  EXPECT_EQ(doc.at("events_total").as_int(), 10);
  EXPECT_EQ(doc.at("events_dropped").as_int(), 6);
  EXPECT_EQ(doc.at("events").as_array().size(), 4u);
}

TEST(FlightRecorder, ErrorLevelEventMarksRingDumpWorthy) {
  FlightRecorder rec;
  rec.record("run-1", LogLevel::Info, "flow", "submitted", t(0));
  rec.record("run-2", LogLevel::Info, "flow", "submitted", t(0));
  rec.record("run-2", LogLevel::Error, "flow", "run-failed", t(5));
  EXPECT_EQ(rec.ring_count(), 2u);
  EXPECT_EQ(rec.dump_worthy_count(), 1u);
  // Warn stays below the default dump level.
  rec.record("run-1", LogLevel::Warn, "flow", "retry", t(6));
  EXPECT_EQ(rec.dump_worthy_count(), 1u);
}

TEST(FlightRecorder, CloseDeliversDumpExactlyOnceForDumpWorthyRings) {
  FlightRecorder rec;
  std::vector<std::string> delivered;
  rec.set_dump_sink(
      [&](const std::string& subject, const Json&) {
        delivered.push_back(subject);
      });
  rec.record("ok-run", LogLevel::Info, "flow", "submitted", t(0));
  rec.record("bad-run", LogLevel::Error, "flow", "run-failed", t(1));
  rec.close("ok-run", t(2));
  rec.close("bad-run", t(2));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], "bad-run");
  // flush_dumps still returns the record but never re-fires the sink.
  auto dumps = rec.flush_dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].first, "bad-run");
  EXPECT_EQ(delivered.size(), 1u);
}

TEST(FlightRecorder, FlushDumpsFiresSinkForStillOpenRings) {
  FlightRecorder rec;
  std::vector<std::string> delivered;
  rec.set_dump_sink(
      [&](const std::string& subject, const Json&) {
        delivered.push_back(subject);
      });
  rec.record("stuck-run", LogLevel::Info, "flow", "submitted", t(0));
  rec.request_dump("stuck-run", "watchdog-stall", t(100));
  auto dumps = rec.flush_dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].second.at("dump_reason").as_string(), "watchdog-stall");
  EXPECT_EQ(delivered, std::vector<std::string>{"stuck-run"});
}

TEST(FlightRecorder, ContextStackAttributesAsyncWork) {
  FlightRecorder rec;
  EXPECT_EQ(rec.current(), "");
  {
    FlightRecorder::Scope outer(rec, "run-1");
    EXPECT_EQ(rec.current(), "run-1");
    {
      FlightRecorder::Scope inner(rec, "run-2");
      EXPECT_EQ(rec.current(), "run-2");
    }
    EXPECT_EQ(rec.current(), "run-1");
  }
  EXPECT_EQ(rec.current(), "");
}

TEST(FlightRecorder, EmptySubjectAndDisabledAreNoOps) {
  FlightRecorder rec;
  rec.record("", LogLevel::Error, "flow", "orphan", t(0));
  EXPECT_EQ(rec.ring_count(), 0u);
  EXPECT_TRUE(rec.dump("missing").is_null());

  FlightRecorderConfig off;
  off.enabled = false;
  FlightRecorder disabled(off);
  disabled.record("run-1", LogLevel::Error, "flow", "failed", t(0));
  EXPECT_EQ(disabled.ring_count(), 0u);
}

TEST(FlightRecorder, ClosedRingReopensOnNewActivity) {
  FlightRecorder rec;
  rec.record("run-1", LogLevel::Info, "flow", "submitted", t(0));
  rec.close("run-1", t(10));
  EXPECT_TRUE(rec.open_flows().empty());
  // Dead-letter resubmission touches the old subject again.
  rec.record("run-1", LogLevel::Info, "flow", "resubmitted", t(20));
  ASSERT_EQ(rec.open_flows().size(), 1u);
  Json doc = rec.dump("run-1");
  const auto& events = doc.at("events").as_array();
  ASSERT_EQ(events.size(), 3u);  // submitted, reopened, resubmitted
  EXPECT_EQ(events[1].at("name").as_string(), "reopened");
}

// ------------------------------------------------------------ SLO engine ----

SloConfig tight_slo() {
  SloConfig cfg;
  cfg.spec.error_budget = 0.05;
  cfg.spec.latency_budget = 0.10;
  cfg.spec.completion_latency_s = 60;
  cfg.spec.time_to_first_result_s = 300;
  cfg.fast = {60.0, 6.0};
  cfg.slow = {300.0, 2.0};
  return cfg;
}

SloInput in(double at_s, uint64_t ok, uint64_t bad, uint64_t slow = 0) {
  SloInput i;
  i.at = t(at_s);
  i.succeeded = ok;
  i.failed = bad;
  i.slow = slow;
  i.started = ok + bad;
  return i;
}

TEST(SloEngine, ErrorBurnFiresWhenBothWindowsExceedThresholds) {
  SloEngine slo(tight_slo());
  EXPECT_TRUE(slo.feed(in(0, 0, 0)).empty());  // no history yet
  // Half of 20 runs failed over 400s: rate 0.5 / budget 0.05 = burn 10 on
  // both windows (the only baseline is the t=0 sample).
  auto alerts = slo.feed(in(400, 10, 10));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, "slo-burn");
  EXPECT_EQ(alerts[0].subject, "error_rate");
  EXPECT_EQ(alerts[0].severity, "critical");
  ASSERT_EQ(slo.status().size(), 3u);
  EXPECT_DOUBLE_EQ(slo.status()[0].fast_burn, 10.0);
  EXPECT_TRUE(slo.status()[0].alerting);

  // Still burning: the episode is edge-triggered, no duplicate alert.
  EXPECT_TRUE(slo.feed(in(410, 10, 10)).empty());

  // Quiet stretch: deltas go to zero, burn resets, episode re-arms...
  EXPECT_TRUE(slo.feed(in(900, 10, 10)).empty());
  EXPECT_TRUE(slo.feed(in(1300, 10, 10)).empty());
  EXPECT_FALSE(slo.status()[0].alerting);
  // ...so a second failure wave fires a second alert.
  auto again = slo.feed(in(1360, 10, 20));
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].subject, "error_rate");
}

TEST(SloEngine, LatencyBurnUsesSlowRunCounter) {
  SloEngine slo(tight_slo());
  slo.feed(in(0, 0, 0));
  // 6 of 12 completed runs blew the latency objective: rate 0.5 / 0.10 = 5.0
  // burn — above the slow threshold (2) but below the fast one (6): silent.
  EXPECT_TRUE(slo.feed(in(400, 12, 0, 6)).empty());
  ASSERT_EQ(slo.status().size(), 3u);
  EXPECT_DOUBLE_EQ(slo.status()[1].fast_burn, 5.0);
  EXPECT_FALSE(slo.status()[1].alerting);

  SloEngine hot(tight_slo());
  hot.feed(in(0, 0, 0));
  // 8 of 10: rate 0.8 / 0.10 = burn 8 >= both thresholds.
  auto alerts = hot.feed(in(400, 10, 0, 8));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].subject, "latency");
}

TEST(SloEngine, TimeToFirstResultFiresOnceAndOnlyWhenStarted) {
  SloEngine slo(tight_slo());
  // Idle facility past the objective: not a violation.
  SloInput idle = in(400, 0, 0);
  idle.started = 0;
  EXPECT_TRUE(slo.feed(idle).empty());
  // Started flows but nothing succeeded past 300s: warn once.
  SloInput late = in(500, 0, 0);
  late.started = 3;
  auto alerts = slo.feed(late);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, "slo-ttfr");
  EXPECT_EQ(alerts[0].severity, "warn");
  late.at = t(600);
  EXPECT_TRUE(slo.feed(late).empty());
}

// ------------------------------------------------------ anomaly detector ----

MetricSample counter_sample(const std::string& name, double value) {
  MetricSample s;
  s.name = name;
  s.kind = MetricKind::Counter;
  s.value = value;
  return s;
}

AnomalyConfig tight_anomaly() {
  AnomalyConfig cfg;
  cfg.warmup_ticks = 3;
  cfg.min_delta = 2.0;
  cfg.z_threshold = 4.0;
  cfg.families = {"frames_dropped_total", "stream_spills_total"};
  return cfg;
}

TEST(Anomaly, SpikeAfterWarmupAlertsOncePerEpisode) {
  AnomalyDetector det(tight_anomaly());
  double cum = 0;
  // Steady trickle of 1/tick through warmup.
  for (int i = 0; i < 6; ++i) {
    cum += 1;
    auto alerts = det.observe(
        t(i * 15.0), {counter_sample("frames_dropped_total", cum)});
    EXPECT_TRUE(alerts.empty()) << "tick " << i;
  }
  // 80-frame spike: far above the learned ~1/tick baseline.
  cum += 80;
  auto alerts =
      det.observe(t(90), {counter_sample("frames_dropped_total", cum)});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, "anomaly");
  EXPECT_EQ(alerts[0].subject, "frames_dropped_total");
  // Sustained spike: the hot flag dedups the episode.
  cum += 80;
  EXPECT_TRUE(
      det.observe(t(105), {counter_sample("frames_dropped_total", cum)})
          .empty());
  // Back to the trickle, then a fresh spike re-alerts.
  for (int i = 0; i < 4; ++i) {
    cum += 1;
    det.observe(t(120 + i * 15.0),
                {counter_sample("frames_dropped_total", cum)});
  }
  cum += 400;
  EXPECT_EQ(
      det.observe(t(200), {counter_sample("frames_dropped_total", cum)}).size(),
      1u);
  EXPECT_EQ(det.alerts_fired(), 2u);
}

TEST(Anomaly, SeriesBornAfterQuietWarmupIsItselfAnomalous) {
  AnomalyDetector det(tight_anomaly());
  // The facility ticks quietly with no watched series at all.
  for (int i = 0; i < 5; ++i) det.observe(t(i * 15.0), {});
  // First spill counter ever — born mid-campaign, clearly chaos.
  auto alerts = det.observe(t(90), {counter_sample("stream_spills_total", 5)});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].subject, "stream_spills_total");
}

TEST(Anomaly, SeriesPresentFromStartSeedsBaselineSilently) {
  AnomalyDetector det(tight_anomaly());
  auto alerts =
      det.observe(t(0), {counter_sample("frames_dropped_total", 100)});
  EXPECT_TRUE(alerts.empty());
}

TEST(Anomaly, UnwatchedFamiliesAndGaugesAreIgnored) {
  AnomalyDetector det(tight_anomaly());
  MetricSample gauge;
  gauge.name = "frames_dropped_total";  // watched name but gauge kind
  gauge.kind = MetricKind::Gauge;
  gauge.value = 1000;
  for (int i = 0; i < 8; ++i) {
    auto alerts = det.observe(
        t(i * 15.0),
        {gauge, counter_sample("flow_polls_total", i * 1000.0)});
    EXPECT_TRUE(alerts.empty());
  }
  EXPECT_EQ(det.series_tracked(), 0u);
}

// --------------------------------------------------------- health monitor ----

struct MonitorHarness {
  sim::Engine engine;
  sim::Trace trace;
  Telemetry telemetry{&trace};

  HealthMonitor make(HealthConfig cfg) {
    return HealthMonitor(engine, telemetry, cfg);
  }
};

TEST(HealthMonitor, WatchdogsFlagStalledAndOverdueFlows) {
  MonitorHarness h;
  HealthConfig cfg;
  cfg.snapshot_interval_s = 10;
  cfg.stall_after_s = 30;
  cfg.flow_deadline_s = 100;
  HealthMonitor monitor(h.engine, h.telemetry, cfg);

  // One run goes silent immediately; chaos/scrubber rings are exempt.
  h.telemetry.flight.record("run-1", LogLevel::Info, "flow", "submitted",
                            t(0));
  h.telemetry.flight.record("chaos", LogLevel::Info, "fault", "fault-begin",
                            t(0));
  monitor.start(/*horizon_s=*/200);
  h.engine.run();

  // Stall fired once (edge) and the deadline fired once.
  EXPECT_EQ(monitor.watchdog_flags(), 2u);
  bool saw_stall = false, saw_deadline = false;
  for (const auto& a : monitor.alerts()) {
    if (a.kind == "watchdog-stall") {
      saw_stall = true;
      EXPECT_EQ(a.subject, "run-1");
    }
    if (a.kind == "watchdog-deadline") {
      saw_deadline = true;
      EXPECT_EQ(a.subject, "run-1");
    }
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_deadline);

  // Both watchdogs requested a dump of the stuck flow.
  Json dump = h.telemetry.flight.dump("run-1");
  ASSERT_FALSE(dump.is_null());
  EXPECT_FALSE(dump.at("dump_reason").as_string().empty());

  HealthReport report = monitor.report();
  EXPECT_EQ(report.open_flows, 1u);  // chaos ring not counted
  EXPECT_EQ(report.stalled_flows, 1u);
  EXPECT_GT(monitor.ticks(), 0u);
}

TEST(HealthMonitor, ProviderScoresDegradeWithBreakerAndRetries) {
  MonitorHarness h;
  HealthConfig cfg;
  cfg.snapshot_interval_s = 15;
  HealthMonitor monitor(h.engine, h.telemetry, cfg);

  auto& metrics = h.telemetry.metrics;
  metrics.counter("flow_polls_total", "p", {{"provider", "compute"}}).inc();
  metrics.counter("flow_polls_total", "p", {{"provider", "transfer"}}).inc();
  monitor.tick();  // baseline

  metrics.gauge("flow_breaker_open", "b", {{"provider", "transfer"}}).set(1);
  metrics.counter("flow_retries_total", "r", {{"provider", "transfer"}})
      .inc(2);
  monitor.tick();

  HealthReport report = monitor.report();
  ASSERT_EQ(report.providers.size(), 2u);
  const ProviderScore* compute = nullptr;
  const ProviderScore* transfer = nullptr;
  for (const auto& p : report.providers) {
    if (p.provider == "compute") compute = &p;
    if (p.provider == "transfer") transfer = &p;
  }
  ASSERT_TRUE(compute && transfer);
  EXPECT_DOUBLE_EQ(compute->score, 100.0);
  // Breaker open alone costs 50; retry rate pushes it further down.
  EXPECT_LE(transfer->score, 50.0);
  EXPECT_DOUBLE_EQ(transfer->breaker_open, 1.0);
  EXPECT_GT(transfer->retries_per_min, 0.0);

  // Scores are republished as gauges for the Prometheus exposition.
  std::string prom = metrics.to_prometheus();
  EXPECT_NE(prom.find("health_provider_score{provider=\"transfer\"}"),
            std::string::npos);
}

TEST(HealthMonitor, LinkProbeScoresUtilizationAndPartitions) {
  MonitorHarness h;
  HealthMonitor monitor(h.engine, h.telemetry, HealthConfig{});
  monitor.set_link_probe([] {
    return std::vector<LinkProbe>{
        {"user-switch", true, 0.5},
        {"backbone-eagle", false, 0.0},
    };
  });
  monitor.tick();
  HealthReport report = monitor.report();
  ASSERT_EQ(report.links.size(), 2u);
  EXPECT_DOUBLE_EQ(report.links[0].score, 85.0);  // 100 - 30 * 0.5
  EXPECT_DOUBLE_EQ(report.links[1].score, 0.0);   // down link
}

TEST(HealthMonitor, ReportSerializesToJson) {
  MonitorHarness h;
  HealthMonitor monitor(h.engine, h.telemetry, HealthConfig{});
  h.telemetry.flight.record("run-1", LogLevel::Error, "flow", "run-failed",
                            t(1));
  monitor.tick();
  Json doc = monitor.report().to_json();
  EXPECT_TRUE(doc.at("providers").is_array());
  EXPECT_TRUE(doc.at("slos").is_array());
  EXPECT_TRUE(doc.at("alerts").is_array());
  EXPECT_EQ(doc.at_path("flight.rings").as_int(), 1);
  EXPECT_EQ(doc.at_path("flight.dump_worthy").as_int(), 1);
  // The tick itself is visible in the registry.
  std::string prom = h.telemetry.metrics.to_prometheus();
  EXPECT_NE(prom.find("health_ticks_total 1"), std::string::npos);
}

}  // namespace
}  // namespace pico::telemetry::health

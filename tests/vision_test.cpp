// Vision tests: image ops, blob detection against generator ground truth,
// tracking stability, mAP evaluation properties.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "instrument/spatiotemporal_gen.hpp"
#include "vision/detect.hpp"
#include "vision/eval.hpp"
#include "vision/image.hpp"
#include "vision/track.hpp"

namespace pico::vision {
namespace {

ImageF blob_frame(size_t h, size_t w, std::vector<util::Box>* truth,
                  std::vector<std::pair<double, double>> centers,
                  double radius = 4.0) {
  ImageF img(tensor::Shape{h, w});
  for (size_t i = 0; i < img.size(); ++i) img[i] = 0.5;
  for (auto [cx, cy] : centers) {
    for (size_t y = 0; y < h; ++y) {
      for (size_t x = 0; x < w; ++x) {
        double d = std::hypot(static_cast<double>(x) - cx,
                              static_cast<double>(y) - cy);
        if (d <= radius) img(y, x) += 5.0;
        else if (d <= radius + 2) img(y, x) += 5.0 * std::exp(-(d - radius));
      }
    }
    if (truth) {
      truth->push_back(
          util::Box{cx - radius, cy - radius, 2 * radius, 2 * radius});
    }
  }
  return img;
}

TEST(Image, GaussianBlurPreservesMassAndSmooths) {
  ImageF img(tensor::Shape{21, 21});
  img(10, 10) = 100.0;
  ImageF out = gaussian_blur(img, 2.0);
  double total = 0;
  for (double v : out.data()) total += v;
  EXPECT_NEAR(total, 100.0, 1.0);  // reflective borders conserve mass
  EXPECT_LT(out(10, 10), 100.0);
  EXPECT_GT(out(10, 12), 0.0);
  // sigma <= 0 is identity.
  ImageF same = gaussian_blur(img, 0.0);
  EXPECT_DOUBLE_EQ(same(10, 10), 100.0);
}

TEST(Image, OtsuSeparatesBimodal) {
  ImageF img(tensor::Shape{10, 10});
  for (size_t i = 0; i < 50; ++i) img[i] = 1.0;
  for (size_t i = 50; i < 100; ++i) img[i] = 9.0;
  double thr = otsu_threshold(img);
  EXPECT_GT(thr, 1.0);
  EXPECT_LT(thr, 9.0);
  auto mask = threshold_mask(img, thr);
  size_t above = 0;
  for (auto v : mask.data()) above += v;
  EXPECT_EQ(above, 50u);
}

TEST(Image, ConnectedComponentsCountsAndBoxes) {
  ImageU8 mask(tensor::Shape{8, 12});
  ImageF intensity(tensor::Shape{8, 12});
  for (size_t i = 0; i < intensity.size(); ++i) intensity[i] = 1.0;
  // Two separate blobs.
  mask(1, 1) = mask(1, 2) = mask(2, 1) = mask(2, 2) = 1;
  mask(5, 8) = mask(5, 9) = mask(6, 9) = 1;
  auto comps = connected_components(mask, intensity);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].area, 4u);
  EXPECT_DOUBLE_EQ(comps[0].box.x, 1);
  EXPECT_DOUBLE_EQ(comps[0].box.w, 2);
  EXPECT_EQ(comps[1].area, 3u);
  EXPECT_NEAR(comps[0].centroid_x, 1.5, 1e-9);
}

TEST(Image, DiagonalPixelsAre8Connected) {
  ImageU8 mask(tensor::Shape{4, 4});
  ImageF intensity = ImageF::full(tensor::Shape{4, 4}, 1.0);
  mask(0, 0) = 1;
  mask(1, 1) = 1;
  mask(2, 2) = 1;
  auto comps = connected_components(mask, intensity);
  EXPECT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].area, 3u);
}

TEST(Detector, FindsIsolatedBlobs) {
  std::vector<util::Box> truth;
  ImageF frame = blob_frame(64, 64, &truth, {{16, 16}, {48, 40}});
  BlobDetector detector;
  auto dets = detector.detect(frame);
  ASSERT_EQ(dets.size(), 2u);
  for (const auto& det : dets) {
    EXPECT_GT(det.confidence, 0.0);
    EXPECT_LE(det.confidence, 1.0);
    double best = 0;
    for (const auto& t : truth) best = std::max(best, util::iou(det.box, t));
    EXPECT_GT(best, 0.4) << "detection far from any truth box";
  }
}

TEST(Detector, EmptyFrameOnNoiseYieldsFewDetections) {
  util::Rng rng(3);
  ImageF frame(tensor::Shape{64, 64});
  for (size_t i = 0; i < frame.size(); ++i) frame[i] = rng.normal(1.0, 0.05);
  BlobDetector detector;
  // Pure noise: Otsu will split noise, but the area filter kills speckle.
  auto dets = detector.detect(frame);
  EXPECT_LE(dets.size(), 8u);
}

TEST(Detector, MinAreaFiltersSpeckle) {
  ImageF frame(tensor::Shape{32, 32});
  for (size_t i = 0; i < frame.size(); ++i) frame[i] = 0.5;
  frame(10, 10) = 50.0;  // single hot pixel
  DetectorConfig cfg;
  cfg.blur_sigma = 0.0;  // no smoothing: the speckle stays one pixel
  cfg.min_area_px = 4;
  BlobDetector detector(cfg);
  EXPECT_TRUE(detector.detect(frame).empty());
}

TEST(Detector, DetectsOnGeneratedFrames) {
  instrument::SpatiotemporalConfig cfg;
  cfg.frames = 5;
  cfg.height = 96;
  cfg.width = 96;
  cfg.particle_count = 6;
  cfg.noise_sigma = 0.1;
  auto sample = instrument::generate_spatiotemporal(cfg);
  BlobDetector detector;
  size_t matched = 0, total_truth = 0;
  for (size_t t = 0; t < cfg.frames; ++t) {
    auto dets = detector.detect(sample.stack.slice0(t));
    total_truth += sample.boxes[t].size();
    for (const auto& truth : sample.boxes[t]) {
      for (const auto& det : dets) {
        if (util::iou(det.box, truth) >= 0.4) {
          ++matched;
          break;
        }
      }
    }
  }
  // Recall at IoU 0.4 should be decent on clean synthetic frames (some
  // particles overlap and merge into one component).
  EXPECT_GT(static_cast<double>(matched) / static_cast<double>(total_truth), 0.6);
}

TEST(Detector, CountPerFrame) {
  std::vector<std::vector<Detection>> dets(3);
  dets[1].push_back(Detection{{0, 0, 1, 1}, 0.5});
  dets[1].push_back(Detection{{5, 5, 1, 1}, 0.5});
  auto counts = count_per_frame(dets);
  EXPECT_EQ(counts, (std::vector<size_t>{0, 2, 0}));
}

TEST(Tracker, StableIdsForSlowMotion) {
  GreedyIoUTracker tracker;
  std::vector<Detection> frame0 = {{{10, 10, 8, 8}, 0.9}, {{40, 40, 8, 8}, 0.9}};
  auto ids0 = tracker.update(frame0);
  ASSERT_EQ(ids0.size(), 2u);
  EXPECT_NE(ids0[0], ids0[1]);
  // Slight drift: same ids.
  std::vector<Detection> frame1 = {{{11, 11, 8, 8}, 0.9}, {{41, 39, 8, 8}, 0.9}};
  auto ids1 = tracker.update(frame1);
  EXPECT_EQ(ids1[0], ids0[0]);
  EXPECT_EQ(ids1[1], ids0[1]);
  EXPECT_EQ(tracker.total_tracks_created(), 2);
}

TEST(Tracker, NewDetectionSpawnsTrack) {
  GreedyIoUTracker tracker;
  tracker.update({{{10, 10, 8, 8}, 0.9}});
  auto ids = tracker.update({{{10, 10, 8, 8}, 0.9}, {{60, 60, 8, 8}, 0.8}});
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], 1);
  EXPECT_EQ(tracker.active_tracks().size(), 2u);
}

TEST(Tracker, MissedTracksRetireAfterLimit) {
  TrackerConfig cfg;
  cfg.max_missed = 2;
  GreedyIoUTracker tracker(cfg);
  tracker.update({{{10, 10, 8, 8}, 0.9}});
  for (int i = 0; i < 3; ++i) tracker.update({});
  EXPECT_TRUE(tracker.active_tracks().empty());
  // A detection at the old location now gets a NEW id.
  auto ids = tracker.update({{{10, 10, 8, 8}, 0.9}});
  EXPECT_EQ(ids[0], 1);
}

TEST(Tracker, JumpBeyondIouGateStartsNewTrack) {
  GreedyIoUTracker tracker;
  tracker.update({{{10, 10, 8, 8}, 0.9}});
  auto ids = tracker.update({{{100, 100, 8, 8}, 0.9}});
  EXPECT_EQ(ids[0], 1);  // teleport = new identity
}

TEST(Tracker, TracksGeneratedParticles) {
  instrument::SpatiotemporalConfig cfg;
  cfg.frames = 40;
  cfg.height = 128;
  cfg.width = 128;
  cfg.particle_count = 4;
  cfg.step_sigma = 1.0;
  cfg.noise_sigma = 0.08;
  auto sample = instrument::generate_spatiotemporal(cfg);
  BlobDetector detector;
  GreedyIoUTracker tracker;
  for (size_t t = 0; t < cfg.frames; ++t) {
    tracker.update(detector.detect(sample.stack.slice0(t)));
  }
  // Identity churn should be low: roughly one track per particle (merges and
  // detection gaps allow a few extra).
  EXPECT_LE(tracker.total_tracks_created(), 14);
  EXPECT_GE(tracker.total_tracks_created(), 3);
}

// ---- evaluation ----

TEST(Eval, PerfectDetectionsScoreOne) {
  std::vector<EvalImage> images(3);
  util::Rng rng(9);
  for (auto& img : images) {
    for (int i = 0; i < 5; ++i) {
      util::Box b{rng.uniform(0, 80), rng.uniform(0, 80), 10, 10};
      img.truths.push_back(b);
      img.detections.push_back(Detection{b, 0.9});
    }
  }
  EXPECT_DOUBLE_EQ(average_precision(images, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(map50_95(images), 1.0);
  auto pr = pr_counts(images, 0.5);
  EXPECT_EQ(pr.false_positives, 0u);
  EXPECT_EQ(pr.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 1.0);
}

TEST(Eval, AllMissesScoreZero) {
  std::vector<EvalImage> images(1);
  images[0].truths.push_back({0, 0, 10, 10});
  images[0].detections.push_back(Detection{{50, 50, 10, 10}, 0.9});
  EXPECT_DOUBLE_EQ(average_precision(images, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(map50_95(images), 0.0);
}

TEST(Eval, NoTruthsScoreZero) {
  std::vector<EvalImage> images(1);
  images[0].detections.push_back(Detection{{0, 0, 1, 1}, 0.5});
  EXPECT_DOUBLE_EQ(average_precision(images, 0.5), 0.0);
}

TEST(Eval, HighConfidenceFalsePositivesHurtMore) {
  // Same TP/FP sets; only the FP confidence differs.
  auto build = [](double fp_conf) {
    std::vector<EvalImage> images(1);
    images[0].truths = {{0, 0, 10, 10}, {30, 30, 10, 10}};
    images[0].detections = {
        Detection{{0, 0, 10, 10}, 0.8},
        Detection{{30, 30, 10, 10}, 0.7},
        Detection{{60, 60, 10, 10}, fp_conf},
    };
    return images;
  };
  double ap_low_fp = average_precision(build(0.1), 0.5);
  double ap_high_fp = average_precision(build(0.95), 0.5);
  EXPECT_GT(ap_low_fp, ap_high_fp);
}

TEST(Eval, DuplicateDetectionsPenalized) {
  std::vector<EvalImage> images(1);
  images[0].truths = {{0, 0, 10, 10}};
  images[0].detections = {
      Detection{{0, 0, 10, 10}, 0.9},
      Detection{{1, 1, 10, 10}, 0.8},  // duplicate of the same truth
  };
  auto pr = pr_counts(images, 0.5);
  EXPECT_EQ(pr.true_positives, 1u);
  EXPECT_EQ(pr.false_positives, 1u);
}

TEST(Eval, MapDecreasesWithLooserBoxes) {
  // Detections offset by 2px match at IoU 0.5 but fail at 0.9, so mAP50-95
  // sits strictly between 0 and AP50.
  std::vector<EvalImage> images(1);
  for (int i = 0; i < 4; ++i) {
    util::Box t{static_cast<double>(20 * i), 10, 10, 10};
    images[0].truths.push_back(t);
    images[0].detections.push_back(
        Detection{{t.x + 2, t.y, t.w, t.h}, 0.9});
  }
  double ap50 = average_precision(images, 0.5);
  double map = map50_95(images);
  EXPECT_DOUBLE_EQ(ap50, 1.0);
  EXPECT_LT(map, 1.0);
  EXPECT_GT(map, 0.1);
}

// Property: mAP is monotonically non-increasing in the IoU threshold.
class EvalMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvalMonotonicity, ApNonIncreasingInThreshold) {
  util::Rng rng(GetParam());
  std::vector<EvalImage> images(4);
  for (auto& img : images) {
    int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < n; ++i) {
      util::Box t{rng.uniform(0, 80), rng.uniform(0, 80), rng.uniform(6, 14),
                  rng.uniform(6, 14)};
      img.truths.push_back(t);
      if (rng.chance(0.85)) {
        img.detections.push_back(Detection{
            {t.x + rng.uniform(-3, 3), t.y + rng.uniform(-3, 3), t.w, t.h},
            rng.uniform(0.3, 1.0)});
      }
    }
    if (rng.chance(0.5)) {
      img.detections.push_back(
          Detection{{rng.uniform(0, 90), rng.uniform(0, 90), 8, 8},
                    rng.uniform(0.1, 0.9)});
    }
  }
  double prev = 1.1;
  for (double thr = 0.5; thr <= 0.951; thr += 0.05) {
    double ap = average_precision(images, thr);
    EXPECT_LE(ap, prev + 1e-9);
    prev = ap;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalMonotonicity,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17, 19));

}  // namespace
}  // namespace pico::vision

// Telemetry subsystem tests: metrics registry semantics and Prometheus
// exposition, causal tracer parenting/events, Chrome trace_event export,
// circuit-breaker state transitions as timestamped span events under injected
// faults, and the guarantee the refactor rests on — campaign reports rebuilt
// from the span tree are byte-identical to the flow service's bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "core/campaign.hpp"
#include "core/facility.hpp"
#include "core/report.hpp"
#include "flow/service.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tracer.hpp"

namespace pico::telemetry {
namespace {

using util::Json;

sim::SimTime t(double s) { return sim::SimTime::from_seconds(s); }

// ------------------------------------------------------------- metrics ----

TEST(Metrics, CountersAndGaugesByLabels) {
  MetricsRegistry reg;
  reg.counter("jobs_total", "jobs", {{"state", "ok"}}).inc();
  reg.counter("jobs_total", "jobs", {{"state", "ok"}}).inc(2);
  reg.counter("jobs_total", "jobs", {{"state", "failed"}}).inc();
  reg.gauge("depth", "queue depth").set(7);
  EXPECT_EQ(reg.family_count(), 2u);

  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Deterministic order: families by name, series by label set.
  EXPECT_EQ(snap[0].name, "depth");
  EXPECT_EQ(snap[0].value, 7);
  EXPECT_EQ(snap[1].labels.at("state"), "failed");
  EXPECT_EQ(snap[1].value, 1);
  EXPECT_EQ(snap[2].labels.at("state"), "ok");
  EXPECT_EQ(snap[2].value, 3);
}

TEST(Metrics, InstrumentReferencesAreStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", "x");
  Counter& b = reg.counter("x_total", "x");
  EXPECT_EQ(&a, &b);
  a.inc(5);
  EXPECT_EQ(b.value(), 5);
}

TEST(Metrics, HistogramQuantileEstimates) {
  MetricsRegistry reg;
  FixedHistogram& h =
      reg.histogram("lat_seconds", "latency", {}, {1, 2, 4, 8, 16});
  for (int i = 0; i < 100; ++i) h.observe(1.5);  // all inside (1, 2]
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 150.0);
  double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  util::Quantiles q = h.quantiles();
  EXPECT_EQ(q.count, 100u);
  EXPECT_LE(q.p50, q.p90);
  EXPECT_LE(q.p90, q.p99);
  // The tracked max clamps the tail estimate below the bucket bound.
  EXPECT_LE(q.p99, h.max() + 1e-12);
  // Overflow observations land in the +Inf bucket but keep max exact.
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.count(), 101u);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("events_total", "events seen", {{"kind", "a"}}).inc(3);
  reg.gauge("width", "pool width").set(4);
  reg.histogram("dur_seconds", "duration", {}, {0.5, 1.0}).observe(0.7);
  std::string text = reg.to_prometheus();

  EXPECT_NE(text.find("# HELP events_total events seen"), std::string::npos);
  EXPECT_NE(text.find("# TYPE events_total counter"), std::string::npos);
  EXPECT_NE(text.find("events_total{kind=\"a\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE width gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dur_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("dur_seconds_bucket{le=\"0.5\"} 0"), std::string::npos);
  EXPECT_NE(text.find("dur_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("dur_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dur_seconds_count 1"), std::string::npos);
  // Byte-stable: two renders of the same registry are identical.
  EXPECT_EQ(text, reg.to_prometheus());
}

TEST(Metrics, PrometheusEscapesHostileLabelValuesAndHelp) {
  MetricsRegistry reg;
  // Every character class the exposition-format spec requires escaping in
  // quoted label values: backslash, double quote, line feed.
  reg.counter("hostile_total", "first line\nsecond \\ line",
              {{"path", "C:\\tmp\\\"quoted\"\nnext"}})
      .inc();
  std::string text = reg.to_prometheus();

  // Label value: \ -> \\, " -> \", newline -> \n.
  EXPECT_NE(
      text.find(
          "hostile_total{path=\"C:\\\\tmp\\\\\\\"quoted\\\"\\nnext\"} 1\n"),
      std::string::npos);
  // HELP text: \ -> \\ and newline -> \n (quotes stay literal).
  EXPECT_NE(text.find("# HELP hostile_total first line\\nsecond \\\\ line\n"),
            std::string::npos);
  // No raw newline may survive inside any exposition line.
  for (size_t pos = text.find('{'); pos != std::string::npos;
       pos = text.find('{', pos + 1)) {
    size_t close = text.find('}', pos);
    ASSERT_NE(close, std::string::npos);
    EXPECT_EQ(text.substr(pos, close - pos).find('\n'), std::string::npos);
  }
}

TEST(Metrics, HistogramQuantileEmptyAndOverflowEdgeCases) {
  FixedHistogram empty({1.0, 2.0});
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
  util::Quantiles q = empty.quantiles();
  EXPECT_DOUBLE_EQ(q.p50, 0.0);
  EXPECT_DOUBLE_EQ(q.p99, 0.0);

  // Every observation above the last bound: estimates clamp to the tracked
  // max instead of inventing an infinite bucket midpoint.
  FixedHistogram overflow({1.0, 2.0});
  overflow.observe(50.0);
  overflow.observe(75.0);
  overflow.observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(overflow.max(), 100.0);

  // Out-of-range and NaN quantile requests stay finite and clamped.
  FixedHistogram h({1.0, 2.0});
  h.observe(1.5);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
  double nan_q = h.quantile(std::nan(""));
  EXPECT_FALSE(std::isnan(nan_q));
  EXPECT_DOUBLE_EQ(nan_q, h.quantile(1.0));
}

// -------------------------------------------------------------- tracer ----

TEST(Tracer, ContextStackParentsSpans) {
  sim::Trace trace;
  Tracer tracer(&trace);
  uint64_t root = tracer.open("campaign", "c");
  {
    Tracer::Scope scope(tracer, root);
    EXPECT_EQ(tracer.current(), root);
    uint64_t child = tracer.open("flow", "run-1");  // parent from context
    uint64_t sibling = tracer.open("flow", "run-2", root);  // explicit
    tracer.event(child, "note", t(1), Json::object({{"k", "v"}}));
    tracer.close(child, "run", t(0), t(2), {});
    tracer.close(sibling, "run", t(0), t(3), {});
  }
  EXPECT_EQ(tracer.current(), 0u);
  tracer.close(root, "campaign", t(0), t(4), {});
  EXPECT_EQ(tracer.open_count(), 0u);

  ASSERT_EQ(trace.spans().size(), 3u);
  const sim::Span* c = trace.find("campaign", "campaign", "c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->parent_id, 0u);
  auto children = trace.children_of(c->span_id);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0]->label, "run-1");
  ASSERT_EQ(children[0]->events.size(), 1u);
  EXPECT_EQ(children[0]->events[0].name, "note");
  EXPECT_EQ(children[0]->events[0].at.ns, t(1).ns);
  EXPECT_EQ(children[0]->events[0].attrs.at("k").as_string(), "v");
}

TEST(Tracer, EventOnUnknownSpanIsNoOp) {
  sim::Trace trace;
  Tracer tracer(&trace);
  tracer.event(42, "ghost", t(1));  // must not crash or record anything
  tracer.close(42, "x", t(0), t(1));
  EXPECT_TRUE(trace.spans().empty());
}

// ----------------------------------------------------------- exporters ----

TEST(Export, ChromeTraceIsWellFormedAndCausal) {
  sim::Trace trace;
  Tracer tracer(&trace);
  uint64_t parent = tracer.open("flow", "run-1");
  uint64_t child = tracer.open("transfer", "task-1", parent);
  tracer.event(child, "stalled", t(1), Json::object({{"why", "rate"}}));
  tracer.close(child, "active", t(0), t(2), {});
  tracer.close(parent, "run", t(0), t(3), {});

  auto doc = Json::parse(to_chrome_trace(trace));
  ASSERT_TRUE(doc) << doc.error().message;
  const Json& events = doc.value().at("traceEvents");
  ASSERT_TRUE(events.is_array());

  size_t complete = 0, instants = 0, meta = 0;
  uint64_t parent_of_child = 0;
  for (const auto& ev : events.as_array()) {
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") { ++meta; continue; }
    if (ph == "i") { ++instants; continue; }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_GE(ev.at("dur").as_double(-1), 0.0);
    if (ev.at("name").as_string() == "task-1") {
      parent_of_child =
          static_cast<uint64_t>(ev.at_path("args.parent_id").as_int());
      EXPECT_EQ(ev.at("ts").as_double(-1), 0.0);
      EXPECT_EQ(ev.at("dur").as_double(), 2e6);  // 2 s in microseconds
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_GE(meta, 2u);  // process name + one thread per component
  const sim::Span* p = trace.find("flow", "run", "run-1");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(parent_of_child, p->span_id);
}

TEST(Export, IdenticalTimestampsSerializeInStableOrder) {
  // Two traces holding the same spans recorded in opposite orders — as
  // parallel data-plane workers racing Trace::add would produce. All spans
  // share one integer-ns start; the sort key (start, span_id, seq) must make
  // both serializations identical.
  auto build = [](bool reversed) {
    auto trace = std::make_unique<sim::Trace>();
    std::vector<sim::Span> spans;
    for (uint64_t id = 1; id <= 4; ++id) {
      sim::Span s;
      s.component = "compute";
      s.category = "active";
      s.label = "worker-" + std::to_string(id);
      s.start = t(1);
      s.end = t(2);
      s.trace_id = 7;
      s.span_id = id;
      spans.push_back(std::move(s));
    }
    if (reversed) std::reverse(spans.begin(), spans.end());
    for (auto& s : spans) trace->add(std::move(s));
    return trace;
  };
  auto forward = build(false);
  auto reverse = build(true);
  EXPECT_EQ(forward->to_jsonl(), reverse->to_jsonl());
  EXPECT_EQ(to_chrome_trace(*forward), to_chrome_trace(*reverse));

  // Untraced spans (span_id 0) with equal stamps fall back to recording seq:
  // output preserves add() order and stays byte-stable across renders.
  sim::Trace ties;
  for (const char* label : {"first", "second"}) {
    sim::Span s;
    s.component = "flow";
    s.category = "overhead";
    s.label = label;
    s.start = t(3);
    s.end = t(4);
    ties.add(std::move(s));
  }
  std::string jsonl = ties.to_jsonl();
  EXPECT_LT(jsonl.find("first"), jsonl.find("second"));
  EXPECT_EQ(jsonl, ties.to_jsonl());
}

TEST(Export, SameStampSpanEventsKeepAppendOrder) {
  sim::Trace trace;
  Tracer tracer(&trace);
  uint64_t span = tracer.open("flow", "run-1");
  tracer.event(span, "breaker-open", t(5));
  tracer.event(span, "retry", t(5));      // same integer-ns stamp
  tracer.event(span, "earlier", t(2));    // out-of-order arrival
  tracer.close(span, "run", t(0), t(6), {});

  std::string jsonl = trace.to_jsonl();
  size_t early = jsonl.find("earlier");
  size_t breaker = jsonl.find("breaker-open");
  size_t retry = jsonl.find("retry");
  ASSERT_NE(early, std::string::npos);
  // Events sort by timestamp; the t(5) tie keeps append order.
  EXPECT_LT(early, breaker);
  EXPECT_LT(breaker, retry);

  std::string chrome = to_chrome_trace(trace);
  EXPECT_LT(chrome.find("earlier"), chrome.find("breaker-open"));
  EXPECT_LT(chrome.find("breaker-open"), chrome.find("\"retry\""));
}

TEST(Export, SummaryDecomposesStepsAndProviders) {
  sim::Trace trace;
  MetricsRegistry metrics;
  Tracer tracer(&trace);
  uint64_t run = tracer.open("flow", "run-1");
  uint64_t step = tracer.open("flow", "run-1/Transfer", run);
  tracer.close(step, "step", t(0), t(10),
               Json::object({{"active_s", 6.0}, {"step", "Transfer"}}));
  tracer.close(run, "run", t(0), t(11), {});
  metrics
      .counter("flow_breaker_transitions_total", "transitions",
               {{"provider", "transfer"}, {"to", "open"}})
      .inc(2);
  metrics
      .counter("flow_retries_total", "retries", {{"provider", "transfer"}})
      .inc(5);

  TelemetrySummary summary = summarize(trace, metrics);
  ASSERT_EQ(summary.steps.size(), 1u);
  EXPECT_EQ(summary.steps[0].step, "Transfer");
  EXPECT_DOUBLE_EQ(summary.steps[0].active.median, 6.0);
  EXPECT_DOUBLE_EQ(summary.steps[0].overhead.median, 4.0);
  ASSERT_EQ(summary.providers.size(), 1u);
  EXPECT_EQ(summary.providers[0].provider, "transfer");
  EXPECT_EQ(summary.providers[0].to_open, 2u);
  EXPECT_EQ(summary.providers[0].retries, 5u);
  EXPECT_EQ(summary.span_count, 2u);
  EXPECT_EQ(summary.traced_span_count, 2u);
}

// ------------------------------------------- breaker transition events ----

TEST(BreakerTelemetry, ObserverStampsTransitionTimes) {
  flow::BreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.cooldown_s = 30;
  flow::CircuitBreaker b(cfg);

  using State = flow::CircuitBreaker::State;
  struct Transition {
    State from, to;
    sim::SimTime at;
  };
  std::vector<Transition> seen;
  b.set_observer([&](State from, State to, sim::SimTime at) {
    seen.push_back({from, to, at});
  });

  b.record_failure(t(5));
  EXPECT_TRUE(seen.empty());  // below threshold: no transition yet
  b.record_failure(t(7));     // trips
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].from, State::Closed);
  EXPECT_EQ(seen[0].to, State::Open);
  EXPECT_EQ(seen[0].at.ns, t(7).ns);

  // The Open -> HalfOpen decay is lazy, but the observer timestamp must be
  // the moment the cooldown elapsed — not the later call that observed it.
  EXPECT_EQ(b.retry_after_s(t(100)), 0.0);  // claims the half-open probe
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].from, State::Open);
  EXPECT_EQ(seen[1].to, State::HalfOpen);
  EXPECT_EQ(seen[1].at.ns, t(37).ns);  // open at 7 + 30 s cooldown

  b.record_success(t(101));
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[2].from, State::HalfOpen);
  EXPECT_EQ(seen[2].to, State::Closed);
  EXPECT_EQ(seen[2].at.ns, t(101).ns);
}

/// Provider that refuses its first N starts (a service outage, as the fault
/// injector produces), then completes instantly.
class RefusingProvider final : public flow::ActionProvider {
 public:
  RefusingProvider(sim::Engine* engine, int refusals)
      : engine_(engine), refusals_(refusals) {}
  std::string name() const override { return "fake"; }

  util::Result<flow::ActionHandle> start(const Json&,
                                         const auth::Token&) override {
    if (refusals_ > 0) {
      --refusals_;
      return util::Result<flow::ActionHandle>::err("outage", "unavailable");
    }
    started_ = engine_->now();
    return util::Result<flow::ActionHandle>::ok("act-1");
  }

  flow::ActionPollResult poll(const flow::ActionHandle&) override {
    flow::ActionPollResult out;
    out.status = flow::ActionStatus::Succeeded;
    out.service_started = started_;
    out.service_completed = engine_->now();
    return out;
  }

 private:
  sim::Engine* engine_;
  int refusals_;
  sim::SimTime started_;
};

TEST(BreakerTelemetry, TransitionsBecomeSpanEventsUnderInjectedFaults) {
  sim::Engine engine;
  auth::AuthService auth;
  sim::Trace trace;
  Telemetry telemetry(&trace);

  flow::FlowServiceConfig cfg;
  cfg.latency_jitter_frac = 0.0;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_s = 20;
  flow::FlowService service(&engine, &auth, cfg, /*seed=*/3);
  service.set_telemetry(&telemetry);
  RefusingProvider provider(&engine, /*refusals=*/2);
  service.register_provider(&provider);
  auth::Token token = auth.issue("user@anl.gov", {"flows"});

  flow::ActionState step;
  step.name = "A";
  step.provider = "fake";
  step.max_retries = 5;
  step.params = Json::object();
  auto run = service.start(flow::FlowDefinition{"f", {step}}, Json(), token);
  ASSERT_TRUE(run) << run.error().message;
  engine.run();
  EXPECT_EQ(service.info(run.value()).state, flow::RunState::Succeeded);

  const sim::Span* span =
      trace.find("flow", "step", run.value() + "/A");
  ASSERT_NE(span, nullptr);
  auto event_at = [&](const std::string& name) {
    auto it = std::find_if(span->events.begin(), span->events.end(),
                           [&](const sim::SpanEvent& e) {
                             return e.name == name;
                           });
    return it == span->events.end() ? sim::SimTime{-1} : it->at;
  };

  sim::SimTime opened = event_at("breaker-open");
  sim::SimTime half = event_at("breaker-half_open");
  sim::SimTime closed = event_at("breaker-closed");
  ASSERT_GE(opened.ns, 0);
  ASSERT_GE(half.ns, 0);
  ASSERT_GE(closed.ns, 0);
  // The trip lands on the second refused start; the half-open probe window
  // opens exactly one cooldown later; recovery closes it when the probe's
  // dispatch succeeds.
  EXPECT_EQ(half.ns, opened.ns + sim::Duration::from_seconds(20).ns);
  EXPECT_GE(closed.ns, half.ns);
  // Deferral while open is also recorded, between the trip and the probe.
  sim::SimTime deferred = event_at("breaker-deferred");
  ASSERT_GE(deferred.ns, 0);
  EXPECT_GE(deferred.ns, opened.ns);
  EXPECT_LE(deferred.ns, half.ns);

  // The same transitions are counted per provider in the metrics registry.
  auto count = [&](const char* to) {
    return telemetry.metrics
        .counter("flow_breaker_transitions_total",
                 "Breaker state transitions, by provider and target state",
                 {{"provider", "fake"}, {"to", to}})
        .value();
  };
  EXPECT_EQ(count("open"), 1);
  EXPECT_EQ(count("half_open"), 1);
  EXPECT_EQ(count("closed"), 1);
}

// -------------------------------------- report-from-spans equivalence ----

core::FacilityConfig fast_config(const std::string& tag) {
  core::FacilityConfig fc;
  fc.artifact_dir = testing::TempDir() + "/telemetry_test_" + tag;
  fc.seed = 1234;
  fc.cost.provision_delay_s = 5.0;
  fc.cost.provision_jitter_s = 0.0;
  fc.cost.env_warmup_s = 1.0;
  fc.cost.env_warmup_jitter_s = 0.0;
  return fc;
}

TEST(ReportFromSpans, RunTimingRebuiltBitIdentical) {
  core::Facility facility(fast_config("rebuild"));
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Hyperspectral;
  cfg.duration_s = 400;
  cfg.file_bytes = 91'000'000;
  core::CampaignResult result = core::run_campaign(facility, cfg);
  ASSERT_FALSE(result.in_window.empty());

  size_t checked = 0;
  for (const flow::RunId& id : facility.flows().all_runs()) {
    const flow::RunTiming& svc = facility.flows().timing(id);
    flow::RunTiming rebuilt;
    ASSERT_TRUE(flow::timing_from_spans(facility.trace(), id, &rebuilt)) << id;
    EXPECT_EQ(rebuilt.submitted.ns, svc.submitted.ns) << id;
    EXPECT_EQ(rebuilt.finished.ns, svc.finished.ns) << id;
    ASSERT_EQ(rebuilt.steps.size(), svc.steps.size()) << id;
    for (size_t i = 0; i < svc.steps.size(); ++i) {
      const flow::StepTiming& a = rebuilt.steps[i];
      const flow::StepTiming& b = svc.steps[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.dispatched.ns, b.dispatched.ns);
      EXPECT_EQ(a.service_started.ns, b.service_started.ns);
      EXPECT_EQ(a.service_completed.ns, b.service_completed.ns);
      EXPECT_EQ(a.discovered.ns, b.discovered.ns);
      EXPECT_EQ(a.polls, b.polls);
      EXPECT_EQ(a.retries, b.retries);
      EXPECT_EQ(a.timeouts, b.timeouts);
      ++checked;
    }
  }
  EXPECT_GE(checked, 3u * result.in_window.size());
}

TEST(ReportFromSpans, RenderedReportsByteIdenticalToServiceTimings) {
  core::Facility facility(fast_config("render"));
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Hyperspectral;
  cfg.duration_s = 400;
  cfg.file_bytes = 91'000'000;
  // run_campaign fills CompletedFlow timings from the span tree; rebuild the
  // same result from the service's own bookkeeping and compare the reports.
  core::CampaignResult from_spans = core::run_campaign(facility, cfg);
  ASSERT_FALSE(from_spans.in_window.empty());
  core::CampaignResult from_service = from_spans;
  for (auto& f : from_service.in_window) {
    if (!f.id.empty()) f.timing = facility.flows().timing(f.id);
  }
  for (auto& f : from_service.late) {
    if (!f.id.empty()) f.timing = facility.flows().timing(f.id);
  }
  EXPECT_EQ(core::render_fig4(from_spans), core::render_fig4(from_service));
  EXPECT_EQ(core::flows_csv(from_spans), core::flows_csv(from_service));
  EXPECT_EQ(core::render_table1(from_spans, from_spans),
            core::render_table1(from_service, from_service));
}

TEST(ReportFromSpans, CampaignRootSpanEnclosesRuns) {
  core::Facility facility(fast_config("root"));
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Hyperspectral;
  cfg.duration_s = 300;
  cfg.file_bytes = 91'000'000;
  core::run_campaign(facility, cfg);

  const sim::Span* root =
      facility.trace().find("campaign", "campaign", "campaign");
  ASSERT_NE(root, nullptr);
  auto runs = facility.trace().select("flow", "run");
  ASSERT_FALSE(runs.empty());
  for (const sim::Span* run : runs) {
    EXPECT_EQ(run->parent_id, root->span_id);
    EXPECT_GE(run->start.ns, root->start.ns);
    EXPECT_LE(run->end.ns, root->end.ns);
  }
}

}  // namespace
}  // namespace pico::telemetry

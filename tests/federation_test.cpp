// Federation tests: fair-share admission control, telemetry-routed
// brokering, site-level chaos (outage / partition / brownout) through the
// fault DSL, checkpoint-resume failover that must NOT inherit the failed
// site's backoff/breaker state, cross-site chunk-manifest mirroring, and the
// chaos-vs-fault-free publish-index parity of the federated campaign.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "federation/campaign.hpp"
#include "federation/failover.hpp"
#include "federation/federation.hpp"
#include "federation/quota.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "portal/federation_page.hpp"
#include "storage/store.hpp"
#include "transfer/service.hpp"

namespace pico::federation {
namespace {

using util::Json;

/// Scriptable per-site provider: actions succeed after `duration_s` of
/// virtual time, the next `fail_next(n)` starts fail at poll, and start
/// counts/params are recorded per step key.
class ScriptedProvider final : public flow::ActionProvider {
 public:
  explicit ScriptedProvider(sim::Engine* engine) : engine_(engine) {}

  std::string name() const override { return "work"; }

  util::Result<flow::ActionHandle> start(const Json& params,
                                         const auth::Token&) override {
    Action a;
    a.started = engine_->now();
    a.duration_ns =
        static_cast<int64_t>(params.at("duration_s").as_double(1.0) * 1e9);
    a.key = params.at("key").as_string("?");
    if (fail_budget_ > 0) {
      fail_budget_--;
      a.fail = true;
    }
    starts_by_key_[a.key]++;
    last_params_[a.key] = params;
    actions_.push_back(a);
    return util::Result<flow::ActionHandle>::ok(
        std::to_string(actions_.size() - 1));
  }

  flow::ActionPollResult poll(const flow::ActionHandle& handle) override {
    flow::ActionPollResult out;
    const Action& a = actions_[std::stoull(handle)];
    if ((engine_->now() - a.started).ns < a.duration_ns) {
      out.status = flow::ActionStatus::Active;
      return out;
    }
    if (a.fail) {
      out.status = flow::ActionStatus::Failed;
      out.error = "scripted failure";
      return out;
    }
    out.status = flow::ActionStatus::Succeeded;
    out.service_started = a.started;
    out.service_completed = a.started + sim::Duration{a.duration_ns};
    out.output = Json::object({{"ok", true}});
    return out;
  }

  void fail_next(int n) { fail_budget_ += n; }
  int starts_for(const std::string& key) const {
    auto it = starts_by_key_.find(key);
    return it == starts_by_key_.end() ? 0 : it->second;
  }
  int starts_total() const {
    int n = 0;
    for (const auto& [k, v] : starts_by_key_) {
      (void)k;
      n += v;
    }
    return n;
  }
  const Json& last_params(const std::string& key) { return last_params_[key]; }

 private:
  struct Action {
    sim::SimTime started;
    int64_t duration_ns = 0;
    std::string key;
    bool fail = false;
  };
  sim::Engine* engine_;
  std::vector<Action> actions_;
  std::map<std::string, int> starts_by_key_;
  std::map<std::string, Json> last_params_;
  int fail_budget_ = 0;
};

/// One broker-visible site: its own auth domain, orchestrator (with its own
/// breakers), and provider — replicated per-facility state on one shared
/// engine.
struct TestSite {
  std::string name;
  auth::AuthService auth;
  flow::FlowService flows;
  ScriptedProvider work;
  auth::Token token;

  TestSite(const std::string& n, sim::Engine* engine,
           flow::FlowServiceConfig cfg = {})
      : name(n), flows(engine, &auth, cfg), work(engine) {
    flows.set_site(n);
    flows.register_provider(&work);
    token = auth.issue("broker@" + n, {"flows"});
  }

  Site site(sim::Engine* engine) {
    Site s;
    s.name = name;
    s.engine = engine;
    s.flows = &flows;
    s.token = token;
    return s;
  }
};

std::shared_ptr<const flow::FlowDefinition> make_def(
    double a_s, double b_s, double c_s, bool with_optional = false) {
  auto def = std::make_shared<flow::FlowDefinition>();
  def->name = "fed-test";
  auto step = [](const char* key, double duration) {
    flow::ActionState s;
    s.name = key;
    s.provider = "work";
    s.params = Json::object({{"duration_s", duration}, {"key", key}});
    s.max_retries = 2;
    return s;
  };
  def->steps = {step("A", a_s), step("B", b_s), step("C", c_s)};
  if (with_optional) {
    flow::ActionState opt = step("Opt", 1.0);
    opt.optional = true;
    def->steps.push_back(opt);
  }
  return def;
}

/// Low-latency, jitter-free orchestrator config so test timings are easy to
/// reason about.
flow::FlowServiceConfig quick_flow_config() {
  flow::FlowServiceConfig cfg;
  cfg.start_latency_s = 0.5;
  cfg.inter_step_latency_s = 0.5;
  cfg.latency_jitter_frac = 0.0;
  return cfg;
}

// ------------------------------------------------------------- quotas ----

TEST(FederationQuota, JainIndexBounds) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({7, 7, 7, 7}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({1, 0, 0, 0}), 0.25);  // one-hot: 1/n
  EXPECT_NEAR(jain_index({4, 2, 2}), 0.889, 0.01);
}

TEST(FederationQuota, WeightedFairShareAdmission) {
  QuotaConfig qc;
  qc.max_inflight_total = 10;
  qc.min_user_inflight = 1;
  FairShareQuotas q(qc);
  q.set_weight("alice", 1.0);
  q.set_weight("bob", 1.0);
  EXPECT_EQ(q.user_share("alice"), 5u);

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.admit("alice"));
    q.on_admitted("alice");
  }
  EXPECT_FALSE(q.admit("alice"));  // per-user share exhausted
  EXPECT_TRUE(q.admit("bob"));     // bob's share untouched
  for (int i = 0; i < 5; ++i) q.on_admitted("bob");
  EXPECT_FALSE(q.admit("bob"));  // global ceiling
  EXPECT_DOUBLE_EQ(q.load_frac(), 1.0);

  q.on_released("alice", true);
  EXPECT_TRUE(q.admit("alice"));
  EXPECT_EQ(q.completed("alice"), 1u);
}

TEST(FederationQuota, MinFloorKeepsLightUsersAdmissible) {
  QuotaConfig qc;
  qc.max_inflight_total = 1000;
  qc.min_user_inflight = 4;
  FairShareQuotas q(qc);
  q.set_weight("whale", 10000.0);
  q.set_weight("minnow", 0.001);
  EXPECT_GE(q.user_share("minnow"), 4u);
  EXPECT_TRUE(q.admit("minnow"));
}

// ------------------------------------------------------------- routing ----

TEST(FederationBroker, RoutesByQueueDepth) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  TestSite west("west", &engine, quick_flow_config());
  BrokerConfig bc;
  bc.quota.max_inflight_total = 100;
  Broker broker(bc);
  broker.add_site(east.site(&engine));
  broker.add_site(west.site(&engine));

  auto def = make_def(5, 5, 5);
  std::vector<std::string> routed;
  for (int i = 0; i < 4; ++i) {
    auto out = broker.submit(def, Json::object(), "user-" + std::to_string(i));
    ASSERT_TRUE(out.admitted);
    routed.push_back(out.site);
  }
  // Tie-break picks east first; each launch bumps its queue penalty, so
  // admissions alternate.
  EXPECT_EQ(routed, (std::vector<std::string>{"east", "west", "east", "west"}));
  engine.run();
  EXPECT_EQ(broker.stats().completed, 4u);
}

TEST(FederationBroker, OpenBreakerRepelsRoutingButOnlyAtItsOwnSite) {
  sim::Engine engine;
  auto cfg = quick_flow_config();
  cfg.breaker.failure_threshold = 2;
  TestSite east("east", &engine, cfg);
  TestSite west("west", &engine, cfg);
  Broker broker(BrokerConfig{});
  broker.add_site(east.site(&engine));
  broker.add_site(west.site(&engine));

  auto def = make_def(1, 1, 1);
  // Trip east's breaker: scripted failures burn the first flow's retries.
  east.work.fail_next(100);
  broker.submit(def, Json::object(), "u0");
  engine.run();
  east.work.fail_next(0);

  // Site-qualified snapshots: east's breaker is open, west's untouched.
  bool saw_east_open = false;
  for (const auto& snap : east.flows.breaker_snapshots()) {
    if (snap.provider == "work") {
      EXPECT_EQ(snap.site, "east");
      EXPECT_GE(snap.trips, 1);
      saw_east_open = true;
    }
  }
  EXPECT_TRUE(saw_east_open);
  // One facility's open breaker must not suppress the healthy peer: scoring
  // penalizes east only, and a fresh submission routes west.
  EXPECT_LT(broker.route_score(0, *def), broker.route_score(1, *def));
  auto out = broker.submit(def, Json::object(), "u1");
  ASSERT_TRUE(out.admitted);
  EXPECT_EQ(out.site, "west");
  engine.run();
}

// ---------------------------------------------------- admission control ----

TEST(FederationBroker, RejectsOverQuotaWithRetryAfter) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  BrokerConfig bc;
  bc.quota.max_inflight_total = 4;
  bc.quota.min_user_inflight = 1;
  bc.reject_retry_after_s = 10.0;
  Broker broker(bc);
  broker.add_site(east.site(&engine));

  auto def = make_def(2, 2, 2);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(broker.submit(def, Json::object(), "heavy").admitted);
  auto rejected = broker.submit(def, Json::object(), "heavy");
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reason, "quota");
  EXPECT_GE(rejected.retry_after_s, 10.0);
  EXPECT_LT(rejected.retry_after_s, 20.0);
  EXPECT_EQ(broker.stats().rejected, 1u);

  engine.run();  // drain: quota released
  EXPECT_TRUE(broker.submit(def, Json::object(), "heavy").admitted);
  engine.run();
  EXPECT_EQ(broker.stats().completed, 5u);
}

// ------------------------------------------------------------ brownout ----

TEST(FederationBroker, BrownoutShedsOptionalStepsFirst) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  Broker broker(BrokerConfig{});
  broker.add_site(east.site(&engine));
  auto def = make_def(1, 1, 1, /*with_optional=*/true);

  broker.apply_site_fault(fault::FaultKind::SiteBrownout, "east", 0.5, true);
  ASSERT_TRUE(broker.submit(def, Json::object(), "u").admitted);
  engine.run();
  EXPECT_EQ(broker.stats().completed, 1u);
  EXPECT_EQ(broker.stats().optional_dropped, 1u);
  EXPECT_EQ(east.work.starts_for("Opt"), 0);  // shed
  EXPECT_EQ(east.work.starts_for("C"), 1);    // required steps intact

  broker.apply_site_fault(fault::FaultKind::SiteBrownout, "east", 0.5, false);
  ASSERT_TRUE(broker.submit(def, Json::object(), "u").admitted);
  engine.run();
  EXPECT_EQ(east.work.starts_for("Opt"), 1);  // healed: full quality again
}

// ------------------------------------------------------------ failover ----

TEST(FederationBroker, SiteOutageFailsOverAndResumesAtPeer) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  TestSite west("west", &engine, quick_flow_config());
  Broker broker(BrokerConfig{});
  broker.add_site(east.site(&engine));
  broker.add_site(west.site(&engine));

  auto def = make_def(5, 30, 5);
  bool done = false, ok = false;
  auto out = broker.submit(def, Json::object(), "u", "exp-1",
                           [&](bool success) {
                             done = true;
                             ok = success;
                           });
  ASSERT_TRUE(out.admitted);
  EXPECT_EQ(out.site, "east");

  // Let step A complete and step B go active, then kill the site.
  engine.run_until(sim::SimTime::from_seconds(20));
  ASSERT_EQ(east.work.starts_for("B"), 1);
  broker.apply_site_fault(fault::FaultKind::SiteOutage, "east", 0, true);
  engine.run();

  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  BrokerStats s = broker.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_GE(s.failovers, 1u);
  EXPECT_GE(s.resumed, 1u);  // skipped at least one completed step
  EXPECT_GT(s.recovery_s, 0.0);
  // The checkpoint carried step A's output: west re-ran B and C only.
  EXPECT_EQ(west.work.starts_for("A"), 0);
  EXPECT_EQ(west.work.starts_for("B"), 1);
  EXPECT_EQ(west.work.starts_for("C"), 1);
}

// The satellite regression: a failover attempt must start with a fresh
// epoch, fresh backoff, and the peer's own (closed) breakers — never the
// failed site's accumulated retry/breaker state.
TEST(FederationBroker, FailoverDoesNotInheritBackoffOrBreakerState) {
  sim::Engine engine;
  auto cfg = quick_flow_config();
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_s = 5.0;
  TestSite east("east", &engine, cfg);
  TestSite west("west", &engine, cfg);
  Broker broker(BrokerConfig{});
  broker.add_site(east.site(&engine));
  broker.add_site(west.site(&engine));

  // Everything east dispatches fails: the first flow burns its retries
  // there, trips east's breaker, and the broker fails it over.
  east.work.fail_next(100);
  auto def = make_def(1, 1, 1);
  bool ok = false;
  ASSERT_TRUE(
      broker.submit(def, Json::object(), "u", "", [&](bool s) { ok = s; })
          .admitted);
  engine.run();

  EXPECT_TRUE(ok);
  EXPECT_GE(broker.stats().failovers, 1u);
  // East's breaker tripped (site-qualified)...
  int east_trips = 0;
  for (const auto& snap : east.flows.breaker_snapshots())
    if (snap.provider == "work") east_trips = snap.trips;
  EXPECT_GE(east_trips, 1);
  // ...but the resumed attempt at west saw a clean slate: closed breaker,
  // zero trips, zero retries on every step it ran.
  for (const auto& snap : west.flows.breaker_snapshots()) {
    EXPECT_EQ(snap.site, "west");
    EXPECT_EQ(snap.trips, 0);
    EXPECT_EQ(snap.state, "closed");
  }
  auto west_runs = west.flows.all_runs();
  ASSERT_EQ(west_runs.size(), 1u);
  for (const auto& st : west.flows.timing(west_runs[0]).steps) {
    EXPECT_EQ(st.retries, 0);
    EXPECT_EQ(st.timeouts, 0);
  }
}

TEST(FederationBroker, PartitionDefersCompletionUntilHeal) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  TestSite west("west", &engine, quick_flow_config());
  Broker broker(BrokerConfig{});
  broker.add_site(east.site(&engine));
  broker.add_site(west.site(&engine));

  auto def = make_def(2, 2, 2);
  bool done = false;
  ASSERT_TRUE(broker
                  .submit(def, Json::object(), "u", "",
                          [&](bool) { done = true; })
                  .admitted);
  engine.run_until(sim::SimTime::from_seconds(1));
  broker.apply_site_fault(fault::FaultKind::SitePartition, "east", 0, true);

  // New work routes around the partitioned site.
  auto rerouted = broker.submit(def, Json::object(), "u2");
  ASSERT_TRUE(rerouted.admitted);
  EXPECT_EQ(rerouted.site, "west");

  engine.run();
  // The flow finished at east, but the broker cannot see it yet.
  EXPECT_FALSE(done);
  EXPECT_EQ(broker.stats().completed, 1u);  // only west's flow

  broker.apply_site_fault(fault::FaultKind::SitePartition, "east", 0, false);
  EXPECT_TRUE(done);
  EXPECT_EQ(broker.stats().completed, 2u);
  EXPECT_EQ(broker.stats().reconciled, 1u);
}

TEST(FederationBroker, AllSitesDarkParksFlowsUntilHeal) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  Broker broker(BrokerConfig{});
  broker.add_site(east.site(&engine));

  auto def = make_def(5, 5, 5);
  bool ok = false;
  ASSERT_TRUE(
      broker.submit(def, Json::object(), "u", "", [&](bool s) { ok = s; })
          .admitted);
  engine.run_until(sim::SimTime::from_seconds(2));
  broker.apply_site_fault(fault::FaultKind::SiteOutage, "east", 0, true);
  engine.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(broker.stats().parked, 1u);  // nowhere to go: parked, not failed

  broker.apply_site_fault(fault::FaultKind::SiteOutage, "east", 0, false);
  engine.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(broker.stats().completed, 1u);
}

// --------------------------------------------------- fault DSL + hooks ----

TEST(FederationFault, SiteKindsParseValidateAndDispatch) {
  auto parsed = fault::FaultSchedule::from_text(R"({
    "name": "site-chaos",
    "events": [
      {"kind": "site_outage", "at_s": 10, "duration_s": 5, "target": "east"},
      {"kind": "site_partition", "at_s": 2, "duration_s": 3, "target": "west"},
      {"kind": "site_brownout", "at_s": 1, "duration_s": 8, "target": "east",
       "severity": 0.4}
    ]})");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed.value().events[0].kind, fault::FaultKind::SiteOutage);
  EXPECT_EQ(fault::fault_kind_name(fault::FaultKind::SitePartition),
            "site_partition");

  // Brownout severity is a derate fraction: (0, 1] only.
  auto bad = fault::FaultSchedule::from_text(
      R"({"events": [{"kind": "site_brownout", "at_s": 0, "severity": 1.5}]})");
  EXPECT_FALSE(bad);
  auto zero = fault::FaultSchedule::from_text(
      R"({"events": [{"kind": "site_brownout", "at_s": 0, "severity": 0}]})");
  EXPECT_FALSE(zero);

  // The injector delivers site kinds through the site hook, ref-counting
  // overlapping windows to first-begin / last-end.
  sim::Engine engine;
  struct Call {
    fault::FaultKind kind;
    std::string site;
    double severity;
    bool begin;
  };
  std::vector<Call> calls;
  fault::FaultInjector::Services services;
  services.engine = &engine;
  services.site_hook = [&](fault::FaultKind kind, const std::string& site,
                           double severity, bool begin) {
    calls.push_back({kind, site, severity, begin});
  };
  fault::FaultInjector injector(services);
  fault::FaultSchedule overlapping;
  overlapping.add({fault::FaultKind::SiteOutage, 10, 10, "east", 0});
  overlapping.add({fault::FaultKind::SiteOutage, 15, 10, "east", 0});
  ASSERT_TRUE(injector.install(overlapping));
  engine.run();
  ASSERT_EQ(calls.size(), 2u);  // one begin (t=10), one end (t=25)
  EXPECT_TRUE(calls[0].begin);
  EXPECT_FALSE(calls[1].begin);
  EXPECT_EQ(calls[1].site, "east");

  // Site kinds without a hook are a configuration error.
  fault::FaultInjector::Services no_hook;
  sim::Engine engine2;
  no_hook.engine = &engine2;
  fault::FaultInjector bare(no_hook);
  EXPECT_FALSE(bare.install(overlapping));
}

// ------------------------------------------- checkpoint/resume plumbing ----

TEST(FederationFailover, CheckpointResumeResolvesStepReferences) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  TestSite west("west", &engine, quick_flow_config());

  // Step B consumes step A's output through a "$.steps" reference — the
  // checkpoint must carry completed-step outputs for the peer to resolve it.
  auto def = std::make_shared<flow::FlowDefinition>();
  def->name = "ref-flow";
  flow::ActionState a;
  a.name = "A";
  a.provider = "work";
  a.params = Json::object({{"duration_s", 2.0}, {"key", "A"}});
  flow::ActionState b;
  b.name = "B";
  b.provider = "work";
  b.params = Json::object(
      {{"duration_s", 2.0}, {"key", "B"}, {"from_a", "$.steps.A.ok"}});
  def->steps = {a, b};
  std::shared_ptr<const flow::FlowDefinition> cdef = def;

  auto run = east.flows.start(cdef, Json::object({{"x", 1}}), east.token);
  ASSERT_TRUE(run);
  // Past step A's completion, before B settles.
  engine.run_until(sim::SimTime::from_seconds(6));
  auto cp = capture_checkpoint(east.site(&engine), run.value());
  ASSERT_TRUE(cp);
  EXPECT_EQ(cp.value().flow, "ref-flow");
  ASSERT_GE(cp.value().start_step, 1u);
  ASSERT_TRUE(east.flows.cancel(run.value()));

  auto resumed = resume_at(west.site(&engine), cdef, cp.value(), "resumed");
  ASSERT_TRUE(resumed);
  engine.run();
  EXPECT_EQ(west.flows.info(resumed.value()).state,
            flow::RunState::Succeeded);
  EXPECT_EQ(west.work.starts_for("A"), 0);
  EXPECT_TRUE(west.work.last_params("B").at("from_a").as_bool(false));
  // Timing stays indexable: skipped steps are zero-duration placeholders.
  const auto& steps = west.flows.timing(resumed.value()).steps;
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].active_s(), 0.0);
  EXPECT_GT(steps[1].active_s(), 0.0);
}

TEST(FederationFailover, ResumeRejectsMismatchedDefinition) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  flow::RunCheckpoint cp;
  cp.flow = "some-other-flow";
  cp.start_step = 0;
  auto def = make_def(1, 1, 1);
  EXPECT_FALSE(east.flows.resume(def, cp, east.token));
  cp.flow = def->name;
  cp.start_step = 99;  // out of range
  EXPECT_FALSE(east.flows.resume(def, cp, east.token));
}

// ------------------------------------------------- manifest mirroring ----

TEST(FederationFailover, MirroredManifestsResumeChunksAtPeer) {
  sim::Engine engine;
  auth::AuthService auth;
  auto make_site = [&](net::Topology& topo, storage::Store& src,
                       storage::Store& dst,
                       std::unique_ptr<net::Network>& network,
                       std::unique_ptr<transfer::TransferService>& service) {
    net::NodeId na = topo.add_node("src");
    net::NodeId nb = topo.add_node("dst");
    topo.add_link(na, nb, 80e6);
    network = std::make_unique<net::Network>(&engine, &topo);
    transfer::TransferConfig cfg;
    cfg.setup_mean_s = 1.0;
    cfg.setup_jitter_s = 0.0;
    cfg.per_file_overhead_s = 0.1;
    cfg.settle_base_s = 0.2;
    cfg.settle_per_gb_s = 0.0;
    cfg.cap_jitter_frac = 0.0;
    service = std::make_unique<transfer::TransferService>(&engine,
                                                          network.get(), &auth,
                                                          cfg, 42);
    // Same endpoint names at both sites: transfer identities (and so chunk
    // manifests) match across the federation.
    service->register_endpoint("ep-src", na, &src);
    service->register_endpoint("ep-dst", nb, &dst);
  };

  net::Topology topo_a, topo_b;
  storage::Store src_a{"src-a", static_cast<int64_t>(1e12)};
  storage::Store dst_a{"dst-a", static_cast<int64_t>(1e12)};
  storage::Store src_b{"src-b", static_cast<int64_t>(1e12)};
  storage::Store dst_b{"dst-b", static_cast<int64_t>(1e12)};
  std::unique_ptr<net::Network> net_a, net_b;
  std::unique_ptr<transfer::TransferService> svc_a, svc_b;
  make_site(topo_a, src_a, dst_a, net_a, svc_a);
  make_site(topo_b, src_b, dst_b, net_b, svc_b);
  auth::Token token = auth.issue("user@anl.gov", {"transfer"});

  // The same acquisition is staged at both sites (same size, declared CRC,
  // and stamp), as the detector fan-out does.
  ASSERT_TRUE(src_a.put_virtual("r.emd", 10'000'000, 9, engine.now()));
  ASSERT_TRUE(src_b.put_virtual("r.emd", 10'000'000, 9, engine.now()));

  transfer::TransferRequest req;
  req.src_endpoint = "ep-src";
  req.dst_endpoint = "ep-dst";
  req.files = {{"r.emd", "r.emd"}};
  req.streaming_chunk_bytes = 2'000'000;  // 5 chunks
  auto first = svc_a->submit(req, token);
  ASSERT_TRUE(first);
  engine.run();
  ASSERT_EQ(svc_a->status(first.value()).state,
            transfer::TaskState::Succeeded);

  // Site A dies; its manifests are mirrored to B. B's re-issued transfer
  // resumes every verified chunk instead of moving the bytes again.
  util::Json exported = svc_a->export_manifests();
  EXPECT_GE(exported.size(), 1u);
  EXPECT_GE(svc_b->import_manifests(exported), 1u);
  EXPECT_EQ(svc_b->import_manifests(exported), 0u);  // idempotent

  auto second = svc_b->submit(req, token);
  ASSERT_TRUE(second);
  engine.run();
  transfer::TaskInfo info = svc_b->status(second.value());
  EXPECT_EQ(info.state, transfer::TaskState::Succeeded);
  EXPECT_EQ(info.chunks_resumed, 5);
  EXPECT_EQ(info.wire_bytes, 0);
}

// ------------------------------------------------- campaign + portal ----

TEST(FederationCampaign, ChaosCampaignMatchesFaultFreeFingerprint) {
  FederatedCampaignConfig cfg;
  cfg.flows = 300;
  cfg.users = 20;
  cfg.arrival_window_s = 300;
  cfg.transfer_s = 10;
  cfg.analyze_s = 20;
  cfg.broker.quota.max_inflight_total = 200;

  FederatedCampaignResult clean = run_federated_campaign(cfg);
  EXPECT_EQ(clean.completed, cfg.flows);
  EXPECT_EQ(clean.broker.failovers, 0u);
  EXPECT_GT(clean.jain_fairness, 0.95);

  FederatedCampaignConfig chaos_cfg = cfg;
  chaos_cfg.chaos.add(
      {fault::FaultKind::SiteOutage, 150, 200, "alcf-east", 0});
  chaos_cfg.chaos.add(
      {fault::FaultKind::SiteBrownout, 100, 100, "alcf-west", 0.5});
  FederatedCampaignResult chaos = run_federated_campaign(chaos_cfg);
  EXPECT_EQ(chaos.completed, cfg.flows);
  EXPECT_GE(chaos.completion_frac(), 0.99);
  EXPECT_GT(chaos.broker.failovers, 0u);
  EXPECT_GT(chaos.broker.recovery_s, 0.0);
  // Same flows, same published records: the federated index is bit-identical
  // to the fault-free run despite the mid-campaign site kill.
  EXPECT_EQ(chaos.fingerprint, clean.fingerprint);
  EXPECT_GT(chaos.jain_fairness, 0.9);
}

TEST(FederationPortal, RendersBrokerReport) {
  sim::Engine engine;
  TestSite east("east", &engine, quick_flow_config());
  Broker broker(BrokerConfig{});
  broker.add_site(east.site(&engine));
  auto def = make_def(1, 1, 1);
  broker.submit(def, Json::object(), "u");
  engine.run();

  std::string html = portal::render_federation_html(broker.report());
  EXPECT_NE(html.find("Federation broker"), std::string::npos);
  EXPECT_NE(html.find("east"), std::string::npos);
  EXPECT_NE(html.find("Failovers"), std::string::npos);
  EXPECT_NE(html.find("Jain fairness"), std::string::npos);
}

}  // namespace
}  // namespace pico::federation

// Flow engine tests with a scriptable fake provider: serial execution,
// parameter templating, polling backoff behaviour (including the paper's
// overhead accounting), retries, failures, progress-token resets.
#include <gtest/gtest.h>

#include <map>

#include "flow/backoff.hpp"
#include "flow/service.hpp"

namespace pico::flow {
namespace {

using util::Json;

/// Scriptable provider: each started action succeeds after a fixed virtual
/// duration (from params "duration_s"), optionally failing "fail_times"
/// first. Emits progress tokens per params.
class FakeProvider final : public ActionProvider {
 public:
  explicit FakeProvider(sim::Engine* engine) : engine_(engine) {}

  std::string name() const override { return "fake"; }

  util::Result<ActionHandle> start(const Json& params,
                                   const auth::Token&) override {
    start_attempts_ += 1;
    if (params.at("refuse_start").as_bool(false)) {
      return util::Result<ActionHandle>::err("refused", "test");
    }
    int rkey = static_cast<int>(params.at("refuse_key").as_int(-1));
    if (rkey >= 0 && refuse_budget_.count(rkey) && refuse_budget_[rkey] > 0) {
      refuse_budget_[rkey] -= 1;
      return util::Result<ActionHandle>::err("refused", "test");
    }
    std::string handle = "act-" + std::to_string(next_++);
    Action action;
    action.started = engine_->now();
    action.duration = params.at("duration_s").as_double(1.0);
    action.params = params;
    int key = static_cast<int>(params.at("fail_key").as_int(-1));
    if (key >= 0 && fail_budget_.count(key) && fail_budget_[key] > 0) {
      fail_budget_[key] -= 1;
      action.fail = true;
    }
    int skey = static_cast<int>(params.at("slow_key").as_int(-1));
    if (skey >= 0 && slow_budget_.count(skey) && slow_budget_[skey].times > 0) {
      slow_budget_[skey].times -= 1;
      action.duration = slow_budget_[skey].duration_s;
    }
    actions_[handle] = action;
    starts_ += 1;
    return util::Result<ActionHandle>::ok(handle);
  }

  ActionPollResult poll(const ActionHandle& handle) override {
    polls_ += 1;
    ActionPollResult out;
    auto it = actions_.find(handle);
    if (it == actions_.end()) {
      out.status = ActionStatus::Failed;
      out.error = "unknown handle";
      return out;
    }
    const Action& a = it->second;
    double elapsed = (engine_->now() - a.started).seconds();
    if (elapsed < a.duration) {
      out.status = ActionStatus::Active;
      if (a.params.at("emit_progress").as_bool(false)) {
        // Token changes at 10% steps of the duration.
        out.progress_token = "p" + std::to_string(
            static_cast<int>(10 * elapsed / a.duration));
      }
      return out;
    }
    if (a.fail) {
      out.status = ActionStatus::Failed;
      out.error = "scripted failure";
      return out;
    }
    out.status = ActionStatus::Succeeded;
    out.service_started = a.started;
    out.service_completed =
        a.started + sim::Duration::from_seconds(a.duration);
    out.output = Json::object({{"echo", a.params.at("tag")}});
    return out;
  }

  void set_fail_budget(int key, int times) { fail_budget_[key] = times; }
  /// Refuse the next `times` starts for actions carrying this "refuse_key".
  void set_refuse_budget(int key, int times) { refuse_budget_[key] = times; }
  /// Make the next `times` starts for this "slow_key" run `duration_s`
  /// instead of the scripted duration (to exercise per-step timeouts).
  void set_slow_budget(int key, int times, double duration_s) {
    slow_budget_[key] = SlowBudget{times, duration_s};
  }
  int starts() const { return starts_; }
  int start_attempts() const { return start_attempts_; }
  int polls() const { return polls_; }

 private:
  struct Action {
    sim::SimTime started;
    double duration = 0;
    bool fail = false;
    Json params;
  };
  struct SlowBudget {
    int times = 0;
    double duration_s = 0;
  };
  sim::Engine* engine_;
  std::map<ActionHandle, Action> actions_;
  std::map<int, int> fail_budget_;
  std::map<int, int> refuse_budget_;
  std::map<int, SlowBudget> slow_budget_;
  uint64_t next_ = 1;
  int starts_ = 0;        ///< successful starts
  int start_attempts_ = 0;///< all start calls, including refusals
  int polls_ = 0;
};

struct FlowFixture : ::testing::Test {
  sim::Engine engine;
  auth::AuthService auth;
  std::unique_ptr<FakeProvider> provider;
  std::unique_ptr<FlowService> service;
  auth::Token token;

  void setup(FlowServiceConfig cfg = {}) {
    // Deterministic latencies for timing assertions.
    cfg.latency_jitter_frac = 0.0;
    service = std::make_unique<FlowService>(&engine, &auth, cfg, 3);
    provider = std::make_unique<FakeProvider>(&engine);
    service->register_provider(provider.get());
    token = auth.issue("user@anl.gov", {"flows"});
  }

  static ActionState step(const std::string& name, double duration,
                          Json extra = Json::object()) {
    ActionState s;
    s.name = name;
    s.provider = "fake";
    Json params = Json::object({
        {"duration_s", duration},
        {"tag", name},
        {"fail_key", -1},
        {"emit_progress", false},
        {"refuse_start", false},
    });
    for (const auto& [k, v] : extra.as_object()) params[k] = v;
    s.params = params;
    return s;
  }
};

TEST_F(FlowFixture, RequiresFlowScope) {
  setup();
  FlowDefinition def{"f", {step("A", 1)}};
  EXPECT_FALSE(service->start(def, Json(), "bad"));
  auth::Token wrong = auth.issue("u", {"transfer"});
  EXPECT_FALSE(service->start(def, Json(), wrong));
  EXPECT_TRUE(service->start(def, Json(), token));
}

TEST_F(FlowFixture, RejectsEmptyAndUnknownProvider) {
  setup();
  EXPECT_FALSE(service->start(FlowDefinition{"empty", {}}, Json(), token));
  ActionState bad;
  bad.name = "X";
  bad.provider = "nope";
  EXPECT_FALSE(
      service->start(FlowDefinition{"f", {bad}}, Json(), token));
}

TEST_F(FlowFixture, SerialStepsAllRunInOrder) {
  setup();
  FlowDefinition def{"three", {step("A", 1), step("B", 2), step("C", 1)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Succeeded);
  const RunTiming& timing = service->timing(run.value());
  ASSERT_EQ(timing.steps.size(), 3u);
  EXPECT_EQ(timing.steps[0].name, "A");
  EXPECT_EQ(timing.steps[2].name, "C");
  // Serial: B dispatches after A's discovery.
  EXPECT_GE(timing.steps[1].dispatched.ns, timing.steps[0].discovered.ns);
  EXPECT_NEAR(timing.active_s(), 4.0, 1e-6);
  EXPECT_GT(timing.overhead_s(), 0.0);
  EXPECT_NEAR(timing.total_s(), timing.active_s() + timing.overhead_s(), 1e-9);
}

TEST_F(FlowFixture, StepOutputsFeedLaterParams) {
  setup();
  FlowDefinition def{"chained", {step("A", 0.5)}};
  ActionState b = step("B", 0.5);
  b.params["tag"] = "$.steps.A.echo";  // templating from step A's output
  def.steps.push_back(b);
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Succeeded);
  // B echoed A's echo: "A".
  EXPECT_EQ(info.step_outputs.at("B").at("echo").as_string(), "A");
}

TEST_F(FlowFixture, InputTemplating) {
  setup();
  FlowDefinition def{"in", {step("A", 0.1)}};
  def.steps[0].params["tag"] = "$.input.nested.value";
  auto run = service->start(
      def, Json::object({{"nested", Json::object({{"value", "hello"}})}}),
      token, "labelled");
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.step_outputs.at("A").at("echo").as_string(), "hello");
  EXPECT_EQ(info.label, "labelled");
}

TEST(ResolveParams, HandlesAllShapes) {
  Json input = Json::object({{"a", 1}, {"b", Json::object({{"c", "x"}})}});
  std::map<std::string, Json> steps;
  steps["S"] = Json::object({{"out", 42}});

  EXPECT_EQ(FlowService::resolve_params(Json("$.input"), input, steps), input);
  EXPECT_EQ(FlowService::resolve_params(Json("$.input.b.c"), input, steps)
                .as_string(),
            "x");
  EXPECT_EQ(FlowService::resolve_params(Json("$.steps.S.out"), input, steps)
                .as_int(),
            42);
  EXPECT_EQ(FlowService::resolve_params(Json("$.steps.S"), input, steps),
            steps["S"]);
  // Unknown references resolve to null rather than erroring.
  EXPECT_TRUE(FlowService::resolve_params(Json("$.steps.Z.q"), input, steps)
                  .is_null());
  // Non-reference strings and scalars pass through.
  EXPECT_EQ(FlowService::resolve_params(Json("plain"), input, steps)
                .as_string(),
            "plain");
  EXPECT_EQ(FlowService::resolve_params(Json(7), input, steps).as_int(), 7);
  // Nested containers resolve recursively.
  Json nested = Json::object(
      {{"k", Json::array({Json("$.input.a"), Json("$.steps.S.out")})}});
  Json resolved = FlowService::resolve_params(nested, input, steps);
  EXPECT_EQ(resolved.at("k")[0].as_int(), 1);
  EXPECT_EQ(resolved.at("k")[1].as_int(), 42);
}

TEST_F(FlowFixture, FailedStepFailsRunWithoutRetries) {
  setup();
  provider->set_fail_budget(1, 1);
  FlowDefinition def{"failing", {step("A", 0.5, Json::object({{"fail_key", 1}}))}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Failed);
  EXPECT_NE(info.error.find("scripted failure"), std::string::npos);
}

TEST_F(FlowFixture, RetriesRecoverFromTransientFailures) {
  setup();
  provider->set_fail_budget(2, 2);  // fail twice, then succeed
  ActionState s = step("A", 0.5, Json::object({{"fail_key", 2}}));
  s.max_retries = 3;
  FlowDefinition def{"retrying", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Succeeded);
  EXPECT_EQ(provider->starts(), 3);  // two failures + one success
  EXPECT_EQ(service->timing(run.value()).steps[0].retries, 2);
}

TEST_F(FlowFixture, RetryBudgetExhaustedFailsRun) {
  setup();
  provider->set_fail_budget(3, 5);
  ActionState s = step("A", 0.2, Json::object({{"fail_key", 3}}));
  s.max_retries = 2;
  FlowDefinition def{"exhausted", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Failed);
  EXPECT_EQ(provider->starts(), 3);  // initial + 2 retries
}

TEST_F(FlowFixture, StartRefusalFailsRun) {
  setup();
  FlowDefinition def{"refused",
                     {step("A", 1, Json::object({{"refuse_start", true}}))}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Failed);
}

TEST_F(FlowFixture, ExponentialBackoffReducesPollCount) {
  FlowServiceConfig exp_cfg;
  exp_cfg.backoff = BackoffPolicy::paper_default();
  setup(exp_cfg);
  FlowDefinition def{"long", {step("A", 100)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  int exp_polls = provider->polls();

  FlowServiceConfig fixed_cfg;
  fixed_cfg.backoff = BackoffPolicy::fixed(1.0);
  setup(fixed_cfg);
  auto run2 = service->start(def, Json(), token);
  ASSERT_TRUE(run2);
  engine.run();
  int fixed_polls = provider->polls();

  EXPECT_LT(exp_polls, 10);
  EXPECT_GT(fixed_polls, 90);
}

TEST_F(FlowFixture, ExponentialBackoffInflatesDiscoveryLag) {
  FlowServiceConfig cfg;
  cfg.backoff = BackoffPolicy::paper_default();
  setup(cfg);
  // 40 s step: polls at 1,3,7,15,31,63 -> discovered at 63 -> lag ~23 s.
  FlowDefinition def{"lag", {step("A", 40)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  double lag = service->timing(run.value()).steps[0].discovery_lag_s();
  EXPECT_GT(lag, 15.0);
  EXPECT_LT(lag, 30.0);
}

TEST_F(FlowFixture, ProgressTokensResetBackoff) {
  FlowServiceConfig cfg;
  cfg.backoff = BackoffPolicy::paper_default();
  setup(cfg);
  FlowDefinition def{"progress",
                     {step("A", 40, Json::object({{"emit_progress", true}}))}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  // With 10% progress updates, discovery lag stays small.
  double lag = service->timing(run.value()).steps[0].discovery_lag_s();
  EXPECT_LT(lag, 10.0);
}

TEST_F(FlowFixture, ProgressTokenResetsShowUpInPollCounts) {
  // Same step length under the same exponential policy: the run whose
  // service emits progress tokens polls strictly more often, because each
  // observed transition restarts the backoff ladder at the bottom rung.
  FlowServiceConfig cfg;
  cfg.backoff = BackoffPolicy::paper_default();
  setup(cfg);
  FlowDefinition quiet{"quiet", {step("A", 40)}};
  auto run = service->start(quiet, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  int quiet_polls = service->timing(run.value()).steps[0].polls;

  setup(cfg);
  FlowDefinition chatty{
      "chatty", {step("A", 40, Json::object({{"emit_progress", true}}))}};
  auto run2 = service->start(chatty, Json(), token);
  ASSERT_TRUE(run2);
  engine.run();
  int chatty_polls = service->timing(run2.value()).steps[0].polls;

  EXPECT_GT(chatty_polls, quiet_polls);
  EXPECT_LT(quiet_polls, 10);  // 1,3,7,15,31,63: the ladder alone discovers it
}

TEST_F(FlowFixture, StartRefusalRecoveredByRetry) {
  setup();
  provider->set_refuse_budget(8, 2);  // refuse twice, then accept
  ActionState s = step("A", 0.5, Json::object({{"refuse_key", 8}}));
  s.max_retries = 3;
  FlowDefinition def{"refuse-retry", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Succeeded);
  EXPECT_EQ(provider->start_attempts(), 3);
  EXPECT_EQ(provider->starts(), 1);
  EXPECT_EQ(service->timing(run.value()).steps[0].retries, 2);
}

TEST_F(FlowFixture, StartRefusalExhaustsRetryBudget) {
  setup();
  provider->set_refuse_budget(9, 1000);  // never accepts
  ActionState s = step("A", 0.5, Json::object({{"refuse_key", 9}}));
  s.max_retries = 2;
  FlowDefinition def{"refuse-exhaust", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Failed);
  EXPECT_NE(info.error.find("failed to start"), std::string::npos);
  EXPECT_EQ(provider->start_attempts(), 3);  // initial + 2 retries
  EXPECT_EQ(provider->starts(), 0);
}

TEST_F(FlowFixture, ConcurrentRunsProgressIndependently) {
  setup();
  FlowDefinition def{"conc", {step("A", 5), step("B", 5)}};
  std::vector<RunId> runs;
  for (int i = 0; i < 10; ++i) {
    auto run = service->start(def, Json(), token, "run" + std::to_string(i));
    ASSERT_TRUE(run);
    runs.push_back(run.value());
  }
  EXPECT_EQ(service->active_runs(), 10u);
  engine.run();
  EXPECT_EQ(service->active_runs(), 0u);
  for (const auto& id : runs) {
    EXPECT_EQ(service->info(id).state, RunState::Succeeded);
  }
  EXPECT_EQ(service->all_runs().size(), 10u);
}

TEST_F(FlowFixture, OnFinishedFiresOnceImmediateOrDeferred) {
  setup();
  FlowDefinition def{"cb", {step("A", 1)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  int calls = 0;
  service->on_finished(run.value(),
                       [&](const RunId&, const RunInfo&) { ++calls; });
  engine.run();
  EXPECT_EQ(calls, 1);
  // Registering after completion fires immediately.
  service->on_finished(run.value(),
                       [&](const RunId&, const RunInfo&) { ++calls; });
  EXPECT_EQ(calls, 2);
}

TEST(Backoff, PolicyIntervalSequences) {
  util::Rng rng(1);
  auto paper = BackoffPolicy::paper_default();
  EXPECT_DOUBLE_EQ(paper.interval_s(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(paper.interval_s(1, rng), 2.0);
  EXPECT_DOUBLE_EQ(paper.interval_s(5, rng), 32.0);
  EXPECT_DOUBLE_EQ(paper.interval_s(30, rng), 600.0);  // capped at 10 min

  auto fixed = BackoffPolicy::fixed(5.0);
  EXPECT_DOUBLE_EQ(fixed.interval_s(0, rng), 5.0);
  EXPECT_DOUBLE_EQ(fixed.interval_s(99, rng), 5.0);

  auto linear = BackoffPolicy::linear(1.0, 2.0, 9.0);
  EXPECT_DOUBLE_EQ(linear.interval_s(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(linear.interval_s(3, rng), 7.0);
  EXPECT_DOUBLE_EQ(linear.interval_s(10, rng), 9.0);  // capped

  auto jittered = BackoffPolicy::jittered(1.0, 2.0, 600.0, 0.25);
  for (int i = 0; i < 20; ++i) {
    double v = jittered.interval_s(2, rng);
    EXPECT_GE(v, 4.0 * 0.75 - 1e-9);
    EXPECT_LE(v, 4.0 * 1.25 + 1e-9);
  }
  EXPECT_FALSE(paper.describe().empty());
  EXPECT_FALSE(jittered.describe().empty());
}

}  // namespace
}  // namespace pico::flow

// ---------------------------------------------------------- cancellation ----
namespace pico::flow {
namespace {

struct CancelFixture : FlowFixture {};

TEST_F(CancelFixture, CancelMidStepStopsRun) {
  setup();
  FlowDefinition def{"long", {step("A", 50), step("B", 50)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run_until(sim::SimTime::from_seconds(10));  // mid step A
  ASSERT_TRUE(service->cancel(run.value()));
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Failed);
  EXPECT_NE(info.error.find("cancelled"), std::string::npos);
  // Step B never dispatched.
  EXPECT_EQ(provider->starts(), 1);
}

TEST_F(CancelFixture, CancelBeforeStartPreventsDispatch) {
  setup();
  FlowDefinition def{"pending", {step("A", 5)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  // Cancel immediately, before the flow-start latency elapses.
  ASSERT_TRUE(service->cancel(run.value()));
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Failed);
  EXPECT_EQ(provider->starts(), 0);
}

TEST_F(CancelFixture, CancelSettledRunIsError) {
  setup();
  FlowDefinition def{"quick", {step("A", 0.5)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  ASSERT_EQ(service->info(run.value()).state, RunState::Succeeded);
  EXPECT_FALSE(service->cancel(run.value()));
  EXPECT_FALSE(service->cancel("run-999999"));
}

TEST_F(CancelFixture, CancelDuringInFlightPollStopsPolling) {
  FlowServiceConfig cfg;
  cfg.backoff = BackoffPolicy::fixed(1.0);
  setup(cfg);
  FlowDefinition def{"polling", {step("A", 100)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run_until(sim::SimTime::from_seconds(20));  // well into the poll loop
  int polls_before = provider->polls();
  EXPECT_GT(polls_before, 5);
  ASSERT_TRUE(service->cancel(run.value()));
  engine.run();
  // The already-scheduled poll event fires but is abandoned without touching
  // the provider: no polls after cancellation, and the run stays Failed.
  EXPECT_EQ(provider->polls(), polls_before);
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Failed);
  EXPECT_NE(info.error.find("cancelled"), std::string::npos);
}

TEST_F(CancelFixture, CancelFiresFinishedCallbackOnce) {
  setup();
  FlowDefinition def{"cb", {step("A", 50)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  int calls = 0;
  service->on_finished(run.value(),
                       [&](const RunId&, const RunInfo&) { ++calls; });
  engine.run_until(sim::SimTime::from_seconds(5));
  ASSERT_TRUE(service->cancel(run.value()));
  engine.run();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pico::flow

// --------------------------------------------- timeouts + circuit breaker ----
namespace pico::flow {
namespace {

struct RobustFixture : FlowFixture {};

TEST_F(RobustFixture, TimeoutConsumesRetryThenRecovers) {
  setup();
  // First attempt is scripted to hang for 500 s; the retry runs at the
  // nominal 0.5 s and beats the 20 s deadline.
  provider->set_slow_budget(5, 1, 500.0);
  ActionState s = step("A", 0.5, Json::object({{"slow_key", 5}}));
  s.max_retries = 1;
  s.timeout_s = 20.0;
  FlowDefinition def{"timeout-recover", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Succeeded);
  const StepTiming& timing = service->timing(run.value()).steps[0];
  EXPECT_EQ(timing.timeouts, 1);
  EXPECT_EQ(timing.retries, 1);
  EXPECT_EQ(service->total_timeouts(), 1u);
  EXPECT_EQ(provider->starts(), 2);
}

TEST_F(RobustFixture, TimeoutExhaustsRetryBudget) {
  setup();
  ActionState s = step("A", 500);  // never completes within the deadline
  s.max_retries = 1;
  s.timeout_s = 10.0;
  FlowDefinition def{"timeout-exhaust", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Failed);
  EXPECT_NE(info.error.find("timed out"), std::string::npos);
  EXPECT_EQ(service->timing(run.value()).steps[0].timeouts, 2);
  EXPECT_EQ(service->total_timeouts(), 2u);
}

TEST_F(RobustFixture, ZeroTimeoutMeansNoDeadline) {
  setup();
  FlowDefinition def{"no-deadline", {step("A", 300)}};  // timeout_s defaults 0
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Succeeded);
  EXPECT_EQ(service->timing(run.value()).steps[0].timeouts, 0);
  EXPECT_EQ(service->total_timeouts(), 0u);
}

TEST_F(RobustFixture, BreakerTripsAndFailsFast) {
  FlowServiceConfig cfg;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.cooldown_s = 60.0;
  setup(cfg);
  provider->set_refuse_budget(9, 1000);  // provider is down for good
  ActionState s = step("A", 1, Json::object({{"refuse_key", 9}}));
  s.max_retries = 10;
  FlowDefinition def{"breaker-trip", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Failed);
  // Three failures trip the breaker; afterwards the open breaker consumes
  // retries without touching the provider, and only half-open probes get
  // through — far fewer than the 11 starts the budget alone would allow.
  EXPECT_LT(provider->start_attempts(), 8);
  auto snaps = service->breaker_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].provider, "fake");
  EXPECT_GE(snaps[0].trips, 2);
  EXPECT_GT(service->breaker_retry_after_s("fake"), 0.0);  // still open
}

TEST_F(RobustFixture, BreakerHalfOpenProbeRecovers) {
  FlowServiceConfig cfg;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_s = 10.0;
  setup(cfg);
  provider->set_refuse_budget(11, 2);  // down for the first two attempts
  ActionState s = step("A", 1, Json::object({{"refuse_key", 11}}));
  s.max_retries = 5;
  FlowDefinition def{"breaker-probe", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  // After two failures the breaker is open: mid-cooldown it reports a wait.
  engine.run_until(sim::SimTime::from_seconds(6));
  EXPECT_GT(service->breaker_retry_after_s("fake"), 0.0);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Succeeded);
  // Two real failures + one breaker wait = three consumed retries, and the
  // half-open probe was the only extra provider contact.
  EXPECT_EQ(provider->start_attempts(), 3);
  EXPECT_EQ(service->timing(run.value()).steps[0].retries, 3);
  auto snaps = service->breaker_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].trips, 1);
  EXPECT_EQ(snaps[0].state, "closed");
  EXPECT_EQ(service->breaker_retry_after_s("fake"), 0.0);
  EXPECT_EQ(service->breaker_retry_after_s("unregistered"), 0.0);
}

TEST_F(RobustFixture, DisabledBreakerNeverTrips) {
  FlowServiceConfig cfg;
  cfg.breaker.enabled = false;
  cfg.breaker.failure_threshold = 1;
  setup(cfg);
  provider->set_refuse_budget(13, 1000);
  ActionState s = step("A", 1, Json::object({{"refuse_key", 13}}));
  s.max_retries = 4;
  FlowDefinition def{"breaker-off", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Failed);
  EXPECT_EQ(provider->start_attempts(), 5);  // every retry reached the provider
  auto snaps = service->breaker_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].trips, 0);
}

TEST(CircuitBreakerUnit, StateMachineTransitions) {
  BreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.cooldown_s = 5.0;
  CircuitBreaker b(cfg);
  auto t = [](double s) { return sim::SimTime::from_seconds(s); };

  EXPECT_EQ(b.state(t(0)), CircuitBreaker::State::Closed);
  EXPECT_DOUBLE_EQ(b.retry_after_s(t(0)), 0.0);
  b.record_failure(t(1));
  EXPECT_EQ(b.state(t(1)), CircuitBreaker::State::Closed);
  b.record_failure(t(2));  // threshold reached: trip
  EXPECT_EQ(b.state(t(2)), CircuitBreaker::State::Open);
  EXPECT_EQ(b.trips(), 1);
  EXPECT_NEAR(b.retry_after_s(t(3)), 4.0, 1e-9);

  // Cooldown elapsed: half-open. First caller claims the probe slot; later
  // callers are pushed out by a cooldown; peek never claims.
  EXPECT_EQ(b.state(t(8)), CircuitBreaker::State::HalfOpen);
  EXPECT_DOUBLE_EQ(b.retry_after_s(t(8)), 0.0);
  EXPECT_DOUBLE_EQ(b.retry_after_s(t(8)), cfg.cooldown_s);
  EXPECT_DOUBLE_EQ(b.peek_retry_after_s(t(8)), cfg.cooldown_s);

  b.record_failure(t(9));  // probe failed: immediately re-open
  EXPECT_EQ(b.state(t(9)), CircuitBreaker::State::Open);
  EXPECT_EQ(b.trips(), 2);

  EXPECT_EQ(b.state(t(15)), CircuitBreaker::State::HalfOpen);
  EXPECT_DOUBLE_EQ(b.retry_after_s(t(15)), 0.0);
  b.record_success();  // probe succeeded: close and reset
  EXPECT_EQ(b.state(t(16)), CircuitBreaker::State::Closed);
  EXPECT_EQ(b.consecutive_failures(), 0);
  EXPECT_EQ(CircuitBreaker::state_name(CircuitBreaker::State::HalfOpen),
            "half-open");
}

TEST(CircuitBreakerUnit, DisabledBreakerIsTransparent) {
  BreakerConfig cfg;
  cfg.enabled = false;
  cfg.failure_threshold = 1;
  CircuitBreaker b(cfg);
  auto t = [](double s) { return sim::SimTime::from_seconds(s); };
  for (int i = 0; i < 5; ++i) b.record_failure(t(i));
  EXPECT_EQ(b.state(t(10)), CircuitBreaker::State::Closed);
  EXPECT_DOUBLE_EQ(b.retry_after_s(t(10)), 0.0);
  EXPECT_EQ(b.trips(), 0);
}

}  // namespace
}  // namespace pico::flow

// ------------------------------------------------------- definition JSON ----
#include "flow/definition_io.hpp"

namespace pico::flow {
namespace {

TEST(DefinitionIo, RoundTrip) {
  FlowDefinition def;
  def.name = "my-flow";
  ActionState a;
  a.name = "Transfer";
  a.provider = "transfer";
  a.max_retries = 2;
  a.timeout_s = 45.0;
  a.params = Json::object({
      {"src", "$.input.file"},
      {"nested", Json::object({{"deep", Json::array({1, 2})}})},
  });
  def.steps.push_back(a);
  ActionState b;
  b.name = "Publish";
  b.provider = "search-ingest";
  b.params = Json::object({{"record", "$.steps.Transfer.out"}});
  def.steps.push_back(b);

  Json doc = definition_to_json(def);
  auto back = definition_from_json(doc);
  ASSERT_TRUE(back);
  const FlowDefinition& d = back.value();
  EXPECT_EQ(d.name, "my-flow");
  ASSERT_EQ(d.steps.size(), 2u);
  EXPECT_EQ(d.steps[0].max_retries, 2);
  EXPECT_DOUBLE_EQ(d.steps[0].timeout_s, 45.0);
  EXPECT_DOUBLE_EQ(d.steps[1].timeout_s, 0.0);
  EXPECT_EQ(d.steps[0].params.at("src").as_string(), "$.input.file");
  EXPECT_EQ(d.steps[1].params.at("record").as_string(), "$.steps.Transfer.out");
  // Text round trip too.
  auto from_text = definition_from_text(doc.dump());
  ASSERT_TRUE(from_text);
  EXPECT_EQ(definition_to_json(from_text.value()).dump(), doc.dump());
}

TEST(DefinitionIo, ValidationRejectsBadDocuments) {
  EXPECT_FALSE(definition_from_text("not json"));
  EXPECT_FALSE(definition_from_text("[]"));
  EXPECT_FALSE(definition_from_text(R"({"name": "x"})"));                 // no steps
  EXPECT_FALSE(definition_from_text(R"({"name": "x", "steps": []})"));    // empty
  EXPECT_FALSE(definition_from_text(
      R"({"name": "", "steps": [{"name": "A", "provider": "p"}]})"));      // no name
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "", "provider": "p"}]})"));      // unnamed step
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "A"}]})"));                      // no provider
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "A", "provider": "p"},
                                  {"name": "A", "provider": "p"}]})"));    // dup names
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "A", "provider": "p",
                                   "max_retries": -1}]})"));               // bad retries
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "A", "provider": "p",
                                   "timeout_s": -5}]})"));                 // bad timeout
}

TEST(DefinitionIo, ParsedDefinitionActuallyRuns) {
  sim::Engine engine;
  auth::AuthService auth;
  FlowServiceConfig cfg;
  cfg.latency_jitter_frac = 0;
  FlowService service(&engine, &auth, cfg, 3);
  FakeProvider provider(&engine);
  service.register_provider(&provider);
  auth::Token token = auth.issue("u", {"flows"});

  auto def = definition_from_text(R"({
    "name": "loaded-from-json",
    "steps": [
      {"name": "A", "provider": "fake",
       "params": {"duration_s": 0.5, "tag": "$.input.greeting",
                  "fail_key": -1, "emit_progress": false,
                  "refuse_start": false}}
    ]
  })");
  ASSERT_TRUE(def);
  auto run = service.start(def.value(),
                           Json::object({{"greeting", "hello"}}), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service.info(run.value());
  EXPECT_EQ(info.state, RunState::Succeeded);
  EXPECT_EQ(info.step_outputs.at("A").at("echo").as_string(), "hello");
}

}  // namespace
}  // namespace pico::flow

// Property: for random flows/policies, the paper's decomposition invariants
// hold — total = active + overhead, every discovery lag is non-negative, and
// steps execute strictly in sequence.
namespace pico::flow {
namespace {

class TimingInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimingInvariants, DecompositionAlwaysConsistent) {
  util::Rng rng(GetParam());
  sim::Engine engine;
  auth::AuthService auth;
  FlowServiceConfig cfg;
  cfg.start_latency_s = rng.uniform(0.2, 3.0);
  cfg.inter_step_latency_s = rng.uniform(0.2, 3.0);
  switch (rng.uniform_int(0, 2)) {
    case 0: cfg.backoff = BackoffPolicy::paper_default(); break;
    case 1: cfg.backoff = BackoffPolicy::fixed(rng.uniform(0.5, 5)); break;
    default:
      cfg.backoff = BackoffPolicy::jittered(1.0, 1.7, 120, 0.3);
  }
  FlowService service(&engine, &auth, cfg, GetParam());
  FakeProvider provider(&engine);
  service.register_provider(&provider);
  auth::Token token = auth.issue("u", {"flows"});

  std::vector<RunId> runs;
  for (int f = 0; f < 6; ++f) {
    FlowDefinition def;
    def.name = "prop";
    int n_steps = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n_steps; ++i) {
      def.steps.push_back(FlowFixture::step(
          "S" + std::to_string(i), rng.uniform(0.2, 40.0),
          Json::object({{"emit_progress", rng.chance(0.5)}})));
    }
    auto run = service.start(def, Json(), token);
    ASSERT_TRUE(run);
    runs.push_back(run.value());
    engine.run_until(engine.now() + sim::Duration::from_seconds(rng.uniform(0, 20)));
  }
  engine.run();

  for (const auto& id : runs) {
    ASSERT_EQ(service.info(id).state, RunState::Succeeded);
    const RunTiming& t = service.timing(id);
    EXPECT_NEAR(t.total_s(), t.active_s() + t.overhead_s(), 1e-9);
    EXPECT_GT(t.overhead_s(), 0);
    sim::SimTime prev = t.submitted;
    for (const auto& s : t.steps) {
      EXPECT_GE(s.dispatched.ns, prev.ns);
      EXPECT_GE(s.service_started.ns, s.dispatched.ns);
      EXPECT_GE(s.service_completed.ns, s.service_started.ns);
      EXPECT_GE(s.discovered.ns, s.service_completed.ns);
      EXPECT_GE(s.discovery_lag_s(), 0.0);
      EXPECT_GT(s.polls, 0);
      prev = s.discovered;
    }
    EXPECT_GE(t.finished.ns, prev.ns);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingInvariants,
                         ::testing::Values(11, 23, 47, 89, 173));

}  // namespace
}  // namespace pico::flow

// Flow engine tests with a scriptable fake provider: serial execution,
// parameter templating, polling backoff behaviour (including the paper's
// overhead accounting), retries, failures, progress-token resets.
#include <gtest/gtest.h>

#include <map>

#include "flow/backoff.hpp"
#include "flow/service.hpp"

namespace pico::flow {
namespace {

using util::Json;

/// Scriptable provider: each started action succeeds after a fixed virtual
/// duration (from params "duration_s"), optionally failing "fail_times"
/// first. Emits progress tokens per params.
class FakeProvider final : public ActionProvider {
 public:
  explicit FakeProvider(sim::Engine* engine) : engine_(engine) {}

  std::string name() const override { return "fake"; }

  util::Result<ActionHandle> start(const Json& params,
                                   const auth::Token&) override {
    if (params.at("refuse_start").as_bool(false)) {
      return util::Result<ActionHandle>::err("refused", "test");
    }
    std::string handle = "act-" + std::to_string(next_++);
    Action action;
    action.started = engine_->now();
    action.duration = params.at("duration_s").as_double(1.0);
    action.params = params;
    int key = static_cast<int>(params.at("fail_key").as_int(-1));
    if (key >= 0 && fail_budget_.count(key) && fail_budget_[key] > 0) {
      fail_budget_[key] -= 1;
      action.fail = true;
    }
    actions_[handle] = action;
    starts_ += 1;
    return util::Result<ActionHandle>::ok(handle);
  }

  ActionPollResult poll(const ActionHandle& handle) override {
    polls_ += 1;
    ActionPollResult out;
    auto it = actions_.find(handle);
    if (it == actions_.end()) {
      out.status = ActionStatus::Failed;
      out.error = "unknown handle";
      return out;
    }
    const Action& a = it->second;
    double elapsed = (engine_->now() - a.started).seconds();
    if (elapsed < a.duration) {
      out.status = ActionStatus::Active;
      if (a.params.at("emit_progress").as_bool(false)) {
        // Token changes at 10% steps of the duration.
        out.progress_token = "p" + std::to_string(
            static_cast<int>(10 * elapsed / a.duration));
      }
      return out;
    }
    if (a.fail) {
      out.status = ActionStatus::Failed;
      out.error = "scripted failure";
      return out;
    }
    out.status = ActionStatus::Succeeded;
    out.service_started = a.started;
    out.service_completed =
        a.started + sim::Duration::from_seconds(a.duration);
    out.output = Json::object({{"echo", a.params.at("tag")}});
    return out;
  }

  void set_fail_budget(int key, int times) { fail_budget_[key] = times; }
  int starts() const { return starts_; }
  int polls() const { return polls_; }

 private:
  struct Action {
    sim::SimTime started;
    double duration = 0;
    bool fail = false;
    Json params;
  };
  sim::Engine* engine_;
  std::map<ActionHandle, Action> actions_;
  std::map<int, int> fail_budget_;
  uint64_t next_ = 1;
  int starts_ = 0;
  int polls_ = 0;
};

struct FlowFixture : ::testing::Test {
  sim::Engine engine;
  auth::AuthService auth;
  std::unique_ptr<FakeProvider> provider;
  std::unique_ptr<FlowService> service;
  auth::Token token;

  void setup(FlowServiceConfig cfg = {}) {
    // Deterministic latencies for timing assertions.
    cfg.latency_jitter_frac = 0.0;
    service = std::make_unique<FlowService>(&engine, &auth, cfg, 3);
    provider = std::make_unique<FakeProvider>(&engine);
    service->register_provider(provider.get());
    token = auth.issue("user@anl.gov", {"flows"});
  }

  static ActionState step(const std::string& name, double duration,
                          Json extra = Json::object()) {
    ActionState s;
    s.name = name;
    s.provider = "fake";
    Json params = Json::object({
        {"duration_s", duration},
        {"tag", name},
        {"fail_key", -1},
        {"emit_progress", false},
        {"refuse_start", false},
    });
    for (const auto& [k, v] : extra.as_object()) params[k] = v;
    s.params = params;
    return s;
  }
};

TEST_F(FlowFixture, RequiresFlowScope) {
  setup();
  FlowDefinition def{"f", {step("A", 1)}};
  EXPECT_FALSE(service->start(def, Json(), "bad"));
  auth::Token wrong = auth.issue("u", {"transfer"});
  EXPECT_FALSE(service->start(def, Json(), wrong));
  EXPECT_TRUE(service->start(def, Json(), token));
}

TEST_F(FlowFixture, RejectsEmptyAndUnknownProvider) {
  setup();
  EXPECT_FALSE(service->start(FlowDefinition{"empty", {}}, Json(), token));
  ActionState bad;
  bad.name = "X";
  bad.provider = "nope";
  EXPECT_FALSE(
      service->start(FlowDefinition{"f", {bad}}, Json(), token));
}

TEST_F(FlowFixture, SerialStepsAllRunInOrder) {
  setup();
  FlowDefinition def{"three", {step("A", 1), step("B", 2), step("C", 1)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Succeeded);
  const RunTiming& timing = service->timing(run.value());
  ASSERT_EQ(timing.steps.size(), 3u);
  EXPECT_EQ(timing.steps[0].name, "A");
  EXPECT_EQ(timing.steps[2].name, "C");
  // Serial: B dispatches after A's discovery.
  EXPECT_GE(timing.steps[1].dispatched.ns, timing.steps[0].discovered.ns);
  EXPECT_NEAR(timing.active_s(), 4.0, 1e-6);
  EXPECT_GT(timing.overhead_s(), 0.0);
  EXPECT_NEAR(timing.total_s(), timing.active_s() + timing.overhead_s(), 1e-9);
}

TEST_F(FlowFixture, StepOutputsFeedLaterParams) {
  setup();
  FlowDefinition def{"chained", {step("A", 0.5)}};
  ActionState b = step("B", 0.5);
  b.params["tag"] = "$.steps.A.echo";  // templating from step A's output
  def.steps.push_back(b);
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Succeeded);
  // B echoed A's echo: "A".
  EXPECT_EQ(info.step_outputs.at("B").at("echo").as_string(), "A");
}

TEST_F(FlowFixture, InputTemplating) {
  setup();
  FlowDefinition def{"in", {step("A", 0.1)}};
  def.steps[0].params["tag"] = "$.input.nested.value";
  auto run = service->start(
      def, Json::object({{"nested", Json::object({{"value", "hello"}})}}),
      token, "labelled");
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.step_outputs.at("A").at("echo").as_string(), "hello");
  EXPECT_EQ(info.label, "labelled");
}

TEST(ResolveParams, HandlesAllShapes) {
  Json input = Json::object({{"a", 1}, {"b", Json::object({{"c", "x"}})}});
  std::map<std::string, Json> steps;
  steps["S"] = Json::object({{"out", 42}});

  EXPECT_EQ(FlowService::resolve_params(Json("$.input"), input, steps), input);
  EXPECT_EQ(FlowService::resolve_params(Json("$.input.b.c"), input, steps)
                .as_string(),
            "x");
  EXPECT_EQ(FlowService::resolve_params(Json("$.steps.S.out"), input, steps)
                .as_int(),
            42);
  EXPECT_EQ(FlowService::resolve_params(Json("$.steps.S"), input, steps),
            steps["S"]);
  // Unknown references resolve to null rather than erroring.
  EXPECT_TRUE(FlowService::resolve_params(Json("$.steps.Z.q"), input, steps)
                  .is_null());
  // Non-reference strings and scalars pass through.
  EXPECT_EQ(FlowService::resolve_params(Json("plain"), input, steps)
                .as_string(),
            "plain");
  EXPECT_EQ(FlowService::resolve_params(Json(7), input, steps).as_int(), 7);
  // Nested containers resolve recursively.
  Json nested = Json::object(
      {{"k", Json::array({Json("$.input.a"), Json("$.steps.S.out")})}});
  Json resolved = FlowService::resolve_params(nested, input, steps);
  EXPECT_EQ(resolved.at("k")[0].as_int(), 1);
  EXPECT_EQ(resolved.at("k")[1].as_int(), 42);
}

TEST_F(FlowFixture, FailedStepFailsRunWithoutRetries) {
  setup();
  provider->set_fail_budget(1, 1);
  FlowDefinition def{"failing", {step("A", 0.5, Json::object({{"fail_key", 1}}))}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Failed);
  EXPECT_NE(info.error.find("scripted failure"), std::string::npos);
}

TEST_F(FlowFixture, RetriesRecoverFromTransientFailures) {
  setup();
  provider->set_fail_budget(2, 2);  // fail twice, then succeed
  ActionState s = step("A", 0.5, Json::object({{"fail_key", 2}}));
  s.max_retries = 3;
  FlowDefinition def{"retrying", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Succeeded);
  EXPECT_EQ(provider->starts(), 3);  // two failures + one success
  EXPECT_EQ(service->timing(run.value()).steps[0].retries, 2);
}

TEST_F(FlowFixture, RetryBudgetExhaustedFailsRun) {
  setup();
  provider->set_fail_budget(3, 5);
  ActionState s = step("A", 0.2, Json::object({{"fail_key", 3}}));
  s.max_retries = 2;
  FlowDefinition def{"exhausted", {s}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Failed);
  EXPECT_EQ(provider->starts(), 3);  // initial + 2 retries
}

TEST_F(FlowFixture, StartRefusalFailsRun) {
  setup();
  FlowDefinition def{"refused",
                     {step("A", 1, Json::object({{"refuse_start", true}}))}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Failed);
}

TEST_F(FlowFixture, ExponentialBackoffReducesPollCount) {
  FlowServiceConfig exp_cfg;
  exp_cfg.backoff = BackoffPolicy::paper_default();
  setup(exp_cfg);
  FlowDefinition def{"long", {step("A", 100)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  int exp_polls = provider->polls();

  FlowServiceConfig fixed_cfg;
  fixed_cfg.backoff = BackoffPolicy::fixed(1.0);
  setup(fixed_cfg);
  auto run2 = service->start(def, Json(), token);
  ASSERT_TRUE(run2);
  engine.run();
  int fixed_polls = provider->polls();

  EXPECT_LT(exp_polls, 10);
  EXPECT_GT(fixed_polls, 90);
}

TEST_F(FlowFixture, ExponentialBackoffInflatesDiscoveryLag) {
  FlowServiceConfig cfg;
  cfg.backoff = BackoffPolicy::paper_default();
  setup(cfg);
  // 40 s step: polls at 1,3,7,15,31,63 -> discovered at 63 -> lag ~23 s.
  FlowDefinition def{"lag", {step("A", 40)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  double lag = service->timing(run.value()).steps[0].discovery_lag_s();
  EXPECT_GT(lag, 15.0);
  EXPECT_LT(lag, 30.0);
}

TEST_F(FlowFixture, ProgressTokensResetBackoff) {
  FlowServiceConfig cfg;
  cfg.backoff = BackoffPolicy::paper_default();
  setup(cfg);
  FlowDefinition def{"progress",
                     {step("A", 40, Json::object({{"emit_progress", true}}))}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  // With 10% progress updates, discovery lag stays small.
  double lag = service->timing(run.value()).steps[0].discovery_lag_s();
  EXPECT_LT(lag, 10.0);
}

TEST_F(FlowFixture, ConcurrentRunsProgressIndependently) {
  setup();
  FlowDefinition def{"conc", {step("A", 5), step("B", 5)}};
  std::vector<RunId> runs;
  for (int i = 0; i < 10; ++i) {
    auto run = service->start(def, Json(), token, "run" + std::to_string(i));
    ASSERT_TRUE(run);
    runs.push_back(run.value());
  }
  EXPECT_EQ(service->active_runs(), 10u);
  engine.run();
  EXPECT_EQ(service->active_runs(), 0u);
  for (const auto& id : runs) {
    EXPECT_EQ(service->info(id).state, RunState::Succeeded);
  }
  EXPECT_EQ(service->all_runs().size(), 10u);
}

TEST_F(FlowFixture, OnFinishedFiresOnceImmediateOrDeferred) {
  setup();
  FlowDefinition def{"cb", {step("A", 1)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  int calls = 0;
  service->on_finished(run.value(),
                       [&](const RunId&, const RunInfo&) { ++calls; });
  engine.run();
  EXPECT_EQ(calls, 1);
  // Registering after completion fires immediately.
  service->on_finished(run.value(),
                       [&](const RunId&, const RunInfo&) { ++calls; });
  EXPECT_EQ(calls, 2);
}

TEST(Backoff, PolicyIntervalSequences) {
  util::Rng rng(1);
  auto paper = BackoffPolicy::paper_default();
  EXPECT_DOUBLE_EQ(paper.interval_s(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(paper.interval_s(1, rng), 2.0);
  EXPECT_DOUBLE_EQ(paper.interval_s(5, rng), 32.0);
  EXPECT_DOUBLE_EQ(paper.interval_s(30, rng), 600.0);  // capped at 10 min

  auto fixed = BackoffPolicy::fixed(5.0);
  EXPECT_DOUBLE_EQ(fixed.interval_s(0, rng), 5.0);
  EXPECT_DOUBLE_EQ(fixed.interval_s(99, rng), 5.0);

  auto linear = BackoffPolicy::linear(1.0, 2.0, 9.0);
  EXPECT_DOUBLE_EQ(linear.interval_s(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(linear.interval_s(3, rng), 7.0);
  EXPECT_DOUBLE_EQ(linear.interval_s(10, rng), 9.0);  // capped

  auto jittered = BackoffPolicy::jittered(1.0, 2.0, 600.0, 0.25);
  for (int i = 0; i < 20; ++i) {
    double v = jittered.interval_s(2, rng);
    EXPECT_GE(v, 4.0 * 0.75 - 1e-9);
    EXPECT_LE(v, 4.0 * 1.25 + 1e-9);
  }
  EXPECT_FALSE(paper.describe().empty());
  EXPECT_FALSE(jittered.describe().empty());
}

}  // namespace
}  // namespace pico::flow

// ---------------------------------------------------------- cancellation ----
namespace pico::flow {
namespace {

struct CancelFixture : FlowFixture {};

TEST_F(CancelFixture, CancelMidStepStopsRun) {
  setup();
  FlowDefinition def{"long", {step("A", 50), step("B", 50)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run_until(sim::SimTime::from_seconds(10));  // mid step A
  ASSERT_TRUE(service->cancel(run.value()));
  engine.run();
  const RunInfo& info = service->info(run.value());
  EXPECT_EQ(info.state, RunState::Failed);
  EXPECT_NE(info.error.find("cancelled"), std::string::npos);
  // Step B never dispatched.
  EXPECT_EQ(provider->starts(), 1);
}

TEST_F(CancelFixture, CancelBeforeStartPreventsDispatch) {
  setup();
  FlowDefinition def{"pending", {step("A", 5)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  // Cancel immediately, before the flow-start latency elapses.
  ASSERT_TRUE(service->cancel(run.value()));
  engine.run();
  EXPECT_EQ(service->info(run.value()).state, RunState::Failed);
  EXPECT_EQ(provider->starts(), 0);
}

TEST_F(CancelFixture, CancelSettledRunIsError) {
  setup();
  FlowDefinition def{"quick", {step("A", 0.5)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  engine.run();
  ASSERT_EQ(service->info(run.value()).state, RunState::Succeeded);
  EXPECT_FALSE(service->cancel(run.value()));
  EXPECT_FALSE(service->cancel("run-999999"));
}

TEST_F(CancelFixture, CancelFiresFinishedCallbackOnce) {
  setup();
  FlowDefinition def{"cb", {step("A", 50)}};
  auto run = service->start(def, Json(), token);
  ASSERT_TRUE(run);
  int calls = 0;
  service->on_finished(run.value(),
                       [&](const RunId&, const RunInfo&) { ++calls; });
  engine.run_until(sim::SimTime::from_seconds(5));
  ASSERT_TRUE(service->cancel(run.value()));
  engine.run();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pico::flow

// ------------------------------------------------------- definition JSON ----
#include "flow/definition_io.hpp"

namespace pico::flow {
namespace {

TEST(DefinitionIo, RoundTrip) {
  FlowDefinition def;
  def.name = "my-flow";
  ActionState a;
  a.name = "Transfer";
  a.provider = "transfer";
  a.max_retries = 2;
  a.params = Json::object({
      {"src", "$.input.file"},
      {"nested", Json::object({{"deep", Json::array({1, 2})}})},
  });
  def.steps.push_back(a);
  ActionState b;
  b.name = "Publish";
  b.provider = "search-ingest";
  b.params = Json::object({{"record", "$.steps.Transfer.out"}});
  def.steps.push_back(b);

  Json doc = definition_to_json(def);
  auto back = definition_from_json(doc);
  ASSERT_TRUE(back);
  const FlowDefinition& d = back.value();
  EXPECT_EQ(d.name, "my-flow");
  ASSERT_EQ(d.steps.size(), 2u);
  EXPECT_EQ(d.steps[0].max_retries, 2);
  EXPECT_EQ(d.steps[0].params.at("src").as_string(), "$.input.file");
  EXPECT_EQ(d.steps[1].params.at("record").as_string(), "$.steps.Transfer.out");
  // Text round trip too.
  auto from_text = definition_from_text(doc.dump());
  ASSERT_TRUE(from_text);
  EXPECT_EQ(definition_to_json(from_text.value()).dump(), doc.dump());
}

TEST(DefinitionIo, ValidationRejectsBadDocuments) {
  EXPECT_FALSE(definition_from_text("not json"));
  EXPECT_FALSE(definition_from_text("[]"));
  EXPECT_FALSE(definition_from_text(R"({"name": "x"})"));                 // no steps
  EXPECT_FALSE(definition_from_text(R"({"name": "x", "steps": []})"));    // empty
  EXPECT_FALSE(definition_from_text(
      R"({"name": "", "steps": [{"name": "A", "provider": "p"}]})"));      // no name
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "", "provider": "p"}]})"));      // unnamed step
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "A"}]})"));                      // no provider
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "A", "provider": "p"},
                                  {"name": "A", "provider": "p"}]})"));    // dup names
  EXPECT_FALSE(definition_from_text(
      R"({"name": "x", "steps": [{"name": "A", "provider": "p",
                                   "max_retries": -1}]})"));               // bad retries
}

TEST(DefinitionIo, ParsedDefinitionActuallyRuns) {
  sim::Engine engine;
  auth::AuthService auth;
  FlowServiceConfig cfg;
  cfg.latency_jitter_frac = 0;
  FlowService service(&engine, &auth, cfg, 3);
  FakeProvider provider(&engine);
  service.register_provider(&provider);
  auth::Token token = auth.issue("u", {"flows"});

  auto def = definition_from_text(R"({
    "name": "loaded-from-json",
    "steps": [
      {"name": "A", "provider": "fake",
       "params": {"duration_s": 0.5, "tag": "$.input.greeting",
                  "fail_key": -1, "emit_progress": false,
                  "refuse_start": false}}
    ]
  })");
  ASSERT_TRUE(def);
  auto run = service.start(def.value(),
                           Json::object({{"greeting", "hello"}}), token);
  ASSERT_TRUE(run);
  engine.run();
  const RunInfo& info = service.info(run.value());
  EXPECT_EQ(info.state, RunState::Succeeded);
  EXPECT_EQ(info.step_outputs.at("A").at("echo").as_string(), "hello");
}

}  // namespace
}  // namespace pico::flow

// Property: for random flows/policies, the paper's decomposition invariants
// hold — total = active + overhead, every discovery lag is non-negative, and
// steps execute strictly in sequence.
namespace pico::flow {
namespace {

class TimingInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimingInvariants, DecompositionAlwaysConsistent) {
  util::Rng rng(GetParam());
  sim::Engine engine;
  auth::AuthService auth;
  FlowServiceConfig cfg;
  cfg.start_latency_s = rng.uniform(0.2, 3.0);
  cfg.inter_step_latency_s = rng.uniform(0.2, 3.0);
  switch (rng.uniform_int(0, 2)) {
    case 0: cfg.backoff = BackoffPolicy::paper_default(); break;
    case 1: cfg.backoff = BackoffPolicy::fixed(rng.uniform(0.5, 5)); break;
    default:
      cfg.backoff = BackoffPolicy::jittered(1.0, 1.7, 120, 0.3);
  }
  FlowService service(&engine, &auth, cfg, GetParam());
  FakeProvider provider(&engine);
  service.register_provider(&provider);
  auth::Token token = auth.issue("u", {"flows"});

  std::vector<RunId> runs;
  for (int f = 0; f < 6; ++f) {
    FlowDefinition def;
    def.name = "prop";
    int n_steps = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n_steps; ++i) {
      def.steps.push_back(FlowFixture::step(
          "S" + std::to_string(i), rng.uniform(0.2, 40.0),
          Json::object({{"emit_progress", rng.chance(0.5)}})));
    }
    auto run = service.start(def, Json(), token);
    ASSERT_TRUE(run);
    runs.push_back(run.value());
    engine.run_until(engine.now() + sim::Duration::from_seconds(rng.uniform(0, 20)));
  }
  engine.run();

  for (const auto& id : runs) {
    ASSERT_EQ(service.info(id).state, RunState::Succeeded);
    const RunTiming& t = service.timing(id);
    EXPECT_NEAR(t.total_s(), t.active_s() + t.overhead_s(), 1e-9);
    EXPECT_GT(t.overhead_s(), 0);
    sim::SimTime prev = t.submitted;
    for (const auto& s : t.steps) {
      EXPECT_GE(s.dispatched.ns, prev.ns);
      EXPECT_GE(s.service_started.ns, s.dispatched.ns);
      EXPECT_GE(s.service_completed.ns, s.service_started.ns);
      EXPECT_GE(s.discovered.ns, s.service_completed.ns);
      EXPECT_GE(s.discovery_lag_s(), 0.0);
      EXPECT_GT(s.polls, 0);
      prev = s.discovered;
    }
    EXPECT_GE(t.finished.ns, prev.ns);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingInvariants,
                         ::testing::Values(11, 23, 47, 89, 173));

}  // namespace
}  // namespace pico::flow

// Scheduler-backend determinism tests: the hierarchical timer wheel must be
// observationally identical to the reference heap backend — same firing
// order for every schedule shape (ties, cancels, re-entrant scheduling),
// exact behaviour at wheel cascade boundaries and in the overflow horizon,
// and lazy compaction that reclaims cancelled entries without perturbing
// the survivors' order.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/wheel.hpp"
#include "util/rng.hpp"

namespace pico::sim {
namespace {

constexpr int64_t kTickNs = int64_t{1} << TimerWheel::kTickShiftNs;

/// One scripted schedule op, precomputed so both backends replay the exact
/// same stimulus.
struct Op {
  int64_t at_ns = 0;
  bool cancellable = false;
  bool cancel = false;  ///< cancel the handle before running (if cancellable)
};

std::vector<Op> random_script(uint64_t seed, int n) {
  util::Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Op op;
    // Cluster timestamps so many ops share an exact nanosecond (FIFO ties)
    // and many share a wheel tick without sharing a timestamp.
    int64_t coarse = static_cast<int64_t>(rng.uniform(0, 200)) * kTickNs;
    int64_t fine = rng.chance(0.3)
                       ? 0
                       : static_cast<int64_t>(rng.uniform(0, kTickNs));
    op.at_ns = coarse + fine;
    op.cancellable = rng.chance(0.5);
    op.cancel = op.cancellable && rng.chance(0.4);
    ops.push_back(op);
  }
  return ops;
}

/// Replay `ops` on `backend` and return the sequence of op indices in firing
/// order. Cancels happen up front (before run), exercising reclaim of
/// entries parked anywhere in the wheel.
std::vector<int> replay(Engine::Backend backend, const std::vector<Op>& ops) {
  Engine engine(backend);
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  for (size_t i = 0; i < ops.size(); ++i) {
    int idx = static_cast<int>(i);
    auto fn = [&fired, idx] { fired.push_back(idx); };
    if (ops[i].cancellable) {
      handles.push_back(engine.schedule_at(SimTime{ops[i].at_ns}, fn));
    } else {
      engine.post_at(SimTime{ops[i].at_ns}, fn);
      handles.emplace_back();
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].cancel) handles[i].cancel();
  }
  engine.run();
  return fired;
}

class BackendParity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendParity, IdenticalFiringOrderWithTiesAndCancels) {
  std::vector<Op> ops = random_script(GetParam(), 2000);
  std::vector<int> heap = replay(Engine::Backend::Heap, ops);
  std::vector<int> wheel = replay(Engine::Backend::Wheel, ops);
  size_t cancelled = 0;
  for (const Op& op : ops) cancelled += op.cancel ? 1 : 0;
  ASSERT_EQ(heap.size(), ops.size() - cancelled);
  EXPECT_EQ(heap, wheel);
}

TEST_P(BackendParity, IdenticalOrderUnderReentrantScheduling) {
  auto run = [&](Engine::Backend backend) {
    util::Rng rng(GetParam());
    Engine engine(backend);
    std::vector<int> fired;
    int next_id = 0;
    std::function<void(int)> chain = [&](int depth) {
      fired.push_back(next_id++);
      if (depth > 0) {
        int fanout = 1 + static_cast<int>(rng.uniform(0, 2.99));
        for (int i = 0; i < fanout; ++i) {
          engine.post_after(Duration{static_cast<int64_t>(
                                rng.uniform(0, 3.0 * kTickNs))},
                            [&chain, depth] { chain(depth - 1); });
        }
      }
    };
    for (int i = 0; i < 40; ++i) {
      engine.schedule_at(
          SimTime{static_cast<int64_t>(rng.uniform(0, 100)) * kTickNs},
          [&chain] { chain(4); });
    }
    engine.run();
    return fired;
  };
  // Both backends consume the rng in the same call order (the script is
  // driven by firing order, which the contract fixes), so the expansions
  // must be identical trees.
  EXPECT_EQ(run(Engine::Backend::Heap), run(Engine::Backend::Wheel));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendParity,
                         ::testing::Values(1, 42, 1337, 271828, 3141592));

TEST(Wheel, SameTimestampTiesFireInScheduleOrder) {
  Engine engine(Engine::Backend::Wheel);
  std::vector<int> fired;
  // All at the same nanosecond, far enough out to park at level >= 1 first.
  SimTime at{300 * kTickNs + 7};
  for (int i = 0; i < 64; ++i) {
    engine.post_at(at, [&fired, i] { fired.push_back(i); });
  }
  engine.run();
  ASSERT_EQ(fired.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(fired[i], i);
}

TEST(Wheel, CascadeBoundariesFireInOrder) {
  // Events straddling the level-0/1 boundary (tick 256) and the level-1/2
  // boundary (tick 65536): each must cascade down and fire in exact time
  // order, including entries one tick before/after the crossing.
  Engine engine(Engine::Backend::Wheel);
  std::vector<int64_t> fire_ns;
  auto record = [&] { fire_ns.push_back(engine.now().ns); };
  std::vector<int64_t> ats;
  for (int64_t tick : {int64_t{255}, int64_t{256}, int64_t{257},
                       int64_t{65535}, int64_t{65536}, int64_t{65537}}) {
    ats.push_back(tick * kTickNs);          // exactly on the tick
    ats.push_back(tick * kTickNs + 1);      // just inside it
    ats.push_back(tick * kTickNs + kTickNs - 1);  // last ns of the tick
  }
  // Schedule in reverse so firing order is earned, not inherited.
  for (auto it = ats.rbegin(); it != ats.rend(); ++it) {
    engine.post_at(SimTime{*it}, record);
  }
  engine.run();
  ASSERT_EQ(fire_ns.size(), ats.size());
  std::vector<int64_t> want = ats;  // ats is already ascending
  EXPECT_EQ(fire_ns, want);
}

TEST(Wheel, OverflowHorizonEventsFireLastAndInOrder) {
  // Beyond 4 levels x 256 slots the wheel can't address the event; it goes
  // to the overflow list and must still fire in exact (time, seq) order.
  constexpr int64_t kHorizonNs = kTickNs << 32;  // 2^52 ns ~= 52 days
  Engine engine(Engine::Backend::Wheel);
  std::vector<int> fired;
  engine.post_at(SimTime{kHorizonNs * 2 + 5}, [&] { fired.push_back(3); });
  engine.post_at(SimTime{kHorizonNs * 2 + 5}, [&] { fired.push_back(4); });
  engine.post_at(SimTime{kHorizonNs + 1}, [&] { fired.push_back(2); });
  engine.post_at(SimTime{17}, [&] { fired.push_back(1); });
  engine.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(engine.now().ns, kHorizonNs * 2 + 5);
}

TEST(Wheel, CancelAfterPartialAdvanceNeverFires) {
  // Cancel an entry after the wheel has advanced past other events (so the
  // entry may have cascaded to a lower level): it must not fire, and the
  // engine must still drain.
  Engine engine(Engine::Backend::Wheel);
  bool fired = false;
  EventHandle victim = engine.schedule_at(SimTime{500 * kTickNs},
                                          [&] { fired = true; });
  engine.post_at(SimTime{100 * kTickNs}, [&, victim]() mutable {
    victim.cancel();
    victim.cancel();  // idempotent
  });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.cancelled_total(), 1u);
  EXPECT_TRUE(engine.idle());
}

TEST(Engine, CompactionReclaimsCancelledBacklog) {
  // The lazy-compaction contract: sweeps only start above the floor (8192
  // pending cancels) and once cancelled entries outnumber live ones, and a
  // sweep leaves the survivors' firing order untouched.
  for (auto backend : {Engine::Backend::Heap, Engine::Backend::Wheel}) {
    Engine engine(backend);
    std::vector<EventHandle> doomed;
    doomed.reserve(20000);
    // 20k cancellable timers far in the future + a few survivors.
    for (int i = 0; i < 20000; ++i) {
      doomed.push_back(
          engine.schedule_at(SimTime{(1000 + i) * kTickNs}, [] {}));
    }
    std::vector<int> fired;
    for (int i = 0; i < 4; ++i) {
      engine.post_at(SimTime{(2000000 + i) * kTickNs},
                     [&fired, i] { fired.push_back(i); });
    }
    for (EventHandle& h : doomed) h.cancel();
    EXPECT_EQ(engine.cancelled_total(), 20000u);
    EXPECT_EQ(engine.cancelled_pending(), 20000u);
    // Activity triggers maybe_compact; none of the cancelled should fire.
    engine.run();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_GE(engine.compactions(), 1u) << engine.backend_name();
    EXPECT_EQ(engine.cancelled_pending(), 0u);
    EXPECT_EQ(engine.queue_depth(), 0u);
  }
}

TEST(Engine, CompactionFloorAvoidsSmallSweeps) {
  // Below the 8192-pending floor a cancel-heavy queue is left alone: tiny
  // queues never pay an O(queue) sweep.
  Engine engine(Engine::Backend::Wheel);
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 100; ++i) {
    doomed.push_back(engine.schedule_at(SimTime{(10 + i) * kTickNs}, [] {}));
  }
  for (EventHandle& h : doomed) h.cancel();
  bool ran = false;
  engine.post_at(SimTime{kTickNs}, [&] { ran = true; });
  engine.run_until(SimTime{2 * kTickNs});
  EXPECT_TRUE(ran);
  EXPECT_EQ(engine.compactions(), 0u);
  // The cancelled entries still drain (skipped at their timestamps).
  engine.run();
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, RunAfterDrainIsANoOp) {
  // Regression: run() on an already-drained engine must return immediately
  // and leave now() untouched.
  Engine engine(Engine::Backend::Wheel);
  engine.post_at(SimTime{5 * kTickNs}, [] {});
  engine.run();
  int64_t settled = engine.now().ns;
  engine.run();
  EXPECT_EQ(engine.now().ns, settled);
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.events_processed(), 1u);
}

TEST(Engine, RunUntilThenResumeMatchesSingleRun) {
  // Chopping a schedule into run_until() windows must fire the same events
  // at the same times as one uninterrupted run(), on both backends.
  std::vector<Op> ops = random_script(777, 500);
  std::vector<int> whole = replay(Engine::Backend::Wheel, ops);
  for (auto backend : {Engine::Backend::Heap, Engine::Backend::Wheel}) {
    Engine engine(backend);
    std::vector<int> fired;
    for (size_t i = 0; i < ops.size(); ++i) {
      int idx = static_cast<int>(i);
      auto fn = [&fired, idx] { fired.push_back(idx); };
      if (ops[i].cancellable) {
        EventHandle h = engine.schedule_at(SimTime{ops[i].at_ns}, fn);
        if (ops[i].cancel) h.cancel();
      } else {
        engine.post_at(SimTime{ops[i].at_ns}, fn);
      }
    }
    for (int64_t t = 0; t <= 200; t += 13) {
      engine.run_until(SimTime{t * kTickNs});
    }
    engine.run();
    EXPECT_EQ(fired, whole) << engine.backend_name();
  }
}

}  // namespace
}  // namespace pico::sim

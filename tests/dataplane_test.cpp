// Parity and determinism tests for the parallel data plane. The contract
// under test (threadpool.hpp): every parallel kernel is BIT-IDENTICAL to its
// sequential twin for any pool width. Each test fuzzes tensors with a seeded
// Rng and sweeps pool widths {1, 2, 7, hardware_concurrency}.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "compress/codec.hpp"
#include "tensor/ops.hpp"
#include "util/crc64.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"
#include "video/convert.hpp"
#include "vision/image.hpp"

namespace pico {
namespace {

std::vector<size_t> test_widths() {
  std::vector<size_t> widths{1, 2, 7};
  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 2 && hw != 7) widths.push_back(hw);
  return widths;
}

tensor::Tensor<double> fuzz_tensor(tensor::Shape shape, uint64_t seed) {
  tensor::Tensor<double> t(std::move(shape));
  util::Rng rng(seed);
  for (double& v : t.data()) {
    // Mix of scales and signs; occasional exact duplicates to stress
    // min/max tie-breaking and normalization edge cases.
    v = rng.chance(0.1) ? 1234.5 : rng.normal(0.0, 1.0) * rng.uniform(0.1, 1e6);
  }
  return t;
}

// ------------------------------------------------------------ ThreadPool ----

TEST(ThreadPoolDataplane, ParallelForCoversEveryIndexOnce) {
  for (size_t width : test_widths()) {
    util::ThreadPool pool(width);
    const size_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " width " << width;
    }
  }
}

TEST(ThreadPoolDataplane, ParallelChunksPartitionIsExact) {
  util::ThreadPool pool(3);
  for (size_t n : {0UL, 1UL, 7UL, 64UL, 1000UL, 1001UL}) {
    for (size_t grain : {1UL, 7UL, 64UL, 5000UL}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_chunks(n, grain, [&](size_t b, size_t e) {
        ASSERT_LE(b, e);
        ASSERT_LE(e, n);
        for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
    }
  }
}

TEST(ThreadPoolDataplane, ReduceIsBitIdenticalAcrossWidths) {
  // Floating-point sum: associativity matters, so identical results across
  // widths prove the chunking is width-independent.
  auto t = fuzz_tensor({257, 119}, 42);
  const double* d = t.data().data();
  const size_t n = t.size();
  double reference = 0;
  {
    util::ThreadPool pool(1);
    reference = pool.parallel_reduce<double>(
        n, 1000, 0.0,
        [&](size_t b, size_t e) {
          double acc = 0;
          for (size_t i = b; i < e; ++i) acc += d[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
  }
  for (size_t width : test_widths()) {
    util::ThreadPool pool(width);
    double got = pool.parallel_reduce<double>(
        n, 1000, 0.0,
        [&](size_t b, size_t e) {
          double acc = 0;
          for (size_t i = b; i < e; ++i) acc += d[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
    // Bit-identical, not just approximately equal.
    EXPECT_EQ(std::memcmp(&got, &reference, sizeof(double)), 0)
        << "width " << width;
  }
}

TEST(ThreadPoolDataplane, ParallelChunksPropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_chunks(100, 10,
                                    [](size_t b, size_t) {
                                      if (b >= 50) throw std::runtime_error("boom");
                                    }),
               std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<size_t> count{0};
  pool.parallel_for(64, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolDataplane, NestedParallelismDoesNotDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<size_t> total{0};
  // Outer chunks fan out inner parallel_for on the SAME pool; the calling
  // thread drains chunks, so this must complete instead of deadlocking.
  pool.parallel_chunks(8, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      pool.parallel_for(16, [&](size_t) { total.fetch_add(1); });
    }
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

// --------------------------------------------------------------- convert ----

TEST(DataplaneParity, ConvertParallelMatchesFastAndNaive) {
  auto stack = fuzz_tensor({7, 33, 41}, 7001);
  auto naive = video::convert_naive(stack);
  auto fast = video::convert_fast(stack);
  ASSERT_EQ(naive.storage(), fast.storage());
  for (size_t width : test_widths()) {
    util::ThreadPool pool(width);
    auto par = video::convert_parallel(stack, pool);
    EXPECT_EQ(par.storage(), fast.storage()) << "width " << width;
  }
}

TEST(DataplaneParity, ConvertConstantStack) {
  // Degenerate min == max stack must agree across all variants.
  tensor::Tensor<double> stack(tensor::Shape{3, 8, 8});
  for (double& v : stack.data()) v = 5.0;
  auto fast = video::convert_fast(stack);
  util::ThreadPool pool(3);
  auto par = video::convert_parallel(stack, pool);
  EXPECT_EQ(par.storage(), fast.storage());
}

// ------------------------------------------------------------ reductions ----

TEST(DataplaneParity, MinMaxMatchesAcrossWidths) {
  auto t = fuzz_tensor({119, 257}, 99);
  auto seq = tensor::minmax_value(t);
  for (size_t width : test_widths()) {
    util::ThreadPool pool(width);
    auto par = tensor::minmax_value(t, pool);
    EXPECT_EQ(std::memcmp(&par.min, &seq.min, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&par.max, &seq.max, sizeof(double)), 0);
  }
}

TEST(DataplaneParity, SumAxis3MatchesAllAxesAllWidths) {
  auto cube = fuzz_tensor({13, 17, 19}, 314159);
  for (size_t axis : {0UL, 1UL, 2UL}) {
    auto seq = tensor::sum_axis3(cube, axis);
    for (size_t width : test_widths()) {
      util::ThreadPool pool(width);
      auto par = tensor::sum_axis3(cube, axis, pool);
      EXPECT_EQ(par.storage(), seq.storage())
          << "axis " << axis << " width " << width;
    }
  }
}

TEST(DataplaneParity, SumKeepAxis3MatchesAllKeepsAllWidths) {
  auto cube = fuzz_tensor({11, 23, 29}, 271828);
  for (size_t keep : {0UL, 1UL, 2UL}) {
    auto seq = tensor::sum_keep_axis3(cube, keep);
    for (size_t width : test_widths()) {
      util::ThreadPool pool(width);
      auto par = tensor::sum_keep_axis3(cube, keep, pool);
      EXPECT_EQ(par.storage(), seq.storage())
          << "keep " << keep << " width " << width;
    }
  }
}

// The false-sharing fix partitions the keep==2 output row on cache-line
// boundaries (aligned_grain). Partitioning is a pure scheduling choice, so
// results must stay bit-identical for long spectra (many line-sized chunks),
// spectra shorter than one cache line, and lengths with ragged tails.
TEST(DataplaneParity, SumKeepSpectrumAlignedChunksStayBitIdentical) {
  for (auto [d0, d1, d2] : {std::tuple<size_t, size_t, size_t>{4, 6, 4096},
                            {3, 5, 3},     // shorter than a cache line
                            {2, 2, 65},    // one line + 1-element tail
                            {1, 1, 1037}}) {
    auto cube = fuzz_tensor({d0, d1, d2}, d2 * 31 + d1);
    auto seq = tensor::sum_keep_axis3(cube, 2);
    for (size_t width : test_widths()) {
      util::ThreadPool pool(width);
      auto par = tensor::sum_keep_axis3(cube, 2, pool);
      EXPECT_EQ(par.storage(), seq.storage())
          << d0 << "x" << d1 << "x" << d2 << " width " << width;
    }
  }
}

TEST(DataplaneParity, ToU8NormalizedMatchesAcrossWidths) {
  auto t = fuzz_tensor({37, 43, 11}, 1618);
  auto seq = tensor::to_u8_normalized(t);
  for (size_t width : test_widths()) {
    util::ThreadPool pool(width);
    auto par = tensor::to_u8_normalized(t, pool);
    EXPECT_EQ(par.storage(), seq.storage()) << "width " << width;
  }
}

// ------------------------------------------------------------------ blur ----

TEST(DataplaneParity, GaussianBlurMatchesAcrossWidths) {
  for (auto [h, w] : {std::pair<size_t, size_t>{64, 64},
                      {3, 64},    // fewer rows than kernel radius (sigma 3)
                      {64, 3},    // narrow: interior fast path never fires
                      {1, 1}}) {
    auto img = fuzz_tensor({h, w}, h * 1000 + w);
    for (double sigma : {0.8, 2.0, 3.0}) {
      auto seq = vision::gaussian_blur(img, sigma);
      for (size_t width : test_widths()) {
        util::ThreadPool pool(width);
        auto par = vision::gaussian_blur(img, sigma, &pool);
        EXPECT_EQ(par.storage(), seq.storage())
            << h << "x" << w << " sigma " << sigma << " width " << width;
      }
    }
  }
}

// ------------------------------------------------------------------- crc ----

TEST(DataplaneParity, Crc64SlicedMatchesBytewiseAtAllAlignments) {
  util::Rng rng(0xC4C);
  std::vector<uint8_t> data(4096);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
  // Lengths straddling the 8-byte fast-path boundary and odd tails.
  for (size_t n : {0UL, 1UL, 7UL, 8UL, 9UL, 15UL, 16UL, 17UL, 63UL, 1024UL,
                   4095UL, 4096UL}) {
    EXPECT_EQ(util::crc64(data.data(), n), util::crc64_bytewise(data.data(), n))
        << "n=" << n;
  }
  // Unaligned start.
  EXPECT_EQ(util::crc64(data.data() + 3, 1021),
            util::crc64_bytewise(data.data() + 3, 1021));
}

// ------------------------------------------------------------------- lz -----

TEST(DataplaneParity, BlockLzByteIdenticalAcrossWidthsAndRoundTrips) {
  util::Rng rng(0xB10C);
  // ~3 blocks of compressible data with a small block size to exercise the
  // multi-block path cheaply.
  const size_t block = 4096;
  std::vector<uint8_t> payload(block * 3 - 117);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>((i / 31) & 0xFF);
    if (rng.chance(0.05)) payload[i] = static_cast<uint8_t>(rng.next_u64());
  }

  compress::Bytes reference;
  for (size_t width : test_widths()) {
    util::ThreadPool pool(width);
    compress::BlockLzCodec codec(block, &pool);
    auto compressed = codec.compress(payload);
    if (reference.empty()) reference = compressed;
    EXPECT_EQ(compressed, reference) << "width " << width;
    auto round = codec.decompress(compressed);
    ASSERT_TRUE(round) << "width " << width;
    EXPECT_EQ(round.value(), payload);
  }

  // A codec built with a different pool must decode the same stream.
  util::ThreadPool other(2);
  compress::BlockLzCodec codec(block, &other);
  auto round = codec.decompress(reference);
  ASSERT_TRUE(round);
  EXPECT_EQ(round.value(), payload);
}

TEST(DataplaneParity, BlockLzEdgeSizes) {
  util::ThreadPool pool(3);
  const size_t block = 1024;
  compress::BlockLzCodec codec(block, &pool);
  for (size_t n : {0UL, 1UL, block - 1, block, block + 1, 4 * block}) {
    std::vector<uint8_t> payload(n);
    for (size_t i = 0; i < n; ++i) payload[i] = static_cast<uint8_t>(i * 37);
    auto compressed = codec.compress(payload);
    auto round = codec.decompress(compressed);
    ASSERT_TRUE(round) << "n=" << n;
    EXPECT_EQ(round.value(), payload) << "n=" << n;
  }
}

TEST(DataplaneParity, BlockLzRejectsCorruptStream) {
  util::ThreadPool pool(2);
  compress::BlockLzCodec codec(1024, &pool);
  std::vector<uint8_t> payload(5000, 0x42);
  auto compressed = codec.compress(payload);
  ASSERT_GT(compressed.size(), 16u);
  compressed[compressed.size() / 2] ^= 0xFF;
  EXPECT_FALSE(codec.decompress(compressed));
}

}  // namespace
}  // namespace pico

// Fault-injection tests: the chaos schedule DSL, the injector applied to a
// live facility, and the acceptance scenario from the robustness work — a
// 5-minute transfer outage plus a 10% compute-node failure window plus a
// mid-campaign token expiry, with campaign-level recovery turned on.
#include <gtest/gtest.h>

#include <set>

#include "core/campaign.hpp"
#include "core/facility.hpp"
#include "core/report.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "telemetry/export.hpp"

namespace pico::fault {
namespace {

// ------------------------------------------------------------ schedule ------

TEST(FaultSchedule, KindNamesRoundTrip) {
  for (FaultKind kind :
       {FaultKind::LinkDegrade, FaultKind::LinkPartition,
        FaultKind::TransferOutage, FaultKind::ComputeOutage,
        FaultKind::PbsDrain, FaultKind::AuthOutage, FaultKind::TokenExpiry,
        FaultKind::NodeFailureRate, FaultKind::OrchestratorCrash,
        FaultKind::NotificationLoss, FaultKind::WireBitFlip,
        FaultKind::StorageCorrupt, FaultKind::TruncatedLanding}) {
    auto back = fault_kind_from_name(fault_kind_name(kind));
    ASSERT_TRUE(back);
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_FALSE(fault_kind_from_name("power_cut"));
}

TEST(FaultSchedule, JsonRoundTrip) {
  auto parsed = FaultSchedule::from_text(R"({
    "name": "beamtime-outage",
    "events": [
      {"kind": "transfer_outage", "at_s": 600, "duration_s": 300},
      {"kind": "node_failure_rate", "at_s": 0, "duration_s": 3600,
       "severity": 0.10},
      {"kind": "link_degrade", "at_s": 100, "duration_s": 60,
       "target": "user-switch", "severity": 0.25},
      {"kind": "token_expiry", "at_s": 1200}
    ]})");
  ASSERT_TRUE(parsed);
  const FaultSchedule& s = parsed.value();
  EXPECT_EQ(s.name, "beamtime-outage");
  ASSERT_EQ(s.events.size(), 4u);
  EXPECT_EQ(s.events[0].kind, FaultKind::TransferOutage);
  EXPECT_DOUBLE_EQ(s.events[1].severity, 0.10);
  EXPECT_EQ(s.events[2].target, "user-switch");
  EXPECT_DOUBLE_EQ(s.events[3].duration_s, 0.0);

  auto again = FaultSchedule::from_json(s.to_json());
  ASSERT_TRUE(again);
  EXPECT_EQ(again.value().to_json().dump(), s.to_json().dump());
}

TEST(FaultSchedule, ValidationRejectsBadDocuments) {
  EXPECT_FALSE(FaultSchedule::from_text("not json"));
  EXPECT_FALSE(FaultSchedule::from_text("[]"));
  EXPECT_FALSE(FaultSchedule::from_text(R"({"name": "x"})"));  // no events
  EXPECT_FALSE(FaultSchedule::from_text(
      R"({"name": "x", "events": [{"kind": "warp_core_breach"}]})"));
  EXPECT_FALSE(FaultSchedule::from_text(
      R"({"name": "x", "events": [{"kind": "transfer_outage", "at_s": -1}]})"));
  EXPECT_FALSE(FaultSchedule::from_text(
      R"({"name": "x",
          "events": [{"kind": "transfer_outage", "duration_s": -5}]})"));
  EXPECT_FALSE(FaultSchedule::from_text(
      R"({"name": "x", "events": [{"kind": "link_degrade", "severity": 0}]})"));
  EXPECT_FALSE(FaultSchedule::from_text(
      R"({"name": "x",
          "events": [{"kind": "node_failure_rate", "severity": 1.5}]})"));
  // The silent-corruption kinds are probabilities: severity must be in (0,1].
  EXPECT_FALSE(FaultSchedule::from_text(
      R"({"name": "x", "events": [{"kind": "wire_bit_flip", "severity": 0}]})"));
  EXPECT_FALSE(FaultSchedule::from_text(
      R"({"name": "x",
          "events": [{"kind": "storage_corrupt", "severity": 1.5}]})"));
  EXPECT_FALSE(FaultSchedule::from_text(
      R"({"name": "x",
          "events": [{"kind": "truncated_landing", "severity": -0.1}]})"));
  EXPECT_TRUE(FaultSchedule::from_text(
      R"({"name": "x",
          "events": [{"kind": "wire_bit_flip", "at_s": 10, "duration_s": 60,
                      "severity": 0.05}]})"));
}

TEST(FaultSchedule, DowntimeMergesOverlappingWindows) {
  FaultSchedule s;
  s.add(FaultEvent{FaultKind::TransferOutage, 100, 100, "", 0});
  s.add(FaultEvent{FaultKind::TransferOutage, 150, 100, "", 0});  // overlaps
  s.add(FaultEvent{FaultKind::TransferOutage, 400, 50, "", 0});   // disjoint
  s.add(FaultEvent{FaultKind::ComputeOutage, 0, 1000, "", 0});    // other kind
  // [100,250] merged with [400,450]: 150 + 50.
  EXPECT_DOUBLE_EQ(s.downtime_s(FaultKind::TransferOutage, 3600), 200.0);
  // Horizon clips the tail window.
  EXPECT_DOUBLE_EQ(s.downtime_s(FaultKind::TransferOutage, 425), 175.0);
  EXPECT_DOUBLE_EQ(s.downtime_s(FaultKind::ComputeOutage, 500), 500.0);
  EXPECT_DOUBLE_EQ(s.downtime_s(FaultKind::PbsDrain, 3600), 0.0);
}

}  // namespace
}  // namespace pico::fault

// ------------------------------------------------------------ injector ------
namespace pico::core {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultSchedule;

FacilityConfig fault_test_config(const std::string& tag) {
  FacilityConfig fc;
  fc.artifact_dir = testing::TempDir() + "/fault_test_artifacts_" + tag;
  fc.seed = 1234;
  fc.cost.provision_delay_s = 5.0;
  fc.cost.provision_jitter_s = 0.0;
  fc.cost.env_warmup_s = 1.0;
  fc.cost.env_warmup_jitter_s = 0.0;
  return fc;
}

sim::SimTime at(double s) { return sim::SimTime::from_seconds(s); }

TEST(Injector, TransferOutageWindowTogglesAvailability) {
  Facility facility(fault_test_config("inj_transfer"));
  FaultSchedule chaos;
  chaos.name = "t";
  chaos.add(FaultEvent{FaultKind::TransferOutage, 100, 50, "", 0});
  auto injector = facility.install_faults(chaos);
  ASSERT_TRUE(injector);

  facility.engine().run_until(at(99));
  EXPECT_TRUE(facility.transfer().available());
  facility.engine().run_until(at(120));
  EXPECT_FALSE(facility.transfer().available());
  facility.engine().run_until(at(200));
  EXPECT_TRUE(facility.transfer().available());
  // Begin + end both logged for diagnostics.
  ASSERT_EQ(injector.value()->log().size(), 2u);
  EXPECT_TRUE(injector.value()->log()[0].begin);
  EXPECT_FALSE(injector.value()->log()[1].begin);
}

TEST(Injector, OverlappingOutagesRestoreOnlyAtLastEnd) {
  Facility facility(fault_test_config("inj_overlap"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::ComputeOutage, 10, 50, "", 0});   // [10,60]
  chaos.add(FaultEvent{FaultKind::ComputeOutage, 30, 100, "", 0});  // [30,130]
  ASSERT_TRUE(facility.install_faults(chaos));
  facility.engine().run_until(at(20));
  EXPECT_FALSE(facility.compute().available());
  facility.engine().run_until(at(70));  // first window over, second still open
  EXPECT_FALSE(facility.compute().available());
  facility.engine().run_until(at(135));
  EXPECT_TRUE(facility.compute().available());
}

TEST(Injector, NodeFailureRateAppliedAndRestored) {
  Facility facility(fault_test_config("inj_nodes"));
  FaultSchedule chaos;
  // Empty target: falls back to the facility's Polaris endpoint.
  chaos.add(FaultEvent{FaultKind::NodeFailureRate, 50, 100, "", 0.10});
  ASSERT_TRUE(facility.install_faults(chaos));
  const auto& ep = facility.polaris_endpoint();
  EXPECT_DOUBLE_EQ(facility.compute().node_failure_prob(ep), 0.0);
  facility.engine().run_until(at(60));
  EXPECT_DOUBLE_EQ(facility.compute().node_failure_prob(ep), 0.10);
  facility.engine().run_until(at(160));
  EXPECT_DOUBLE_EQ(facility.compute().node_failure_prob(ep), 0.0);
}

TEST(Injector, PbsDrainHoldsQueue) {
  Facility facility(fault_test_config("inj_drain"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::PbsDrain, 10, 30, "", 0});
  ASSERT_TRUE(facility.install_faults(chaos));
  facility.engine().run_until(at(20));
  EXPECT_TRUE(facility.pbs().draining());
  facility.engine().run_until(at(50));
  EXPECT_FALSE(facility.pbs().draining());
}

TEST(Injector, AuthOutageFailsValidationFacilityWide) {
  Facility facility(fault_test_config("inj_auth"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::AuthOutage, 10, 20, "", 0});
  ASSERT_TRUE(facility.install_faults(chaos));
  EXPECT_TRUE(facility.auth().validate(facility.user_token(), "transfer"));
  facility.engine().run_until(at(15));
  EXPECT_FALSE(facility.auth().validate(facility.user_token(), "transfer"));
  facility.engine().run_until(at(40));
  EXPECT_TRUE(facility.auth().validate(facility.user_token(), "transfer"));
}

TEST(Injector, TokenExpiryRevokesAndRefreshReissues) {
  Facility facility(fault_test_config("inj_token"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::TokenExpiry, 30, 0, "", 0});
  ASSERT_TRUE(facility.install_faults(chaos));
  facility.engine().run_until(at(20));
  EXPECT_TRUE(facility.auth().validate(facility.user_token(), "flows"));
  // A refresh against a still-valid token is a no-op (no churn).
  auth::Token before = facility.user_token();
  EXPECT_EQ(facility.refresh_user_token(), before);
  facility.engine().run_until(at(40));
  EXPECT_FALSE(facility.auth().validate(facility.user_token(), "flows"));
  // Refresh after expiry mints a usable replacement.
  facility.refresh_user_token();
  EXPECT_NE(facility.user_token(), before);
  for (const char* scope : {"transfer", "compute", "search.ingest", "flows"}) {
    EXPECT_TRUE(facility.auth().validate(facility.user_token(), scope));
  }
}

TEST(Injector, LinkDegradeScalesCapacityAndRestores) {
  Facility facility(fault_test_config("inj_degrade"));
  double original =
      facility.topology().link(facility.user_switch_link()).capacity_bps;
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::LinkDegrade, 10, 20, "user-switch", 0.25});
  ASSERT_TRUE(facility.install_faults(chaos));
  facility.engine().run_until(at(15));
  EXPECT_NEAR(
      facility.topology().link(facility.user_switch_link()).capacity_bps,
      original * 0.25, 1e-6);
  facility.engine().run_until(at(40));
  EXPECT_NEAR(
      facility.topology().link(facility.user_switch_link()).capacity_bps,
      original, 1e-6);
}

TEST(Injector, LinkPartitionSeversRouteForWindow) {
  Facility facility(fault_test_config("inj_partition"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::LinkPartition, 10, 20, "user-switch", 0});
  ASSERT_TRUE(facility.install_faults(chaos));
  auto user = facility.topology().node("userpc");
  auto eagle = facility.topology().node("eagle");
  ASSERT_TRUE(user);
  ASSERT_TRUE(eagle);
  EXPECT_TRUE(facility.topology().route(user.value(), eagle.value()));
  facility.engine().run_until(at(15));
  EXPECT_FALSE(facility.topology().route(user.value(), eagle.value()));
  facility.engine().run_until(at(40));
  EXPECT_TRUE(facility.topology().route(user.value(), eagle.value()));
}

TEST(Injector, UnknownLinkTargetRejectedAtInstall) {
  Facility facility(fault_test_config("inj_badlink"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::LinkPartition, 10, 20, "no-such-link", 0});
  EXPECT_FALSE(facility.install_faults(chaos));
}

// ----------------------------------------------- chaos campaign recovery ----

/// The acceptance scenario: hyperspectral campaign under a 5-minute transfer
/// endpoint outage, a 10% compute-node failure-rate window, and one
/// mid-campaign token expiry — recovery enabled.
CampaignConfig acceptance_config() {
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 1800;
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "chaos";
  cfg.chaos.name = "acceptance";
  cfg.chaos.add(FaultEvent{FaultKind::TransferOutage, 600, 300, "", 0});
  cfg.chaos.add(FaultEvent{FaultKind::NodeFailureRate, 0, 1800, "", 0.10});
  cfg.chaos.add(FaultEvent{FaultKind::TokenExpiry, 1200, 0, "", 0});
  cfg.recovery.enabled = true;
  cfg.recovery.resubmit_budget = 4;
  cfg.recovery.resubmit_delay_s = 60;
  cfg.step_timeouts = {{"Transfer", 600}};
  return cfg;
}

CampaignResult run_acceptance(const std::string& tag) {
  FacilityConfig fc = fault_test_config(tag);
  fc.seed = 4242;
  Facility facility(fc);
  CampaignResult result = run_campaign(facility, acceptance_config());

  // Zero double-publish: every eventually-successful flow owns exactly one
  // search record (the Publish subject is the document id), and no label
  // settles twice.
  std::set<std::string> labels;
  size_t successes = 0;
  for (const auto* bucket : {&result.in_window, &result.late}) {
    for (const auto& f : *bucket) {
      EXPECT_TRUE(labels.insert(f.label).second) << "double-settled " << f.label;
      if (f.success) ++successes;
    }
  }
  EXPECT_EQ(facility.index().size(), successes);
  return result;
}

TEST(ChaosCampaign, AcceptanceScenarioRecoversAtLeast95Percent) {
  CampaignResult result = run_acceptance("acceptance");
  const RobustnessStats& rb = result.robustness;
  size_t logical = result.in_window.size() + result.late.size();

  ASSERT_GT(logical, 30u);  // the campaign actually ran at scale
  // The outage and the node failures were felt...
  EXPECT_GT(rb.run_failures, 0u);
  EXPECT_GT(rb.resubmits, 0u);
  EXPECT_GT(rb.recovered, 0u);
  EXPECT_GT(rb.launches, logical);
  // ...and recovery brought eventual success to >= 95%.
  EXPECT_GE(rb.eventual_success_pct(logical), 95.0);
  EXPECT_LE(rb.lost, logical / 20);
  // Recovery accounting is self-consistent.
  EXPECT_EQ(rb.launches, logical + rb.resubmits);
  EXPECT_GT(rb.mttr_s.count(), 0u);
  EXPECT_GE(rb.downtime_s.at("transfer_outage"), 300.0 - 1e-9);

  // The report renders with the headline sections present.
  std::string report = render_robustness(result);
  EXPECT_NE(report.find("transfer_outage"), std::string::npos);
  EXPECT_NE(report.find("eventually succeeded"), std::string::npos);
  EXPECT_NE(report.find("MTTR"), std::string::npos);
  EXPECT_NE(report.find("Circuit breakers"), std::string::npos);
}

TEST(ChaosCampaign, SameSeedProducesByteIdenticalRobustnessReports) {
  CampaignResult a = run_acceptance("det_a");
  CampaignResult b = run_acceptance("det_b");
  EXPECT_EQ(render_robustness(a), render_robustness(b));
  EXPECT_EQ(flows_csv(a), flows_csv(b));
}

TEST(ChaosCampaign, OrchestratorCrashReplayedFromJournal) {
  FacilityConfig fc = fault_test_config("crash");
  fc.seed = 515;
  Facility facility(fc);
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 600;
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "crash";
  cfg.chaos.name = "blackout";
  cfg.chaos.add(FaultEvent{FaultKind::OrchestratorCrash, 200, 100, "", 0});
  cfg.recovery.enabled = true;
  CampaignResult result = run_campaign(facility, cfg);

  size_t logical = result.in_window.size() + result.late.size();
  ASSERT_GT(logical, 5u);
  // Flows that settled during the blackout were reconciled from the journal,
  // exactly once each.
  EXPECT_GT(result.robustness.crash_replays, 0u);
  EXPECT_EQ(result.robustness.lost, 0u);
  std::set<std::string> labels;
  for (const auto* bucket : {&result.in_window, &result.late}) {
    for (const auto& f : *bucket) {
      EXPECT_TRUE(labels.insert(f.label).second) << "double-settled " << f.label;
      EXPECT_TRUE(f.success);
    }
  }
  EXPECT_EQ(facility.index().size(), labels.size());
}

TEST(Injector, WireBitFlipWindowSetsAndRestoresProbability) {
  Facility facility(fault_test_config("inj_biflip"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::WireBitFlip, 100, 50, "", 0.2});
  ASSERT_TRUE(facility.install_faults(chaos));
  EXPECT_DOUBLE_EQ(facility.transfer().wire_corruption_prob(), 0.0);
  facility.engine().run_until(at(120));
  EXPECT_DOUBLE_EQ(facility.transfer().wire_corruption_prob(), 0.2);
  facility.engine().run_until(at(200));
  EXPECT_DOUBLE_EQ(facility.transfer().wire_corruption_prob(), 0.0);
}

TEST(Injector, TruncatedLandingWindowSetsAndRestoresProbability) {
  Facility facility(fault_test_config("inj_trunc"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::TruncatedLanding, 100, 50, "", 0.4});
  ASSERT_TRUE(facility.install_faults(chaos));
  EXPECT_DOUBLE_EQ(facility.transfer().truncation_prob(), 0.0);
  facility.engine().run_until(at(120));
  EXPECT_DOUBLE_EQ(facility.transfer().truncation_prob(), 0.4);
  facility.engine().run_until(at(200));
  EXPECT_DOUBLE_EQ(facility.transfer().truncation_prob(), 0.0);
}

TEST(Injector, StorageCorruptEventFlipsBitsAtRest) {
  Facility facility(fault_test_config("inj_rot"));
  // Pre-stage delivered objects on Eagle (the injector's default store).
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(facility.eagle().put("exp/f" + std::to_string(i) + ".emd",
                                     std::vector<uint8_t>(100, 3),
                                     facility.engine().now()));
  }
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::StorageCorrupt, 50, 0, "", 0.3});
  ASSERT_TRUE(facility.install_faults(chaos));
  facility.engine().run_until(at(49));
  for (const auto& path : facility.eagle().list()) {
    EXPECT_TRUE(facility.eagle().verify(path).value()) << path;
  }
  facility.engine().run_until(at(60));
  int corrupt = 0;
  for (const auto& path : facility.eagle().list()) {
    if (!facility.eagle().verify(path).value()) ++corrupt;
  }
  EXPECT_GT(corrupt, 0);
  EXPECT_LT(corrupt, 40);  // severity is a probability, not a wipe
}

TEST(Injector, StorageCorruptUnknownStoreTargetRejected) {
  Facility facility(fault_test_config("inj_badstore"));
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::StorageCorrupt, 10, 0, "no-such-store", 0.5});
  EXPECT_FALSE(facility.install_faults(chaos));
}

TEST(Injector, NotificationLossWindowSetsAndRestoresProbability) {
  Facility facility(fault_test_config("inj_notif"));
  FaultSchedule chaos;
  chaos.name = "nl";
  chaos.add(FaultEvent{FaultKind::NotificationLoss, 100, 50, "", 0.35});
  auto injector = facility.install_faults(chaos);
  ASSERT_TRUE(injector);

  facility.engine().run_until(at(99));
  EXPECT_DOUBLE_EQ(facility.flows().notification_loss_prob(), 0.0);
  facility.engine().run_until(at(120));
  EXPECT_DOUBLE_EQ(facility.flows().notification_loss_prob(), 0.35);
  facility.engine().run_until(at(200));
  EXPECT_DOUBLE_EQ(facility.flows().notification_loss_prob(), 0.0);
}

namespace {

/// Stable artifact fingerprint of the search index: every published record's
/// id + content, sorted by id so ingest order does not matter. Excludes
/// ingest timestamps — publication *content* must not depend on how the
/// orchestrator learned about completions.
std::string index_fingerprint(Facility& facility) {
  std::map<std::string, std::string> by_id;
  for (const search::Document* doc : facility.index().snapshot()) {
    by_id[doc->id] = doc->content.dump(2);
  }
  std::string out;
  for (const auto& [id, content] : by_id) out += id + "\n" + content + "\n";
  return out;
}

CampaignConfig notification_loss_campaign() {
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 1200;
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "nl";
  return cfg;
}

}  // namespace

// The notification-loss fallback, end to end: an event-driven campaign whose
// completion notifications are ALL dropped must still settle every flow (the
// adaptive reconcile poller discovers each completion) and publish records
// byte-identical to a pure-polling campaign's.
TEST(ChaosCampaign, TotalNotificationLossSettlesAllFlowsViaAdaptivePoller) {
  FacilityConfig fa = fault_test_config("notif_loss_events");
  fa.flow.completion_mode = flow::CompletionMode::Events;
  Facility events_facility(fa);
  CampaignConfig cfg = notification_loss_campaign();
  cfg.chaos.name = "total-notification-loss";
  // The window outlives the campaign so late flows also lose every delivery.
  cfg.chaos.add(FaultEvent{FaultKind::NotificationLoss, 0, 4000, "", 1.0});
  CampaignResult with_loss = run_campaign(events_facility, cfg);

  EXPECT_EQ(with_loss.failed, 0u);
  ASSERT_GT(with_loss.in_window.size(), 10u);
  for (const auto* bucket : {&with_loss.in_window, &with_loss.late}) {
    for (const auto& f : *bucket) {
      EXPECT_TRUE(f.success) << f.label;
      for (const auto& s : f.timing.steps) {
        EXPECT_EQ(s.notifications, 0) << f.label << "/" << s.name;
        EXPECT_GT(s.polls, 0) << f.label << "/" << s.name;
      }
    }
  }
  // Providers did emit notifications; chaos dropped every one of them.
  auto summary = telemetry::summarize(events_facility.trace(),
                                      events_facility.telemetry().metrics);
  EXPECT_GT(summary.signaling.notifications_lost, 0u);
  EXPECT_EQ(summary.signaling.notifications, 0u);  // delivered = emitted - lost
  EXPECT_GT(summary.signaling.polls, 0u);

  // Same campaign under the paper's pure-polling orchestrator: the published
  // artifacts must be byte-identical — signaling changes *when* completions
  // are discovered, never *what* gets produced.
  Facility polling_facility(fault_test_config("notif_loss_polling"));
  CampaignResult polling = run_campaign(polling_facility,
                                        notification_loss_campaign());
  EXPECT_EQ(polling.failed, 0u);
  EXPECT_EQ(events_facility.index().size(), polling_facility.index().size());
  EXPECT_EQ(index_fingerprint(events_facility),
            index_fingerprint(polling_facility));
}

// ------------------------------------------- end-to-end integrity (A9) -----

namespace {

double counter_value(Facility& facility, const std::string& name,
                     const std::string& help,
                     const telemetry::Labels& labels = {}) {
  return facility.telemetry().metrics.counter(name, help, labels).value();
}

constexpr const char* kCorruptionHelp =
    "Integrity violations detected, by location";
constexpr const char* kResumeHelp =
    "Chunks skipped on retry because the manifest already verified them";

/// One streaming transfer flow interrupted by a link partition at ~50% file
/// progress. The partition outlives the Transfer step's timeout, so the
/// orchestrator abandons the attempt and dispatches a fresh transfer task.
flow::RunId run_partitioned_flow(Facility& facility) {
  auto def = hyperspectral_flow(facility);
  for (auto& step : def.steps) {
    if (step.name != "Transfer") continue;
    step.params["streaming_chunk_bytes"] = static_cast<int64_t>(8'000'000);
    step.timeout_s = 25;
    step.max_retries = 4;
  }
  // Wire plan: chunks start landing ~t=4 at 10.5 MB/s (84 Mbps per-flow cap),
  // one 8 MB chunk every ~0.76 s. Partition at t=8.6 leaves ~6 of 12 chunks
  // (~50%) verified; the stalled attempt times out at ~t=26.5 and the retry
  // finishes after the t=28.6 heal.
  FaultSchedule chaos;
  chaos.add(FaultEvent{FaultKind::LinkPartition, 8.6, 20, "user-switch", 0});
  EXPECT_TRUE(facility.install_faults(chaos));
  EXPECT_TRUE(facility.stage_virtual_file("raw/resume.emd", 91'000'000));

  FlowInput input;
  input.file = "raw/resume.emd";
  input.dest = "exp/resume.emd";
  input.artifact_prefix = "resume";
  input.title = "resume acceptance";
  input.subject = "resume-acceptance";
  auto run = facility.flows().start(def, input.to_json(),
                                    facility.user_token(), "resume");
  EXPECT_TRUE(run);
  facility.engine().run();
  return run.value();
}

FacilityConfig resume_test_config(const std::string& tag) {
  FacilityConfig fc = fault_test_config(tag);
  fc.seed = 777;
  fc.cost.transfer_setup_jitter_s = 0.0;  // keep the fault at ~50% progress
  fc.transfer_max_retries = 8;
  return fc;
}

}  // namespace

// Acceptance: with verified resume, the transfer task dispatched after the
// timeout resumes from the manifest and moves < 60% of the file's bytes.
TEST(Integrity, RetriedFlowTransferResumesFromManifest) {
  Facility facility(resume_test_config("resume_on"));
  flow::RunId run = run_partitioned_flow(facility);

  const flow::RunInfo& info = facility.flows().info(run);
  ASSERT_EQ(info.state, flow::RunState::Succeeded) << info.error;
  ASSERT_GE(facility.flows().timing(run).steps.size(), 1u);
  EXPECT_GE(facility.flows().timing(run).steps[0].timeouts, 1);

  const util::Json& out = info.step_outputs.at("Transfer");
  EXPECT_GT(out.at("chunks_resumed").as_int(0), 0);
  // The retried transfer moved well under 60% of the file.
  EXPECT_LT(out.at("wire_bytes").as_int(0),
            static_cast<int64_t>(0.6 * 91'000'000));
  EXPECT_GT(counter_value(facility, "transfer_chunks_resumed_total",
                          kResumeHelp),
            0.0);
  EXPECT_TRUE(facility.eagle().exists("exp/resume.emd"));
  EXPECT_TRUE(facility.eagle().verify("exp/resume.emd").value());
}

// The pre-PR baseline under the identical fault: whole-file restart. The
// abandoned attempt and its replacement each move the full file, so >= 150%
// of the bytes cross the wire.
TEST(Integrity, RestartModeMovesTheFileTwice) {
  Facility facility(resume_test_config("resume_off"));
  facility.transfer().set_verified_resume(false);
  flow::RunId run = run_partitioned_flow(facility);

  const flow::RunInfo& info = facility.flows().info(run);
  ASSERT_EQ(info.state, flow::RunState::Succeeded) << info.error;
  const util::Json& out = info.step_outputs.at("Transfer");
  EXPECT_EQ(out.at("chunks_resumed").as_int(-1), 0);
  // The successful attempt alone re-sent everything...
  EXPECT_GE(out.at("wire_bytes").as_int(0), 91'000'000);
  // ...and together with the abandoned attempt the wire moved >= 150%.
  EXPECT_GE(counter_value(facility, "transfer_wire_bytes_total",
                          "Bytes that crossed the network (after compression)"),
            1.5 * 91'000'000);
}

// Acceptance: a campaign under seeded wire bit-flips publishes a search index
// byte-identical to the fault-free run's — corruption is always caught and
// repaired before publication, never laundered into results.
TEST(Integrity, WireBitFlipCampaignIndexMatchesFaultFree) {
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 1200;
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "wf";
  cfg.recovery.enabled = true;
  cfg.recovery.resubmit_budget = 3;

  FacilityConfig fc = fault_test_config("wireflip_chaos");
  fc.seed = 2023;
  fc.transfer_max_retries = 8;
  Facility chaos_facility(fc);
  CampaignConfig chaos_cfg = cfg;
  chaos_cfg.chaos.name = "wire-bit-flips";
  // The window outlives the campaign so late transfers are exposed too.
  chaos_cfg.chaos.add(FaultEvent{FaultKind::WireBitFlip, 0, 4000, "", 0.15});
  CampaignResult with_chaos = run_campaign(chaos_facility, chaos_cfg);

  EXPECT_EQ(with_chaos.failed, 0u);
  EXPECT_EQ(with_chaos.robustness.lost, 0u);
  ASSERT_GT(with_chaos.in_window.size(), 10u);
  // The flips actually happened and were caught.
  EXPECT_GT(counter_value(chaos_facility, "corruption_detected_total",
                          kCorruptionHelp, {{"where", "wire"}}),
            0.0);

  FacilityConfig clean_fc = fault_test_config("wireflip_clean");
  clean_fc.seed = 2023;
  clean_fc.transfer_max_retries = 8;
  Facility clean_facility(clean_fc);
  CampaignResult clean = run_campaign(clean_facility, cfg);
  EXPECT_EQ(clean.failed, 0u);

  EXPECT_EQ(chaos_facility.index().size(), clean_facility.index().size());
  EXPECT_EQ(chaos_facility.index().fingerprint(),
            clean_facility.index().fingerprint());
}

// At-rest bit rot during a campaign: the periodic scrubber quarantines the
// damaged objects and provenance-driven repair re-lands clean copies, so the
// campaign ends with every delivered object intact.
TEST(Integrity, ScrubberRepairsSeededStorageCorruption) {
  FacilityConfig fc = fault_test_config("scrub_campaign");
  fc.seed = 99;
  Facility facility(fc);

  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 1200;
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "scrub";
  cfg.scrub_interval_s = 100;
  cfg.chaos.name = "bit-rot";
  cfg.chaos.add(FaultEvent{FaultKind::StorageCorrupt, 400, 0, "", 0.5});
  cfg.chaos.add(FaultEvent{FaultKind::StorageCorrupt, 800, 0, "", 0.5});
  CampaignResult result = run_campaign(facility, cfg);

  EXPECT_EQ(result.failed, 0u);
  ASSERT_NE(facility.scrubber(), nullptr);
  const auto& stats = facility.scrubber()->stats();
  EXPECT_GT(stats.scans, 5u);
  EXPECT_GT(stats.corrupt_found, 0u);
  EXPECT_EQ(stats.repairs_requested, stats.corrupt_found);
  EXPECT_GT(facility.eagle().quarantine_count(), 0u);
  EXPECT_GT(counter_value(facility, "corruption_detected_total",
                          kCorruptionHelp, {{"where", "at_rest"}}),
            0.0);
  EXPECT_GT(counter_value(facility, "transfer_repairs_total",
                          "Re-transfers submitted to repair quarantined "
                          "objects"),
            0.0);
  // Every repair landed: the namespace holds no corrupt object.
  for (const auto& path : facility.eagle().list()) {
    EXPECT_TRUE(facility.eagle().verify(path).value()) << path;
  }
}

// Exactly-once publication: dead-letter resubmission and crash replay of a
// flow whose Publish already landed must not double-publish. The idempotency
// key (subject + content hash) suppresses the duplicate and the campaign
// keeps one record per flow.
TEST(Integrity, DuplicatePublishSuppressedByIdempotencyKey) {
  FacilityConfig fc = fault_test_config("dup_publish");
  fc.seed = 31;
  Facility facility(fc);
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 1200;
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "dup";
  // Publish takes ~1.2 s but the poller only discovers completion at the
  // ~3 s mark; a 2.5 s timeout abandons many first attempts *after* their
  // ingest has irrevocably started. The re-dispatched Publish must dedupe
  // against the attempt that still lands.
  cfg.step_timeouts["Publish"] = 2.5;
  CampaignResult result = run_campaign(facility, cfg);

  size_t successes = 0;
  std::set<std::string> labels;
  for (const auto* bucket : {&result.in_window, &result.late}) {
    for (const auto& f : *bucket) {
      EXPECT_TRUE(labels.insert(f.label).second) << "double-settled " << f.label;
      if (f.success) ++successes;
    }
  }
  ASSERT_GT(successes, 10u);
  // One record per successful flow, even though retried publishes happened.
  EXPECT_EQ(facility.index().size(), successes);
  EXPECT_GT(counter_value(facility, "publish_duplicates_suppressed_total",
                          "Search publishes suppressed by idempotency keys"),
            0.0);
}

TEST(ChaosCampaign, RecoveryDisabledCountsFailuresClassically) {
  FacilityConfig fc = fault_test_config("norecovery");
  Facility facility(fc);
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 600;
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "nr";
  cfg.chaos.name = "outage-only";
  cfg.chaos.add(FaultEvent{FaultKind::TransferOutage, 100, 200, "", 0});
  // recovery.enabled stays false: failed flows are lost, not resubmitted.
  CampaignResult result = run_campaign(facility, cfg);
  EXPECT_GT(result.failed, 0u);
  EXPECT_EQ(result.robustness.resubmits, 0u);
  EXPECT_EQ(result.robustness.lost, result.failed);
  EXPECT_EQ(result.robustness.recovered, 0u);
}

}  // namespace
}  // namespace pico::core

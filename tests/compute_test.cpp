// Globus-Compute-like service tests: function registry, endpoint scaling,
// warm-node reuse (the paper's first-flow effect), failures, idle release.
#include <gtest/gtest.h>

#include "auth/auth.hpp"
#include "compute/service.hpp"
#include "hpcsim/pbs.hpp"

namespace pico::compute {
namespace {

using util::Json;

struct ComputeFixture : ::testing::Test {
  sim::Engine engine;
  auth::AuthService auth;
  std::unique_ptr<hpcsim::PbsScheduler> pbs;
  std::unique_ptr<ComputeService> service;
  EndpointId endpoint;
  auth::Token token;

  void setup(int nodes = 4, double provision_s = 10.0, double warmup_s = 5.0,
             double idle_timeout_s = 100.0, int max_blocks = 4) {
    hpcsim::ClusterConfig ccfg;
    ccfg.node_count = nodes;
    ccfg.provision_delay_s = provision_s;
    ccfg.provision_jitter_s = 0.0;
    pbs = std::make_unique<hpcsim::PbsScheduler>(&engine, ccfg, 7);
    service = std::make_unique<ComputeService>(&engine, &auth, 7);
    EndpointConfig ecfg;
    ecfg.name = "test";
    ecfg.scheduler = pbs.get();
    ecfg.max_blocks = max_blocks;
    ecfg.env_warmup_s = warmup_s;
    ecfg.env_warmup_jitter_s = 0.0;
    ecfg.warm_idle_timeout_s = idle_timeout_s;
    ecfg.dispatch_latency_s = 0.1;
    endpoint = service->register_endpoint(ecfg);
    token = auth.issue("user@anl.gov", {"compute"});
  }

  FunctionId register_echo(double cost_s = 2.0) {
    FunctionSpec spec;
    spec.name = "echo";
    spec.body = [](const Json& args) {
      return util::Result<Json>::ok(Json::object({{"echo", args}}));
    };
    spec.cost = [cost_s](const Json&) { return cost_s; };
    return service->register_function(std::move(spec));
  }
};

TEST_F(ComputeFixture, ExecutesFunctionAndReturnsResult) {
  setup();
  FunctionId fn = register_echo();
  auto task = service->submit(endpoint, fn, Json::object({{"x", 41}}), token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_TRUE(info.cold_start);
  auto result = service->result(task.value());
  ASSERT_TRUE(result);
  EXPECT_EQ(result.value().at_path("echo.x").as_int(), 41);
}

TEST_F(ComputeFixture, AuthAndLookupValidation) {
  setup();
  FunctionId fn = register_echo();
  EXPECT_FALSE(service->submit(endpoint, fn, Json(), "bad-token"));
  auth::Token wrong = auth.issue("u", {"transfer"});
  EXPECT_FALSE(service->submit(endpoint, fn, Json(), wrong));
  EXPECT_FALSE(service->submit("ep-nope", fn, Json(), token));
  EXPECT_FALSE(service->submit(endpoint, "fn-nope", Json(), token));
}

TEST_F(ComputeFixture, ColdStartPaysProvisionAndWarmup) {
  setup(/*nodes=*/4, /*provision=*/10, /*warmup=*/5);
  FunctionId fn = register_echo(2.0);
  auto task = service->submit(endpoint, fn, Json(), token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  // dispatch 0.1 + provision 10 -> started; warmup 5 + cost 2 inside run.
  EXPECT_NEAR(info.started.seconds(), 10.1, 0.5);
  EXPECT_NEAR(info.completed.seconds() - info.started.seconds(), 7.0, 0.1);
}

TEST_F(ComputeFixture, WarmNodeReuseSkipsProvisionAndWarmup) {
  setup(4, 10, 5);
  FunctionId fn = register_echo(2.0);
  auto first = service->submit(endpoint, fn, Json(), token);
  ASSERT_TRUE(first);
  // Drain the first task but stop before the idle timeout releases the node.
  engine.run_until(sim::SimTime::from_seconds(30));
  ASSERT_EQ(service->status(first.value()).state, TaskState::Succeeded);
  double t0 = engine.now().seconds();
  auto second = service->submit(endpoint, fn, Json(), token);
  ASSERT_TRUE(second);
  engine.run_until(sim::SimTime::from_seconds(60));
  TaskInfo info = service->status(second.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_FALSE(info.cold_start);
  // Warm: dispatch 0.1 + cost 2 only.
  EXPECT_NEAR(info.completed.seconds() - t0, 2.1, 0.2);
  EXPECT_EQ(service->warm_node_count(endpoint), 1u);
  engine.run();  // idle timeout eventually returns the node
}

TEST_F(ComputeFixture, QueueGrowsAdditionalBlocksUpToMax) {
  setup(/*nodes=*/8, /*provision=*/10, /*warmup=*/0, /*idle=*/1000,
        /*max_blocks=*/2);
  FunctionId fn = register_echo(50.0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service->submit(endpoint, fn, Json::object({{"i", i}}), token));
  }
  engine.run_until(sim::SimTime::from_seconds(30));
  // Only two blocks may be held despite four queued tasks.
  EXPECT_EQ(service->warm_node_count(endpoint), 2u);
  engine.run();
  // All four eventually complete on the two nodes.
  EXPECT_EQ(pbs->jobs_started(), 2u);
}

TEST_F(ComputeFixture, FunctionFailurePropagates) {
  setup();
  FunctionSpec spec;
  spec.name = "boom";
  spec.body = [](const Json&) {
    return util::Result<Json>::err("deliberate failure", "test");
  };
  spec.cost = [](const Json&) { return 1.0; };
  FunctionId fn = service->register_function(std::move(spec));
  auto task = service->submit(endpoint, fn, Json(), token);
  ASSERT_TRUE(task);
  engine.run_until(sim::SimTime::from_seconds(30));
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Failed);
  EXPECT_EQ(info.error, "deliberate failure");
  EXPECT_FALSE(service->result(task.value()));
  // The node survives a failed task and is reusable (until idle timeout).
  EXPECT_EQ(service->warm_node_count(endpoint), 1u);
  engine.run();
}

TEST_F(ComputeFixture, IdleNodesReleasedAfterTimeout) {
  setup(4, 10, 0, /*idle_timeout=*/20.0);
  FunctionId fn = register_echo(1.0);
  auto task = service->submit(endpoint, fn, Json(), token);
  ASSERT_TRUE(task);
  engine.run();
  // After the idle timeout the node was released back to PBS.
  EXPECT_EQ(service->warm_node_count(endpoint), 0u);
  EXPECT_EQ(pbs->free_nodes(), 4);
}

TEST_F(ComputeFixture, CostFunctionReceivesArgs) {
  setup(4, 1, 0);
  FunctionSpec spec;
  spec.name = "sized";
  spec.body = [](const Json&) { return util::Result<Json>::ok(Json()); };
  spec.cost = [](const Json& args) { return args.at("seconds").as_double(1.0); };
  FunctionId fn = service->register_function(std::move(spec));
  auto task =
      service->submit(endpoint, fn, Json::object({{"seconds", 25.0}}), token);
  ASSERT_TRUE(task);
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_NEAR(info.completed.seconds() - info.started.seconds(), 25.0, 0.1);
}

TEST_F(ComputeFixture, ResultBeforeCompletionIsError) {
  setup();
  FunctionId fn = register_echo(10.0);
  auto task = service->submit(endpoint, fn, Json(), token);
  ASSERT_TRUE(task);
  engine.run_until(sim::SimTime::from_seconds(1.0));
  EXPECT_FALSE(service->result(task.value()));
  EXPECT_FALSE(service->result("ctask-zzz"));
}

TEST_F(ComputeFixture, ManyTasksAllComplete) {
  setup(4, 5, 1, 1000, 4);
  FunctionId fn = register_echo(3.0);
  std::vector<TaskId> tasks;
  for (int i = 0; i < 20; ++i) {
    auto t = service->submit(endpoint, fn, Json::object({{"i", i}}), token);
    ASSERT_TRUE(t);
    tasks.push_back(t.value());
  }
  engine.run();
  for (const auto& t : tasks) {
    EXPECT_EQ(service->status(t).state, TaskState::Succeeded);
  }
}

}  // namespace
}  // namespace pico::compute

// --------------------------------------------------------- node failures ----
namespace pico::compute {
namespace {

struct FailureFixture : ComputeFixture {};

TEST_F(FailureFixture, NodeFailureFailsTaskAndDropsNode) {
  setup(4, 2.0, 0.0, 1000.0);
  // Force the failure path deterministically.
  {
    EndpointConfig ecfg;
    ecfg.name = "flaky";
    ecfg.scheduler = pbs.get();
    ecfg.node_failure_prob = 1.0;
    ecfg.env_warmup_s = 0;
    ecfg.env_warmup_jitter_s = 0;
    ecfg.dispatch_latency_s = 0.1;
    endpoint = service->register_endpoint(ecfg);
  }
  FunctionId fn = register_echo(3.0);
  auto task = service->submit(endpoint, fn, Json(), token);
  ASSERT_TRUE(task);
  engine.run_until(sim::SimTime::from_seconds(60));
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Failed);
  EXPECT_NE(info.error.find("node failure"), std::string::npos);
  // The dead node left the warm pool and its allocation was returned.
  EXPECT_EQ(service->warm_node_count(endpoint), 0u);
  EXPECT_EQ(pbs->free_nodes(), 4);
}

TEST_F(FailureFixture, IntermittentFailuresEventuallyComplete) {
  setup(4, 2.0, 0.0, 1000.0);
  {
    EndpointConfig ecfg;
    ecfg.name = "flaky";
    ecfg.scheduler = pbs.get();
    ecfg.node_failure_prob = 0.4;
    ecfg.env_warmup_s = 0;
    ecfg.env_warmup_jitter_s = 0;
    ecfg.dispatch_latency_s = 0.1;
    endpoint = service->register_endpoint(ecfg);
  }
  FunctionId fn = register_echo(1.0);
  // Many independent tasks: with p=0.4 both outcomes occur, and every
  // failure names the node as the cause.
  int failures = 0, successes = 0;
  for (int i = 0; i < 30; ++i) {
    auto t = service->submit(endpoint, fn, Json(), token);
    ASSERT_TRUE(t);
    engine.run();
    TaskInfo info = service->status(t.value());
    if (info.state == TaskState::Succeeded) {
      ++successes;
    } else {
      ++failures;
      EXPECT_NE(info.error.find("node failure"), std::string::npos);
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
}

// Held starts + streamable overlap credit (cut-through pre-dispatch).
struct HeldFixture : ComputeFixture {
  FunctionId register_streamable(double cost_s, double streamable_s) {
    FunctionSpec spec;
    spec.name = "streamable";
    spec.body = [](const Json&) {
      return util::Result<Json>::ok(Json::object({{"ok", true}}));
    };
    spec.cost = [cost_s](const Json&) { return cost_s; };
    spec.streamable = [streamable_s](const Json&) { return streamable_s; };
    return service->register_function(std::move(spec));
  }
};

TEST_F(HeldFixture, ReleaseAfterReadyCreditsStreamablePrefix) {
  setup();
  // Cold node ready at 15.1 (dispatch 0.1 + provision 10 + warmup 5). Held
  // for 24.9 s past ready, streamable 15 of cost 20: credit caps at 15, so
  // release at 40 leaves 5 s of work -> completes at 45.
  FunctionId fn = register_streamable(20.0, 15.0);
  auto task = service->submit(endpoint, fn, Json(), token, /*held=*/true);
  ASSERT_TRUE(task);
  engine.run_until(sim::SimTime::from_seconds(40.0));
  EXPECT_NE(service->status(task.value()).state, TaskState::Succeeded);
  service->release(task.value());
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_NEAR(info.completed.seconds(), 45.0, 1e-6);
  ASSERT_TRUE(service->result(task.value()));
}

TEST_F(HeldFixture, ReleaseWithoutStreamableChargesFullCost) {
  setup();
  // Same timeline, but the function declares nothing streamable: the hold
  // buys no credit and the full 20 s run after release -> completes at 60.
  FunctionId fn = register_streamable(20.0, 0.0);
  auto task = service->submit(endpoint, fn, Json(), token, /*held=*/true);
  ASSERT_TRUE(task);
  engine.run_until(sim::SimTime::from_seconds(40.0));
  service->release(task.value());
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_NEAR(info.completed.seconds(), 60.0, 1e-6);
}

TEST_F(HeldFixture, ReleaseBeforeNodeReadyEarnsNoCredit) {
  setup();
  // release() lands while the node is still provisioning/warming: execution
  // starts the moment the node is ready with zero overlap credit, matching
  // the plain cold timeline 0.1 + 10 + 5 + 20 = 35.1.
  FunctionId fn = register_streamable(20.0, 15.0);
  auto task = service->submit(endpoint, fn, Json(), token, /*held=*/true);
  ASSERT_TRUE(task);
  engine.run_until(sim::SimTime::from_seconds(5.0));
  service->release(task.value());
  engine.run();
  TaskInfo info = service->status(task.value());
  EXPECT_EQ(info.state, TaskState::Succeeded);
  EXPECT_NEAR(info.completed.seconds(), 35.1, 1e-6);
}

TEST_F(HeldFixture, HeldTaskNeverCompletesWithoutRelease) {
  setup();
  FunctionId fn = register_streamable(2.0, 2.0);
  auto task = service->submit(endpoint, fn, Json(), token, /*held=*/true);
  ASSERT_TRUE(task);
  // Far past every cold-start and cost horizon: still waiting on release().
  engine.run_until(sim::SimTime::from_seconds(500.0));
  EXPECT_NE(service->status(task.value()).state, TaskState::Succeeded);
  EXPECT_FALSE(service->result(task.value()));
  service->release(task.value());
  engine.run();
  EXPECT_EQ(service->status(task.value()).state, TaskState::Succeeded);
}

TEST_F(HeldFixture, OnSettledFiresOnceAndImmediatelyAfterSettle) {
  setup();
  FunctionId fn = register_streamable(4.0, 0.0);
  auto task = service->submit(endpoint, fn, Json(), token, /*held=*/true);
  ASSERT_TRUE(task);
  int calls = 0;
  service->on_settled(task.value(), [&](const TaskInfo& info) {
    ++calls;
    EXPECT_EQ(info.state, TaskState::Succeeded);
  });
  engine.run_until(sim::SimTime::from_seconds(20.0));
  service->release(task.value());
  engine.run();
  EXPECT_EQ(calls, 1);
  // Registered after the task settled: fires immediately, exactly once.
  int late_calls = 0;
  service->on_settled(task.value(),
                      [&](const TaskInfo&) { ++late_calls; });
  EXPECT_EQ(late_calls, 1);
  engine.run();
  EXPECT_EQ(late_calls, 1);
}

}  // namespace
}  // namespace pico::compute

// Video tests: fp64->u8 conversion equivalence (naive vs fast), MPK container
// round-trips + corruption handling, annotation burn-in.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "video/convert.hpp"
#include "video/mpk.hpp"

namespace pico::video {
namespace {

tensor::Tensor<double> random_stack(size_t t, size_t h, size_t w,
                                    uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor<double> stack(tensor::Shape{t, h, w});
  for (size_t i = 0; i < stack.size(); ++i) stack[i] = rng.uniform(-100, 400);
  return stack;
}

TEST(Convert, NaiveAndFastProduceIdenticalOutput) {
  auto stack = random_stack(4, 16, 16, 11);
  auto a = convert_naive(stack);
  auto b = convert_fast(stack);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "at " << i;
  }
}

TEST(Convert, OutputSpansFullRange) {
  auto stack = random_stack(2, 32, 32, 13);
  auto u = convert_fast(stack);
  uint8_t lo = 255, hi = 0;
  for (auto v : u.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 255);
}

TEST(Convert, ConstantStackMapsToZero) {
  auto stack = tensor::Tensor<double>::full(tensor::Shape{2, 4, 4}, 7.0);
  auto fast = convert_fast(stack);
  for (auto v : fast.data()) EXPECT_EQ(v, 0);
  auto naive = convert_naive(stack);
  for (auto v : naive.data()) EXPECT_EQ(v, 0);
}

TEST(Convert, IntoTwinsMatchAllocatingOverloads) {
  auto stack = random_stack(3, 16, 16, 29);
  auto seq = convert_fast(stack);

  // Destination prefilled with garbage: every byte must be overwritten.
  tensor::Tensor<uint8_t> into(stack.shape());
  for (size_t i = 0; i < into.size(); ++i) into[i] = 0xEE;
  convert_fast_into(stack, into);
  EXPECT_EQ(into.storage(), seq.storage());

  util::ThreadPool pool(3);
  tensor::Tensor<uint8_t> par(stack.shape());
  for (size_t i = 0; i < par.size(); ++i) par[i] = 0x11;
  convert_parallel_into(stack, par, pool);
  EXPECT_EQ(par.storage(), seq.storage());
}

TEST(Convert, MonotonicityPreserved) {
  tensor::Tensor<double> stack(tensor::Shape{1, 1, 5});
  stack[0] = -3;
  stack[1] = 0;
  stack[2] = 1;
  stack[3] = 2;
  stack[4] = 10;
  auto u = convert_fast(stack);
  for (size_t i = 1; i < 5; ++i) EXPECT_LE(u[i - 1], u[i]);
}

TEST(Mpk, FromStackRoundTripCompressed) {
  auto stack = random_stack(6, 24, 20, 17);
  auto frames = convert_fast(stack);
  MpkVideo video = MpkVideo::from_stack(frames);
  EXPECT_EQ(video.frame_count(), 6u);
  EXPECT_EQ(video.height(), 24u);
  EXPECT_EQ(video.width(), 20u);

  for (bool compress : {true, false}) {
    auto bytes = video.to_bytes(compress);
    auto re = MpkVideo::from_bytes(bytes);
    ASSERT_TRUE(re) << compress;
    ASSERT_EQ(re.value().frame_count(), 6u);
    for (size_t t = 0; t < 6; ++t) {
      ASSERT_EQ(re.value().frame(t).storage(), video.frame(t).storage())
          << "frame " << t << " compress=" << compress;
    }
  }
}

TEST(Mpk, CompressionShrinksSmoothFrames) {
  // Dark frames with a few bright spots compress well under RLE.
  tensor::Tensor<uint8_t> frames(tensor::Shape{4, 64, 64});
  frames(0, 10, 10) = 200;
  frames(2, 30, 30) = 150;
  MpkVideo video = MpkVideo::from_stack(frames);
  EXPECT_LT(video.to_bytes(true).size(), video.to_bytes(false).size() / 4);
}

TEST(Mpk, SaveLoadFile) {
  std::string path = testing::TempDir() + "/video_test.mpk";
  auto frames = convert_fast(random_stack(3, 8, 8, 19));
  MpkVideo video = MpkVideo::from_stack(frames);
  ASSERT_TRUE(video.save(path));
  auto re = MpkVideo::load(path);
  ASSERT_TRUE(re);
  EXPECT_EQ(re.value().frame_count(), 3u);
  EXPECT_FALSE(MpkVideo::load(path + ".missing"));
}

TEST(Mpk, RejectsCorruptInput) {
  auto frames = convert_fast(random_stack(2, 8, 8, 23));
  auto bytes = MpkVideo::from_stack(frames).to_bytes();
  {
    auto bad = bytes;
    bad[0] = 'X';
    EXPECT_FALSE(MpkVideo::from_bytes(bad));
  }
  {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + 8);
    EXPECT_FALSE(MpkVideo::from_bytes(truncated));
  }
  EXPECT_FALSE(MpkVideo::from_bytes({}));
}

TEST(Mpk, FuzzSafety) {
  util::Rng rng(0xF0 + 29);
  auto bytes = MpkVideo::from_stack(convert_fast(random_stack(2, 8, 8, 29)))
                   .to_bytes();
  for (int i = 0; i < 200; ++i) {
    auto mutated = bytes;
    size_t pos = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(mutated.size() - 1)));
    mutated[pos] ^= static_cast<uint8_t>(rng.uniform_int(1, 255));
    auto re = MpkVideo::from_bytes(mutated);  // must not crash
    (void)re;
  }
}

TEST(Mpk, AnnotationBurnsBoxes) {
  tensor::Tensor<uint8_t> frames(tensor::Shape{2, 32, 32});
  MpkVideo video = MpkVideo::from_stack(frames);
  std::vector<std::vector<vision::Detection>> dets(2);
  dets[0].push_back(vision::Detection{{5, 5, 10, 10}, 1.0});
  MpkVideo annotated = annotate(video, dets);
  // Frame 0: box edge painted with confidence shade 255.
  EXPECT_EQ(annotated.frame(0)(5, 5), 255);
  EXPECT_EQ(annotated.frame(0)(5, 15), 255);
  EXPECT_EQ(annotated.frame(0)(15, 10), 255);
  // Interior untouched, frame 1 untouched.
  EXPECT_EQ(annotated.frame(0)(10, 10), 0);
  EXPECT_EQ(annotated.frame(1)(5, 5), 0);
  // Original unmodified.
  EXPECT_EQ(video.frame(0)(5, 5), 0);
}

TEST(Mpk, AnnotationClipsOutOfFrameBoxes) {
  tensor::Tensor<uint8_t> frames(tensor::Shape{1, 16, 16});
  MpkVideo video = MpkVideo::from_stack(frames);
  std::vector<std::vector<vision::Detection>> dets(1);
  dets[0].push_back(vision::Detection{{-5, -5, 40, 40}, 0.5});
  MpkVideo annotated = annotate(video, dets);  // no crash, edges clipped
  EXPECT_EQ(annotated.frame_count(), 1u);
}

}  // namespace
}  // namespace pico::video

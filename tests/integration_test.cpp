// Cross-module integration tests: concurrent campaigns, fault injection and
// recovery, warm-node behaviour across flows, portal generation from a full
// campaign, codec-enabled transfers inside flows, backoff policy effects at
// campaign scale.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "portal/portal.hpp"
#include "util/strings.hpp"

namespace pico::core {
namespace {

FacilityConfig fast_config(const std::string& tag, uint64_t seed = 7) {
  FacilityConfig fc;
  fc.artifact_dir = testing::TempDir() + "/integration_" + tag;
  fc.seed = seed;
  fc.cost.provision_delay_s = 5.0;
  fc.cost.provision_jitter_s = 0.0;
  fc.cost.env_warmup_s = 2.0;
  fc.cost.env_warmup_jitter_s = 0.0;
  return fc;
}

TEST(Integration, FirstFlowColdRestWarm) {
  Facility facility(fast_config("warm"));
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 60;
  cfg.duration_s = 600;
  cfg.file_bytes = 91'000'000;
  CampaignResult result = run_campaign(facility, cfg);
  ASSERT_GE(result.in_window.size(), 4u);

  // The paper: max runtimes belong to the first flows (node provisioning +
  // library caching); subsequent flows reuse warm nodes.
  double first = result.in_window.front().timing.total_s();
  util::SampleStats rest;
  for (size_t i = 1; i < result.in_window.size(); ++i) {
    rest.add(result.in_window[i].timing.total_s());
  }
  EXPECT_GT(first, rest.median());
}

TEST(Integration, TransferFaultsRecoveredByRetries) {
  FacilityConfig fc = fast_config("faults");
  fc.transfer_fault_prob = 0.3;
  fc.transfer_max_retries = 10;
  Facility facility(fc);
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 45;
  cfg.duration_s = 600;
  cfg.file_bytes = 50'000'000;
  CampaignResult result = run_campaign(facility, cfg);
  EXPECT_EQ(result.failed, 0u);  // every fault absorbed by retry
  EXPECT_GE(result.in_window.size(), 5u);
}

TEST(Integration, CompressedCampaignMovesFewerWireBytes) {
  // Same campaign with and without codec; wire bytes must shrink with the
  // assumed ratio for virtual files.
  auto run_with_codec = [](const std::string& codec) {
    Facility facility(fast_config("codec_" + (codec.empty() ? "none" : codec)));
    CampaignConfig cfg;
    cfg.use_case = UseCase::Hyperspectral;
    cfg.start_period_s = 60;
    cfg.duration_s = 400;
    cfg.file_bytes = 91'000'000;
    cfg.codec = codec;
    return run_campaign(facility, cfg);
  };
  CampaignResult plain = run_with_codec("");
  CampaignResult packed = run_with_codec("lz");
  ASSERT_FALSE(plain.in_window.empty());
  ASSERT_FALSE(packed.in_window.empty());
  // Transfer step is faster with compression (virtual ratio defaults to 1.0
  // in the request; campaign sets it via flow input only when codec given —
  // the flows pass no explicit ratio so wire == logical; what must hold is
  // that both campaigns complete successfully).
  EXPECT_EQ(plain.failed, 0u);
  EXPECT_EQ(packed.failed, 0u);
}

TEST(Integration, BackoffPolicySweepChangesOverhead) {
  auto run_with_policy = [](flow::BackoffPolicy policy, uint64_t seed) {
    FacilityConfig fc = fast_config("backoff", seed);
    fc.flow.backoff = policy;
    Facility facility(fc);
    CampaignConfig cfg;
    cfg.use_case = UseCase::Hyperspectral;
    cfg.start_period_s = 60;
    cfg.duration_s = 600;
    cfg.file_bytes = 91'000'000;
    return run_campaign(facility, cfg);
  };
  CampaignResult exponential =
      run_with_policy(flow::BackoffPolicy::paper_default(), 7);
  CampaignResult fixed = run_with_policy(flow::BackoffPolicy::fixed(1.0), 7);
  ASSERT_FALSE(exponential.in_window.empty());
  ASSERT_FALSE(fixed.in_window.empty());
  // Fixed 1 s polling discovers completions almost immediately: overhead
  // strictly below the exponential policy's (the paper's A1 direction).
  EXPECT_LT(fixed.overhead_stats().median(),
            exponential.overhead_stats().median());
}

TEST(Integration, PortalGeneratedFromCampaignIndex) {
  Facility facility(fast_config("portal"));
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 60;
  cfg.duration_s = 400;
  cfg.file_bytes = 91'000'000;
  CampaignResult result = run_campaign(facility, cfg);
  ASSERT_FALSE(result.in_window.empty());

  std::string out_dir = testing::TempDir() + "/integration_portal_site";
  std::filesystem::remove_all(out_dir);
  portal::Portal site(portal::PortalConfig{"PicoProbe", out_dir});
  auto generated = site.generate(facility.index(), facility.user_identity());
  ASSERT_TRUE(generated);
  EXPECT_GE(generated.value().record_paths.size(), result.in_window.size());
  EXPECT_TRUE(std::filesystem::exists(generated.value().index_path));
}

TEST(Integration, ConcurrentMixedCampaignsShareFacility) {
  // Hyperspectral and spatiotemporal flows interleaved on one facility: both
  // contend for the same switch and warm pool, all complete.
  Facility facility(fast_config("mixed"));
  CampaignConfig hyper;
  hyper.use_case = UseCase::Hyperspectral;
  hyper.start_period_s = 50;
  hyper.duration_s = 500;
  hyper.file_bytes = 91'000'000;
  hyper.label_prefix = "mix-h";

  // Launch the hyperspectral campaign via its driver, then inject a second
  // wave of spatiotemporal flows manually while it runs.
  std::vector<flow::RunId> extra_runs;
  auto def = spatiotemporal_flow(facility);
  for (int i = 0; i < 3; ++i) {
    facility.engine().schedule_at(
        sim::SimTime::from_seconds(40 + 100.0 * i), [&facility, &extra_runs, &def, i] {
          std::string name = util::format("staging/mix-s-%d.emd", i);
          ASSERT_TRUE(facility.stage_virtual_file(name, 300'000'000));
          FlowInput input;
          input.file = name;
          input.dest = util::format("eagle/mix-s-%d.emd", i);
          input.subject = util::format("mix-s-%d", i);
          input.frames = 100;
          auto run = facility.flows().start(def, input.to_json(),
                                            facility.user_token());
          ASSERT_TRUE(run);
          extra_runs.push_back(run.value());
        });
  }
  CampaignResult result = run_campaign(facility, hyper);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GE(result.in_window.size(), 4u);
  ASSERT_EQ(extra_runs.size(), 3u);
  for (const auto& id : extra_runs) {
    EXPECT_EQ(facility.flows().info(id).state, flow::RunState::Succeeded)
        << facility.flows().info(id).error;
  }
}

TEST(Integration, BandwidthUpgradeShrinksTransferActive) {
  auto run_with_bw = [](double switch_bps, double cap_bps) {
    FacilityConfig fc = fast_config(
        "bw" + std::to_string(static_cast<int64_t>(switch_bps / 1e9)));
    fc.user_switch_bps = switch_bps;
    fc.cost.per_flow_rate_cap_bps = cap_bps;
    Facility facility(fc);
    CampaignConfig cfg;
    cfg.use_case = UseCase::Spatiotemporal;
    cfg.start_period_s = 120;
    cfg.duration_s = 900;
    cfg.file_bytes = 1'200'000'000;
    return run_campaign(facility, cfg);
  };
  // Paper future work: on-site upgrades. 1 Gbps/90 Mbps-cap vs 10 Gbps with
  // a 2 Gbps per-flow cap.
  CampaignResult slow = run_with_bw(1e9, 90e6);
  CampaignResult fast = run_with_bw(10e9, 2e9);
  ASSERT_FALSE(slow.in_window.empty());
  ASSERT_FALSE(fast.in_window.empty());
  EXPECT_LT(fast.step_active_stats("Transfer").median(),
            slow.step_active_stats("Transfer").median() / 4);
  // More flows complete in-window when transfers stop dominating.
  EXPECT_GE(fast.in_window.size(), slow.in_window.size());
}

TEST(Integration, TraceRecordsSpansAcrossServices) {
  Facility facility(fast_config("trace"));
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 60;
  cfg.duration_s = 300;
  cfg.file_bytes = 91'000'000;
  CampaignResult result = run_campaign(facility, cfg);
  ASSERT_FALSE(result.in_window.empty());
  EXPECT_FALSE(facility.trace().select("transfer", "active").empty());
  EXPECT_FALSE(facility.trace().select("compute", "active").empty());
  EXPECT_FALSE(facility.trace().select("flow", "run").empty());
  // Every flow run span carries overhead attribution.
  for (const auto* span : facility.trace().select("flow", "run")) {
    EXPECT_GE(span->attrs.at("overhead_s").as_double(), 0.0);
  }
}

}  // namespace
}  // namespace pico::core

// ---------------------------------------------- node failures, end to end ----
namespace pico::core {
namespace {

TEST(Integration, NodeFailuresAbsorbedByFlowRetries) {
  FacilityConfig fc = fast_config("nodefail");
  fc.compute_node_failure_prob = 0.25;
  Facility facility(fc);
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 45;
  cfg.duration_s = 900;
  cfg.file_bytes = 91'000'000;
  CampaignResult result = run_campaign(facility, cfg);
  ASSERT_GE(result.in_window.size() + result.late.size(), 8u);
  // The Analyze step retries once; with p=0.25 per attempt, a flow fails
  // only when both attempts hit dying nodes (~6%) — most flows survive and
  // some retried (visible via per-step retry counts).
  size_t retried = 0;
  for (const auto& f : result.in_window) {
    for (const auto& s : f.timing.steps) {
      if (s.retries > 0) ++retried;
    }
  }
  size_t completed = result.in_window.size();
  EXPECT_GT(completed, 4u);
  // Node failures visible in the trace.
  EXPECT_FALSE(facility.trace().select("compute", "node-failure").empty());
  (void)retried;  // distribution-dependent; presence checked via trace
}

}  // namespace
}  // namespace pico::core

// ------------------------------------- portal regeneration from snapshot ----
#include "portal/portal.hpp"
#include "search/persist.hpp"

namespace pico::core {
namespace {

TEST(Integration, PortalRegeneratedFromIndexSnapshot) {
  // Campaign -> snapshot the catalog -> "new process" restores it and
  // regenerates an identical portal listing.
  Facility facility(fast_config("snapshot"));
  CampaignConfig cfg;
  cfg.use_case = UseCase::Hyperspectral;
  cfg.start_period_s = 60;
  cfg.duration_s = 300;
  cfg.file_bytes = 91'000'000;
  CampaignResult result = run_campaign(facility, cfg);
  ASSERT_FALSE(result.in_window.empty());

  std::string snap_path = testing::TempDir() + "/integration_snapshot.json";
  ASSERT_TRUE(search::save_index(facility.index(), snap_path));
  auto restored = search::load_index(snap_path);
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored.value().size(), facility.index().size());

  portal::Portal site(portal::PortalConfig{
      "Restored", testing::TempDir() + "/integration_snapshot_site"});
  std::string original_html = site.render_index_html(
      facility.index(), facility.user_identity());
  std::string restored_html = site.render_index_html(
      restored.value(), facility.user_identity());
  EXPECT_EQ(original_html, restored_html);
}

// The two scheduler backends (PICO_SCHED=heap reference twin vs the timer
// wheel) must be observationally identical end-to-end: a chaos campaign run
// under each publishes the same search-index fingerprint, settles the same
// flows, and processes the same number of events at the same virtual times.
TEST(Integration, ChaosCampaignFingerprintParityAcrossSchedulers) {
  struct Outcome {
    uint64_t fingerprint = 0;
    size_t index_size = 0;
    size_t in_window = 0;
    size_t late = 0;
    size_t failed = 0;
    uint64_t events = 0;
    int64_t end_ns = 0;
  };
  auto run_with = [&](const char* sched) {
    setenv("PICO_SCHED", sched, 1);
    FacilityConfig fc = fast_config(std::string("schedparity_") + sched, 4242);
    fc.transfer_max_retries = 8;
    Facility facility(fc);
    CampaignConfig cfg;
    cfg.use_case = UseCase::Hyperspectral;
    cfg.start_period_s = 45;
    cfg.duration_s = 900;
    cfg.file_bytes = 50'000'000;
    cfg.label_prefix = "sp";
    cfg.chaos.name = "sched-parity";
    cfg.chaos.add(
        fault::FaultEvent{fault::FaultKind::TransferOutage, 120, 90, "", 0});
    cfg.chaos.add(
        fault::FaultEvent{fault::FaultKind::WireBitFlip, 0, 900, "", 0.1});
    CampaignResult result = run_campaign(facility, cfg);
    Outcome out;
    out.fingerprint = facility.index().fingerprint();
    out.index_size = facility.index().size();
    out.in_window = result.in_window.size();
    out.late = result.late.size();
    out.failed = result.failed;
    out.events = facility.engine().events_processed();
    out.end_ns = facility.engine().now().ns;
    return out;
  };
  const char* prev = getenv("PICO_SCHED");
  std::string saved = prev ? prev : "";
  Outcome heap = run_with("heap");
  Outcome wheel = run_with("wheel");
  if (prev) {
    setenv("PICO_SCHED", saved.c_str(), 1);
  } else {
    unsetenv("PICO_SCHED");
  }
  ASSERT_GT(heap.in_window, 0u);
  EXPECT_EQ(heap.fingerprint, wheel.fingerprint);
  EXPECT_EQ(heap.index_size, wheel.index_size);
  EXPECT_EQ(heap.in_window, wheel.in_window);
  EXPECT_EQ(heap.late, wheel.late);
  EXPECT_EQ(heap.failed, wheel.failed);
  EXPECT_EQ(heap.events, wheel.events);
  EXPECT_EQ(heap.end_ns, wheel.end_ns);
}

}  // namespace
}  // namespace pico::core

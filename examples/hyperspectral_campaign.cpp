// Hyperspectral campaign example (the paper's Sec. 3.1 use case, Fig. 2):
// run a shortened campaign of real hyperspectral acquisitions through the
// facility — each flow transfers a real EMD file, reduces it on Polaris
// (intensity map + spectrum + element identification), and publishes to the
// search index — then render the portal with every Fig. 2-style artifact.
//
// Usage: hyperspectral_campaign [n_acquisitions]   (default 5)
#include <cstdio>
#include <cstdlib>

#include "core/facility.hpp"
#include "core/flows.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "portal/portal.hpp"
#include "portal/telemetry_page.hpp"
#include "telemetry/export.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"
#include "util/timefmt.hpp"

using namespace pico;

int main(int argc, char** argv) {
  int count = argc > 1 ? std::atoi(argv[1]) : 5;
  if (count < 1) count = 1;

  core::FacilityConfig config;
  config.artifact_dir = "hyperspectral-output/artifacts";
  config.seed = 20230407;
  core::Facility facility(config);

  // Samples rotate through different heavy-metal loads so the portal facets
  // show variety (the "reinterrogate past experiments" use case).
  struct SampleSpec {
    const char* description;
    std::vector<instrument::ParticleRegion> particles;
  };
  const std::vector<SampleSpec> specs = {
      {"polyamide film, gold capture",
       {{40, 40, 9, {{"Au", 0.85}, {"C", 0.15}}},
        {90, 70, 6, {{"Au", 0.7}, {"C", 0.3}}}}},
      {"polyamide film, lead capture",
       {{60, 50, 10, {{"Pb", 0.8}, {"C", 0.2}}}}},
      {"polyamide film, mixed gold/lead",
       {{30, 80, 8, {{"Au", 0.5}, {"Pb", 0.35}, {"C", 0.15}}},
        {100, 30, 5, {{"Pb", 0.6}, {"C", 0.4}}}}},
      {"polyamide film, platinum trace",
       {{64, 64, 7, {{"Pt", 0.75}, {"C", 0.25}}}}},
  };

  std::vector<flow::RunId> runs;
  int64_t epoch = 0;
  util::parse_iso8601("2023-04-07T09:00:00Z", &epoch);

  // Campaign root span: every flow launched below parents to it, so the
  // exported Chrome trace nests campaign -> run -> step -> provider attempt.
  telemetry::Tracer& tracer = facility.telemetry().tracer;
  uint64_t campaign_span = tracer.open("campaign", "hyperspectral-example");
  telemetry::Tracer::Scope campaign_scope(tracer, campaign_span);

  for (int i = 0; i < count; ++i) {
    const SampleSpec& spec = specs[static_cast<size_t>(i) % specs.size()];
    instrument::HyperspectralConfig gen;
    gen.height = 128;
    gen.width = 128;
    gen.channels = 512;
    gen.dose = 80;
    gen.background = {{"C", 0.7}, {"N", 0.15}, {"O", 0.15}};
    gen.particles = spec.particles;
    gen.seed = 1000 + static_cast<uint64_t>(i);
    auto sample = instrument::generate_hyperspectral(gen);

    emd::MicroscopeSettings scope;
    scope.magnification = 0.8e6 + 0.2e6 * i;
    scope.stage_x_um = 5.0 * i;
    std::string acquired = util::format_iso8601(epoch + 1800 * i);
    emd::File file = instrument::to_emd(sample, gen, scope, acquired,
                                        spec.description, "operator@anl.gov");

    std::string staged = util::format("staging/acq-%03d.emd", i);
    auto st = facility.stage_real_file(staged, file.to_bytes());
    if (!st) {
      std::fprintf(stderr, "stage failed: %s\n", st.error().message.c_str());
      return 1;
    }

    core::FlowInput input;
    input.file = staged;
    input.dest = util::format("eagle/acq-%03d.emd", i);
    input.artifact_prefix = util::format("acq-%03d", i);
    input.title = util::format("Hyperspectral acquisition #%d (%s)", i,
                               spec.description);
    input.subject = util::format("hyper-acq-%03d", i);
    input.owner = facility.user_identity();
    input.acquired = acquired;

    // Stagger launches 30 s apart, as the paper's campaign does.
    auto run = facility.flows().start(core::hyperspectral_flow(facility),
                                      input.to_json(), facility.user_token(),
                                      input.subject);
    if (!run) {
      std::fprintf(stderr, "flow start failed: %s\n",
                   run.error().message.c_str());
      return 1;
    }
    runs.push_back(run.value());
    facility.engine().run_until(
        sim::SimTime::from_seconds(30.0 * (i + 1)));
  }
  facility.engine().run();
  tracer.close(campaign_span, "campaign", sim::SimTime::zero(),
               facility.engine().now(),
               util::Json::object({{"use_case", "hyperspectral"},
                                   {"flows", static_cast<int64_t>(count)}}));

  // Report per-flow outcomes + identified composition.
  int failures = 0;
  for (const auto& id : runs) {
    const flow::RunInfo& info = facility.flows().info(id);
    const flow::RunTiming& timing = facility.flows().timing(id);
    if (info.state != flow::RunState::Succeeded) {
      ++failures;
      std::printf("%-16s FAILED: %s\n", info.label.c_str(), info.error.c_str());
      continue;
    }
    auto doc = facility.index().get(info.label, facility.user_identity());
    std::string elements = doc ? doc.value()->content.at("subjects").dump() : "?";
    std::printf("%-16s ok: %5.1fs total (%4.1fs overhead), elements %s\n",
                info.label.c_str(), timing.total_s(), timing.overhead_s(),
                elements.c_str());
  }

  // Fig. 2C-style view: facet the catalog by date and type.
  std::printf("\ncatalog facets (resource_type):\n");
  for (const auto& [value, n] :
       facility.index().facet("resource_type", facility.user_identity())) {
    std::printf("  %-16s %zu\n", value.c_str(), n);
  }

  portal::Portal site(portal::PortalConfig{"Dynamic PicoProbe Data Portal",
                                           "hyperspectral-output/portal"});
  auto generated = site.generate(facility.index(), facility.user_identity());
  if (generated) {
    std::printf("\nportal with %zu records: %s\n",
                generated.value().record_paths.size(),
                generated.value().index_path.c_str());
  }

  // Telemetry exports: the causal trace (open in chrome://tracing or
  // https://ui.perfetto.dev), the Prometheus metrics snapshot, and the
  // portal's telemetry dashboard.
  util::write_file("hyperspectral-output/trace.json",
                   telemetry::to_chrome_trace(facility.trace()));
  util::write_file("hyperspectral-output/metrics.prom",
                   facility.telemetry().metrics.to_prometheus());
  auto summary = facility.telemetry().summarize(facility.trace());
  util::write_file("hyperspectral-output/portal/telemetry.html",
                   portal::render_telemetry_html(
                       summary, "Hyperspectral campaign telemetry"));
  std::printf("telemetry: hyperspectral-output/trace.json, metrics.prom, "
              "portal/telemetry.html (%zu spans, %zu metric families)\n",
              summary.span_count,
              facility.telemetry().metrics.family_count());
  return failures == 0 ? 0 : 1;
}

// Reinterrogation (paper abstract): the infrastructure "provides domain
// scientists the ability to reinterrogate data from past experiments to
// yield additional scientific value and derive new insights."
//
// Phase 1 runs a small campaign of real acquisitions through the facility —
// each flow archives the EMD file on Eagle and publishes a searchable
// record. Phase 2, "weeks later": a scientist queries the FAIR index for
// lead-bearing samples, pulls the archived bytes back from Eagle, and
// re-analyzes them with a more sensitive peak search — revealing a trace
// element the standard pipeline's conservative thresholds missed.
#include <cstdio>
#include <set>

#include "analysis/hyperspectral.hpp"
#include "core/facility.hpp"
#include "core/flows.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "util/strings.hpp"

using namespace pico;

int main() {
  core::FacilityConfig config;
  config.artifact_dir = "reinterrogate-output/artifacts";
  config.seed = 20230409;
  core::Facility facility(config);

  // -- phase 1: the original campaign -----------------------------------------
  // Samples carry a faint copper contaminant (~2%) nobody is looking for;
  // the production pipeline's conservative peak threshold misses it.
  std::printf("phase 1: original campaign (4 acquisitions)\n");
  for (int i = 0; i < 4; ++i) {
    instrument::HyperspectralConfig gen;
    gen.height = 96;
    gen.width = 96;
    gen.channels = 768;
    gen.dose = 100;
    gen.background = {{"C", 0.72}, {"N", 0.14}, {"O", 0.14}};
    gen.particles = {
        {30.0 + 8 * i, 40, 9, {{"Pb", 0.76}, {"Cu", 0.018}, {"C", 0.222}}},
        {70, 60.0 + 4 * i, 6, {{"Au", 0.8}, {"C", 0.2}}},
    };
    gen.seed = 4000 + static_cast<uint64_t>(i);
    auto sample = instrument::generate_hyperspectral(gen);
    emd::MicroscopeSettings scope;
    auto file = instrument::to_emd(
        sample, gen, scope,
        util::format("2023-04-%02dT10:00:00Z", 10 + i),
        "membrane treated for heavy-metal capture", "operator@anl.gov");

    std::string staged = util::format("staging/run-%02d.emd", i);
    if (auto st = facility.stage_real_file(staged, file.to_bytes()); !st) {
      std::fprintf(stderr, "stage failed: %s\n", st.error().message.c_str());
      return 1;
    }
    core::FlowInput input;
    input.file = staged;
    input.dest = util::format("eagle/archive/run-%02d.emd", i);
    input.artifact_prefix = util::format("run-%02d", i);
    input.title = util::format("Membrane capture run %d", i);
    input.subject = util::format("capture-run-%02d", i);
    input.acquired = util::format("2023-04-%02dT10:00:00Z", 10 + i);
    auto run = facility.flows().start(core::hyperspectral_flow(facility),
                                      input.to_json(), facility.user_token());
    if (!run) {
      std::fprintf(stderr, "flow failed to start: %s\n",
                   run.error().message.c_str());
      return 1;
    }
  }
  facility.engine().run();

  for (const auto& id : facility.index().all_ids()) {
    auto doc = facility.index().get(id);
    std::printf("  %s: elements %s\n", id.c_str(),
                doc.value()->content.at("subjects").dump().c_str());
  }

  // -- phase 2: reinterrogation ------------------------------------------------
  std::printf("\nphase 2: scientist searches the FAIR index for lead\n");
  search::Query query;
  query.field_filters = {{"subjects", "Pb"}};
  auto hits = facility.index().search(query);
  std::printf("  %zu record(s) match subjects=Pb\n", hits.size());
  if (hits.empty()) return 1;

  int new_findings = 0;
  for (const auto& hit : hits) {
    auto doc = facility.index().get(hit.id);
    // Original composition on record:
    std::set<std::string> original;
    for (const auto& s : doc.value()->content.at("subjects").as_array()) {
      original.insert(s.as_string());
    }

    // Pull the archived EMD back from Eagle (the permanent store).
    std::string archived;
    for (const auto& path : facility.eagle().list("eagle/archive/")) {
      if (path.find(hit.id.substr(hit.id.size() - 2)) != std::string::npos) {
        archived = path;
        break;
      }
    }
    if (archived.empty()) continue;
    auto object = facility.eagle().get(archived);
    if (!object || !object.value()->has_content()) continue;
    auto file = emd::File::from_bytes(*object.value()->content);
    if (!file) continue;

    const emd::Group* group = file.value().root.find_group("data/hyperspectral");
    auto cube = group->datasets.at("data").as<double>();
    if (!cube) continue;
    size_t channels = cube.value().dim(2);
    std::vector<double> axis(channels);
    for (size_t k = 0; k < channels; ++k) {
      axis[k] = 20.0 * (static_cast<double>(k) + 0.5) / static_cast<double>(channels);
    }

    // Re-analyze with a more sensitive peak search than the pipeline default.
    analysis::PeakFindConfig sensitive;
    sensitive.prominence_factor = 1.55;
    sensitive.window = 40;
    auto result = analysis::analyze_hyperspectral(cube.value(), axis, sensitive);

    std::set<std::string> reanalyzed;
    for (const auto& el : result.elements) reanalyzed.insert(el.symbol);
    std::printf("  %s: archived %s reanalyzed -> {", hit.id.c_str(),
                archived.c_str());
    for (const auto& el : reanalyzed) std::printf(" %s", el.c_str());
    std::printf(" }\n");
    for (const auto& el : reanalyzed) {
      if (!original.count(el)) {
        std::printf("    NEW finding vs original record: %s\n", el.c_str());
        ++new_findings;
      }
    }
  }

  if (new_findings > 0) {
    std::printf("\nreinterrogation surfaced %d element finding(s) the "
                "original pipeline missed — archived data yielded new "
                "insight without touching the microscope.\n",
                new_findings);
    return 0;
  }
  std::printf("\nno new findings this run (tune the sensitive pass)\n");
  return 1;
}

// Quickstart: the full PicoProbe -> supercomputer loop in ~80 lines.
//
//   1. Generate a small hyperspectral acquisition (synthetic instrument).
//   2. Stage it on the user workstation's transfer directory.
//   3. Run the hyperspectral flow: Transfer -> Analyze (Polaris) -> Publish.
//   4. Query the search index and render the data portal.
//
// Everything runs in virtual time; analysis operates on real bytes and the
// portal HTML + plots land in ./quickstart-output/.
#include <cstdio>

#include "core/facility.hpp"
#include "core/flows.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "portal/portal.hpp"

using namespace pico;

int main() {
  // -- facility -------------------------------------------------------------
  core::FacilityConfig config;
  config.artifact_dir = "quickstart-output/artifacts";
  config.seed = 7;
  core::Facility facility(config);

  // -- 1. acquire -----------------------------------------------------------
  instrument::HyperspectralConfig gen = instrument::HyperspectralConfig::fig2_sample();
  gen.height = 64;
  gen.width = 64;
  gen.channels = 512;
  auto sample = instrument::generate_hyperspectral(gen);
  emd::MicroscopeSettings scope;  // 300 kV, XPAD detector defaults
  emd::File emd_file = instrument::to_emd(
      sample, gen, scope, "2023-04-07T10:15:00Z",
      "polyamide film treated to capture heavy metals", "operator@anl.gov");
  std::printf("acquired: %zux%zux%zu cube, %.1f MB EMD file\n", gen.height,
              gen.width, gen.channels,
              static_cast<double>(emd_file.payload_bytes()) / 1e6);

  // -- 2. stage on the user workstation --------------------------------------
  auto staged = facility.stage_real_file("staging/quickstart.emd",
                                         emd_file.to_bytes());
  if (!staged) {
    std::fprintf(stderr, "staging failed: %s\n", staged.error().message.c_str());
    return 1;
  }

  // -- 3. run the flow --------------------------------------------------------
  core::FlowInput input;
  input.file = "staging/quickstart.emd";
  input.dest = "eagle/quickstart.emd";
  input.artifact_prefix = "quickstart";
  input.title = "Quickstart hyperspectral acquisition";
  input.subject = "quickstart-0001";
  input.owner = facility.user_identity();
  auto run = facility.flows().start(core::hyperspectral_flow(facility),
                                    input.to_json(), facility.user_token(),
                                    "quickstart");
  if (!run) {
    std::fprintf(stderr, "flow start failed: %s\n", run.error().message.c_str());
    return 1;
  }
  facility.engine().run();  // drain virtual time

  const flow::RunInfo& info = facility.flows().info(run.value());
  const flow::RunTiming& timing = facility.flows().timing(run.value());
  std::printf("flow %s: %s\n", run.value().c_str(),
              flow::run_state_name(info.state).c_str());
  for (const auto& step : timing.steps) {
    std::printf("  %-10s active %6.1fs, discovery lag %5.1fs, %d polls\n",
                step.name.c_str(), step.active_s(), step.discovery_lag_s(),
                step.polls);
  }
  std::printf("  total %.1fs = active %.1fs + overhead %.1fs (%.0f%%)\n",
              timing.total_s(), timing.active_s(), timing.overhead_s(),
              100.0 * timing.overhead_s() / timing.total_s());

  // -- 4. search + portal ------------------------------------------------------
  search::Query query;
  query.text = "heavy metals";
  auto hits = facility.index().search(query, facility.user_identity());
  std::printf("search for \"heavy metals\": %zu hit(s)\n", hits.size());
  for (const auto& hit : hits) {
    auto doc = facility.index().get(hit.id, facility.user_identity());
    if (!doc) continue;
    std::printf("  %s: elements = %s\n", hit.id.c_str(),
                doc.value()->content.at("subjects").dump().c_str());
  }

  portal::Portal site(portal::PortalConfig{"Dynamic PicoProbe Data Portal",
                                           "quickstart-output/portal"});
  auto generated = site.generate(facility.index(), facility.user_identity());
  if (generated) {
    std::printf("portal: open %s\n", generated.value().index_path.c_str());
  }
  return info.state == flow::RunState::Succeeded ? 0 : 1;
}

// Chaos campaign example: the paper's 1-hour hyperspectral campaign run
// under a deterministic fault schedule — a 5-minute transfer-endpoint
// outage, a 10% compute-node failure-rate window, a mid-campaign token
// expiry, and an orchestrator crash — with campaign-level recovery enabled
// (per-step timeouts, circuit breakers, dead-letter resubmission, journal
// replay). Prints the robustness report alongside the paper's Fig. 4-style
// active-vs-overhead decomposition so the cost of surviving the faults is
// directly comparable with a fault-free run.
//
// Usage: chaos_campaign [duration_s]   (default 1800)
#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "core/facility.hpp"
#include "core/report.hpp"
#include "fault/schedule.hpp"
#include "portal/health_page.hpp"
#include "portal/telemetry_page.hpp"
#include "telemetry/export.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"

using namespace pico;

int main(int argc, char** argv) {
  double duration_s = argc > 1 ? std::atof(argv[1]) : 1800.0;
  if (duration_s < 300) duration_s = 300;

  // The chaos script, in the JSON DSL a beamline operator would check in
  // next to the campaign config.
  std::string chaos_json = R"({
    "name": "beamtime-gauntlet",
    "events": [
      {"kind": "transfer_outage",   "at_s": 600,  "duration_s": 300},
      {"kind": "node_failure_rate", "at_s": 0,    "duration_s": 1800,
       "severity": 0.10},
      {"kind": "token_expiry",      "at_s": 1200},
      {"kind": "orchestrator_crash","at_s": 1500, "duration_s": 60}
    ]})";
  auto chaos = fault::FaultSchedule::from_text(chaos_json);
  if (!chaos) {
    std::fprintf(stderr, "chaos parse failed: %s\n",
                 chaos.error().message.c_str());
    return 1;
  }

  core::FacilityConfig fc;
  fc.artifact_dir = "chaos-output/artifacts";
  fc.seed = 20230407;
  core::Facility facility(fc);

  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = duration_s;
  cfg.file_bytes = 91'000'000;
  cfg.label_prefix = "chaos";
  cfg.chaos = chaos.value();
  cfg.recovery.enabled = true;
  cfg.recovery.resubmit_budget = 4;
  cfg.recovery.resubmit_delay_s = 60;
  cfg.step_timeouts = {{"Transfer", 600}};

  core::CampaignResult result = core::run_campaign(facility, cfg);

  std::printf("%s\n", core::render_robustness(result).c_str());
  std::printf("%s\n", core::render_fig4(result).c_str());

  // Telemetry exports: causal trace (campaign -> run -> step -> attempt with
  // fault windows and breaker flips as span events), Prometheus snapshot,
  // and the telemetry dashboard page.
  util::write_file("chaos-output/trace.json",
                   telemetry::to_chrome_trace(facility.trace()));
  util::write_file("chaos-output/metrics.prom",
                   facility.telemetry().metrics.to_prometheus());
  auto summary = facility.telemetry().summarize(facility.trace());
  util::write_file("chaos-output/telemetry.html",
                   portal::render_telemetry_html(summary,
                                                 "Chaos campaign telemetry"));
  std::printf("telemetry: chaos-output/trace.json, metrics.prom, "
              "telemetry.html (%zu spans, %zu metric families)\n",
              summary.span_count,
              facility.telemetry().metrics.family_count());

  // Health plane: the report the portal serves (JSON + HTML) and the flight
  // recorder's dump-worthy rings — one JSON file per degraded flow. CI
  // uploads chaos-output/ on failure, so a red run ships its own black box.
  auto report = facility.health().report();
  util::write_file("chaos-output/health.json", report.to_json().dump(2));
  util::write_file("chaos-output/health.html",
                   portal::render_health_html(report, "Chaos campaign health"));
  auto dumps = facility.telemetry().flight.flush_dumps();
  util::Json flight = util::Json::array({});
  for (auto& [subject, dump] : dumps) flight.push_back(std::move(dump));
  util::write_file("chaos-output/flight-dumps.json", flight.dump(2));
  std::printf("health: chaos-output/health.json, health.html, "
              "flight-dumps.json (%llu slo alerts, %llu watchdog flags, "
              "%zu flight dumps)\n",
              static_cast<unsigned long long>(facility.health().slo_alerts()),
              static_cast<unsigned long long>(
                  facility.health().watchdog_flags()),
              dumps.size());

  // Exit nonzero if recovery could not hold the acceptance bar.
  size_t logical = result.in_window.size() + result.late.size();
  double pct = result.robustness.eventual_success_pct(logical);
  std::printf("eventual success: %.1f%% of %zu logical flows\n", pct, logical);
  return pct >= 95.0 ? 0 : 1;
}

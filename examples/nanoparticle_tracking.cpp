// Nanoparticle tracking example (the paper's Sec. 3.2 use case, Fig. 3):
// generate the 600-frame gold-nanoparticle sequence, run it through the
// spatiotemporal flow (EMD -> video conversion -> detection -> tracking ->
// annotated MPK), and evaluate the detector against the generator's ground
// truth with the paper's metric (mAP50-95), using the paper's split: every
// 50th frame labeled -> 9 train / 3 validation / 1 test images.
//
// Usage: nanoparticle_tracking [frames]   (default 600, the paper's length)
#include <cstdio>
#include <cstdlib>

#include "core/facility.hpp"
#include "core/flows.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "vision/detect.hpp"
#include "vision/eval.hpp"
#include "vision/track.hpp"
#include "video/mpk.hpp"

using namespace pico;

int main(int argc, char** argv) {
  size_t frames = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 600;
  if (frames < 50) frames = 50;

  // -- acquire the Fig. 3 sequence -------------------------------------------
  instrument::SpatiotemporalConfig gen =
      instrument::SpatiotemporalConfig::fig3_sample();
  gen.frames = frames;
  auto sample = instrument::generate_spatiotemporal(gen);
  std::printf("generated %zu frames of %zux%zu, %zu gold nanoparticles\n",
              gen.frames, gen.height, gen.width, gen.particle_count);

  // -- run the flow on the real file ------------------------------------------
  core::FacilityConfig config;
  config.artifact_dir = "tracking-output/artifacts";
  config.seed = 20230408;
  core::Facility facility(config);

  emd::MicroscopeSettings scope;
  emd::File file = instrument::to_emd(sample, gen, scope,
                                      "2023-04-08T11:00:00Z",
                                      "gold nanoparticles on carbon",
                                      "operator@anl.gov");
  std::printf("EMD file: %.1f MB\n",
              static_cast<double>(file.payload_bytes()) / 1e6);
  auto st = facility.stage_real_file("staging/fig3.emd", file.to_bytes());
  if (!st) {
    std::fprintf(stderr, "stage failed: %s\n", st.error().message.c_str());
    return 1;
  }

  core::FlowInput input;
  input.file = "staging/fig3.emd";
  input.dest = "eagle/fig3.emd";
  input.artifact_prefix = "fig3";
  input.title = "Gold nanoparticle motion (Fig. 3 sequence)";
  input.subject = "fig3-tracking";
  input.frames = static_cast<int64_t>(frames);
  auto run = facility.flows().start(core::spatiotemporal_flow(facility),
                                    input.to_json(), facility.user_token());
  if (!run) {
    std::fprintf(stderr, "flow start failed: %s\n",
                 run.error().message.c_str());
    return 1;
  }
  facility.engine().run();
  const flow::RunInfo& info = facility.flows().info(run.value());
  if (info.state != flow::RunState::Succeeded) {
    std::fprintf(stderr, "flow failed: %s\n", info.error.c_str());
    return 1;
  }
  auto doc = facility.index().get("fig3-tracking");
  if (doc) {
    const util::Json& analysis = doc.value()->content.at("analysis");
    std::printf("flow ok: %lld detections across %lld frames, %lld tracks\n",
                static_cast<long long>(analysis.at("total_detections").as_int()),
                static_cast<long long>(analysis.at("frames").as_int()),
                static_cast<long long>(analysis.at("tracks").as_int()));
  }

  // -- evaluate the detector as the paper evaluated YOLOv8 --------------------
  // Label every 50th frame; assign the labeled frames 9/3/1 train/val/test
  // (with 600 frames this reproduces the paper's split exactly).
  vision::BlobDetector detector;
  std::vector<vision::EvalImage> train, val, test;
  size_t labeled = 0;
  for (size_t t = 0; t < frames; t += 50) {
    vision::EvalImage img;
    img.truths = sample.boxes[t];
    img.detections = detector.detect(sample.stack.slice0(t));
    size_t bucket = labeled % 13;
    if (bucket < 9) train.push_back(std::move(img));
    else if (bucket < 12) val.push_back(std::move(img));
    else test.push_back(std::move(img));
    ++labeled;
  }
  std::printf("labeled %zu frames -> %zu train / %zu val / %zu test\n",
              labeled, train.size(), val.size(), test.size());

  auto report = [](const char* name, const std::vector<vision::EvalImage>& set) {
    if (set.empty()) return;
    double map = vision::map50_95(set);
    double ap50 = vision::average_precision(set, 0.5);
    auto pr = vision::pr_counts(set, 0.5);
    std::printf("  %-6s mAP50-95 %.3f  AP50 %.3f  P %.2f  R %.2f\n", name, map,
                ap50, pr.precision(), pr.recall());
  };
  std::printf("detector quality (paper YOLOv8s: train 0.791 / val 0.801):\n");
  report("train", train);
  report("val", val);
  report("test", test);

  // -- particle count time series (Fig. 3 caption) -----------------------------
  vision::GreedyIoUTracker tracker;
  size_t sampled = 0;
  std::printf("count per frame (every %zu frames): ", frames / 10);
  for (size_t t = 0; t < frames; ++t) {
    auto dets = detector.detect(sample.stack.slice0(t));
    tracker.update(dets);
    if (t % (frames / 10) == 0 && sampled++ < 10) {
      std::printf("%zu ", dets.size());
    }
  }
  std::printf("\ntracker created %d identities for %zu particles\n",
              tracker.total_tracks_created(), gen.particle_count);
  std::printf("annotated video + count plot in tracking-output/artifacts/\n");
  return 0;
}

// Live watcher example: the instrument-side client application from
// Sec. 2.2.1 running against the REAL filesystem in wall-clock time.
//
// A TransferClient watches a directory for new .emd files (with stability
// debounce and a crash-safe checkpoint journal), classifies each from its
// header, and runs the matching flow (hyperspectral or spatiotemporal)
// through an in-process facility.
//
// In demo mode (default) the example also plays the instrument: a writer
// thread drops a hyperspectral and a spatiotemporal EMD file into the
// watched directory while the watcher runs. Point it at a directory and
// drop files yourself with:  live_watcher <dir> --wait <seconds> --no-demo
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "core/client.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "util/bytes.hpp"

using namespace pico;

namespace {

void drop_demo_files(const std::string& dir) {
  {
    instrument::HyperspectralConfig gen;
    gen.height = 48;
    gen.width = 48;
    gen.channels = 256;
    gen.background = {{"C", 0.8}, {"O", 0.2}};
    gen.particles = {{24, 24, 8, {{"Au", 0.9}, {"C", 0.1}}}};
    auto sample = instrument::generate_hyperspectral(gen);
    emd::MicroscopeSettings scope;
    auto file = instrument::to_emd(sample, gen, scope, "2023-04-07T12:00:00Z",
                                   "demo hyperspectral", "operator@anl.gov");
    util::write_file(dir + "/demo-hyper.emd", file.to_bytes());
  }
  // Pause between drops to exercise the stability debounce.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  {
    instrument::SpatiotemporalConfig gen;
    gen.frames = 12;
    gen.height = 64;
    gen.width = 64;
    gen.particle_count = 4;
    auto sample = instrument::generate_spatiotemporal(gen);
    emd::MicroscopeSettings scope;
    auto file = instrument::to_emd(sample, gen, scope, "2023-04-07T12:05:00Z",
                                   "demo nanoparticles", "operator@anl.gov");
    util::write_file(dir + "/demo-spatio.emd", file.to_bytes());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "live-watch";
  double wait_s = 6.0;
  bool demo = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wait") == 0 && i + 1 < argc) {
      wait_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-demo") == 0) {
      demo = false;
    } else {
      dir = argv[i];
    }
  }
  std::filesystem::create_directories(dir);

  core::FacilityConfig config;
  config.artifact_dir = dir + "/artifacts";
  core::Facility facility(config);

  core::ClientConfig ccfg;
  ccfg.watch_dir = dir;
  ccfg.owner = facility.user_identity();
  core::TransferClient client(&facility, ccfg);
  if (auto st = client.init(); !st) {
    std::fprintf(stderr, "checkpoint: %s\n", st.error().message.c_str());
    return 1;
  }
  std::printf("watching %s (checkpoint: %zu file(s) already processed)\n",
              dir.c_str(), client.processed_count());

  std::thread dropper;
  if (demo) dropper = std::thread([dir] { drop_demo_files(dir); });

  int flows_run = 0, failures = 0;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(static_cast<long>(wait_s * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    for (const auto& launched : client.poll_once()) {
      client.drain();  // settle this flow in virtual time
      const flow::RunInfo& info = facility.flows().info(launched.run);
      ++flows_run;
      if (info.state != flow::RunState::Succeeded) {
        ++failures;
        std::printf("%s: flow FAILED: %s\n", launched.source_path.c_str(),
                    info.error.c_str());
      } else {
        std::printf("%s: flow ok (%s), %.1fs virtual, record %s\n",
                    launched.source_path.c_str(),
                    emd::signal_kind_name(launched.kind).c_str(),
                    facility.flows().timing(launched.run).total_s(),
                    launched.subject.c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  if (dropper.joinable()) dropper.join();

  for (const auto& err : client.errors()) {
    std::printf("skipped: %s\n", err.c_str());
  }
  std::printf("done: %d flow(s), %d failure(s), %zu record(s) in the index\n",
              flows_run, failures, facility.index().size());
  if (demo) {
    std::printf("note: demo mode rewrites its sample files each run, so they "
                "re-trigger (a rewritten acquisition is new data)\n");
  } else {
    std::printf("re-run this example: the checkpoint skips unchanged files\n");
  }
  return failures == 0 ? 0 : 1;
}

// Closing the loop (paper Fig. 1, steps 3-4): the analysis side watches
// successive acquisitions for calibration problems — stage drift, defocus,
// beam-current decay — and alerts the operator, who corrects the instrument
// and continues. This example simulates a drifting, defocusing, dimming
// microscope session; the CalibrationMonitor raises the alerts; the
// "operator" applies the corrections; the session summary shows the loop.
#include <cstdio>

#include "analysis/calibration.hpp"
#include "analysis/hyperspectral.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "vision/image.hpp"

using namespace pico;

namespace {

// One acquisition of the same physical sample under the current (possibly
// degraded) instrument state.
tensor::Tensor<double> acquire(double drift_x, double drift_y,
                               double defocus_sigma, double beam_frac,
                               uint64_t seed) {
  instrument::HyperspectralConfig cfg;
  cfg.height = 96;
  cfg.width = 96;
  cfg.channels = 96;  // imaging-oriented acquisition: modest spectral depth
  cfg.dose = 120.0 * beam_frac;
  cfg.background = {{"C", 0.8}, {"O", 0.2}};
  cfg.particles = {
      {30 + drift_x, 30 + drift_y, 7, {{"Au", 0.9}, {"C", 0.1}}},
      {64 + drift_x, 52 + drift_y, 5, {{"Pb", 0.8}, {"C", 0.2}}},
      {44 + drift_x, 74 + drift_y, 6, {{"Au", 0.5}, {"Pb", 0.3}, {"C", 0.2}}},
  };
  cfg.seed = seed;
  auto sample = instrument::generate_hyperspectral(cfg);
  tensor::Tensor<double> map = analysis::intensity_map(sample.cube);
  if (defocus_sigma > 0) map = vision::gaussian_blur(map, defocus_sigma);
  return map;
}

}  // namespace

int main() {
  analysis::CalibrationConfig ccfg;
  ccfg.drift_threshold_px = 4.0;
  ccfg.sharpness_floor_frac = 0.6;
  ccfg.intensity_floor_frac = 0.75;
  analysis::CalibrationMonitor monitor(ccfg);

  // Instrument state the "session" degrades over time.
  double drift_x = 0, drift_y = 0;
  double defocus = 0;
  double beam = 1.0;
  int corrections = 0;

  std::printf("closed-loop session: 24 acquisitions, instrument degrading\n\n");
  for (int i = 0; i < 24; ++i) {
    // Degradation: steady drift; defocus creeping in midway; beam decay late.
    drift_x += 0.9;
    drift_y -= 0.5;
    if (i >= 8) defocus += 0.35;
    if (i >= 16) beam *= 0.93;

    auto image = acquire(drift_x, drift_y, defocus, beam,
                         1000 + static_cast<uint64_t>(i));
    auto alerts = monitor.observe(image);

    if (alerts.empty()) {
      std::printf("acq %02d: ok (drift %.1f,%.1f px, defocus %.1f, beam "
                  "%.0f%%)\n",
                  i, drift_x, drift_y, defocus, beam * 100);
      continue;
    }
    for (const auto& alert : alerts) {
      std::printf("acq %02d: ALERT [%s] severity %.1f — %s\n", i,
                  analysis::alert_kind_name(alert.kind).c_str(),
                  alert.severity, alert.message.c_str());
      // Step 4: the operator corrects the corresponding subsystem.
      switch (alert.kind) {
        case analysis::AlertKind::Drift:
          drift_x = 0;
          drift_y = 0;
          std::printf("         -> operator recenters the stage\n");
          break;
        case analysis::AlertKind::FocusLoss:
          defocus = 0;
          std::printf("         -> operator refocuses the probe\n");
          break;
        case analysis::AlertKind::IntensityDrop:
          beam = 1.0;
          std::printf("         -> operator realigns the gun / resets dose\n");
          break;
      }
      ++corrections;
    }
    monitor.rebaseline();  // next acquisition becomes the new reference
  }

  std::printf("\nsession complete: %zu acquisitions, %d operator "
              "correction(s) — the Fig. 1 loop (measure -> analyze -> alert "
              "-> correct) closed %d time(s)\n",
              monitor.observations(), corrections, corrections);
  return corrections > 0 ? 0 : 1;
}

// Reproduces Table 1: two independent 1-hour campaigns (hyperspectral: 91 MB
// file every 30 s; spatiotemporal: 1200 MB every 120 s) over the simulated
// facility, reporting aggregate flow statistics side-by-side with the
// paper's measurements. Virtual time: the hour simulates in milliseconds.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "util/bytes.hpp"

using namespace pico;

int main() {
  // Each campaign runs on a fresh facility, as the paper's experiments were
  // independent (cold Polaris allocation at the start of each).
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/table1";
  fc.seed = 20230407;

  core::CampaignConfig hyper_cfg;
  hyper_cfg.use_case = core::UseCase::Hyperspectral;
  hyper_cfg.start_period_s = 30;
  hyper_cfg.file_bytes = 91 * 1000 * 1000;
  hyper_cfg.label_prefix = "hyper";

  core::CampaignConfig spatio_cfg;
  spatio_cfg.use_case = core::UseCase::Spatiotemporal;
  spatio_cfg.start_period_s = 120;
  spatio_cfg.file_bytes = 1200 * 1000 * 1000;
  spatio_cfg.label_prefix = "spatio";

  // Per-campaign PBS queue wait: the two 1-hour experiments ran against
  // different Polaris queue conditions (the paper's hyperspectral max of
  // 181 s implies a long first-allocation wait; the spatiotemporal max of
  // 274 s a short one). Queue wait is the one externally-imposed constant.
  fc.cost.provision_delay_s = 100.0;
  fc.cost.provision_jitter_s = 10.0;
  core::Facility hyper_facility(fc);
  core::CampaignResult hyper = core::run_campaign(hyper_facility, hyper_cfg);

  core::FacilityConfig fc2 = fc;
  fc2.seed = 20230408;
  fc2.cost.provision_delay_s = 35.0;
  fc2.cost.provision_jitter_s = 10.0;
  core::Facility spatio_facility(fc2);
  core::CampaignResult spatio = core::run_campaign(spatio_facility, spatio_cfg);

  std::string table = core::render_table1(hyper, spatio);
  std::fputs(table.c_str(), stdout);
  std::printf("\n(failed flows: hyper=%zu spatio=%zu; late finishers: %zu/%zu)\n",
              hyper.failed, spatio.failed, hyper.late.size(),
              spatio.late.size());

  // Per-flow CSVs for downstream plotting.
  util::write_file("bench-artifacts/table1/hyper_flows.csv",
                   core::flows_csv(hyper));
  util::write_file("bench-artifacts/table1/spatio_flows.csv",
                   core::flows_csv(spatio));
  return 0;
}

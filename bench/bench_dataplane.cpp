// Data-plane kernel trajectory bench: times every hot kernel of the real-byte
// plane (fp64->uint8 conversion, axis reductions, normalization, separable
// blur, CRC-64, LZ compression) in its naive / sequential / parallel
// variants at pool widths {1, 4, hardware} (clamped to the host's hardware
// threads; `oversubscribed` records when a requested width was cut), verifies
// the parallel outputs
// are byte-identical to their sequential twins, and emits a machine-readable
// BENCH_dataplane.json so subsequent PRs have a perf baseline to regress
// against. `--smoke` shrinks every problem so CI can assert the emitter
// works in milliseconds; full mode uses the paper-scale problems from the
// acceptance criteria (256x256x1024 hyperspectral cube, 600x512x512
// spatiotemporal stack).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd/simd.hpp"
#include "util/bytes.hpp"
#include "util/crc64.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"
#include "vision/image.hpp"
#include "video/convert.hpp"

using namespace pico;
using util::Json;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall-clock of fn().
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    double t0 = now_s();
    fn();
    best = std::min(best, now_s() - t0);
  }
  return best;
}

tensor::Tensor<double> random_tensor(tensor::Shape shape, uint64_t seed) {
  tensor::Tensor<double> t(std::move(shape));
  util::Rng rng(seed);
  for (double& v : t.data()) v = rng.uniform(0.0, 4096.0);
  return t;
}

/// Compressible payload: byte-shuffled smooth f64 ramp plus sparse noise —
/// the texture of a real EMD detector-count buffer.
std::vector<uint8_t> compressible_payload(size_t n, uint64_t seed) {
  std::vector<uint8_t> out(n);
  util::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>((i / 977) & 0xFF);
    if (rng.chance(0.02)) out[i] = static_cast<uint8_t>(rng.next_u64());
  }
  return out;
}

/// Pool widths requested for the sweep: {1, 4, hardware}.
std::vector<size_t> requested_widths() {
  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return {1, 4, hw};
}

/// Widths actually run: requested widths clamped to the host's hardware
/// threads (an oversubscribed pool only measures scheduler thrash, not
/// kernel scaling), deduped and sorted.
std::vector<size_t> pool_widths() {
  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> widths;
  for (size_t w : requested_widths()) widths.push_back(std::min(w, hw));
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
  return widths;
}

struct KernelReport {
  std::string name;
  size_t bytes = 0;
  double naive_s = -1;       ///< < 0 when the kernel has no naive variant
  size_t naive_bytes = 0;    ///< naive may run on a reduced problem
  double sequential_s = 0;
  std::vector<std::pair<size_t, double>> parallel_s;  ///< (threads, seconds)
  bool parity = true;        ///< parallel outputs byte-identical to sequential

  Json to_json() const {
    Json par = Json::array();
    for (auto& [threads, secs] : parallel_s) {
      par.push_back(Json::object({
          {"threads", static_cast<int64_t>(threads)},
          {"seconds", secs},
          {"speedup_vs_sequential", secs > 0 ? sequential_s / secs : 0.0},
      }));
    }
    Json j = Json::object({
        {"kernel", name},
        {"bytes", static_cast<int64_t>(bytes)},
        {"sequential_s", sequential_s},
        {"sequential_gbps",
         sequential_s > 0 ? static_cast<double>(bytes) / 1e9 / sequential_s
                          : 0.0},
        {"parallel", par},
        {"parity", parity},
    });
    if (naive_s >= 0) {
      j["naive_s"] = naive_s;
      j["naive_bytes"] = static_cast<int64_t>(naive_bytes);
    }
    return j;
  }

  void print() const {
    std::printf("%-22s %8.1f MB  seq %9.3f ms", name.c_str(),
                static_cast<double>(bytes) / 1e6, sequential_s * 1e3);
    for (auto& [threads, secs] : parallel_s) {
      std::printf("  | %zu thr %9.3f ms (%4.2fx)", threads, secs * 1e3,
                  secs > 0 ? sequential_s / secs : 0.0);
    }
    std::printf("  %s\n", parity ? "parity-ok" : "PARITY MISMATCH!");
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int reps = smoke ? 1 : 2;
  const auto widths = pool_widths();
  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  for (size_t w : widths) pools.push_back(std::make_unique<util::ThreadPool>(w));

  std::printf("data-plane kernel bench (%s, %u hardware threads)\n\n",
              smoke ? "smoke" : "full", std::thread::hardware_concurrency());

  std::vector<KernelReport> reports;

  // ---- fp64 -> uint8 conversion (the paper's headline compute cost) -------
  {
    const size_t T = smoke ? 6 : 600, H = smoke ? 32 : 512,
                 W = smoke ? 32 : 512;
    auto stack = random_tensor({T, H, W}, 0xC0417);
    KernelReport r;
    r.name = "convert_fp64_u8";
    r.bytes = stack.size() * sizeof(double);

    // The naive path rescans the whole stack per frame (O(frames x size)):
    // measured on a reduced stack so full mode finishes this century.
    const size_t nT = smoke ? T : 30, nH = smoke ? H : 128, nW = smoke ? W : 128;
    auto naive_stack = random_tensor({nT, nH, nW}, 0xC0418);
    r.naive_bytes = naive_stack.size() * sizeof(double);
    r.naive_s = time_best(reps, [&] { video::convert_naive(naive_stack); });

    // Steady-state timing: the streaming path reuses pooled destination
    // buffers, so the _into twins with preallocated outputs are what the
    // pipeline actually pays per stack (a fresh Tensor per rep would charge
    // the kernel for zero-fill page faults it never sees in production).
    tensor::Tensor<uint8_t> seq(stack.shape());
    r.sequential_s =
        time_best(reps, [&] { video::convert_fast_into(stack, seq); });
    for (size_t i = 0; i < widths.size(); ++i) {
      tensor::Tensor<uint8_t> par(stack.shape());
      double secs = time_best(
          reps, [&] { video::convert_parallel_into(stack, par, *pools[i]); });
      r.parallel_s.emplace_back(widths[i], secs);
      r.parity = r.parity && par.storage() == seq.storage();
    }
    r.print();
    reports.push_back(std::move(r));
  }

  // ---- normalization of the hyperspectral cube ----------------------------
  const size_t cH = smoke ? 8 : 256, cW = smoke ? 8 : 256,
               cE = smoke ? 32 : 1024;
  auto cube = random_tensor({cH, cW, cE}, 0xCBE);
  {
    KernelReport r;
    r.name = "to_u8_normalized";
    r.bytes = cube.size() * sizeof(double);
    tensor::Tensor<uint8_t> seq(cube.shape());
    r.sequential_s =
        time_best(reps, [&] { tensor::to_u8_normalized_into(cube, seq); });
    for (size_t i = 0; i < widths.size(); ++i) {
      tensor::Tensor<uint8_t> par(cube.shape());
      double secs = time_best(reps, [&] {
        tensor::to_u8_normalized_into(cube, par, *pools[i]);
      });
      r.parallel_s.emplace_back(widths[i], secs);
      r.parity = r.parity && par.storage() == seq.storage();
    }
    r.print();
    reports.push_back(std::move(r));
  }

  // ---- spectral-axis reductions (Fig. 2A / 2B) ----------------------------
  {
    KernelReport r;
    r.name = "sum_axis3_spectral";
    r.bytes = cube.size() * sizeof(double);
    tensor::Tensor<double> seq;
    r.sequential_s = time_best(reps, [&] { seq = tensor::sum_axis3(cube, 2); });
    for (size_t i = 0; i < widths.size(); ++i) {
      tensor::Tensor<double> par;
      double secs =
          time_best(reps, [&] { par = tensor::sum_axis3(cube, 2, *pools[i]); });
      r.parallel_s.emplace_back(widths[i], secs);
      r.parity = r.parity && par.storage() == seq.storage();
    }
    r.print();
    reports.push_back(std::move(r));
  }
  {
    KernelReport r;
    r.name = "sum_keep_axis3_spectrum";
    r.bytes = cube.size() * sizeof(double);
    tensor::Tensor<double> seq;
    r.sequential_s =
        time_best(reps, [&] { seq = tensor::sum_keep_axis3(cube, 2); });
    for (size_t i = 0; i < widths.size(); ++i) {
      tensor::Tensor<double> par;
      double secs = time_best(
          reps, [&] { par = tensor::sum_keep_axis3(cube, 2, *pools[i]); });
      r.parallel_s.emplace_back(widths[i], secs);
      r.parity = r.parity && par.storage() == seq.storage();
    }
    r.print();
    reports.push_back(std::move(r));
  }

  // ---- separable Gaussian blur (detector front-end) -----------------------
  {
    const size_t bH = smoke ? 32 : 512, bW = smoke ? 32 : 512;
    auto img = random_tensor({bH, bW}, 0xB1);
    const double sigma = 2.0;
    KernelReport r;
    r.name = "gaussian_blur";
    r.bytes = img.size() * sizeof(double);
    vision::ImageF seq;
    r.sequential_s =
        time_best(reps, [&] { seq = vision::gaussian_blur(img, sigma); });
    for (size_t i = 0; i < widths.size(); ++i) {
      vision::ImageF par;
      double secs = time_best(
          reps, [&] { par = vision::gaussian_blur(img, sigma, pools[i].get()); });
      r.parallel_s.emplace_back(widths[i], secs);
      r.parity = r.parity && par.storage() == seq.storage();
    }
    r.print();
    reports.push_back(std::move(r));
  }

  // ---- CRC-64 (transfer checksum verification) ----------------------------
  {
    const size_t n = smoke ? (1u << 16) : (256u << 20);
    auto payload = compressible_payload(n, 0xCC);
    KernelReport r;
    r.name = "crc64";
    r.bytes = n;
    r.naive_bytes = n;
    uint64_t bytewise = 0, sliced = 0;
    r.naive_s = time_best(
        reps, [&] { bytewise = util::crc64_bytewise(payload.data(), n); });
    r.sequential_s =
        time_best(reps, [&] { sliced = util::crc64(payload.data(), n); });
    r.parity = bytewise == sliced;
    r.print();
    reports.push_back(std::move(r));

    // Fused copy+checksum: the one-traversal landing primitive. Naive twin is
    // the land-then-scan it replaces (memcpy pass + crc64 pass).
    KernelReport rc;
    rc.name = "crc64_copy";
    rc.bytes = n;
    rc.naive_bytes = n;
    std::vector<uint8_t> dst(n);
    uint64_t scanned = 0, fused = 0;
    rc.naive_s = time_best(reps, [&] {
      std::memcpy(dst.data(), payload.data(), n);
      scanned = util::crc64(dst.data(), n);
    });
    rc.sequential_s = time_best(
        reps, [&] { fused = util::crc64_copy(dst.data(), payload.data(), n); });
    rc.parity = scanned == fused && dst == payload;
    rc.print();
    reports.push_back(std::move(rc));
  }

  // ---- LZ compression (A3 transfer codec) ---------------------------------
  {
    const size_t n = smoke ? (1u << 18) : (24u << 20);
    auto payload = compressible_payload(n, 0x12F);
    KernelReport r;
    r.name = "lz_compress";
    r.bytes = n;
    r.naive_bytes = n;
    compress::LzCodec lz;
    compress::Bytes seq;
    r.naive_s = time_best(reps, [&] { seq = lz.compress(payload); });
    r.sequential_s = r.naive_s;  // the single-stream codec IS the sequential twin
    compress::Bytes first_par;
    for (size_t i = 0; i < widths.size(); ++i) {
      compress::BlockLzCodec block(compress::BlockLzCodec::kDefaultBlockSize,
                                   pools[i].get());
      compress::Bytes par;
      double secs = time_best(reps, [&] { par = block.compress(payload); });
      r.parallel_s.emplace_back(widths[i], secs);
      // Parallel output must round-trip and be identical across widths (the
      // blocked stream legitimately differs from the single-stream bytes).
      if (first_par.empty()) first_par = par;
      auto rt = block.decompress(par);
      r.parity = r.parity && par == first_par && rt && rt.value() == payload;
    }
    r.print();
    reports.push_back(std::move(r));
  }

  // ---- pool telemetry: publish the ThreadPool profiling counters ----------
  // One series per pool width, exported both as Prometheus text (validated by
  // tools/check_telemetry.py in CI) and inside the JSON baseline.
  telemetry::MetricsRegistry registry;
  Json pool_stats = Json::array();
  for (size_t i = 0; i < widths.size(); ++i) {
    const util::PoolStats s = pools[i]->stats();
    telemetry::Labels labels{{"threads", std::to_string(widths[i])}};
    registry
        .counter("pool_tasks_submitted_total", "Tasks enqueued via submit()",
                 labels)
        .inc(static_cast<double>(s.tasks_submitted));
    registry
        .counter("pool_batches_total", "parallel_chunks invocations", labels)
        .inc(static_cast<double>(s.batches));
    registry
        .counter("pool_chunks_executed_total",
                 "Work chunks drained across all threads", labels)
        .inc(static_cast<double>(s.chunks_executed));
    registry
        .counter("pool_caller_chunks_total",
                 "Chunks drained inline by the submitting thread", labels)
        .inc(static_cast<double>(s.caller_chunks));
    registry
        .counter("pool_chunk_time_seconds_total",
                 "Wall time spent inside chunk bodies, summed over threads",
                 labels)
        .inc(static_cast<double>(s.chunk_time_ns) * 1e-9);
    registry
        .gauge("pool_max_queue_depth", "Peak pending-task backlog observed",
               labels)
        .set(static_cast<double>(s.max_queue_depth));
    pool_stats.push_back(Json::object({
        {"threads", static_cast<int64_t>(widths[i])},
        {"tasks_submitted", static_cast<int64_t>(s.tasks_submitted)},
        {"batches", static_cast<int64_t>(s.batches)},
        {"chunks_executed", static_cast<int64_t>(s.chunks_executed)},
        {"caller_chunks", static_cast<int64_t>(s.caller_chunks)},
        {"chunk_time_s", static_cast<double>(s.chunk_time_ns) * 1e-9},
        {"max_queue_depth", static_cast<int64_t>(s.max_queue_depth)},
    }));
  }
  util::write_file("BENCH_dataplane.prom", registry.to_prometheus());

  // ---- regression assertions ----------------------------------------------
  // The sum_keep_axis3 parallel path once ran at 0.32x of sequential (chunk
  // boundaries split cache lines of the shared output row -> false sharing).
  // Guard against it coming back: at the widest width the parallel time must
  // beat sequential whenever the host can actually run threads side by side.
  const size_t hw_threads = std::max(1u, std::thread::hardware_concurrency());
  bool regressions_ok = true;
  if (!smoke && hw_threads > 1) {
    for (const auto& r : reports) {
      if (r.name != "sum_keep_axis3_spectrum" || r.parallel_s.empty()) continue;
      const auto& [w, secs] = r.parallel_s.back();
      if (w > 1 && secs > 0 && r.sequential_s / secs <= 1.0) {
        std::printf("REGRESSION: %s at %zu threads is %.2fx sequential "
                    "(false-sharing guard demands > 1.0x)\n",
                    r.name.c_str(), w, r.sequential_s / secs);
        regressions_ok = false;
      }
    }
  }

  // ---- emit the machine-readable baseline ---------------------------------
  Json kernels = Json::array();
  bool all_parity = true;
  for (const auto& r : reports) {
    kernels.push_back(r.to_json());
    all_parity = all_parity && r.parity;
  }
  const auto requested = requested_widths();
  bool oversubscribed = false;
  for (size_t w : requested) oversubscribed = oversubscribed || w > hw_threads;
  Json doc = Json::object({
      {"schema", "pico.bench.dataplane.v2"},
      {"mode", smoke ? "smoke" : "full"},
      {"hardware_threads", static_cast<int64_t>(hw_threads)},
      {"simd_level", std::string(tensor::simd::active_level_name())},
      {"pool_widths",
       [&] {
         Json a = Json::array();
         for (size_t w : widths) a.push_back(static_cast<int64_t>(w));
         return a;
       }()},
      {"requested_widths",
       [&] {
         Json a = Json::array();
         for (size_t w : requested) a.push_back(static_cast<int64_t>(w));
         return a;
       }()},
      {"oversubscribed", oversubscribed},
      {"parity_all", all_parity},
      {"kernels", kernels},
      {"pools", pool_stats},
  });
  const char* out_path = "BENCH_dataplane.json";
  util::write_file(out_path, doc.dump(2) + "\n");
  std::printf("wrote BENCH_dataplane.prom (%zu metric families)\n",
              registry.family_count());
  std::printf("\nwrote %s (simd=%s, %s%s)\n", out_path,
              tensor::simd::active_level_name(),
              all_parity ? "all parallel kernels byte-identical to sequential"
                         : "PARITY FAILURES — see above",
              regressions_ok ? "" : ", SPEEDUP REGRESSIONS — see above");
  return all_parity && regressions_ok ? 0 : 1;
}

// A4 ablation: "the majority of time is spent on converting raw EMD files to
// MP4 format, which involves a slow data type casting operation from fp64 to
// uint8". Measures the real naive vs optimized conversion paths on real
// stacks (wall clock), and the virtual campaign effect of fixing the
// conversion (the paper's "more efficient integration ... would lead to a
// substantial improvement in time-to-solution").
#include <chrono>
#include <cstdio>

#include "core/campaign.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "video/convert.hpp"

using namespace pico;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

core::CampaignResult run_campaign_with(bool naive, bool parallel = false) {
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/convert";
  fc.seed = 20230408;
  fc.cost.provision_delay_s = 35.0;
  core::Facility facility(fc);
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Spatiotemporal;
  cfg.start_period_s = 120;
  cfg.duration_s = 1800;
  cfg.file_bytes = 1200 * 1000 * 1000;
  cfg.naive_convert = naive;
  cfg.parallel_convert = parallel;
  cfg.label_prefix = naive ? "cv-naive" : parallel ? "cv-par" : "cv-fast";
  return core::run_campaign(facility, cfg);
}

}  // namespace

int main() {
  std::printf("A4 ablation: fp64 -> uint8 conversion cost\n\n");

  // Real wall-clock measurement over growing stacks.
  std::printf("real conversion (wall clock, %zu hw threads):\n",
              static_cast<size_t>(util::shared_pool().thread_count()));
  std::printf("%10s | %12s | %12s | %12s | %8s\n", "stack", "naive", "fast",
              "parallel", "speedup");
  for (size_t frames : {20UL, 60UL, 120UL}) {
    instrument::SpatiotemporalConfig cfg;
    cfg.frames = frames;
    cfg.height = 128;
    cfg.width = 128;
    auto sample = instrument::generate_spatiotemporal(cfg);

    auto t0 = std::chrono::steady_clock::now();
    auto naive = video::convert_naive(sample.stack);
    double naive_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    auto fast = video::convert_fast(sample.stack);
    double fast_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    auto par = video::convert_parallel(sample.stack, util::shared_pool());
    double par_s = seconds_since(t0);

    // Outputs must be identical (the optimization changes nothing visible).
    bool identical = naive.storage() == fast.storage() &&
                     fast.storage() == par.storage();
    std::printf("%7zu fr | %9.1f ms | %9.1f ms | %9.1f ms | %6.1fx %s\n",
                frames, naive_s * 1000, fast_s * 1000, par_s * 1000,
                fast_s > 0 ? naive_s / fast_s : 0.0,
                identical ? "" : "OUTPUT MISMATCH!");
  }

  // Campaign effect: the paper's pipeline (naive conversion) vs the fix vs
  // the whole-node what-if (the compute function owns a full Polaris node
  // and runs the chunked thread-pool conversion).
  std::printf("\ncampaign effect (1200 MB spatiotemporal files, virtual "
              "time):\n");
  core::CampaignResult naive = run_campaign_with(true);
  core::CampaignResult fast = run_campaign_with(false);
  core::CampaignResult par = run_campaign_with(false, true);
  std::printf("%-18s | %10s | %10s | %8s\n", "pipeline", "analysis", "runtime",
              "in-window");
  std::printf("%-18s | %9.1fs | %9.1fs | %8zu\n", "naive conversion",
              naive.step_active_stats("Analyze").median(),
              naive.runtime_stats().median(), naive.in_window.size());
  std::printf("%-18s | %9.1fs | %9.1fs | %8zu\n", "optimized",
              fast.step_active_stats("Analyze").median(),
              fast.runtime_stats().median(), fast.in_window.size());
  std::printf("%-18s | %9.1fs | %9.1fs | %8zu\n", "whole-node parallel",
              par.step_active_stats("Analyze").median(),
              par.runtime_stats().median(), par.in_window.size());
  double saved = naive.runtime_stats().median() - fast.runtime_stats().median();
  std::printf("\nreading: fixing the cast removes ~%.0f s from the median "
              "spatiotemporal flow (%.0f%% of its runtime) — the paper's "
              "predicted 'substantial improvement in time-to-solution'. "
              "Letting the conversion use the whole node trims a further "
              "~%.0f s.\n",
              saved, 100.0 * saved / naive.runtime_stats().median(),
              fast.runtime_stats().median() - par.runtime_stats().median());
  return 0;
}

// Control-plane scale bench (A13): the three orchestration-layer quantities
// the million-flow ROADMAP item makes first-class:
//
//  flows/s    - synthetic campaigns of 10^3 / 10^4 / 10^5 concurrent 3-step
//               flows driven through the real FlowService (polling mode,
//               paper backoff, per-step timeouts) against a null provider, so
//               the measured cost is pure orchestration: engine events, run
//               bookkeeping, breaker + backoff accounting. The 10^5 tier is
//               gated in CI at >= 2.5x the pre-PR baseline (global heap +
//               std::map run state), recorded below as measured on this host
//               immediately before the rewrite. Measured speedup on this
//               host is ~3.1x; the issue's 10x aspiration is unreachable
//               under the byte-parity contract — the fixed ~15.3 events/flow
//               (poll cadence and timeout schedule are observable via the
//               deterministic campaign outputs) put the bare engine's
//               DRAM-bound dispatch (~410 ns/event at 10^5-flow working-set
//               size) above the whole 10x budget (~360 ns/event), so the
//               gate holds the realized win instead.
//  sched ns   - schedule / cancel / drain cost per event for both Engine
//               backends (PICO_SCHED=heap keeps the old priority_queue as a
//               reference twin; the timer wheel is the default).
//  search ms  - inverted-index ingest rate, query p50/p99 over mixed
//               free-text + filter queries at 10^6 documents (10 ms p99 CI
//               gate), and bulk-removal rate (the tombstone fix).
//
// A small flow campaign also runs once per scheduler backend and publishes
// every run into a search::Index; the two index fingerprints (and final
// virtual clocks) must match bit-for-bit — the (time, sequence) FIFO
// contract of the wheel proven on real orchestration traffic.
//
// Emits BENCH_controlplane.json (checked in; CI regenerates with --smoke and
// gates via tools/check_telemetry.py --controlplane).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "flow/service.hpp"
#include "search/index.hpp"
#include "sim/engine.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

#ifdef __linux__
#include <unistd.h>
#endif

using namespace pico;
using util::Json;

namespace {

bool g_ok = true;

void check(bool condition, const char* what) {
  if (!condition) {
    std::printf("FAIL: %s\n", what);
    g_ok = false;
  }
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Current resident set in bytes (Linux; 0 elsewhere). Coarse — malloc
/// arenas are reused across tiers — but good enough for a bytes/flow trend.
int64_t rss_bytes() {
#ifdef __linux__
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long long size = 0, resident = 0;
  int n = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<int64_t>(resident) * sysconf(_SC_PAGESIZE);
#else
  return 0;
#endif
}

// ------------------------------------------------------------ provider ----

/// O(1) null provider: every action succeeds after a scripted virtual
/// duration. Deliberately trivial so the bench measures the orchestrator,
/// not the harness.
class NullProvider : public flow::ActionProvider {
 public:
  explicit NullProvider(sim::Engine* engine) : engine_(engine) {}

  std::string name() const override { return "null"; }

  util::Result<flow::ActionHandle> start(const Json& params,
                                         const auth::Token&) override {
    Action a;
    a.started = engine_->now();
    a.duration_ns = static_cast<int64_t>(
        params.at("duration_s").as_double(1.0) * 1e9);
    size_t idx = actions_.size();
    actions_.push_back(a);
    return util::Result<flow::ActionHandle>::ok(std::to_string(idx));
  }

  flow::ActionPollResult poll(const flow::ActionHandle& handle) override {
    flow::ActionPollResult out;
    const Action& a = actions_[std::strtoull(handle.c_str(), nullptr, 10)];
    if ((engine_->now() - a.started).ns < a.duration_ns) {
      out.status = flow::ActionStatus::Active;
      return out;
    }
    out.status = flow::ActionStatus::Succeeded;
    out.service_started = a.started;
    out.service_completed = a.started + sim::Duration{a.duration_ns};
    out.output = Json::object({{"ok", true}});
    return out;
  }

 private:
  struct Action {
    sim::SimTime started;
    int64_t duration_ns = 0;
  };
  sim::Engine* engine_;
  std::vector<Action> actions_;
};

/// Null provider that additionally publishes one record per completed action
/// into a search index — the parity campaign's "Publish" step.
class PublishProvider : public NullProvider {
 public:
  PublishProvider(sim::Engine* engine, search::Index* index)
      : NullProvider(engine), index_(index) {}

  std::string name() const override { return "publish"; }

  util::Result<flow::ActionHandle> start(const Json& params,
                                         const auth::Token& token) override {
    auto handle = NullProvider::start(params, token);
    if (handle) {
      search::Document doc;
      doc.id = params.at("subject").as_string("doc");
      doc.content = Json::object({
          {"name", doc.id},
          {"resource_type", "bench_flow"},
          {"attempt", params.at("flow_attempt_epoch").as_int(0)},
      });
      index_->ingest(std::move(doc));
    }
    return handle;
  }

 private:
  search::Index* index_;
};

// ---------------------------------------------------------- flow tiers ----

flow::FlowDefinition bench_definition(bool publish) {
  flow::FlowDefinition def;
  def.name = "bench-controlplane";
  flow::ActionState transfer;
  transfer.name = "Transfer";
  transfer.provider = "null";
  transfer.params = Json::object({{"duration_s", "$.input.transfer_s"}});
  transfer.timeout_s = 3600;  // never fires; stresses dead-event handling
  flow::ActionState analyze;
  analyze.name = "Analyze";
  analyze.provider = "null";
  analyze.params = Json::object({{"duration_s", "$.input.analyze_s"}});
  analyze.timeout_s = 3600;
  flow::ActionState pub;
  pub.name = "Publish";
  pub.provider = publish ? "publish" : "null";
  pub.params = Json::object({{"duration_s", 1.0},
                             {"subject", "$.input.subject"}});
  def.steps = {transfer, analyze, pub};
  return def;
}

struct FlowTierResult {
  size_t flows = 0;
  double wall_ms = 0;
  double flows_per_s = 0;
  uint64_t events = 0;
  int64_t bytes_per_flow = 0;
  size_t succeeded = 0;
  double virtual_s = 0;
};

/// Launch `n` concurrent 3-step flows and drain the engine; wall time is the
/// orchestration CPU cost (all service work is virtual).
FlowTierResult run_flow_tier(size_t n, uint64_t* fingerprint_out = nullptr) {
  sim::Engine engine;
  auth::AuthService auth;
  flow::FlowServiceConfig cfg;  // paper defaults: polling, 1 s backoff
  flow::FlowService service(&engine, &auth, cfg, /*seed=*/0xC0117ull);
  NullProvider null_provider(&engine);
  service.register_provider(&null_provider);
  search::Index index("bench-parity");
  PublishProvider publish_provider(&engine, &index);
  service.register_provider(&publish_provider);
  auth::Token token = auth.issue("bench", {"flows"});

  // One shared immutable definition across all n runs (the campaign-driver
  // pattern the shared-definition start() overload exists for).
  auto def = std::make_shared<const flow::FlowDefinition>(
      bench_definition(fingerprint_out != nullptr));
  util::Rng rng(0xBE9Cull);

  int64_t rss0 = rss_bytes();
  double t0 = now_ms();
  size_t succeeded = 0;
  for (size_t i = 0; i < n; ++i) {
    Json input = Json::object({
        {"transfer_s", 30.0 + static_cast<double>(i % 7) * 10.0},
        {"analyze_s", 15.0 + static_cast<double>(i % 5) * 5.0},
        {"subject", "flow-" + std::to_string(i)},
    });
    auto run = service.start(def, std::move(input), token,
                             "bench-" + std::to_string(i));
    check(run.has_value(), "flow start accepted");
    service.on_finished(run.value(),
                        [&succeeded](const flow::RunId&,
                                     const flow::RunInfo& info) {
                          if (info.state == flow::RunState::Succeeded) {
                            ++succeeded;
                          }
                        });
  }
  engine.run();
  double t1 = now_ms();
  int64_t rss1 = rss_bytes();

  FlowTierResult r;
  r.flows = n;
  r.wall_ms = t1 - t0;
  r.flows_per_s = static_cast<double>(n) / ((t1 - t0) / 1e3);
  r.events = engine.events_processed();
  r.bytes_per_flow = rss1 > rss0 ? (rss1 - rss0) / static_cast<int64_t>(n) : 0;
  r.succeeded = succeeded;
  r.virtual_s = engine.now().seconds();
  check(succeeded == n, "all flows in tier succeeded");
  if (fingerprint_out) *fingerprint_out = index.fingerprint();
  return r;
}

// ------------------------------------------------------- sched micro ----

struct SchedMicro {
  std::string backend;
  double schedule_ns = 0;
  double cancel_ns = 0;
  double drain_ns = 0;
  uint64_t fired = 0;
};

SchedMicro sched_micro(const char* backend, size_t events) {
  setenv("PICO_SCHED", backend, 1);
  sim::Engine engine;
  util::Rng rng(0x5C4EDull);
  std::vector<sim::EventHandle> handles;
  handles.reserve(events);
  uint64_t fired = 0;

  double t0 = now_ms();
  for (size_t i = 0; i < events; ++i) {
    handles.push_back(engine.schedule_at(
        sim::SimTime::from_seconds(rng.uniform(0, 3600)), [&fired] { ++fired; }));
  }
  double t1 = now_ms();
  // Cancel every other event — the wheel must reclaim these in O(1) each and
  // compact; the heap twin compacts lazily once cancels pass half the queue.
  for (size_t i = 0; i < events; i += 2) handles[i].cancel();
  double t2 = now_ms();
  engine.run();
  double t3 = now_ms();

  SchedMicro m;
  m.backend = backend;
  m.schedule_ns = (t1 - t0) * 1e6 / static_cast<double>(events);
  m.cancel_ns = (t2 - t1) * 1e6 / static_cast<double>(events / 2);
  m.drain_ns = (t3 - t2) * 1e6 / static_cast<double>(events - events / 2);
  m.fired = fired;
  check(fired == events - events / 2, "cancelled events did not fire");
  return m;
}

// ------------------------------------------------------------- search ----

struct SearchResult {
  size_t docs = 0;
  double ingest_docs_per_s = 0;
  double remove_docs_per_s = 0;
  size_t queries = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  int64_t bytes_per_doc = 0;
  uint64_t fingerprint = 0;
};

Json synth_doc_content(size_t i, util::Rng* rng) {
  static const char* kTypes[] = {"hyperspectral", "spatiotemporal", "tracking",
                                 "ptychography", "calibration", "background",
                                 "reference", "alignment"};
  // Mixed-frequency vocabulary: one term every doc shares, a handful of
  // mid-frequency terms, and a long zipf-ish tail, so queries exercise both
  // dense and sparse postings (and the galloping intersection between them).
  std::string words = "picoprobe";
  words += " w" + std::to_string(i % 97);
  words += " w" + std::to_string(rng->uniform_int(0, 9999));
  words += " w" + std::to_string(rng->uniform_int(0, 99999));
  return Json::object({
      {"name", "sample-" + std::to_string(i)},
      {"resource_type", kTypes[i % 8]},
      {"beamline", "dynamic-picoprobe"},
      {"words", words},
      {"frame", static_cast<int64_t>(i)},
  });
}

SearchResult run_search_tier(size_t docs, size_t queries) {
  search::Index index("bench-scale");
  util::Rng rng(0x5EA2C4ull);

  int64_t rss0 = rss_bytes();
  double t0 = now_ms();
  for (size_t i = 0; i < docs; ++i) {
    search::Document doc;
    doc.id = "doc-" + std::to_string(i);
    doc.content = synth_doc_content(i, &rng);
    index.ingest(std::move(doc));
  }
  double t1 = now_ms();
  int64_t rss1 = rss_bytes();

  // Mixed query shapes, cycled: dense single term, dense+mid AND (galloping),
  // three-term AND, and a mid term with a field filter.
  std::vector<double> lat_ms;
  lat_ms.reserve(queries);
  size_t hits_total = 0;
  for (size_t q = 0; q < queries; ++q) {
    search::Query query;
    switch (q % 4) {
      case 0:
        query.text = "w" + std::to_string(q % 97);
        break;
      case 1:
        query.text = "picoprobe w" + std::to_string(q % 97);
        break;
      case 2:
        query.text = "picoprobe w" + std::to_string(q % 97) + " w" +
                     std::to_string(rng.uniform_int(0, 9999));
        break;
      default:
        query.text = "w" + std::to_string(q % 97);
        query.field_filters.emplace_back("resource_type",
                                         q % 2 ? "tracking" : "calibration");
        break;
    }
    query.limit = 25;
    double qt0 = now_ms();
    auto hits = index.search(query);
    double qt1 = now_ms();
    lat_ms.push_back(qt1 - qt0);
    hits_total += hits.size();
  }
  std::sort(lat_ms.begin(), lat_ms.end());
  check(hits_total > 0, "search queries returned hits");

  // Bulk removal: every 100th doc (the pre-PR ingest_order_ scan made this
  // quadratic in the index size).
  size_t removals = docs / 100;
  double r0 = now_ms();
  for (size_t i = 0; i < removals; ++i) {
    check(index.remove("doc-" + std::to_string(i * 100)).is_ok(),
          "bulk remove found doc");
  }
  double r1 = now_ms();
  check(index.size() == docs - removals, "size reflects removals");

  SearchResult s;
  s.docs = docs;
  s.ingest_docs_per_s = static_cast<double>(docs) / ((t1 - t0) / 1e3);
  s.remove_docs_per_s =
      removals ? static_cast<double>(removals) / std::max(1e-9, (r1 - r0) / 1e3)
               : 0;
  s.queries = queries;
  s.p50_ms = lat_ms[lat_ms.size() / 2];
  s.p99_ms = lat_ms[std::min(lat_ms.size() - 1, lat_ms.size() * 99 / 100)];
  s.bytes_per_doc = rss1 > rss0 ? (rss1 - rss0) / static_cast<int64_t>(docs) : 0;
  s.fingerprint = index.fingerprint();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_controlplane.json";
  bool smoke = false;
  size_t only_tier = 0;  // --tier N: run one flow tier and exit (profiling)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--tier") == 0 && i + 1 < argc) {
      only_tier = std::strtoull(argv[++i], nullptr, 10);
    } else {
      out_path = argv[i];
    }
  }
  if (only_tier > 0) {
    FlowTierResult r = run_flow_tier(only_tier);
    std::printf("flows  %7zu  %9.0f flows/s  wall %8.1f ms\n", r.flows,
                r.flows_per_s, r.wall_ms);
    return 0;
  }

  // Pre-PR baseline, measured on this host with the global-heap engine and
  // the std::map run store immediately before the control-plane rewrite
  // (same driver, same tiers). The CI gate holds the 10^5 tier at >= 2.5x
  // (measured ~3.1x; see the header comment for why 10x is out of reach
  // under the byte-parity contract).
  const double kBaselineFlowsPerS100k = 16035.0;
  const double kBaselineSearchP99Ms1M = 1090.03;
  const double kFlowsSpeedupGate = 2.5;

  std::vector<size_t> tiers = smoke ? std::vector<size_t>{1000, 10000}
                                    : std::vector<size_t>{1000, 10000, 100000};
  size_t search_docs = smoke ? 50000 : 1000000;
  size_t search_queries = smoke ? 400 : 1000;
  size_t micro_events = smoke ? 200000 : 1000000;

  // ---- scheduler micro: both backends ----
  SchedMicro heap = sched_micro("heap", micro_events);
  SchedMicro wheel = sched_micro("wheel", micro_events);
  std::printf("sched  %-6s schedule %6.1f ns  cancel %6.1f ns  drain %7.1f ns\n",
              heap.backend.c_str(), heap.schedule_ns, heap.cancel_ns,
              heap.drain_ns);
  std::printf("sched  %-6s schedule %6.1f ns  cancel %6.1f ns  drain %7.1f ns\n",
              wheel.backend.c_str(), wheel.schedule_ns, wheel.cancel_ns,
              wheel.drain_ns);

  // ---- parity campaign: identical flows under heap and wheel must publish
  //      a bit-identical index and drain to the same virtual clock ----
  setenv("PICO_SCHED", "heap", 1);
  uint64_t fp_heap = 0;
  FlowTierResult parity_heap = run_flow_tier(smoke ? 500 : 2000, &fp_heap);
  setenv("PICO_SCHED", "wheel", 1);
  uint64_t fp_wheel = 0;
  FlowTierResult parity_wheel = run_flow_tier(smoke ? 500 : 2000, &fp_wheel);
  bool parity = fp_heap == fp_wheel &&
                parity_heap.virtual_s == parity_wheel.virtual_s &&
                parity_heap.events == parity_wheel.events;
  check(parity, "heap vs wheel campaign parity (fingerprint, clock, events)");
  std::printf("parity heap %016llx wheel %016llx  %s\n",
              static_cast<unsigned long long>(fp_heap),
              static_cast<unsigned long long>(fp_wheel),
              parity ? "MATCH" : "MISMATCH");

  // ---- flow tiers (default scheduler) ----
  setenv("PICO_SCHED", "", 1);
  Json tiers_json = Json::array();
  double flows_per_s_100k = 0;
  for (size_t n : tiers) {
    FlowTierResult r = run_flow_tier(n);
    std::printf(
        "flows  %7zu  %9.0f flows/s  wall %8.1f ms  %9llu events  %6lld B/flow\n",
        r.flows, r.flows_per_s, r.wall_ms,
        static_cast<unsigned long long>(r.events),
        static_cast<long long>(r.bytes_per_flow));
    if (n == 100000) flows_per_s_100k = r.flows_per_s;
    tiers_json.push_back(Json::object({
        {"flows", static_cast<int64_t>(r.flows)},
        {"flows_per_s", r.flows_per_s},
        {"wall_ms", r.wall_ms},
        {"events", static_cast<int64_t>(r.events)},
        {"events_per_flow",
         static_cast<double>(r.events) / static_cast<double>(r.flows)},
        {"bytes_per_flow", r.bytes_per_flow},
        {"virtual_s", r.virtual_s},
    }));
  }

  // ---- search scale tier ----
  SearchResult search = run_search_tier(search_docs, search_queries);
  std::printf(
      "search %7zu docs  ingest %9.0f docs/s  remove %9.0f docs/s\n"
      "       p50 %.3f ms  p99 %.3f ms  (%zu queries)  %lld B/doc\n",
      search.docs, search.ingest_docs_per_s, search.remove_docs_per_s,
      search.p50_ms, search.p99_ms, search.queries,
      static_cast<long long>(search.bytes_per_doc));

  if (!smoke && flows_per_s_100k > 0) {
    check(flows_per_s_100k >= kFlowsSpeedupGate * kBaselineFlowsPerS100k,
          "10^5-flow tier >= 2.5x pre-PR baseline");
    check(search.p99_ms < 10.0, "search p99 < 10 ms at 10^6 docs");
  }

  Json doc = Json::object({
      {"bench", "controlplane"},
      {"schema", "pico.bench.controlplane.v1"},
      {"smoke", smoke},
      {"pass", g_ok},
      {"sched",
       Json::object({
           {"default_backend", sim::Engine().backend_name()},
           {"backends",
            Json::array({
                Json::object({{"name", heap.backend},
                              {"schedule_ns", heap.schedule_ns},
                              {"cancel_ns", heap.cancel_ns},
                              {"drain_ns", heap.drain_ns}}),
                Json::object({{"name", wheel.backend},
                              {"schedule_ns", wheel.schedule_ns},
                              {"cancel_ns", wheel.cancel_ns},
                              {"drain_ns", wheel.drain_ns}}),
            })},
       })},
      {"flows",
       Json::object({
           {"mode", "polling"},
           {"steps", 3},
           {"tiers", tiers_json},
           {"baseline_flows_per_s_100k", kBaselineFlowsPerS100k},
           {"speedup_gate_100k", kFlowsSpeedupGate},
           {"speedup_100k", flows_per_s_100k > 0
                                ? flows_per_s_100k / kBaselineFlowsPerS100k
                                : 0.0},
       })},
      {"search",
       Json::object({
           {"docs", static_cast<int64_t>(search.docs)},
           {"ingest_docs_per_s", search.ingest_docs_per_s},
           {"remove_docs_per_s", search.remove_docs_per_s},
           {"queries", static_cast<int64_t>(search.queries)},
           {"p50_ms", search.p50_ms},
           {"p99_ms", search.p99_ms},
           {"bytes_per_doc", search.bytes_per_doc},
           {"baseline_p99_ms_1m", kBaselineSearchP99Ms1M},
       })},
      {"parity",
       Json::object({
           {"campaign_flows",
            static_cast<int64_t>(parity_heap.flows)},
           {"fingerprint_heap", util::format("%016llx",
                                             static_cast<unsigned long long>(
                                                 fp_heap))},
           {"fingerprint_wheel", util::format("%016llx",
                                              static_cast<unsigned long long>(
                                                  fp_wheel))},
           {"match", parity},
       })},
  });
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return g_ok ? 0 : 1;
}

// A2 ablation: "transfer times ... to be the overall bottleneck" and future
// detectors producing up to 65 GB/s (Sec. 1, Sec. 5). Sweeps the on-site
// network from today's 1 Gbps switch through the 200 Gbps backbone class and
// reports where the spatiotemporal flow stops being transfer-bound; then
// sizes the 65 GB/s future-detector stream against each configuration.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

using namespace pico;

namespace {

struct Config {
  const char* label;
  double switch_bps;
  double per_flow_cap_bps;
};

core::CampaignResult run_with(const Config& config) {
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/bandwidth";
  fc.seed = 20230408;
  fc.user_switch_bps = config.switch_bps;
  fc.cost.per_flow_rate_cap_bps = config.per_flow_cap_bps;
  fc.cost.provision_delay_s = 35.0;
  core::Facility facility(fc);
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Spatiotemporal;
  cfg.start_period_s = 120;
  cfg.duration_s = 1800;
  cfg.file_bytes = 1200 * 1000 * 1000;
  cfg.label_prefix = "bw";
  return core::run_campaign(facility, cfg);
}

}  // namespace

int main() {
  // Per-flow caps scale with the fabric: end hosts get upgraded alongside
  // the switch (multi-stream GridFTP, NVMe staging).
  std::vector<Config> configs = {
      {"1 Gbps switch (paper today)", 1e9, 88e6},
      {"10 Gbps upgrade", 10e9, 2e9},
      {"40 Gbps upgrade", 40e9, 8e9},
      {"100 Gbps upgrade", 100e9, 20e9},
      {"200 Gbps backbone class", 200e9, 40e9},
  };

  std::printf("A2 ablation: on-site bandwidth vs spatiotemporal flow shape "
              "(1200 MB files every 120 s)\n\n");
  std::printf("%-28s | %9s | %9s | %10s | %8s | %s\n", "network", "xfer med",
              "analysis", "runtime", "in-hour", "bound by");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (const auto& config : configs) {
    core::CampaignResult r = run_with(config);
    double xfer = r.step_active_stats("Transfer").median();
    double analysis = r.step_active_stats("Analyze").median();
    std::printf("%-28s | %8.1fs | %8.1fs | %9.1fs | %8zu | %s\n", config.label,
                xfer, analysis, r.runtime_stats().median(),
                r.in_window.size() * 2,  // 30-min campaign -> per-hour rate
                xfer > analysis ? "transfer" : "compute");
  }

  // Future detector feasibility: 65 GB/s sustained (~200 TB/hour).
  std::printf("\nfuture detector: 65 GB/s sustained (= %.0f Gbps)\n",
              65.0 * 8);
  for (const auto& config : configs) {
    double capacity_gbps = config.switch_bps / 1e9;
    double needed_gbps = 65.0 * 8;
    std::printf("  %-28s %6.0f Gbps -> %5.1f%% of the required stream%s\n",
                config.label, capacity_gbps,
                100.0 * capacity_gbps / needed_gbps,
                capacity_gbps >= needed_gbps ? "  [sufficient]" : "");
  }
  std::printf("\nreading: the crossover from transfer-bound to compute-bound "
              "happens at the first upgrade step; even the 200 Gbps backbone "
              "cannot absorb the 65 GB/s detector without compression "
              "(see bench_compression).\n");
  return 0;
}

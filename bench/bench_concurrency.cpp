// A5 ablation: concurrent flow scaling. The paper notes Globus services allow
// parallel flow execution ("start new flows even when previous ones are still
// running") and that the software stack scales with data velocity "as
// supported by the available networking infrastructure". Sweeps the start
// period downward until the 1 Gbps switch saturates, and shows warm-node
// reuse (first-flow penalty) at each load.
#include <cstdio>

#include "core/campaign.hpp"

using namespace pico;

namespace {

struct PeriodResult {
  core::CampaignResult campaign;
  double switch_utilization = 0;
};

PeriodResult run_period(double period_s, int polaris_nodes) {
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/concurrency";
  fc.seed = 20230408;
  fc.polaris_nodes = polaris_nodes;
  fc.compute_max_blocks = polaris_nodes;
  fc.cost.provision_delay_s = 35.0;
  // Instrument-side staging must not serialize drops for this sweep: assume
  // an NVMe staging path (fast local copy, short debounce) so the network is
  // the binding constraint being measured.
  fc.cost.staging_rate_Bps = 400e6;
  fc.cost.watcher_debounce_s = 3.0;
  core::Facility facility(fc);
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Spatiotemporal;
  cfg.start_period_s = period_s;
  cfg.duration_s = 1800;
  cfg.file_bytes = 1200 * 1000 * 1000;
  cfg.label_prefix = "cc";
  PeriodResult out;
  out.campaign = core::run_campaign(facility, cfg);
  out.switch_utilization =
      facility.network().average_utilization(facility.user_switch_link());
  return out;
}

}  // namespace

int main() {
  std::printf("A5 ablation: flow concurrency vs the 1 Gbps site network "
              "(spatiotemporal, 1200 MB files)\n\n");
  std::printf("%6s | %6s | %10s | %10s | %10s | %10s | %8s\n", "period",
              "flows", "xfer med", "xfer max", "runtime", "first-flow",
              "switch");
  std::printf("%s\n", std::string(79, '-').c_str());

  for (double period : {240.0, 120.0, 60.0, 20.0, 8.0, 3.0}) {
    PeriodResult pr = run_period(period, 8);
    const core::CampaignResult& r = pr.campaign;
    if (r.in_window.empty()) {
      std::printf("%5.0fs | %6zu | (no flows completed in window)\n", period,
                  r.in_window.size());
      continue;
    }
    double first_total = r.in_window.front().timing.total_s();
    std::printf("%5.0fs | %6zu | %9.1fs | %9.1fs | %9.1fs | %9.1fs | %6.1f%%\n",
                period, r.in_window.size() + r.late.size(),
                r.step_active_stats("Transfer").median(),
                r.step_active_stats("Transfer").max(),
                r.runtime_stats().median(), first_total,
                100 * pr.switch_utilization);
  }

  std::printf("\nreading: transfer medians grow as concurrent 1200 MB "
              "transfers contend for the shared 1 Gbps uplink; once the "
              "offered load (file size / start period) exceeds the switch "
              "capacity (~3 s period here), the queue becomes unstable and "
              "runtimes grow without bound — the paper's stated scaling "
              "limit ('as supported by the available networking "
              "infrastructure').\n");

  // Warm-pool effect: the same load with 1 vs 8 Polaris blocks.
  std::printf("\nwarm-pool sizing at period 60 s:\n");
  for (int nodes : {1, 2, 8}) {
    core::CampaignResult r = run_period(60.0, nodes).campaign;
    std::printf("  %d block(s): %zu flows in-window, analysis median %.1fs, "
                "runtime median %.1fs\n",
                nodes, r.in_window.size(),
                r.step_active_stats("Analyze").median(),
                r.runtime_stats().median());
  }
  return 0;
}

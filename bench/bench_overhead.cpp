// Orchestration-overhead shootout: reruns both Table-1 campaigns under four
// completion-signaling modes and reports how much of the paper's measured
// overhead (median 49.2 % hyperspectral / 21.1 % spatiotemporal, Sec. 3.3)
// each one recovers:
//
//   paper_polling    - exponential backoff polling, 1 s doubling to 10 min
//                      (the production system the paper measured)
//   adaptive_polling - same poller with the jittered 30 s cap (reset on
//                      status change still applies)
//   event_driven     - provider completion notifications; polling degrades
//                      to a sparse reconcile safety net
//   event_streaming  - events plus cut-through: Analyze pre-dispatches held
//                      on the Transfer's first landed chunk and is credited
//                      the overlapped work
//
// Every run is cross-checked against telemetry: the RunTiming rebuilt from
// the closed span tree must match the flow service's records at ns
// granularity (span_parity). Emits BENCH_overhead.json (checked in; CI
// regenerates and schema-checks it via tools/check_telemetry.py --overhead).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "telemetry/export.hpp"
#include "util/bytes.hpp"
#include "util/stats.hpp"

using namespace pico;

namespace {

struct ModeSpec {
  std::string name;
  flow::CompletionMode completion = flow::CompletionMode::Polling;
  bool adaptive_backoff = false;
  bool streaming = false;
};

const std::vector<ModeSpec>& modes() {
  static const std::vector<ModeSpec> kModes = {
      {"paper_polling", flow::CompletionMode::Polling, false, false},
      {"adaptive_polling", flow::CompletionMode::Polling, true, false},
      {"event_driven", flow::CompletionMode::Events, false, false},
      {"event_streaming", flow::CompletionMode::Events, false, true},
  };
  return kModes;
}

struct ModeResult {
  std::string mode;
  size_t runs = 0;
  size_t failed = 0;
  double median_total_s = 0;
  double max_total_s = 0;
  double median_overhead_s = 0;
  double median_overhead_frac = 0;  ///< (total - active_union) / total
  double median_overlap_s = 0;      ///< wall time saved by cut-through
  double polls_per_run = 0;
  double notifications_per_run = 0;
  double notification_latency_p50_s = 0;
  uint64_t streamed_steps = 0;
  bool span_parity = true;
};

bool timing_equal_ns(const flow::RunTiming& a, const flow::RunTiming& b) {
  if (a.submitted.ns != b.submitted.ns || a.finished.ns != b.finished.ns ||
      a.steps.size() != b.steps.size()) {
    return false;
  }
  for (size_t i = 0; i < a.steps.size(); ++i) {
    const flow::StepTiming& x = a.steps[i];
    const flow::StepTiming& y = b.steps[i];
    if (x.name != y.name || x.dispatched.ns != y.dispatched.ns ||
        x.service_started.ns != y.service_started.ns ||
        x.service_completed.ns != y.service_completed.ns ||
        x.discovered.ns != y.discovered.ns || x.polls != y.polls ||
        x.retries != y.retries || x.timeouts != y.timeouts ||
        x.notifications != y.notifications || x.streamed != y.streamed) {
      return false;
    }
  }
  return true;
}

ModeResult run_mode(const ModeSpec& mode, core::UseCase use_case,
                    double duration_s) {
  // Fresh facility per run, with bench_table1's per-campaign calibration
  // (independent experiments, different Polaris queue conditions).
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/overhead";
  if (use_case == core::UseCase::Hyperspectral) {
    fc.seed = 20230407;
    fc.cost.provision_delay_s = 100.0;
    fc.cost.provision_jitter_s = 10.0;
  } else {
    fc.seed = 20230408;
    fc.cost.provision_delay_s = 35.0;
    fc.cost.provision_jitter_s = 10.0;
  }
  fc.flow.completion_mode = mode.completion;
  if (mode.adaptive_backoff) fc.flow.backoff = flow::BackoffPolicy::adaptive();

  core::CampaignConfig cfg;
  cfg.use_case = use_case;
  cfg.duration_s = duration_s;
  if (use_case == core::UseCase::Hyperspectral) {
    cfg.start_period_s = 30;
    cfg.file_bytes = 91 * 1000 * 1000;
    cfg.label_prefix = "hyper";
  } else {
    cfg.start_period_s = 120;
    cfg.file_bytes = 1200 * 1000 * 1000;
    cfg.label_prefix = "spatio";
  }
  if (mode.streaming) cfg.streaming_steps = {"Analyze"};

  core::Facility facility(fc);
  core::CampaignResult result = core::run_campaign(facility, cfg);

  // Per-step Fig.-4 decomposition per mode, for calibration work.
  if (std::getenv("OVERHEAD_FIG4")) {
    std::printf("--- %s / %s ---\n%s\n", cfg.label_prefix.c_str(),
                mode.name.c_str(), core::render_fig4(result).c_str());
    for (const char* step : {"Transfer", "Analyze", "Publish"}) {
      util::SampleStats dispatch_lag;
      for (const core::CompletedFlow& f : result.in_window) {
        for (const flow::StepTiming& s : f.timing.steps) {
          if (s.name == step) {
            dispatch_lag.add((s.service_started - s.dispatched).seconds());
          }
        }
      }
      util::SampleStats disc = result.step_lag_stats(step);
      std::printf("  %-9s dispatch-lag med %.2fs max %.2fs | "
                  "discovery-lag med %.2fs max %.2fs\n",
                  step, dispatch_lag.median(), dispatch_lag.max(),
                  disc.median(), disc.max());
    }
  }

  ModeResult out;
  out.mode = mode.name;
  out.runs = result.in_window.size();
  out.failed = result.failed;

  util::SampleStats total, overhead, frac, overlap;
  for (const core::CompletedFlow& f : result.in_window) {
    if (!f.success) continue;
    double t = f.timing.total_s();
    total.add(t);
    overhead.add(t - f.timing.active_union_s());
    if (t > 0) frac.add((t - f.timing.active_union_s()) / t);
    overlap.add(f.timing.overlap_s());

    // Telemetry cross-check: the span tree alone must reproduce the service
    // records exactly.
    flow::RunTiming rebuilt;
    if (!timing_from_spans(facility.trace(), f.id, &rebuilt) ||
        !timing_equal_ns(rebuilt, f.timing)) {
      out.span_parity = false;
    }
  }
  out.median_total_s = total.empty() ? 0 : total.median();
  out.max_total_s = total.empty() ? 0 : total.max();
  out.median_overhead_s = overhead.empty() ? 0 : overhead.median();
  out.median_overhead_frac = frac.empty() ? 0 : frac.median();
  out.median_overlap_s = overlap.empty() ? 0 : overlap.median();

  telemetry::TelemetrySummary summary =
      telemetry::summarize(facility.trace(), facility.telemetry().metrics);
  double n = out.runs ? static_cast<double>(out.runs) : 1.0;
  out.polls_per_run = static_cast<double>(summary.signaling.polls) / n;
  out.notifications_per_run =
      static_cast<double>(summary.signaling.notifications) / n;
  out.notification_latency_p50_s =
      summary.signaling.notification_latency_p50_s;
  out.streamed_steps = summary.signaling.streamed_steps;
  return out;
}

util::Json mode_json(const ModeResult& m) {
  return util::Json::object({
      {"mode", m.mode},
      {"runs", static_cast<int64_t>(m.runs)},
      {"failed", static_cast<int64_t>(m.failed)},
      {"median_total_s", m.median_total_s},
      {"max_total_s", m.max_total_s},
      {"median_overhead_s", m.median_overhead_s},
      {"median_overhead_frac", m.median_overhead_frac},
      {"median_overlap_s", m.median_overlap_s},
      {"polls_per_run", m.polls_per_run},
      {"notifications_per_run", m.notifications_per_run},
      {"notification_latency_p50_s", m.notification_latency_p50_s},
      {"streamed_steps", static_cast<int64_t>(m.streamed_steps)},
      {"span_parity", m.span_parity},
  });
}

void print_campaign(const char* title, const std::vector<ModeResult>& rows,
                    double paper_overhead_pct) {
  std::printf("\n%s (paper: median overhead %.1f %%)\n", title,
              paper_overhead_pct);
  std::printf("%-18s %5s %9s %9s %9s %8s %9s %8s %7s\n", "mode", "runs",
              "med tot", "max tot", "med ovh", "ovh %", "polls/rn", "overlap",
              "parity");
  for (const ModeResult& m : rows) {
    std::printf("%-18s %5zu %8.1fs %8.1fs %8.1fs %7.1f%% %9.1f %7.1fs %7s\n",
                m.mode.c_str(), m.runs, m.median_total_s, m.max_total_s,
                m.median_overhead_s, 100.0 * m.median_overhead_frac,
                m.polls_per_run, m.median_overlap_s,
                m.span_parity ? "ok" : "FAIL");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_overhead.json";
  double duration_s = 3600;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      duration_s = 900;  // quarter-hour campaigns for CI smoke
    } else {
      out_path = argv[i];
    }
  }

  util::Json campaigns = util::Json::array();
  bool parity_all = true;
  struct Campaign {
    core::UseCase use_case;
    const char* name;
    const char* title;
    double paper_pct;
  };
  const Campaign kCampaigns[] = {
      {core::UseCase::Hyperspectral, "hyperspectral",
       "Hyperspectral (91 MB / 30 s)", 49.2},
      {core::UseCase::Spatiotemporal, "spatiotemporal",
       "Spatiotemporal (1200 MB / 120 s)", 21.1},
  };
  for (const Campaign& c : kCampaigns) {
    std::vector<ModeResult> rows;
    util::Json mode_rows = util::Json::array();
    for (const ModeSpec& mode : modes()) {
      ModeResult r = run_mode(mode, c.use_case, duration_s);
      parity_all = parity_all && r.span_parity;
      mode_rows.push_back(mode_json(r));
      rows.push_back(std::move(r));
    }
    print_campaign(c.title, rows, c.paper_pct);
    campaigns.push_back(util::Json::object({
        {"use_case", c.name},
        {"paper_median_overhead_pct", c.paper_pct},
        {"modes", std::move(mode_rows)},
    }));
  }

  util::Json doc = util::Json::object({
      {"schema", "pico.bench.overhead.v1"},
      {"duration_s", duration_s},
      {"span_parity_all", parity_all},
      {"campaigns", std::move(campaigns)},
  });
  util::write_file(out_path, doc.dump(2) + "\n");
  std::printf("\nwrote %s (span parity: %s)\n", out_path.c_str(),
              parity_all ? "ok" : "FAIL");
  return parity_all ? 0 : 1;
}

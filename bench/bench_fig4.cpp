// Reproduces Fig. 4: itemized runtime statistics (seconds) for the
// hyperspectral (A) and spatiotemporal (B) flows over the same 1-hour
// campaigns as Table 1 — per-step active time box statistics plus the
// overhead decomposition, with the paper's headline medians for comparison.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "util/bytes.hpp"

using namespace pico;

int main() {
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/fig4";
  fc.seed = 20230407;
  fc.cost.provision_delay_s = 100.0;
  fc.cost.provision_jitter_s = 10.0;

  core::CampaignConfig hyper_cfg;
  hyper_cfg.use_case = core::UseCase::Hyperspectral;
  hyper_cfg.start_period_s = 30;
  hyper_cfg.file_bytes = 91 * 1000 * 1000;
  hyper_cfg.label_prefix = "hyper";
  core::Facility hyper_facility(fc);
  core::CampaignResult hyper = core::run_campaign(hyper_facility, hyper_cfg);

  core::FacilityConfig fc2 = fc;
  fc2.seed = 20230408;
  fc2.cost.provision_delay_s = 35.0;
  core::CampaignConfig spatio_cfg;
  spatio_cfg.use_case = core::UseCase::Spatiotemporal;
  spatio_cfg.start_period_s = 120;
  spatio_cfg.file_bytes = 1200 * 1000 * 1000;
  spatio_cfg.label_prefix = "spatio";
  core::Facility spatio_facility(fc2);
  core::CampaignResult spatio = core::run_campaign(spatio_facility, spatio_cfg);

  std::printf("%s\n", core::render_fig4(hyper).c_str());
  std::printf("paper Fig. 4A reference: median overhead 19.5 s = 49.2%% of "
              "median runtime\n\n");
  std::printf("%s\n", core::render_fig4(spatio).c_str());
  std::printf("paper Fig. 4B reference: median overhead 45.2 s = 21.1%% of "
              "median runtime\n");

  // Shape assertions the paper makes in prose:
  double h_xfer = hyper.step_active_stats("Transfer").median();
  double h_ana = hyper.step_active_stats("Analyze").median();
  double s_xfer = spatio.step_active_stats("Transfer").median();
  double s_ana = spatio.step_active_stats("Analyze").median();
  std::printf("\nshape checks:\n");
  std::printf("  transfer dominates active runtime: hyper %s (%.1f vs %.1f), "
              "spatio %s (%.1f vs %.1f)\n",
              h_xfer > h_ana ? "yes" : "NO", h_xfer, h_ana,
              s_xfer > s_ana ? "yes" : "NO", s_xfer, s_ana);
  std::printf("  overhead %% higher for the short flow: %.1f%% (hyper) vs "
              "%.1f%% (spatio)\n",
              hyper.overhead_pct_stats().median(),
              spatio.overhead_pct_stats().median());

  util::write_file("bench-artifacts/fig4/hyper_flows.csv",
                   core::flows_csv(hyper));
  util::write_file("bench-artifacts/fig4/spatio_flows.csv",
                   core::flows_csv(spatio));
  return 0;
}

// A6: google-benchmark microbenchmarks of the data-plane kernels every flow
// executes — tensor reductions (Fig. 2 math), fp64->u8 conversion, codecs,
// EMD encode/parse, JSON, CRC-64, search ingest/query, blob detection.
#include <benchmark/benchmark.h>

#include "analysis/hyperspectral.hpp"
#include "compress/codec.hpp"
#include "emd/file.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "search/index.hpp"
#include "tensor/ops.hpp"
#include "util/crc64.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "video/convert.hpp"
#include "vision/detect.hpp"

using namespace pico;

namespace {

tensor::Tensor<double> make_cube(size_t h, size_t w, size_t e) {
  util::Rng rng(42);
  tensor::Tensor<double> cube(tensor::Shape{h, w, e});
  for (size_t i = 0; i < cube.size(); ++i) cube[i] = rng.uniform(0, 50);
  return cube;
}

void BM_SumSpectralAxis(benchmark::State& state) {
  auto cube = make_cube(64, 64, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::sum_axis3(cube, 2));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cube.size() * 8));
}
BENCHMARK(BM_SumSpectralAxis)->Arg(256)->Arg(1024);

void BM_SumSpectrum(benchmark::State& state) {
  auto cube = make_cube(64, 64, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::sum_keep_axis3(cube, 2));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cube.size() * 8));
}
BENCHMARK(BM_SumSpectrum)->Arg(256)->Arg(1024);

void BM_ConvertFast(benchmark::State& state) {
  auto stack = make_cube(static_cast<size_t>(state.range(0)), 128, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(video::convert_fast(stack));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stack.size() * 8));
}
BENCHMARK(BM_ConvertFast)->Arg(16)->Arg(64);

void BM_ConvertNaive(benchmark::State& state) {
  auto stack = make_cube(static_cast<size_t>(state.range(0)), 128, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(video::convert_naive(stack));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stack.size() * 8));
}
BENCHMARK(BM_ConvertNaive)->Arg(16);

void BM_Codec(benchmark::State& state, const char* name) {
  instrument::SpatiotemporalConfig cfg;
  cfg.frames = 8;
  cfg.height = 128;
  cfg.width = 128;
  auto frames = video::convert_fast(
      instrument::generate_spatiotemporal(cfg).stack);
  compress::Bytes input(frames.data().begin(), frames.data().end());
  const auto* codec = compress::CodecRegistry::standard().find(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->compress(input));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK_CAPTURE(BM_Codec, rle, "rle");
BENCHMARK_CAPTURE(BM_Codec, delta, "delta");
BENCHMARK_CAPTURE(BM_Codec, lz, "lz");

void BM_Crc64(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  util::Rng rng(7);
  for (auto& b : data) b = static_cast<uint8_t>(rng.uniform_int(0, 255));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc64(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc64)->Arg(64 * 1024)->Arg(4 * 1024 * 1024);

void BM_EmdRoundTrip(benchmark::State& state) {
  instrument::HyperspectralConfig cfg;
  cfg.height = 32;
  cfg.width = 32;
  cfg.channels = static_cast<size_t>(state.range(0));
  cfg.background = {{"C", 1.0}};
  auto sample = instrument::generate_hyperspectral(cfg);
  emd::MicroscopeSettings scope;
  auto file = instrument::to_emd(sample, cfg, scope, "2023-04-07T10:00:00Z",
                                 "s", "o");
  for (auto _ : state) {
    auto bytes = file.to_bytes();
    auto parsed = emd::File::from_bytes(bytes);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_EmdRoundTrip)->Arg(128)->Arg(512);

void BM_EmdHeaderOnlyParse(benchmark::State& state) {
  instrument::HyperspectralConfig cfg;
  cfg.height = 32;
  cfg.width = 32;
  cfg.channels = 512;
  cfg.background = {{"C", 1.0}};
  auto sample = instrument::generate_hyperspectral(cfg);
  emd::MicroscopeSettings scope;
  auto bytes = instrument::to_emd(sample, cfg, scope, "2023-04-07T10:00:00Z",
                                  "s", "o")
                   .to_bytes();
  for (auto _ : state) {
    auto parsed = emd::File::from_bytes(bytes, /*with_payload=*/false);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_EmdHeaderOnlyParse);

void BM_JsonParse(benchmark::State& state) {
  util::Json doc = util::Json::object();
  for (int i = 0; i < 50; ++i) {
    doc["key" + std::to_string(i)] = util::Json::object({
        {"value", i},
        {"name", "entry-" + std::to_string(i)},
        {"tags", util::Json::array({"a", "b", "c"})},
    });
  }
  std::string text = doc.dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Json::parse(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_JsonParse);

void BM_SearchIngestAndQuery(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    search::Index index("bench");
    state.ResumeTiming();
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      search::Document d;
      d.id = "doc" + std::to_string(i);
      d.content = util::Json::object({
          {"title", "hyperspectral acquisition number " + std::to_string(i)},
          {"subjects", util::Json::array({"Au", "Pb", "carbon"})},
      });
      index.ingest(std::move(d));
    }
    search::Query q;
    q.text = "hyperspectral acquisition";
    benchmark::DoNotOptimize(index.search(q));
  }
}
BENCHMARK(BM_SearchIngestAndQuery)->Arg(100)->Arg(1000);

void BM_BlobDetect(benchmark::State& state) {
  instrument::SpatiotemporalConfig cfg;
  cfg.frames = 1;
  cfg.height = static_cast<size_t>(state.range(0));
  cfg.width = static_cast<size_t>(state.range(0));
  auto sample = instrument::generate_spatiotemporal(cfg);
  auto frame = sample.stack.slice0(0);
  vision::BlobDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_BlobDetect)->Arg(128)->Arg(256);

void BM_PeakFind(benchmark::State& state) {
  instrument::HyperspectralConfig cfg;
  cfg.height = 48;
  cfg.width = 48;
  cfg.channels = 1024;
  cfg.background = {{"C", 0.6}, {"Fe", 0.4}};
  auto sample = instrument::generate_hyperspectral(cfg);
  auto spectrum = analysis::sum_spectrum(sample.cube);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::find_peaks(spectrum, sample.energy_axis));
  }
}
BENCHMARK(BM_PeakFind);

}  // namespace

BENCHMARK_MAIN();

// A1 ablation: the paper attributes its 49.2% / 21.1% orchestration overhead
// to the exponential polling backoff and says "we are working to improve"
// it. This bench sweeps polling policies over the same hyperspectral
// campaign and reports overhead medians — quantifying how much of the
// headline overhead the policy alone explains.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"

using namespace pico;

namespace {

core::CampaignResult run_policy(const flow::BackoffPolicy& policy) {
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/backoff";
  fc.seed = 20230407;
  fc.flow.backoff = policy;
  core::Facility facility(fc);
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Hyperspectral;
  cfg.start_period_s = 30;
  cfg.duration_s = 1800;  // half-hour campaign is enough for stable medians
  cfg.file_bytes = 91 * 1000 * 1000;
  cfg.label_prefix = "bk";
  return core::run_campaign(facility, cfg);
}

}  // namespace

int main() {
  struct Entry {
    const char* label;
    flow::BackoffPolicy policy;
  };
  std::vector<Entry> entries = {
      {"paper: exp 1s x2 cap 600s", flow::BackoffPolicy::paper_default()},
      {"fixed 1s", flow::BackoffPolicy::fixed(1.0)},
      {"fixed 5s", flow::BackoffPolicy::fixed(5.0)},
      {"fixed 15s", flow::BackoffPolicy::fixed(15.0)},
      {"linear 1s +2s cap 30s", flow::BackoffPolicy::linear(1.0, 2.0, 30.0)},
      {"exp 1s x2 cap 16s", [] {
         auto p = flow::BackoffPolicy::paper_default();
         p.cap_s = 16.0;
         return p;
       }()},
      {"jittered exp 1s x1.5 cap 60s",
       flow::BackoffPolicy::jittered(1.0, 1.5, 60.0, 0.25)},
  };

  std::printf("A1 ablation: polling policy vs flow overhead "
              "(hyperspectral campaign, 91 MB / 30 s)\n\n");
  std::printf("%-30s | %6s | %9s | %9s | %8s | %7s\n", "policy", "flows",
              "median ovh", "ovh %", "mean tot", "polls");
  std::printf("%s\n", std::string(86, '-').c_str());

  double paper_overhead = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    core::CampaignResult result = run_policy(entries[i].policy);
    double median_ovh = result.overhead_stats().median();
    if (i == 0) paper_overhead = median_ovh;
    double ovh_pct = result.overhead_pct_stats().median();
    // Total polls across all steps of all flows (service load proxy).
    long polls = 0;
    for (const auto& f : result.in_window) {
      for (const auto& s : f.timing.steps) polls += s.polls;
    }
    std::printf("%-30s | %6zu | %8.1fs | %8.1f%% | %7.1fs | %7ld\n",
                entries[i].label, result.in_window.size(), median_ovh, ovh_pct,
                result.runtime_stats().mean(), polls);
  }
  std::printf("\nreading: fixed 1 s polling minimizes overhead at the highest "
              "poll traffic; the paper's exponential policy trades ~50%% more "
              "overhead for roughly half the service load, and a moderate "
              "fixed/jittered policy sits between.\n");
  std::printf("paper context: exponential policy median overhead here %.1fs "
              "vs the paper's 19.5s.\n", paper_overhead);
  return 0;
}

// A3 ablation: the paper's future-work item "data compression algorithms".
// Measures real codec ratio/throughput on real EMD payloads (hyperspectral
// counts and spatiotemporal frames), then replays the spatiotemporal campaign
// with each codec's measured ratio applied to the wire to quantify the
// end-to-end effect on the transfer bottleneck.
#include <chrono>
#include <cstdio>

#include "compress/codec.hpp"
#include "core/campaign.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "video/convert.hpp"

using namespace pico;

namespace {

struct Measured {
  std::string codec;
  double ratio;
  double compress_MBps;
  double decompress_MBps;
};

Measured measure(const compress::Codec& codec, const compress::Bytes& input) {
  auto t0 = std::chrono::steady_clock::now();
  compress::Bytes packed = codec.compress(input);
  double c_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  t0 = std::chrono::steady_clock::now();
  auto unpacked = codec.decompress(packed);
  double d_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  double mb = static_cast<double>(input.size()) / 1e6;
  Measured m;
  m.codec = codec.name();
  m.ratio = packed.empty() ? 1.0
                           : static_cast<double>(input.size()) /
                                 static_cast<double>(packed.size());
  m.compress_MBps = c_s > 0 ? mb / c_s : 0;
  m.decompress_MBps = d_s > 0 && unpacked ? mb / d_s : 0;
  return m;
}

core::CampaignResult run_with_ratio(const std::string& codec, double ratio) {
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/compression";
  fc.seed = 20230408;
  fc.cost.provision_delay_s = 35.0;
  core::Facility facility(fc);
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Spatiotemporal;
  cfg.start_period_s = 120;
  cfg.duration_s = 1800;
  cfg.file_bytes = 1200 * 1000 * 1000;
  cfg.codec = codec;
  cfg.label_prefix = "cz";
  // The campaign uses virtual files; carry the measured ratio into the flow
  // input via the facility-level transfer request default.
  (void)ratio;
  return core::run_campaign(facility, cfg);
}

}  // namespace

int main() {
  // Real payloads: a hyperspectral cube (Poisson counts, f64) and a
  // spatiotemporal stack converted to u8 frames (video-like).
  instrument::HyperspectralConfig hcfg;
  hcfg.height = 64;
  hcfg.width = 64;
  hcfg.channels = 512;
  hcfg.background = {{"C", 0.7}, {"N", 0.15}, {"O", 0.15}};
  hcfg.particles = {{32, 32, 8, {{"Au", 0.8}, {"C", 0.2}}}};
  auto hyper = instrument::generate_hyperspectral(hcfg);
  emd::MicroscopeSettings scope;
  auto hyper_bytes = instrument::to_emd(hyper, hcfg, scope,
                                        "2023-04-07T10:00:00Z", "s", "o")
                         .to_bytes();

  instrument::SpatiotemporalConfig scfg;
  scfg.frames = 60;
  scfg.height = 128;
  scfg.width = 128;
  auto spatio = instrument::generate_spatiotemporal(scfg);
  auto frames_u8 = video::convert_fast(spatio.stack);
  compress::Bytes spatio_bytes(frames_u8.data().begin(), frames_u8.data().end());

  const auto& registry = compress::CodecRegistry::standard();
  std::printf("A3 ablation: codecs on real EMD payloads\n\n");
  std::printf("payload: hyperspectral EMD, %.1f MB (f64 Poisson counts)\n",
              static_cast<double>(hyper_bytes.size()) / 1e6);
  std::printf("%-8s | %7s | %12s | %12s\n", "codec", "ratio", "comp MB/s",
              "decomp MB/s");
  double best_hyper_ratio = 1.0;
  std::string best_hyper_codec = "null";
  for (const auto& name : registry.names()) {
    Measured m = measure(*registry.find(name), hyper_bytes);
    std::printf("%-8s | %6.2fx | %12.0f | %12.0f\n", m.codec.c_str(), m.ratio,
                m.compress_MBps, m.decompress_MBps);
    if (m.ratio > best_hyper_ratio && name != "null") {
      best_hyper_ratio = m.ratio;
      best_hyper_codec = name;
    }
  }

  std::printf("\npayload: spatiotemporal frames (u8 video), %.1f MB\n",
              static_cast<double>(spatio_bytes.size()) / 1e6);
  std::printf("%-8s | %7s | %12s | %12s\n", "codec", "ratio", "comp MB/s",
              "decomp MB/s");
  double best_spatio_ratio = 1.0;
  for (const auto& name : registry.names()) {
    Measured m = measure(*registry.find(name), spatio_bytes);
    std::printf("%-8s | %6.2fx | %12.0f | %12.0f\n", m.codec.c_str(), m.ratio,
                m.compress_MBps, m.decompress_MBps);
    if (m.ratio > best_spatio_ratio && name != "null") {
      best_spatio_ratio = m.ratio;
    }
  }

  // Detector noise makes raw frames incompressible; real video pipelines
  // quantize first (lossy, like MP4 encoding). 4-bit quantization keeps the
  // particles (SNR >> 16 levels) and exposes the redundancy.
  compress::Bytes quantized = spatio_bytes;
  for (auto& v : quantized) v &= 0xF0;
  std::printf("\npayload: same frames, 4-bit quantized (lossy preprocessing "
              "as in video encoding)\n");
  std::printf("%-8s | %7s | %12s | %12s\n", "codec", "ratio", "comp MB/s",
              "decomp MB/s");
  double best_quant_ratio = 1.0;
  for (const auto& name : registry.names()) {
    Measured m = measure(*registry.find(name), quantized);
    std::printf("%-8s | %6.2fx | %12.0f | %12.0f\n", m.codec.c_str(), m.ratio,
                m.compress_MBps, m.decompress_MBps);
    if (m.ratio > best_quant_ratio && name != "null") {
      best_quant_ratio = m.ratio;
    }
  }
  best_spatio_ratio = std::max(best_spatio_ratio, best_quant_ratio);

  // End-to-end: the campaign with a codec on the wire. Virtual files use the
  // flow's assumed ratio = 1 (conservative), so compare against the measured
  // ratio analytically.
  core::CampaignResult baseline = run_with_ratio("", 1.0);
  double xfer = baseline.step_active_stats("Transfer").median();
  std::printf("\nend-to-end (spatiotemporal campaign, 1200 MB files):\n");
  std::printf("  baseline transfer median: %.1f s\n", xfer);
  for (double ratio : {1.5, 2.0, 4.0, best_spatio_ratio}) {
    // Wire time scales inversely with ratio; setup/settle are fixed (~6 s +
    // settle). Model: xfer' = fixed + (xfer - fixed)/ratio with fixed ~= 6 s.
    double fixed = 6.0;
    double projected = fixed + (xfer - fixed) / ratio;
    std::printf("  at %4.2fx compression: transfer ~%.1f s (saves %.0f%%)\n",
                ratio, projected, 100.0 * (xfer - projected) / xfer);
  }
  std::printf("\nfuture detector: 65 GB/s raw needs %.0fx compression to fit "
              "the 200 Gbps backbone (measured best here: %.2fx on quantized "
              "video frames, %.2fx [%s] on hyperspectral counts).\n",
              65.0 * 8 / 200.0, best_spatio_ratio, best_hyper_ratio,
              best_hyper_codec.c_str());
  return 0;
}

// End-to-end integrity shootout (A9): what verified resumable transfers buy
// under mid-transfer faults, and proof that silent corruption cannot reach
// the published search index.
//
// Part 1 — resume acceptance. One 200 MB streaming transfer is cut by a link
// partition at exactly 50% progress and retried mid-outage:
//
//   verified resume   - the retry attaches the chunk manifest and moves only
//                       the unverified suffix (< 60% of file bytes)
//   whole-file restart- the pre-PR baseline; the abandoned attempt and its
//                       replacement each move the full file (>= 150% total)
//
// Part 2 — the Table-1 spatiotemporal campaign (1200 MB / 120 s) three ways:
// fault-free baseline, then an integrity-chaos schedule (link partitions at
// 30%/60% of the window, wire bit-flips, truncated landings, at-rest bit rot
// with a periodic scrubber, and a Publish timeout that forces duplicate
// publish attempts) with resume on, and the same chaos with resume off. The
// chaos runs must end with zero lost flows, a search index byte-identical to
// the baseline's, and zero duplicate publications; the gap between the two
// chaos runs' wire totals is the retry bytes saved.
//
// Emits BENCH_integrity.json (checked in; CI regenerates and schema-checks
// it via tools/check_telemetry.py --integrity).
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "auth/auth.hpp"
#include "core/campaign.hpp"
#include "net/network.hpp"
#include "storage/store.hpp"
#include "transfer/service.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"

using namespace pico;

namespace {

bool g_ok = true;

void check(bool condition, const char* what) {
  if (!condition) {
    std::printf("FAIL: %s\n", what);
    g_ok = false;
  }
}

std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double counter_value(core::Facility& facility, const std::string& name,
                     const std::string& help,
                     const telemetry::Labels& labels = {}) {
  return facility.telemetry().metrics.counter(name, help, labels).value();
}

constexpr const char* kWireBytesHelp =
    "Bytes that crossed the network (after compression)";
constexpr const char* kResumeHelp =
    "Chunks skipped on retry because the manifest already verified them";
constexpr const char* kCorruptionHelp =
    "Integrity violations detected, by location";
constexpr const char* kSuppressedHelp =
    "Search publishes suppressed by idempotency keys";
constexpr const char* kRepairsHelp =
    "Re-transfers submitted to repair quarantined objects";
constexpr const char* kRetriesHelp =
    "File re-transfers after a mid-flight fault or integrity failure";

// ------------------------------------------------ part 1: resume acceptance

constexpr int64_t kResumeFileBytes = 200'000'000;
constexpr int64_t kResumeChunkBytes = 10'000'000;  // 20 chunks, 1 s of wire each

struct ResumeOutcome {
  int64_t retry_wire_bytes = 0;   ///< bytes moved by the retried task alone
  int64_t total_wire_bytes = 0;   ///< both attempts together
  int64_t chunks_resumed = 0;
};

// One streaming transfer over a dedicated 10 MB/s link, partitioned after the
// tenth chunk lands (50% verified, chunk 11 stalled in flight). The
// orchestrator-equivalent retry is submitted mid-outage; its sends fail fast
// (no route) and back off until the heal.
ResumeOutcome run_resume_scenario(bool verified_resume) {
  sim::Engine engine;
  net::Topology topo;
  net::NodeId a = topo.add_node("src");
  net::NodeId b = topo.add_node("dst");
  net::LinkId link = topo.add_link(a, b, 80e6);  // 10 MB/s
  net::Network network(&engine, &topo);

  auth::AuthService auth;
  storage::Store src_store("src", static_cast<int64_t>(1e12));
  storage::Store dst_store("dst", static_cast<int64_t>(1e12));

  transfer::TransferConfig cfg;
  cfg.setup_mean_s = 1.0;
  cfg.setup_jitter_s = 0.0;
  cfg.per_file_overhead_s = 0.1;
  cfg.settle_base_s = 0.2;
  cfg.settle_per_gb_s = 0.0;
  cfg.cap_jitter_frac = 0.0;
  cfg.max_retries = 10;
  cfg.retry_backoff_s = 0.5;
  cfg.verified_resume = verified_resume;
  transfer::TransferService service(&engine, &network, &auth, cfg, 42);
  service.register_endpoint("ep-src", a, &src_store);
  service.register_endpoint("ep-dst", b, &dst_store);
  auth::Token token = auth.issue("user@anl.gov", {"transfer"});

  if (!src_store.put_virtual("raw/acq.emd", kResumeFileBytes, 7, engine.now())) {
    check(false, "resume scenario: staging the source file");
    return {};
  }
  transfer::TransferRequest req;
  req.src_endpoint = "ep-src";
  req.dst_endpoint = "ep-dst";
  req.files = {{"raw/acq.emd", "exp/acq.emd"}};
  req.streaming_chunk_bytes = kResumeChunkBytes;

  auto first = service.submit(req, token);
  check(static_cast<bool>(first), "resume scenario: first submit accepted");
  // Chunk landings: 2.1, 3.1, ..., 11.1 (setup 1.0 + per-file 0.1 + 1 s of
  // wire per 10 MB chunk). Partition right after the tenth landing.
  engine.schedule_at(sim::SimTime::from_seconds(11.55), [&] {
    topo.set_link_up(link, false);
    network.rates_changed();
  });
  util::Result<transfer::TaskId> second =
      util::Result<transfer::TaskId>::err("not submitted");
  engine.schedule_at(sim::SimTime::from_seconds(15.0),
                     [&] { second = service.submit(req, token); });
  engine.schedule_at(sim::SimTime::from_seconds(40.0), [&] {
    topo.set_link_up(link, true);
    network.rates_changed();
  });
  engine.run();

  check(static_cast<bool>(second), "resume scenario: retry submit accepted");
  if (!first || !second) return {};
  transfer::TaskInfo one = service.status(first.value());
  transfer::TaskInfo two = service.status(second.value());
  check(one.state == transfer::TaskState::Succeeded,
        "resume scenario: stalled attempt eventually settles");
  check(two.state == transfer::TaskState::Succeeded,
        "resume scenario: retried attempt succeeds");
  check(dst_store.exists("exp/acq.emd") &&
            dst_store.verify("exp/acq.emd").value_or(false),
        "resume scenario: delivered object verifies");

  ResumeOutcome out;
  out.retry_wire_bytes = two.wire_bytes;
  out.total_wire_bytes = one.wire_bytes + two.wire_bytes;
  out.chunks_resumed = two.chunks_resumed;
  return out;
}

// -------------------------------------------- part 2: campaign under chaos

struct CampaignRun {
  std::string name;
  size_t settled = 0;
  size_t successes = 0;
  size_t failed = 0;
  size_t lost = 0;
  size_t recovered = 0;
  size_t resubmits = 0;
  uint64_t step_timeouts = 0;
  double wire_bytes = 0;
  double chunks_resumed = 0;
  double file_retries = 0;
  double corruption_wire = 0;
  double corruption_landing = 0;
  double corruption_at_rest = 0;
  double repairs = 0;
  double duplicates_suppressed = 0;
  uint64_t scrub_scans = 0;
  uint64_t scrub_corrupt_found = 0;
  size_t quarantined = 0;
  size_t index_size = 0;
  int64_t duplicate_publishes = 0;  ///< records beyond one per successful flow
  uint64_t index_fingerprint = 0;
  bool eagle_clean = true;  ///< every surviving Eagle object verifies
};

core::FacilityConfig campaign_facility_config() {
  // bench_table1's spatiotemporal calibration (Sec. 3.3 queue conditions).
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/integrity";
  fc.seed = 20230408;
  fc.cost.provision_delay_s = 35.0;
  fc.cost.provision_jitter_s = 10.0;
  fc.transfer_max_retries = 8;
  // Events mode so Transfer steps stream chunked (the resumable wire format).
  fc.flow.completion_mode = flow::CompletionMode::Events;
  return fc;
}

core::CampaignConfig campaign_config(double duration_s) {
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Spatiotemporal;
  cfg.start_period_s = 120;
  cfg.duration_s = duration_s;
  cfg.file_bytes = 1200 * 1000 * 1000;
  cfg.label_prefix = "integ";
  cfg.streaming_steps = {"Analyze"};  // chunked transfers + cut-through
  return cfg;
}

// The integrity-chaos schedule, scaled to the campaign window: two 90 s link
// partitions that each catch a 1200 MB transfer mid-flight, a standing wire
// bit-flip probability, occasional truncated landings, and two at-rest bit-rot
// strikes for the scrubber to find.
void add_chaos(core::CampaignConfig& cfg, double duration_s) {
  using fault::FaultEvent;
  using fault::FaultKind;
  cfg.chaos.name = "integrity-chaos";
  cfg.chaos.add(FaultEvent{FaultKind::LinkPartition, 0.30 * duration_s, 90,
                           "user-switch", 0});
  cfg.chaos.add(FaultEvent{FaultKind::LinkPartition, 0.60 * duration_s, 90,
                           "user-switch", 0});
  cfg.chaos.add(FaultEvent{FaultKind::WireBitFlip, 0, 2 * duration_s, "", 0.02});
  cfg.chaos.add(
      FaultEvent{FaultKind::TruncatedLanding, 0, 2 * duration_s, "", 0.05});
  cfg.chaos.add(
      FaultEvent{FaultKind::StorageCorrupt, 0.45 * duration_s, 0, "", 0.3});
  cfg.chaos.add(
      FaultEvent{FaultKind::StorageCorrupt, 0.80 * duration_s, 0, "", 0.3});
  cfg.scrub_interval_s = 300;
  cfg.recovery.enabled = true;
  cfg.recovery.resubmit_budget = 3;
  // A 1200 MB transfer needs ~118 s clean; one straddling a 90 s partition
  // blows through 180 s, gets abandoned, and must resume from the manifest.
  cfg.step_timeouts["Transfer"] = 180;
  // Publish takes 1.2 +/- 0.3 s; a 1.0 s timeout abandons most first attempts
  // after their ingest has irrevocably started, forcing the re-dispatched
  // Publish through the idempotency key.
  cfg.step_timeouts["Publish"] = 1.0;
}

CampaignRun run_campaign_mode(const std::string& name, double duration_s,
                              bool chaos, bool verified_resume) {
  core::Facility facility(campaign_facility_config());
  if (!verified_resume) facility.transfer().set_verified_resume(false);
  core::CampaignConfig cfg = campaign_config(duration_s);
  if (chaos) add_chaos(cfg, duration_s);
  core::CampaignResult result = core::run_campaign(facility, cfg);

  CampaignRun run;
  run.name = name;
  run.failed = result.failed;
  run.lost = result.robustness.lost;
  run.recovered = result.robustness.recovered;
  run.resubmits = result.robustness.resubmits;
  run.step_timeouts = result.robustness.step_timeouts;
  std::set<std::string> labels;
  for (const auto* bucket : {&result.in_window, &result.late}) {
    for (const core::CompletedFlow& f : *bucket) {
      ++run.settled;
      if (f.success) ++run.successes;
      check(labels.insert(f.label).second,
            "campaign: each logical flow settles exactly once");
    }
  }

  run.wire_bytes =
      counter_value(facility, "transfer_wire_bytes_total", kWireBytesHelp);
  run.chunks_resumed =
      counter_value(facility, "transfer_chunks_resumed_total", kResumeHelp);
  run.file_retries =
      counter_value(facility, "transfer_retries_total", kRetriesHelp);
  run.corruption_wire = counter_value(facility, "corruption_detected_total",
                                      kCorruptionHelp, {{"where", "wire"}});
  run.corruption_landing =
      counter_value(facility, "corruption_detected_total", kCorruptionHelp,
                    {{"where", "landing"}});
  run.corruption_at_rest =
      counter_value(facility, "corruption_detected_total", kCorruptionHelp,
                    {{"where", "at_rest"}});
  run.repairs = counter_value(facility, "transfer_repairs_total", kRepairsHelp);
  run.duplicates_suppressed = counter_value(
      facility, "publish_duplicates_suppressed_total", kSuppressedHelp);
  if (facility.scrubber() != nullptr) {
    run.scrub_scans = facility.scrubber()->stats().scans;
    run.scrub_corrupt_found = facility.scrubber()->stats().corrupt_found;
  }
  run.quarantined = facility.eagle().quarantine_count();
  run.index_size = facility.index().size();
  run.duplicate_publishes = static_cast<int64_t>(run.index_size) -
                            static_cast<int64_t>(run.successes);
  run.index_fingerprint = facility.index().fingerprint();
  for (const std::string& path : facility.eagle().list()) {
    if (!facility.eagle().verify(path).value_or(false)) run.eagle_clean = false;
  }
  return run;
}

util::Json run_json(const CampaignRun& r) {
  return util::Json::object({
      {"run", r.name},
      {"settled", static_cast<int64_t>(r.settled)},
      {"successes", static_cast<int64_t>(r.successes)},
      {"failed", static_cast<int64_t>(r.failed)},
      {"lost", static_cast<int64_t>(r.lost)},
      {"recovered", static_cast<int64_t>(r.recovered)},
      {"resubmits", static_cast<int64_t>(r.resubmits)},
      {"step_timeouts", static_cast<int64_t>(r.step_timeouts)},
      {"wire_bytes", r.wire_bytes},
      {"chunks_resumed", r.chunks_resumed},
      {"file_retries", r.file_retries},
      {"corruption_detected_wire", r.corruption_wire},
      {"corruption_detected_landing", r.corruption_landing},
      {"corruption_detected_at_rest", r.corruption_at_rest},
      {"repairs", r.repairs},
      {"publish_duplicates_suppressed", r.duplicates_suppressed},
      {"scrub_scans", static_cast<int64_t>(r.scrub_scans)},
      {"scrub_corrupt_found", static_cast<int64_t>(r.scrub_corrupt_found)},
      {"quarantined", static_cast<int64_t>(r.quarantined)},
      {"index_size", static_cast<int64_t>(r.index_size)},
      {"duplicate_publishes", r.duplicate_publishes},
      {"index_fingerprint", hex64(r.index_fingerprint)},
      {"eagle_clean", r.eagle_clean},
  });
}

void print_run(const CampaignRun& r) {
  std::printf(
      "%-14s settled %3zu ok %3zu lost %zu | wire %8.1f MB resumed %5.0f | "
      "corrupt w/l/r %.0f/%.0f/%.0f repairs %.0f | dup supp %.0f extra %lld | "
      "index %zu %s\n",
      r.name.c_str(), r.settled, r.successes, r.lost, r.wire_bytes / 1e6,
      r.chunks_resumed, r.corruption_wire, r.corruption_landing,
      r.corruption_at_rest, r.repairs, r.duplicates_suppressed,
      static_cast<long long>(r.duplicate_publishes), r.index_size,
      r.eagle_clean ? "clean" : "CORRUPT");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_integrity.json";
  double duration_s = 3600;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      duration_s = 900;  // quarter-hour campaign for CI smoke
    } else {
      out_path = argv[i];
    }
  }

  // ---- part 1: the 50%-progress resume acceptance pair ----
  ResumeOutcome resume = run_resume_scenario(/*verified_resume=*/true);
  ResumeOutcome restart = run_resume_scenario(/*verified_resume=*/false);
  double resume_retry_frac = static_cast<double>(resume.retry_wire_bytes) /
                             static_cast<double>(kResumeFileBytes);
  double resume_total_frac = static_cast<double>(resume.total_wire_bytes) /
                             static_cast<double>(kResumeFileBytes);
  double restart_total_frac = static_cast<double>(restart.total_wire_bytes) /
                              static_cast<double>(kResumeFileBytes);
  std::printf(
      "resume acceptance (%d MB cut at 50%%): retry moved %.1f%% of the file "
      "(%lld chunks resumed; both attempts together %.1f%%); restart mode "
      "moved %.1f%% in total\n",
      static_cast<int>(kResumeFileBytes / 1'000'000), 100 * resume_retry_frac,
      static_cast<long long>(resume.chunks_resumed), 100 * resume_total_frac,
      100 * restart_total_frac);
  check(resume.chunks_resumed >= 5,
        "acceptance: retry resumed the verified prefix from the manifest");
  check(resume_retry_frac < 0.6,
        "acceptance: resumed retry moves < 60% of file bytes");
  check(restart_total_frac >= 1.5,
        "acceptance: whole-file restart moves >= 150% of file bytes");

  // ---- part 2: the spatiotemporal campaign, three ways ----
  CampaignRun baseline =
      run_campaign_mode("baseline", duration_s, /*chaos=*/false,
                        /*verified_resume=*/true);
  CampaignRun chaos_resume =
      run_campaign_mode("chaos_resume", duration_s, /*chaos=*/true,
                        /*verified_resume=*/true);
  CampaignRun chaos_restart =
      run_campaign_mode("chaos_restart", duration_s, /*chaos=*/true,
                        /*verified_resume=*/false);
  std::printf("\nspatiotemporal campaign (1200 MB / 120 s, %.0f s window):\n",
              duration_s);
  print_run(baseline);
  print_run(chaos_resume);
  print_run(chaos_restart);

  double retry_bytes_saved = chaos_restart.wire_bytes - chaos_resume.wire_bytes;
  bool index_match =
      chaos_resume.index_size == baseline.index_size &&
      chaos_resume.index_fingerprint == baseline.index_fingerprint;
  std::printf(
      "\nretry bytes saved by verified resume: %.1f MB (%.1fx the baseline "
      "wire)\nindex vs fault-free baseline: %s\n",
      retry_bytes_saved / 1e6,
      baseline.wire_bytes > 0 ? retry_bytes_saved / baseline.wire_bytes : 0.0,
      index_match ? "byte-identical" : "DIVERGED");

  check(baseline.failed == 0, "baseline campaign: no failures");
  check(chaos_resume.failed == 0 && chaos_resume.lost == 0,
        "chaos campaign (resume): every flow eventually succeeds");
  check(chaos_resume.chunks_resumed > 0,
        "chaos campaign (resume): manifest resume actually engaged");
  check(chaos_resume.corruption_wire > 0,
        "chaos campaign: wire bit-flips detected");
  check(chaos_resume.corruption_at_rest > 0 && chaos_resume.repairs > 0,
        "chaos campaign: scrubber found and repaired at-rest rot");
  check(chaos_resume.duplicates_suppressed > 0,
        "chaos campaign: idempotency keys suppressed duplicate publishes");
  check(chaos_resume.duplicate_publishes == 0,
        "chaos campaign: exactly one record per successful flow");
  check(chaos_resume.eagle_clean && baseline.eagle_clean,
        "campaigns end with every delivered object intact");
  check(index_match,
        "chaos campaign index is byte-identical to the fault-free run");
  check(retry_bytes_saved > 0,
        "verified resume saves retry bytes vs whole-file restart");

  util::Json doc = util::Json::object({
      {"schema", "pico.bench.integrity.v1"},
      {"duration_s", duration_s},
      {"resume_acceptance",
       util::Json::object({
           {"file_bytes", kResumeFileBytes},
           {"chunk_bytes", kResumeChunkBytes},
           {"resume_retry_wire_bytes", resume.retry_wire_bytes},
           {"resume_retry_wire_frac", resume_retry_frac},
           {"resume_total_wire_frac", resume_total_frac},
           {"resume_chunks_resumed", resume.chunks_resumed},
           {"restart_total_wire_bytes", restart.total_wire_bytes},
           {"restart_total_wire_frac", restart_total_frac},
       })},
      {"campaign",
       util::Json::object({
           {"use_case", "spatiotemporal"},
           {"file_bytes", static_cast<int64_t>(1200) * 1000 * 1000},
           {"start_period_s", 120.0},
           {"runs", util::Json::array({run_json(baseline),
                                       run_json(chaos_resume),
                                       run_json(chaos_restart)})},
           {"retry_bytes_saved", retry_bytes_saved},
           {"index_match_resume_vs_baseline", index_match},
       })},
      {"pass", g_ok},
  });
  util::write_file(out_path, doc.dump(2) + "\n");
  std::printf("\nwrote %s (%s)\n", out_path.c_str(), g_ok ? "pass" : "FAIL");
  return g_ok ? 0 : 1;
}

// Reproduces Fig. 2: the hyperspectral portal artifacts. Generates the
// polyamide-film-with-heavy-metals sample, runs the real analysis (intensity
// map = sum over the spectral axis; aggregate spectrum = sum over both pixel
// axes; peak finding -> element identification), writes the Fig. 2A/2B
// artifacts and the Fig. 2C metadata record, and reports analysis timings.
#include <chrono>
#include <cstdio>

#include "analysis/hyperspectral.hpp"
#include "analysis/metadata.hpp"
#include "analysis/plot.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "search/schema.hpp"
#include "util/bytes.hpp"

using namespace pico;

namespace {
double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main() {
  auto cfg = instrument::HyperspectralConfig::fig2_sample();
  std::printf("Fig. 2 sample: %zux%zu pixels x %zu channels "
              "(polyamide film + Au/Pb particles)\n",
              cfg.height, cfg.width, cfg.channels);

  auto t0 = std::chrono::steady_clock::now();
  auto sample = instrument::generate_hyperspectral(cfg);
  std::printf("  acquisition (synthetic):     %8.1f ms\n", ms_since(t0));

  emd::MicroscopeSettings scope;
  t0 = std::chrono::steady_clock::now();
  emd::File file = instrument::to_emd(sample, cfg, scope,
                                      "2023-04-07T10:00:00Z",
                                      "polyamide organic film treated to "
                                      "capture heavy metals from water",
                                      "operator@anl.gov");
  auto bytes = file.to_bytes();
  std::printf("  EMD encode (%6.1f MB):      %8.1f ms\n",
              static_cast<double>(bytes.size()) / 1e6, ms_since(t0));

  t0 = std::chrono::steady_clock::now();
  auto reread = emd::File::from_bytes(bytes);
  if (!reread) {
    std::fprintf(stderr, "EMD parse failed: %s\n",
                 reread.error().message.c_str());
    return 1;
  }
  std::printf("  EMD parse + verify:          %8.1f ms\n", ms_since(t0));

  t0 = std::chrono::steady_clock::now();
  auto metadata = analysis::extract_metadata(reread.value());
  std::printf("  metadata extraction:         %8.1f ms\n", ms_since(t0));

  t0 = std::chrono::steady_clock::now();
  auto result = analysis::analyze_hyperspectral(sample.cube, sample.energy_axis);
  std::printf("  reduction + peaks + ID:      %8.1f ms\n", ms_since(t0));

  // Fig. 2A: intensity map.
  t0 = std::chrono::steady_clock::now();
  analysis::write_pgm("bench-artifacts/fig2/intensity.pgm", result.intensity);
  // Fig. 2B: spectrum with element line markers.
  analysis::LinePlotConfig plot;
  plot.title = "Aggregate spectrum (Fig. 2B)";
  plot.x_label = "Energy (keV)";
  plot.y_label = "Counts";
  for (const auto& el : result.elements) {
    for (double kev : el.matched_kev) plot.annotations.emplace_back(kev, el.symbol);
  }
  std::vector<double> counts(result.spectrum.data().begin(),
                             result.spectrum.data().end());
  util::write_file("bench-artifacts/fig2/spectrum.svg",
                   analysis::render_line_svg(sample.energy_axis, counts, plot));
  std::printf("  artifact rendering:          %8.1f ms\n", ms_since(t0));

  // Fig. 2C: the metadata record.
  std::vector<std::string> subjects;
  for (const auto& el : result.elements) subjects.push_back(el.symbol);
  search::RecordInputs in;
  in.title = "Fig. 2 reproduction";
  in.creators = {"Dynamic PicoProbe"};
  in.created_iso8601 = "2023-04-07T10:00:00Z";
  in.resource_type = "hyperspectral";
  in.subjects = subjects;
  in.instrument_metadata = metadata ? metadata.value() : util::Json();
  in.analysis = result.to_json();
  util::write_file("bench-artifacts/fig2/record.json",
                   search::build_record(in).dump(2));

  std::printf("\nidentified composition (Fig. 2C):   truth: ");
  for (const auto& e : sample.true_elements) std::printf("%s ", e.c_str());
  std::printf("\n");
  for (const auto& el : result.elements) {
    std::printf("  %-3s score %8.1f, lines at ", el.symbol.c_str(), el.score);
    for (double kev : el.matched_kev) std::printf("%.2f ", kev);
    std::printf("keV\n");
  }
  bool found_au = false, found_pb = false;
  for (const auto& el : result.elements) {
    if (el.symbol == "Au") found_au = true;
    if (el.symbol == "Pb") found_pb = true;
  }
  std::printf("\nshape check: heavy metals recovered from the film: Au %s, "
              "Pb %s\n",
              found_au ? "yes" : "NO", found_pb ? "yes" : "NO");
  std::printf("artifacts: bench-artifacts/fig2/{intensity.pgm, spectrum.svg, "
              "record.json}\n");
  return (found_au && found_pb) ? 0 : 1;
}

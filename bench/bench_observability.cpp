// Health-plane overhead and efficacy bench (A12).
//
// Two claims, both gated by CI (tools/check_telemetry.py --observability):
//
//  overhead - the always-on flight recorder + periodic health snapshot loop
//             costs < 2% wall clock on both Table-1 campaigns, measured by
//             running each campaign with the health plane on and off in
//             back-to-back pairs and taking the median per-pair delta. The
//             campaigns run with real_payloads so every flow does the real
//             data-plane work (EMD parse, reductions, peak find / tracking,
//             artifact rendering): the ratio is measured against a facility
//             doing science, not against skeleton event shuffling. Payloads
//             are scaled to 8 MB (vs the paper's 91 / 1200 MB) to keep CI
//             runtime bounded; the health plane's absolute cost per simulated
//             hour is what it is regardless of payload, so shrinking the
//             payload only makes the 2% bar harder, never easier
//  efficacy - under the PR6 frame-chaos campaign (standing drop/reorder/
//             duplicate probabilities plus three consumer stalls) the health
//             plane raises >= 1 SLO burn alert, flags >= 1 flow via the
//             watchdogs, and produces a non-empty flight-recorder dump for
//             every degraded (fallen-back) flow -- while the identical
//             fault-free campaign stays completely silent: no alerts, no
//             watchdog flags, no dump-worthy rings
//
// Emits BENCH_observability.json (checked in; CI regenerates with --smoke and
// schema-checks).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "telemetry/health/monitor.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"

using namespace pico;

namespace {

bool g_ok = true;

void check(bool condition, const char* what) {
  if (!condition) {
    std::printf("FAIL: %s\n", what);
    g_ok = false;
  }
}

// ----------------------------------------------------------- overhead ----

core::FacilityConfig table1_config(bool health_on) {
  core::FacilityConfig fc;
  // The overhead arms stage ~1 GB of payload per campaign; keep that on
  // tmpfs so ext4 writeback jitter doesn't drown the sub-1% signal being
  // measured. Falls back to the usual artifact tree where /dev/shm is absent.
  fc.artifact_dir = std::filesystem::is_directory("/dev/shm")
                        ? "/dev/shm/pico-bench-observability"
                        : "bench-artifacts/observability";
  fc.seed = 20230407;
  fc.cost.provision_delay_s = 100.0;
  fc.cost.provision_jitter_s = 10.0;
  fc.health.enabled = health_on;
  fc.health.flight.enabled = health_on;
  return fc;
}

core::CampaignConfig table1_campaign(bool hyper, double duration_s) {
  core::CampaignConfig cfg;
  cfg.duration_s = duration_s;
  cfg.real_payloads = true;
  cfg.file_bytes = 8 * 1000 * 1000;  // scaled-down-but-real acquisitions
  if (hyper) {
    cfg.use_case = core::UseCase::Hyperspectral;
    cfg.start_period_s = 30;
    cfg.label_prefix = "hyper";
  } else {
    cfg.use_case = core::UseCase::Spatiotemporal;
    cfg.start_period_s = 120;
    cfg.label_prefix = "spatio";
  }
  return cfg;
}

/// Wall-clock seconds for one full campaign on a fresh facility.
double time_campaign(bool hyper, bool health_on, double duration_s) {
  core::Facility facility(table1_config(health_on));
  core::CampaignConfig cfg = table1_campaign(hyper, duration_s);
  auto t0 = std::chrono::steady_clock::now();
  core::CampaignResult result = core::run_campaign(facility, cfg);
  auto t1 = std::chrono::steady_clock::now();
  check(result.failed == 0, "table-1 campaign: no failed flows");
  return std::chrono::duration<double>(t1 - t0).count();
}

struct OverheadRun {
  std::string name;
  double off_s = 0;
  double on_s = 0;
  double overhead_pct = 0;
};

OverheadRun measure_overhead(bool hyper, double duration_s, int reps) {
  OverheadRun run;
  run.name = hyper ? "hyperspectral" : "spatiotemporal";
  std::vector<double> off, on, delta;
  // One untimed warmup per arm, then paired reps: each rep runs both arms
  // back to back (alternating which goes first, to cancel any warm-cache
  // bias) and contributes one relative delta. Pairing cancels the slow
  // machine-load drift that dwarfs the true cost when the arms are pooled
  // separately; the median delta shrugs off spike outliers.
  time_campaign(hyper, false, duration_s);
  time_campaign(hyper, true, duration_s);
  for (int i = 0; i < reps; ++i) {
    double off_i, on_i;
    if (i % 2 == 0) {
      off_i = time_campaign(hyper, false, duration_s);
      on_i = time_campaign(hyper, true, duration_s);
    } else {
      on_i = time_campaign(hyper, true, duration_s);
      off_i = time_campaign(hyper, false, duration_s);
    }
    off.push_back(off_i);
    on.push_back(on_i);
    delta.push_back((on_i - off_i) / off_i * 100.0);
    std::printf("    %-7s pair %d (%s first): off %7.1f ms  on %7.1f ms  "
                "delta %+5.2f%%\n",
                run.name.c_str(), i, i % 2 == 0 ? "off" : "on", off_i * 1e3,
                on_i * 1e3, delta.back());
    std::fflush(stdout);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
  };
  run.off_s = median(off);
  run.on_s = median(on);
  run.overhead_pct = median(delta);
  return run;
}

// ------------------------------------------------------------ efficacy ----

/// The PR6 streaming facility with the health plane calibrated for the
/// frame-chaos campaign: fault-free direct flows settle in ~14-32 s, while a
/// stall-caught flow rides the degradation ladder (25 s stall budget, spill,
/// whole-flow fallback through the store) and lands past 50 s — cleanly on
/// the far side of the 40 s latency objective and 45 s deadline.
core::FacilityConfig chaos_facility_config() {
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/observability";
  fc.seed = 20230915;
  // Steady-state streaming: a short queue wait keeps the deadline watchdog
  // calibrated to flow runtime (fault-free < 45 s) rather than the one-off
  // first-allocation wait.
  fc.cost.provision_delay_s = 5.0;
  fc.cost.provision_jitter_s = 0.0;
  fc.flow.completion_mode = flow::CompletionMode::Events;
  fc.stream.detector_rate_bps = 400e6;
  fc.stream.channel.ring_capacity = 4;
  fc.stream.stall_fallback_s = 25.0;

  fc.health.snapshot_interval_s = 15.0;
  fc.health.stall_after_s = 60.0;
  fc.health.flow_deadline_s = 45.0;
  fc.health.slo.spec.completion_latency_s = 40.0;
  fc.health.slo.spec.error_budget = 0.05;
  // A stall window degrades ~1-2 of the ~20 flows completing per slow
  // window; 5% budget puts that episode at slow-burn ~1 and fast-burn ~5.
  fc.health.slo.spec.latency_budget = 0.05;
  fc.health.slo.spec.time_to_first_result_s = 300.0;
  fc.health.slo.fast = {120.0, 2.0};
  fc.health.slo.slow = {600.0, 0.9};
  return fc;
}

core::CampaignConfig chaos_campaign_config(double duration_s, bool chaos) {
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Hyperspectral;
  cfg.duration_s = duration_s;
  cfg.label_prefix = "stream";
  cfg.streaming_direct = true;
  cfg.slow_run_threshold_s = 40.0;  // must match the SLO latency objective
  if (chaos) {
    using fault::FaultEvent;
    using fault::FaultKind;
    cfg.chaos.name = "frame-chaos";
    cfg.chaos.add(
        FaultEvent{FaultKind::FrameDrop, 0, 2 * duration_s, "", 0.05});
    cfg.chaos.add(
        FaultEvent{FaultKind::FrameReorder, 0, 2 * duration_s, "", 0.05});
    cfg.chaos.add(
        FaultEvent{FaultKind::FrameDuplicate, 0, 2 * duration_s, "", 0.05});
    cfg.chaos.add(
        FaultEvent{FaultKind::ConsumerStall, 0.25 * duration_s, 60, "", 0});
    cfg.chaos.add(
        FaultEvent{FaultKind::ConsumerStall, 0.50 * duration_s, 60, "", 0});
    cfg.chaos.add(
        FaultEvent{FaultKind::ConsumerStall, 0.75 * duration_s, 60, "", 0});
    cfg.recovery.enabled = true;
    cfg.recovery.resubmit_budget = 3;
  }
  return cfg;
}

struct HealthRun {
  std::string name;
  size_t settled = 0;
  size_t failed = 0;
  double fallbacks = 0;
  uint64_t slo_alerts = 0;
  uint64_t watchdog_flags = 0;
  uint64_t anomaly_alerts = 0;
  uint64_t health_ticks = 0;
  size_t dumps = 0;
  size_t degraded_dumps = 0;  ///< dumps whose ring saw a stream-fallback
  size_t empty_dumps = 0;
  util::Json alerts = util::Json::array();
};

HealthRun run_health_mode(const std::string& name, double duration_s,
                          bool chaos) {
  core::Facility facility(chaos_facility_config());
  core::CampaignConfig cfg = chaos_campaign_config(duration_s, chaos);
  core::CampaignResult result = core::run_campaign(facility, cfg);

  HealthRun run;
  run.name = name;
  run.settled = result.in_window.size() + result.late.size();
  run.failed = result.failed;
  run.fallbacks = facility.telemetry()
                      .metrics
                      .counter("stream_fallbacks_total",
                               "Sessions re-routed whole-flow to the store "
                               "path")
                      .value();
  auto& health = facility.health();
  run.slo_alerts = health.slo_alerts();
  run.watchdog_flags = health.watchdog_flags();
  run.anomaly_alerts = health.anomaly_alerts();
  run.health_ticks = health.ticks();
  for (const auto& a : health.alerts()) {
    if (run.alerts.as_array().size() >= 24) break;  // keep the JSON readable
    run.alerts.push_back(util::Json::object({
        {"at_s", a.at.seconds()},
        {"kind", a.kind},
        {"severity", a.severity},
        {"subject", a.subject},
    }));
  }
  for (auto& [subject, dump] : facility.telemetry().flight.flush_dumps()) {
    ++run.dumps;
    if (dump.at("events_total").as_int() == 0) ++run.empty_dumps;
    for (const auto& e : dump.at("events").as_array()) {
      if (e.at("name").as_string() == "stream-fallback") {
        ++run.degraded_dumps;
        break;
      }
    }
  }
  return run;
}

util::Json health_json(const HealthRun& r) {
  return util::Json::object({
      {"run", r.name},
      {"settled", static_cast<int64_t>(r.settled)},
      {"failed", static_cast<int64_t>(r.failed)},
      {"fallbacks", r.fallbacks},
      {"slo_alerts", static_cast<int64_t>(r.slo_alerts)},
      {"watchdog_flags", static_cast<int64_t>(r.watchdog_flags)},
      {"anomaly_alerts", static_cast<int64_t>(r.anomaly_alerts)},
      {"health_ticks", static_cast<int64_t>(r.health_ticks)},
      {"flight_dumps", static_cast<int64_t>(r.dumps)},
      {"degraded_flow_dumps", static_cast<int64_t>(r.degraded_dumps)},
      {"empty_dumps", static_cast<int64_t>(r.empty_dumps)},
      {"alerts", r.alerts},
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_observability.json";
  double duration_s = 3600;
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      duration_s = 900;
      reps = 5;
    } else {
      out_path = argv[i];
    }
  }

  // ---- overhead: health plane on vs off on both Table-1 campaigns ----
  OverheadRun hyper = measure_overhead(/*hyper=*/true, duration_s, reps);
  OverheadRun spatio = measure_overhead(/*hyper=*/false, duration_s, reps);
  std::printf(
      "health-plane overhead (%.0f s campaigns, median of %d paired deltas):\n",
      duration_s, reps);
  for (const OverheadRun* r : {&hyper, &spatio}) {
    std::printf("  %-15s off %7.1f ms  on %7.1f ms  overhead %+5.2f%%\n",
                r->name.c_str(), r->off_s * 1e3, r->on_s * 1e3,
                r->overhead_pct);
  }
  check(hyper.overhead_pct < 2.0,
        "hyperspectral: health plane costs < 2% wall clock");
  check(spatio.overhead_pct < 2.0,
        "spatiotemporal: health plane costs < 2% wall clock");

  // ---- efficacy: chaos lights the plane up, fault-free stays dark ----
  HealthRun chaos = run_health_mode("chaos", duration_s, /*chaos=*/true);
  HealthRun quiet = run_health_mode("fault_free", duration_s, /*chaos=*/false);
  std::printf(
      "\n%-10s settled %3zu failed %zu fallbacks %3.0f | slo %llu watchdog "
      "%llu anomaly %llu | dumps %zu (degraded %zu, empty %zu)\n",
      chaos.name.c_str(), chaos.settled, chaos.failed, chaos.fallbacks,
      static_cast<unsigned long long>(chaos.slo_alerts),
      static_cast<unsigned long long>(chaos.watchdog_flags),
      static_cast<unsigned long long>(chaos.anomaly_alerts), chaos.dumps,
      chaos.degraded_dumps, chaos.empty_dumps);
  std::printf(
      "%-10s settled %3zu failed %zu fallbacks %3.0f | slo %llu watchdog "
      "%llu anomaly %llu | dumps %zu\n",
      quiet.name.c_str(), quiet.settled, quiet.failed, quiet.fallbacks,
      static_cast<unsigned long long>(quiet.slo_alerts),
      static_cast<unsigned long long>(quiet.watchdog_flags),
      static_cast<unsigned long long>(quiet.anomaly_alerts), quiet.dumps);

  check(chaos.failed == 0, "chaos campaign: recovery still holds (no failed)");
  check(chaos.fallbacks >= 1, "chaos campaign: the degradation ladder fired");
  check(chaos.slo_alerts >= 1, "chaos campaign: >= 1 SLO burn alert");
  check(chaos.watchdog_flags >= 1, "chaos campaign: >= 1 watchdog flag");
  check(chaos.anomaly_alerts >= 1, "chaos campaign: >= 1 anomaly alert");
  check(chaos.degraded_dumps >= static_cast<size_t>(chaos.fallbacks),
        "chaos campaign: a flight dump for every degraded flow");
  check(chaos.empty_dumps == 0, "chaos campaign: every dump carries events");
  check(quiet.slo_alerts == 0 && quiet.watchdog_flags == 0 &&
            quiet.anomaly_alerts == 0,
        "fault-free campaign: zero alerts of any kind");
  check(quiet.dumps == 0, "fault-free campaign: no dump-worthy rings");
  check(quiet.health_ticks > 0, "fault-free campaign: the monitor did run");

  util::Json doc = util::Json::object({
      {"schema", "pico.bench.observability.v1"},
      {"duration_s", duration_s},
      {"reps", static_cast<int64_t>(reps)},
      {"overhead", util::Json::array({
                       util::Json::object({
                           {"campaign", hyper.name},
                           {"off_wall_s", hyper.off_s},
                           {"on_wall_s", hyper.on_s},
                           {"overhead_pct", hyper.overhead_pct},
                       }),
                       util::Json::object({
                           {"campaign", spatio.name},
                           {"off_wall_s", spatio.off_s},
                           {"on_wall_s", spatio.on_s},
                           {"overhead_pct", spatio.overhead_pct},
                       }),
                   })},
      {"overhead_limit_pct", 2.0},
      {"runs", util::Json::array({health_json(chaos), health_json(quiet)})},
      {"pass", g_ok},
  });
  util::write_file(out_path, doc.dump(2) + "\n");
  std::printf("\nwrote %s (%s)\n", out_path.c_str(), g_ok ? "pass" : "FAIL");
  return g_ok ? 0 : 1;
}

// Federation scale bench (A14): the three robustness quantities the
// federated-failover tentpole makes first-class, measured on a 3-site
// federation driven by thousands of simulated users:
//
//  completion  - fraction of a 10^5-flow campaign that completes when a
//                whole site goes dark mid-campaign (SiteOutage) and a peer
//                browns out: the broker must checkpoint-resume stranded
//                flows at the survivors. CI gates >= 99%, and the shared
//                publish-index fingerprint must be byte-identical to the
//                fault-free run (the cross-site integrity contract: chaos
//                may delay work, never change or lose it).
//  fairness    - Jain index over per-user completions under fair-share
//                admission control (2000 equal-weight users; floor 0.97).
//  recovery    - virtual seconds from outage onset until the last stranded
//                flow settles at a peer (ceiling 900 s).
//
// p99/p50 flow latency (submit -> settle, virtual time) and the driver's
// wall-clock flows/s are recorded alongside. Emits BENCH_federation.json
// (checked in; CI regenerates with --smoke and gates via
// tools/check_telemetry.py --federation). On gate failure the chaos run's
// broker report is dumped to federation-report.json for the CI artifact
// upload.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "fault/schedule.hpp"
#include "federation/campaign.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

using namespace pico;
using util::Json;

namespace {

bool g_ok = true;

void check(bool condition, const char* what) {
  if (!condition) {
    std::printf("FAIL: %s\n", what);
    g_ok = false;
  }
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Json campaign_json(const federation::FederatedCampaignResult& r,
                   double wall_ms) {
  return Json::object({
      {"flows", static_cast<int64_t>(r.flows)},
      {"completed", static_cast<int64_t>(r.completed)},
      {"failed", static_cast<int64_t>(r.failed)},
      {"unsettled", static_cast<int64_t>(r.unsettled)},
      {"gave_up", static_cast<int64_t>(r.gave_up)},
      {"completion_frac", r.completion_frac()},
      {"rejected_submissions", static_cast<int64_t>(r.rejected_submissions)},
      {"resubmissions", static_cast<int64_t>(r.resubmissions)},
      {"failovers", static_cast<int64_t>(r.broker.failovers)},
      {"resumed", static_cast<int64_t>(r.broker.resumed)},
      {"reconciled", static_cast<int64_t>(r.broker.reconciled)},
      {"optional_steps_dropped",
       static_cast<int64_t>(r.broker.optional_dropped)},
      {"parked", static_cast<int64_t>(r.broker.parked)},
      {"recovery_s", r.broker.recovery_s},
      {"p50_s", r.p50_s},
      {"p99_s", r.p99_s},
      {"jain_fairness", r.jain_fairness},
      {"virtual_s", r.virtual_s},
      {"engine_events", static_cast<int64_t>(r.engine_events)},
      {"fingerprint", util::format("%016llx", static_cast<unsigned long long>(
                                                  r.fingerprint))},
      {"wall_ms", wall_ms},
      {"flows_per_s",
       wall_ms > 0 ? static_cast<double>(r.flows) / (wall_ms / 1e3) : 0.0},
  });
}

}  // namespace

int main(int argc, char** argv) {
  // Site-kill chaos cancels thousands of in-flight runs on purpose; the flow
  // service warns per cancellation, which would swamp the bench output.
  util::LogConfig::set_level(util::LogLevel::Error);
  std::string out_path = "BENCH_federation.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const double kCompletionMin = 0.99;
  const double kRecoveryCeilingS = 900.0;
  const double kFairnessMin = 0.97;

  federation::FederatedCampaignConfig cfg;
  cfg.flows = smoke ? 5000 : 100000;
  cfg.users = smoke ? 200 : 2000;
  cfg.arrival_window_s = smoke ? 900 : 3600;
  cfg.broker.quota.max_inflight_total = smoke ? 400 : 4000;
  cfg.broker.quota.min_user_inflight = 4;

  // Fault-free reference: same flow population, no chaos.
  double t0 = now_ms();
  federation::FederatedCampaignResult clean =
      federation::run_federated_campaign(cfg);
  double clean_wall = now_ms() - t0;
  std::printf(
      "clean  %6zu flows  %5.1f%% done  p50 %6.1fs p99 %6.1fs  jain %.4f  "
      "%7.0f flows/s  fp %016llx\n",
      clean.flows, 100.0 * clean.completion_frac(), clean.p50_s, clean.p99_s,
      clean.jain_fairness,
      static_cast<double>(clean.flows) / (clean_wall / 1e3),
      static_cast<unsigned long long>(clean.fingerprint));

  // Chaos: mid-campaign site kill, a peer brownout, and a short partition —
  // the A14 script. Targets are sites 1 and 2 of the default 3-site layout.
  federation::FederatedCampaignConfig chaos_cfg = cfg;
  double scale = smoke ? 0.25 : 1.0;
  chaos_cfg.chaos.name = "a14-site-chaos";
  chaos_cfg.chaos.add({fault::FaultKind::SiteOutage, 1200 * scale, 600 * scale,
                       cfg.sites[1].name, 0});
  chaos_cfg.chaos.add({fault::FaultKind::SiteBrownout, 2000 * scale,
                       400 * scale, cfg.sites[2].name, 0.6});
  chaos_cfg.chaos.add({fault::FaultKind::SitePartition, 2800 * scale,
                       120 * scale, cfg.sites[1].name, 0});
  t0 = now_ms();
  federation::FederatedCampaignResult chaos =
      federation::run_federated_campaign(chaos_cfg);
  double chaos_wall = now_ms() - t0;
  std::printf(
      "chaos  %6zu flows  %5.1f%% done  p50 %6.1fs p99 %6.1fs  jain %.4f  "
      "%7.0f flows/s  fp %016llx\n"
      "       %llu failovers (%llu resumed)  %llu reconciled  %llu shed  "
      "recovery %.1fs\n",
      chaos.flows, 100.0 * chaos.completion_frac(), chaos.p50_s, chaos.p99_s,
      chaos.jain_fairness,
      static_cast<double>(chaos.flows) / (chaos_wall / 1e3),
      static_cast<unsigned long long>(chaos.fingerprint),
      static_cast<unsigned long long>(chaos.broker.failovers),
      static_cast<unsigned long long>(chaos.broker.resumed),
      static_cast<unsigned long long>(chaos.broker.reconciled),
      static_cast<unsigned long long>(chaos.broker.optional_dropped),
      chaos.broker.recovery_s);

  check(clean.completion_frac() >= 1.0, "fault-free run completes every flow");
  check(chaos.completion_frac() >= kCompletionMin,
        "chaos completion >= 99% via failover");
  bool fp_match = chaos.fingerprint == clean.fingerprint;
  check(fp_match, "chaos publish-index fingerprint matches fault-free run");
  check(chaos.broker.failovers > 0, "site kill exercised the failover path");
  check(chaos.broker.resumed > 0, "failover resumed past completed steps");
  check(chaos.broker.recovery_s > 0 &&
            chaos.broker.recovery_s <= kRecoveryCeilingS,
        "failover recovery within ceiling");
  check(clean.jain_fairness >= kFairnessMin, "fault-free fairness floor");
  check(chaos.jain_fairness >= kFairnessMin, "chaos fairness floor");

  Json doc = Json::object({
      {"bench", "federation"},
      {"schema", "pico.bench.federation.v1"},
      {"smoke", smoke},
      {"pass", g_ok},
      {"sites", static_cast<int64_t>(cfg.sites.size())},
      {"flows", static_cast<int64_t>(cfg.flows)},
      {"users", static_cast<int64_t>(cfg.users)},
      {"max_inflight_total",
       static_cast<int64_t>(cfg.broker.quota.max_inflight_total)},
      {"gates", Json::object({
                    {"completion_min", kCompletionMin},
                    {"recovery_ceiling_s", kRecoveryCeilingS},
                    {"fairness_min", kFairnessMin},
                    {"fingerprint_match", fp_match},
                })},
      {"clean", campaign_json(clean, clean_wall)},
      {"chaos", campaign_json(chaos, chaos_wall)},
  });
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!g_ok) {
    // Leave the chaos broker report behind for the CI failure artifact.
    FILE* r = std::fopen("federation-report.json", "w");
    if (r) {
      std::string report = chaos.broker_report.dump(2);
      std::fwrite(report.data(), 1, report.size(), r);
      std::fputc('\n', r);
      std::fclose(r);
      std::printf("wrote federation-report.json (gate failure diagnostics)\n");
    }
  }
  return g_ok ? 0 : 1;
}

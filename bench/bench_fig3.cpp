// Reproduces Fig. 3: the spatiotemporal detection pipeline on the 600-frame
// gold-nanoparticle sequence — EMD -> uint8 video conversion, per-frame
// detection + tracking, annotated video output — and the paper's model
// quality metric (mAP50-95 on the 9/3/1 labeled split; YOLOv8s reference:
// 0.791 train / 0.801 val).
#include <chrono>
#include <cstdio>

#include "instrument/spatiotemporal_gen.hpp"
#include "video/convert.hpp"
#include "video/mpk.hpp"
#include "vision/detect.hpp"
#include "vision/eval.hpp"
#include "vision/track.hpp"

using namespace pico;

namespace {
double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main() {
  auto cfg = instrument::SpatiotemporalConfig::fig3_sample();
  std::printf("Fig. 3 sequence: %zu frames of %zux%zu, %zu gold "
              "nanoparticles on carbon\n",
              cfg.frames, cfg.height, cfg.width, cfg.particle_count);

  auto t0 = std::chrono::steady_clock::now();
  auto sample = instrument::generate_spatiotemporal(cfg);
  std::printf("  acquisition (synthetic):  %8.1f ms\n", ms_since(t0));

  t0 = std::chrono::steady_clock::now();
  auto frames_u8 = video::convert_fast(sample.stack);
  double convert_ms = ms_since(t0);
  std::printf("  fp64 -> uint8 conversion: %8.1f ms\n", convert_ms);

  vision::BlobDetector detector;
  vision::GreedyIoUTracker tracker;
  std::vector<std::vector<vision::Detection>> detections;
  detections.reserve(cfg.frames);
  t0 = std::chrono::steady_clock::now();
  for (size_t t = 0; t < cfg.frames; ++t) {
    auto dets = detector.detect(sample.stack.slice0(t));
    tracker.update(dets);
    detections.push_back(std::move(dets));
  }
  double detect_ms = ms_since(t0);
  std::printf("  detection + tracking:     %8.1f ms (%.2f ms/frame)\n",
              detect_ms, detect_ms / static_cast<double>(cfg.frames));

  t0 = std::chrono::steady_clock::now();
  video::MpkVideo annotated =
      video::annotate(video::MpkVideo::from_stack(frames_u8), detections);
  annotated.save("bench-artifacts/fig3/annotated.mpk");
  std::printf("  annotate + encode video:  %8.1f ms\n", ms_since(t0));

  // Count series summary (the Fig. 3 caption claim: counts characterize the
  // sample over time).
  auto counts = vision::count_per_frame(detections);
  size_t lo = counts[0], hi = counts[0], total = 0;
  for (size_t c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
    total += c;
  }
  std::printf("\ndetections per frame: min %zu, mean %.1f, max %zu "
              "(truth: %zu particles)\n",
              lo, static_cast<double>(total) / static_cast<double>(counts.size()),
              hi, cfg.particle_count);
  std::printf("tracker identities: %d\n", tracker.total_tracks_created());

  // mAP on the paper's labeled split: every 50th frame -> 9 train / 3 val /
  // 1 test.
  std::vector<vision::EvalImage> train, val, test;
  size_t labeled = 0;
  for (size_t t = 0; t < cfg.frames; t += 50) {
    vision::EvalImage img;
    img.truths = sample.boxes[t];
    img.detections = detections[t];
    size_t bucket = labeled % 13;
    if (bucket < 9) train.push_back(std::move(img));
    else if (bucket < 12) val.push_back(std::move(img));
    else test.push_back(std::move(img));
    ++labeled;
  }
  double map_train = vision::map50_95(train);
  double map_val = vision::map50_95(val);
  double ap50_train = vision::average_precision(train, 0.5);
  std::printf("\nmodel quality, %zu train / %zu val / %zu test images:\n",
              train.size(), val.size(), test.size());
  std::printf("  mAP50-95: train %.3f  val %.3f   (paper YOLOv8s: 0.791 / "
              "0.801)\n",
              map_train, map_val);
  std::printf("  AP50:     train %.3f\n", ap50_train);
  std::printf("\nshape check: mAP50-95 in the paper's band (0.6-0.9): %s\n",
              (map_train > 0.6 && map_train < 0.95) ? "yes" : "NO");
  std::printf("artifact: bench-artifacts/fig3/annotated.mpk (%zu frames)\n",
              annotated.frame_count());
  return 0;
}

// Direct detector→compute streaming shootout (A10): what bypassing the
// landing store buys, and proof that frame chaos degrades gracefully instead
// of corrupting science.
//
// Three hyperspectral campaigns (91 MB / 30 s, Table-1 shape):
//
//   cutthrough   - the PR4 pipeline: chunked store-mediated Transfer with the
//                  Analyze step starting cut-through on the first landed chunk
//   direct       - streaming_direct: the Transfer step is replaced by a Stream
//                  step pushing live detector frames (400 Mb/s cadence,
//                  4-frame ring) straight into Polaris node memory
//   direct_chaos - the same direct campaign under frame chaos: standing
//                  drop/reorder/duplicate probabilities plus two consumer
//                  stalls long enough to blow the stall budget, exercising
//                  every rung of the degradation ladder (retransmit,
//                  spill-to-store, whole-flow fallback)
//
// Claims checked here and by CI (tools/check_telemetry.py --streaming):
// direct beats cut-through to the first settled result; the chaos campaign
// finishes every flow with a search index byte-identical to the fault-free
// direct run; and the ladder's middle rungs actually fired (>= 1 spill,
// >= 1 fallback in telemetry).
//
// Emits BENCH_streaming.json (checked in; CI regenerates and schema-checks).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/campaign.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"

using namespace pico;

namespace {

bool g_ok = true;

void check(bool condition, const char* what) {
  if (!condition) {
    std::printf("FAIL: %s\n", what);
    g_ok = false;
  }
}

std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double counter_value(core::Facility& facility, const std::string& name,
                     const std::string& help) {
  return facility.telemetry().metrics.counter(name, help).value();
}

struct StreamRun {
  std::string name;
  size_t settled = 0;
  size_t successes = 0;
  size_t failed = 0;
  size_t lost = 0;
  size_t recovered = 0;
  double ttfr_s = 0;          ///< first settled result, seconds of virtual time
  double runtime_mean_s = 0;  ///< mean in-window flow runtime
  double wire_bytes = 0;
  double frames_sent = 0;
  double frames_dropped = 0;
  double retransmits = 0;
  double spills = 0;
  double spilled_bytes = 0;
  double fallbacks = 0;
  size_t index_size = 0;
  uint64_t index_fingerprint = 0;
};

core::FacilityConfig facility_config() {
  core::FacilityConfig fc;
  fc.artifact_dir = "bench-artifacts/streaming";
  fc.seed = 20230915;
  // Events mode: chunked transfers stream cut-through, and the Stream
  // provider settles on completion callbacks.
  fc.flow.completion_mode = flow::CompletionMode::Events;
  // Live detector cadence: 400 Mb/s of 8 MB frames against the 1 Gb/s user
  // switch, with a ring of 4 frames (32 MB vs the 91 MB acquisition). A
  // healthy consumer keeps up without evictions; a stalled one overflows the
  // ring within four frames and forces the spill path.
  fc.stream.detector_rate_bps = 400e6;
  fc.stream.channel.ring_capacity = 4;
  fc.stream.stall_fallback_s = 15.0;
  return fc;
}

core::CampaignConfig campaign_config(double duration_s, bool direct) {
  core::CampaignConfig cfg;
  cfg.use_case = core::UseCase::Hyperspectral;  // 91 MB every 30 s
  cfg.duration_s = duration_s;
  cfg.label_prefix = "stream";
  if (direct) {
    cfg.streaming_direct = true;
  } else {
    cfg.streaming_steps = {"Analyze"};  // PR4 cut-through comparator
  }
  return cfg;
}

// Frame chaos scaled to the window: standing drop/reorder/duplicate
// probabilities all campaign long, plus two 45 s consumer stalls. With the
// stall budget at 15 s, a session caught by a stall first spills its
// ring-evicted frames to the store, then abandons the channel entirely.
void add_chaos(core::CampaignConfig& cfg, double duration_s) {
  using fault::FaultEvent;
  using fault::FaultKind;
  cfg.chaos.name = "frame-chaos";
  cfg.chaos.add(FaultEvent{FaultKind::FrameDrop, 0, 2 * duration_s, "", 0.05});
  cfg.chaos.add(
      FaultEvent{FaultKind::FrameReorder, 0, 2 * duration_s, "", 0.05});
  cfg.chaos.add(
      FaultEvent{FaultKind::FrameDuplicate, 0, 2 * duration_s, "", 0.05});
  cfg.chaos.add(
      FaultEvent{FaultKind::ConsumerStall, 0.30 * duration_s, 45, "", 0});
  cfg.chaos.add(
      FaultEvent{FaultKind::ConsumerStall, 0.70 * duration_s, 45, "", 0});
  cfg.recovery.enabled = true;
  cfg.recovery.resubmit_budget = 3;
}

StreamRun run_mode(const std::string& name, double duration_s, bool direct,
                   bool chaos) {
  core::Facility facility(facility_config());
  core::CampaignConfig cfg = campaign_config(duration_s, direct);
  if (chaos) add_chaos(cfg, duration_s);
  core::CampaignResult result = core::run_campaign(facility, cfg);

  StreamRun run;
  run.name = name;
  run.failed = result.failed;
  run.lost = result.robustness.lost;
  run.recovered = result.robustness.recovered;
  double first = 0;
  bool any = false;
  for (const auto* bucket : {&result.in_window, &result.late}) {
    for (const core::CompletedFlow& f : *bucket) {
      ++run.settled;
      if (f.success) ++run.successes;
      double done = f.timing.finished.seconds();
      if (!any || done < first) first = done;
      any = true;
    }
  }
  run.ttfr_s = first;
  run.runtime_mean_s = result.runtime_stats().mean();

  run.wire_bytes = counter_value(
      facility, "transfer_wire_bytes_total",
      "Bytes that crossed the network (after compression)");
  run.frames_sent =
      counter_value(facility, "stream_frames_sent_total",
                    "Original detector frames placed on the wire");
  run.frames_dropped =
      counter_value(facility, "frames_dropped_total",
                    "Frames lost on the direct streaming path");
  run.retransmits =
      counter_value(facility, "frames_retransmitted_total",
                    "Frames resent from the producer ring after a NACK");
  run.spills =
      counter_value(facility, "stream_spills_total",
                    "Frame ranges diverted to the store landing path");
  run.spilled_bytes =
      counter_value(facility, "stream_spilled_bytes_total",
                    "Bytes that reached the consumer via spill-to-store");
  run.fallbacks =
      counter_value(facility, "stream_fallbacks_total",
                    "Sessions re-routed whole-flow to the store path");
  run.index_size = facility.index().size();
  run.index_fingerprint = facility.index().fingerprint();
  return run;
}

util::Json run_json(const StreamRun& r) {
  return util::Json::object({
      {"run", r.name},
      {"settled", static_cast<int64_t>(r.settled)},
      {"successes", static_cast<int64_t>(r.successes)},
      {"failed", static_cast<int64_t>(r.failed)},
      {"lost", static_cast<int64_t>(r.lost)},
      {"recovered", static_cast<int64_t>(r.recovered)},
      {"time_to_first_result_s", r.ttfr_s},
      {"runtime_mean_s", r.runtime_mean_s},
      {"wire_bytes", r.wire_bytes},
      {"frames_sent", r.frames_sent},
      {"frames_dropped", r.frames_dropped},
      {"retransmits", r.retransmits},
      {"spills", r.spills},
      {"spilled_bytes", r.spilled_bytes},
      {"fallbacks", r.fallbacks},
      {"index_size", static_cast<int64_t>(r.index_size)},
      {"index_fingerprint", hex64(r.index_fingerprint)},
  });
}

void print_run(const StreamRun& r) {
  std::printf(
      "%-13s settled %3zu ok %3zu lost %zu | first result %6.1f s mean "
      "%6.1f s | frames %4.0f drop %3.0f rtx %3.0f | spills %2.0f "
      "(%5.1f MB) fallbacks %2.0f | index %zu\n",
      r.name.c_str(), r.settled, r.successes, r.lost, r.ttfr_s,
      r.runtime_mean_s, r.frames_sent, r.frames_dropped, r.retransmits,
      r.spills, r.spilled_bytes / 1e6, r.fallbacks, r.index_size);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_streaming.json";
  double duration_s = 3600;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      duration_s = 900;  // quarter-hour campaign for CI smoke
    } else {
      out_path = argv[i];
    }
  }

  StreamRun cutthrough = run_mode("cutthrough", duration_s, /*direct=*/false,
                                  /*chaos=*/false);
  StreamRun direct = run_mode("direct", duration_s, /*direct=*/true,
                              /*chaos=*/false);
  StreamRun direct_chaos = run_mode("direct_chaos", duration_s,
                                    /*direct=*/true, /*chaos=*/true);

  std::printf("hyperspectral campaign (91 MB / 30 s, %.0f s window):\n",
              duration_s);
  print_run(cutthrough);
  print_run(direct);
  print_run(direct_chaos);

  bool index_match = direct_chaos.index_size == direct.index_size &&
                     direct_chaos.index_fingerprint == direct.index_fingerprint;
  std::printf(
      "\nfirst result: direct %.1f s vs cut-through %.1f s (%.1f s sooner)\n"
      "chaos index vs fault-free direct: %s\n",
      direct.ttfr_s, cutthrough.ttfr_s, cutthrough.ttfr_s - direct.ttfr_s,
      index_match ? "byte-identical" : "DIVERGED");

  check(cutthrough.failed == 0 && cutthrough.lost == 0,
        "cut-through campaign: no failures");
  check(direct.failed == 0 && direct.lost == 0,
        "direct campaign: no failures");
  check(direct.settled > 0 && cutthrough.settled > 0,
        "both comparators settled flows");
  check(direct.ttfr_s < cutthrough.ttfr_s,
        "direct streaming beats cut-through to the first result");
  check(direct.spills == 0 && direct.fallbacks == 0 &&
            direct.retransmits == 0,
        "fault-free direct run stays on the direct rung");
  check(direct_chaos.failed == 0 && direct_chaos.lost == 0,
        "chaos campaign: every flow eventually succeeds");
  check(direct_chaos.frames_dropped > 0 && direct_chaos.retransmits > 0,
        "chaos campaign: drops happened and retransmits healed them");
  check(direct_chaos.spills >= 1,
        "chaos campaign: at least one ring overflow spilled to the store");
  check(direct_chaos.fallbacks >= 1,
        "chaos campaign: at least one session fell back whole-flow");
  check(index_match,
        "chaos campaign index is byte-identical to the fault-free direct run");

  util::Json doc = util::Json::object({
      {"schema", "pico.bench.streaming.v1"},
      {"duration_s", duration_s},
      {"use_case", "hyperspectral"},
      {"file_bytes", static_cast<int64_t>(91) * 1000 * 1000},
      {"start_period_s", 30.0},
      {"detector_rate_bps", 400e6},
      {"ring_capacity", 4},
      {"runs", util::Json::array({run_json(cutthrough), run_json(direct),
                                  run_json(direct_chaos)})},
      {"first_result_saved_s", cutthrough.ttfr_s - direct.ttfr_s},
      {"index_match_chaos_vs_direct", index_match},
      {"pass", g_ok},
  });
  util::write_file(out_path, doc.dump(2) + "\n");
  std::printf("\nwrote %s (%s)\n", out_path.c_str(), g_ok ? "pass" : "FAIL");
  return g_ok ? 0 : 1;
}

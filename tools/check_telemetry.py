#!/usr/bin/env python3
"""Schema checker for the facility's telemetry export formats.

Validates, with no third-party dependencies:

* Prometheus text exposition files (``--prom``): every sample belongs to a
  family announced by ``# HELP`` / ``# TYPE`` lines, histogram series carry
  monotone cumulative buckets ending in ``le="+Inf"`` whose count equals the
  ``_count`` sample, and (optionally) at least ``--min-families`` distinct
  families are present.

* Chrome trace_event JSON files (``--trace``): the document is an object with
  a ``traceEvents`` array, complete ("X") events carry numeric ``ts``/``dur``
  and span identity in ``args``, every non-zero ``parent_id`` resolves to a
  recorded span, the parent interval encloses the child (within 1 us of
  rounding slack), and (optionally) the span tree reaches ``--require-depth``
  levels — e.g. 4 proves campaign -> run -> step -> provider-attempt nesting.

* Data-plane kernel baselines (``--dataplane``, ``BENCH_dataplane.json``):
  schema, expected kernel set, byte-parity flags, and — only when the file was
  generated in full mode on a multi-core host — a parallel-speedup floor at
  the widest pool.  Baselines from 1-core runners record thread counts but
  skip the speedup check: a width-N pool on one hardware thread legitimately
  runs slower than sequential, so asserting speedup > 1 there rejects a
  correct baseline.

* Orchestration-overhead baselines (``--overhead``, ``BENCH_overhead.json``):
  schema, both Table-1 campaigns with all four signaling modes, span parity
  (telemetry-rebuilt timings bit-identical to flow-service records), and the
  headline claims: event-driven completion must cut the hyperspectral median
  overhead fraction below polling (>= 2x on full-length runs), and
  cut-through streaming must cut the spatiotemporal median *total* runtime
  below event-only.

* Direct-streaming baselines (``--streaming``, ``BENCH_streaming.json``):
  schema, all three campaign runs settled with zero lost flows, direct
  streaming sooner to the first result than cut-through, the fault-free run
  clean of degradation, and the frame-chaos run exercising every rung of the
  degradation ladder (drops healed by retransmits, >= 1 spill-to-store,
  >= 1 whole-flow fallback) while publishing a search index byte-identical
  to the fault-free direct run.

* Health-plane baselines (``--observability``, ``BENCH_observability.json``):
  schema, the always-on flight recorder + snapshot loop under the recorded
  (<= 2%) wall-clock overhead limit on both Table-1 campaigns, the frame-chaos
  campaign raising >= 1 SLO burn alert, >= 1 watchdog flag and >= 1 anomaly
  alert with a non-empty flight dump per degraded flow, and the identical
  fault-free campaign completely silent.

* Control-plane scale baselines (``--controlplane``,
  ``BENCH_controlplane.json``): schema, the bench's own pass flag, all three
  flow tiers (10^3/10^4/10^5) present with sane event counts, the 10^5-flow
  tier at or above the recorded speedup gate (>= 2.5x the pre-rewrite
  baseline) with the gate itself not quietly loosened, search p99 under
  10 ms at 10^6 documents with a non-degenerate query count, scheduler
  micro-costs for both backends, and the heap-vs-wheel campaign parity
  fingerprints bit-identical.

* End-to-end integrity baselines (``--integrity``, ``BENCH_integrity.json``):
  schema, the 50%-progress resume acceptance pair (resumed retry < 60% of
  file bytes, whole-file restart >= 150%), and the chaos campaign's
  guarantees: zero lost flows, nonzero detected corruption, a search index
  byte-identical to the fault-free baseline, zero duplicate publications
  (with nonzero suppressed duplicates proving the idempotency keys were
  exercised), and positive retry bytes saved by verified resume.

* Federation baselines (``--federation``, ``BENCH_federation.json``):
  schema, the bench's own pass flag, the gates not quietly loosened
  (completion >= 99%, recovery ceiling <= 900 s, fairness floor >= 0.97),
  the fault-free run fully complete, the site-kill chaos run at or above the
  completion floor with nonzero failovers and checkpoint-resumes, recovery
  within the ceiling, Jain fairness at or above the floor on both runs, and
  the chaos publish-index fingerprint byte-identical to the fault-free run.

All JSON baselines are loaded through one guard: a missing file, truncated
JSON, or a non-object top level is a one-line actionable failure (regenerate
with the matching bench binary), never a raw traceback.

Exit status is non-zero on the first file that fails, so CI can gate on it:

    python3 tools/check_telemetry.py --prom BENCH_dataplane.prom
    python3 tools/check_telemetry.py --trace chaos-output/trace.json \
        --require-depth 4 --prom chaos-output/metrics.prom --min-families 12
    python3 tools/check_telemetry.py --dataplane BENCH_dataplane.json \
        --overhead BENCH_overhead.json --integrity BENCH_integrity.json
"""

import argparse
import json
import math
import re
import sys

# Label values are quoted strings with backslash escapes, so `,` / `}` / `"`
# may appear *inside* a value: the sample body and the per-label scanner both
# have to consume quoted runs atomically rather than split on delimiters.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?\s+(?P<value>\S+)$'
)
LABEL_ITEM_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
    r"\s*(?:,|$)"
)
LABEL_ESCAPE_RE = re.compile(r'\\(.)')


def unescape_label(value):
    """Decode the exposition-format escapes (\\\\, \\", \\n). Any other
    escaped character is invalid; the caller pre-validates with
    LABEL_ITEM_RE so only well-formed pairs reach here."""
    return LABEL_ESCAPE_RE.sub(
        lambda m: "\n" if m.group(1) == "n" else m.group(1), value)


def parse_labels(labels_text):
    """Split a label body into a dict, or return None if malformed."""
    labels = {}
    pos = 0
    while pos < len(labels_text):
        m = LABEL_ITEM_RE.match(labels_text, pos)
        if not m:
            return None
        for esc in re.finditer(r'\\(.)', m.group("value")):
            if esc.group(1) not in ('\\', '"', 'n'):
                return None
        labels[m.group("key")] = unescape_label(m.group("value"))
        pos = m.end()
    return labels


def fail(path, message):
    print(f"{path}: FAIL: {message}", file=sys.stderr)
    return False


def load_bench_doc(path):
    """Load a JSON baseline and require a top-level object.

    A missing file, truncated/invalid JSON, or a document whose top level is
    not an object (e.g. a partial write that parses as ``null``) each used to
    escape the checkers as a raw traceback; all three are now a one-line
    actionable failure. Returns the parsed dict, or None after reporting.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(path, f"unreadable: {e} — regenerate the baseline with the "
                   f"matching bench binary under build/bench/")
        return None
    except json.JSONDecodeError as e:
        fail(path, f"invalid or truncated JSON ({e}) — regenerate the "
                   f"baseline with the matching bench binary")
        return None
    if not isinstance(doc, dict):
        fail(path, f"top-level JSON is {type(doc).__name__}, expected an "
                   f"object — the baseline is corrupt; regenerate it")
        return None
    return doc


def base_family(name, families):
    """Resolve a sample name to its announced family (histograms emit
    ``<family>_bucket``/``_sum``/``_count`` samples)."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def check_prom(path, min_families):
    families = {}  # name -> type
    # (family, frozen labels minus 'le') -> list of (le, cumulative count)
    buckets = {}
    counts = {}
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as e:
        return fail(path, f"unreadable: {e}")

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                return fail(path, f"line {lineno}: malformed TYPE: {line!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            return fail(path, f"line {lineno}: unknown comment: {line!r}")

        m = SAMPLE_RE.match(line)
        if not m:
            return fail(path, f"line {lineno}: malformed sample: {line!r}")
        name, labels_text, value = m.group("name", "labels", "value")
        family = base_family(name, families)
        if family is None:
            return fail(path, f"line {lineno}: sample {name!r} has no TYPE")
        labels = parse_labels(labels_text) if labels_text else {}
        if labels is None:
            return fail(path, f"line {lineno}: bad labels {labels_text!r}")
        try:
            numeric = float(value)
        except ValueError:
            if value not in ("+Inf", "-Inf", "NaN"):
                return fail(path, f"line {lineno}: bad value {value!r}")
            numeric = float(value.replace("Inf", "inf"))
        if families[family] in ("counter", "histogram") and numeric < 0:
            return fail(path, f"line {lineno}: negative {families[family]}")

        if families[family] == "histogram":
            series = frozenset(
                (k, v) for k, v in labels.items() if k != "le")
            if name.endswith("_bucket"):
                if "le" not in labels:
                    return fail(path, f"line {lineno}: bucket without le")
                le = float(labels["le"].replace("+Inf", "inf"))
                buckets.setdefault((family, series), []).append((le, numeric))
            elif name.endswith("_count"):
                counts[(family, series)] = numeric

    for (family, series), bs in buckets.items():
        for (le_a, n_a), (le_b, n_b) in zip(bs, bs[1:]):
            if le_b <= le_a:
                return fail(path, f"{family}: buckets not sorted by le")
            if n_b < n_a:
                return fail(path, f"{family}: cumulative counts decrease")
        if not math.isinf(bs[-1][0]):
            return fail(path, f"{family}: missing le=\"+Inf\" bucket")
        if (family, series) in counts and bs[-1][1] != counts[(family,
                                                               series)]:
            return fail(path, f"{family}: +Inf bucket != _count")

    if len(families) < min_families:
        return fail(path,
                    f"{len(families)} families < required {min_families}")
    print(f"{path}: ok ({len(families)} families, "
          f"{len(buckets)} histogram series)")
    return True


def check_trace(path, require_depth):
    doc = load_bench_doc(path)
    if doc is None:
        return False
    if not isinstance(doc.get("traceEvents"), list):
        return fail(path, "missing traceEvents array")

    spans = {}  # span_id -> (ts, dur, parent_id, name)
    instants = 0
    for i, ev in enumerate(doc["traceEvents"]):
        ph = ev.get("ph")
        if ph not in ("M", "X", "i"):
            return fail(path, f"event {i}: unknown phase {ph!r}")
        if ph == "M":
            continue
        for key in ("name", "pid", "tid", "ts"):
            if key not in ev:
                return fail(path, f"event {i}: missing {key!r}")
        if not isinstance(ev["ts"], (int, float)):
            return fail(path, f"event {i}: non-numeric ts")
        if ph == "i":
            instants += 1
            continue
        if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
            return fail(path, f"event {i}: X event needs dur >= 0")
        args = ev.get("args")
        if not isinstance(args, dict):
            return fail(path, f"event {i}: X event needs args")
        for key in ("trace_id", "span_id", "parent_id"):
            if not isinstance(args.get(key), int):
                return fail(path, f"event {i}: args.{key} must be an int")
        if args["span_id"] != 0:
            spans[args["span_id"]] = (ev["ts"], ev["dur"], args["parent_id"],
                                      ev["name"])

    depth = 0
    for sid, (ts, dur, parent, name) in spans.items():
        level, cursor = 1, parent
        while cursor:
            if cursor not in spans:
                return fail(path,
                            f"span {sid} ({name}): dangling parent {cursor}")
            pts, pdur, cursor, _ = spans[cursor]
            level += 1
            if level > len(spans):
                return fail(path, f"span {sid}: parent cycle")
        pts, pdur, _, pname = spans[parent] if parent else (None, None, None,
                                                            None)
        if parent and (ts < pts - 1 or ts + dur > pts + pdur + 1):
            return fail(path, f"span {sid} ({name}) escapes parent {pname}")
        depth = max(depth, level)

    if depth < require_depth:
        return fail(path, f"span tree depth {depth} < required "
                          f"{require_depth}")
    print(f"{path}: ok ({len(spans)} spans, depth {depth}, "
          f"{instants} instant events)")
    return True


DATAPLANE_KERNELS = {
    "convert_fp64_u8", "to_u8_normalized", "sum_axis3_spectral",
    "sum_keep_axis3_spectrum", "gaussian_blur", "crc64", "crc64_copy",
    "lz_compress",
}

# A width-N pool on a multi-core host must not be slower than this fraction
# of sequential at full problem sizes (chunking overhead aside, the kernels
# are embarrassingly parallel).
SPEEDUP_FLOOR = 0.7

# SIMD-vectorized kernels must actually *gain* from extra threads: the
# false-sharing regression showed up as 0.32x at 4 threads, which the 0.7
# floor would never have caught had it been milder.
STRICT_SPEEDUP_KERNELS = {
    "convert_fp64_u8", "to_u8_normalized", "sum_axis3_spectral",
    "sum_keep_axis3_spectrum",
}

# Sequential-throughput ratchet (GB/s, full mode only). The convert/normalize
# floors are 2x the 1.9 GB/s scalar baseline recorded before the SIMD layer
# landed (measured ~4.9-5.1 GB/s with the AVX-512 backend); the sums are
# ratcheted well under their ~10-11 GB/s measurements and the CRC kernels
# under their ~1.3-1.4 GB/s, so a regression to scalar code paths fails the
# gate while run-to-run noise on a shared CI host does not.
SEQ_GBPS_FLOOR = {
    "convert_fp64_u8": 3.8,
    "to_u8_normalized": 3.8,
    "sum_axis3_spectral": 5.0,
    "sum_keep_axis3_spectrum": 5.0,
    "crc64": 1.1,
    "crc64_copy": 1.1,
}


def check_dataplane(path):
    doc = load_bench_doc(path)
    if doc is None:
        return False
    if doc.get("schema") != "pico.bench.dataplane.v2":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    if doc.get("parity_all") is not True:
        return fail(path, "parity_all is not true")
    hw = doc.get("hardware_threads")
    if not isinstance(hw, int) or hw < 1:
        return fail(path, f"bad hardware_threads {hw!r}")
    simd = doc.get("simd_level")
    if simd not in ("scalar", "avx2", "avx512", "neon"):
        return fail(path, f"bad simd_level {simd!r}")
    widths = doc.get("pool_widths")
    if not isinstance(widths, list) or not widths:
        return fail(path, "missing pool_widths")
    if max(widths) > hw:
        return fail(path, f"pool width {max(widths)} exceeds "
                          f"hardware_threads {hw} — the sweep must be "
                          f"clamped, not oversubscribed")
    requested = doc.get("requested_widths")
    if not isinstance(requested, list) or not requested:
        return fail(path, "missing requested_widths")
    if doc.get("oversubscribed") != any(w > hw for w in requested):
        return fail(path, f"oversubscribed flag {doc.get('oversubscribed')!r}"
                          f" inconsistent with requested widths {requested} "
                          f"on a {hw}-thread host")

    kernels = {k.get("kernel") for k in doc.get("kernels", [])}
    missing = DATAPLANE_KERNELS - kernels
    if missing:
        return fail(path, f"missing kernels: {sorted(missing)}")
    for k in doc.get("kernels", []):
        name = k.get("kernel")
        if k.get("parity") is not True:
            return fail(path, f"{name}: parity is not true")
        if not isinstance(k.get("sequential_s"), (int, float)) \
                or k["sequential_s"] < 0:
            return fail(path, f"{name}: bad sequential_s")
        for entry in k.get("parallel", []):
            threads = entry.get("threads")
            if not isinstance(threads, int) or threads < 1:
                return fail(path, f"{name}: parallel entry without a "
                                  f"recorded thread count: {entry!r}")
            if not isinstance(entry.get("seconds"), (int, float)) \
                    or entry["seconds"] <= 0:
                return fail(path, f"{name}: bad parallel seconds")

    # Sequential-throughput ratchet: full-size problems only (smoke problems
    # fit in cache and overshoot; they prove the emitter, not the kernels).
    if doc.get("mode") == "full":
        for k in doc["kernels"]:
            floor = SEQ_GBPS_FLOOR.get(k["kernel"])
            if floor is None:
                continue
            gbps = k.get("sequential_gbps", 0)
            if gbps < floor:
                return fail(path, f"{k['kernel']}: sequential "
                                  f"{gbps:.2f} GB/s < ratchet floor "
                                  f"{floor} GB/s")

    # Speedup regression check: only meaningful when the pool actually had
    # hardware to spread over and the problems ran at full size.
    if hw == 1:
        note = "speedup check skipped (1 hardware thread)"
    elif doc.get("mode") != "full":
        note = f"speedup check skipped (mode {doc.get('mode')!r})"
    else:
        note = "speedup floors hold at widest pool"
        for k in doc["kernels"]:
            par = [e for e in k.get("parallel", []) if e["threads"] > 1]
            if not par:
                continue
            widest = max(par, key=lambda e: e["threads"])
            speedup = widest.get("speedup_vs_sequential", 0)
            floor = 1.0 if k["kernel"] in STRICT_SPEEDUP_KERNELS \
                else SPEEDUP_FLOOR
            if speedup < floor:
                return fail(path, f"{k['kernel']}: speedup "
                                  f"{speedup:.2f}x at {widest['threads']} "
                                  f"threads < floor {floor}x on a "
                                  f"{hw}-thread host")
    print(f"{path}: ok ({len(kernels)} kernels, {hw} hardware threads, "
          f"simd {simd}, {note})")
    return True


OVERHEAD_MODES = ("paper_polling", "adaptive_polling", "event_driven",
                  "event_streaming")


def check_overhead(path):
    doc = load_bench_doc(path)
    if doc is None:
        return False
    if doc.get("schema") != "pico.bench.overhead.v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    if doc.get("span_parity_all") is not True:
        return fail(path, "span_parity_all is not true: telemetry spans do "
                          "not reproduce the flow-service timings")
    duration = doc.get("duration_s")
    if not isinstance(duration, (int, float)) or duration <= 0:
        return fail(path, f"bad duration_s {duration!r}")
    # Short smoke campaigns have too few flows for the calibrated-margin
    # claims; they still must satisfy ordering.
    full_length = duration >= 3600

    campaigns = {c.get("use_case"): c for c in doc.get("campaigns", [])}
    if set(campaigns) != {"hyperspectral", "spatiotemporal"}:
        return fail(path, f"campaigns {sorted(campaigns)} != both Table-1 "
                          f"use cases")

    by_mode = {}
    for use_case, c in campaigns.items():
        modes = {m.get("mode"): m for m in c.get("modes", [])}
        if set(modes) != set(OVERHEAD_MODES):
            return fail(path, f"{use_case}: modes {sorted(modes)} != "
                              f"{sorted(OVERHEAD_MODES)}")
        for name, m in modes.items():
            if m.get("runs", 0) <= 0:
                return fail(path, f"{use_case}/{name}: no completed runs")
            if m.get("span_parity") is not True:
                return fail(path, f"{use_case}/{name}: span parity broken")
            for key in ("median_total_s", "max_total_s", "median_overhead_s",
                        "median_overlap_s", "polls_per_run"):
                v = m.get(key)
                if not isinstance(v, (int, float)) or v < 0:
                    return fail(path, f"{use_case}/{name}: bad {key} {v!r}")
            frac = m.get("median_overhead_frac")
            if not isinstance(frac, (int, float)) or not 0 <= frac <= 1:
                return fail(path, f"{use_case}/{name}: overhead fraction "
                                  f"{frac!r} outside [0, 1]")
        by_mode[use_case] = modes

    # Headline claim 1: event-driven completion cuts the hyperspectral median
    # overhead fraction vs paper-default polling (>= 2x at full length).
    poll = by_mode["hyperspectral"]["paper_polling"]["median_overhead_frac"]
    event = by_mode["hyperspectral"]["event_driven"]["median_overhead_frac"]
    if event >= poll:
        return fail(path, f"hyperspectral: event-driven overhead fraction "
                          f"{event:.3f} is not below polling {poll:.3f}")
    ratio = poll / event if event > 0 else float("inf")
    if full_length and ratio < 2.0:
        return fail(path, f"hyperspectral: polling/event overhead-fraction "
                          f"ratio {ratio:.2f}x < required 2x")

    # Headline claim 2: cut-through streaming cuts the spatiotemporal median
    # *total* runtime below event-only completion.
    ev_total = by_mode["spatiotemporal"]["event_driven"]["median_total_s"]
    st = by_mode["spatiotemporal"]["event_streaming"]
    if st["median_total_s"] >= ev_total:
        return fail(path, f"spatiotemporal: streaming total "
                          f"{st['median_total_s']:.1f}s is not below "
                          f"event-only {ev_total:.1f}s")
    if st["median_overlap_s"] <= 0:
        return fail(path, "spatiotemporal: streaming mode recorded no "
                          "transfer/compute overlap")

    print(f"{path}: ok (hyperspectral overhead fraction {poll:.3f} -> "
          f"{event:.3f} [{ratio:.2f}x], spatiotemporal total "
          f"{ev_total:.1f}s -> {st['median_total_s']:.1f}s with "
          f"{st['median_overlap_s']:.1f}s overlap)")
    return True


INTEGRITY_RUNS = ("baseline", "chaos_resume", "chaos_restart")


def check_integrity(path):
    doc = load_bench_doc(path)
    if doc is None:
        return False
    if doc.get("schema") != "pico.bench.integrity.v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    if doc.get("pass") is not True:
        return fail(path, "the bench itself recorded a failed assertion")

    # The 50%-progress resume acceptance pair.
    acc = doc.get("resume_acceptance")
    if not isinstance(acc, dict):
        return fail(path, "missing resume_acceptance")
    retry_frac = acc.get("resume_retry_wire_frac")
    restart_frac = acc.get("restart_total_wire_frac")
    if not isinstance(retry_frac, (int, float)) or retry_frac < 0:
        return fail(path, f"bad resume_retry_wire_frac {retry_frac!r}")
    if retry_frac >= 0.6:
        return fail(path, f"resumed retry moved {100 * retry_frac:.1f}% of "
                          f"file bytes, required < 60%")
    if not isinstance(restart_frac, (int, float)) or restart_frac < 1.5:
        return fail(path, f"whole-file restart moved "
                          f"{restart_frac!r}x the file, required >= 1.5x")
    if acc.get("resume_chunks_resumed", 0) <= 0:
        return fail(path, "retry did not resume any verified chunks")

    campaign = doc.get("campaign")
    if not isinstance(campaign, dict):
        return fail(path, "missing campaign")
    runs = {r.get("run"): r for r in campaign.get("runs", [])}
    if set(runs) != set(INTEGRITY_RUNS):
        return fail(path, f"campaign runs {sorted(runs)} != "
                          f"{sorted(INTEGRITY_RUNS)}")
    for name, r in runs.items():
        if r.get("settled", 0) <= 0:
            return fail(path, f"{name}: no settled flows")
        if r.get("eagle_clean") is not True:
            return fail(path, f"{name}: campaign ended with a corrupt "
                              f"object still in the store")

    resume = runs["chaos_resume"]
    if resume.get("failed", 1) != 0 or resume.get("lost", 1) != 0:
        return fail(path, f"chaos_resume lost flows (failed "
                          f"{resume.get('failed')!r}, lost "
                          f"{resume.get('lost')!r})")
    corruption = sum(resume.get(k, 0) for k in
                     ("corruption_detected_wire",
                      "corruption_detected_landing",
                      "corruption_detected_at_rest"))
    if corruption <= 0:
        return fail(path, "chaos campaign detected no corruption — the "
                          "fault schedule did not exercise the checks")
    if resume.get("duplicate_publishes") != 0:
        return fail(path, f"chaos_resume published "
                          f"{resume.get('duplicate_publishes')!r} records "
                          f"beyond one per successful flow")
    if resume.get("publish_duplicates_suppressed", 0) <= 0:
        return fail(path, "no duplicate publishes were suppressed — the "
                          "idempotency keys were never exercised")
    if resume.get("chunks_resumed", 0) <= 0:
        return fail(path, "chaos_resume never resumed a chunk from a "
                          "manifest")
    if campaign.get("index_match_resume_vs_baseline") is not True:
        return fail(path, "chaos campaign index diverged from the "
                          "fault-free baseline")
    saved = campaign.get("retry_bytes_saved")
    if not isinstance(saved, (int, float)) or saved <= 0:
        return fail(path, f"retry_bytes_saved {saved!r} is not positive")

    print(f"{path}: ok (retry moved {100 * retry_frac:.1f}% resumed vs "
          f"{100 * restart_frac:.1f}% restarted; campaign detected "
          f"{corruption:.0f} corruptions, suppressed "
          f"{resume['publish_duplicates_suppressed']:.0f} duplicate "
          f"publishes, saved {saved / 1e6:.0f} MB of retry bytes)")
    return True


STREAMING_RUNS = ("cutthrough", "direct", "direct_chaos")


def check_streaming(path):
    doc = load_bench_doc(path)
    if doc is None:
        return False
    if doc.get("schema") != "pico.bench.streaming.v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    if doc.get("pass") is not True:
        return fail(path, "the bench itself recorded a failed assertion")

    runs = {r.get("run"): r for r in doc.get("runs", [])}
    if set(runs) != set(STREAMING_RUNS):
        return fail(path, f"runs {sorted(runs)} != {sorted(STREAMING_RUNS)}")
    for name, r in runs.items():
        if r.get("settled", 0) <= 0:
            return fail(path, f"{name}: no settled flows")
        if r.get("failed", 1) != 0 or r.get("lost", 1) != 0:
            return fail(path, f"{name}: flows failed or were lost (failed "
                              f"{r.get('failed')!r}, lost {r.get('lost')!r})")
        ttfr = r.get("time_to_first_result_s")
        if not isinstance(ttfr, (int, float)) or ttfr <= 0:
            return fail(path, f"{name}: bad time_to_first_result_s {ttfr!r}")

    # Headline claim: bypassing the landing store reaches the first settled
    # result sooner than the cut-through store-mediated pipeline.
    direct = runs["direct"]
    cutthrough = runs["cutthrough"]
    if direct["time_to_first_result_s"] >= cutthrough["time_to_first_result_s"]:
        return fail(path, f"direct first result "
                          f"{direct['time_to_first_result_s']:.1f}s is not "
                          f"sooner than cut-through "
                          f"{cutthrough['time_to_first_result_s']:.1f}s")
    # The fault-free direct run must stay on the direct rung...
    for key in ("retransmits", "spills", "fallbacks"):
        if direct.get(key, 1) != 0:
            return fail(path, f"direct: fault-free run recorded "
                              f"{key} {direct.get(key)!r}")
    # ...while the chaos run must climb the whole degradation ladder and
    # still converge on identical science.
    chaos = runs["direct_chaos"]
    if chaos.get("frames_dropped", 0) <= 0 or chaos.get("retransmits", 0) <= 0:
        return fail(path, "chaos run dropped no frames or never "
                          "retransmitted — the drop window did not engage")
    if chaos.get("spills", 0) < 1:
        return fail(path, "chaos run never spilled to the store")
    if chaos.get("fallbacks", 0) < 1:
        return fail(path, "chaos run never fell back whole-flow")
    if doc.get("index_match_chaos_vs_direct") is not True or \
            chaos.get("index_fingerprint") != direct.get("index_fingerprint"):
        return fail(path, "chaos campaign index diverged from the "
                          "fault-free direct run")

    print(f"{path}: ok (first result "
          f"{cutthrough['time_to_first_result_s']:.1f}s -> "
          f"{direct['time_to_first_result_s']:.1f}s; chaos survived "
          f"{chaos['frames_dropped']:.0f} drops with "
          f"{chaos['retransmits']:.0f} retransmits, "
          f"{chaos['spills']:.0f} spills, {chaos['fallbacks']:.0f} "
          f"fallbacks, index intact)")
    return True


OBSERVABILITY_RUNS = ("chaos", "fault_free")


def check_observability(path):
    doc = load_bench_doc(path)
    if doc is None:
        return False
    if doc.get("schema") != "pico.bench.observability.v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    if doc.get("pass") is not True:
        return fail(path, "the bench itself recorded a failed assertion")

    # Overhead: health plane on vs off on both Table-1 campaigns. The limit
    # is recorded in the file but must not have been quietly loosened.
    limit = doc.get("overhead_limit_pct")
    if not isinstance(limit, (int, float)) or limit > 2.0:
        return fail(path, f"overhead_limit_pct {limit!r} looser than 2%")
    overhead = {o.get("campaign"): o for o in doc.get("overhead", [])}
    if set(overhead) != {"hyperspectral", "spatiotemporal"}:
        return fail(path, f"overhead campaigns {sorted(overhead)} != both "
                          f"Table-1 use cases")
    for name, o in overhead.items():
        for key in ("off_wall_s", "on_wall_s"):
            if not isinstance(o.get(key), (int, float)) or o[key] <= 0:
                return fail(path, f"{name}: bad {key} {o.get(key)!r}")
        pct = o.get("overhead_pct")
        if not isinstance(pct, (int, float)) or pct >= limit:
            return fail(path, f"{name}: health-plane overhead {pct!r}% is "
                              f"not under {limit}%")

    # Efficacy: chaos lights the plane up, the identical fault-free campaign
    # stays dark.
    runs = {r.get("run"): r for r in doc.get("runs", [])}
    if set(runs) != set(OBSERVABILITY_RUNS):
        return fail(path, f"runs {sorted(runs)} != "
                          f"{sorted(OBSERVABILITY_RUNS)}")
    for name, r in runs.items():
        if r.get("settled", 0) <= 0:
            return fail(path, f"{name}: no settled flows")
        if r.get("failed", 1) != 0:
            return fail(path, f"{name}: {r.get('failed')!r} flows failed")
        if r.get("health_ticks", 0) <= 0:
            return fail(path, f"{name}: health monitor never ticked")

    chaos = runs["chaos"]
    if chaos.get("fallbacks", 0) < 1:
        return fail(path, "chaos run degraded no flows — the fault schedule "
                          "did not exercise the plane")
    if chaos.get("slo_alerts", 0) < 1:
        return fail(path, "chaos run raised no SLO burn alert")
    if chaos.get("watchdog_flags", 0) < 1:
        return fail(path, "chaos run flagged no flow via the watchdogs")
    if chaos.get("anomaly_alerts", 0) < 1:
        return fail(path, "chaos run raised no anomaly alert")
    if chaos.get("degraded_flow_dumps", 0) < chaos.get("fallbacks", 0):
        return fail(path, f"only {chaos.get('degraded_flow_dumps')!r} flight "
                          f"dumps cover the {chaos.get('fallbacks')!r} "
                          f"degraded flows")
    if chaos.get("empty_dumps", 1) != 0:
        return fail(path, f"{chaos.get('empty_dumps')!r} flight dumps were "
                          f"empty — the recorder missed the flow's events")
    alerts = chaos.get("alerts")
    if not isinstance(alerts, list) or not alerts:
        return fail(path, "chaos run recorded no alert details")
    for i, a in enumerate(alerts):
        if not isinstance(a.get("kind"), str) or not a.get("kind"):
            return fail(path, f"alert {i}: missing kind")
        if not isinstance(a.get("subject"), str):
            return fail(path, f"alert {i}: missing subject")
        if not isinstance(a.get("at_s"), (int, float)) or a["at_s"] < 0:
            return fail(path, f"alert {i}: bad at_s {a.get('at_s')!r}")

    quiet = runs["fault_free"]
    for key in ("slo_alerts", "watchdog_flags", "anomaly_alerts",
                "flight_dumps"):
        if quiet.get(key, 1) != 0:
            return fail(path, f"fault_free run is not silent: {key} = "
                              f"{quiet.get(key)!r}")

    print(f"{path}: ok (overhead "
          f"{overhead['hyperspectral']['overhead_pct']:+.2f}% / "
          f"{overhead['spatiotemporal']['overhead_pct']:+.2f}% under "
          f"{limit}%; chaos raised {chaos['slo_alerts']:.0f} SLO + "
          f"{chaos['watchdog_flags']:.0f} watchdog + "
          f"{chaos['anomaly_alerts']:.0f} anomaly alerts, "
          f"{chaos['flight_dumps']:.0f} flight dumps; fault-free silent)")
    return True


def check_controlplane(path):
    doc = load_bench_doc(path)
    if doc is None:
        return False
    if doc.get("schema") != "pico.bench.controlplane.v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    if doc.get("pass") is not True:
        return fail(path, "the bench itself recorded a failed assertion")
    smoke = bool(doc.get("smoke"))

    sched = doc.get("sched", {})
    backends = {b.get("name"): b for b in sched.get("backends", [])}
    if set(backends) != {"heap", "wheel"}:
        return fail(path, f"scheduler backends {sorted(backends)} != "
                          f"heap + wheel")
    for name, b in backends.items():
        for key in ("schedule_ns", "cancel_ns", "drain_ns"):
            v = b.get(key)
            if not isinstance(v, (int, float)) or v <= 0:
                return fail(path, f"{name}: bad {key} {v!r}")

    flows = doc.get("flows", {})
    tiers = {t.get("flows"): t for t in flows.get("tiers", [])}
    want_tiers = {1000, 10000} if smoke else {1000, 10000, 100000}
    if set(tiers) != want_tiers:
        return fail(path, f"flow tiers {sorted(tiers)} != "
                          f"{sorted(want_tiers)}")
    for n, t in tiers.items():
        if not isinstance(t.get("flows_per_s"), (int, float)) \
                or t["flows_per_s"] <= 0:
            return fail(path, f"tier {n}: bad flows_per_s "
                              f"{t.get('flows_per_s')!r}")
        epf = t.get("events_per_flow")
        if not isinstance(epf, (int, float)) or not 5 <= epf <= 100:
            return fail(path, f"tier {n}: events_per_flow {epf!r} is not a "
                              f"plausible orchestration workload")

    parity = doc.get("parity", {})
    if parity.get("match") is not True:
        return fail(path, "heap vs wheel campaign parity broken")
    fp_heap = parity.get("fingerprint_heap")
    fp_wheel = parity.get("fingerprint_wheel")
    if not fp_heap or fp_heap != fp_wheel:
        return fail(path, f"parity fingerprints differ: {fp_heap!r} vs "
                          f"{fp_wheel!r}")

    if smoke:
        print(f"{path}: ok (smoke: schema, backends, tiers, parity)")
        return True

    # Full-mode throughput gates. The gate factor is recorded in the file but
    # must not have been quietly loosened.
    gate = flows.get("speedup_gate_100k")
    if not isinstance(gate, (int, float)) or gate < 2.5:
        return fail(path, f"speedup_gate_100k {gate!r} looser than 2.5x")
    baseline = flows.get("baseline_flows_per_s_100k")
    if not isinstance(baseline, (int, float)) or baseline <= 0:
        return fail(path, f"bad baseline_flows_per_s_100k {baseline!r}")
    top = tiers[100000]["flows_per_s"]
    speedup = top / baseline
    if speedup < gate:
        return fail(path, f"10^5-flow tier {top:.0f} flows/s is "
                          f"{speedup:.2f}x baseline, under the {gate}x gate")

    search = doc.get("search", {})
    if search.get("docs") != 1000000:
        return fail(path, f"search tier {search.get('docs')!r} != 10^6 docs")
    if not isinstance(search.get("queries"), (int, float)) \
            or search["queries"] < 100:
        return fail(path, f"degenerate query count {search.get('queries')!r}")
    p99 = search.get("p99_ms")
    if not isinstance(p99, (int, float)) or p99 >= 10.0:
        return fail(path, f"search p99 {p99!r} ms is not under 10 ms")
    for key in ("ingest_docs_per_s", "remove_docs_per_s"):
        v = search.get(key)
        if not isinstance(v, (int, float)) or v <= 0:
            return fail(path, f"bad {key} {v!r}")

    print(f"{path}: ok (10^5 tier {top:.0f} flows/s = {speedup:.2f}x "
          f"baseline >= {gate}x; search p99 {p99:.3f} ms at 10^6 docs; "
          f"heap/wheel parity {fp_heap})")
    return True


FEDERATION_RUNS = ("clean", "chaos")


def check_federation(path):
    doc = load_bench_doc(path)
    if doc is None:
        return False
    if doc.get("schema") != "pico.bench.federation.v1":
        return fail(path, f"bad schema {doc.get('schema')!r}")
    if doc.get("pass") is not True:
        return fail(path, "the bench itself recorded a failed assertion")

    # The gates are recorded in the file but must not be quietly loosened.
    gates = doc.get("gates")
    if not isinstance(gates, dict):
        return fail(path, "missing gates")
    completion_min = gates.get("completion_min")
    if not isinstance(completion_min, (int, float)) or completion_min < 0.99:
        return fail(path, f"completion_min {completion_min!r} looser than "
                          f"the required 99%")
    ceiling = gates.get("recovery_ceiling_s")
    if not isinstance(ceiling, (int, float)) or ceiling > 900:
        return fail(path, f"recovery_ceiling_s {ceiling!r} looser than 900 s")
    fairness_min = gates.get("fairness_min")
    if not isinstance(fairness_min, (int, float)) or fairness_min < 0.97:
        return fail(path, f"fairness_min {fairness_min!r} looser than 0.97")

    runs = {}
    for name in FEDERATION_RUNS:
        r = doc.get(name)
        if not isinstance(r, dict):
            return fail(path, f"missing {name} campaign")
        if not isinstance(r.get("flows"), (int, float)) or r["flows"] <= 0:
            return fail(path, f"{name}: bad flows {r.get('flows')!r}")
        for key in ("completion_frac", "p50_s", "p99_s", "jain_fairness"):
            v = r.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                return fail(path, f"{name}: bad {key} {v!r}")
        if r["jain_fairness"] < fairness_min:
            return fail(path, f"{name}: Jain fairness "
                              f"{r['jain_fairness']:.4f} under the "
                              f"{fairness_min} floor")
        runs[name] = r
    clean, chaos = runs["clean"], runs["chaos"]

    if clean["completion_frac"] < 1.0:
        return fail(path, f"fault-free run left flows unfinished "
                          f"({100 * clean['completion_frac']:.2f}%)")
    if chaos["completion_frac"] < completion_min:
        return fail(path, f"chaos completion "
                          f"{100 * chaos['completion_frac']:.2f}% under the "
                          f"{100 * completion_min:.0f}% floor — failover did "
                          f"not absorb the site kill")
    if chaos.get("failovers", 0) <= 0:
        return fail(path, "chaos run recorded no failovers — the site kill "
                          "never exercised the broker")
    if chaos.get("resumed", 0) <= 0:
        return fail(path, "no flow resumed past completed steps at a peer — "
                          "checkpoint-resume was never exercised")
    recovery = chaos.get("recovery_s")
    if not isinstance(recovery, (int, float)) or not 0 < recovery <= ceiling:
        return fail(path, f"failover recovery {recovery!r} s outside "
                          f"(0, {ceiling}] s")
    if gates.get("fingerprint_match") is not True or \
            not clean.get("fingerprint") or \
            chaos.get("fingerprint") != clean.get("fingerprint"):
        return fail(path, "chaos publish index diverged from the fault-free "
                          "run — failover changed or lost science")

    print(f"{path}: ok ({chaos['flows']:.0f} flows x {doc.get('sites')} "
          f"sites: chaos completion "
          f"{100 * chaos['completion_frac']:.2f}%, "
          f"{chaos['failovers']:.0f} failovers recovered in "
          f"{recovery:.1f}s <= {ceiling:.0f}s, Jain "
          f"{chaos['jain_fairness']:.4f} >= {fairness_min}, p99 "
          f"{chaos['p99_s']:.1f}s vs clean {clean['p99_s']:.1f}s, "
          f"index intact)")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--prom", action="append", default=[],
                        help="Prometheus text file to validate (repeatable)")
    parser.add_argument("--min-families", type=int, default=1,
                        help="minimum distinct metric families per prom file")
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace_event JSON to validate "
                             "(repeatable)")
    parser.add_argument("--require-depth", type=int, default=1,
                        help="minimum span-tree depth per trace file")
    parser.add_argument("--dataplane", action="append", default=[],
                        help="BENCH_dataplane.json baseline to validate "
                             "(repeatable)")
    parser.add_argument("--overhead", action="append", default=[],
                        help="BENCH_overhead.json baseline to validate "
                             "(repeatable)")
    parser.add_argument("--integrity", action="append", default=[],
                        help="BENCH_integrity.json baseline to validate "
                             "(repeatable)")
    parser.add_argument("--streaming", action="append", default=[],
                        help="BENCH_streaming.json baseline to validate "
                             "(repeatable)")
    parser.add_argument("--observability", action="append", default=[],
                        help="BENCH_observability.json baseline to validate "
                             "(repeatable)")
    parser.add_argument("--controlplane", action="append", default=[],
                        help="BENCH_controlplane.json baseline to validate "
                             "(repeatable)")
    parser.add_argument("--federation", action="append", default=[],
                        help="BENCH_federation.json baseline to validate "
                             "(repeatable)")
    args = parser.parse_args()
    if not args.prom and not args.trace and not args.dataplane \
            and not args.overhead and not args.integrity \
            and not args.streaming and not args.observability \
            and not args.controlplane and not args.federation:
        parser.error("nothing to check: pass --prom, --trace, --dataplane, "
                     "--overhead, --integrity, --streaming, --observability, "
                     "--controlplane and/or --federation")

    ok = True
    for path in args.prom:
        ok = check_prom(path, args.min_families) and ok
    for path in args.trace:
        ok = check_trace(path, args.require_depth) and ok
    for path in args.dataplane:
        ok = check_dataplane(path) and ok
    for path in args.overhead:
        ok = check_overhead(path) and ok
    for path in args.integrity:
        ok = check_integrity(path) and ok
    for path in args.streaming:
        ok = check_streaming(path) and ok
    for path in args.observability:
        ok = check_observability(path) and ok
    for path in args.controlplane:
        ok = check_controlplane(path) and ok
    for path in args.federation:
        ok = check_federation(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

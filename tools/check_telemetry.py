#!/usr/bin/env python3
"""Schema checker for the facility's telemetry export formats.

Validates, with no third-party dependencies:

* Prometheus text exposition files (``--prom``): every sample belongs to a
  family announced by ``# HELP`` / ``# TYPE`` lines, histogram series carry
  monotone cumulative buckets ending in ``le="+Inf"`` whose count equals the
  ``_count`` sample, and (optionally) at least ``--min-families`` distinct
  families are present.

* Chrome trace_event JSON files (``--trace``): the document is an object with
  a ``traceEvents`` array, complete ("X") events carry numeric ``ts``/``dur``
  and span identity in ``args``, every non-zero ``parent_id`` resolves to a
  recorded span, the parent interval encloses the child (within 1 us of
  rounding slack), and (optionally) the span tree reaches ``--require-depth``
  levels — e.g. 4 proves campaign -> run -> step -> provider-attempt nesting.

Exit status is non-zero on the first file that fails, so CI can gate on it:

    python3 tools/check_telemetry.py --prom BENCH_dataplane.prom
    python3 tools/check_telemetry.py --trace chaos-output/trace.json \
        --require-depth 4 --prom chaos-output/metrics.prom --min-families 12
"""

import argparse
import json
import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')


def fail(path, message):
    print(f"{path}: FAIL: {message}", file=sys.stderr)
    return False


def base_family(name, families):
    """Resolve a sample name to its announced family (histograms emit
    ``<family>_bucket``/``_sum``/``_count`` samples)."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def check_prom(path, min_families):
    families = {}  # name -> type
    # (family, frozen labels minus 'le') -> list of (le, cumulative count)
    buckets = {}
    counts = {}
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as e:
        return fail(path, f"unreadable: {e}")

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                return fail(path, f"line {lineno}: malformed TYPE: {line!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            return fail(path, f"line {lineno}: unknown comment: {line!r}")

        m = SAMPLE_RE.match(line)
        if not m:
            return fail(path, f"line {lineno}: malformed sample: {line!r}")
        name, labels_text, value = m.group("name", "labels", "value")
        family = base_family(name, families)
        if family is None:
            return fail(path, f"line {lineno}: sample {name!r} has no TYPE")
        labels = {}
        if labels_text:
            for item in labels_text.split(","):
                if not LABEL_RE.match(item):
                    return fail(path, f"line {lineno}: bad label {item!r}")
                k, v = item.split("=", 1)
                labels[k] = v.strip('"')
        try:
            numeric = float(value)
        except ValueError:
            if value not in ("+Inf", "-Inf", "NaN"):
                return fail(path, f"line {lineno}: bad value {value!r}")
            numeric = float(value.replace("Inf", "inf"))
        if families[family] in ("counter", "histogram") and numeric < 0:
            return fail(path, f"line {lineno}: negative {families[family]}")

        if families[family] == "histogram":
            series = frozenset(
                (k, v) for k, v in labels.items() if k != "le")
            if name.endswith("_bucket"):
                if "le" not in labels:
                    return fail(path, f"line {lineno}: bucket without le")
                le = float(labels["le"].replace("+Inf", "inf"))
                buckets.setdefault((family, series), []).append((le, numeric))
            elif name.endswith("_count"):
                counts[(family, series)] = numeric

    for (family, series), bs in buckets.items():
        for (le_a, n_a), (le_b, n_b) in zip(bs, bs[1:]):
            if le_b <= le_a:
                return fail(path, f"{family}: buckets not sorted by le")
            if n_b < n_a:
                return fail(path, f"{family}: cumulative counts decrease")
        if not math.isinf(bs[-1][0]):
            return fail(path, f"{family}: missing le=\"+Inf\" bucket")
        if (family, series) in counts and bs[-1][1] != counts[(family,
                                                               series)]:
            return fail(path, f"{family}: +Inf bucket != _count")

    if len(families) < min_families:
        return fail(path,
                    f"{len(families)} families < required {min_families}")
    print(f"{path}: ok ({len(families)} families, "
          f"{len(buckets)} histogram series)")
    return True


def check_trace(path, require_depth):
    try:
        doc = json.load(open(path, encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unparseable: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        return fail(path, "missing traceEvents array")

    spans = {}  # span_id -> (ts, dur, parent_id, name)
    instants = 0
    for i, ev in enumerate(doc["traceEvents"]):
        ph = ev.get("ph")
        if ph not in ("M", "X", "i"):
            return fail(path, f"event {i}: unknown phase {ph!r}")
        if ph == "M":
            continue
        for key in ("name", "pid", "tid", "ts"):
            if key not in ev:
                return fail(path, f"event {i}: missing {key!r}")
        if not isinstance(ev["ts"], (int, float)):
            return fail(path, f"event {i}: non-numeric ts")
        if ph == "i":
            instants += 1
            continue
        if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
            return fail(path, f"event {i}: X event needs dur >= 0")
        args = ev.get("args")
        if not isinstance(args, dict):
            return fail(path, f"event {i}: X event needs args")
        for key in ("trace_id", "span_id", "parent_id"):
            if not isinstance(args.get(key), int):
                return fail(path, f"event {i}: args.{key} must be an int")
        if args["span_id"] != 0:
            spans[args["span_id"]] = (ev["ts"], ev["dur"], args["parent_id"],
                                      ev["name"])

    depth = 0
    for sid, (ts, dur, parent, name) in spans.items():
        level, cursor = 1, parent
        while cursor:
            if cursor not in spans:
                return fail(path,
                            f"span {sid} ({name}): dangling parent {cursor}")
            pts, pdur, cursor, _ = spans[cursor]
            level += 1
            if level > len(spans):
                return fail(path, f"span {sid}: parent cycle")
        pts, pdur, _, pname = spans[parent] if parent else (None, None, None,
                                                            None)
        if parent and (ts < pts - 1 or ts + dur > pts + pdur + 1):
            return fail(path, f"span {sid} ({name}) escapes parent {pname}")
        depth = max(depth, level)

    if depth < require_depth:
        return fail(path, f"span tree depth {depth} < required "
                          f"{require_depth}")
    print(f"{path}: ok ({len(spans)} spans, depth {depth}, "
          f"{instants} instant events)")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--prom", action="append", default=[],
                        help="Prometheus text file to validate (repeatable)")
    parser.add_argument("--min-families", type=int, default=1,
                        help="minimum distinct metric families per prom file")
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace_event JSON to validate "
                             "(repeatable)")
    parser.add_argument("--require-depth", type=int, default=1,
                        help="minimum span-tree depth per trace file")
    args = parser.parse_args()
    if not args.prom and not args.trace:
        parser.error("nothing to check: pass --prom and/or --trace")

    ok = True
    for path in args.prom:
        ok = check_prom(path, args.min_families) and ok
    for path in args.trace:
        ok = check_trace(path, args.require_depth) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

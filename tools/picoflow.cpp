// picoflow — command-line interface to the library: inspect and convert EMD
// files, run analyses, measure compression, and drive simulated campaigns.
//
//   picoflow emd-info <file.emd>
//   picoflow emd-gen hyper|spatio <out.emd> [seed]
//   picoflow analyze <file.emd> [out-dir]
//   picoflow convert-hmsa <in.emd> <out-base>      (writes .xml + .hmsa)
//   picoflow convert-emd <in-base> <out.emd>       (reads .xml + .hmsa)
//   picoflow compress <file> [codec]
//   picoflow campaign hyper|spatio [duration-s] [period-s]
//   picoflow flow-def hyper|spatio
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/hyperspectral.hpp"
#include "analysis/metadata.hpp"
#include "analysis/plot.hpp"
#include "compress/codec.hpp"
#include "core/campaign.hpp"
#include "core/flows.hpp"
#include "core/report.hpp"
#include "flow/definition_io.hpp"
#include "emd/hmsa.hpp"
#include "instrument/hyperspectral_gen.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "util/bytes.hpp"
#include "tensor/ops.hpp"
#include "util/strings.hpp"
#include "video/convert.hpp"
#include "video/mpk.hpp"
#include "vision/detect.hpp"
#include "vision/track.hpp"

using namespace pico;

namespace {

int usage() {
  std::fprintf(stderr, R"(usage:
  picoflow emd-info <file.emd>
  picoflow emd-gen hyper|spatio <out.emd> [seed]
  picoflow analyze <file.emd> [out-dir]
  picoflow convert-hmsa <in.emd> <out-base>
  picoflow convert-emd <in-base> <out.emd>
  picoflow compress <file> [codec]
  picoflow campaign hyper|spatio [duration-s] [period-s]
  picoflow flow-def hyper|spatio
)");
  return 2;
}

void print_group(const emd::Group& group, const std::string& path, int depth) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  for (const auto& [k, v] : group.attrs) {
    std::printf("%s@%s = %s\n", indent.c_str(), k.c_str(), v.dump().c_str());
  }
  for (const auto& [name, ds] : group.datasets) {
    std::string shape;
    for (size_t d : ds.shape()) {
      if (!shape.empty()) shape += "x";
      shape += std::to_string(d);
    }
    std::printf("%s%s: %s [%s] %s%s\n", indent.c_str(), name.c_str(),
                std::string(tensor::dtype_name(ds.dtype())).c_str(),
                shape.c_str(), util::human_bytes(static_cast<double>(ds.nbytes())).c_str(),
                ds.payload_loaded() ? "" : " (header only)");
  }
  for (const auto& [name, child] : group.groups) {
    std::printf("%s%s/\n", indent.c_str(), name.c_str());
    print_group(child, path + name + "/", depth + 1);
  }
}

int cmd_emd_info(const std::string& path) {
  auto file = emd::File::load(path, /*with_payload=*/false);
  if (!file) {
    std::fprintf(stderr, "error: %s\n", file.error().message.c_str());
    return 1;
  }
  std::printf("%s (%s payload)\n", path.c_str(),
              util::human_bytes(static_cast<double>(file.value().payload_bytes())).c_str());
  print_group(file.value().root, "/", 0);
  auto meta = analysis::extract_metadata(file.value());
  if (meta) {
    std::printf("\nextracted metadata:\n%s\n", meta.value().dump(2).c_str());
  }
  return 0;
}

int cmd_emd_gen(const std::string& kind, const std::string& out,
                uint64_t seed) {
  emd::MicroscopeSettings scope;
  emd::File file;
  if (kind == "hyper") {
    auto cfg = instrument::HyperspectralConfig::fig2_sample();
    cfg.seed = seed;
    auto sample = instrument::generate_hyperspectral(cfg);
    file = instrument::to_emd(sample, cfg, scope, "2023-04-07T10:00:00Z",
                              "polyamide film with heavy metals",
                              "operator@anl.gov");
  } else if (kind == "spatio") {
    auto cfg = instrument::SpatiotemporalConfig::fig3_sample();
    cfg.frames = 60;  // keep generated files modest
    cfg.seed = seed;
    auto sample = instrument::generate_spatiotemporal(cfg);
    file = instrument::to_emd(sample, cfg, scope, "2023-04-08T10:00:00Z",
                              "gold nanoparticles on carbon",
                              "operator@anl.gov");
  } else {
    return usage();
  }
  if (auto st = file.save(out); !st) {
    std::fprintf(stderr, "error: %s\n", st.error().message.c_str());
    return 1;
  }
  std::printf("wrote %s (%s)\n", out.c_str(),
              util::human_bytes(static_cast<double>(file.payload_bytes())).c_str());
  return 0;
}

int cmd_analyze(const std::string& path, const std::string& out_dir) {
  auto file = emd::File::load(path);
  if (!file) {
    std::fprintf(stderr, "error: %s\n", file.error().message.c_str());
    return 1;
  }
  auto signal = emd::first_signal_name(file.value());
  if (!signal) {
    std::fprintf(stderr, "error: %s\n", signal.error().message.c_str());
    return 1;
  }
  auto kind = emd::signal_kind(file.value(), signal.value());
  if (!kind) {
    std::fprintf(stderr, "error: %s\n", kind.error().message.c_str());
    return 1;
  }
  const emd::Group* group = file.value().root.find_group(
      std::string(emd::Paths::kData) + "/" + signal.value());
  auto data = group->datasets.at("data").as<double>();
  if (!data) {
    std::fprintf(stderr, "error: %s\n", data.error().message.c_str());
    return 1;
  }

  if (kind.value() == emd::SignalKind::Hyperspectral) {
    size_t channels = data.value().dim(2);
    double e_min = group->attrs.count("energy_min_kev")
                       ? group->attrs.at("energy_min_kev").as_double(0)
                       : 0;
    double e_max = group->attrs.count("energy_max_kev")
                       ? group->attrs.at("energy_max_kev").as_double(20)
                       : 20;
    std::vector<double> axis(channels);
    for (size_t k = 0; k < channels; ++k) {
      axis[k] = e_min + (e_max - e_min) * (k + 0.5) / channels;
    }
    auto result = analysis::analyze_hyperspectral(data.value(), axis);
    std::printf("hyperspectral %zux%zux%zu, total counts %.0f\n",
                data.value().dim(0), data.value().dim(1), channels,
                tensor::sum_value(result.spectrum));
    for (const auto& el : result.elements) {
      std::printf("  %-3s score %10.1f\n", el.symbol.c_str(), el.score);
    }
    analysis::write_pgm(out_dir + "/intensity.pgm", result.intensity);
    analysis::LinePlotConfig plot;
    plot.title = "Aggregate spectrum";
    plot.x_label = "Energy (keV)";
    plot.y_label = "Counts";
    std::vector<double> counts(result.spectrum.data().begin(),
                               result.spectrum.data().end());
    util::write_file(out_dir + "/spectrum.svg",
                     analysis::render_line_svg(axis, counts, plot));
    std::printf("artifacts: %s/{intensity.pgm, spectrum.svg}\n",
                out_dir.c_str());
  } else {
    vision::BlobDetector detector;
    vision::GreedyIoUTracker tracker;
    std::vector<std::vector<vision::Detection>> dets;
    for (size_t t = 0; t < data.value().dim(0); ++t) {
      auto frame_dets = detector.detect(data.value().slice0(t));
      tracker.update(frame_dets);
      dets.push_back(std::move(frame_dets));
    }
    size_t total = 0;
    for (const auto& d : dets) total += d.size();
    std::printf("spatiotemporal %zu frames of %zux%zu: %zu detections, %d "
                "tracks\n",
                data.value().dim(0), data.value().dim(1), data.value().dim(2),
                total, tracker.total_tracks_created());
    auto annotated = video::annotate(
        video::MpkVideo::from_stack(video::convert_fast(data.value())), dets);
    annotated.save(out_dir + "/annotated.mpk");
    std::printf("artifact: %s/annotated.mpk\n", out_dir.c_str());
  }
  return 0;
}

int cmd_convert_hmsa(const std::string& in, const std::string& out_base) {
  auto file = emd::File::load(in);
  if (!file) {
    std::fprintf(stderr, "error: %s\n", file.error().message.c_str());
    return 1;
  }
  if (auto st = emd::save_hmsa(file.value(), out_base); !st) {
    std::fprintf(stderr, "error: %s\n", st.error().message.c_str());
    return 1;
  }
  std::printf("wrote %s.xml + %s.hmsa\n", out_base.c_str(), out_base.c_str());
  return 0;
}

int cmd_convert_emd(const std::string& in_base, const std::string& out) {
  auto file = emd::load_hmsa(in_base);
  if (!file) {
    std::fprintf(stderr, "error: %s\n", file.error().message.c_str());
    return 1;
  }
  if (auto st = file.value().save(out); !st) {
    std::fprintf(stderr, "error: %s\n", st.error().message.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_compress(const std::string& path, const std::string& codec_name) {
  auto data = util::read_file(path);
  if (!data) {
    std::fprintf(stderr, "error: %s\n", data.error().message.c_str());
    return 1;
  }
  const auto& registry = compress::CodecRegistry::standard();
  for (const auto& name : registry.names()) {
    if (!codec_name.empty() && name != codec_name) continue;
    const auto* codec = registry.find(name);
    auto packed = codec->compress(data.value());
    std::printf("%-10s %s -> %s (%.2fx)\n", name.c_str(),
                util::human_bytes(static_cast<double>(data.value().size())).c_str(),
                util::human_bytes(static_cast<double>(packed.size())).c_str(),
                packed.empty() ? 0.0
                               : static_cast<double>(data.value().size()) /
                                     static_cast<double>(packed.size()));
  }
  return 0;
}

int cmd_campaign(const std::string& kind, double duration_s, double period_s) {
  core::FacilityConfig fc;
  fc.artifact_dir = "picoflow-cli-artifacts";
  core::CampaignConfig cfg;
  if (kind == "hyper") {
    cfg.use_case = core::UseCase::Hyperspectral;
    cfg.file_bytes = 91 * 1000 * 1000;
    cfg.start_period_s = period_s > 0 ? period_s : 30;
  } else if (kind == "spatio") {
    cfg.use_case = core::UseCase::Spatiotemporal;
    cfg.file_bytes = 1200 * 1000 * 1000;
    cfg.start_period_s = period_s > 0 ? period_s : 120;
    fc.cost.provision_delay_s = 35.0;
  } else {
    return usage();
  }
  cfg.duration_s = duration_s > 0 ? duration_s : 3600;

  core::Facility facility(fc);
  core::CampaignResult result = core::run_campaign(facility, cfg);
  std::printf("%s\n", core::render_fig4(result).c_str());
  std::printf("flows: %zu in-window, %zu late, %zu failed; %.2f GB moved\n",
              result.in_window.size(), result.late.size(), result.failed,
              result.total_data_gb());
  return 0;
}

int cmd_flow_def(const std::string& kind) {
  core::FacilityConfig fc;
  fc.artifact_dir = "picoflow-cli-artifacts";
  core::Facility facility(fc);
  flow::FlowDefinition def;
  if (kind == "hyper") def = core::hyperspectral_flow(facility);
  else if (kind == "spatio") def = core::spatiotemporal_flow(facility);
  else return usage();
  std::printf("%s\n", flow::definition_to_json(def).dump(2).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  auto arg = [&](int i, const char* fallback = "") {
    return argc > i ? std::string(argv[i]) : std::string(fallback);
  };

  if (cmd == "emd-info" && argc >= 3) return cmd_emd_info(arg(2));
  if (cmd == "emd-gen" && argc >= 4) {
    return cmd_emd_gen(arg(2), arg(3),
                       argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42);
  }
  if (cmd == "analyze" && argc >= 3) return cmd_analyze(arg(2), arg(3, "."));
  if (cmd == "convert-hmsa" && argc >= 4) return cmd_convert_hmsa(arg(2), arg(3));
  if (cmd == "convert-emd" && argc >= 4) return cmd_convert_emd(arg(2), arg(3));
  if (cmd == "compress" && argc >= 3) return cmd_compress(arg(2), arg(3));
  if (cmd == "flow-def" && argc >= 3) return cmd_flow_def(arg(2));
  if (cmd == "campaign" && argc >= 3) {
    return cmd_campaign(arg(2), argc > 3 ? std::atof(argv[3]) : 0,
                        argc > 4 ? std::atof(argv[4]) : 0);
  }
  return usage();
}

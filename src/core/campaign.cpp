#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "instrument/hyperspectral_gen.hpp"
#include "instrument/spatiotemporal_gen.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/timefmt.hpp"

namespace pico::core {
namespace {
util::Logger& logger() {
  static util::Logger kLogger("campaign");
  return kLogger;
}
}  // namespace

std::string use_case_name(UseCase u) {
  switch (u) {
    case UseCase::Hyperspectral: return "hyperspectral";
    case UseCase::Spatiotemporal: return "spatiotemporal";
  }
  return "?";
}

util::SampleStats CampaignResult::runtime_stats() const {
  util::SampleStats s;
  for (const auto& f : in_window) s.add(f.timing.total_s());
  return s;
}

util::SampleStats CampaignResult::overhead_stats() const {
  // Union-based: total minus the wall-clock union of the active intervals.
  // Identical to total - active for serialized flows; stays meaningful (and
  // non-negative) when cut-through streaming overlaps steps.
  util::SampleStats s;
  for (const auto& f : in_window) {
    s.add(f.timing.total_s() - f.timing.active_union_s());
  }
  return s;
}

util::SampleStats CampaignResult::overhead_pct_stats() const {
  util::SampleStats s;
  for (const auto& f : in_window) {
    double total = f.timing.total_s();
    if (total > 0) {
      s.add(100.0 * (total - f.timing.active_union_s()) / total);
    }
  }
  return s;
}

util::SampleStats CampaignResult::overlap_stats() const {
  util::SampleStats s;
  for (const auto& f : in_window) s.add(f.timing.overlap_s());
  return s;
}

util::SampleStats CampaignResult::step_active_stats(
    const std::string& step_name) const {
  util::SampleStats s;
  for (const auto& f : in_window) {
    for (const auto& step : f.timing.steps) {
      if (step.name == step_name) s.add(step.active_s());
    }
  }
  return s;
}

util::SampleStats CampaignResult::step_lag_stats(
    const std::string& step_name) const {
  util::SampleStats s;
  for (const auto& f : in_window) {
    for (const auto& step : f.timing.steps) {
      if (step.name == step_name) s.add(step.discovery_lag_s());
    }
  }
  return s;
}

namespace {

/// Drives the drop -> watch -> launch -> sleep loop in virtual time, and —
/// when recovery is enabled — the journal/dead-letter machinery that
/// resubmits failed flows and replays state after an orchestrator crash.
struct Driver : std::enable_shared_from_this<Driver> {
  Facility* facility;
  CampaignConfig config;
  flow::FlowDefinition definition;
  CampaignResult* result;
  /// Real EMD bytes staged each cycle when config.real_payloads is set
  /// (shared: stage_real_file copies, the driver never mutates it).
  std::shared_ptr<const std::vector<uint8_t>> payload;
  int sequence = 0;
  /// Orchestrator blackout: completion notifications are lost while true;
  /// the journal replay at restart reconciles what was missed.
  bool crashed = false;

  /// Run journal: one entry per logical flow, persisted across resubmits and
  /// crashes. `settled` guards against double-recording when a replayed run
  /// is later reported again.
  struct JournalEntry {
    std::string label;
    util::Json input;
    flow::RunId current_run;
    int attempts = 0;           ///< launches so far (1 = first attempt)
    double first_launch_s = 0;
    double first_failure_s = -1;
    bool settled = false;
  };
  std::map<std::string, JournalEntry> journal;
  /// Resubmits whose delay timer fired mid-blackout; launched at restart.
  std::vector<std::string> pending_relaunch;

  void start_cycle() {
    sim::SimTime now = facility->engine().now();
    if (now.seconds() >= config.duration_s) return;  // experiment window over

    int index = sequence++;
    std::string filename = util::format(
        "%s/%s-%04d.emd", "staging", config.label_prefix.c_str(), index);

    // 1. Local staging copy (file materialization at staging_rate).
    double staging_s = static_cast<double>(config.file_bytes) /
                       facility->cost().staging_rate_Bps;
    auto self = shared_from_this();
    facility->engine().schedule_after(
        sim::Duration::from_seconds(staging_s), [self, filename, index] {
          auto st = self->payload
                        ? self->facility->stage_real_file(filename,
                                                          *self->payload)
                        : self->facility->stage_virtual_file(
                              filename, self->config.file_bytes);
          if (!st) {
            logger().error("stage failed: %s", st.error().message.c_str());
            return;
          }
          // 2. Watcher stability debounce before the flow triggers.
          self->facility->engine().schedule_after(
              sim::Duration::from_seconds(
                  self->facility->cost().watcher_debounce_s),
              [self, filename, index] { self->trigger_flow(filename, index); });
        });
  }

  void trigger_flow(const std::string& filename, int index) {
    FlowInput input;
    input.file = filename;
    input.dest = util::format("eagle/%s/%04d.emd",
                              config.label_prefix.c_str(), index);
    input.artifact_prefix = util::format("%s-%04d", config.label_prefix.c_str(), index);
    input.title = util::format("%s acquisition #%d",
                               use_case_name(config.use_case).c_str(), index);
    input.subject = util::format("%s-%04d", config.label_prefix.c_str(), index);
    input.owner = facility->user_identity();
    // Stamp acquisition time from virtual clock anchored at the campaign
    // epoch (2023-04-07T09:00Z) so portal date facets work.
    int64_t epoch = 0;
    util::parse_iso8601("2023-04-07T09:00:00Z", &epoch);
    input.acquired = util::format_iso8601(
        epoch + static_cast<int64_t>(facility->engine().now().seconds()));
    input.codec = config.codec;
    input.frames = config.frames;
    input.naive_convert = config.naive_convert;
    input.parallel_convert = config.parallel_convert;

    auto self = shared_from_this();
    JournalEntry entry;
    entry.label = input.subject;
    entry.input = input.to_json();
    entry.first_launch_s = facility->engine().now().seconds();
    journal[input.subject] = std::move(entry);
    launch(input.subject);

    // 3. Sleep the configured start period, then begin the next cycle.
    facility->engine().schedule_after(
        sim::Duration::from_seconds(config.start_period_s),
        [self] { self->start_cycle(); });
  }

  void launch(const std::string& label) {
    JournalEntry& entry = journal[label];
    ++entry.attempts;
    ++result->robustness.launches;
    auto run = facility->flows().start(definition, entry.input,
                                       facility->user_token(), label);
    if (!run) {
      logger().error("flow start failed: %s", run.error().message.c_str());
      if (!config.recovery.enabled) return;  // classic campaigns: drop it
      ++result->robustness.run_failures;
      if (entry.attempts <= config.recovery.resubmit_budget) {
        resubmit(label);
      } else {
        record_terminal(label, "", false);
      }
      return;
    }
    entry.current_run = run.value();
    attach(label, entry.current_run);
  }

  void attach(const std::string& label, const flow::RunId& id) {
    auto self = shared_from_this();
    facility->flows().on_finished(
        id, [self, label, id](const flow::RunId&, const flow::RunInfo& info) {
          // A crashed orchestrator misses the notification; the journal
          // replay at restart reconciles the run instead.
          if (self->crashed) return;
          self->settle(label, id, info.state == flow::RunState::Succeeded);
        });
  }

  void settle(const std::string& label, const flow::RunId& id, bool success) {
    JournalEntry& entry = journal[label];
    if (entry.settled) return;  // already reconciled via crash replay
    if (success) {
      record_terminal(label, id, true);
      return;
    }
    ++result->robustness.run_failures;
    if (config.recovery.enabled &&
        entry.attempts <= config.recovery.resubmit_budget) {
      resubmit(label);
    } else {
      record_terminal(label, id, false);
    }
  }

  /// Dead-letter handling: re-launch with a fresh token after an escalating
  /// delay, never sooner than the flow service's open-breaker hint.
  void resubmit(const std::string& label) {
    JournalEntry& entry = journal[label];
    if (entry.first_failure_s < 0) {
      entry.first_failure_s = facility->engine().now().seconds();
    }
    ++result->robustness.resubmits;
    // Fresh token: covers token_expiry chaos and long outages outliving the
    // original credential.
    facility->refresh_user_token();
    double delay = config.recovery.resubmit_delay_s *
                   std::pow(2.0, static_cast<double>(entry.attempts - 1));
    for (const auto& step : definition.steps) {
      delay = std::max(delay,
                       facility->flows().breaker_retry_after_s(step.provider));
    }
    logger().info("resubmitting %s (attempt %d) in %.1fs", label.c_str(),
                  entry.attempts + 1, delay);
    // The campaign ring (watchdog-exempt) keeps the dead-letter timeline a
    // postmortem correlates failed-run dumps against.
    facility->telemetry().flight.record(
        "campaign", util::LogLevel::Warn, "campaign", "resubmit",
        facility->engine().now(),
        util::Json::object({{"label", label},
                            {"attempt", entry.attempts + 1},
                            {"delay_s", delay}}));
    auto self = shared_from_this();
    facility->engine().schedule_after(
        sim::Duration::from_seconds(delay), [self, label] {
          if (self->crashed) {
            self->pending_relaunch.push_back(label);
            return;
          }
          self->launch(label);
        });
  }

  void record_terminal(const std::string& label, const flow::RunId& id,
                       bool success) {
    JournalEntry& entry = journal[label];
    entry.settled = true;
    CompletedFlow done;
    done.id = id;
    done.label = label;
    done.success = success;
    if (!id.empty()) {
      // The span tree is the source of truth: the flow service closes the
      // run/step spans (integer-ns attributes) before firing the finished
      // callback, so the timing rebuilt here is bit-identical to its own
      // bookkeeping. Facilities without telemetry fall back to the service.
      if (!flow::timing_from_spans(facility->trace(), id, &done.timing)) {
        done.timing = facility->flows().timing(id);
      }
    }
    double settled_at = id.empty() ? facility->engine().now().seconds()
                                   : done.timing.finished.seconds();
    if (!success) {
      result->failed += 1;
      ++result->robustness.lost;
    } else if (entry.first_failure_s >= 0) {
      ++result->robustness.recovered;
      result->robustness.mttr_s.add(settled_at - entry.first_failure_s);
      result->robustness.fault_overhead_s.add(
          std::max(0.0, (settled_at - entry.first_launch_s) -
                            done.timing.total_s()));
    }
    if (settled_at <= config.duration_s) {
      result->in_window.push_back(std::move(done));
    } else {
      result->late.push_back(std::move(done));
    }
  }

  // ---- orchestrator crash / journal replay ---------------------------------

  void install_crash_events() {
    auto self = shared_from_this();
    for (const auto& event : config.chaos.events) {
      if (event.kind != fault::FaultKind::OrchestratorCrash) continue;
      double down_s =
          std::max(event.duration_s, config.recovery.crash_restart_delay_s);
      facility->engine().schedule_after(
          sim::Duration::from_seconds(event.at_s), [self] {
            logger().warn("orchestrator crash: notifications blacked out");
            self->crashed = true;
            self->facility->telemetry().flight.record(
                "campaign", util::LogLevel::Warn, "campaign",
                "orchestrator-crash", self->facility->engine().now());
          });
      facility->engine().schedule_after(
          sim::Duration::from_seconds(event.at_s + down_s),
          [self] { self->restart(); });
    }
  }

  /// Restart after a crash: walk the journal and reconcile every unsettled
  /// flow against the flow service's authoritative state. Runs that finished
  /// during the blackout are recorded exactly once (success) or pushed back
  /// through the dead-letter path (failure); still-active runs keep their
  /// original callback, which works again now that `crashed` is false.
  void restart() {
    crashed = false;
    logger().warn("orchestrator restarted: replaying journal (%zu entries)",
                  journal.size());
    std::vector<std::string> to_settle_ok, to_settle_fail;
    for (auto& [label, entry] : journal) {
      if (entry.settled || entry.current_run.empty()) continue;
      const flow::RunInfo& info = facility->flows().info(entry.current_run);
      if (info.state == flow::RunState::Succeeded) {
        to_settle_ok.push_back(label);
      } else if (info.state == flow::RunState::Failed) {
        to_settle_fail.push_back(label);
      }
    }
    for (const auto& label : to_settle_ok) {
      ++result->robustness.crash_replays;
      settle(label, journal[label].current_run, true);
    }
    for (const auto& label : to_settle_fail) {
      ++result->robustness.crash_replays;
      settle(label, journal[label].current_run, false);
    }
    std::vector<std::string> relaunch;
    relaunch.swap(pending_relaunch);
    facility->telemetry().flight.record(
        "campaign", util::LogLevel::Info, "campaign", "orchestrator-restart",
        facility->engine().now(),
        util::Json::object(
            {{"replayed", static_cast<int64_t>(to_settle_ok.size() +
                                               to_settle_fail.size())},
             {"relaunched", static_cast<int64_t>(relaunch.size())}}));
    for (const auto& label : relaunch) launch(label);
  }
};

/// Synthesize the campaign's real acquisition, sized to ~config.file_bytes
/// of raw fp64 data (the EMD container adds a small metadata envelope).
/// Deterministic: fixed seeds, so repeated campaigns stage identical bytes.
std::vector<uint8_t> synthesize_payload(const CampaignConfig& config) {
  emd::MicroscopeSettings scope;
  const double target = static_cast<double>(std::max<int64_t>(
      config.file_bytes, 64 * 1024));
  if (config.use_case == UseCase::Hyperspectral) {
    instrument::HyperspectralConfig gen;
    gen.channels = 256;
    const double side =
        std::sqrt(target / (8.0 * static_cast<double>(gen.channels)));
    gen.height = gen.width = static_cast<size_t>(std::max(16.0, side));
    gen.dose = 120;
    gen.background = {{"C", 0.8}, {"O", 0.2}};
    const double c = static_cast<double>(gen.height) / 2.0;
    gen.particles = {{c, c, std::max(3.0, c / 4.0), {{"Au", 0.9}, {"C", 0.1}}}};
    gen.seed = 20230407;
    auto sample = instrument::generate_hyperspectral(gen);
    return instrument::to_emd(sample, gen, scope, "2023-04-07T09:00:00Z",
                              "gold on carbon film", "operator@anl.gov")
        .to_bytes();
  }
  instrument::SpatiotemporalConfig gen;
  gen.height = gen.width = 128;
  const double frames = target / (8.0 * 128.0 * 128.0);
  gen.frames = static_cast<size_t>(std::clamp(frames, 8.0, 4096.0));
  gen.particle_count = 6;
  gen.seed = 20230408;
  auto sample = instrument::generate_spatiotemporal(gen);
  return instrument::to_emd(sample, gen, scope, "2023-04-08T09:00:00Z",
                            "gold nanoparticles", "operator@anl.gov")
      .to_bytes();
}

}  // namespace

CampaignResult run_campaign(Facility& facility, const CampaignConfig& config) {
  CampaignResult result;
  result.config = config;

  auto driver = std::make_shared<Driver>();
  driver->facility = &facility;
  driver->config = config;
  if (config.real_payloads) {
    auto bytes = synthesize_payload(config);
    driver->config.file_bytes = static_cast<int64_t>(bytes.size());
    result.config.file_bytes = driver->config.file_bytes;
    driver->payload =
        std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
  }
  driver->definition =
      config.use_case == UseCase::Hyperspectral
          ? (config.streaming_direct ? hyperspectral_stream_flow(facility)
                                     : hyperspectral_flow(facility))
          : (config.streaming_direct ? spatiotemporal_stream_flow(facility)
                                     : spatiotemporal_flow(facility));
  driver->result = &result;

  // Per-step timeout overrides (chaos campaigns abandon stuck actions) and
  // best-effort flags (what a federation broker may shed under brownout).
  for (auto& step : driver->definition.steps) {
    auto it = config.step_timeouts.find(step.name);
    if (it != config.step_timeouts.end()) step.timeout_s = it->second;
    if (std::find(config.optional_steps.begin(), config.optional_steps.end(),
                  step.name) != config.optional_steps.end()) {
      step.optional = true;
    }
  }

  // Cut-through streaming: flag the requested steps, and give the Transfer
  // step ahead of each streaming step a chunk size so it exposes progress.
  auto& steps = driver->definition.steps;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (std::find(config.streaming_steps.begin(), config.streaming_steps.end(),
                  steps[i].name) == config.streaming_steps.end()) {
      continue;
    }
    steps[i].streaming = true;
    if (i > 0 && steps[i - 1].provider == "transfer" &&
        config.streaming_chunk_bytes > 0) {
      steps[i - 1].params["streaming_chunk_bytes"] =
          config.streaming_chunk_bytes;
    }
  }

  if (!config.chaos.empty()) {
    auto injector = facility.install_faults(config.chaos);
    if (!injector) {
      logger().error("chaos install failed: %s",
                     injector.error().message.c_str());
    }
    driver->install_crash_events();
  }

  if (config.scrub_interval_s > 0) {
    storage::ScrubberConfig scrub;
    scrub.interval_s = config.scrub_interval_s;
    scrub.horizon_s = config.duration_s;
    facility.start_scrubber(scrub);
  }

  // Health plane: latency objective feeds flow_runs_slow_total (the SLO
  // engine's exact burn signal) and the periodic monitor snapshots the
  // registry until the experiment window closes.
  if (config.slow_run_threshold_s > 0) {
    facility.flows().set_slow_run_threshold(config.slow_run_threshold_s);
  }
  if (config.health_monitor && facility.health().config().enabled) {
    facility.health().start(config.duration_s);
  }

  // Campaign root span: every flow run started while the scope is active
  // (including fault-injector events, which attach to the current context)
  // parents to it, so the exported trace nests campaign -> run -> step ->
  // provider attempt.
  telemetry::Tracer& tracer = facility.telemetry().tracer;
  sim::SimTime campaign_start = facility.engine().now();
  uint64_t cancelled_at_start = facility.engine().cancelled_total();
  uint64_t campaign_span =
      tracer.open("campaign", config.label_prefix, /*parent=*/0);
  {
    telemetry::Tracer::Scope scope(tracer, campaign_span);
    facility.engine().schedule_at(sim::SimTime::zero(),
                                  [driver] { driver->start_cycle(); });
    facility.engine().run();
  }

  // Robustness accounting sourced from the services after the run.
  RobustnessStats& rb = result.robustness;
  rb.breakers = facility.flows().breaker_snapshots();
  for (const auto& snap : rb.breakers) rb.breaker_trips += snap.trips;
  rb.step_timeouts = facility.flows().total_timeouts();
  for (const auto& event : config.chaos.events) {
    std::string kind = fault::fault_kind_name(event.kind);
    if (!rb.downtime_s.count(kind)) {
      rb.downtime_s[kind] =
          config.chaos.downtime_s(event.kind, config.duration_s);
    }
  }

  tracer.close(campaign_span, "campaign", campaign_start,
               facility.engine().now(),
               util::Json::object({
                   {"use_case", use_case_name(config.use_case)},
                   {"label_prefix", config.label_prefix},
                   {"in_window", static_cast<int64_t>(result.in_window.size())},
                   {"late", static_cast<int64_t>(result.late.size())},
                   {"failed", static_cast<int64_t>(result.failed)},
                   {"launches", static_cast<int64_t>(rb.launches)},
                   {"resubmits", static_cast<int64_t>(rb.resubmits)},
                   {"chaos", config.chaos.name},
               }));
  telemetry::MetricsRegistry& metrics = facility.telemetry().metrics;
  metrics
      .counter("campaign_flows_total", "Flows settled per campaign, by bucket",
               {{"bucket", "in_window"}})
      .inc(static_cast<double>(result.in_window.size()));
  metrics
      .counter("campaign_flows_total", "Flows settled per campaign, by bucket",
               {{"bucket", "late"}})
      .inc(static_cast<double>(result.late.size()));
  metrics
      .counter("campaign_flows_total", "Flows settled per campaign, by bucket",
               {{"bucket", "failed"}})
      .inc(static_cast<double>(result.failed));
  metrics
      .gauge("campaign_duration_seconds",
             "Virtual length of the most recent campaign window")
      .set(config.duration_s);
  // Scheduler health: timeout timers that settled before firing feed the
  // wheel's lazy-compaction pressure; a nonzero residual depth after run()
  // drained would mean leaked (never-fired, never-cancelled) events.
  metrics
      .counter("sim_events_cancelled_total",
               "Scheduler events cancelled before firing during the campaign")
      .inc(static_cast<double>(facility.engine().cancelled_total() -
                               cancelled_at_start));
  metrics
      .gauge("sim_queue_depth",
             "Events still queued at campaign end (cancelled included)")
      .set(static_cast<double>(facility.engine().queue_depth()));

  // One closing health pass over the drained queue: the final snapshot sees
  // every terminal counter, so end-of-window SLO burn and scores are exact.
  if (config.health_monitor && facility.health().config().enabled) {
    facility.health().tick();
  }

  logger().info("%s campaign: %zu in-window flows, %zu late, %zu failed",
                use_case_name(config.use_case).c_str(),
                result.in_window.size(), result.late.size(), result.failed);
  return result;
}

}  // namespace pico::core

#include "core/campaign.hpp"

#include <memory>

#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/timefmt.hpp"

namespace pico::core {
namespace {
util::Logger& logger() {
  static util::Logger kLogger("campaign");
  return kLogger;
}
}  // namespace

std::string use_case_name(UseCase u) {
  switch (u) {
    case UseCase::Hyperspectral: return "hyperspectral";
    case UseCase::Spatiotemporal: return "spatiotemporal";
  }
  return "?";
}

util::SampleStats CampaignResult::runtime_stats() const {
  util::SampleStats s;
  for (const auto& f : in_window) s.add(f.timing.total_s());
  return s;
}

util::SampleStats CampaignResult::overhead_stats() const {
  util::SampleStats s;
  for (const auto& f : in_window) s.add(f.timing.overhead_s());
  return s;
}

util::SampleStats CampaignResult::overhead_pct_stats() const {
  util::SampleStats s;
  for (const auto& f : in_window) {
    double total = f.timing.total_s();
    if (total > 0) s.add(100.0 * f.timing.overhead_s() / total);
  }
  return s;
}

util::SampleStats CampaignResult::step_active_stats(
    const std::string& step_name) const {
  util::SampleStats s;
  for (const auto& f : in_window) {
    for (const auto& step : f.timing.steps) {
      if (step.name == step_name) s.add(step.active_s());
    }
  }
  return s;
}

util::SampleStats CampaignResult::step_lag_stats(
    const std::string& step_name) const {
  util::SampleStats s;
  for (const auto& f : in_window) {
    for (const auto& step : f.timing.steps) {
      if (step.name == step_name) s.add(step.discovery_lag_s());
    }
  }
  return s;
}

namespace {

/// Drives the drop -> watch -> launch -> sleep loop in virtual time.
struct Driver : std::enable_shared_from_this<Driver> {
  Facility* facility;
  CampaignConfig config;
  flow::FlowDefinition definition;
  CampaignResult* result;
  int sequence = 0;

  void start_cycle() {
    sim::SimTime now = facility->engine().now();
    if (now.seconds() >= config.duration_s) return;  // experiment window over

    int index = sequence++;
    std::string filename = util::format(
        "%s/%s-%04d.emd", "staging", config.label_prefix.c_str(), index);

    // 1. Local staging copy (file materialization at staging_rate).
    double staging_s = static_cast<double>(config.file_bytes) /
                       facility->cost().staging_rate_Bps;
    auto self = shared_from_this();
    facility->engine().schedule_after(
        sim::Duration::from_seconds(staging_s), [self, filename, index] {
          auto st = self->facility->stage_virtual_file(filename,
                                                       self->config.file_bytes);
          if (!st) {
            logger().error("stage failed: %s", st.error().message.c_str());
            return;
          }
          // 2. Watcher stability debounce before the flow triggers.
          self->facility->engine().schedule_after(
              sim::Duration::from_seconds(
                  self->facility->cost().watcher_debounce_s),
              [self, filename, index] { self->trigger_flow(filename, index); });
        });
  }

  void trigger_flow(const std::string& filename, int index) {
    FlowInput input;
    input.file = filename;
    input.dest = util::format("eagle/%s/%04d.emd",
                              config.label_prefix.c_str(), index);
    input.artifact_prefix = util::format("%s-%04d", config.label_prefix.c_str(), index);
    input.title = util::format("%s acquisition #%d",
                               use_case_name(config.use_case).c_str(), index);
    input.subject = util::format("%s-%04d", config.label_prefix.c_str(), index);
    input.owner = facility->user_identity();
    // Stamp acquisition time from virtual clock anchored at the campaign
    // epoch (2023-04-07T09:00Z) so portal date facets work.
    int64_t epoch = 0;
    util::parse_iso8601("2023-04-07T09:00:00Z", &epoch);
    input.acquired = util::format_iso8601(
        epoch + static_cast<int64_t>(facility->engine().now().seconds()));
    input.codec = config.codec;
    input.frames = config.frames;
    input.naive_convert = config.naive_convert;

    auto self = shared_from_this();
    auto run = facility->flows().start(definition, input.to_json(),
                                       facility->user_token(), input.subject);
    if (!run) {
      logger().error("flow start failed: %s", run.error().message.c_str());
    } else {
      flow::RunId id = run.value();
      facility->flows().on_finished(
          id, [self, id](const flow::RunId&, const flow::RunInfo& info) {
            CompletedFlow done;
            done.id = id;
            done.label = info.label;
            done.success = info.state == flow::RunState::Succeeded;
            done.timing = self->facility->flows().timing(id);
            if (!done.success) self->result->failed += 1;
            if (done.timing.finished.seconds() <= self->config.duration_s) {
              self->result->in_window.push_back(std::move(done));
            } else {
              self->result->late.push_back(std::move(done));
            }
          });
    }

    // 3. Sleep the configured start period, then begin the next cycle.
    facility->engine().schedule_after(
        sim::Duration::from_seconds(config.start_period_s),
        [self] { self->start_cycle(); });
  }
};

}  // namespace

CampaignResult run_campaign(Facility& facility, const CampaignConfig& config) {
  CampaignResult result;
  result.config = config;

  auto driver = std::make_shared<Driver>();
  driver->facility = &facility;
  driver->config = config;
  driver->definition = config.use_case == UseCase::Hyperspectral
                           ? hyperspectral_flow(facility)
                           : spatiotemporal_flow(facility);
  driver->result = &result;

  facility.engine().schedule_at(sim::SimTime::zero(),
                                [driver] { driver->start_cycle(); });
  facility.engine().run();

  logger().info("%s campaign: %zu in-window flows, %zu late, %zu failed",
                use_case_name(config.use_case).c_str(),
                result.in_window.size(), result.late.size(), result.failed);
  return result;
}

}  // namespace pico::core

#include "core/flows.hpp"

namespace pico::core {

using util::Json;

Json FlowInput::to_json() const {
  return Json::object({
      {"file", file},
      {"dest", dest},
      {"artifact_prefix", artifact_prefix},
      {"title", title},
      {"subject", subject},
      {"owner", owner},
      {"acquired", acquired},
      {"codec", codec},
      {"frames", frames},
      {"naive_convert", naive_convert},
      {"parallel_convert", parallel_convert},
  });
}

namespace {

flow::ActionState transfer_step() {
  flow::ActionState step;
  step.name = "Transfer";
  step.provider = "transfer";
  step.max_retries = 2;
  step.params = Json::object({
      {"src_endpoint", Facility::kUserEndpoint},
      {"dst_endpoint", Facility::kEagleEndpoint},
      {"files", Json::array({Json::object({
                    {"src", "$.input.file"},
                    {"dst", "$.input.dest"},
                })})},
      {"codec", "$.input.codec"},
  });
  return step;
}

flow::ActionState stream_step() {
  flow::ActionState step;
  step.name = "Stream";
  step.provider = "stream";
  step.max_retries = 2;
  step.params = Json::object({
      {"src_path", "$.input.file"},
      {"dst_path", "$.input.dest"},
  });
  return step;
}

flow::ActionState publish_step() {
  flow::ActionState step;
  step.name = "Publish";
  step.provider = "search-ingest";
  step.max_retries = 1;
  step.params = Json::object({
      {"record", "$.steps.Analyze.record"},
      {"subject", "$.input.subject"},
      {"visible_to", "$.input.owner"},
  });
  return step;
}

}  // namespace

flow::FlowDefinition hyperspectral_flow(const Facility& facility) {
  flow::FlowDefinition def;
  def.name = "picoprobe-hyperspectral";
  def.steps.push_back(transfer_step());

  flow::ActionState analyze;
  analyze.name = "Analyze";
  analyze.provider = "compute";
  analyze.max_retries = 1;
  analyze.params = Json::object({
      {"endpoint", facility.polaris_endpoint()},
      {"function", facility.hyperspectral_fn()},
      {"args", Json::object({
           {"path", "$.input.dest"},
           {"artifact_prefix", "$.input.artifact_prefix"},
           {"title", "$.input.title"},
           {"acquired", "$.input.acquired"},
       })},
  });
  def.steps.push_back(std::move(analyze));
  def.steps.push_back(publish_step());
  return def;
}

flow::FlowDefinition hyperspectral_stream_flow(const Facility& facility) {
  flow::FlowDefinition def = hyperspectral_flow(facility);
  def.name = "picoprobe-hyperspectral-stream";
  def.steps[0] = stream_step();
  return def;
}

flow::FlowDefinition spatiotemporal_flow(const Facility& facility) {
  flow::FlowDefinition def;
  def.name = "picoprobe-spatiotemporal";
  def.steps.push_back(transfer_step());

  flow::ActionState analyze;
  analyze.name = "Analyze";
  analyze.provider = "compute";
  analyze.max_retries = 1;
  analyze.params = Json::object({
      {"endpoint", facility.polaris_endpoint()},
      {"function", facility.spatiotemporal_fn()},
      {"args", Json::object({
           {"path", "$.input.dest"},
           {"artifact_prefix", "$.input.artifact_prefix"},
           {"title", "$.input.title"},
           {"acquired", "$.input.acquired"},
           {"frames", "$.input.frames"},
           {"naive_convert", "$.input.naive_convert"},
           {"parallel_convert", "$.input.parallel_convert"},
       })},
  });
  def.steps.push_back(std::move(analyze));
  def.steps.push_back(publish_step());
  return def;
}

flow::FlowDefinition spatiotemporal_stream_flow(const Facility& facility) {
  flow::FlowDefinition def = spatiotemporal_flow(facility);
  def.name = "picoprobe-spatiotemporal-stream";
  def.steps[0] = stream_step();
  return def;
}

}  // namespace pico::core

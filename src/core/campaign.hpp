#pragma once
// The paper's controlled 1-hour evaluation (Sec. 3.3): an application
// periodically copies a file into the transfer directory of the PicoProbe
// user computer to simulate data generation; each new file triggers a flow;
// flows execute concurrently. The driver reproduces that loop in virtual
// time: local staging copy -> watcher stability debounce -> flow launch ->
// sleep(start period) -> next copy.
#include <map>
#include <string>
#include <vector>

#include "core/facility.hpp"
#include "core/flows.hpp"
#include "fault/schedule.hpp"
#include "flow/service.hpp"
#include "util/stats.hpp"

namespace pico::core {

enum class UseCase { Hyperspectral, Spatiotemporal };

std::string use_case_name(UseCase u);

/// Campaign-level recovery: what the driver does when a flow run settles as
/// Failed. Disabled by default — the classic campaigns count every run
/// failure; chaos campaigns opt in to resubmission.
struct RecoveryConfig {
  bool enabled = false;
  /// Re-launches allowed per logical flow (beyond the first attempt).
  int resubmit_budget = 2;
  /// Base delay before a resubmit; attempt k waits base * 2^(k-1), and never
  /// less than the flow service's open-breaker hint for the failed provider.
  double resubmit_delay_s = 60;
  /// Downtime after an orchestrator_crash chaos event before the driver
  /// restarts and replays its journal.
  double crash_restart_delay_s = 5;
};

struct CampaignConfig {
  UseCase use_case = UseCase::Hyperspectral;
  double start_period_s = 30;     ///< paper: 30 (hyper) / 120 (spatio)
  double duration_s = 3600;       ///< 1-hour experiment
  int64_t file_bytes = 91 * 1000 * 1000;  ///< paper: 91 MB / 1200 MB
  int64_t frames = 600;           ///< spatiotemporal frame count hint
  bool naive_convert = false;
  /// Model the whole-node parallel conversion in the flow's compute cost
  /// (the A4 "compute function uses the whole node" what-if).
  bool parallel_convert = false;
  std::string codec;              ///< optional transfer compression (A3)
  std::string label_prefix = "campaign";
  /// Chaos schedule installed on the facility before the run (empty = none).
  fault::FaultSchedule chaos;
  RecoveryConfig recovery;
  /// Per-step timeout overrides applied to the flow definition by step name
  /// (e.g. {"Transfer", 900}). Absent steps keep timeout 0 (none).
  std::map<std::string, double> step_timeouts;
  /// Steps (by name) marked `streaming` on the definition: each begins
  /// cut-through once the preceding step's first chunk lands. Requires the
  /// flow service to run in Events completion mode to have any effect.
  std::vector<std::string> streaming_steps;
  /// Steps (by name) marked `optional` on the definition — what a federation
  /// broker sheds under brownout before rejecting admissions. The facility's
  /// own orchestrator always runs them; only a broker strips them.
  std::vector<std::string> optional_steps;
  /// Chunk size injected into a Transfer step's params when the step after it
  /// streams (progress granularity of the cut-through pipeline).
  int64_t streaming_chunk_bytes = 8 * 1000 * 1000;
  /// Use the streaming_direct flow variants: the Transfer step is replaced by
  /// a Stream step that pushes detector frames straight into Polaris node
  /// memory, degrading to spill/fallback under frame chaos (DESIGN.md §13).
  bool streaming_direct = false;
  /// Periodic at-rest integrity scrub of Eagle during the campaign: every
  /// interval the scrubber walks delivered objects, quarantines corrupt
  /// copies, and requests provenance-driven repair re-transfers. 0 = no
  /// scrubbing. Passes stop at duration_s so the event queue drains.
  double scrub_interval_s = 0;
  /// SLO latency objective applied to every flow run: runs slower than this
  /// increment flow_runs_slow_total (the health plane's latency burn signal)
  /// and stamp an "slo-slow" flight event. 0 = no objective.
  double slow_run_threshold_s = 0;
  /// Arm the facility's periodic HealthMonitor for the campaign window
  /// (snapshots, SLO burn, watchdogs, anomaly detection — DESIGN.md §15).
  bool health_monitor = true;
  /// Stage real synthesized EMD payloads (instrument generators) instead of
  /// size-only virtual files, so every flow exercises the actual data-plane
  /// kernels: EMD parse, axis reductions, peak finding / particle tracking,
  /// artifact rendering. One payload sized to ~file_bytes is synthesized per
  /// campaign and re-staged each cycle; file_bytes is then snapped to the
  /// payload's true size so staging/transfer costs stay consistent.
  /// Wall-clock benches use this so overhead ratios are measured against
  /// campaigns doing real work, not skeleton event shuffling.
  bool real_payloads = false;
};

struct CompletedFlow {
  flow::RunId id;
  std::string label;
  bool success = false;
  flow::RunTiming timing;
};

/// Fault-and-recovery accounting for one campaign (the robustness report).
struct RobustnessStats {
  size_t launches = 0;      ///< flow starts, including resubmits
  size_t run_failures = 0;  ///< individual run failures observed
  size_t resubmits = 0;     ///< failed runs re-launched with a fresh token
  size_t recovered = 0;     ///< logical flows that failed, then succeeded
  size_t lost = 0;          ///< logical flows dead-lettered (budget exhausted)
  size_t crash_replays = 0; ///< runs reconciled from the journal post-crash
  int breaker_trips = 0;
  uint64_t step_timeouts = 0;
  /// Mean-time-to-recovery: first failure -> eventual success, per recovered
  /// flow.
  util::SampleStats mttr_s;
  /// Fault-attributed overhead: (settled - first launch) minus the successful
  /// attempt's own runtime, per recovered flow. The wasted wall-clock.
  util::SampleStats fault_overhead_s;
  std::vector<flow::BreakerSnapshot> breakers;
  /// Injected downtime per fault kind within the campaign window (merged).
  std::map<std::string, double> downtime_s;

  /// Fraction of logical flows that eventually succeeded.
  double eventual_success_pct(size_t launched_logical) const {
    if (launched_logical == 0) return 100.0;
    return 100.0 * static_cast<double>(launched_logical - lost) /
           static_cast<double>(launched_logical);
  }
};

struct CampaignResult {
  CampaignConfig config;
  /// Flows that completed within the experiment window (the paper's "total
  /// flow runs").
  std::vector<CompletedFlow> in_window;
  /// Flows that started in the window but finished after it.
  std::vector<CompletedFlow> late;
  size_t failed = 0;
  RobustnessStats robustness;

  double total_data_gb() const {
    return static_cast<double>(config.file_bytes) *
           static_cast<double>(in_window.size()) / 1e9;
  }
  util::SampleStats runtime_stats() const;
  /// Union-based overhead (total minus the wall-clock union of active
  /// intervals) — equals total - active for serialized flows, and stays
  /// non-negative when streaming overlaps steps.
  util::SampleStats overhead_stats() const;
  util::SampleStats overhead_pct_stats() const;
  /// Wall time saved by cut-through overlap per flow (0 when serialized).
  util::SampleStats overlap_stats() const;
  /// Active seconds of the named step across in-window flows.
  util::SampleStats step_active_stats(const std::string& step_name) const;
  /// Poll-discovery lag of the named step (diagnostics).
  util::SampleStats step_lag_stats(const std::string& step_name) const;
};

/// Run one campaign on a facility. Runs the engine to completion.
CampaignResult run_campaign(Facility& facility, const CampaignConfig& config);

}  // namespace pico::core

#pragma once
// The paper's controlled 1-hour evaluation (Sec. 3.3): an application
// periodically copies a file into the transfer directory of the PicoProbe
// user computer to simulate data generation; each new file triggers a flow;
// flows execute concurrently. The driver reproduces that loop in virtual
// time: local staging copy -> watcher stability debounce -> flow launch ->
// sleep(start period) -> next copy.
#include <string>
#include <vector>

#include "core/facility.hpp"
#include "core/flows.hpp"
#include "flow/service.hpp"
#include "util/stats.hpp"

namespace pico::core {

enum class UseCase { Hyperspectral, Spatiotemporal };

std::string use_case_name(UseCase u);

struct CampaignConfig {
  UseCase use_case = UseCase::Hyperspectral;
  double start_period_s = 30;     ///< paper: 30 (hyper) / 120 (spatio)
  double duration_s = 3600;       ///< 1-hour experiment
  int64_t file_bytes = 91 * 1000 * 1000;  ///< paper: 91 MB / 1200 MB
  int64_t frames = 600;           ///< spatiotemporal frame count hint
  bool naive_convert = false;
  std::string codec;              ///< optional transfer compression (A3)
  std::string label_prefix = "campaign";
};

struct CompletedFlow {
  flow::RunId id;
  std::string label;
  bool success = false;
  flow::RunTiming timing;
};

struct CampaignResult {
  CampaignConfig config;
  /// Flows that completed within the experiment window (the paper's "total
  /// flow runs").
  std::vector<CompletedFlow> in_window;
  /// Flows that started in the window but finished after it.
  std::vector<CompletedFlow> late;
  size_t failed = 0;

  double total_data_gb() const {
    return static_cast<double>(config.file_bytes) *
           static_cast<double>(in_window.size()) / 1e9;
  }
  util::SampleStats runtime_stats() const;
  util::SampleStats overhead_stats() const;
  util::SampleStats overhead_pct_stats() const;
  /// Active seconds of the named step across in-window flows.
  util::SampleStats step_active_stats(const std::string& step_name) const;
  /// Poll-discovery lag of the named step (diagnostics).
  util::SampleStats step_lag_stats(const std::string& step_name) const;
};

/// Run one campaign on a facility. Runs the engine to completion.
CampaignResult run_campaign(Facility& facility, const CampaignConfig& config);

}  // namespace pico::core

#include "core/cost_model.hpp"

namespace pico::core {

util::Json CostModel::to_json() const {
  return util::Json::object({
      {"transfer_setup_mean_s", transfer_setup_mean_s},
      {"transfer_per_file_s", transfer_per_file_s},
      {"per_flow_rate_cap_bps", per_flow_rate_cap_bps},
      {"hyper_analysis_base_s", hyper_analysis_base_s},
      {"hyper_analysis_s_per_mb", hyper_analysis_s_per_mb},
      {"convert_s_per_mb", convert_s_per_mb},
      {"convert_naive_multiplier", convert_naive_multiplier},
      {"convert_parallel_speedup", convert_parallel_speedup},
      {"inference_s_per_frame", inference_s_per_frame},
      {"annotate_base_s", annotate_base_s},
      {"publication_s", publication_s},
      {"provision_delay_s", provision_delay_s},
      {"env_warmup_s", env_warmup_s},
      {"staging_rate_Bps", staging_rate_Bps},
      {"watcher_debounce_s", watcher_debounce_s},
  });
}

}  // namespace pico::core

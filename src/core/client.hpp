#pragma once
// The instrument-side client application (paper Sec. 2.2.1): watches the
// user workstation's transfer directory, classifies each new EMD file from
// its header (hyperspectral vs spatiotemporal), stages it, and launches the
// matching flow — with the crash-safe checkpoint that prevents duplicate
// flows after a reboot. This is the reusable core behind the live_watcher
// example; it runs against the real filesystem while the facility executes
// in virtual time.
#include <string>
#include <vector>

#include "core/facility.hpp"
#include "core/flows.hpp"
#include "emd/schema.hpp"
#include "watcher/watcher.hpp"

namespace pico::core {

struct ClientConfig {
  std::string watch_dir;
  std::string checkpoint_path;  ///< defaults to <watch_dir>/.picoflow-checkpoint
  int stable_scans = 2;
  /// Destination prefixes for staged/transferred objects.
  std::string staging_prefix = "staging/";
  std::string eagle_prefix = "eagle/";
  /// Record owner; empty = public records.
  std::string owner;
};

/// Outcome of one launched flow.
struct LaunchedFlow {
  flow::RunId run;
  std::string subject;
  std::string source_path;
  emd::SignalKind kind = emd::SignalKind::Hyperspectral;
};

class TransferClient {
 public:
  TransferClient(Facility* facility, ClientConfig config);

  /// Load the checkpoint journal. Call once before polling.
  util::Status init();

  /// One watcher pass: every new stable .emd file is classified, staged and
  /// launched. Unreadable or unclassifiable files are recorded in errors()
  /// and skipped (they stay checkpointed, so one poisoned file cannot wedge
  /// the campaign — the paper's fault-tolerance goal).
  std::vector<LaunchedFlow> poll_once();

  /// Drain the facility's virtual time (convenience for callers that want
  /// each poll's flows to settle before the next).
  void drain() { facility_->engine().run(); }

  size_t processed_count() const { return checkpoint_.size(); }
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  util::Result<LaunchedFlow> launch_for_file(const watcher::FileEvent& event);

  Facility* facility_;
  ClientConfig config_;
  watcher::Checkpoint checkpoint_;
  watcher::DirectoryWatcher watcher_;
  std::vector<std::string> errors_;
  int sequence_ = 0;
};

}  // namespace pico::core

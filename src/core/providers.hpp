#pragma once
// Action providers: adapters that let the flow engine drive the facility
// services (Gladier's Transfer/Compute/Search tool wrappers).
#include <map>
#include <string>

#include "compute/service.hpp"
#include "flow/service.hpp"
#include "search/index.hpp"
#include "telemetry/telemetry.hpp"
#include "transfer/service.hpp"
#include "transfer/stream.hpp"

namespace pico::core {

/// Wraps TransferService. Params:
///   { "src_endpoint": str, "dst_endpoint": str,
///     "files": [{"src": str, "dst": str}, ...],
///     "codec": str (optional), "assumed_virtual_ratio": num (optional),
///     "streaming_chunk_bytes": int (optional; chunked cut-through mode) }
/// Output: { "bytes": int, "wire_bytes": int, "files": int }
class TransferProvider final : public flow::ActionProvider {
 public:
  explicit TransferProvider(transfer::TransferService* service)
      : service_(service) {}
  std::string name() const override { return "transfer"; }
  util::Result<flow::ActionHandle> start(const util::Json& params,
                                         const auth::Token& token) override;
  flow::ActionPollResult poll(const flow::ActionHandle& handle) override;
  bool subscribe(const flow::ActionHandle& handle,
                 std::function<void()> callback) override;
  bool subscribe_progress(const flow::ActionHandle& handle,
                          std::function<void(int64_t)> callback) override;

 private:
  transfer::TransferService* service_;
};

/// Wraps StreamService (direct detector→compute frame streaming). Params:
///   { "src_path": str, "dst_path": str }
/// Output: { "bytes": int, "frames": int, "retransmits": int, "spills": int,
///           "spilled_bytes": int, "fallback": bool, "mode": str,
///           "path": str }
class StreamProvider final : public flow::ActionProvider {
 public:
  explicit StreamProvider(transfer::StreamService* service)
      : service_(service) {}
  std::string name() const override { return "stream"; }
  util::Result<flow::ActionHandle> start(const util::Json& params,
                                         const auth::Token& token) override;
  flow::ActionPollResult poll(const flow::ActionHandle& handle) override;
  bool subscribe(const flow::ActionHandle& handle,
                 std::function<void()> callback) override;
  bool subscribe_progress(const flow::ActionHandle& handle,
                          std::function<void(int64_t)> callback) override;

 private:
  transfer::StreamService* service_;
};

/// Wraps ComputeService. Params:
///   { "endpoint": str, "function": str, "args": any }
/// Output: the function's JSON result.
class ComputeProvider final : public flow::ActionProvider {
 public:
  explicit ComputeProvider(compute::ComputeService* service)
      : service_(service) {}
  std::string name() const override { return "compute"; }
  util::Result<flow::ActionHandle> start(const util::Json& params,
                                         const auth::Token& token) override;
  flow::ActionPollResult poll(const flow::ActionHandle& handle) override;
  bool subscribe(const flow::ActionHandle& handle,
                 std::function<void()> callback) override;
  bool supports_held_start() const override { return true; }
  util::Result<flow::ActionHandle> start_held(const util::Json& params,
                                              const auth::Token& token) override;
  void release(const flow::ActionHandle& handle) override;

 private:
  compute::ComputeService* service_;
};

/// Publishes a record into a Globus-Search-like index after a small virtual
/// latency (login-node JSON POST). Params:
///   { "record": object, "subject": str, "visible_to": str (optional),
///     "flow_attempt_epoch": int (injected by the flow engine) }
/// The record is schema-validated before ingest.
///
/// Exactly-once: every publish derives an idempotency key from the subject
/// plus the CRC-64 content hash of the record. A key that was already
/// claimed — by a timed-out-but-still-landing attempt, a crash replay, or a
/// dead-letter resubmission — succeeds immediately without writing, so the
/// index can never hold a duplicate or be re-written with identical content.
/// The flow attempt epoch is recorded for observability (span events carry
/// both the first writer's epoch and the suppressed one) but deliberately
/// not mixed into the key: retries of the same content *should* dedupe even
/// though their epochs differ.
class SearchIngestProvider final : public flow::ActionProvider {
 public:
  SearchIngestProvider(sim::Engine* engine, auth::AuthService* auth,
                       search::Index* index, double latency_s,
                       double jitter_s, uint64_t seed = 0x1D8ull)
      : engine_(engine),
        auth_(auth),
        index_(index),
        latency_s_(latency_s),
        jitter_s_(jitter_s),
        rng_(seed) {}
  std::string name() const override { return "search-ingest"; }
  util::Result<flow::ActionHandle> start(const util::Json& params,
                                         const auth::Token& token) override;
  flow::ActionPollResult poll(const flow::ActionHandle& handle) override;
  bool subscribe(const flow::ActionHandle& handle,
                 std::function<void()> callback) override;

  /// Attach facility telemetry: suppressed duplicates bump
  /// publish_duplicates_suppressed_total and emit span events.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  size_t applied_key_count() const { return applied_.size(); }

 private:
  struct Pending {
    flow::ActionPollResult result;
    bool done = false;
    std::function<void()> settled_cb;
  };
  sim::Engine* engine_;
  auth::AuthService* auth_;
  search::Index* index_;
  double latency_s_;
  double jitter_s_;
  util::Rng rng_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::map<std::string, Pending> pending_;
  /// Idempotency key ("subject:content-crc64") -> flow attempt epoch of the
  /// first writer. Claimed at start, so even two concurrent in-flight
  /// attempts of the same publish write once.
  std::map<std::string, int64_t> applied_;
  uint64_t next_ = 1;
};

}  // namespace pico::core

#include "core/providers.hpp"

#include "search/schema.hpp"
#include "util/crc64.hpp"
#include "util/strings.hpp"

namespace pico::core {

using flow::ActionHandle;
using flow::ActionPollResult;
using flow::ActionStatus;
using util::Json;

// ---- TransferProvider -----------------------------------------------------

util::Result<ActionHandle> TransferProvider::start(const Json& params,
                                                   const auth::Token& token) {
  transfer::TransferRequest request;
  request.src_endpoint = params.at("src_endpoint").as_string();
  request.dst_endpoint = params.at("dst_endpoint").as_string();
  for (const auto& f : params.at("files").as_array()) {
    request.files.push_back(transfer::FileSpec{f.at("src").as_string(),
                                               f.at("dst").as_string()});
  }
  request.codec = params.at("codec").as_string("");
  request.assumed_virtual_ratio =
      params.at("assumed_virtual_ratio").as_double(1.0);
  request.streaming_chunk_bytes =
      params.at("streaming_chunk_bytes").as_int(0);
  auto task = service_->submit(request, token);
  if (!task) return util::Result<ActionHandle>::err(task.error());
  return util::Result<ActionHandle>::ok(task.value());
}

ActionPollResult TransferProvider::poll(const ActionHandle& handle) {
  transfer::TaskInfo info = service_->status(handle);
  ActionPollResult out;
  // Token = task state plus the byte-progress quartile. The real Transfer
  // API exposes a live `bytes_transferred` counter, so a poller observes
  // coarse progress between polls and Flows restarts its backoff on each
  // observed change — bounding discovery lag on a long transfer to roughly a
  // quarter of its duration. Without the byte component the doubling backoff
  // would overshoot the paper's measured overhead on the 1200 MB campaign.
  out.progress_token = transfer::task_state_name(info.state);
  if (info.state == transfer::TaskState::Active && info.bytes_total > 0) {
    int64_t quartile = 4 * info.bytes_done / info.bytes_total;
    out.progress_token +=
        ":" + std::to_string(std::min<int64_t>(quartile, 3));
  }
  switch (info.state) {
    case transfer::TaskState::Pending:
    case transfer::TaskState::Active:
      out.status = ActionStatus::Active;
      break;
    case transfer::TaskState::Failed:
      out.status = ActionStatus::Failed;
      out.error = info.error;
      break;
    case transfer::TaskState::Succeeded:
      out.status = ActionStatus::Succeeded;
      // The service reports *active* time from when bytes start moving; task
      // setup (auth handshake, endpoint activation, routing) happens before
      // `started` and therefore lands in flow overhead, matching how the
      // paper separates "actively processing" time from overhead.
      out.service_started = info.started;
      out.service_completed = info.completed;
      out.output = Json::object({
          {"bytes", info.bytes_total},
          {"wire_bytes", info.wire_bytes},
          {"files", info.files_total},
          {"faults", info.faults},
          {"chunks_resumed", info.chunks_resumed},
          {"corruption_detected", info.corruption_detected},
      });
      break;
  }
  return out;
}

bool TransferProvider::subscribe(const ActionHandle& handle,
                                 std::function<void()> callback) {
  service_->on_settled(handle,
                       [cb = std::move(callback)](const transfer::TaskInfo&) {
                         cb();
                       });
  return true;
}

bool TransferProvider::subscribe_progress(const ActionHandle& handle,
                                          std::function<void(int64_t)> callback) {
  return service_->on_progress(handle, std::move(callback));
}

// ---- StreamProvider -------------------------------------------------------

util::Result<ActionHandle> StreamProvider::start(const Json& params,
                                                 const auth::Token& token) {
  transfer::StreamRequest request;
  request.src_path = params.at("src_path").as_string();
  request.dst_path = params.at("dst_path").as_string();
  auto session = service_->submit(request, token);
  if (!session) return util::Result<ActionHandle>::err(session.error());
  return util::Result<ActionHandle>::ok(session.value());
}

ActionPollResult StreamProvider::poll(const ActionHandle& handle) {
  transfer::SessionInfo info = service_->status(handle);
  ActionPollResult out;
  // Same progress-token shape as the transfer provider: state plus the
  // byte-progress quartile, so a poller's backoff restarts as frames land.
  out.progress_token = transfer::session_state_name(info.state);
  if (info.state == transfer::SessionState::Active && info.bytes_total > 0) {
    int64_t quartile = 4 * info.bytes_delivered / info.bytes_total;
    out.progress_token +=
        ":" + std::to_string(std::min<int64_t>(quartile, 3));
  }
  switch (info.state) {
    case transfer::SessionState::Pending:
    case transfer::SessionState::Active:
      out.status = ActionStatus::Active;
      break;
    case transfer::SessionState::Failed:
      out.status = ActionStatus::Failed;
      out.error = info.error;
      break;
    case transfer::SessionState::Succeeded:
      out.status = ActionStatus::Succeeded;
      out.service_started = info.started;
      out.service_completed = info.completed;
      out.output = Json::object({
          {"bytes", info.bytes_total},
          {"frames", info.frames_total},
          {"retransmits", info.retransmits},
          {"spills", info.spills},
          {"spilled_bytes", info.spilled_bytes},
          {"fallback", info.fallback},
          {"mode", info.mode},
      });
      break;
  }
  return out;
}

bool StreamProvider::subscribe(const ActionHandle& handle,
                               std::function<void()> callback) {
  service_->on_settled(
      handle,
      [cb = std::move(callback)](const transfer::SessionInfo&) { cb(); });
  return true;
}

bool StreamProvider::subscribe_progress(
    const ActionHandle& handle, std::function<void(int64_t)> callback) {
  return service_->on_progress(handle, std::move(callback));
}

// ---- ComputeProvider ------------------------------------------------------

util::Result<ActionHandle> ComputeProvider::start(const Json& params,
                                                  const auth::Token& token) {
  auto task = service_->submit(params.at("endpoint").as_string(),
                               params.at("function").as_string(),
                               params.at("args"), token);
  if (!task) return util::Result<ActionHandle>::err(task.error());
  return util::Result<ActionHandle>::ok(task.value());
}

ActionPollResult ComputeProvider::poll(const ActionHandle& handle) {
  compute::TaskInfo info = service_->status(handle);
  ActionPollResult out;
  out.progress_token = compute::task_state_name(info.state);
  switch (info.state) {
    case compute::TaskState::Pending:
    case compute::TaskState::Queued:
    case compute::TaskState::Running:
      out.status = ActionStatus::Active;
      break;
    case compute::TaskState::Failed:
      out.status = ActionStatus::Failed;
      out.error = info.error;
      break;
    case compute::TaskState::Succeeded: {
      out.status = ActionStatus::Succeeded;
      // Active = on-node execution (environment warm-up included); PBS queue
      // wait before `started` lands in flow overhead, as the paper observes
      // for first flows.
      out.service_started = info.started;
      out.service_completed = info.completed;
      auto result = service_->result(handle);
      out.output = result ? result.value() : Json();
      break;
    }
  }
  return out;
}

bool ComputeProvider::subscribe(const ActionHandle& handle,
                                std::function<void()> callback) {
  service_->on_settled(handle,
                       [cb = std::move(callback)](const compute::TaskInfo&) {
                         cb();
                       });
  return true;
}

util::Result<ActionHandle> ComputeProvider::start_held(
    const Json& params, const auth::Token& token) {
  auto task = service_->submit(params.at("endpoint").as_string(),
                               params.at("function").as_string(),
                               params.at("args"), token, /*held=*/true);
  if (!task) return util::Result<ActionHandle>::err(task.error());
  return util::Result<ActionHandle>::ok(task.value());
}

void ComputeProvider::release(const ActionHandle& handle) {
  service_->release(handle);
}

// ---- SearchIngestProvider ---------------------------------------------------

util::Result<ActionHandle> SearchIngestProvider::start(
    const Json& params, const auth::Token& token) {
  using R = util::Result<ActionHandle>;
  auto who = auth_->validate(token, "search.ingest");
  if (!who) return R::err(who.error());

  const Json& record = params.at("record");
  auto valid = search::validate_record(record);
  if (!valid) return R::err(valid.error());

  std::string subject = params.at("subject").as_string();
  if (subject.empty()) {
    subject = util::format("doc-%06llu", static_cast<unsigned long long>(next_));
  }
  int64_t epoch = params.at("flow_attempt_epoch").as_int(-1);

  ActionHandle handle =
      util::format("ingest-%06llu", static_cast<unsigned long long>(next_++));
  Pending& entry = pending_[handle];
  entry.result.service_started = engine_->now();

  // Exactly-once publication: the idempotency key is the subject plus the
  // content hash of the record. A repeat — crash replay, dead-letter
  // resubmission, or a retry racing an abandoned attempt that will still
  // land — is suppressed and reports success immediately.
  std::string idem_key = subject + ":" +
                         util::format("%016llx", static_cast<unsigned long long>(
                                                     util::crc64(record.dump())));
  auto applied = applied_.find(idem_key);
  if (applied != applied_.end()) {
    entry.done = true;
    entry.result.status = ActionStatus::Succeeded;
    entry.result.service_completed = engine_->now();
    entry.result.output = Json::object({
        {"subject", subject},
        {"index", index_->name()},
        {"deduped", true},
        {"first_epoch", applied->second},
    });
    if (telemetry_) {
      telemetry_->metrics
          .counter("publish_duplicates_suppressed_total",
                   "Search publishes suppressed by idempotency keys")
          .inc();
      if (uint64_t span = telemetry_->tracer.current()) {
        telemetry_->tracer.event(
            span, "duplicate-suppressed", engine_->now(),
            Json::object({{"subject", subject},
                          {"attempt_epoch", epoch},
                          {"first_epoch", applied->second}}));
      }
    }
    return R::ok(handle);
  }
  applied_.emplace(idem_key, epoch);

  search::Document doc;
  doc.id = subject;
  doc.content = record;
  std::string visible_to = params.at("visible_to").as_string("");
  if (!visible_to.empty()) doc.visible_to.insert(visible_to);
  doc.ingested_unix = 0;  // stamped below at virtual completion

  double latency = std::max(0.1, rng_.normal(latency_s_, jitter_s_));
  engine_->schedule_after(
      sim::Duration::from_seconds(latency),
      [this, handle, doc = std::move(doc), subject]() mutable {
        auto it = pending_.find(handle);
        if (it == pending_.end()) return;
        index_->ingest(std::move(doc));
        it->second.done = true;
        it->second.result.status = ActionStatus::Succeeded;
        it->second.result.service_completed = engine_->now();
        it->second.result.output = Json::object({
            {"subject", subject},
            {"index", index_->name()},
        });
        if (it->second.settled_cb) it->second.settled_cb();
      });
  return R::ok(handle);
}

bool SearchIngestProvider::subscribe(const ActionHandle& handle,
                                     std::function<void()> callback) {
  auto it = pending_.find(handle);
  if (it == pending_.end()) return false;
  if (it->second.done) {
    callback();
  } else {
    it->second.settled_cb = std::move(callback);
  }
  return true;
}

ActionPollResult SearchIngestProvider::poll(const ActionHandle& handle) {
  auto it = pending_.find(handle);
  if (it == pending_.end()) {
    ActionPollResult out;
    out.status = ActionStatus::Failed;
    out.error = "unknown ingest handle";
    return out;
  }
  if (!it->second.done) {
    ActionPollResult out;
    out.status = ActionStatus::Active;
    return out;
  }
  return it->second.result;
}

}  // namespace pico::core

#pragma once
// The paper's two science flows (Sec. 3.1 / 3.2), expressed as flow
// definitions over the facility's providers:
//
//   Transfer (user PC -> Eagle)  ->  Analyze (Globus Compute on Polaris)
//                                ->  Publish (Globus Search ingest)
//
// Flow input schema (all strings unless noted):
//   file            source path on the user endpoint
//   dest            destination path on Eagle
//   artifact_prefix prefix for plot artifacts written by analysis
//   title           record title
//   subject         search document id
//   owner           identity granted record visibility (optional -> public)
//   acquired        ISO-8601 fallback acquisition time for virtual files
//   codec           transfer compression codec name (optional)
//   frames          (spatiotemporal, int) frame-count hint for virtual files
//   naive_convert   (spatiotemporal, bool) use the pessimal fp64->u8 path
//   parallel_convert (spatiotemporal, bool) model the whole-node parallel
//                   conversion cost (A4 what-if; the real kernels are chosen
//                   by FacilityConfig::parallel_data_plane)
#include "core/facility.hpp"
#include "flow/service.hpp"

namespace pico::core {

flow::FlowDefinition hyperspectral_flow(const Facility& facility);
flow::FlowDefinition spatiotemporal_flow(const Facility& facility);

/// streaming_direct variants: the Transfer step is replaced by a Stream step
/// that pushes detector frames straight into Polaris node memory over the
/// frame channel (DESIGN.md §13). Analyze reads from node memory — or from
/// Eagle when the session degraded to the store-mediated fallback.
flow::FlowDefinition hyperspectral_stream_flow(const Facility& facility);
flow::FlowDefinition spatiotemporal_stream_flow(const Facility& facility);

/// Convenience builder for the standard flow input object.
struct FlowInput {
  std::string file;
  std::string dest;
  std::string artifact_prefix;
  std::string title;
  std::string subject;
  std::string owner;
  std::string acquired = "2023-04-07T12:00:00Z";
  std::string codec;
  int64_t frames = 600;
  bool naive_convert = false;
  bool parallel_convert = false;

  util::Json to_json() const;
};

}  // namespace pico::core

#include "core/report.hpp"

#include "util/strings.hpp"

namespace pico::core {

using util::format;

PaperTable1 PaperTable1::hyperspectral() {
  return PaperTable1{30, 91, 6.42, 29, 47, 181, 19.5, 49.2, 72};
}

PaperTable1 PaperTable1::spatiotemporal() {
  return PaperTable1{120, 1200, 21.72, 195, 224, 274, 45.2, 21.1, 18};
}

namespace {

std::string row(const char* metric, double h_meas, double h_paper,
                double s_meas, double s_paper, const char* fmt = "%.1f") {
  auto cell = [&](double v) { return format(fmt, v); };
  return format("%-26s | %10s | %10s | %10s | %10s\n", metric,
                cell(h_meas).c_str(), cell(h_paper).c_str(),
                cell(s_meas).c_str(), cell(s_paper).c_str());
}

}  // namespace

std::string render_table1(const CampaignResult& hyper,
                          const CampaignResult& spatio) {
  PaperTable1 ph = PaperTable1::hyperspectral();
  PaperTable1 ps = PaperTable1::spatiotemporal();

  auto hr = hyper.runtime_stats();
  auto sr = spatio.runtime_stats();
  auto ho = hyper.overhead_stats();
  auto so = spatio.overhead_stats();

  // Median overhead % as the paper reports it: median overhead over median
  // total runtime.
  double h_pct = hr.median() > 0 ? 100.0 * ho.median() / hr.median() : 0;
  double s_pct = sr.median() > 0 ? 100.0 * so.median() / sr.median() : 0;

  std::string out;
  out += "Table 1: campaign performance, measured vs paper\n";
  out += format("%-26s | %-23s | %-23s\n", "", "Hyperspectral", "Spatiotemporal");
  out += format("%-26s | %10s | %10s | %10s | %10s\n", "Metric", "measured",
                "paper", "measured", "paper");
  out += std::string(26 + 3 + 23 + 3 + 23, '-') + "\n";
  out += row("Start period (s)", hyper.config.start_period_s, ph.start_period_s,
             spatio.config.start_period_s, ps.start_period_s, "%.0f");
  out += row("Transfer volume (MB)",
             static_cast<double>(hyper.config.file_bytes) / 1e6, ph.transfer_mb,
             static_cast<double>(spatio.config.file_bytes) / 1e6,
             ps.transfer_mb, "%.0f");
  out += row("Total data transfer (GB)", hyper.total_data_gb(), ph.total_gb,
             spatio.total_data_gb(), ps.total_gb, "%.2f");
  out += row("Min flow runtime (s)", hr.min(), ph.min_runtime_s, sr.min(),
             ps.min_runtime_s, "%.0f");
  out += row("Mean flow runtime (s)", hr.mean(), ph.mean_runtime_s, sr.mean(),
             ps.mean_runtime_s, "%.0f");
  out += row("Max flow runtime (s)", hr.max(), ph.max_runtime_s, sr.max(),
             ps.max_runtime_s, "%.0f");
  out += row("Median overhead (s)", ho.median(), ph.median_overhead_s,
             so.median(), ps.median_overhead_s, "%.1f");
  out += row("Median overhead (%)", h_pct, ph.median_overhead_pct, s_pct,
             ps.median_overhead_pct, "%.1f");
  out += row("Total flow runs", static_cast<double>(hyper.in_window.size()),
             ph.total_runs, static_cast<double>(spatio.in_window.size()),
             ps.total_runs, "%.0f");
  return out;
}

std::string render_fig4(const CampaignResult& result) {
  std::string out;
  out += format("Fig. 4 (%s): itemized runtime statistics (s), n=%zu flows\n",
                use_case_name(result.config.use_case).c_str(),
                result.in_window.size());
  out += format("%-14s | %8s %8s %8s %8s %8s\n", "Component", "min", "q1",
                "median", "q3", "max");
  out += std::string(14 + 3 + 5 * 9, '-') + "\n";

  auto print_box = [&](const std::string& label, const util::SampleStats& s) {
    auto b = util::BoxStats::from(s);
    out += format("%-14s | %8.1f %8.1f %8.1f %8.1f %8.1f\n", label.c_str(),
                  b.min, b.q1, b.median, b.q3, b.max);
  };

  print_box("Transfer", result.step_active_stats("Transfer"));
  print_box("Analysis", result.step_active_stats("Analyze"));
  print_box("Publication", result.step_active_stats("Publish"));
  auto overlap = result.overlap_stats();
  if (overlap.count() > 0 && overlap.max() > 0) {
    print_box("Overlap", overlap);
  }
  print_box("Overhead", result.overhead_stats());
  print_box("Total", result.runtime_stats());

  auto pct = result.overhead_pct_stats();
  out += format("Overhead share of runtime: median %.1f%% (mean %.1f%%)\n",
                pct.median(), pct.mean());
  return out;
}

std::string flows_csv(const CampaignResult& result) {
  std::string out =
      "flow,success,total_s,active_s,overhead_s,transfer_s,analysis_s,"
      "publish_s,transfer_lag_s,analysis_lag_s,publish_lag_s\n";
  for (const auto& f : result.in_window) {
    double step_active[3] = {0, 0, 0};
    double step_lag[3] = {0, 0, 0};
    for (const auto& s : f.timing.steps) {
      int idx = s.name == "Transfer" ? 0 : s.name == "Analyze" ? 1 : 2;
      step_active[idx] = s.active_s();
      step_lag[idx] = s.discovery_lag_s();
    }
    out += format("%s,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
                  f.label.c_str(), f.success ? 1 : 0, f.timing.total_s(),
                  f.timing.active_s(), f.timing.overhead_s(), step_active[0],
                  step_active[1], step_active[2], step_lag[0], step_lag[1],
                  step_lag[2]);
  }
  return out;
}

std::string render_robustness(const CampaignResult& result) {
  const RobustnessStats& rb = result.robustness;
  size_t logical = result.in_window.size() + result.late.size();
  std::string out;
  out += format("Robustness report (%s campaign, chaos '%s')\n",
                use_case_name(result.config.use_case).c_str(),
                result.config.chaos.name.c_str());
  out += std::string(60, '-') + "\n";

  out += "Injected downtime (merged windows, within campaign):\n";
  if (rb.downtime_s.empty()) {
    out += "  none\n";
  } else {
    for (const auto& [kind, down] : rb.downtime_s) {
      double avail =
          result.config.duration_s > 0
              ? 100.0 * (1.0 - down / result.config.duration_s)
              : 100.0;
      out += format("  %-20s %8.1f s  (availability %5.1f%%)\n", kind.c_str(),
                    down, avail);
    }
  }

  out += format("Flows: %zu logical, %zu launches (%zu resubmits)\n", logical,
                rb.launches, rb.resubmits);
  out += format("  eventually succeeded: %zu/%zu (%.1f%%)\n", logical - rb.lost,
                logical, rb.eventual_success_pct(logical));
  out += format("  recovered after failure: %zu   lost (dead-lettered): %zu\n",
                rb.recovered, rb.lost);
  out += format("  run failures observed: %zu   crash replays: %zu\n",
                rb.run_failures, rb.crash_replays);

  if (rb.mttr_s.count() > 0) {
    out += format("MTTR (first failure -> success): mean %.1f s, median %.1f s,"
                  " max %.1f s (n=%zu)\n",
                  rb.mttr_s.mean(), rb.mttr_s.median(), rb.mttr_s.max(),
                  rb.mttr_s.count());
  } else {
    out += "MTTR: n/a (no recovered flows)\n";
  }
  if (rb.fault_overhead_s.count() > 0) {
    out += format("Fault-attributed overhead per recovered flow: mean %.1f s,"
                  " max %.1f s\n",
                  rb.fault_overhead_s.mean(), rb.fault_overhead_s.max());
  }

  out += format("Circuit breakers: %d trips, %llu step timeouts\n",
                rb.breaker_trips,
                static_cast<unsigned long long>(rb.step_timeouts));
  for (const auto& snap : rb.breakers) {
    out += format("  %-14s trips=%-3d consecutive_failures=%-3d state=%s\n",
                  snap.provider.c_str(), snap.trips, snap.consecutive_failures,
                  snap.state.c_str());
  }

  // Fig. 4-style decomposition of the surviving flows, so the fault run can
  // be compared directly with a fault-free campaign.
  auto runtime = result.runtime_stats();
  auto overhead = result.overhead_stats();
  if (runtime.count() > 0) {
    out += format("Surviving-flow runtime: mean %.1f s (overhead mean %.1f s,"
                  " %.1f%% of runtime)\n",
                  runtime.mean(), overhead.mean(),
                  runtime.mean() > 0 ? 100.0 * overhead.mean() / runtime.mean()
                                     : 0.0);
    out += format("  runtime quantiles: %s\n",
                  util::Quantiles::from(runtime).to_string().c_str());
  }
  return out;
}

}  // namespace pico::core

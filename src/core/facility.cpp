#include "core/facility.hpp"

#include "analysis/hyperspectral.hpp"
#include "analysis/metadata.hpp"
#include "analysis/plot.hpp"
#include "emd/schema.hpp"
#include "search/schema.hpp"
#include "tensor/ops.hpp"
#include "util/bytes.hpp"
#include "util/threadpool.hpp"
#include "util/crc64.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "video/convert.hpp"
#include "video/mpk.hpp"
#include "vision/detect.hpp"
#include "vision/track.hpp"

namespace pico::core {

using util::Json;

Facility::Facility(FacilityConfig config)
    : Facility(std::move(config), nullptr) {}

Facility::Facility(FacilityConfig config, sim::Engine* shared_engine)
    : config_(std::move(config)),
      owned_engine_(shared_engine ? nullptr : std::make_unique<sim::Engine>()),
      engine_(shared_engine ? shared_engine : owned_engine_.get()),
      user_store_("picoprobe-staging", config_.user_store_capacity),
      eagle_("eagle", config_.eagle_capacity),
      node_memory_("polaris-nodemem", config_.node_memory_capacity),
      index_("picoprobe-experiments"),
      cost_rng_(config_.seed ^ 0xC057ull) {
  build_topology();
  network_ = std::make_unique<net::Network>(engine_, &topo_);

  transfer::TransferConfig tcfg;
  tcfg.setup_mean_s = config_.cost.transfer_setup_mean_s;
  tcfg.setup_jitter_s = config_.cost.transfer_setup_jitter_s;
  tcfg.per_file_overhead_s = config_.cost.transfer_per_file_s;
  tcfg.fault_prob = config_.transfer_fault_prob;
  tcfg.max_retries = config_.transfer_max_retries;
  tcfg.per_flow_rate_cap_bps = config_.cost.per_flow_rate_cap_bps;
  transfer_ = std::make_unique<transfer::TransferService>(
      engine_, network_.get(), &auth_, tcfg, config_.seed ^ 0x7F1, &trace_);
  transfer_->register_endpoint(kUserEndpoint, user_node_, &user_store_);
  transfer_->register_endpoint(kEagleEndpoint, eagle_node_, &eagle_);

  // Direct detector→compute streaming: frames leave the user workstation and
  // land in Polaris node memory; spills and whole-flow fallbacks reuse the
  // verified Eagle landing path (DESIGN.md §13).
  transfer::StreamService::Wiring wiring;
  wiring.src_node = user_node_;
  wiring.src_store = &user_store_;
  wiring.dst_node = polaris_node_;
  wiring.dst_store = &node_memory_;
  wiring.store_node = eagle_node_;
  wiring.src_endpoint = kUserEndpoint;
  wiring.store_endpoint = kEagleEndpoint;
  stream_ = std::make_unique<transfer::StreamService>(
      engine_, network_.get(), &auth_, transfer_.get(), config_.stream,
      wiring, config_.seed ^ 0x57A3);

  hpcsim::ClusterConfig ccfg;
  ccfg.name = "polaris";
  ccfg.node_count = config_.polaris_nodes;
  ccfg.provision_delay_s = config_.cost.provision_delay_s;
  ccfg.provision_jitter_s = config_.cost.provision_jitter_s;
  pbs_ = std::make_unique<hpcsim::PbsScheduler>(engine_, ccfg,
                                                config_.seed ^ 0x9B5);

  compute_ = std::make_unique<compute::ComputeService>(
      engine_, &auth_, config_.seed ^ 0xC03, &trace_);
  compute::EndpointConfig ecfg;
  ecfg.name = "polaris";
  ecfg.scheduler = pbs_.get();
  ecfg.max_blocks = config_.compute_max_blocks;
  ecfg.env_warmup_s = config_.cost.env_warmup_s;
  ecfg.env_warmup_jitter_s = config_.cost.env_warmup_jitter_s;
  ecfg.warm_idle_timeout_s = config_.cost.warm_idle_timeout_s;
  ecfg.node_failure_prob = config_.compute_node_failure_prob;
  polaris_ep_ = compute_->register_endpoint(ecfg);

  flows_ = std::make_unique<flow::FlowService>(
      engine_, &auth_, config_.flow, config_.seed ^ 0xF70, &trace_);
  transfer_provider_ = std::make_unique<TransferProvider>(transfer_.get());
  stream_provider_ = std::make_unique<StreamProvider>(stream_.get());
  compute_provider_ = std::make_unique<ComputeProvider>(compute_.get());
  search_provider_ = std::make_unique<SearchIngestProvider>(
      engine_, &auth_, &index_, config_.cost.publication_s,
      config_.cost.publication_jitter_s, config_.seed ^ 0x5E4);
  flows_->register_provider(transfer_provider_.get());
  flows_->register_provider(stream_provider_.get());
  flows_->register_provider(compute_provider_.get());
  flows_->register_provider(search_provider_.get());

  // Thread telemetry through every instrumented service: one tracer (sinking
  // into trace_) and one metrics registry for the whole facility.
  transfer_->set_telemetry(&telemetry_);
  stream_->set_telemetry(&telemetry_);
  compute_->set_telemetry(&telemetry_);
  flows_->set_telemetry(&telemetry_);
  search_provider_->set_telemetry(&telemetry_);
  flows_->set_site(config_.site_name);

  // Health plane: flight-ring sizing comes from the config; the periodic
  // monitor is armed here but only ticks once someone calls
  // health().start(horizon). The link probe reads this facility's topology
  // and network — the telemetry library itself cannot depend on net/.
  telemetry_.flight.configure(config_.health.flight);
  health_ = std::make_unique<telemetry::health::HealthMonitor>(
      *engine_, telemetry_, config_.health);
  health_->set_site(config_.site_name);
  health_->set_link_probe([this] {
    std::vector<telemetry::health::LinkProbe> probes;
    for (net::LinkId lid = 0;
         lid < static_cast<net::LinkId>(topo_.link_count()); ++lid) {
      const net::Link& l = topo_.link(lid);
      telemetry::health::LinkProbe p;
      p.link = l.name.empty()
                   ? util::format("link-%u", static_cast<unsigned>(lid))
                   : l.name;
      p.up = l.up;
      p.utilization = network_->average_utilization(lid);
      probes.push_back(std::move(p));
    }
    return probes;
  });

  user_identity_ = "operator@anl.gov";
  user_token_ = auth_.issue(
      user_identity_, {"transfer", "compute", "search.ingest", "flows"});

  register_functions();
}

void Facility::build_topology() {
  // userpc --1Gbps-- site switch --1Gbps uplink-- backbone --200Gbps-- eagle.
  // The switch and its uplink share the same 1 Gbps class; both appear so
  // contention can arise on either side.
  user_node_ = topo_.add_node("userpc");
  net::NodeId sw = topo_.add_node("site-switch");
  net::NodeId backbone = topo_.add_node("anl-backbone");
  eagle_node_ = topo_.add_node("eagle");
  polaris_node_ = topo_.add_node("polaris");

  user_switch_link_ =
      topo_.add_link(user_node_, sw, config_.user_switch_bps,
                     sim::Duration::from_millis(0.2), "user-switch");
  net::LinkId uplink =
      topo_.add_link(sw, backbone, config_.user_switch_bps,
                     sim::Duration::from_millis(0.3), "switch-uplink");
  backbone_link_ =
      topo_.add_link(backbone, eagle_node_, config_.backbone_bps,
                     sim::Duration::from_millis(0.5), "backbone-eagle");
  // Polaris compute hangs off the same backbone: direct-streamed frames and
  // Eagle→node backfills both cross this link.
  topo_.add_link(backbone, polaris_node_, config_.backbone_bps,
                 sim::Duration::from_millis(0.5), "backbone-polaris");
  (void)uplink;
}

const auth::Token& Facility::refresh_user_token() {
  // A still-valid credential is kept: revoking it here would strand every
  // concurrent run that captured it at launch, turning one resubmit into a
  // facility-wide failure cascade. A replacement is minted only once the
  // current token no longer validates (chaos token_expiry, revocation).
  if (auth_.validate(user_token_, "flows")) return user_token_;
  user_token_ = auth_.issue(
      user_identity_, {"transfer", "compute", "search.ingest", "flows"});
  return user_token_;
}

util::Result<fault::FaultInjector*> Facility::install_faults(
    const fault::FaultSchedule& schedule) {
  using R = util::Result<fault::FaultInjector*>;
  fault::FaultInjector::Services services;
  services.engine = engine_;
  services.topology = &topo_;
  services.network = network_.get();
  services.transfer = transfer_.get();
  services.stream = stream_.get();
  services.compute = compute_.get();
  services.pbs = pbs_.get();
  services.auth = &auth_;
  services.expire_token = [this] { auth_.revoke(user_token_); };
  services.flows = flows_.get();
  services.default_endpoint = polaris_ep_;
  services.stores[user_store_.name()] = &user_store_;
  services.stores[eagle_.name()] = &eagle_;
  services.stores[node_memory_.name()] = &node_memory_;
  services.default_store = eagle_.name();
  services.storage_seed = config_.seed ^ 0x5C0FFull;
  services.site_hook = [this](fault::FaultKind kind, const std::string& site,
                              double severity, bool begin) {
    on_site_fault(kind, site, severity, begin);
  };
  injector_ = std::make_unique<fault::FaultInjector>(std::move(services));
  injector_->set_telemetry(&telemetry_);
  auto installed = injector_->install(schedule);
  if (!installed) {
    injector_.reset();
    return R::err(installed.error());
  }
  return R::ok(injector_.get());
}

void Facility::on_site_fault(fault::FaultKind kind, const std::string& site,
                             double severity, bool begin) {
  // An event targeting another named site is not ours; an empty target means
  // the injector's default facility, i.e. this one.
  if (!site.empty() && site != config_.site_name) return;
  if (kind == fault::FaultKind::SiteOutage) {
    // The whole facility goes dark: the transfer and compute control planes
    // reject, and PBS stops launching jobs — in-flight local runs fail fast
    // so the broker's failover (not a slow retry crawl) owns recovery.
    transfer_->set_available(!begin);
    compute_->set_available(!begin);
    pbs_->set_drain(begin);
  }
  // SitePartition / SiteBrownout change nothing locally: a partitioned site
  // keeps executing (the broker just cannot see or reach it until heal), and
  // brownout is a routing/shedding decision made broker-side.
  if (site_fault_handler_) site_fault_handler_(kind, severity, begin);
}

storage::Scrubber& Facility::start_scrubber(
    const storage::ScrubberConfig& config) {
  scrubber_ =
      std::make_unique<storage::Scrubber>(engine_, &eagle_, config,
                                          &telemetry_);
  scrubber_->set_repair([this](const std::string& path) {
    auto task =
        transfer_->repair(kEagleEndpoint, path, refresh_user_token());
    if (!task) {
      util::Logger("facility").warn("scrub repair of %s failed: %s",
                                    path.c_str(),
                                    task.error().message.c_str());
    }
  });
  scrubber_->start();
  return *scrubber_;
}

util::Status Facility::stage_virtual_file(const std::string& path,
                                          int64_t bytes) {
  // Synthetic checksum: derived from the path so transfer verification has a
  // stable value to compare.
  uint64_t crc = util::crc64(path);
  return user_store_.put_virtual(path, bytes, crc, engine_->now());
}

util::Status Facility::stage_real_file(const std::string& path,
                                       std::vector<uint8_t> bytes) {
  return user_store_.put(path, std::move(bytes), engine_->now());
}

util::Result<const storage::Object*> Facility::data_object(
    const std::string& path) const {
  // Store-mediated flows land inputs on Eagle; direct-streamed flows
  // materialize them in node memory. Eagle wins when both hold the path so
  // the verified landing copy is preferred.
  auto obj = eagle_.get(path);
  if (obj) return obj;
  return node_memory_.get(path);
}

// ---- analysis function bodies (real data-plane work) -----------------------

namespace {

/// Shared virtual-file fallback: a schema-valid record for size-only objects.
Json virtual_record(const Json& args, const storage::Object& obj,
                    const std::string& resource_type) {
  search::RecordInputs in;
  in.title = args.at("title").as_string();
  if (in.title.empty()) in.title = "PicoProbe acquisition";
  in.creators = {"Dynamic PicoProbe"};
  in.created_iso8601 = args.at("acquired").as_string("2023-04-07T12:00:00Z");
  in.resource_type = resource_type;
  in.subjects = {resource_type};
  in.instrument_metadata = Json::object({
      {"virtual", true},
      {"payload_bytes", obj.size},
  });
  in.analysis = Json::object({{"virtual", true}});
  Json record = search::build_record(in);
  return Json::object({{"record", record}, {"artifacts", Json::array()}});
}

}  // namespace

util::Result<Json> Facility::run_hyperspectral_analysis(const Json& args) {
  using R = util::Result<Json>;
  const std::string path = args.at("path").as_string();
  auto obj = data_object(path);
  if (!obj) return R::err(obj.error());

  if (!obj.value()->has_content()) {
    return R::ok(virtual_record(args, *obj.value(), "hyperspectral"));
  }

  // Real path: parse EMD once, extract metadata + analyze (the paper fuses
  // both into a single Globus Compute function to avoid reading twice).
  auto file = emd::File::from_bytes(*obj.value()->content);
  if (!file) return R::err(file.error());
  auto metadata = analysis::extract_metadata(file.value());
  if (!metadata) return R::err(metadata.error());

  auto signal = emd::first_signal_name(file.value());
  if (!signal) return R::err(signal.error());
  const emd::Group* group =
      file.value().root.find_group(std::string(emd::Paths::kData) + "/" +
                                   signal.value());
  const emd::Dataset* ds = group->datasets.count("data")
                               ? &group->datasets.at("data")
                               : nullptr;
  if (!ds) return R::err("signal has no data dataset", "schema");
  auto cube = ds->as<double>();
  if (!cube) return R::err(cube.error());

  // Energy axis from signal attributes.
  double e_min = group->attrs.count("energy_min_kev")
                     ? group->attrs.at("energy_min_kev").as_double(0.0)
                     : 0.0;
  double e_max = group->attrs.count("energy_max_kev")
                     ? group->attrs.at("energy_max_kev").as_double(20.0)
                     : 20.0;
  size_t channels = cube.value().dim(2);
  std::vector<double> energy_axis(channels);
  for (size_t k = 0; k < channels; ++k) {
    energy_axis[k] = e_min + (e_max - e_min) * (static_cast<double>(k) + 0.5) /
                                 static_cast<double>(channels);
  }

  analysis::HyperspectralAnalysis result = analysis::analyze_hyperspectral(
      cube.value(), energy_axis, {},
      config_.parallel_data_plane ? &util::shared_pool() : nullptr);

  // Artifacts: intensity map (Fig. 2A) + spectrum with element markers
  // (Fig. 2B), written to the real filesystem for the portal.
  std::string prefix = args.at("artifact_prefix").as_string("hyper");
  std::string base = config_.artifact_dir + "/" + prefix;
  std::vector<std::string> artifacts;

  std::string pgm_path = base + "_intensity.pgm";
  if (auto st = analysis::write_pgm(pgm_path, result.intensity); st) {
    artifacts.push_back(pgm_path);
  }

  // Elemental maps for the identified non-matrix elements ("where is the
  // gold?") — standard EDS products alongside the intensity map.
  for (const auto& el : result.elements) {
    if (el.symbol == "C" || el.symbol == "N" || el.symbol == "O") continue;
    if (el.matched_kev.empty()) continue;
    auto map = analysis::element_map(cube.value(), energy_axis,
                                     el.matched_kev.front());
    std::string map_path = base + "_map_" + el.symbol + ".pgm";
    if (auto st = analysis::write_pgm(map_path, map); st) {
      artifacts.push_back(map_path);
    }
  }

  analysis::LinePlotConfig plot;
  plot.title = "Aggregate spectrum";
  plot.x_label = "Energy (keV)";
  plot.y_label = "Counts";
  for (const auto& el : result.elements) {
    for (double kev : el.matched_kev) plot.annotations.emplace_back(kev, el.symbol);
  }
  std::vector<double> counts(result.spectrum.data().begin(),
                             result.spectrum.data().end());
  std::string svg_path = base + "_spectrum.svg";
  if (util::write_file(svg_path,
                       analysis::render_line_svg(energy_axis, counts, plot))) {
    artifacts.push_back(svg_path);
  }

  std::vector<std::string> subjects;
  for (const auto& el : result.elements) subjects.push_back(el.symbol);

  search::RecordInputs in;
  in.title = args.at("title").as_string();
  if (in.title.empty()) in.title = "Hyperspectral acquisition";
  in.creators = {"Dynamic PicoProbe"};
  in.created_iso8601 =
      metadata.value().at("acquired").as_string("2023-04-07T12:00:00Z");
  in.resource_type = "hyperspectral";
  in.subjects = subjects;
  in.instrument_metadata = metadata.value();
  in.analysis = result.to_json();
  in.artifact_paths = artifacts;
  Json record = search::build_record(in);

  Json artifacts_json = Json::array();
  for (const auto& a : artifacts) artifacts_json.push_back(a);
  return R::ok(Json::object({
      {"record", record},
      {"artifacts", artifacts_json},
      {"elements", record.at("subjects")},
  }));
}

util::Result<Json> Facility::run_spatiotemporal_analysis(const Json& args) {
  using R = util::Result<Json>;
  const std::string path = args.at("path").as_string();
  auto obj = data_object(path);
  if (!obj) return R::err(obj.error());

  if (!obj.value()->has_content()) {
    return R::ok(virtual_record(args, *obj.value(), "spatiotemporal"));
  }

  auto file = emd::File::from_bytes(*obj.value()->content);
  if (!file) return R::err(file.error());
  auto metadata = analysis::extract_metadata(file.value());
  if (!metadata) return R::err(metadata.error());

  auto signal = emd::first_signal_name(file.value());
  if (!signal) return R::err(signal.error());
  const emd::Group* group = file.value().root.find_group(
      std::string(emd::Paths::kData) + "/" + signal.value());
  const emd::Dataset* ds = group->datasets.count("data")
                               ? &group->datasets.at("data")
                               : nullptr;
  if (!ds) return R::err("signal has no data dataset", "schema");
  auto stack = ds->as<double>();
  if (!stack) return R::err(stack.error());

  // EMD -> video conversion (the paper's fp64 -> uint8 bottleneck), then
  // per-frame detection, tracking, and annotation burn-in. The parallel
  // conversion is bit-identical to convert_fast, so the knob changes wall
  // clock only; convert_naive stays untouched as the A4 pessimal baseline.
  bool naive = args.at("naive_convert").as_bool(false);
  tensor::Tensor<uint8_t> frames_u8 =
      naive ? video::convert_naive(stack.value())
      : config_.parallel_data_plane
          ? video::convert_parallel(stack.value(), util::shared_pool())
          : video::convert_fast(stack.value());
  video::MpkVideo mpk = video::MpkVideo::from_stack(frames_u8);

  // Per-frame detection fans out across the whole node (the paper's compute
  // functions own a full Polaris node); tracking is inherently sequential.
  vision::BlobDetector detector;
  const size_t frame_count = stack.value().dim(0);
  std::vector<std::vector<vision::Detection>> detections(frame_count);
  util::shared_pool().parallel_for(frame_count, [&](size_t t) {
    detections[t] = detector.detect(stack.value().slice0(t));
  });
  vision::GreedyIoUTracker tracker;
  size_t total_detections = 0;
  for (const auto& dets : detections) {
    tracker.update(dets);
    total_detections += dets.size();
  }
  video::MpkVideo annotated = video::annotate(mpk, detections);

  std::string prefix = args.at("artifact_prefix").as_string("spatio");
  std::string base = config_.artifact_dir + "/" + prefix;
  std::vector<std::string> artifacts;

  std::string mpk_path = base + "_annotated.mpk";
  if (annotated.save(mpk_path)) artifacts.push_back(mpk_path);

  // Particle count vs time (the Fig. 3 caption's count series).
  std::vector<double> t_axis, counts;
  for (size_t t = 0; t < detections.size(); ++t) {
    t_axis.push_back(static_cast<double>(t));
    counts.push_back(static_cast<double>(detections[t].size()));
  }
  analysis::LinePlotConfig plot;
  plot.title = "Detected nanoparticles per frame";
  plot.x_label = "Frame";
  plot.y_label = "Count";
  std::string svg_path = base + "_counts.svg";
  if (util::write_file(svg_path,
                       analysis::render_line_svg(t_axis, counts, plot))) {
    artifacts.push_back(svg_path);
  }

  Json analysis_json = Json::object({
      {"frames", static_cast<int64_t>(detections.size())},
      {"total_detections", static_cast<int64_t>(total_detections)},
      {"mean_count_per_frame",
       detections.empty()
           ? 0.0
           : static_cast<double>(total_detections) /
                 static_cast<double>(detections.size())},
      {"tracks", static_cast<int64_t>(tracker.total_tracks_created())},
      {"conversion", naive ? "naive" : "fast"},
  });

  search::RecordInputs in;
  in.title = args.at("title").as_string();
  if (in.title.empty()) in.title = "Spatiotemporal acquisition";
  in.creators = {"Dynamic PicoProbe"};
  in.created_iso8601 =
      metadata.value().at("acquired").as_string("2023-04-07T12:00:00Z");
  in.resource_type = "spatiotemporal";
  in.subjects = {"gold-nanoparticle", "tracking"};
  in.instrument_metadata = metadata.value();
  in.analysis = analysis_json;
  in.artifact_paths = artifacts;
  Json record = search::build_record(in);

  Json artifacts_json = Json::array();
  for (const auto& a : artifacts) artifacts_json.push_back(a);
  return R::ok(Json::object({
      {"record", record},
      {"artifacts", artifacts_json},
      {"detections", analysis_json},
  }));
}

void Facility::register_functions() {
  // Cost closures look up the staged object's size so virtual campaign files
  // are charged like real ones.
  auto size_of = [this](const Json& args) -> int64_t {
    auto obj = data_object(args.at("path").as_string());
    return obj ? obj.value()->size : 0;
  };

  // Lognormal jitter reproduces run-to-run analysis time variability
  // (filesystem contention, Python import noise, GPU clocks).
  auto jitter = [this] {
    return cost_rng_.lognormal(0.0, config_.cost.cost_jitter_sigma);
  };

  compute::FunctionSpec hyper;
  hyper.name = "hyperspectral_analysis";
  hyper.body = [this](const Json& args) { return run_hyperspectral_analysis(args); };
  hyper.cost = [this, size_of, jitter](const Json& args) {
    return config_.cost.hyper_analysis_cost(size_of(args)) * jitter();
  };
  // Streamable = the per-byte scan, which can chase the arriving chunks in a
  // cut-through flow. The fixed base (imports, plot rendering) cannot.
  // Deterministic on purpose: no rng draw, so enabling streaming never
  // perturbs the shared cost/jitter sequences.
  hyper.streamable = [this, size_of](const Json& args) {
    return config_.cost.hyper_analysis_s_per_mb *
           (static_cast<double>(size_of(args)) / 1e6);
  };
  hyper_fn_ = compute_->register_function(std::move(hyper));

  compute::FunctionSpec spatio;
  spatio.name = "spatiotemporal_analysis";
  spatio.body = [this](const Json& args) { return run_spatiotemporal_analysis(args); };
  spatio.cost = [this, size_of, jitter](const Json& args) {
    int64_t frames = args.at("frames").as_int(600);
    bool naive = args.at("naive_convert").as_bool(false);
    bool parallel = args.at("parallel_convert").as_bool(false);
    return config_.cost.spatiotemporal_analysis_cost(size_of(args), frames,
                                                     naive, parallel) *
           jitter();
  };
  // fp64 -> uint8 conversion and per-frame inference both proceed frame by
  // frame, so they can overlap with the tail of a chunked transfer; only the
  // annotation/encode epilogue needs the full stack resident.
  spatio.streamable = [this, size_of](const Json& args) {
    int64_t frames = args.at("frames").as_int(600);
    bool naive = args.at("naive_convert").as_bool(false);
    bool parallel = args.at("parallel_convert").as_bool(false);
    return config_.cost.convert_cost(size_of(args), naive, parallel) +
           config_.cost.inference_s_per_frame * static_cast<double>(frames);
  };
  spatio_fn_ = compute_->register_function(std::move(spatio));
}

}  // namespace pico::core

#pragma once
// The simulated facility: everything between the Dynamic PicoProbe user
// workstation and the ALCF portal, wired together. Owns the discrete-event
// engine, the site network (user PC -> 1 Gbps switch -> 200 Gbps backbone ->
// Eagle), the stores, Globus-like auth/transfer/compute/search services, the
// Polaris PBS cluster, the flow orchestrator, and the registered analysis
// functions that do real data-plane work.
#include <memory>
#include <string>

#include "auth/auth.hpp"
#include "compute/service.hpp"
#include "core/cost_model.hpp"
#include "core/providers.hpp"
#include "fault/injector.hpp"
#include "flow/service.hpp"
#include "hpcsim/pbs.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "portal/portal.hpp"
#include "search/index.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "storage/scrubber.hpp"
#include "storage/store.hpp"
#include "telemetry/health/monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "transfer/service.hpp"
#include "transfer/stream.hpp"

namespace pico::core {

struct FacilityConfig {
  CostModel cost;
  double user_switch_bps = 1e9;     ///< the paper's 1 Gbps user switch
  double backbone_bps = 200e9;      ///< ANL backbone
  int polaris_nodes = 16;
  int compute_max_blocks = 4;
  flow::FlowServiceConfig flow;     ///< backoff defaults to the paper policy
  double transfer_fault_prob = 0.0;
  int transfer_max_retries = 3;
  /// Fault injection: probability a Polaris node dies mid-task (flows
  /// recover via their Analyze retry budget).
  double compute_node_failure_prob = 0.0;
  /// Real-filesystem directory where analysis functions write plot artifacts.
  std::string artifact_dir = "picoflow-artifacts";
  /// Run the analysis functions' real data-plane kernels (fp64->uint8
  /// conversion, axis reductions) on the shared thread pool, the way the
  /// paper's compute functions own a whole Polaris node. The parallel
  /// kernels are bit-identical to their sequential twins, so flipping this
  /// never changes analysis results or campaign reports — only wall clock.
  bool parallel_data_plane = true;
  int64_t user_store_capacity = static_cast<int64_t>(10e12);   // 10 TB
  int64_t eagle_capacity = static_cast<int64_t>(100e15);       // O(100 PB)
  /// Aggregate node-memory budget for direct-streamed acquisitions.
  int64_t node_memory_capacity = static_cast<int64_t>(2e12);   // 2 TB
  /// Direct detector→compute streaming knobs (DESIGN.md §13).
  transfer::StreamConfig stream;
  /// Live health plane: flight-recorder ring sizing, SLO windows, watchdogs,
  /// anomaly thresholds (DESIGN.md §15). The monitor itself only runs once
  /// the campaign (or an experiment) calls health().start(horizon).
  telemetry::health::HealthConfig health;
  /// Federation identity: names this facility in breaker snapshots, health
  /// reports, and site-fault targeting. Empty (default) keeps the classic
  /// single-facility behaviour — no site labels appear anywhere.
  std::string site_name;
  uint64_t seed = 42;
};

class Facility {
 public:
  explicit Facility(FacilityConfig config);
  /// Federated construction: N replicated facilities share one discrete-event
  /// engine (one virtual clock), each keeping its own topology, stores,
  /// services, breakers, and health plane. `shared_engine` must outlive the
  /// facility.
  Facility(FacilityConfig config, sim::Engine* shared_engine);

  // Well-known endpoint names.
  static constexpr const char* kUserEndpoint = "picoprobe-user";
  static constexpr const char* kEagleEndpoint = "alcf-eagle";

  sim::Engine& engine() { return *engine_; }
  sim::Trace& trace() { return trace_; }
  /// Site name this facility answers to in a federation ("" = unfederated).
  const std::string& site() const { return config_.site_name; }
  /// Facility-wide telemetry: causal tracer (sinking into trace()) plus the
  /// metrics registry every service reports into.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }
  /// Live health plane over the telemetry bundle: SLO burn, watchdogs,
  /// anomaly detection, provider/link scores (DESIGN.md §15).
  telemetry::health::HealthMonitor& health() { return *health_; }
  const telemetry::health::HealthMonitor& health() const { return *health_; }
  net::Topology& topology() { return topo_; }
  net::Network& network() { return *network_; }
  storage::Store& user_store() { return user_store_; }
  storage::Store& eagle() { return eagle_; }
  /// Compute-node memory where direct-streamed acquisitions materialize.
  storage::Store& node_memory() { return node_memory_; }
  auth::AuthService& auth() { return auth_; }
  transfer::TransferService& transfer() { return *transfer_; }
  transfer::StreamService& stream() { return *stream_; }
  hpcsim::PbsScheduler& pbs() { return *pbs_; }
  compute::ComputeService& compute() { return *compute_; }
  search::Index& index() { return index_; }
  flow::FlowService& flows() { return *flows_; }
  const FacilityConfig& config() const { return config_; }
  const CostModel& cost() const { return config_.cost; }

  /// Token of the experiment operator (all required scopes).
  const auth::Token& user_token() const { return user_token_; }
  const auth::Identity& user_identity() const { return user_identity_; }

  /// Ensure the operator token is usable, minting a replacement with the
  /// same scopes if the current one no longer validates (mid-run token
  /// expiry recovery; the campaign driver calls this before resubmitting a
  /// flow that died to an auth failure). A still-valid token is returned
  /// unchanged so concurrent runs holding it are not stranded.
  const auth::Token& refresh_user_token();

  /// Install a chaos schedule against this facility's services. Call before
  /// engine().run(). Returns the injector for fault-log inspection; it stays
  /// owned by the facility.
  util::Result<fault::FaultInjector*> install_faults(
      const fault::FaultSchedule& schedule);
  fault::FaultInjector* injector() { return injector_.get(); }

  /// Observer for site-level chaos aimed at this facility (SiteOutage /
  /// SitePartition / SiteBrownout events whose target is this site, or empty).
  /// The facility applies its local effects first — an outage takes the
  /// transfer and compute planes down and drains PBS — then forwards to the
  /// handler (the federation broker's failover trigger).
  void set_site_fault_handler(
      std::function<void(fault::FaultKind, double severity, bool begin)> h) {
    site_fault_handler_ = std::move(h);
  }
  /// Entry point install_faults() wires into FaultInjector::Services::
  /// site_hook; exposed so an external (broker-owned) injector can deliver
  /// site faults to facilities it did not install schedules on.
  void on_site_fault(fault::FaultKind kind, const std::string& site,
                     double severity, bool begin);

  /// Start a periodic at-rest integrity scrubber over Eagle: corrupt objects
  /// are quarantined and re-transferred from the surviving user-store copy
  /// via the transfer service's delivery provenance. Call before
  /// engine().run(); replaces any previously started scrubber.
  storage::Scrubber& start_scrubber(const storage::ScrubberConfig& config);
  storage::Scrubber* scrubber() { return scrubber_.get(); }

  /// Registered compute function / endpoint ids.
  const compute::EndpointId& polaris_endpoint() const { return polaris_ep_; }
  const compute::FunctionId& hyperspectral_fn() const { return hyper_fn_; }
  const compute::FunctionId& spatiotemporal_fn() const { return spatio_fn_; }

  /// Network link ids for experiments that vary capacities (A2 bench).
  net::LinkId user_switch_link() const { return user_switch_link_; }
  net::LinkId backbone_link() const { return backbone_link_; }

  /// Put a size-only file on the user workstation (campaign drops).
  util::Status stage_virtual_file(const std::string& path, int64_t bytes);
  /// Put a real EMD payload on the user workstation.
  util::Status stage_real_file(const std::string& path,
                               std::vector<uint8_t> bytes);

 private:
  void build_topology();
  void register_functions();
  /// Resolve an analysis input object: the Eagle landing store first, then
  /// compute-node memory (where direct-streamed acquisitions materialize).
  util::Result<const storage::Object*> data_object(
      const std::string& path) const;
  util::Result<util::Json> run_hyperspectral_analysis(const util::Json& args);
  util::Result<util::Json> run_spatiotemporal_analysis(const util::Json& args);

  FacilityConfig config_;
  /// Owned in the classic single-facility construction; null when the
  /// facility joined a federation built around a shared engine. All service
  /// wiring goes through `engine_`, which points at whichever is live.
  std::unique_ptr<sim::Engine> owned_engine_;
  sim::Engine* engine_ = nullptr;
  sim::Trace trace_;
  telemetry::Telemetry telemetry_{&trace_};
  net::Topology topo_;
  net::NodeId user_node_ = 0, eagle_node_ = 0, polaris_node_ = 0;
  net::LinkId user_switch_link_ = 0, backbone_link_ = 0;
  std::unique_ptr<net::Network> network_;
  storage::Store user_store_;
  storage::Store eagle_;
  storage::Store node_memory_;
  auth::AuthService auth_;
  std::unique_ptr<transfer::TransferService> transfer_;
  std::unique_ptr<transfer::StreamService> stream_;
  std::unique_ptr<hpcsim::PbsScheduler> pbs_;
  std::unique_ptr<compute::ComputeService> compute_;
  search::Index index_;
  std::unique_ptr<flow::FlowService> flows_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<storage::Scrubber> scrubber_;
  std::unique_ptr<telemetry::health::HealthMonitor> health_;
  std::unique_ptr<TransferProvider> transfer_provider_;
  std::unique_ptr<StreamProvider> stream_provider_;
  std::unique_ptr<ComputeProvider> compute_provider_;
  std::unique_ptr<SearchIngestProvider> search_provider_;
  auth::Identity user_identity_;
  auth::Token user_token_;
  compute::EndpointId polaris_ep_;
  compute::FunctionId hyper_fn_;
  compute::FunctionId spatio_fn_;
  std::function<void(fault::FaultKind, double, bool)> site_fault_handler_;
  util::Rng cost_rng_;  ///< run-to-run analysis cost variability (seeded)
};

}  // namespace pico::core

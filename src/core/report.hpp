#pragma once
// Renderers for the paper's evaluation outputs: Table 1 (aggregate campaign
// metrics, measured vs paper) and Fig. 4 (itemized per-step runtime
// statistics). Output is monospace text suitable for bench logs plus CSV for
// downstream plotting.
#include <string>

#include "core/campaign.hpp"

namespace pico::core {

/// Reference values transcribed from the paper for side-by-side comparison.
struct PaperTable1 {
  double start_period_s, transfer_mb, total_gb;
  double min_runtime_s, mean_runtime_s, max_runtime_s;
  double median_overhead_s, median_overhead_pct;
  int total_runs;

  static PaperTable1 hyperspectral();
  static PaperTable1 spatiotemporal();
};

/// Render Table 1 with measured and paper columns for both use cases.
std::string render_table1(const CampaignResult& hyper,
                          const CampaignResult& spatio);

/// Render the Fig. 4 decomposition (box stats per step + overhead) for one
/// campaign.
std::string render_fig4(const CampaignResult& result);

/// CSV of per-flow timings (one row per flow, per-step actives + overhead).
std::string flows_csv(const CampaignResult& result);

/// Render the robustness report for a chaos campaign: injected downtime and
/// availability, eventual-success rate, dead-letter/resubmit counts, MTTR,
/// fault-attributed overhead, breaker trips, and step timeouts — the
/// recovery-side complement of the Fig. 4 active-vs-overhead decomposition.
std::string render_robustness(const CampaignResult& result);

}  // namespace pico::core

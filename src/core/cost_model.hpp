#pragma once
// Calibrated cost model for the facility simulation. Every constant maps to
// an observable in the paper's evaluation (Sec. 3.3 / DESIGN.md Sec. 5):
//
//   - transfer setup + per-file overhead + ~90 Mbps effective per-flow rate
//     reproduce the transfer actives (hyperspectral ~14 s, spatio ~110 s);
//   - analysis per-byte costs reproduce the compute actives, with the
//     fp64->uint8 conversion dominating the spatiotemporal phase;
//   - PBS provisioning + environment warm-up reproduce first-flow maxima;
//   - publication ~1.2 s reproduces the cheap login-node ingest.
//
// The campaign bench prints these alongside the paper's numbers; tune here,
// re-run bench_table1, compare.
#include <cstdint>

#include "util/json.hpp"

namespace pico::core {

struct CostModel {
  // -- Transfer ------------------------------------------------------------
  /// Task setup (auth handshake, endpoint activation, routing). Recalibrated
  /// down from 4.0 s when the orchestration overhead was split into
  /// signaling-mode-independent service latencies (this, settling) and
  /// polling-specific ones (discovery lag, inter-step hops): the Table-1
  /// polling totals stay on target, while an event-driven orchestrator
  /// legitimately escapes only the polling-specific share.
  double transfer_setup_mean_s = 1.5;
  double transfer_setup_jitter_s = 1.2;
  double transfer_per_file_s = 1.0;
  double per_flow_rate_cap_bps = 84e6;  ///< effective per-transfer throughput

  // -- Compute: hyperspectral analysis (metadata + reductions + plots) ------
  double hyper_analysis_base_s = 0.8;
  double hyper_analysis_s_per_mb = 0.099;

  // -- Compute: spatiotemporal analysis -------------------------------------
  /// fp64 -> uint8 conversion (the paper's dominant compute cost).
  double convert_s_per_mb = 0.030;
  /// Pessimal naive conversion (per-frame range rescan), for the A4 ablation.
  double convert_naive_multiplier = 4.0;
  /// Node-parallel conversion speedup (the "compute function uses the whole
  /// node" what-if for the A4 ablation): modeled effective speedup of the
  /// chunked thread-pool conversion over the single-core fast path on one
  /// Polaris node. Conservative vs. the 32-core count — the kernel is
  /// memory-bandwidth-bound well before it is core-bound.
  double convert_parallel_speedup = 6.0;
  /// Detector inference per frame (~A100 YOLOv8s latency incl. I/O).
  double inference_s_per_frame = 0.025;
  double annotate_base_s = 1.0;

  /// Run-to-run analysis cost variability (lognormal sigma).
  double cost_jitter_sigma = 0.10;

  // -- Publication ----------------------------------------------------------
  double publication_s = 1.2;
  double publication_jitter_s = 0.3;

  // -- Polaris / PBS ---------------------------------------------------------
  double provision_delay_s = 85.0;
  double provision_jitter_s = 30.0;
  double env_warmup_s = 18.0;
  double env_warmup_jitter_s = 3.0;
  double warm_idle_timeout_s = 600.0;

  // -- Instrument-side client -------------------------------------------------
  /// Local staging copy rate of the user workstation (file materialization).
  double staging_rate_Bps = 22e6;
  /// Watcher stability debounce before a new file triggers a flow.
  double watcher_debounce_s = 15.0;

  double hyper_analysis_cost(int64_t bytes) const {
    return hyper_analysis_base_s + hyper_analysis_s_per_mb * (static_cast<double>(bytes) / 1e6);
  }
  double convert_cost(int64_t bytes, bool naive,
                      bool parallel = false) const {
    double base = convert_s_per_mb * (static_cast<double>(bytes) / 1e6);
    if (naive) return base * convert_naive_multiplier;
    if (parallel) return base / convert_parallel_speedup;
    return base;
  }
  double spatiotemporal_analysis_cost(int64_t bytes, int64_t frames,
                                      bool naive_convert,
                                      bool parallel_convert = false) const {
    return convert_cost(bytes, naive_convert, parallel_convert) +
           inference_s_per_frame * static_cast<double>(frames) +
           annotate_base_s;
  }

  util::Json to_json() const;
};

}  // namespace pico::core

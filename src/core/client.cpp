#include "core/client.hpp"

#include <filesystem>

#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pico::core {
namespace {
util::Logger& logger() {
  static util::Logger kLogger("client");
  return kLogger;
}

watcher::WatcherConfig make_watcher_config(const ClientConfig& config) {
  watcher::WatcherConfig wcfg;
  wcfg.directory = config.watch_dir;
  wcfg.stable_scans = config.stable_scans;
  return wcfg;
}
}  // namespace

TransferClient::TransferClient(Facility* facility, ClientConfig config)
    : facility_(facility),
      config_(std::move(config)),
      checkpoint_(config_.checkpoint_path.empty()
                      ? config_.watch_dir + "/.picoflow-checkpoint"
                      : config_.checkpoint_path),
      watcher_(make_watcher_config(config_), &checkpoint_) {}

util::Status TransferClient::init() { return checkpoint_.load(); }

util::Result<LaunchedFlow> TransferClient::launch_for_file(
    const watcher::FileEvent& event) {
  using R = util::Result<LaunchedFlow>;
  auto bytes = util::read_file(event.path);
  if (!bytes) return R::err(bytes.error());

  // Header-only classification (the cheap catalog scan).
  auto header = emd::File::from_bytes(bytes.value(), /*with_payload=*/false);
  if (!header) {
    return R::err("not an EMD file: " + header.error().message, "parse");
  }
  auto signal = emd::first_signal_name(header.value());
  if (!signal) return R::err(signal.error());
  auto kind = emd::signal_kind(header.value(), signal.value());
  if (!kind) return R::err(kind.error());

  std::string base = std::filesystem::path(event.path).stem().string();
  std::string tag = util::format("%s-%04d", base.c_str(), sequence_++);
  std::string staged = config_.staging_prefix + tag + ".emd";
  if (auto st = facility_->stage_real_file(staged, std::move(bytes).value());
      !st) {
    return R::err(st.error());
  }

  FlowInput input;
  input.file = staged;
  input.dest = config_.eagle_prefix + tag + ".emd";
  input.artifact_prefix = tag;
  input.title = "Acquisition " + base;
  input.subject = tag;
  input.owner = config_.owner;
  auto acquired = header.value().root.attrs.find("acquired");
  if (acquired != header.value().root.attrs.end()) {
    input.acquired = acquired->second.as_string(input.acquired);
  }

  const flow::FlowDefinition definition =
      kind.value() == emd::SignalKind::Hyperspectral
          ? hyperspectral_flow(*facility_)
          : spatiotemporal_flow(*facility_);
  auto run = facility_->flows().start(definition, input.to_json(),
                                      facility_->user_token(), tag);
  if (!run) return R::err(run.error());

  LaunchedFlow launched;
  launched.run = run.value();
  launched.subject = tag;
  launched.source_path = event.path;
  launched.kind = kind.value();
  return R::ok(std::move(launched));
}

std::vector<LaunchedFlow> TransferClient::poll_once() {
  std::vector<LaunchedFlow> launched;
  for (const auto& event : watcher_.scan_once()) {
    auto result = launch_for_file(event);
    if (!result) {
      std::string msg = event.path + ": " + result.error().message;
      logger().warn("%s", msg.c_str());
      errors_.push_back(std::move(msg));
      continue;
    }
    logger().info("launched %s for %s", result.value().run.c_str(),
                  event.path.c_str());
    launched.push_back(std::move(result).value());
  }
  return launched;
}

}  // namespace pico::core

#pragma once
// Greedy IoU tracker: associates detections across frames into persistent
// tracks (the paper's model "detects and tracks gold nanoparticles as they
// move"). Matches are made highest-IoU-first; unmatched detections open new
// tracks; tracks missing for `max_missed` frames are retired.
#include <cstdint>
#include <vector>

#include "vision/detect.hpp"

namespace pico::vision {

struct TrackState {
  int id = 0;
  util::Box box;          ///< latest position
  int age = 0;            ///< frames since birth
  int missed = 0;         ///< consecutive frames without a match
  size_t hits = 0;        ///< matched detections over lifetime
};

struct TrackerConfig {
  double min_iou = 0.2;   ///< association threshold
  int max_missed = 5;     ///< frames a track survives unmatched
};

class GreedyIoUTracker {
 public:
  explicit GreedyIoUTracker(TrackerConfig config = {}) : config_(config) {}

  /// Advance one frame; returns the detection-to-track-id assignment
  /// (parallel to `detections`; -1 for none, which cannot happen here since
  /// unmatched detections spawn tracks).
  std::vector<int> update(const std::vector<Detection>& detections);

  const std::vector<TrackState>& active_tracks() const { return tracks_; }
  int total_tracks_created() const { return next_id_; }

 private:
  TrackerConfig config_;
  std::vector<TrackState> tracks_;
  int next_id_ = 0;
};

}  // namespace pico::vision

#include "vision/track.hpp"

#include <algorithm>

namespace pico::vision {

std::vector<int> GreedyIoUTracker::update(
    const std::vector<Detection>& detections) {
  std::vector<int> assignment(detections.size(), -1);

  // All (track, detection) pairs above the IoU floor, best first.
  struct Pair {
    double iou;
    size_t track;
    size_t det;
  };
  std::vector<Pair> pairs;
  for (size_t t = 0; t < tracks_.size(); ++t) {
    for (size_t d = 0; d < detections.size(); ++d) {
      double v = util::iou(tracks_[t].box, detections[d].box);
      if (v >= config_.min_iou) pairs.push_back(Pair{v, t, d});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.iou > b.iou; });

  std::vector<uint8_t> track_used(tracks_.size(), 0);
  std::vector<uint8_t> det_used(detections.size(), 0);
  for (const auto& p : pairs) {
    if (track_used[p.track] || det_used[p.det]) continue;
    track_used[p.track] = 1;
    det_used[p.det] = 1;
    TrackState& tr = tracks_[p.track];
    tr.box = detections[p.det].box;
    tr.missed = 0;
    tr.hits += 1;
    assignment[p.det] = tr.id;
  }

  // Unmatched tracks age; overdue ones retire.
  for (size_t t = 0; t < tracks_.size(); ++t) {
    tracks_[t].age += 1;
    if (!track_used[t]) tracks_[t].missed += 1;
  }
  tracks_.erase(std::remove_if(tracks_.begin(), tracks_.end(),
                               [&](const TrackState& tr) {
                                 return tr.missed > config_.max_missed;
                               }),
                tracks_.end());

  // Unmatched detections found new tracks.
  for (size_t d = 0; d < detections.size(); ++d) {
    if (det_used[d]) continue;
    TrackState tr;
    tr.id = next_id_++;
    tr.box = detections[d].box;
    tr.hits = 1;
    tracks_.push_back(tr);
    assignment[d] = tr.id;
  }
  return assignment;
}

}  // namespace pico::vision

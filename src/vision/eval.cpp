#include "vision/eval.hpp"

#include <algorithm>

namespace pico::vision {
namespace {

/// Greedy confidence-ordered matching for one image at one IoU threshold.
/// Returns per-detection TP flags (parallel to detections sorted by
/// confidence descending) plus that sorted confidence list.
void match_image(const EvalImage& image, double iou_threshold,
                 std::vector<std::pair<double, bool>>* scored) {
  std::vector<size_t> order(image.detections.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return image.detections[a].confidence > image.detections[b].confidence;
  });

  std::vector<uint8_t> truth_used(image.truths.size(), 0);
  for (size_t oi : order) {
    const Detection& det = image.detections[oi];
    double best_iou = 0;
    size_t best_t = image.truths.size();
    for (size_t t = 0; t < image.truths.size(); ++t) {
      if (truth_used[t]) continue;
      double v = util::iou(det.box, image.truths[t]);
      if (v > best_iou) {
        best_iou = v;
        best_t = t;
      }
    }
    bool tp = best_iou >= iou_threshold && best_t < image.truths.size();
    if (tp) truth_used[best_t] = 1;
    scored->emplace_back(det.confidence, tp);
  }
}

}  // namespace

double average_precision(const std::vector<EvalImage>& images,
                         double iou_threshold) {
  size_t total_truths = 0;
  std::vector<std::pair<double, bool>> scored;  // (confidence, is_tp)
  for (const auto& img : images) {
    total_truths += img.truths.size();
    match_image(img, iou_threshold, &scored);
  }
  if (total_truths == 0) return 0.0;

  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Cumulative precision/recall along the ranked list.
  std::vector<double> precisions, recalls;
  size_t tp = 0, fp = 0;
  for (const auto& [conf, is_tp] : scored) {
    if (is_tp) ++tp;
    else ++fp;
    precisions.push_back(static_cast<double>(tp) / static_cast<double>(tp + fp));
    recalls.push_back(static_cast<double>(tp) / static_cast<double>(total_truths));
  }

  // Monotone non-increasing precision envelope (right-to-left max).
  for (size_t i = precisions.size(); i-- > 1;) {
    precisions[i - 1] = std::max(precisions[i - 1], precisions[i]);
  }

  // COCO 101-point interpolation.
  double ap = 0;
  size_t j = 0;
  for (int r = 0; r <= 100; ++r) {
    double recall_point = r / 100.0;
    while (j < recalls.size() && recalls[j] < recall_point) ++j;
    ap += j < precisions.size() ? precisions[j] : 0.0;
  }
  return ap / 101.0;
}

double map50_95(const std::vector<EvalImage>& images) {
  double total = 0;
  int n = 0;
  for (double thr = 0.50; thr <= 0.951; thr += 0.05) {
    total += average_precision(images, thr);
    ++n;
  }
  return n == 0 ? 0.0 : total / n;
}

PrCounts pr_counts(const std::vector<EvalImage>& images, double iou_threshold) {
  PrCounts out;
  for (const auto& img : images) {
    std::vector<std::pair<double, bool>> scored;
    match_image(img, iou_threshold, &scored);
    size_t tp = 0;
    for (const auto& [conf, is_tp] : scored) {
      if (is_tp) ++tp;
    }
    out.true_positives += tp;
    out.false_positives += scored.size() - tp;
    out.false_negatives += img.truths.size() - tp;
  }
  return out;
}

}  // namespace pico::vision

#include "vision/detect.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace pico::vision {
namespace {

/// Tight box over the component's bright core: pixels within the component's
/// bounding region whose (smoothed) intensity clears
/// thr + core_level_frac * (local peak - thr). The soft PSF rim that the
/// Otsu mask includes is excluded, so the box tracks the particle's physical
/// extent rather than its glow.
util::Box refine_core_box(const ImageF& smooth, const Component& comp,
                          double thr, double core_level_frac) {
  long y1 = static_cast<long>(comp.box.y);
  long x1 = static_cast<long>(comp.box.x);
  long y2 = static_cast<long>(comp.box.y2() - 1);
  long x2 = static_cast<long>(comp.box.x2() - 1);
  double peak = thr;
  for (long y = y1; y <= y2; ++y) {
    for (long x = x1; x <= x2; ++x) {
      peak = std::max(peak,
                      smooth(static_cast<size_t>(y), static_cast<size_t>(x)));
    }
  }
  double level = thr + core_level_frac * (peak - thr);
  long cy1 = y2 + 1, cx1 = x2 + 1, cy2 = y1 - 1, cx2 = x1 - 1;
  for (long y = y1; y <= y2; ++y) {
    for (long x = x1; x <= x2; ++x) {
      if (smooth(static_cast<size_t>(y), static_cast<size_t>(x)) >= level) {
        cy1 = std::min(cy1, y);
        cx1 = std::min(cx1, x);
        cy2 = std::max(cy2, y);
        cx2 = std::max(cx2, x);
      }
    }
  }
  if (cy2 < cy1 || cx2 < cx1) return comp.box;  // core empty: keep mask box
  return util::Box{static_cast<double>(cx1), static_cast<double>(cy1),
                   static_cast<double>(cx2 - cx1 + 1),
                   static_cast<double>(cy2 - cy1 + 1)};
}

/// Local maxima of the smoothed image within a component's bounding region,
/// at least `min_sep` pixels apart (stronger peak wins). Touching particles
/// merge into one Otsu component; its intensity surface still carries one
/// summit per particle, so peak count recovers the particle count.
std::vector<std::pair<long, long>> find_peaks_in_box(const ImageF& smooth,
                                                     const ImageU8& mask,
                                                     const util::Box& box,
                                                     double floor_level,
                                                     double min_sep) {
  long y1 = static_cast<long>(box.y);
  long x1 = static_cast<long>(box.x);
  long y2 = static_cast<long>(box.y2() - 1);
  long x2 = static_cast<long>(box.x2() - 1);
  const long h = static_cast<long>(smooth.dim(0));
  const long w = static_cast<long>(smooth.dim(1));

  struct Peak {
    long y, x;
    double v;
  };
  std::vector<Peak> peaks;
  for (long y = y1; y <= y2; ++y) {
    for (long x = x1; x <= x2; ++x) {
      if (!mask(static_cast<size_t>(y), static_cast<size_t>(x))) continue;
      double v = smooth(static_cast<size_t>(y), static_cast<size_t>(x));
      if (v < floor_level) continue;
      bool is_max = true;
      for (long dy = -1; dy <= 1 && is_max; ++dy) {
        for (long dx = -1; dx <= 1; ++dx) {
          if (dy == 0 && dx == 0) continue;
          long ny = y + dy, nx = x + dx;
          if (ny < 0 || nx < 0 || ny >= h || nx >= w) continue;
          if (smooth(static_cast<size_t>(ny), static_cast<size_t>(nx)) > v) {
            is_max = false;
            break;
          }
        }
      }
      if (is_max) peaks.push_back(Peak{y, x, v});
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.v > b.v; });

  // A candidate is a distinct summit only if it is far enough from every
  // kept peak AND the intensity dips into a genuine valley between them —
  // otherwise plateau noise on a single particle would fragment it.
  auto valley_between = [&](long ay, long ax, long by, long bx) {
    double lowest = std::numeric_limits<double>::infinity();
    int steps = static_cast<int>(std::max(std::labs(ay - by), std::labs(ax - bx)));
    for (int s = 0; s <= steps; ++s) {
      double f = steps == 0 ? 0.0 : static_cast<double>(s) / steps;
      long y = ay + static_cast<long>(std::lround(f * (by - ay)));
      long x = ax + static_cast<long>(std::lround(f * (bx - ax)));
      lowest = std::min(lowest,
                        smooth(static_cast<size_t>(y), static_cast<size_t>(x)));
    }
    return lowest;
  };

  std::vector<std::pair<long, long>> kept;
  for (const auto& p : peaks) {
    bool shadowed = false;
    for (const auto& [ky, kx] : kept) {
      double d = std::hypot(static_cast<double>(p.y - ky),
                            static_cast<double>(p.x - kx));
      if (d < min_sep) {
        shadowed = true;
        break;
      }
      double kept_v = smooth(static_cast<size_t>(ky), static_cast<size_t>(kx));
      double pair_min = std::min(p.v, kept_v);
      double valley = valley_between(p.y, p.x, ky, kx);
      // Valley must drop at least 35% of the way from the weaker summit
      // toward the floor for the two to count as separate particles.
      if (valley > floor_level + 0.65 * (pair_min - floor_level)) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) kept.emplace_back(p.y, p.x);
  }
  return kept;
}

/// Split a merged component into per-peak boxes: every mask pixel in the
/// region is assigned to its nearest peak, each cluster is core-refined
/// independently.
std::vector<util::Box> split_by_peaks(
    const ImageF& smooth, const ImageU8& mask, const Component& comp,
    const std::vector<std::pair<long, long>>& peaks, double thr,
    double core_level_frac) {
  long y1 = static_cast<long>(comp.box.y);
  long x1 = static_cast<long>(comp.box.x);
  long y2 = static_cast<long>(comp.box.y2() - 1);
  long x2 = static_cast<long>(comp.box.x2() - 1);

  struct Cluster {
    double peak_v = 0;
    long cy1, cx1, cy2, cx2;
    bool any = false;
  };
  std::vector<Cluster> clusters(peaks.size());
  for (size_t k = 0; k < peaks.size(); ++k) {
    clusters[k].peak_v = smooth(static_cast<size_t>(peaks[k].first),
                                static_cast<size_t>(peaks[k].second));
  }

  // First pass: per-cluster refinement level from its own peak.
  for (long y = y1; y <= y2; ++y) {
    for (long x = x1; x <= x2; ++x) {
      if (!mask(static_cast<size_t>(y), static_cast<size_t>(x))) continue;
      double v = smooth(static_cast<size_t>(y), static_cast<size_t>(x));
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t k = 0; k < peaks.size(); ++k) {
        double d = std::hypot(static_cast<double>(y - peaks[k].first),
                              static_cast<double>(x - peaks[k].second));
        if (d < best_d) {
          best_d = d;
          best = k;
        }
      }
      Cluster& c = clusters[best];
      double level = thr + core_level_frac * (c.peak_v - thr);
      if (v < level) continue;
      if (!c.any) {
        c.cy1 = c.cy2 = y;
        c.cx1 = c.cx2 = x;
        c.any = true;
      } else {
        c.cy1 = std::min(c.cy1, y);
        c.cx1 = std::min(c.cx1, x);
        c.cy2 = std::max(c.cy2, y);
        c.cx2 = std::max(c.cx2, x);
      }
    }
  }

  std::vector<util::Box> out;
  for (const auto& c : clusters) {
    if (!c.any) continue;
    out.push_back(util::Box{static_cast<double>(c.cx1),
                            static_cast<double>(c.cy1),
                            static_cast<double>(c.cx2 - c.cx1 + 1),
                            static_cast<double>(c.cy2 - c.cy1 + 1)});
  }
  return out;
}

}  // namespace

std::vector<Detection> BlobDetector::detect(const ImageF& frame) const {
  std::vector<Detection> out;
  if (frame.rank() != 2 || frame.size() == 0) return out;

  ImageF smooth = gaussian_blur(frame, config_.blur_sigma);

  // Noise rejection: a frame with no blob-like structure has its maximum
  // within a few (robust) standard deviations of the background; Otsu would
  // still split it and hallucinate speckle detections. Median + MAD rather
  // than mean + stddev so bright particles covering a sizable area fraction
  // don't inflate the scale estimate and mask themselves.
  {
    std::vector<double> values(smooth.data().begin(), smooth.data().end());
    auto mid = values.begin() + static_cast<ptrdiff_t>(values.size() / 2);
    std::nth_element(values.begin(), mid, values.end());
    double median = *mid;
    for (double& v : values) v = std::abs(v - median);
    std::nth_element(values.begin(), mid, values.end());
    double robust_sigma = 1.4826 * *mid + 1e-12;
    double peak = tensor::max_value(smooth);
    if (peak < median + config_.contrast_sigma * robust_sigma) return out;
  }

  double thr = otsu_threshold(smooth);
  ImageU8 mask = threshold_mask(smooth, thr);
  auto components = connected_components(mask, smooth);

  const double frame_area = static_cast<double>(frame.size());
  const double w = static_cast<double>(frame.dim(1));
  const double h = static_cast<double>(frame.dim(0));

  for (const auto& comp : components) {
    if (comp.area < config_.min_area_px) continue;
    if (static_cast<double>(comp.area) > config_.max_area_frac * frame_area) {
      continue;
    }

    // Confidence: how far the blob's mean intensity rises above threshold,
    // squashed into (0, 1]. Bright compact particles score near 1.
    double mean = comp.mass / static_cast<double>(comp.area);
    double lift = (mean - thr) / std::max(1e-9, std::abs(thr) * (config_.confidence_scale - 1.0) + 1e-9);
    double conf = std::clamp(1.0 - std::exp(-std::max(0.0, lift) - 0.15),
                             0.05, 1.0);

    // Touching particles merge into one component; split it at its
    // intensity summits (one per particle) before boxing.
    double peak_floor = thr + 0.35 * (std::max(mean, thr) - thr);
    auto peaks = find_peaks_in_box(
        smooth, mask, comp.box, peak_floor,
        std::max(2.5, std::sqrt(static_cast<double>(comp.area)) * 0.5));

    std::vector<util::Box> boxes;
    if (peaks.size() >= 2) {
      boxes = split_by_peaks(smooth, mask, comp, peaks, thr,
                             config_.core_level_frac);
    }
    if (boxes.empty()) {
      boxes.push_back(
          refine_core_box(smooth, comp, thr, config_.core_level_frac));
    }
    for (util::Box box : boxes) {
      box.x -= config_.box_margin_px;
      box.y -= config_.box_margin_px;
      box.w += 2 * config_.box_margin_px;
      box.h += 2 * config_.box_margin_px;
      box = util::clip(box, w, h);
      out.push_back(Detection{box, conf});
    }
  }

  std::sort(out.begin(), out.end(), [](const Detection& a, const Detection& b) {
    return a.confidence > b.confidence;
  });
  return out;
}

std::vector<size_t> count_per_frame(
    const std::vector<std::vector<Detection>>& detections) {
  std::vector<size_t> out;
  out.reserve(detections.size());
  for (const auto& d : detections) out.push_back(d.size());
  return out;
}

}  // namespace pico::vision

#include "vision/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "tensor/ops.hpp"

namespace pico::vision {

namespace {

/// Distribute rows [0, rows) over the pool, or run inline without one.
void for_rows(util::ThreadPool* pool, size_t rows,
              const std::function<void(size_t, size_t)>& body) {
  if (pool == nullptr) {
    body(0, rows);
    return;
  }
  size_t grain = std::max<size_t>(1, rows / (4 * pool->thread_count()));
  pool->parallel_chunks(rows, grain, body);
}

}  // namespace

ImageF gaussian_blur(const ImageF& image, double sigma,
                     util::ThreadPool* pool) {
  assert(image.rank() == 2);
  if (sigma <= 0) return image;
  const size_t h = image.dim(0), w = image.dim(1);

  int radius = std::max(1, static_cast<int>(std::ceil(3 * sigma)));
  std::vector<double> kernel(static_cast<size_t>(2 * radius + 1));
  double sum = 0;
  for (int i = -radius; i <= radius; ++i) {
    double v = std::exp(-(i * i) / (2 * sigma * sigma));
    kernel[static_cast<size_t>(i + radius)] = v;
    sum += v;
  }
  for (double& v : kernel) v /= sum;

  auto reflect = [](long i, long n) {
    if (i < 0) i = -i - 1;
    if (i >= n) i = 2 * n - i - 1;
    return std::clamp(i, 0l, n - 1);
  };
  const size_t r = static_cast<size_t>(radius);
  const size_t taps = kernel.size();

  // Horizontal pass. Border pixels reflect; the interior fast path indexes
  // the row directly (no per-tap clamp) with the same tap order, so results
  // match the all-reflect loop bit for bit.
  const size_t x_left = std::min(w, r);
  const size_t x_interior_end = w > r ? w - r : 0;
  ImageF tmp(tensor::Shape{h, w});
  for_rows(pool, h, [&](size_t yb, size_t ye) {
    for (size_t y = yb; y < ye; ++y) {
      const double* row = &image(y, 0);
      auto edge = [&](size_t x) {
        double acc = 0;
        for (int k = -radius; k <= radius; ++k) {
          long xx = reflect(static_cast<long>(x) + k, static_cast<long>(w));
          acc += kernel[static_cast<size_t>(k + radius)] *
                 row[static_cast<size_t>(xx)];
        }
        tmp(y, x) = acc;
      };
      for (size_t x = 0; x < x_left; ++x) edge(x);
      for (size_t x = x_left; x < std::max(x_left, x_interior_end); ++x) {
        double acc = 0;
        const double* p = row + x - r;
        for (size_t k = 0; k < taps; ++k) acc += kernel[k] * p[k];
        tmp(y, x) = acc;
      }
      for (size_t x = std::max(x_left, x_interior_end); x < w; ++x) edge(x);
    }
  });

  // Vertical pass: same structure over rows of the output; a row is interior
  // when every tap lands inside the image.
  const size_t y_interior_end = h > r ? h - r : 0;
  ImageF out(tensor::Shape{h, w});
  for_rows(pool, h, [&](size_t yb, size_t ye) {
    for (size_t y = yb; y < ye; ++y) {
      if (y >= r && y < y_interior_end) {
        for (size_t x = 0; x < w; ++x) {
          double acc = 0;
          for (size_t k = 0; k < taps; ++k) acc += kernel[k] * tmp(y - r + k, x);
          out(y, x) = acc;
        }
      } else {
        for (size_t x = 0; x < w; ++x) {
          double acc = 0;
          for (int k = -radius; k <= radius; ++k) {
            long yy = reflect(static_cast<long>(y) + k, static_cast<long>(h));
            acc += kernel[static_cast<size_t>(k + radius)] *
                   tmp(static_cast<size_t>(yy), x);
          }
          out(y, x) = acc;
        }
      }
    }
  });
  return out;
}

double otsu_threshold(const ImageF& image) {
  assert(image.rank() == 2 && image.size() > 0);
  double lo = tensor::min_value(image), hi = tensor::max_value(image);
  if (hi <= lo) return lo;

  constexpr size_t kBins = 256;
  std::vector<size_t> hist(kBins, 0);
  double scale = (kBins - 1) / (hi - lo);
  for (double v : image.data()) {
    size_t bin = static_cast<size_t>((v - lo) * scale);
    hist[std::min(bin, kBins - 1)] += 1;
  }

  const double total = static_cast<double>(image.size());
  double sum_all = 0;
  for (size_t i = 0; i < kBins; ++i) sum_all += static_cast<double>(i) * static_cast<double>(hist[i]);

  double best_between = -1;
  size_t best_bin = 0;
  double w0 = 0, sum0 = 0;
  for (size_t t = 0; t < kBins; ++t) {
    w0 += static_cast<double>(hist[t]);
    if (w0 == 0) continue;
    double w1 = total - w0;
    if (w1 == 0) break;
    sum0 += static_cast<double>(t) * static_cast<double>(hist[t]);
    double mu0 = sum0 / w0;
    double mu1 = (sum_all - sum0) / w1;
    double between = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (between > best_between) {
      best_between = between;
      best_bin = t;
    }
  }
  return lo + (static_cast<double>(best_bin) + 0.5) / scale;
}

ImageU8 threshold_mask(const ImageF& image, double threshold) {
  ImageU8 out(image.shape());
  auto src = image.data();
  auto dst = out.data();
  for (size_t i = 0; i < src.size(); ++i) dst[i] = src[i] > threshold ? 1 : 0;
  return out;
}

std::vector<Component> connected_components(const ImageU8& mask,
                                            const ImageF& intensity) {
  assert(mask.rank() == 2 && mask.shape() == intensity.shape());
  const long h = static_cast<long>(mask.dim(0));
  const long w = static_cast<long>(mask.dim(1));
  std::vector<uint8_t> visited(static_cast<size_t>(h * w), 0);
  std::vector<Component> out;

  // BFS flood fill, 8-connectivity.
  std::deque<std::pair<long, long>> frontier;
  for (long sy = 0; sy < h; ++sy) {
    for (long sx = 0; sx < w; ++sx) {
      size_t start = static_cast<size_t>(sy * w + sx);
      if (!mask[start] || visited[start]) continue;

      Component comp;
      double min_x = sx, max_x = sx, min_y = sy, max_y = sy;
      double mx = 0, my = 0;
      visited[start] = 1;
      frontier.clear();
      frontier.emplace_back(sy, sx);
      while (!frontier.empty()) {
        auto [y, x] = frontier.front();
        frontier.pop_front();
        double val = intensity(static_cast<size_t>(y), static_cast<size_t>(x));
        comp.area += 1;
        comp.mass += val;
        mx += val * static_cast<double>(x);
        my += val * static_cast<double>(y);
        min_x = std::min(min_x, static_cast<double>(x));
        max_x = std::max(max_x, static_cast<double>(x));
        min_y = std::min(min_y, static_cast<double>(y));
        max_y = std::max(max_y, static_cast<double>(y));
        for (long dy = -1; dy <= 1; ++dy) {
          for (long dx = -1; dx <= 1; ++dx) {
            if (dy == 0 && dx == 0) continue;
            long ny = y + dy, nx = x + dx;
            if (ny < 0 || nx < 0 || ny >= h || nx >= w) continue;
            size_t ni = static_cast<size_t>(ny * w + nx);
            if (mask[ni] && !visited[ni]) {
              visited[ni] = 1;
              frontier.emplace_back(ny, nx);
            }
          }
        }
      }
      if (comp.mass > 0) {
        comp.centroid_x = mx / comp.mass;
        comp.centroid_y = my / comp.mass;
      }
      // Box spans pixel extents inclusively.
      comp.box = util::Box{min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
      out.push_back(comp);
    }
  }
  return out;
}

}  // namespace pico::vision

#pragma once
// Classical image operations underpinning the nanoparticle detector:
// separable Gaussian blur, Otsu automatic thresholding, and connected
// component labeling. All operate on rank-2 tensors.
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/geometry.hpp"
#include "util/threadpool.hpp"

namespace pico::vision {

using ImageF = tensor::Tensor<double>;
using ImageU8 = tensor::Tensor<uint8_t>;

/// Separable Gaussian blur with reflective borders. sigma <= 0 returns input.
/// Interior pixels take a fast path with no per-pixel border clamping; with a
/// pool, rows of each separable pass are distributed across it. Both choices
/// preserve the per-pixel tap order, so output is bit-identical to the
/// sequential clamped implementation for any pool width.
ImageF gaussian_blur(const ImageF& image, double sigma,
                     util::ThreadPool* pool = nullptr);

/// Otsu's threshold over a 256-bin histogram of a min-max normalized image.
/// Returns the threshold in the image's own intensity units.
double otsu_threshold(const ImageF& image);

/// Binary mask: pixel > threshold.
ImageU8 threshold_mask(const ImageF& image, double threshold);

struct Component {
  util::Box box;         ///< tight bounding box (pixel units)
  size_t area = 0;       ///< member pixel count
  double mass = 0;       ///< sum of source intensities over members
  double centroid_x = 0;
  double centroid_y = 0;
};

/// 8-connected component labeling of a binary mask; `intensity` (same shape)
/// provides the mass/centroid weights.
std::vector<Component> connected_components(const ImageU8& mask,
                                            const ImageF& intensity);

}  // namespace pico::vision

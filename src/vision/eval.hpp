#pragma once
// Detection quality evaluation: COCO-style average precision. The paper
// reports its YOLOv8 model's mAP at IoU 0.50:0.95 (0.791 train / 0.801 val);
// the Fig. 3 bench computes the same metric for the blob detector against
// the generator's ground truth.
#include <vector>

#include "util/geometry.hpp"
#include "vision/detect.hpp"

namespace pico::vision {

/// Per-image inputs: detections (with confidences) and ground-truth boxes.
struct EvalImage {
  std::vector<Detection> detections;
  std::vector<util::Box> truths;
};

/// Average precision at a single IoU threshold, 101-point interpolation
/// (COCO). Returns 0 when there are no ground-truth boxes.
double average_precision(const std::vector<EvalImage>& images,
                         double iou_threshold);

/// Mean AP over IoU thresholds 0.50:0.05:0.95 (the paper's mAP50-95).
double map50_95(const std::vector<EvalImage>& images);

/// Precision/recall of the confidence-unaware detection set at one IoU
/// threshold (diagnostics).
struct PrCounts {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision() const {
    size_t d = true_positives + false_positives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(d);
  }
  double recall() const {
    size_t d = true_positives + false_negatives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(d);
  }
};

PrCounts pr_counts(const std::vector<EvalImage>& images, double iou_threshold);

}  // namespace pico::vision

#pragma once
// Nanoparticle detector — the classical-CV stand-in for the paper's YOLOv8
// model (see DESIGN.md substitution table). Pipeline per frame: Gaussian
// blur -> Otsu threshold -> connected components -> area filter -> boxes with
// confidence scores. Produces the same artifact as the paper's model: a set
// of (box, confidence) detections per frame (Fig. 3).
#include <vector>

#include "util/geometry.hpp"
#include "vision/image.hpp"

namespace pico::vision {

struct Detection {
  util::Box box;
  double confidence = 0;  ///< in (0, 1]
};

struct DetectorConfig {
  double blur_sigma = 1.0;
  /// Components smaller than this are noise.
  size_t min_area_px = 6;
  /// Components larger than this fraction of the frame are background.
  double max_area_frac = 0.25;
  /// Core-box refinement: the reported box covers pixels above
  /// thr + core_level_frac * (component peak - thr). Soft PSF rims extend
  /// well past a particle's physical extent; boxing the bright core keeps
  /// IoU against physical ground truth high.
  double core_level_frac = 0.12;
  /// Dilate refined boxes by this many pixels on each side.
  double box_margin_px = 0.0;
  /// Frames whose smoothed maximum is below median + contrast_sigma *
  /// (1.4826 * MAD) are treated as empty (noise rejection: nothing blob-like
  /// present). Robust statistics keep large bright particles from masking
  /// themselves.
  double contrast_sigma = 6.0;
  /// Confidence saturates at this mean-intensity multiple over threshold.
  double confidence_scale = 2.0;
};

class BlobDetector {
 public:
  explicit BlobDetector(DetectorConfig config = {}) : config_(config) {}

  /// Detect bright blobs in one frame. Deterministic, no training required.
  std::vector<Detection> detect(const ImageF& frame) const;

  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
};

/// Count detections per frame — the "number of nanoparticles likely in the
/// sample" time series from Fig. 3's caption.
std::vector<size_t> count_per_frame(
    const std::vector<std::vector<Detection>>& detections);

}  // namespace pico::vision

#include "telemetry/export.hpp"

#include <algorithm>
#include <map>

namespace pico::telemetry {

namespace {

double to_us(sim::SimTime t) { return static_cast<double>(t.ns) / 1000.0; }

}  // namespace

std::string to_chrome_trace(const sim::Trace& trace) {
  // Deterministic emission order: (start time, span_id, recording seq), so
  // spans closed at the same instant by parallel workers serialize stably.
  std::vector<const sim::Span*> ordered = trace.sorted_spans();

  // Stable virtual-thread assignment: one tid per component, in order of
  // first appearance so related spans stay on one row in the viewer.
  std::map<std::string, int> tids;
  for (const sim::Span* s : ordered) {
    tids.emplace(s->component, static_cast<int>(tids.size()) + 1);
  }

  util::Json events = util::Json::array();
  events.push_back(util::Json::object({
      {"ph", "M"},
      {"pid", 1},
      {"name", "process_name"},
      {"args", util::Json::object({{"name", "picoflow-facility"}})},
  }));
  for (const auto& [component, tid] : tids) {
    events.push_back(util::Json::object({
        {"ph", "M"},
        {"pid", 1},
        {"tid", tid},
        {"name", "thread_name"},
        {"args", util::Json::object({{"name", component}})},
    }));
  }

  for (const sim::Span* sp : ordered) {
    const sim::Span& s = *sp;
    int tid = tids[s.component];
    util::Json args = util::Json::object({
        {"trace_id", s.trace_id},
        {"span_id", s.span_id},
        {"parent_id", s.parent_id},
        {"attrs", s.attrs},
    });
    events.push_back(util::Json::object({
        {"ph", "X"},
        {"pid", 1},
        {"tid", tid},
        {"cat", s.component + "." + s.category},
        {"name", s.label},
        {"ts", to_us(s.start)},
        {"dur", to_us(s.end) - to_us(s.start)},
        {"args", std::move(args)},
    }));
    // Instant events sorted by timestamp; stable so same-stamp events keep
    // their append order.
    std::vector<const sim::SpanEvent*> evs;
    evs.reserve(s.events.size());
    for (const auto& e : s.events) evs.push_back(&e);
    std::stable_sort(evs.begin(), evs.end(),
                     [](const sim::SpanEvent* a, const sim::SpanEvent* b) {
                       return a->at.ns < b->at.ns;
                     });
    for (const sim::SpanEvent* e : evs) {
      events.push_back(util::Json::object({
          {"ph", "i"},
          {"pid", 1},
          {"tid", tid},
          {"s", "t"},
          {"cat", s.component + ".event"},
          {"name", e->name},
          {"ts", to_us(e->at)},
          {"args", util::Json::object({{"span_id", s.span_id},
                                       {"attrs", e->attrs}})},
      }));
    }
  }

  util::Json doc = util::Json::object({
      {"displayTimeUnit", "ms"},
      {"traceEvents", std::move(events)},
  });
  return doc.dump(2);
}

TelemetrySummary summarize(const sim::Trace& trace,
                           const MetricsRegistry& metrics) {
  TelemetrySummary out;
  out.span_count = trace.spans().size();
  for (const auto& s : trace.spans()) {
    out.event_count += s.events.size();
    if (s.span_id != 0) ++out.traced_span_count;
  }

  // Fig.-4-style decomposition: flow step spans record how much of the
  // dispatch->discovery interval the provider spent doing real work
  // (attrs.active_s); the remainder is orchestration overhead.
  std::map<std::string, std::pair<util::SampleStats, util::SampleStats>>
      by_step;
  for (const auto* s : trace.select("flow", "step")) {
    std::string step = s->label;
    if (auto slash = step.find('/'); slash != std::string::npos) {
      step = step.substr(slash + 1);
    }
    double total = s->duration_seconds();
    double active = s->attrs.at("active_s").as_double();
    auto& [act, ovh] = by_step[step];
    act.add(active);
    ovh.add(std::max(0.0, total - active));
  }
  for (auto& [step, stats] : by_step) {
    StepDecomposition d;
    d.step = step;
    d.active = util::BoxStats::from(stats.first);
    d.overhead = util::BoxStats::from(stats.second);
    out.steps.push_back(std::move(d));
  }

  // Provider health comes from the metric families the flow engine maintains.
  out.metrics = metrics.snapshot();
  std::map<std::string, ProviderHealth> providers;
  for (const MetricSample& m : out.metrics) {
    auto provider_of = [&]() -> ProviderHealth* {
      auto it = m.labels.find("provider");
      if (it == m.labels.end()) return nullptr;
      ProviderHealth& h = providers[it->second];
      h.provider = it->second;
      return &h;
    };
    uint64_t v = static_cast<uint64_t>(m.value);
    if (m.name == "flow_breaker_transitions_total") {
      if (ProviderHealth* h = provider_of()) {
        const std::string& to = m.labels.count("to") ? m.labels.at("to") : "";
        if (to == "open") h->to_open += v;
        else if (to == "half_open") h->to_half_open += v;
        else if (to == "closed") h->to_closed += v;
      }
    } else if (m.name == "flow_retries_total") {
      if (ProviderHealth* h = provider_of()) h->retries += v;
    } else if (m.name == "flow_breaker_deferrals_total") {
      if (ProviderHealth* h = provider_of()) h->deferrals += v;
    } else if (m.name == "flow_polls_total") {
      out.signaling.polls += v;
    } else if (m.name == "flow_notifications_total") {
      out.signaling.notifications += v;
    } else if (m.name == "flow_notifications_lost_total") {
      out.signaling.notifications_lost += v;
    } else if (m.name == "flow_notification_latency_seconds") {
      out.signaling.notification_latency_p50_s = m.p50;
      out.signaling.notification_latency_p90_s = m.p90;
    } else if (m.name == "flow_stream_predispatch_total") {
      out.signaling.stream_predispatches += v;
    } else if (m.name == "flow_streamed_steps_total") {
      out.signaling.streamed_steps += v;
    }
  }
  // Delivered = emitted minus dropped.
  out.signaling.notifications -=
      std::min(out.signaling.notifications, out.signaling.notifications_lost);
  for (auto& [name, health] : providers) {
    out.providers.push_back(std::move(health));
  }
  return out;
}

}  // namespace pico::telemetry

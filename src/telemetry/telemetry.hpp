#pragma once
// Facility telemetry bundle: one Tracer (causal span tree into the facility
// trace) plus one MetricsRegistry (Prometheus-style instrument families).
// The Facility owns a Telemetry and hands pointers to every service; a null
// Telemetry pointer disables instrumentation at the call site, so unit tests
// that build services directly need no setup.
#include "telemetry/export.hpp"
#include "telemetry/health/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace pico::telemetry {

struct Telemetry {
  explicit Telemetry(sim::Trace* sink) : tracer(sink) {}

  Tracer tracer;
  MetricsRegistry metrics;
  health::FlightRecorder flight;

  TelemetrySummary summarize(const sim::Trace& trace) const {
    return telemetry::summarize(trace, metrics);
  }
};

}  // namespace pico::telemetry

#pragma once
// Telemetry exporters: Chrome trace_event JSON (open in chrome://tracing or
// Perfetto), and a campaign-level summary (Fig.-4-style per-step active vs
// overhead decomposition plus per-provider breaker/retry health) consumed by
// the portal's telemetry page.
#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "telemetry/metrics.hpp"
#include "util/stats.hpp"

namespace pico::telemetry {

/// Serialize the span tree as Chrome trace_event JSON. Spans become complete
/// ("X") events (ts/dur in microseconds) on one virtual thread per component;
/// span events become thread-scoped instant ("i") events; metadata ("M")
/// events name the process and per-component threads. Span/parent/trace ids
/// ride in `args` so tooling (and the schema checker) can rebuild the tree.
std::string to_chrome_trace(const sim::Trace& trace);

/// Per-step decomposition of where flow wall time went (paper Fig. 4).
struct StepDecomposition {
  std::string step;
  util::BoxStats active;    ///< seconds the provider was doing real work
  util::BoxStats overhead;  ///< dispatch/poll/retry lag around the work
};

/// Per-provider resilience counters (breaker transitions + retries).
struct ProviderHealth {
  std::string provider;
  uint64_t to_open = 0;       ///< breaker transitions into Open
  uint64_t to_half_open = 0;  ///< Open -> HalfOpen probes
  uint64_t to_closed = 0;     ///< recoveries
  uint64_t retries = 0;
  uint64_t deferrals = 0;  ///< dispatches deferred while the breaker was open
};

/// How step completions reached the orchestrator: polls vs provider
/// notifications, plus the cut-through streaming counters. All zeros except
/// `polls` under the paper-default polling mode.
struct CompletionSignaling {
  uint64_t polls = 0;               ///< flow_polls_total across providers
  uint64_t notifications = 0;       ///< delivered completion notifications
  uint64_t notifications_lost = 0;  ///< dropped before delivery (chaos)
  double notification_latency_p50_s = 0;
  double notification_latency_p90_s = 0;
  uint64_t stream_predispatches = 0;  ///< held starts on first-chunk progress
  uint64_t streamed_steps = 0;        ///< steps activated cut-through
};

struct TelemetrySummary {
  std::vector<StepDecomposition> steps;
  std::vector<ProviderHealth> providers;
  CompletionSignaling signaling;
  std::vector<MetricSample> metrics;  ///< full deterministic snapshot
  size_t span_count = 0;
  size_t event_count = 0;  ///< span events across all spans
  size_t traced_span_count = 0;  ///< spans with assigned ids (in the tree)
};

/// Build the summary from a quiescent trace and the metrics registry.
TelemetrySummary summarize(const sim::Trace& trace,
                           const MetricsRegistry& metrics);

}  // namespace pico::telemetry

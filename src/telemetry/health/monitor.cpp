#include "telemetry/health/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace pico::telemetry::health {

namespace {

util::Logger& health_logger() {
  static util::Logger logger("health");
  return logger;
}

double clamp_score(double s) { return std::min(100.0, std::max(0.0, s)); }

}  // namespace

util::Json HealthReport::to_json() const {
  util::Json doc = util::Json::object();
  doc["at_s"] = at.seconds();
  if (!site.empty()) doc["site"] = site;
  util::Json prov = util::Json::array();
  for (const auto& p : providers) {
    util::Json row = util::Json::object();
    row["provider"] = p.provider;
    row["score"] = p.score;
    row["breaker_open"] = p.breaker_open;
    row["retries_per_min"] = p.retries_per_min;
    row["timeouts_per_min"] = p.timeouts_per_min;
    row["deferrals_per_min"] = p.deferrals_per_min;
    prov.push_back(std::move(row));
  }
  doc["providers"] = std::move(prov);
  util::Json lnk = util::Json::array();
  for (const auto& l : links) {
    util::Json row = util::Json::object();
    row["link"] = l.link;
    row["up"] = l.up;
    row["utilization"] = l.utilization;
    row["score"] = l.score;
    lnk.push_back(std::move(row));
  }
  doc["links"] = std::move(lnk);
  util::Json slo = util::Json::array();
  for (const auto& s : slos) {
    util::Json row = util::Json::object();
    row["objective"] = s.objective;
    row["fast_burn"] = s.fast_burn;
    row["slow_burn"] = s.slow_burn;
    row["alerting"] = s.alerting;
    slo.push_back(std::move(row));
  }
  doc["slos"] = std::move(slo);
  util::Json alrt = util::Json::array();
  for (const auto& a : alerts) {
    util::Json row = util::Json::object();
    row["t_s"] = a.at.seconds();
    row["kind"] = a.kind;
    row["severity"] = a.severity;
    row["subject"] = a.subject;
    row["detail"] = a.detail;
    alrt.push_back(std::move(row));
  }
  doc["alerts"] = std::move(alrt);
  doc["open_flows"] = open_flows;
  doc["stalled_flows"] = stalled_flows;
  util::Json flight = util::Json::object();
  flight["rings"] = flight_rings;
  flight["events"] = flight_events;
  flight["dump_worthy"] = flight_dump_worthy;
  doc["flight"] = std::move(flight);
  return doc;
}

HealthMonitor::HealthMonitor(sim::Engine& engine, Telemetry& telemetry,
                             HealthConfig config)
    : engine_(&engine), telemetry_(&telemetry), config_(std::move(config)),
      slo_(config_.slo), anomaly_(config_.anomaly),
      exempt_(config_.watchdog_exempt.begin(), config_.watchdog_exempt.end()) {}

void HealthMonitor::set_link_probe(
    std::function<std::vector<LinkProbe>()> probe) {
  link_probe_ = std::move(probe);
}

void HealthMonitor::start(double horizon_s) {
  if (!config_.enabled) return;
  horizon_s_ = horizon_s;
  schedule_next();
}

void HealthMonitor::schedule_next() {
  const sim::SimTime next =
      engine_->now() + sim::Duration::from_seconds(config_.snapshot_interval_s);
  if (next.seconds() > horizon_s_) return;
  engine_->schedule_at(next, [this] {
    tick();
    schedule_next();
  });
}

SloInput HealthMonitor::extract_slo_input(
    const std::vector<MetricSample>& snapshot, sim::SimTime now) const {
  SloInput input;
  input.at = now;
  double active = 0.0;
  for (const auto& s : snapshot) {
    if (s.name == "flow_runs_total") {
      auto it = s.labels.find("state");
      if (it == s.labels.end()) continue;
      if (it->second == "succeeded") {
        input.succeeded += static_cast<uint64_t>(s.value);
      } else if (it->second == "failed") {
        input.failed += static_cast<uint64_t>(s.value);
      }
    } else if (s.name == "flow_runs_slow_total") {
      input.slow += static_cast<uint64_t>(s.value);
    } else if (s.name == "flow_active_runs") {
      active += s.value;
    }
  }
  input.started =
      input.succeeded + input.failed + static_cast<uint64_t>(active);
  return input;
}

void HealthMonitor::run_watchdogs(sim::SimTime now,
                                  std::vector<HealthAlert>& out) {
  const auto open = telemetry_->flight.open_flows();
  size_t stalled = 0;
  for (const auto& flow : open) {
    if (exempt_.count(flow.subject)) continue;
    const double age_s = (now - flow.opened).seconds();
    const double quiet_s = (now - flow.last_event).seconds();

    if (age_s > config_.flow_deadline_s &&
        !deadline_flagged_.count(flow.subject)) {
      deadline_flagged_.insert(flow.subject);
      ++watchdog_flags_;
      out.push_back({now, "watchdog-deadline", "critical", flow.subject,
                     "open " + std::to_string(age_s) + "s > deadline " +
                         std::to_string(config_.flow_deadline_s) + "s"});
      telemetry_->flight.record(
          flow.subject, util::LogLevel::Warn, "health", "watchdog-deadline",
          now, util::Json::object({{"age_s", age_s}}));
      telemetry_->flight.request_dump(flow.subject, "deadline-miss", now);
    }

    if (quiet_s > config_.stall_after_s) {
      ++stalled;
      if (!stall_flagged_.count(flow.subject)) {
        stall_flagged_.insert(flow.subject);
        ++watchdog_flags_;
        out.push_back({now, "watchdog-stall", "warn", flow.subject,
                       "no flight progress for " + std::to_string(quiet_s) +
                           "s (> " + std::to_string(config_.stall_after_s) +
                           "s)"});
        // Deliberately no ring event here: that would reset the quiet timer
        // the watchdog is measuring.
        telemetry_->flight.request_dump(flow.subject, "watchdog-stall", now);
      }
    } else {
      stall_flagged_.erase(flow.subject);
    }
  }
  stalled_now_ = stalled;
}

void HealthMonitor::score_providers(const std::vector<MetricSample>& snapshot,
                                    sim::SimTime now) {
  std::map<std::string, ProviderCounts> counts;
  std::map<std::string, double> breaker_open;
  for (const auto& s : snapshot) {
    auto it = s.labels.find("provider");
    if (it == s.labels.end()) continue;
    const std::string& provider = it->second;
    if (s.name == "flow_retries_total") {
      counts[provider].retries += s.value;
    } else if (s.name == "flow_timeouts_total") {
      counts[provider].timeouts += s.value;
    } else if (s.name == "flow_breaker_deferrals_total") {
      counts[provider].deferrals += s.value;
    } else if (s.name == "flow_polls_total" ||
               s.name == "flow_breaker_transitions_total") {
      counts[provider];  // provider discovery only
    } else if (s.name == "flow_breaker_open") {
      counts[provider];
      breaker_open[provider] = s.value;
    }
  }

  provider_history_.emplace_back(now, counts);
  const sim::SimTime keep{
      now.ns - static_cast<int64_t>(config_.slo.fast.seconds * 1e9)};
  while (provider_history_.size() > 2 && provider_history_[1].first <= keep) {
    provider_history_.pop_front();
  }
  const auto& base = provider_history_.front();
  const double window_s = std::max((now - base.first).seconds(),
                                   config_.snapshot_interval_s);
  const double per_min = 60.0 / window_s;

  provider_scores_.clear();
  for (const auto& [provider, cur] : counts) {
    ProviderCounts prev;
    auto it = base.second.find(provider);
    if (it != base.second.end()) prev = it->second;
    ProviderScore score;
    score.provider = provider;
    score.breaker_open = breaker_open.count(provider) ? breaker_open[provider]
                                                      : 0.0;
    score.retries_per_min = (cur.retries - prev.retries) * per_min;
    score.timeouts_per_min = (cur.timeouts - prev.timeouts) * per_min;
    score.deferrals_per_min = (cur.deferrals - prev.deferrals) * per_min;
    // Health-score formula (documented in DESIGN.md §15): start from 100,
    // subtract 50 for an open breaker, then windowed instability rates.
    score.score = clamp_score(100.0 - 50.0 * score.breaker_open -
                              15.0 * score.retries_per_min -
                              10.0 * score.timeouts_per_min -
                              10.0 * score.deferrals_per_min);
    provider_scores_.push_back(std::move(score));
  }
}

void HealthMonitor::score_links() {
  link_scores_.clear();
  if (!link_probe_) return;
  for (const auto& probe : link_probe_()) {
    LinkScore score;
    score.link = probe.link;
    score.up = probe.up;
    score.utilization = probe.utilization;
    score.score = probe.up
                      ? clamp_score(100.0 -
                                    30.0 * std::min(1.0, probe.utilization))
                      : 0.0;
    link_scores_.push_back(std::move(score));
  }
}

void HealthMonitor::publish_alert(const HealthAlert& alert) {
  alerts_.push_back(alert);
  if (alerts_.size() > config_.max_alert_history) {
    alerts_.erase(alerts_.begin());
  }
  telemetry_->metrics
      .counter("health_alerts_total", "Health-plane alerts raised, by kind",
               {{"kind", alert.kind}, {"severity", alert.severity}})
      .inc();
  health_logger().warn("[%s/%s] %s: %s", alert.kind.c_str(),
                       alert.severity.c_str(), alert.subject.c_str(),
                       alert.detail.c_str());
}

void HealthMonitor::tick() {
  if (!config_.enabled) return;
  const sim::SimTime now = engine_->now();
  ++ticks_;
  const auto snapshot = telemetry_->metrics.snapshot();

  std::vector<HealthAlert> fired;

  const SloInput input = extract_slo_input(snapshot, now);
  for (auto& alert : slo_.feed(input)) {
    ++slo_alerts_;
    fired.push_back(std::move(alert));
  }

  for (auto& alert : anomaly_.observe(now, snapshot)) {
    fired.push_back(std::move(alert));
  }

  run_watchdogs(now, fired);
  score_providers(snapshot, now);
  score_links();

  for (const auto& alert : fired) publish_alert(alert);

  auto& metrics = telemetry_->metrics;
  for (const auto& s : slo_.status()) {
    metrics
        .gauge("slo_burn_rate", "Error-budget burn rate by objective/window",
               {{"objective", s.objective}, {"window", "fast"}})
        .set(s.fast_burn);
    metrics
        .gauge("slo_burn_rate", "Error-budget burn rate by objective/window",
               {{"objective", s.objective}, {"window", "slow"}})
        .set(s.slow_burn);
  }
  for (const auto& p : provider_scores_) {
    Labels labels{{"provider", p.provider}};
    if (!site_.empty()) labels["site"] = site_;
    metrics
        .gauge("health_provider_score",
               "Broker-facing provider health score (0-100)", labels)
        .set(p.score);
  }
  for (const auto& l : link_scores_) {
    Labels labels{{"link", l.link}};
    if (!site_.empty()) labels["site"] = site_;
    metrics
        .gauge("health_link_score", "Broker-facing link health score (0-100)",
               labels)
        .set(l.score);
  }
  size_t open_count = 0;
  for (const auto& flow : telemetry_->flight.open_flows()) {
    if (!exempt_.count(flow.subject)) ++open_count;
  }
  metrics.gauge("health_open_flows", "Flows with open flight rings")
      .set(static_cast<double>(open_count));
  metrics
      .gauge("health_stalled_flows",
             "Open flows past the stall watchdog threshold")
      .set(static_cast<double>(stalled_now_));
  metrics.counter("health_ticks_total", "Health monitor evaluation passes")
      .inc();
}

HealthReport HealthMonitor::report() const {
  HealthReport report;
  report.at = engine_->now();
  report.site = site_;
  report.providers = provider_scores_;
  report.links = link_scores_;
  report.slos = slo_.status();
  report.alerts = alerts_;
  size_t open_count = 0;
  for (const auto& flow : telemetry_->flight.open_flows()) {
    if (!exempt_.count(flow.subject)) ++open_count;
  }
  report.open_flows = open_count;
  report.stalled_flows = stalled_now_;
  report.flight_rings = telemetry_->flight.ring_count();
  report.flight_events = telemetry_->flight.events_recorded();
  report.flight_dump_worthy = telemetry_->flight.dump_worthy_count();
  return report;
}

}  // namespace pico::telemetry::health

#include "telemetry/health/slo.hpp"

#include <algorithm>
#include <cstdio>

namespace pico::telemetry::health {

namespace {

uint64_t bad_errors(const SloInput& s) { return s.failed; }
uint64_t bad_slow(const SloInput& s) { return s.slow; }
uint64_t total_runs(const SloInput& s) { return s.succeeded + s.failed; }
uint64_t total_completed(const SloInput& s) { return s.succeeded; }

std::string format_burn(double fast, double slow) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "fast_burn=%.2f slow_burn=%.2f", fast, slow);
  return buf;
}

}  // namespace

const SloInput& SloEngine::baseline_for(const SloInput& now,
                                        double window_s) const {
  const sim::SimTime cutoff{now.at.ns -
                            static_cast<int64_t>(window_s * 1e9)};
  // history_ is time-ordered; take the newest sample at or before the cutoff
  // so the delta spans at least the full window, else the oldest we have.
  const SloInput* base = &history_.front();
  for (const auto& s : history_) {
    if (s.at > cutoff) break;
    base = &s;
  }
  return *base;
}

double SloEngine::burn_over(const SloInput& now, double window_s, Extract bad,
                            Extract total, double budget) const {
  if (history_.empty() || budget <= 0.0) return 0.0;
  const SloInput& base = baseline_for(now, window_s);
  const uint64_t total_delta = total(now) - total(base);
  if (total_delta == 0) return 0.0;
  const uint64_t bad_delta = bad(now) - bad(base);
  const double rate =
      static_cast<double>(bad_delta) / static_cast<double>(total_delta);
  return rate / budget;
}

std::vector<HealthAlert> SloEngine::feed(const SloInput& input) {
  std::vector<HealthAlert> alerts;

  const double fast_w = config_.fast.seconds;
  const double slow_w = config_.slow.seconds;

  const double err_fast =
      burn_over(input, fast_w, bad_errors, total_runs, config_.spec.error_budget);
  const double err_slow =
      burn_over(input, slow_w, bad_errors, total_runs, config_.spec.error_budget);
  const double lat_fast = burn_over(input, fast_w, bad_slow, total_completed,
                                    config_.spec.latency_budget);
  const double lat_slow = burn_over(input, slow_w, bad_slow, total_completed,
                                    config_.spec.latency_budget);

  const bool err_hot = err_fast >= config_.fast.threshold &&
                       err_slow >= config_.slow.threshold;
  const bool lat_hot = lat_fast >= config_.fast.threshold &&
                       lat_slow >= config_.slow.threshold;

  if (err_hot && !error_active_) {
    alerts.push_back({input.at, "slo-burn", "critical", "error_rate",
                      config_.spec.flow_type + " error-budget burn: " +
                          format_burn(err_fast, err_slow)});
  }
  error_active_ = err_hot;

  if (lat_hot && !latency_active_) {
    alerts.push_back({input.at, "slo-burn", "critical", "latency",
                      config_.spec.flow_type + " latency-budget burn (>" +
                          std::to_string(config_.spec.completion_latency_s) +
                          "s): " + format_burn(lat_fast, lat_slow)});
  }
  latency_active_ = lat_hot;

  // Time-to-first-result: fires at most once, only when flows have actually
  // started (an idle facility is not in violation).
  const bool ttfr_late = input.started > 0 && input.succeeded == 0 &&
                         input.at.seconds() >
                             config_.spec.time_to_first_result_s;
  if (ttfr_late && !ttfr_fired_) {
    ttfr_fired_ = true;
    alerts.push_back({input.at, "slo-ttfr", "warn", "ttfr",
                      "no first result after " +
                          std::to_string(input.at.seconds()) + "s (objective " +
                          std::to_string(config_.spec.time_to_first_result_s) +
                          "s)"});
  }

  status_ = {
      {"error_rate", err_fast, err_slow, err_hot},
      {"latency", lat_fast, lat_slow, lat_hot},
      {"ttfr", 0.0, 0.0, ttfr_late},
  };

  history_.push_back(input);
  // Keep a little more than the slow window of history.
  const sim::SimTime keep_after{
      input.at.ns - static_cast<int64_t>((slow_w + 2.0 * fast_w) * 1e9)};
  while (history_.size() > 2 && history_[1].at <= keep_after) {
    history_.pop_front();
  }

  alerts_fired_ += alerts.size();
  return alerts;
}

}  // namespace pico::telemetry::health

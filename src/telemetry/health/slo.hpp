#pragma once
// Declarative service-level objectives per flow type, evaluated as
// multi-window error-budget burn rates over periodic metric snapshots.
//
// Burn rate is the SRE textbook quantity: (observed bad fraction over a
// window) / (budgeted bad fraction). A burn of 1.0 spends the budget exactly
// at the sustainable pace; an alert fires when BOTH the fast and slow windows
// burn above their thresholds — the fast window catches the cliff, the slow
// window keeps one unlucky run from paging anyone.
//
// The engine consumes plain extracted counts (the HealthMonitor pulls them
// out of MetricsRegistry snapshots) so it is trivially unit-testable.
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pico::telemetry::health {

/// Objectives for one flow type.
struct SloSpec {
  std::string flow_type = "campaign";  ///< informational label on alerts
  /// A run is "slow" when its total latency exceeds this objective.
  double completion_latency_s = 600.0;
  /// Fraction of runs allowed to fail (error budget).
  double error_budget = 0.05;
  /// Fraction of runs allowed to exceed completion_latency_s.
  double latency_budget = 0.10;
  /// Some result must land within this of campaign start.
  double time_to_first_result_s = 300.0;
};

struct BurnWindow {
  double seconds = 300.0;
  double threshold = 6.0;  ///< alert when burn rate >= threshold
};

struct SloConfig {
  SloSpec spec;
  BurnWindow fast{300.0, 6.0};
  BurnWindow slow{1800.0, 2.0};
};

/// Cumulative counts extracted from one metrics snapshot.
struct SloInput {
  sim::SimTime at;
  uint64_t succeeded = 0;  ///< flow_runs_total{state="succeeded"}
  uint64_t failed = 0;     ///< flow_runs_total{state="failed"}
  uint64_t slow = 0;       ///< completed runs slower than the objective
  uint64_t started = 0;    ///< flows that have begun (flight rings opened)
};

/// Point-in-time status of one objective.
struct SloStatus {
  std::string objective;  ///< "error_rate" | "latency" | "ttfr"
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool alerting = false;
};

/// An alert raised by the health plane (SLO burn, watchdog, anomaly).
struct HealthAlert {
  sim::SimTime at;
  std::string kind;      ///< e.g. "slo-burn", "watchdog-stall", "anomaly"
  std::string severity;  ///< "warn" | "critical"
  std::string subject;   ///< objective, flow run id, or metric series
  std::string detail;
};

/// Multi-window burn-rate evaluator. feed() one SloInput per snapshot tick;
/// alerts fire on the rising edge of a violation episode and re-arm once the
/// burn drops back below threshold.
class SloEngine {
 public:
  explicit SloEngine(SloConfig config = {}) : config_(config) {}

  const SloConfig& config() const { return config_; }

  /// Ingest one snapshot and return any newly fired alerts.
  std::vector<HealthAlert> feed(const SloInput& input);

  /// Latest burn status per objective (error_rate, latency, ttfr).
  const std::vector<SloStatus>& status() const { return status_; }

  uint64_t alerts_fired() const { return alerts_fired_; }

 private:
  using Extract = uint64_t (*)(const SloInput&);
  /// Burn rate for bad/total deltas over one trailing window. When less than
  /// a full window of history exists the oldest sample is the baseline.
  double burn_over(const SloInput& now, double window_s, Extract bad,
                   Extract total, double budget) const;
  const SloInput& baseline_for(const SloInput& now, double window_s) const;

  SloConfig config_;
  std::deque<SloInput> history_;
  std::vector<SloStatus> status_;
  bool error_active_ = false;
  bool latency_active_ = false;
  bool ttfr_fired_ = false;
  uint64_t alerts_fired_ = 0;
};

}  // namespace pico::telemetry::health

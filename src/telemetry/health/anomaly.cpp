#include "telemetry/health/anomaly.hpp"

#include <cmath>
#include <cstdio>

namespace pico::telemetry::health {

AnomalyDetector::AnomalyDetector(AnomalyConfig config)
    : config_(std::move(config)) {
  for (const auto& family : config_.families) watched_[family] = true;
}

std::vector<HealthAlert> AnomalyDetector::observe(
    sim::SimTime at, const std::vector<MetricSample>& snapshot) {
  std::vector<HealthAlert> alerts;
  for (const auto& sample : snapshot) {
    // Histograms participate through their cumulative sum (e.g.
    // stream_degraded_seconds); gauges are point-in-time and skipped.
    if (sample.kind == MetricKind::Gauge) continue;
    if (!watched_.empty() && !watched_.count(sample.name)) continue;

    std::string key = sample.name;
    for (const auto& [k, v] : sample.labels) key += "," + k + "=" + v;

    SeriesState& s = state_[key];
    if (!s.seen) {
      s.seen = true;
      s.last = sample.value;
      if (config_.alert_on_birth && global_ticks_ >=
              static_cast<uint64_t>(config_.warmup_ticks) &&
          sample.value >= config_.min_delta) {
        // A watched series born after warmup means the bad thing just
        // started happening; series present from tick zero only seed state.
        char detail[96];
        std::snprintf(detail, sizeof(detail), "series appeared, value=%.1f",
                      sample.value);
        alerts.push_back({at, "anomaly", "warn", key, detail});
        ++alerts_fired_;
        s.hot = true;
      }
      continue;
    }
    const double delta = sample.value - s.last;
    s.last = sample.value;

    const double sigma = std::sqrt(s.var);
    const bool warm = s.ticks >= config_.warmup_ticks;
    if (warm && delta >= config_.min_delta) {
      const double z = (delta - s.mean) / (sigma > 1e-9 ? sigma : 1e-9);
      if (z >= config_.z_threshold) {
        if (!s.hot) {
          char detail[160];
          std::snprintf(detail, sizeof(detail),
                        "delta=%.1f ewma=%.2f sigma=%.2f z=%.1f", delta,
                        s.mean, sigma, z);
          alerts.push_back({at, "anomaly", "warn", key, detail});
          ++alerts_fired_;
        }
        s.hot = true;
        // Do not fold the spike into the baseline: a sustained incident keeps
        // alerting state hot instead of teaching the detector it's normal.
        ++s.ticks;
        continue;
      }
    }
    s.hot = false;
    const double dev = delta - s.mean;
    s.mean += config_.alpha * dev;
    s.var = (1.0 - config_.alpha) * (s.var + config_.alpha * dev * dev);
    ++s.ticks;
  }
  ++global_ticks_;
  return alerts;
}

}  // namespace pico::telemetry::health

#include "telemetry/health/flight_recorder.hpp"

#include <utility>

namespace pico::telemetry::health {

namespace {

util::Logger& flight_logger() {
  static util::Logger logger("flight");
  return logger;
}

}  // namespace

void FlightRecord::record(FlightEvent event) {
  event.seq = total_++;
  // Health-plane annotations (watchdog flags) are observations about the
  // flow, not progress by it — they must not reset the stall-quiet timer.
  if (event.component != "health") last_event_ = event.at;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) events_.pop_front();
}

util::Json FlightRecord::to_json() const {
  util::Json doc = util::Json::object();
  doc["subject"] = subject_;
  doc["opened_s"] = opened_.seconds();
  doc["last_event_s"] = last_event_.seconds();
  doc["closed"] = closed_;
  doc["dump_reason"] = dump_reason_;
  doc["events_total"] = total_;
  doc["events_dropped"] = dropped();
  util::Json events = util::Json::array();
  for (const auto& e : events_) {
    util::Json row = util::Json::object();
    row["seq"] = e.seq;
    row["t_s"] = e.at.seconds();
    row["level"] = std::string(util::log_level_name(e.level));
    row["component"] = e.component;
    row["name"] = e.name;
    if (!e.attrs.is_null()) row["attrs"] = e.attrs;
    events.push_back(std::move(row));
  }
  doc["events"] = std::move(events);
  return doc;
}

void FlightRecorder::open(const std::string& subject, sim::SimTime at) {
  if (!config_.enabled || subject.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_for(subject, at);
}

void FlightRecorder::record(const std::string& subject, util::LogLevel level,
                            std::string component, std::string name,
                            sim::SimTime at, util::Json attrs) {
  if (!config_.enabled || subject.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  FlightRecord& ring = ring_for(subject, at);
  flight_logger().trace("%s %s/%s @%.3fs", subject.c_str(), component.c_str(),
                        name.c_str(), at.seconds());
  if (level >= config_.dump_level) ring.request_dump(name);
  FlightEvent event;
  event.at = at;
  event.level = level;
  event.component = std::move(component);
  event.name = std::move(name);
  event.attrs = std::move(attrs);
  ring.record(std::move(event));
  ++events_recorded_;
}

void FlightRecorder::request_dump(const std::string& subject,
                                  const std::string& reason, sim::SimTime at) {
  if (!config_.enabled || subject.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  FlightRecord& ring = ring_for(subject, at);
  ring.request_dump(reason);
  flight_logger().warn("dump requested for %s: %s", subject.c_str(),
                       reason.c_str());
}

void FlightRecorder::close(const std::string& subject, sim::SimTime at) {
  if (!config_.enabled || subject.empty()) return;
  DumpSink sink;
  util::Json dump_doc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rings_.find(subject);
    if (it == rings_.end()) return;
    it->second->close(at);
    if (it->second->dump_requested() && sink_ && !dumped_[subject]) {
      dumped_[subject] = true;
      sink = sink_;
      dump_doc = it->second->to_json();
    }
  }
  if (sink) sink(subject, dump_doc);
}

std::string FlightRecorder::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (context_.empty()) return {};
  return context_.back();
}

void FlightRecorder::push(std::string subject) {
  std::lock_guard<std::mutex> lock(mu_);
  context_.push_back(std::move(subject));
}

void FlightRecorder::pop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!context_.empty()) context_.pop_back();
}

void FlightRecorder::set_dump_sink(DumpSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

util::Json FlightRecorder::dump(const std::string& subject) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(subject);
  if (it == rings_.end()) return util::Json();
  return it->second->to_json();
}

std::vector<std::pair<std::string, util::Json>> FlightRecorder::flush_dumps() {
  std::vector<std::pair<std::string, util::Json>> out;
  DumpSink sink;
  std::vector<std::pair<std::string, util::Json>> unsent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [subject, ring] : rings_) {
      if (!ring->dump_requested()) continue;
      util::Json doc = ring->to_json();
      if (!dumped_[subject]) {
        dumped_[subject] = true;
        unsent.emplace_back(subject, doc);
      }
      out.emplace_back(subject, std::move(doc));
    }
    sink = sink_;
  }
  if (sink) {
    for (const auto& [subject, doc] : unsent) sink(subject, doc);
  }
  return out;
}

std::vector<FlightRecorder::OpenFlow> FlightRecorder::open_flows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<OpenFlow> out;
  for (const auto& [subject, ring] : rings_) {
    if (ring->closed()) continue;
    out.push_back({subject, ring->opened(), ring->last_event()});
  }
  return out;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

uint64_t FlightRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_recorded_;
}

uint64_t FlightRecorder::dump_worthy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [subject, ring] : rings_) {
    if (ring->dump_requested()) ++n;
  }
  return n;
}

FlightRecord& FlightRecorder::ring_for(const std::string& subject,
                                       sim::SimTime at) {
  auto it = rings_.find(subject);
  if (it == rings_.end()) {
    it = rings_
             .emplace(subject, std::make_unique<FlightRecord>(
                                   subject, config_.ring_capacity, at))
             .first;
  } else if (it->second->closed()) {
    // Reopened (e.g. dead-letter resubmission touching the old run id).
    it->second->reopen();
    FlightEvent event;
    event.at = at;
    event.level = util::LogLevel::Info;
    event.component = "flight";
    event.name = "reopened";
    it->second->record(std::move(event));
  }
  return *it->second;
}

}  // namespace pico::telemetry::health

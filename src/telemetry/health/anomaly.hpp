#pragma once
// EWMA + z-score anomaly detection over metric snapshot deltas.
//
// For each watched counter series the detector tracks an exponentially
// weighted mean and variance of the per-tick delta. A tick whose delta sits
// more than z_threshold standard deviations above the learned mean (after a
// warmup period, and above an absolute floor so a first retry in an idle
// facility doesn't page) raises an "anomaly" alert. Deterministic: no clock,
// no RNG — state advances only on observe().
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/health/slo.hpp"

namespace pico::telemetry::health {

struct AnomalyConfig {
  double alpha = 0.3;        ///< EWMA smoothing factor for mean and variance
  double z_threshold = 4.0;  ///< alert when (delta - mean) / sigma exceeds this
  int warmup_ticks = 5;      ///< ticks observed before a series may alert
  double min_delta = 2.0;    ///< absolute floor: smaller deltas never alert
  /// A watched series first appearing after the facility has been quiet for
  /// warmup_ticks is itself anomalous (spill/corruption counters only exist
  /// once the bad thing happens); series present from the start just seed
  /// their baseline.
  bool alert_on_birth = true;
  /// Counter families watched; empty watches every counter family.
  std::vector<std::string> families = {
      "frames_dropped_total",     "stream_degraded_seconds",
      "stream_spills_total",      "stream_fallbacks_total",
      "corruption_detected_total", "flow_retries_total",
      "flow_timeouts_total",       "flow_notifications_lost_total",
  };
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyConfig config = {});

  /// Ingest one snapshot; returns alerts for series spiking this tick.
  std::vector<HealthAlert> observe(sim::SimTime at,
                                   const std::vector<MetricSample>& snapshot);

  uint64_t alerts_fired() const { return alerts_fired_; }
  size_t series_tracked() const { return state_.size(); }

 private:
  struct SeriesState {
    double last = 0.0;  ///< last cumulative value
    double mean = 0.0;  ///< EWMA of deltas
    double var = 0.0;   ///< EWMA of squared deviation
    int ticks = 0;
    bool seen = false;
    bool hot = false;  ///< currently in a spike episode (dedups alerts)
  };

  AnomalyConfig config_;
  std::map<std::string, bool> watched_;  ///< family -> true (empty = all)
  std::map<std::string, SeriesState> state_;
  uint64_t alerts_fired_ = 0;
  uint64_t global_ticks_ = 0;  ///< observe() calls (series-birth warmup)
};

}  // namespace pico::telemetry::health

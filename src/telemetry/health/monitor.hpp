#pragma once
// The live health plane: a periodic monitor that snapshots the metrics
// registry, evaluates SLO burn rates, runs flow watchdogs over the flight
// recorder, feeds the anomaly detector, and distills per-provider/per-link
// health scores — the interface a federation broker reads to route flows.
//
// Everything the monitor emits goes three ways: a HealthReport (JSON + portal
// page), health_* gauges/counters back into the MetricsRegistry (so the
// Prometheus exposition carries scores and alert counts), and flight-ring
// events + dump requests for flows it flags.
//
// Determinism: the monitor draws no randomness and only adds its own periodic
// events to the engine, so enabling it never perturbs the relative order of
// the simulation it observes.
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "telemetry/health/anomaly.hpp"
#include "telemetry/health/flight_recorder.hpp"
#include "telemetry/health/slo.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace pico::telemetry::health {

struct HealthConfig {
  bool enabled = true;
  double snapshot_interval_s = 15.0;
  /// Watchdog: flag a flow whose flight ring shows no progress for this long.
  double stall_after_s = 120.0;
  /// Watchdog: flag (and dump) a flow open longer than this.
  double flow_deadline_s = 900.0;
  /// Facility-scope flight subjects exempt from flow watchdogs.
  std::vector<std::string> watchdog_exempt = {"chaos", "scrubber", "campaign"};
  size_t max_alert_history = 1024;
  FlightRecorderConfig flight;
  SloConfig slo;
  AnomalyConfig anomaly;
};

/// Broker-facing score for one action provider, 0 (dead) .. 100 (healthy).
struct ProviderScore {
  std::string provider;
  double score = 100.0;
  double breaker_open = 0.0;  ///< 0 closed, 0.5 half-open, 1 open
  double retries_per_min = 0.0;
  double timeouts_per_min = 0.0;
  double deferrals_per_min = 0.0;
};

/// What a link probe reports about one network link.
struct LinkProbe {
  std::string link;
  bool up = true;
  double utilization = 0.0;  ///< [0, 1]
};

/// Broker-facing score for one link.
struct LinkScore {
  std::string link;
  bool up = true;
  double utilization = 0.0;
  double score = 100.0;
};

struct HealthReport {
  sim::SimTime at;
  /// Owning facility's federation site name ("" = unfederated). Stamped so a
  /// broker aggregating N facility reports keys every score by (site,
  /// provider) — never by provider name alone.
  std::string site;
  std::vector<ProviderScore> providers;
  std::vector<LinkScore> links;
  std::vector<SloStatus> slos;
  std::vector<HealthAlert> alerts;  ///< bounded history, oldest first
  size_t open_flows = 0;
  size_t stalled_flows = 0;
  size_t flight_rings = 0;
  uint64_t flight_events = 0;
  uint64_t flight_dump_worthy = 0;

  util::Json to_json() const;
};

class HealthMonitor {
 public:
  HealthMonitor(sim::Engine& engine, Telemetry& telemetry,
                HealthConfig config = {});

  const HealthConfig& config() const { return config_; }

  /// Facility installs a probe over its topology/network (the telemetry
  /// library cannot depend on net/).
  void set_link_probe(std::function<std::vector<LinkProbe>()> probe);

  /// Federation identity stamped on reports and the health_* gauge label
  /// sets. Empty (default) keeps the classic unlabelled series.
  void set_site(std::string site) { site_ = std::move(site); }
  const std::string& site() const { return site_; }

  /// Schedule periodic ticks while tick time <= horizon (campaign duration),
  /// so the engine's queue still drains.
  void start(double horizon_s);

  /// One evaluation pass; also callable directly (tests, campaign end).
  void tick();

  HealthReport report() const;

  /// Last computed broker-facing scores (refreshed each tick()). Cheap
  /// references — a federation broker consults them on every submit, where
  /// copying the full report (bounded alert history included) would dominate
  /// the routing cost.
  const std::vector<ProviderScore>& provider_scores() const {
    return provider_scores_;
  }
  const std::vector<LinkScore>& link_scores() const { return link_scores_; }

  const std::vector<HealthAlert>& alerts() const { return alerts_; }
  uint64_t slo_alerts() const { return slo_alerts_; }
  uint64_t watchdog_flags() const { return watchdog_flags_; }
  uint64_t anomaly_alerts() const { return anomaly_.alerts_fired(); }
  uint64_t ticks() const { return ticks_; }

 private:
  void schedule_next();
  SloInput extract_slo_input(const std::vector<MetricSample>& snapshot,
                             sim::SimTime now) const;
  void run_watchdogs(sim::SimTime now, std::vector<HealthAlert>& out);
  void score_providers(const std::vector<MetricSample>& snapshot,
                       sim::SimTime now);
  void score_links();
  void publish_alert(const HealthAlert& alert);

  sim::Engine* engine_;
  Telemetry* telemetry_;
  HealthConfig config_;
  std::string site_;
  SloEngine slo_;
  AnomalyDetector anomaly_;
  std::function<std::vector<LinkProbe>()> link_probe_;

  double horizon_s_ = 0.0;
  uint64_t ticks_ = 0;
  uint64_t slo_alerts_ = 0;
  uint64_t watchdog_flags_ = 0;

  std::vector<HealthAlert> alerts_;
  std::set<std::string> exempt_;
  std::set<std::string> deadline_flagged_;
  std::set<std::string> stall_flagged_;
  size_t stalled_now_ = 0;

  /// Per-provider cumulative counters sampled over the fast window.
  struct ProviderCounts {
    double retries = 0, timeouts = 0, deferrals = 0;
  };
  std::deque<std::pair<sim::SimTime, std::map<std::string, ProviderCounts>>>
      provider_history_;
  std::vector<ProviderScore> provider_scores_;
  std::vector<LinkScore> link_scores_;
};

}  // namespace pico::telemetry::health

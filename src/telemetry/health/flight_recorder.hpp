#pragma once
// Per-flow flight recorder: a bounded, lock-cheap ring of structured events
// (state transitions, retries, breaker trips, frame NACKs/spills, scrub hits)
// attached to every flow run. Services append through the shared Telemetry
// bundle; when a run fails, falls back, or misses its deadline the ring is
// dumped as JSON — the black box a postmortem replays instead of a Chrome
// trace.
//
// Subjects are free-form strings: flow run ids for orchestrated work,
// "chaos" / "scrubber" for facility-level actors. Attribution across async
// service boundaries uses a context stack mirroring telemetry::Tracer — the
// flow engine pushes its run id around provider->start(), and the service
// captures current() into the task/session it creates, so frame NACKs landing
// seconds later still reach the right ring.
//
// Built on util/log.hpp: every event carries a LogLevel, events at Warn or
// above mark the ring dump-worthy, and recorded events mirror into the
// "flight" logger at trace level so a developer can tail the stream live.
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace pico::telemetry::health {

/// One structured entry in a flight ring.
struct FlightEvent {
  uint64_t seq = 0;  ///< per-ring monotonic sequence (survives eviction)
  sim::SimTime at;
  util::LogLevel level = util::LogLevel::Info;
  std::string component;  ///< producing layer: "flow", "stream", "transfer"...
  std::string name;       ///< e.g. "state", "retry", "frame-nack", "spill"
  util::Json attrs;
};

/// Bounded ring of FlightEvents for one subject. Appends are O(1); when full
/// the oldest event is evicted (dropped_ keeps the honest total).
class FlightRecord {
 public:
  explicit FlightRecord(std::string subject, size_t capacity,
                        sim::SimTime opened)
      : subject_(std::move(subject)), capacity_(capacity), opened_(opened),
        last_event_(opened) {}

  void record(FlightEvent event);

  const std::string& subject() const { return subject_; }
  sim::SimTime opened() const { return opened_; }
  sim::SimTime last_event() const { return last_event_; }
  bool closed() const { return closed_; }
  void close(sim::SimTime at) { closed_ = true; last_event_ = at; }
  void reopen() { closed_ = false; }
  /// A Warn+ event or an explicit request marked this ring dump-worthy.
  bool dump_requested() const { return dump_requested_; }
  void request_dump(const std::string& reason) {
    dump_requested_ = true;
    if (dump_reason_.empty()) dump_reason_ = reason;
  }
  const std::string& dump_reason() const { return dump_reason_; }

  uint64_t total() const { return total_; }
  uint64_t dropped() const { return total_ - events_.size(); }
  const std::deque<FlightEvent>& events() const { return events_; }

  /// Full flight record as JSON (oldest surviving event first).
  util::Json to_json() const;

 private:
  std::string subject_;
  size_t capacity_;
  sim::SimTime opened_;
  sim::SimTime last_event_;
  bool closed_ = false;
  bool dump_requested_ = false;
  std::string dump_reason_;
  uint64_t total_ = 0;
  std::deque<FlightEvent> events_;
};

struct FlightRecorderConfig {
  bool enabled = true;
  size_t ring_capacity = 256;
  /// Events at or above this level mark the ring dump-worthy on their own.
  util::LogLevel dump_level = util::LogLevel::Error;
};

/// Registry of flight rings plus the subject context stack. One mutex guards
/// the map and stack; ring appends are O(1) under it (the sim engine is the
/// only steady-state writer, so the lock is uncontended in practice).
class FlightRecorder {
 public:
  FlightRecorder() = default;
  explicit FlightRecorder(FlightRecorderConfig config)
      : config_(config) {}

  void configure(const FlightRecorderConfig& config) { config_ = config; }
  bool enabled() const { return config_.enabled; }

  /// Open a ring for `subject` (find-or-create; reopening a closed ring
  /// keeps its history and clears the closed flag).
  void open(const std::string& subject, sim::SimTime at);

  /// Append an event. Auto-opens the ring. No-op when disabled or `subject`
  /// is empty — services record against current() unconditionally.
  void record(const std::string& subject, util::LogLevel level,
              std::string component, std::string name, sim::SimTime at,
              util::Json attrs = {});

  /// Mark a ring dump-worthy (deadline miss, watchdog flag, explicit ask).
  void request_dump(const std::string& subject, const std::string& reason,
                    sim::SimTime at);

  /// Settle a ring: no more activity expected. If it was marked dump-worthy
  /// and a dump sink is installed, the sink fires here with the full JSON.
  void close(const std::string& subject, sim::SimTime at);

  /// Subject context stack (engine-thread scoped, like Tracer's).
  std::string current() const;
  class Scope {
   public:
    Scope(FlightRecorder& recorder, std::string subject)
        : recorder_(&recorder) {
      recorder_->push(std::move(subject));
    }
    ~Scope() { recorder_->pop(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FlightRecorder* recorder_;
  };

  /// Dump sink: fired at close() for dump-worthy rings (and by flush_dumps
  /// for rings still open). Campaign drivers install a file writer.
  using DumpSink =
      std::function<void(const std::string& subject, const util::Json& dump)>;
  void set_dump_sink(DumpSink sink);

  /// On-demand dump of one ring (portal / debugging). Null when absent.
  util::Json dump(const std::string& subject) const;
  /// All dump-worthy rings (closed or not) as {subject -> record JSON};
  /// fires the sink for any that have not reached it yet.
  std::vector<std::pair<std::string, util::Json>> flush_dumps();

  /// Subjects with rings still open (watchdog scan surface), with their
  /// opened / last-activity timestamps.
  struct OpenFlow {
    std::string subject;
    sim::SimTime opened;
    sim::SimTime last_event;
  };
  std::vector<OpenFlow> open_flows() const;

  size_t ring_count() const;
  uint64_t events_recorded() const;
  uint64_t dump_worthy_count() const;

 private:
  friend class Scope;
  void push(std::string subject);
  void pop();
  FlightRecord& ring_for(const std::string& subject, sim::SimTime at);

  mutable std::mutex mu_;
  FlightRecorderConfig config_;
  std::map<std::string, std::unique_ptr<FlightRecord>> rings_;
  std::vector<std::string> context_;
  DumpSink sink_;
  uint64_t events_recorded_ = 0;
  /// Subjects whose dump already reached the sink (avoid double delivery).
  std::map<std::string, bool> dumped_;
};

}  // namespace pico::telemetry::health

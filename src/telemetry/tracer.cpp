#include "telemetry/tracer.hpp"

#include <utility>

namespace pico::telemetry {

uint64_t Tracer::open(std::string component, std::string label,
                      uint64_t parent) {
  std::lock_guard lock(mu_);
  uint64_t id = next_span_++;
  Pending p;
  p.component = std::move(component);
  p.label = std::move(label);
  p.parent = parent == kUseContext
                 ? (context_.empty() ? 0 : context_.back())
                 : parent;
  open_.emplace(id, std::move(p));
  return id;
}

void Tracer::event(uint64_t span, std::string name, sim::SimTime at,
                   util::Json attrs) {
  std::lock_guard lock(mu_);
  auto it = open_.find(span);
  if (it == open_.end()) return;
  it->second.events.push_back(
      sim::SpanEvent{std::move(name), at, std::move(attrs)});
}

void Tracer::close(uint64_t span, std::string category, sim::SimTime start,
                   sim::SimTime end, util::Json attrs) {
  Pending p;
  {
    std::lock_guard lock(mu_);
    auto it = open_.find(span);
    if (it == open_.end()) return;
    p = std::move(it->second);
    open_.erase(it);
  }
  sim::Span s;
  s.component = std::move(p.component);
  s.category = std::move(category);
  s.label = std::move(p.label);
  s.start = start;
  s.end = end;
  s.attrs = std::move(attrs);
  s.trace_id = trace_id_;
  s.span_id = span;
  s.parent_id = p.parent;
  s.events = std::move(p.events);
  if (sink_) sink_->add(std::move(s));
}

uint64_t Tracer::current() const {
  std::lock_guard lock(mu_);
  return context_.empty() ? 0 : context_.back();
}

size_t Tracer::open_count() const {
  std::lock_guard lock(mu_);
  return open_.size();
}

void Tracer::push(uint64_t span) {
  std::lock_guard lock(mu_);
  context_.push_back(span);
}

void Tracer::pop() {
  std::lock_guard lock(mu_);
  if (!context_.empty()) context_.pop_back();
}

}  // namespace pico::telemetry

#pragma once
// Facility-wide metrics registry. Services register counters, gauges, and
// fixed-bucket histograms by name + labels (Prometheus-style families, e.g.
// transfer_bytes_total{src="picoprobe-user",dst="alcf-eagle"}) and the
// registry snapshots them deterministically — families sorted by name, series
// sorted by label set — so Prometheus text exposition is byte-stable across
// runs with the same seed.
//
// Thread safety: registration takes the registry mutex; increments on an
// already-registered instrument are lock-free (atomic CAS), so data-plane
// workers may bump counters concurrently with the sim engine.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace pico::telemetry {

using Labels = std::map<std::string, std::string>;

namespace detail {
/// Lock-free add for pre-C++20-fetch_add portability on atomic<double>.
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing value (events, bytes, retries).
class Counter {
 public:
  void inc(double v = 1.0) { detail::atomic_add(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time value (queue depth, utilization, pool width).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { detail::atomic_add(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative bucket counts over caller-supplied
/// upper bounds, plus sum/count/max. Quantiles (p50/p90/...) are estimated by
/// linear interpolation inside the containing bucket — the standard
/// Prometheus histogram_quantile technique — with the tracked max as the
/// upper clamp so "+Inf bucket" estimates stay finite.
class FixedHistogram {
 public:
  explicit FixedHistogram(std::vector<double> upper_bounds);

  void observe(double v);

  /// Exponential default buckets for second-scale latencies: 0.01s .. ~655s.
  static std::vector<double> latency_buckets_s();
  /// Default buckets for byte volumes: 1 KiB .. 64 GiB.
  static std::vector<double> byte_buckets();

  double quantile(double q) const;  ///< q in [0, 1]
  /// p50/p90/p99 estimates in the reporter's shared Quantiles vocabulary.
  util::Quantiles quantiles() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i].
  uint64_t cumulative(size_t i) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  ///< per-bucket (not cumulative)
  std::atomic<uint64_t> overflow_{0};          ///< observations > bounds.back()
  std::atomic<double> sum_{0.0};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> max_{0.0};
};

enum class MetricKind { Counter, Gauge, Histogram };

std::string metric_kind_name(MetricKind k);

/// One series in a snapshot: resolved family + labels + current value(s).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::string help;
  Labels labels;
  double value = 0;  ///< counter/gauge value; histogram sum
  // Histogram-only fields.
  uint64_t count = 0;
  double p50 = 0, p90 = 0, max = 0;
  std::vector<std::pair<double, uint64_t>> buckets;  ///< (le, cumulative)
};

class MetricsRegistry {
 public:
  /// Find-or-create. The returned reference is stable for the registry's
  /// lifetime. Registering the same name with a different kind is an error
  /// (asserted in debug, first registration wins otherwise).
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  FixedHistogram& histogram(const std::string& name, const std::string& help,
                            const Labels& labels = {},
                            std::vector<double> upper_bounds = {});

  /// Deterministic snapshot: families sorted by name, series by label set.
  std::vector<MetricSample> snapshot() const;

  /// Prometheus text exposition format (counters rendered as their family
  /// name verbatim — callers follow the *_total convention when naming).
  std::string to_prometheus() const;

  /// Number of distinct metric families registered.
  size_t family_count() const;

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<FixedHistogram> histogram;
  };
  struct Family {
    MetricKind kind = MetricKind::Counter;
    std::string help;
    std::map<std::string, Series> series;  ///< keyed by serialized labels
  };

  static std::string label_key(const Labels& labels);
  Series& series_for(const std::string& name, const std::string& help,
                     MetricKind kind, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace pico::telemetry

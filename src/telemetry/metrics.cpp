#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.hpp"

namespace pico::telemetry {

using util::format;

std::string metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size()) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

std::vector<double> FixedHistogram::latency_buckets_s() {
  // 0.01 * 4^k: 10ms, 40ms, 160ms, 640ms, 2.56s, 10.2s, 41s, 164s, 655s.
  std::vector<double> b;
  for (double v = 0.01; v < 1000.0; v *= 4.0) b.push_back(v);
  return b;
}

std::vector<double> FixedHistogram::byte_buckets() {
  // 1 KiB * 16^k: 1 KiB, 16 KiB, 256 KiB, 4 MiB, 64 MiB, 1 GiB, 16 GiB.
  std::vector<double> b;
  for (double v = 1024.0; v <= 68719476736.0; v *= 16.0) b.push_back(v);
  return b;
}

void FixedHistogram::observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  if (i < counts_.size()) {
    counts_[i].fetch_add(1, std::memory_order_relaxed);
  } else {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  }
  detail::atomic_add(sum_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_max(max_, v);
}

uint64_t FixedHistogram::cumulative(size_t i) const {
  uint64_t total = 0;
  for (size_t b = 0; b <= i && b < counts_.size(); ++b) {
    total += counts_[b].load(std::memory_order_relaxed);
  }
  return total;
}

double FixedHistogram::quantile(double q) const {
  uint64_t n = count();
  // Empty histogram: no sample to estimate from. 0 keeps summary tables and
  // JSON stable instead of propagating NaN into reports.
  if (n == 0) return 0.0;
  // A NaN rank would make the ceil/cast below undefined; treat it as p100.
  if (std::isnan(q)) q = 1.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    uint64_t in_bucket = counts_[b].load(std::memory_order_relaxed);
    if (seen + in_bucket >= rank) {
      // Linear interpolation inside the bucket [lo, hi).
      double lo = b == 0 ? 0.0 : bounds_[b - 1];
      double hi = bounds_[b];
      double frac = in_bucket == 0
                        ? 0.0
                        : static_cast<double>(rank - seen) /
                              static_cast<double>(in_bucket);
      return std::min(max(), lo + (hi - lo) * frac);
    }
    seen += in_bucket;
  }
  // Rank falls in the overflow (+Inf) bucket: the tracked max is the best
  // finite estimate.
  return max();
}

util::Quantiles FixedHistogram::quantiles() const {
  util::Quantiles q;
  q.p50 = quantile(0.50);
  q.p90 = quantile(0.90);
  q.p99 = quantile(0.99);
  q.count = static_cast<size_t>(count());
  return q;
}

std::string MetricsRegistry::label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key.push_back('=');
    key += v;
    key.push_back(',');
  }
  return key;
}

MetricsRegistry::Series& MetricsRegistry::series_for(const std::string& name,
                                                     const std::string& help,
                                                     MetricKind kind,
                                                     const Labels& labels) {
  Family& fam = families_[name];
  if (fam.series.empty()) {
    fam.kind = kind;
    fam.help = help;
  }
  assert(fam.kind == kind && "metric family re-registered with another kind");
  Series& s = fam.series[label_key(labels)];
  if (s.labels.empty() && !labels.empty()) s.labels = labels;
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard lock(mu_);
  Series& s = series_for(name, help, MetricKind::Counter, labels);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard lock(mu_);
  Series& s = series_for(name, help, MetricKind::Gauge, labels);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           const std::string& help,
                                           const Labels& labels,
                                           std::vector<double> upper_bounds) {
  std::lock_guard lock(mu_);
  Series& s = series_for(name, help, MetricKind::Histogram, labels);
  if (!s.histogram) {
    if (upper_bounds.empty()) upper_bounds = FixedHistogram::latency_buckets_s();
    s.histogram = std::make_unique<FixedHistogram>(std::move(upper_bounds));
  }
  return *s.histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<MetricSample> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, series] : fam.series) {
      MetricSample sample;
      sample.name = name;
      sample.kind = fam.kind;
      sample.help = fam.help;
      sample.labels = series.labels;
      switch (fam.kind) {
        case MetricKind::Counter:
          sample.value = series.counter ? series.counter->value() : 0;
          break;
        case MetricKind::Gauge:
          sample.value = series.gauge ? series.gauge->value() : 0;
          break;
        case MetricKind::Histogram: {
          const FixedHistogram& h = *series.histogram;
          sample.value = h.sum();
          sample.count = h.count();
          sample.p50 = h.quantile(0.50);
          sample.p90 = h.quantile(0.90);
          sample.max = h.max();
          for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
            sample.buckets.emplace_back(h.upper_bounds()[i], h.cumulative(i));
          }
          break;
        }
      }
      out.push_back(std::move(sample));
    }
  }
  return out;
}

size_t MetricsRegistry::family_count() const {
  std::lock_guard lock(mu_);
  return families_.size();
}

namespace {

/// Prometheus value formatting: integers render bare, reals with enough
/// digits to round-trip campaign-scale magnitudes deterministically.
std::string prom_value(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return format("%lld", static_cast<long long>(v));
  }
  return format("%.10g", v);
}

/// Label-value escaping per the Prometheus text exposition spec: backslash,
/// double quote, and line feed must be escaped inside quoted label values.
std::string prom_escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// HELP text escaping: only backslash and line feed (quotes stay literal).
std::string prom_escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k + "=\"" + prom_escape_label(v) + "\"";
  }
  out.push_back('}');
  return out;
}

std::string prom_labels_with(const Labels& labels, const std::string& extra_key,
                             const std::string& extra_value) {
  Labels with = labels;
  with[extra_key] = extra_value;
  return prom_labels(with);
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  auto samples = snapshot();
  std::string out;
  std::string last_family;
  for (const MetricSample& s : samples) {
    if (s.name != last_family) {
      out += "# HELP " + s.name + " " + prom_escape_help(s.help) + "\n";
      out += "# TYPE " + s.name + " " + metric_kind_name(s.kind) + "\n";
      last_family = s.name;
    }
    switch (s.kind) {
      case MetricKind::Counter:
      case MetricKind::Gauge:
        out += s.name + prom_labels(s.labels) + " " + prom_value(s.value) + "\n";
        break;
      case MetricKind::Histogram: {
        for (const auto& [le, cum] : s.buckets) {
          out += s.name + "_bucket" +
                 prom_labels_with(s.labels, "le", prom_value(le)) + " " +
                 format("%llu", static_cast<unsigned long long>(cum)) + "\n";
        }
        out += s.name + "_bucket" + prom_labels_with(s.labels, "le", "+Inf") +
               " " + format("%llu", static_cast<unsigned long long>(s.count)) +
               "\n";
        out += s.name + "_sum" + prom_labels(s.labels) + " " +
               prom_value(s.value) + "\n";
        out += s.name + "_count" + prom_labels(s.labels) + " " +
               format("%llu", static_cast<unsigned long long>(s.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace pico::telemetry

#pragma once
// Hierarchical causal tracing over sim::Trace. Services open a span when work
// begins, attach point events (fault injections, breaker transitions, retry
// decisions) while it is in flight, and close it with its final category,
// interval, and attributes — the closed sim::Span lands in the shared Trace
// with trace_id / span_id / parent_id filled in.
//
// Parenting works two ways:
//  - explicitly, by passing the parent span id (a flow run parents its steps);
//  - implicitly, through the context stack: a Scope pushed around a
//    synchronous call (the flow engine around provider->start()) makes that
//    span the default parent for any span opened underneath. The sim engine
//    is single-threaded, so one stack suffices; the mutex covers bookkeeping
//    so pool workers may open/close profiling spans too.
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace pico::telemetry {

class Tracer {
 public:
  /// Sentinel for "parent = whatever the context stack says".
  static constexpr uint64_t kUseContext = ~0ull;

  explicit Tracer(sim::Trace* sink, uint64_t trace_id = 1)
      : sink_(sink), trace_id_(trace_id) {}

  /// Open a span. Only identity is fixed here; interval, category, and attrs
  /// arrive at close() so legacy recording sites keep their exact output.
  uint64_t open(std::string component, std::string label,
                uint64_t parent = kUseContext);

  /// Attach a point event to an open span. No-op for unknown/closed ids.
  void event(uint64_t span, std::string name, sim::SimTime at,
             util::Json attrs = {});

  /// Close an open span into the sink trace. No-op for unknown ids (so
  /// callers may close defensively on every exit path).
  void close(uint64_t span, std::string category, sim::SimTime start,
             sim::SimTime end, util::Json attrs = {});

  /// Current implicit parent (0 = root).
  uint64_t current() const;

  uint64_t trace_id() const { return trace_id_; }
  size_t open_count() const;

  /// RAII context frame: spans opened while alive default-parent to `span`.
  class Scope {
   public:
    Scope(Tracer& tracer, uint64_t span) : tracer_(&tracer) {
      tracer_->push(span);
    }
    ~Scope() { tracer_->pop(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* tracer_;
  };

 private:
  friend class Scope;
  void push(uint64_t span);
  void pop();

  struct Pending {
    std::string component;
    std::string label;
    uint64_t parent = 0;
    std::vector<sim::SpanEvent> events;
  };

  mutable std::mutex mu_;
  sim::Trace* sink_;
  uint64_t trace_id_;
  uint64_t next_span_ = 1;
  std::map<uint64_t, Pending> open_;
  std::vector<uint64_t> context_;
};

}  // namespace pico::telemetry

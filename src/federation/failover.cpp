#include "federation/failover.hpp"

namespace pico::federation {

util::Result<flow::RunCheckpoint> capture_checkpoint(const Site& from,
                                                     const flow::RunId& run) {
  if (!from.flows)
    return util::Result<flow::RunCheckpoint>::err("site has no flow service",
                                                  "unavailable");
  return from.flows->checkpoint(run);
}

size_t mirror_manifests(const Site& from, const Site& to) {
  if (!from.transfer || !to.transfer || from.transfer == to.transfer) return 0;
  return to.transfer->import_manifests(from.transfer->export_manifests());
}

util::Result<flow::RunId> resume_at(
    const Site& to, std::shared_ptr<const flow::FlowDefinition> def,
    flow::RunCheckpoint checkpoint, const std::string& label) {
  if (!to.flows)
    return util::Result<flow::RunId>::err("site has no flow service",
                                          "unavailable");
  return to.flows->resume(std::move(def), std::move(checkpoint), to.token,
                          label);
}

}  // namespace pico::federation

#include "federation/federation.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "federation/failover.hpp"

namespace pico::federation {

namespace {
constexpr double kIneligible = -std::numeric_limits<double>::infinity();
}

Broker::Broker(BrokerConfig config)
    : config_(config), quotas_(config.quota) {}

void Broker::add_site(Site site) {
  site_index_[site.name] = sites_.size();
  total_capacity_ += std::max(site.capacity, 0.0);
  SiteState ss;
  ss.site = std::move(site);
  sites_.push_back(std::move(ss));
}

sim::SimTime Broker::now() const {
  return sites_.empty() ? sim::SimTime{} : sites_[0].site.engine->now();
}

double Broker::route_score(size_t site_idx,
                           const flow::FlowDefinition& def) const {
  const SiteState& ss = sites_[site_idx];
  if (ss.outage || ss.partitioned) return kIneligible;
  double score = 100.0;
  // Queue depth, normalized to the site's slice of the federation ceiling so
  // a half-size site saturates at half the runs.
  double norm =
      config_.quota.max_inflight_total
          ? static_cast<double>(config_.quota.max_inflight_total) /
                std::max(total_capacity_, 1e-9)
          : 1000.0;
  double site_cap = std::max(ss.site.capacity, 1e-9) * norm;
  score -= config_.queue_penalty *
           (static_cast<double>(ss.site.flows->active_runs()) / site_cap);
  // Breaker state, per distinct provider the definition dispatches to: an
  // open breaker at this site must not be mistaken for a federation-wide
  // outage of the provider (breakers are site-qualified, see
  // BreakerSnapshot::site).
  std::set<std::string> seen;
  for (const auto& step : def.steps) {
    if (!seen.insert(step.provider).second) continue;
    if (ss.site.flows->breaker_retry_after_s(step.provider) > 0)
      score -= config_.breaker_penalty;
  }
  // Health-plane scores, when the site runs a monitor.
  if (ss.site.health) {
    double min_score = 100.0;
    for (const auto& p : ss.site.health->provider_scores())
      min_score = std::min(min_score, p.score);
    for (const auto& l : ss.site.health->link_scores())
      if (!l.up) min_score = std::min(min_score, l.score);
    score -= config_.health_weight * (100.0 - min_score);
  }
  score -= config_.brownout_penalty * ss.brownout;
  return score;
}

int Broker::pick_site(const flow::FlowDefinition& def) const {
  int best = -1;
  double best_score = kIneligible;
  for (size_t i = 0; i < sites_.size(); ++i) {
    double s = route_score(i, def);
    if (s == kIneligible) continue;
    if (best < 0 || s > best_score) {  // first-wins tie-break: deterministic
      best = static_cast<int>(i);
      best_score = s;
    }
  }
  return best;
}

std::shared_ptr<const flow::FlowDefinition> Broker::strip_optional(
    const std::shared_ptr<const flow::FlowDefinition>& def) {
  auto it = stripped_.find(def.get());
  if (it != stripped_.end()) return it->second;
  auto copy = std::make_shared<flow::FlowDefinition>();
  copy->name = def->name;
  for (const auto& step : def->steps)
    if (!step.optional) copy->steps.push_back(step);
  std::shared_ptr<const flow::FlowDefinition> out =
      copy->steps.size() == def->steps.size()
          ? def
          : std::shared_ptr<const flow::FlowDefinition>(std::move(copy));
  stripped_[def.get()] = out;
  return out;
}

SubmitOutcome Broker::submit(std::shared_ptr<const flow::FlowDefinition> def,
                             util::Json input, const std::string& user,
                             const std::string& label,
                             std::function<void(bool)> on_done) {
  SubmitOutcome out;
  submitted_++;
  // Deterministic [1x, 2x) spread keeps rejected bursts from re-arriving as
  // one synchronized herd.
  double retry_after =
      config_.reject_retry_after_s *
      (1.0 + static_cast<double>(rejected_ % 97) / 97.0);
  if (!quotas_.admit(user)) {
    quotas_.on_rejected(user);
    rejected_++;
    out.reason = "quota";
    out.retry_after_s = retry_after;
    return out;
  }
  int target = sites_.empty() ? -1 : pick_site(*def);
  if (target < 0) {
    quotas_.on_rejected(user);
    rejected_++;
    out.reason = "no-site";
    out.retry_after_s = retry_after;
    return out;
  }
  // Brownout ladder rung 1: shed optional steps (per-site derate or global
  // load near the ceiling) before rung 2 (quota rejects) engages.
  auto launch_def = def;
  if (sites_[static_cast<size_t>(target)].brownout > 0 ||
      quotas_.load_frac() >= config_.brownout_enter_frac) {
    auto stripped = strip_optional(def);
    if (stripped != def) {
      optional_dropped_ += def->steps.size() - stripped->steps.size();
      launch_def = stripped;
    }
  }
  size_t idx = tickets_.size();
  tickets_.emplace_back();
  Ticket& t = tickets_.back();
  t.user = user;
  t.label = label;
  t.def = std::move(launch_def);
  t.input = std::move(input);
  t.on_done = std::move(on_done);
  quotas_.on_admitted(user);
  out.admitted = true;
  if (!launch(idx, static_cast<size_t>(target))) {
    // The start itself was refused (auth, unknown provider): walk the
    // failover ladder like any other failure.
    relaunch_or_fail(idx);
  }
  Ticket& placed = tickets_[idx];  // launch/failover may have moved it
  out.site = placed.done ? "" : sites_[placed.site_idx].site.name;
  out.run = placed.run;
  return out;
}

bool Broker::launch(size_t idx, size_t site_idx) {
  Ticket& t = tickets_[idx];
  SiteState& ss = sites_[site_idx];
  t.site_idx = site_idx;
  util::Result<flow::RunId> started =
      t.has_checkpoint
          ? resume_at(ss.site, t.def, t.checkpoint, t.label)
          : ss.site.flows->start(t.def, t.input, ss.site.token, t.label);
  if (!started) return false;
  t.run = std::move(started).value();
  t.parked = false;
  ss.launches++;
  ss.site.flows->on_finished(
      t.run, [this, idx](const flow::RunId&, const flow::RunInfo& info) {
        on_run_finished(idx, info);
      });
  return true;
}

void Broker::on_run_finished(size_t idx, const flow::RunInfo& info) {
  Ticket& t = tickets_[idx];
  if (t.done) return;
  bool success = info.state == flow::RunState::Succeeded;
  if (sites_[t.site_idx].partitioned) {
    // The site is alive but unreachable: the broker cannot observe this
    // settle until the partition heals. Quota stays held — the work is real.
    t.reconcile_pending = true;
    t.reconcile_success = success;
    return;
  }
  if (success) {
    settle(idx, true);
    return;
  }
  relaunch_or_fail(idx);
}

void Broker::settle(size_t idx, bool success) {
  Ticket& t = tickets_[idx];
  t.done = true;
  t.success = success;
  quotas_.on_released(t.user, success);
  if (success)
    completed_++;
  else
    failed_++;
  if (t.stranded) {
    t.stranded = false;
    if (stranded_open_ > 0 && --stranded_open_ == 0)
      recovery_s_ = std::max(recovery_s_, (now() - episode_onset_).seconds());
  }
  auto cb = std::move(t.on_done);
  t.on_done = nullptr;
  // Release the per-flow state a 10^5-ticket campaign would otherwise hold to
  // the end (the def stays shared; input/checkpoint are per-flow copies).
  t.input = util::Json();
  t.checkpoint = flow::RunCheckpoint{};
  if (cb) cb(success);
}

void Broker::relaunch_or_fail(size_t idx) {
  Ticket& t = tickets_[idx];
  // Capture the freshest inter-step state before leaving the site. The
  // checkpoint carries completed-step outputs only — never epochs, backoff
  // salts, retry counters, or breaker state.
  auto cp = capture_checkpoint(sites_[t.site_idx].site, t.run);
  if (cp) {
    t.checkpoint = std::move(cp).value();
    t.has_checkpoint = true;
  }
  if (t.attempts >= config_.failover_max_attempts) {
    settle(idx, false);
    return;
  }
  int target = pick_site(*t.def);
  if (target < 0) {
    // No eligible site anywhere: park until something heals rather than
    // burning the remaining attempts against a dead federation.
    if (!t.parked) {
      t.parked = true;
      parked_.push_back(idx);
      parked_total_++;
    }
    return;
  }
  t.attempts++;
  failovers_++;
  if (t.has_checkpoint && t.checkpoint.start_step > 0) resumed_++;
  mirror_manifests(sites_[t.site_idx].site,
                   sites_[static_cast<size_t>(target)].site);
  if (!launch(idx, static_cast<size_t>(target)) && !t.parked) {
    t.parked = true;
    parked_.push_back(idx);
    parked_total_++;
  }
}

void Broker::drain_parked() {
  std::vector<size_t> waiting;
  waiting.swap(parked_);
  for (size_t idx : waiting) {
    Ticket& t = tickets_[idx];
    if (t.done) continue;
    t.parked = false;
    int target = pick_site(*t.def);
    if (target < 0) {
      t.parked = true;
      parked_.push_back(idx);
      continue;
    }
    t.attempts++;
    failovers_++;
    if (t.has_checkpoint && t.checkpoint.start_step > 0) resumed_++;
    mirror_manifests(sites_[t.site_idx].site,
                     sites_[static_cast<size_t>(target)].site);
    if (!launch(idx, static_cast<size_t>(target))) {
      t.parked = true;
      parked_.push_back(idx);
    }
  }
}

void Broker::reconcile_site(size_t site_idx) {
  for (size_t i = 0; i < tickets_.size(); ++i) {
    Ticket& t = tickets_[i];
    if (!t.reconcile_pending || t.site_idx != site_idx) continue;
    t.reconcile_pending = false;
    if (t.reconcile_success) {
      reconciled_++;
      settle(i, true);
    } else {
      relaunch_or_fail(i);
    }
  }
}

void Broker::apply_site_fault(fault::FaultKind kind, const std::string& site,
                              double severity, bool begin) {
  auto it = site_index_.find(site);
  if (it == site_index_.end()) return;
  size_t si = it->second;
  SiteState& ss = sites_[si];
  if (begin) ss.faults_seen++;
  switch (kind) {
    case fault::FaultKind::SiteOutage: {
      ss.outage = begin;
      if (begin) {
        // Collect victims first: cancel() settles each run synchronously,
        // and the finished callback relaunches in-stack.
        std::vector<size_t> victims;
        for (size_t i = 0; i < tickets_.size(); ++i) {
          const Ticket& t = tickets_[i];
          if (!t.done && !t.parked && !t.reconcile_pending && t.site_idx == si)
            victims.push_back(i);
        }
        if (!victims.empty()) {
          if (stranded_open_ == 0) episode_onset_ = now();
          stranded_open_ += victims.size();
          for (size_t i : victims) tickets_[i].stranded = true;
          for (size_t i : victims) ss.site.flows->cancel(tickets_[i].run);
        }
      } else {
        drain_parked();
      }
      break;
    }
    case fault::FaultKind::SitePartition: {
      ss.partitioned = begin;
      if (!begin) {
        reconcile_site(si);
        drain_parked();
      }
      break;
    }
    case fault::FaultKind::SiteBrownout:
      ss.brownout = begin ? severity : 0;
      break;
    default:
      break;
  }
}

BrokerStats Broker::stats() const {
  BrokerStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.rejected = rejected_;
  s.failovers = failovers_;
  s.resumed = resumed_;
  s.reconciled = reconciled_;
  s.optional_dropped = optional_dropped_;
  s.parked = parked_total_;
  s.inflight = quotas_.inflight_total();
  s.recovery_s = recovery_s_;
  return s;
}

util::Json Broker::report() const {
  util::Json doc = util::Json::object();
  doc["schema"] = "pico.federation.broker.v1";
  BrokerStats s = stats();
  doc["submitted"] = static_cast<int64_t>(s.submitted);
  doc["completed"] = static_cast<int64_t>(s.completed);
  doc["failed"] = static_cast<int64_t>(s.failed);
  doc["rejected"] = static_cast<int64_t>(s.rejected);
  doc["failovers"] = static_cast<int64_t>(s.failovers);
  doc["resumed"] = static_cast<int64_t>(s.resumed);
  doc["reconciled"] = static_cast<int64_t>(s.reconciled);
  doc["optional_steps_dropped"] = static_cast<int64_t>(s.optional_dropped);
  doc["parked"] = static_cast<int64_t>(s.parked);
  doc["inflight"] = static_cast<int64_t>(s.inflight);
  doc["recovery_s"] = s.recovery_s;
  doc["quotas"] = quotas_.to_json();
  util::Json site_rows = util::Json::array();
  for (const auto& ss : sites_) {
    util::Json row = util::Json::object();
    row["name"] = ss.site.name;
    row["outage"] = ss.outage;
    row["partitioned"] = ss.partitioned;
    row["brownout"] = ss.brownout;
    row["capacity"] = ss.site.capacity;
    row["active_runs"] = static_cast<int64_t>(ss.site.flows->active_runs());
    row["launches"] = static_cast<int64_t>(ss.launches);
    row["faults_seen"] = static_cast<int64_t>(ss.faults_seen);
    row["engine_queue_depth"] =
        static_cast<int64_t>(ss.site.engine->queue_depth());
    site_rows.push_back(std::move(row));
  }
  doc["sites"] = std::move(site_rows);
  return doc;
}

}  // namespace pico::federation

#pragma once
// Federated campaign driver: N lightweight sites (FlowService + scripted
// providers, all on ONE shared engine so virtual clocks agree) under one
// Broker, driven by thousands of simulated users submitting a large flow
// population with site-level chaos running mid-campaign. This is the harness
// behind bench_federation (A14) and the federation tests — a deliberately
// slim counterpart to core::Campaign that scales to 10^5 flows by skipping
// the byte-level transfer/compute machinery and measuring only what the
// tentpole claims: completion under failover, fairness under quotas,
// recovery time, and publish-index parity.
//
// Every published search document is content-pure (id + logical fields only,
// no attempt counters, no site names), so the shared index fingerprint of a
// chaos run must be byte-identical to the fault-free run whenever both
// complete the same flow set — the cross-site equivalent of the PR 4
// integrity contract.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/schedule.hpp"
#include "federation/federation.hpp"
#include "flow/service.hpp"
#include "util/json.hpp"

namespace pico::federation {

struct FederatedSiteSpec {
  std::string name;
  double capacity = 1.0;
};

struct FederatedCampaignConfig {
  std::vector<FederatedSiteSpec> sites = {
      {"aps-probe", 1.0}, {"alcf-east", 1.0}, {"alcf-west", 1.0}};
  size_t flows = 1000;
  size_t users = 50;
  /// Submissions arrive uniformly over this window of virtual time.
  double arrival_window_s = 600;
  // Scripted step durations (per-flow deterministic jitter applied on top).
  double transfer_s = 20, analyze_s = 45, publish_s = 1, thumbnail_s = 5;
  /// Append the optional Thumbnail step (what brownout sheds).
  bool with_optional_step = true;
  BrokerConfig broker;
  /// Site-kind chaos events (SiteOutage / SitePartition / SiteBrownout),
  /// targets = site names above. Empty = fault-free run.
  fault::FaultSchedule chaos;
  /// Rejected submissions are re-posted after the broker's retry-after hint;
  /// a flow gives up for good after this many rejects.
  size_t max_resubmits = 64;
  flow::CompletionMode completion_mode = flow::CompletionMode::Polling;
  uint64_t seed = 0xF3Dull;
};

struct FederatedCampaignResult {
  size_t flows = 0;
  size_t completed = 0;
  size_t failed = 0;
  /// Admitted but never settled (parked against a site that never healed).
  size_t unsettled = 0;
  /// Flows that exhausted max_resubmits without ever being admitted.
  size_t gave_up = 0;
  uint64_t rejected_submissions = 0;
  uint64_t resubmissions = 0;
  BrokerStats broker;
  double p50_s = 0, p99_s = 0;  ///< submit -> final settle, virtual time
  double jain_fairness = 1.0;
  double virtual_s = 0;
  uint64_t engine_events = 0;
  uint64_t fingerprint = 0;  ///< shared publish-index fingerprint
  util::Json broker_report;

  double completion_frac() const {
    return flows == 0 ? 1.0
                      : static_cast<double>(completed) /
                            static_cast<double>(flows);
  }
};

/// The campaign's flow definition: Transfer -> Analyze -> Publish
/// [-> Thumbnail (optional)], providers "null" and "publish".
flow::FlowDefinition federated_definition(const FederatedCampaignConfig& c);

FederatedCampaignResult run_federated_campaign(
    const FederatedCampaignConfig& config);

}  // namespace pico::federation

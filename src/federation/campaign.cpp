#include "federation/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "auth/auth.hpp"
#include "fault/injector.hpp"
#include "search/index.hpp"
#include "sim/engine.hpp"

namespace pico::federation {

namespace {

using util::Json;

/// O(1) scripted provider (the A13 null-provider idiom): every action
/// succeeds after its `duration_s` param of virtual time. `fail_next`
/// scripts deterministic failures for the failover tests.
class SimNullProvider : public flow::ActionProvider {
 public:
  explicit SimNullProvider(sim::Engine* engine) : engine_(engine) {}

  std::string name() const override { return "null"; }

  util::Result<flow::ActionHandle> start(const Json& params,
                                         const auth::Token&) override {
    Action a;
    a.started = engine_->now();
    a.duration_ns =
        static_cast<int64_t>(params.at("duration_s").as_double(1.0) * 1e9);
    if (fail_budget_ > 0) {
      fail_budget_--;
      a.fail = true;
    }
    starts_++;
    size_t idx = actions_.size();
    actions_.push_back(a);
    return util::Result<flow::ActionHandle>::ok(std::to_string(idx));
  }

  flow::ActionPollResult poll(const flow::ActionHandle& handle) override {
    flow::ActionPollResult out;
    const Action& a = actions_[std::strtoull(handle.c_str(), nullptr, 10)];
    if ((engine_->now() - a.started).ns < a.duration_ns) {
      out.status = flow::ActionStatus::Active;
      return out;
    }
    if (a.fail) {
      out.status = flow::ActionStatus::Failed;
      out.error = "scripted failure";
      return out;
    }
    out.status = flow::ActionStatus::Succeeded;
    out.service_started = a.started;
    out.service_completed = a.started + sim::Duration{a.duration_ns};
    out.output = Json::object({{"ok", true}});
    return out;
  }

  bool subscribe(const flow::ActionHandle& handle,
                 std::function<void()> callback) override {
    const Action& a = actions_[std::strtoull(handle.c_str(), nullptr, 10)];
    engine_->post_at(a.started + sim::Duration{a.duration_ns},
                     std::move(callback));
    return true;
  }

  /// Script the next `n` started actions to fail (consumed in start order).
  void fail_next(int n) { fail_budget_ += n; }
  uint64_t starts() const { return starts_; }

 private:
  struct Action {
    sim::SimTime started;
    int64_t duration_ns = 0;
    bool fail = false;
  };
  sim::Engine* engine_;
  std::vector<Action> actions_;
  uint64_t starts_ = 0;
  int fail_budget_ = 0;
};

/// Null provider that publishes one content-pure record per started action
/// into the SHARED federation index. No attempt counters, no site names —
/// re-publication after a failover overwrites with identical bytes, which is
/// what makes the chaos/fault-free fingerprint parity gate possible.
class SimPublishProvider : public SimNullProvider {
 public:
  SimPublishProvider(sim::Engine* engine, search::Index* index)
      : SimNullProvider(engine), index_(index) {}

  std::string name() const override { return "publish"; }

  util::Result<flow::ActionHandle> start(const Json& params,
                                         const auth::Token& token) override {
    auto handle = SimNullProvider::start(params, token);
    if (handle) {
      search::Document doc;
      doc.id = params.at("subject").as_string("doc");
      doc.content = Json::object({
          {"name", doc.id},
          {"resource_type", "federated_flow"},
      });
      index_->ingest(std::move(doc));
    }
    return handle;
  }

 private:
  search::Index* index_;
};

/// One lightweight site: its own auth domain, orchestrator, breakers, and
/// providers — everything per-facility state the tentpole replicates —
/// sharing only the engine and the publish index.
struct SiteRuntime {
  std::string name;
  auth::AuthService auth;
  flow::FlowService flows;
  SimNullProvider null_provider;
  SimPublishProvider publish_provider;
  auth::Token token;

  SiteRuntime(const std::string& n, sim::Engine* engine,
              const flow::FlowServiceConfig& cfg, uint64_t seed,
              search::Index* index)
      : name(n),
        flows(engine, &auth, cfg, seed),
        null_provider(engine),
        publish_provider(engine, index) {
    flows.set_site(n);
    flows.register_provider(&null_provider);
    flows.register_provider(&publish_provider);
    token = auth.issue("broker@" + n, {"flows"});
  }
};

std::string subject_of(size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flow-%06zu", i);
  return buf;
}

Json input_for(const FederatedCampaignConfig& config, size_t i) {
  // Pure function of the flow index, so fault-free and chaos runs submit
  // byte-identical inputs.
  double j1 = 0.5 + static_cast<double>((i * 2654435761ull) % 1000) / 1000.0;
  double j2 = 0.5 + static_cast<double>((i * 40503ull + 7) % 1000) / 1000.0;
  Json input = Json::object();
  input["transfer_s"] = config.transfer_s * j1;
  input["analyze_s"] = config.analyze_s * j2;
  input["subject"] = subject_of(i);
  return input;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

flow::FlowDefinition federated_definition(const FederatedCampaignConfig& c) {
  flow::FlowDefinition def;
  def.name = "federated-acquire";
  flow::ActionState transfer;
  transfer.name = "Transfer";
  transfer.provider = "null";
  transfer.params = Json::object({{"duration_s", "$.input.transfer_s"}});
  transfer.timeout_s = 3600;
  transfer.max_retries = 2;
  flow::ActionState analyze;
  analyze.name = "Analyze";
  analyze.provider = "null";
  analyze.params = Json::object({{"duration_s", "$.input.analyze_s"}});
  analyze.timeout_s = 3600;
  analyze.max_retries = 2;
  flow::ActionState publish;
  publish.name = "Publish";
  publish.provider = "publish";
  publish.params = Json::object(
      {{"duration_s", c.publish_s}, {"subject", "$.input.subject"}});
  publish.max_retries = 2;
  def.steps = {transfer, analyze, publish};
  if (c.with_optional_step) {
    flow::ActionState thumb;
    thumb.name = "Thumbnail";
    thumb.provider = "null";
    thumb.params = Json::object({{"duration_s", c.thumbnail_s}});
    thumb.optional = true;
    def.steps.push_back(thumb);
  }
  return def;
}

FederatedCampaignResult run_federated_campaign(
    const FederatedCampaignConfig& config) {
  sim::Engine engine;
  search::Index index("federated-publish");
  flow::FlowServiceConfig fcfg;
  fcfg.completion_mode = config.completion_mode;

  Broker broker(config.broker);
  std::vector<std::unique_ptr<SiteRuntime>> sites;
  for (size_t i = 0; i < config.sites.size(); ++i) {
    const auto& spec = config.sites[i];
    sites.push_back(std::make_unique<SiteRuntime>(
        spec.name, &engine, fcfg, config.seed + i * 1000003ull, &index));
    Site site;
    site.name = spec.name;
    site.engine = &engine;
    site.flows = &sites.back()->flows;
    site.token = sites.back()->token;
    site.capacity = spec.capacity;
    broker.add_site(site);
  }

  fault::FaultInjector::Services fs;
  fs.engine = &engine;
  fs.site_hook = [&broker](fault::FaultKind kind, const std::string& site,
                           double severity, bool begin) {
    broker.apply_site_fault(kind, site, severity, begin);
  };
  fault::FaultInjector injector(fs);
  if (!config.chaos.empty()) {
    auto installed = injector.install(config.chaos);
    (void)installed;
  }

  auto def = std::make_shared<const flow::FlowDefinition>(
      federated_definition(config));

  struct FlowState {
    sim::SimTime first_submit;
    size_t resubmits = 0;
  };
  std::vector<FlowState> fstate(config.flows);
  std::vector<double> latencies;
  latencies.reserve(config.flows);

  FederatedCampaignResult result;
  result.flows = config.flows;

  size_t users = std::max<size_t>(1, config.users);
  auto submit_one = std::make_shared<std::function<void(size_t)>>();
  *submit_one = [&, submit_one](size_t i) {
    std::string user = "user-" + std::to_string(i % users);
    SubmitOutcome out = broker.submit(
        def, input_for(config, i), user, subject_of(i), [&, i](bool ok) {
          double lat = (engine.now() - fstate[i].first_submit).seconds();
          if (ok) {
            result.completed++;
            latencies.push_back(lat);
          } else {
            result.failed++;
          }
        });
    if (!out.admitted) {
      result.rejected_submissions++;
      if (fstate[i].resubmits >= config.max_resubmits) {
        result.gave_up++;
        return;
      }
      fstate[i].resubmits++;
      result.resubmissions++;
      // Per-flow deterministic jitter on top of the broker's hint, so the
      // rejected cohort does not re-arrive as one synchronized wave.
      double delay =
          out.retry_after_s + 0.001 * static_cast<double>(i % 101);
      engine.post_after(sim::Duration::from_seconds(delay),
                        [submit_one, i] { (*submit_one)(i); });
    }
  };

  for (size_t i = 0; i < config.flows; ++i) {
    double at_s = config.arrival_window_s * static_cast<double>(i) /
                  static_cast<double>(std::max<size_t>(1, config.flows));
    fstate[i].first_submit = sim::SimTime::from_seconds(at_s);
    engine.post_at(sim::SimTime::from_seconds(at_s),
                   [submit_one, i] { (*submit_one)(i); });
  }

  engine.run();

  result.unsettled =
      result.flows - result.completed - result.failed - result.gave_up;
  result.broker = broker.stats();
  std::sort(latencies.begin(), latencies.end());
  result.p50_s = percentile(latencies, 0.50);
  result.p99_s = percentile(latencies, 0.99);
  result.jain_fairness = broker.quotas().fairness();
  result.virtual_s = engine.now().seconds();
  result.engine_events = engine.events_processed();
  result.fingerprint = index.fingerprint();
  result.broker_report = broker.report();
  return result;
}

}  // namespace pico::federation

#pragma once
// Admission control for the federation broker: weighted fair-share in-flight
// quotas per user/project. The broker admits a flow only while the federation
// has global headroom AND the submitting user is under their share; everyone
// else gets a reject-with-retry-after instead of a queue that collapses under
// thousands of users (graceful shedding, the paper's "don't melt the control
// plane" requirement for beam-line bursts).
//
// Shares are weighted max-min in spirit but deliberately simple in mechanism:
//   share(u) = max(min_user_inflight,
//                  max_inflight_total * weight(u) / total_weight)
// Unused share is NOT redistributed mid-flight — the floor plus the global
// cap already lets light users burst while heavy users are throttled first,
// and the static formula keeps every admission decision O(log users) and
// deterministic.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace pico::federation {

struct QuotaConfig {
  /// Global in-flight ceiling across all sites (0 = unbounded: quotas then
  /// only bound per-user floors, never reject).
  size_t max_inflight_total = 0;
  /// Every user may always hold at least this many in-flight flows, however
  /// small their weighted share — keeps 1-flow interactive users admissible
  /// next to 10^4-flow campaign accounts.
  size_t min_user_inflight = 4;
  /// Weight assigned to users the broker has never seen set_weight for.
  double default_weight = 1.0;
};

/// Jain's fairness index over per-user allocations: (sum x)^2 / (n * sum x^2),
/// 1.0 = perfectly fair, 1/n = one user got everything. Empty input => 1.0.
double jain_index(const std::vector<double>& xs);

class FairShareQuotas {
 public:
  explicit FairShareQuotas(QuotaConfig config) : config_(config) {}

  const QuotaConfig& config() const { return config_; }

  /// Register or update a user's weight (registers with default_weight on
  /// first admit otherwise).
  void set_weight(const std::string& user, double weight);

  /// Would one more in-flight flow for `user` fit? Registers unseen users.
  /// Does not reserve — pair with on_admitted when the broker launches.
  bool admit(const std::string& user);

  /// The user's current in-flight ceiling (SIZE_MAX when unbounded).
  size_t user_share(const std::string& user);

  void on_admitted(const std::string& user);
  void on_rejected(const std::string& user);
  void on_released(const std::string& user, bool success);

  size_t inflight_total() const { return inflight_total_; }
  size_t inflight(const std::string& user) const;
  uint64_t completed(const std::string& user) const;
  uint64_t rejected_total() const { return rejected_total_; }
  size_t users() const { return users_.size(); }

  /// Global load fraction (0 when unbounded): the broker's brownout input.
  double load_frac() const;

  /// Per-registered-user successful-completion counts, user-name order —
  /// the allocation vector the Jain fairness gate scores.
  std::vector<double> completions() const;
  double fairness() const { return jain_index(completions()); }

  util::Json to_json() const;

 private:
  struct UserState {
    double weight = 1.0;
    size_t inflight = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t rejected = 0;
  };
  UserState& state(const std::string& user);

  QuotaConfig config_;
  std::map<std::string, UserState> users_;
  double total_weight_ = 0;
  size_t inflight_total_ = 0;
  uint64_t rejected_total_ = 0;
};

}  // namespace pico::federation

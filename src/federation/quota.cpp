#include "federation/quota.hpp"

#include <algorithm>
#include <cstddef>

namespace pico::federation {

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0, sum_sq = 0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

FairShareQuotas::UserState& FairShareQuotas::state(const std::string& user) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    it = users_.emplace(user, UserState{config_.default_weight, 0, 0, 0, 0})
             .first;
    total_weight_ += config_.default_weight;
  }
  return it->second;
}

void FairShareQuotas::set_weight(const std::string& user, double weight) {
  UserState& u = state(user);
  total_weight_ += weight - u.weight;
  u.weight = weight;
}

size_t FairShareQuotas::user_share(const std::string& user) {
  if (config_.max_inflight_total == 0) return static_cast<size_t>(-1);
  const UserState& u = state(user);
  double frac = total_weight_ > 0 ? u.weight / total_weight_ : 1.0;
  size_t share = static_cast<size_t>(
      static_cast<double>(config_.max_inflight_total) * frac);
  return std::max(share, config_.min_user_inflight);
}

bool FairShareQuotas::admit(const std::string& user) {
  const UserState& u = state(user);
  if (config_.max_inflight_total != 0 &&
      inflight_total_ >= config_.max_inflight_total)
    return false;
  return u.inflight < user_share(user);
}

void FairShareQuotas::on_admitted(const std::string& user) {
  state(user).inflight++;
  inflight_total_++;
}

void FairShareQuotas::on_rejected(const std::string& user) {
  state(user).rejected++;
  rejected_total_++;
}

void FairShareQuotas::on_released(const std::string& user, bool success) {
  UserState& u = state(user);
  if (u.inflight > 0) u.inflight--;
  if (inflight_total_ > 0) inflight_total_--;
  if (success)
    u.completed++;
  else
    u.failed++;
}

size_t FairShareQuotas::inflight(const std::string& user) const {
  auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.inflight;
}

uint64_t FairShareQuotas::completed(const std::string& user) const {
  auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.completed;
}

double FairShareQuotas::load_frac() const {
  if (config_.max_inflight_total == 0) return 0.0;
  return static_cast<double>(inflight_total_) /
         static_cast<double>(config_.max_inflight_total);
}

std::vector<double> FairShareQuotas::completions() const {
  std::vector<double> out;
  out.reserve(users_.size());
  for (const auto& [name, u] : users_) {
    (void)name;
    out.push_back(static_cast<double>(u.completed));
  }
  return out;
}

util::Json FairShareQuotas::to_json() const {
  util::Json doc = util::Json::object();
  doc["max_inflight_total"] =
      static_cast<int64_t>(config_.max_inflight_total);
  doc["min_user_inflight"] = static_cast<int64_t>(config_.min_user_inflight);
  doc["users"] = static_cast<int64_t>(users_.size());
  doc["inflight_total"] = static_cast<int64_t>(inflight_total_);
  doc["rejected_total"] = static_cast<int64_t>(rejected_total_);
  doc["load_frac"] = load_frac();
  doc["jain_fairness"] = fairness();
  return doc;
}

}  // namespace pico::federation

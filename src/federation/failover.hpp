#pragma once
// Cross-facility failover primitives, split out of the broker so each hop of
// the ladder is independently testable:
//
//   1. capture_checkpoint — portable inter-step state from the failed site
//      (completed-step outputs + input; never epochs/backoff/breakers).
//   2. mirror_manifests   — replicate the failed site's transfer chunk
//      manifests to the survivor, so a re-issued transfer resumes from the
//      chunks that already landed (PR 5's spill/resume path) instead of
//      moving every byte again.
//   3. resume_at          — relaunch at the peer via FlowService::resume,
//      starting at the checkpointed step with fresh retry state.
//
// The broker composes 1-3; tests drive them directly against two Facility
// instances on a shared engine.
#include <memory>
#include <string>

#include "federation/federation.hpp"
#include "flow/service.hpp"
#include "util/result.hpp"

namespace pico::federation {

/// Export the run's portable inter-step state from `from`. Works for active
/// and settled runs (a cancelled run checkpoints at the step it was on).
util::Result<flow::RunCheckpoint> capture_checkpoint(const Site& from,
                                                     const flow::RunId& run);

/// Replicate chunk manifests from -> to; returns how many were newly
/// imported. No-op (0) when either side has no transfer service or the sites
/// are the same. Import never overwrites local manifests and clears claimed
/// bits, so the survivor re-verifies and re-claims chunks itself.
size_t mirror_manifests(const Site& from, const Site& to);

/// Continue `checkpoint` at `to` with a fresh run id, epoch, backoff salt,
/// and `to`'s own breakers.
util::Result<flow::RunId> resume_at(
    const Site& to, std::shared_ptr<const flow::FlowDefinition> def,
    flow::RunCheckpoint checkpoint, const std::string& label = "");

}  // namespace pico::federation
